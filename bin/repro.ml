(* Command-line interface to the library: simulate any of the paper's
   processes, measure recovery and coalescence, run exact small-chain
   analysis, and print fluid-limit predictions. *)

open Cmdliner

(* ---- shared argument parsing ---- *)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 0x5EED & info [ "seed" ] ~docv:"SEED" ~doc)

let n_arg =
  let doc = "Number of bins / servers / vertices." in
  Arg.(value & opt int 256 & info [ "n" ] ~docv:"N" ~doc)

let m_arg =
  let doc = "Number of balls (defaults to n)." in
  Arg.(value & opt (some int) None & info [ "m" ] ~docv:"M" ~doc)

let scenario_arg =
  let conv_scenario =
    let parse = function
      | "A" | "a" -> Ok Core.Scenario.A
      | "B" | "b" -> Ok Core.Scenario.B
      | s -> Error (`Msg (Printf.sprintf "unknown scenario %S (use A or B)" s))
    in
    Arg.conv (parse, fun fmt s -> Format.fprintf fmt "%s" (Core.Scenario.name s))
  in
  let doc =
    "Removal scenario: A removes a random ball, B removes from a random \
     non-empty bin."
  in
  Arg.(value & opt conv_scenario Core.Scenario.A
       & info [ "scenario" ] ~docv:"A|B" ~doc)

let parse_rule s =
  match String.split_on_char ':' s with
  | [ "abku"; d ] | [ "ABKU"; d ] -> (
      match int_of_string_opt d with
      | Some d when d >= 1 -> Ok (Core.Scheduling_rule.abku d)
      | _ -> Error (`Msg "abku:<d> needs d >= 1"))
  | [ "adap"; thresholds ] | [ "ADAP"; thresholds ] -> (
      try
        let steps =
          String.split_on_char ',' thresholds |> List.map int_of_string
        in
        Ok (Core.Scheduling_rule.adap (Core.Adaptive.of_list steps))
      with _ -> Error (`Msg "adap:<t0,t1,...> needs non-decreasing ints >= 1"))
  | _ -> Error (`Msg (Printf.sprintf "unknown rule %S (abku:<d> | adap:<list>)" s))

let rule_arg =
  let conv_rule =
    Arg.conv
      (parse_rule, fun fmt r -> Format.fprintf fmt "%s" (Core.Scheduling_rule.name r))
  in
  let doc = "Scheduling rule: abku:<d> or adap:<t0,t1,...>." in
  Arg.(value & opt conv_rule (Core.Scheduling_rule.abku 2)
       & info [ "rule" ] ~docv:"RULE" ~doc)

let repr_arg =
  let conv_repr =
    let parse s =
      match Core.Repr.of_string s with
      | Ok r -> Ok r
      | Error m -> Error (`Msg m)
    in
    Arg.conv (parse, fun fmt r -> Format.fprintf fmt "%s" (Core.Repr.name r))
  in
  let doc =
    "Representation backend for the hot path: " ^ Core.Repr.help
    ^ ".  counts-sampled switches ABKU insertion to the cutoff table \
       (equal in law, different draw trace)."
  in
  Arg.(value & opt conv_repr Core.Repr.Array_backed
       & info [ "repr" ] ~docv:"REPR" ~doc)

let steps_arg ~default =
  let doc = "Number of process steps." in
  Arg.(value & opt int default & info [ "steps" ] ~docv:"STEPS" ~doc)

let resolve_m n = function Some m -> m | None -> n

(* ---- simulate ---- *)

let simulate seed n m scenario rule steps adversarial =
  let m = resolve_m n m in
  let g = Prng.Rng.create ~seed () in
  let loads =
    if adversarial then begin
      let a = Array.make n 0 in
      a.(0) <- m;
      a
    end
    else Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m)
  in
  let system = Core.System.create scenario rule (Core.Bins.of_loads loads) in
  Printf.printf "process %s, n = %d, m = %d, %d steps\n"
    (Printf.sprintf "%s-%s"
       (match scenario with Core.Scenario.A -> "Id" | B -> "Ib")
       (Core.Scheduling_rule.name rule))
    n m steps;
  let probes = Stats.Summary.create () in
  let max_summary = Stats.Summary.create () in
  for _ = 1 to steps do
    Stats.Summary.add_int probes (Core.System.step_probes g system);
    Stats.Summary.add_int max_summary (Core.System.max_load system)
  done;
  Printf.printf "final max load: %d\n" (Core.System.max_load system);
  Printf.printf "mean max load over run: %.2f (worst %d)\n"
    (Stats.Summary.mean max_summary)
    (int_of_float (Stats.Summary.max max_summary));
  Printf.printf "probes per insertion: %.3f\n" (Stats.Summary.mean probes);
  let hist = Stats.Histogram.create () in
  Array.iter (Stats.Histogram.add hist) (Core.Bins.loads (Core.System.bins system));
  Printf.printf "final load histogram:\n%s"
    (Format.asprintf "%a" Stats.Histogram.pp hist)

let simulate_cmd =
  let adversarial =
    Arg.(value & flag
         & info [ "adversarial" ] ~doc:"Start with all balls in one bin.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a dynamic allocation process")
    Term.(const simulate $ seed_arg $ n_arg $ m_arg $ scenario_arg $ rule_arg
          $ steps_arg ~default:100_000 $ adversarial)

(* ---- recover ---- *)

let recover seed n m scenario rule reps target =
  let m = resolve_m n m in
  let rng = Prng.Rng.create ~seed () in
  let d = match rule with Core.Scheduling_rule.Abku d -> d | Adap _ -> 2 in
  let fluid =
    match scenario with
    | Core.Scenario.A ->
        Fluid.Mean_field.fixed_point_a ~d
          ~m_over_n:(float_of_int m /. float_of_int n)
          ~levels:60
    | Core.Scenario.B ->
        Fluid.Mean_field.fixed_point_b ~d
          ~m_over_n:(float_of_int m /. float_of_int n)
          ~levels:60
  in
  let target =
    match target with
    | Some t -> t
    | None -> Fluid.Mean_field.predicted_max_load ~n fluid + 1
  in
  let spec = { Core.Recovery.scenario; rule; n; m } in
  let limit =
    match scenario with
    | Core.Scenario.A -> 500 * int_of_float (Theory.Bounds.recovery_a_steps ~n)
    | Core.Scenario.B -> 100 * int_of_float (Theory.Bounds.recovery_b_steps ~n)
  in
  let meas = Core.Recovery.measure ~rng ~reps spec ~target ~limit in
  Printf.printf
    "recovery of %s-%s from all-in-one to max load <= %d (n=%d, m=%d, %d runs)\n"
    (match scenario with Core.Scenario.A -> "Id" | B -> "Ib")
    (Core.Scheduling_rule.name rule)
    target n m reps;
  Printf.printf "median %.0f steps [q10 %.0f, q90 %.0f], %d runs hit the limit\n"
    meas.median meas.q10 meas.q90 meas.failures;
  let bound =
    match scenario with
    | Core.Scenario.A -> Theory.Bounds.recovery_a_steps ~n
    | Core.Scenario.B -> Theory.Bounds.recovery_b_steps ~n
  in
  Printf.printf "paper growth scale: %.0f\n" bound

let recover_cmd =
  let reps =
    Arg.(value & opt int 11 & info [ "reps" ] ~docv:"REPS" ~doc:"Repetitions.")
  in
  let target =
    Arg.(value & opt (some int) None
         & info [ "target" ] ~docv:"LOAD"
             ~doc:"Recovery target (default: fluid prediction + 1).")
  in
  Cmd.v
    (Cmd.info "recover" ~doc:"Measure recovery time from the worst state")
    Term.(const recover $ seed_arg $ n_arg $ m_arg $ scenario_arg $ rule_arg
          $ reps $ target)

(* ---- couple ---- *)

let couple seed n m scenario rule reps =
  let m = resolve_m n m in
  let rng = Prng.Rng.create ~seed () in
  let process = Core.Dynamic_process.make scenario rule ~n in
  let coupled = Core.Coupled.monotone process in
  let limit =
    match scenario with
    | Core.Scenario.A -> 100 * int_of_float (Theory.Bounds.theorem1 ~m ~eps:0.25)
    | Core.Scenario.B ->
        200 * int_of_float (Theory.Bounds.scenario_b_improved ~m)
  in
  let meas =
    Coupling.Coalescence.measure ~reps ~limit ~rng coupled ~init:(fun _g ->
        ( Loadvec.Mutable_vector.of_load_vector
            (Loadvec.Load_vector.all_in_one ~n ~m),
          Loadvec.Mutable_vector.of_load_vector
            (Loadvec.Load_vector.uniform ~n ~m) ))
  in
  Printf.printf "coalescence of the %s coupling (n=%d, m=%d, %d runs)\n"
    (Core.Dynamic_process.name process) n m reps;
  Printf.printf "median %.0f [q10 %.0f, q90 %.0f], failures %d\n" meas.median
    meas.q10 meas.q90 meas.failures;
  (match scenario with
  | Core.Scenario.A ->
      Printf.printf "Theorem 1 bound: %.0f\n"
        (Theory.Bounds.theorem1 ~m ~eps:0.25)
  | Core.Scenario.B ->
      Printf.printf "Claim 5.3 bound: %.0f; improved m^2 ln m: %.0f\n"
        (Theory.Bounds.claim53 ~n ~m ~eps:0.25)
        (Theory.Bounds.scenario_b_improved ~m))

let couple_cmd =
  let reps =
    Arg.(value & opt int 15 & info [ "reps" ] ~docv:"REPS" ~doc:"Repetitions.")
  in
  Cmd.v
    (Cmd.info "couple" ~doc:"Measure coupling coalescence time")
    Term.(const couple $ seed_arg $ n_arg $ m_arg $ scenario_arg $ rule_arg $ reps)

(* ---- edge ---- *)

let edge seed n steps adversarial =
  let g = Prng.Rng.create ~seed () in
  let t =
    if adversarial then Edgeorient.Orientation.adversarial ~n
    else Edgeorient.Orientation.create ~n
  in
  Printf.printf "greedy edge orientation on %d vertices, %d edges\n" n steps;
  Printf.printf "%10s  %s\n" "edges" "unfairness";
  let printed = ref 1 in
  for k = 1 to steps do
    Edgeorient.Orientation.greedy_step g t;
    if k = !printed then begin
      Printf.printf "%10d  %d\n" k (Edgeorient.Orientation.unfairness t);
      printed := 2 * !printed
    end
  done;
  Printf.printf "%10d  %d (final)\n" steps (Edgeorient.Orientation.unfairness t);
  Printf.printf "Ajtai et al. stationary prediction ~ log2 log2 n = %.2f\n"
    (Theory.Bounds.edge_stationary_unfairness ~n);
  Printf.printf "Theorem 2 recovery scale: n^2 ln^2 n = %.0f\n"
    (Theory.Bounds.theorem2 ~n)

let edge_cmd =
  let adversarial =
    Arg.(value & flag
         & info [ "adversarial" ] ~doc:"Start from the adversarial state.")
  in
  Cmd.v
    (Cmd.info "edge" ~doc:"Run the greedy edge orientation protocol")
    Term.(const edge $ seed_arg $ n_arg $ steps_arg ~default:100_000 $ adversarial)

(* ---- exact ---- *)

let exact n m scenario rule eps domains block_rows spill checkpoint resume
    max_states starts_mode =
  let m = resolve_m n m in
  let count = Markov.Partition_space.count ~n ~m in
  if count > max_states then
    Printf.eprintf
      "state space too large for exact analysis (%d > %d states; raise \
       --max-states)\n"
      count max_states
  else begin
    let process = Core.Dynamic_process.make scenario rule ~n in
    let states = Markov.Partition_space.enumerate ~n ~m in
    let chain =
      Markov.Exact_builder.build ?block_rows ?spill
        (Markov.Exact_builder.enumerated states)
        ~transitions:(Core.Dynamic_process.exact_transitions process)
    in
    Printf.printf "%s on Omega_%d with %d bins: %d states, %d transitions\n"
      (Core.Dynamic_process.name process)
      m n (Array.length states)
      (Markov.Blocked_csr.nnz (Markov.Exact.blocked chain));
    (* Above a few thousand states the all-starts search is the
       dominant cost; monotone-coupling domination makes the extremal
       starts (one full bin, balanced) the interesting ones. *)
    let extremal = starts_mode = "extremal"
                   || (starts_mode = "auto" && count > 5000) in
    let starts =
      if not extremal then None
      else
        Some
          (Array.map
             (fun v -> Markov.Exact.index chain v)
             [|
               Loadvec.Load_vector.all_in_one ~n ~m;
               Loadvec.Load_vector.uniform ~n ~m;
             |])
    in
    if extremal then
      Printf.printf "starts: extremal (all-in-one, uniform) of %d states\n"
        (Array.length states);
    let sink =
      Option.map
        (fun path ->
          if (not resume) && Sys.file_exists path then Sys.remove path;
          Printf.printf "checkpointing to %s%s\n" path
            (if resume && Sys.file_exists path then " (resuming)" else "");
          Markov.Exact_checkpoint.file_sink path)
        checkpoint
    in
    let tau =
      Markov.Exact.mixing_time ~eps ~max_t:10_000_000 ~domains ?starts
        ?checkpoint:sink chain
    in
    Printf.printf "exact mixing time tau(%.3f) = %d\n" eps tau;
    let pi = Markov.Exact.stationary chain in
    Printf.printf "stationary distribution (top 5 states):\n";
    let order = Array.init (Array.length pi) (fun i -> i) in
    Array.sort (fun a b -> compare pi.(b) pi.(a)) order;
    Array.iteri
      (fun k i ->
        if k < 5 then
          Printf.printf "  %s : %.4f\n"
            (Format.asprintf "%a" Loadvec.Load_vector.pp
               (Markov.Exact.state chain i))
            pi.(i))
      order;
    match scenario with
    | Core.Scenario.A ->
        Printf.printf "Theorem 1 bound: %.0f\n" (Theory.Bounds.theorem1 ~m ~eps)
    | Core.Scenario.B ->
        Printf.printf "Claim 5.3 bound: %.0f\n" (Theory.Bounds.claim53 ~n ~m ~eps)
  end

let exact_cmd =
  let eps =
    Arg.(value & opt float 0.25
         & info [ "eps" ] ~docv:"EPS" ~doc:"Mixing threshold.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains for the mixing search; the result is \
                   identical for any value.")
  in
  let block_rows =
    Arg.(value & opt (some int) None
         & info [ "block-rows" ] ~docv:"N"
             ~doc:"Rows per blocked-CSR block (default 4096).")
  in
  let spill =
    Arg.(value & opt (some string) None
         & info [ "spill" ] ~docv:"FILE"
             ~doc:"Stream transition blocks to FILE during the build so the \
                   matrix never resides fully in memory.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Snapshot the stationary solve and mixing search to FILE so \
                   a killed run can resume.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume from an existing checkpoint FILE instead of \
                   deleting it; the resumed run reproduces the uninterrupted \
                   answer exactly.")
  in
  let max_states =
    Arg.(value & opt int 200_000
         & info [ "max-states" ] ~docv:"N"
             ~doc:"Refuse state spaces larger than this.")
  in
  let starts =
    Arg.(value & opt string "auto"
         & info [ "starts" ] ~docv:"auto|all|extremal"
             ~doc:"Start states for the mixing search: every state, only the \
                   extremal pair (all-in-one, uniform), or extremal \
                   automatically above 5000 states.")
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Exact mixing time on a small state space")
    Term.(const exact $ n_arg $ m_arg $ scenario_arg $ rule_arg $ eps $ domains
          $ block_rows $ spill $ checkpoint $ resume $ max_states $ starts)

(* ---- fluid ---- *)

let fluid n m scenario d levels =
  let m = resolve_m n m in
  let m_over_n = float_of_int m /. float_of_int n in
  let s =
    match scenario with
    | Core.Scenario.A -> Fluid.Mean_field.fixed_point_a ~d ~m_over_n ~levels
    | Core.Scenario.B -> Fluid.Mean_field.fixed_point_b ~d ~m_over_n ~levels
  in
  Printf.printf
    "fluid fixed point, scenario %s, d = %d, m/n = %.2f (s_i = fraction of \
     bins with load >= i)\n"
    (Core.Scenario.name scenario) d m_over_n;
  Array.iteri
    (fun i si -> if si > 1e-12 then Printf.printf "  s_%d = %.6f\n" (i + 1) si)
    s;
  Printf.printf "predicted max load at n = %d: %d\n" n
    (Fluid.Mean_field.predicted_max_load ~n s)

let fluid_cmd =
  let d =
    Arg.(value & opt int 2 & info [ "d" ] ~docv:"D" ~doc:"Number of choices.")
  in
  let levels =
    Arg.(value & opt int 30
         & info [ "levels" ] ~docv:"L" ~doc:"Truncation level.")
  in
  Cmd.v
    (Cmd.info "fluid" ~doc:"Print the fluid-limit stationary profile")
    Term.(const fluid $ n_arg $ m_arg $ scenario_arg $ d $ levels)

(* ---- tv: empirical mixing profile ---- *)

let tv seed n m scenario rule reps =
  let m = resolve_m n m in
  let rng = Prng.Rng.create ~seed () in
  let process = Core.Dynamic_process.make scenario rule ~n in
  let chain =
    Markov.Chain.make (fun g v ->
        Core.Dynamic_process.step_in_place process g v;
        v)
  in
  let scale =
    match scenario with
    | Core.Scenario.A -> Theory.Bounds.theorem1 ~m ~eps:0.25
    | Core.Scenario.B -> Theory.Bounds.scenario_b_improved ~m
  in
  let limit = 2 * int_of_float scale in
  let rec times t acc = if t > limit then List.rev acc else times (4 * t) (t :: acc) in
  let profile =
    Markov.Empirical.decay_profile chain ~rng
      ~x0:(fun () ->
        Loadvec.Mutable_vector.of_load_vector
          (Loadvec.Load_vector.all_in_one ~n ~m))
      ~y0:(fun () ->
        Loadvec.Mutable_vector.of_load_vector
          (Loadvec.Load_vector.uniform ~n ~m))
      ~times:(times 1 []) ~reps ~observable:Loadvec.Mutable_vector.max_load
  in
  Printf.printf
    "TV distance of the max-load law, adversarial vs balanced start\n";
  Printf.printf "process %s, n = %d, m = %d, %d runs per point\n\n"
    (Core.Dynamic_process.name process) n m reps;
  Printf.printf "%10s  %s\n" "t" "TV estimate";
  List.iter (fun (t, tv) -> Printf.printf "%10d  %.3f\n" t tv) profile;
  Printf.printf "\npaper scale for this scenario: %.0f\n" scale

let tv_cmd =
  let reps =
    Arg.(value & opt int 500 & info [ "reps" ] ~docv:"REPS" ~doc:"Runs per point.")
  in
  Cmd.v
    (Cmd.info "tv" ~doc:"Empirical total-variation decay profile")
    Term.(const tv $ seed_arg $ n_arg $ m_arg $ scenario_arg $ rule_arg $ reps)

(* ---- weighted ---- *)

let weighted seed n m d tail =
  let m = resolve_m n m in
  let g = Prng.Rng.create ~seed () in
  let dist =
    match tail with
    | "const" -> Core.Weighted.Constant 1.
    | "uniform" -> Core.Weighted.Uniform_unit
    | "exp" -> Core.Weighted.Exponential 1.
    | "pareto" -> Core.Weighted.Pareto { alpha = 1.5; xmin = 1. }
    | other -> failwith (Printf.sprintf "unknown tail %S" other)
  in
  let t = Core.Weighted.static_run g ~n ~m ~d ~dist in
  Printf.printf "weighted allocation: n = %d, m = %d, d = %d, weights %s\n" n m
    d
    (Core.Weighted.dist_name dist);
  Printf.printf "max load %.3f, total weight %.1f, mean load %.3f\n"
    (Core.Weighted.max_load t)
    (Core.Weighted.total_weight t)
    (Core.Weighted.total_weight t /. float_of_int n)

let weighted_cmd =
  let d = Arg.(value & opt int 2 & info [ "d" ] ~docv:"D" ~doc:"Choices.") in
  let tail =
    Arg.(value & opt string "exp"
         & info [ "tail" ] ~docv:"const|uniform|exp|pareto"
             ~doc:"Weight distribution.")
  in
  Cmd.v
    (Cmd.info "weighted" ~doc:"Weighted-jobs allocation")
    Term.(const weighted $ seed_arg $ n_arg $ m_arg $ d $ tail)

(* ---- parallel ---- *)

let parallel seed n m d rounds =
  let m = resolve_m n m in
  let g = Prng.Rng.create ~seed () in
  let result = Core.Parallel_alloc.run g ~n ~m ~d ~rounds () in
  Printf.printf
    "collision protocol: n = %d, m = %d, d = %d, %d rounds\n" n m d rounds;
  Printf.printf "max load %d, rounds used %d, fallback balls %d\n"
    result.max_load result.rounds_used result.fallback_balls

let parallel_cmd =
  let d = Arg.(value & opt int 2 & info [ "d" ] ~docv:"D" ~doc:"Candidates.") in
  let rounds =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R" ~doc:"Parallel rounds.")
  in
  Cmd.v
    (Cmd.info "parallel" ~doc:"Parallel collision-protocol allocation")
    Term.(const parallel $ seed_arg $ n_arg $ m_arg $ d $ rounds)

(* ---- removal: Section 7 generalized removal laws ---- *)

let removal seed n m rule law =
  let m = resolve_m n m in
  let g = Prng.Rng.create ~seed () in
  let removal_rule =
    match law with
    | "a" | "A" -> Core.Removal.scenario_a
    | "b" | "B" -> Core.Removal.scenario_b
    | "squared" -> Core.Removal.load_squared
    | "heaviest" -> Core.Removal.heaviest
    | other -> failwith (Printf.sprintf "unknown removal law %S" other)
  in
  let v =
    Loadvec.Mutable_vector.of_load_vector (Loadvec.Load_vector.all_in_one ~n ~m)
  in
  Printf.printf
    "generalized process: removal %S + %s, n = %d, m = %d, adversarial start\n"
    (Core.Removal.name removal_rule)
    (Core.Scheduling_rule.name rule)
    n m;
  let steps = ref 0 in
  let next = ref 1 in
  Printf.printf "%10s  %s\n" "step" "max load";
  while Loadvec.Mutable_vector.max_load v > 1 + (m / n) && !steps < 100_000_000 do
    if !steps = !next then begin
      Printf.printf "%10d  %d\n" !steps (Loadvec.Mutable_vector.max_load v);
      next := 2 * !next
    end;
    Core.Removal.step removal_rule rule g v;
    incr steps
  done;
  Printf.printf "%10d  %d (final)\n" !steps (Loadvec.Mutable_vector.max_load v)

let removal_cmd =
  let law =
    Arg.(value & opt string "a"
         & info [ "law" ] ~docv:"a|b|squared|heaviest"
             ~doc:"Removal distribution (Section 7 generalization).")
  in
  Cmd.v
    (Cmd.info "removal" ~doc:"Recovery under a generalized removal law")
    Term.(const removal $ seed_arg $ n_arg $ m_arg $ rule_arg $ law)

(* ---- bench: the experiment framework ---- *)

let bench ids list_only verbose full seed domains csv json trace checkpoint
    resume tags repr =
  let specs = Experiments.Registry.all in
  (match repr with
  | Some r when not (Experiment.Config.valid_repr r) ->
      Printf.eprintf "repro bench: --repr expects one of %s, got %S\n%!"
        (String.concat " | " Experiment.Config.repr_names)
        r;
      exit 2
  | _ -> ());
  let base = Experiment.Config.load () in
  let cfg =
    {
      Experiment.Config.full = base.full || full;
      seed = Option.value seed ~default:base.seed;
      domains = Option.value domains ~default:base.domains;
      csv_dir = (match csv with Some _ -> csv | None -> base.csv_dir);
      json_dir = (match json with Some _ -> json | None -> base.json_dir);
      trace = (match trace with Some _ -> trace | None -> base.trace);
      checkpoint_dir =
        (match checkpoint with
        | Some _ -> checkpoint
        | None -> base.checkpoint_dir);
      resume = base.resume || resume;
      metrics_dump = base.metrics_dump;
      repr = Option.value repr ~default:base.repr;
    }
  in
  if list_only then begin
    (match Experiment.Driver.unknown_tags specs tags with
    | [] -> ()
    | bad ->
        prerr_endline
          (Experiment.Driver.selection_error_message specs
             (Experiment.Driver.Unknown_tags bad));
        exit 2);
    let listed =
      match tags with
      | [] -> specs
      | tags ->
          List.filter
            (fun (s : Experiment.Spec.t) ->
              List.exists (fun t -> Experiment.Spec.has_tag s t) tags)
            specs
    in
    (if listed = [] then begin
       prerr_endline
         (Experiment.Driver.selection_error_message specs
            Experiment.Driver.Empty_selection);
       exit 2
     end);
    Experiment.Driver.print_list ~verbose ~repr:cfg.repr listed
  end
  else begin
    let ids = List.map String.lowercase_ascii ids in
    match Experiment.Driver.select specs ~ids ~tags with
    | Error e ->
        prerr_endline (Experiment.Driver.selection_error_message specs e);
        exit 2
    | Ok selected -> ignore (Experiment.Driver.run ~config:cfg selected)
  end

let bench_cmd =
  let ids =
    Arg.(value & pos_all string []
         & info [] ~docv:"ID"
             ~doc:"Experiment ids to run (default: every default experiment).")
  in
  let list_only =
    Arg.(value & flag
         & info [ "list" ] ~doc:"List experiment ids, claims and tags.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"With --list: show each spec's quick/full grid and the \
                   representation backend it will run with.")
  in
  let full =
    Arg.(value & flag
         & info [ "full" ] ~doc:"Paper-scale sweeps (BENCH_FULL=1).")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~docv:"SEED" ~doc:"Root seed (default 0xB0B).")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Replication fan-out width; results are identical for any \
                   value.")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR" ~doc:"Write every table as CSV into DIR.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"DIR"
             ~doc:"Write BENCH_RESULTS.json into DIR.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome/Perfetto trace of the run to FILE \
                   (REPRO_TRACE); open in https://ui.perfetto.dev.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"DIR"
             ~doc:"Snapshot long exact-analysis runs into DIR \
                   (BENCH_CHECKPOINT) so a killed run can resume.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume from snapshots left in the checkpoint directory \
                   (BENCH_RESUME); without it stale snapshots are deleted.")
  in
  let tags =
    Arg.(value & opt (list string) []
         & info [ "tags" ] ~docv:"TAGS"
             ~doc:"Keep only experiments carrying one of the comma-separated \
                   tags.")
  in
  let repr =
    Arg.(value & opt (some string) None
         & info [ "repr" ] ~docv:"NAME"
             ~doc:"Stepper state backend (BENCH_REPR): array (the default \
                   oracle), counts, or counts-sampled. Only experiments \
                   flagged in --list -v honour it.")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Run the paper's experiment suite")
    Term.(const bench $ ids $ list_only $ verbose $ full $ seed $ domains
          $ csv $ json $ trace $ checkpoint $ resume $ tags $ repr)

(* ---- validate: statistical conformance (lib/validate) ---- *)

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else begin
    let found = ref false in
    for i = 0 to hl - nl do
      if (not !found) && String.sub haystack i nl = needle then found := true
    done;
    !found
  end

let validate quick alpha seed domains json only list_only =
  let subjects =
    if quick then Validate.Subject.quick_catalog ()
    else Validate.Subject.full_catalog ()
  in
  if list_only then
    List.iter
      (fun s ->
        Printf.printf "%-30s %s, %d states\n" (Validate.Subject.name s)
          (Validate.Subject.family s)
          (Validate.Subject.state_count s))
      subjects
  else begin
    let subjects =
      match only with
      | [] -> subjects
      | pats ->
          List.filter
            (fun s ->
              let name = String.lowercase_ascii (Validate.Subject.name s) in
              List.exists
                (fun p ->
                  contains_substring ~needle:(String.lowercase_ascii p) name)
                pats)
            subjects
    in
    if subjects = [] then begin
      prerr_endline "repro validate: no subject matches --only";
      exit 2
    end;
    let report = Validate.Conformance.run ~domains ~quick ~alpha ~seed subjects in
    Validate.Report.print report;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Experiment.Json.to_string (Validate.Report.to_json report));
        output_char oc '\n';
        close_out oc;
        Printf.printf "report written to %s\n" path);
    exit (Validate.Report.exit_code report)
  end

let validate_cmd =
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Run the small CI catalog (one balls-into-bins subject, one \
                   edge orientation) with cheaper sequential budgets.")
  in
  let alpha =
    Arg.(value & opt float 0.01
         & info [ "alpha" ] ~docv:"ALPHA"
             ~doc:"False-FAIL budget per conformance check.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Sampling fan-out width; the report is identical for any \
                   value.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the typed conformance report as JSON to FILE.")
  in
  let only =
    Arg.(value & opt_all string []
         & info [ "only" ] ~docv:"SUBSTR"
             ~doc:"Keep only subjects whose name contains SUBSTR \
                   (case-insensitive, repeatable).")
  in
  let list_only =
    Arg.(value & flag
         & info [ "list" ] ~doc:"List the catalog subjects and exit.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Certify simulators against exact chains and paper bounds")
    Term.(const validate $ quick $ alpha $ seed_arg $ domains $ json $ only
          $ list_only)

(* ---- serve / load / query: allocation-as-a-service (lib/serve) ---- *)

let address_conv =
  let parse s =
    match Serve.Wire.parse_address s with
    | Ok a -> Ok a
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    (parse, fun fmt a ->
       Format.fprintf fmt "%s" (Serve.Wire.address_to_string a))

let default_address = Serve.Wire.Unix_sock "/tmp/repro-serve.sock"

let connect_arg =
  let doc = "Server address: unix:PATH or tcp:HOST:PORT." in
  Arg.(value & opt address_conv default_address
       & info [ "connect" ] ~docv:"ADDR" ~doc)

let serve seed n m scenario rule repr process listen shards dir snapshot_every
    sync domains max_batch quiet trace trace_sample =
  let m = resolve_m n m in
  let cluster =
    { Serve.Cluster.n; m; shards; process; scenario; rule; repr; seed }
  in
  let domains =
    match domains with
    | Some d -> d
    | None -> min shards (Parallel.recommended_domains ())
  in
  let config =
    { Serve.Server.listen; cluster; dir; snapshot_every; sync; domains;
      max_batch; quiet; trace; trace_sample }
  in
  try Serve.Server.run config
  with Failure msg | Invalid_argument msg ->
    prerr_endline msg;
    exit 1

let serve_cmd =
  let process =
    let process_conv =
      let parse s =
        match Serve.Process.of_string s with
        | Ok p -> Ok p
        | Error m -> Error (`Msg m)
      in
      Arg.conv (parse, fun fmt p ->
          Format.fprintf fmt "%s" (Serve.Process.name p))
    in
    Arg.(value & opt process_conv Serve.Process.Sequential
         & info [ "process" ] ~docv:"FAMILY"
             ~doc:(Printf.sprintf
                     "Hosted process family (%s): seq shards answer \
                      step/insert/remove, rbb shards answer round/insert \
                      (round-synchronous repeated balls-into-bins; needs an \
                      ABKU rule)."
                     Serve.Process.help))
  in
  let listen =
    Arg.(value & opt address_conv default_address
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Listen address: unix:PATH or tcp:HOST:PORT.")
  in
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"S"
             ~doc:"Partition the bins into S contiguous shards.")
  in
  let dir =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"State directory (snapshot + journal); a restart — even \
                   after kill -9 — restores from it byte-identically. \
                   Without it the service is ephemeral.")
  in
  let snapshot_every =
    Arg.(value & opt int 1_000_000
         & info [ "snapshot-every" ] ~docv:"EVENTS"
             ~doc:"Cut a snapshot (and compact the journal) every EVENTS \
                   mutations.")
  in
  let sync =
    Arg.(value & flag
         & info [ "sync" ] ~doc:"fsync the journal after every batch.")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains applying shard batches (default: \
                   min(shards, recommended)).")
  in
  let max_batch =
    Arg.(value & opt int 8192
         & info [ "max-batch" ] ~docv:"EVENTS"
             ~doc:"Largest event batch applied at once (chunking does not \
                   change results).")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No banner.") in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record span trees for sampled requests and write a \
                   Perfetto trace to FILE on graceful shutdown.")
  in
  let trace_sample =
    Arg.(value & opt int 64
         & info [ "trace-sample" ] ~docv:"N"
             ~doc:"With --trace, sample every Nth request (at most one per \
                   select round) for a full \
                   request/decode/apply/reply span tree.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the allocation service daemon")
    Term.(const serve $ seed_arg $ n_arg $ m_arg $ scenario_arg $ rule_arg
          $ repr_arg $ process $ listen $ shards $ dir $ snapshot_every $ sync
          $ domains $ max_batch $ quiet $ trace $ trace_sample)

let parse_mix s =
  match String.split_on_char ':' s |> List.map int_of_string_opt with
  | [ Some i; Some r; Some p ] when i >= 0 && r >= 0 && p >= 0 && i + r + p = 100
    ->
      Ok { Serve.Load_gen.insert_pct = i; remove_pct = r; probe_pct = p }
  | _ -> Error (`Msg "mix must be INSERT:REMOVE:PROBE percentages summing to 100")

let load connect ops batch mix seed =
  match Serve.Load_gen.run ~connect ~ops ~batch ~mix ~seed () with
  | Ok r ->
      Printf.printf "repro load: %d ops in %.3f s -> %.0f ops/sec (%d errors)\n"
        r.Serve.Load_gen.ops r.seconds r.ops_per_sec r.errors;
      let lat = r.Serve.Load_gen.latency in
      if lat.Obs.Hist.count > 0 then begin
        let p q = Obs.Hist.quantile lat q /. 1e3 in
        Printf.printf
          "repro load: rtt p50 %.1f us, p90 %.1f us, p99 %.1f us, p999 %.1f \
           us (max %.1f us)\n"
          (p 0.5) (p 0.9) (p 0.99) (p 0.999)
          (float_of_int lat.Obs.Hist.max /. 1e3)
      end
  | Error msg ->
      prerr_endline ("repro load: " ^ msg);
      exit 1

let load_cmd =
  let ops =
    Arg.(value & opt int 200_000
         & info [ "ops" ] ~docv:"N" ~doc:"Requests to send.")
  in
  let batch =
    Arg.(value & opt int 512
         & info [ "batch" ] ~docv:"N" ~doc:"Pipelined requests per write.")
  in
  let mix =
    let mix_conv = Arg.conv (parse_mix, fun fmt m ->
        Format.fprintf fmt "%d:%d:%d" m.Serve.Load_gen.insert_pct
          m.remove_pct m.probe_pct)
    in
    Arg.(value & opt mix_conv Serve.Load_gen.default_mix
         & info [ "mix" ] ~docv:"I:R:P"
             ~doc:"Traffic mix, insert:remove:probe percentages.")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Drive mixed traffic against a running service")
    Term.(const load $ connect_arg $ ops $ batch $ mix $ seed_arg)

let parse_query_op s =
  match String.split_on_char ':' s with
  | [ ("probe" | "watermark" | "occupancy" | "metrics" | "ping" | "step"
      | "round" | "remove") as op ] ->
      Ok (Printf.sprintf "{\"op\":%S}" op)
  | [ "insert"; key ] -> (
      match int_of_string_opt key with
      | Some k -> Ok (Printf.sprintf "{\"op\":\"insert\",\"key\":%d}" k)
      | None -> Error (Printf.sprintf "insert:<key> needs an integer, got %S" key))
  | _ -> Error (Printf.sprintf "unknown query op %S" s)

let query connect ops =
  let ops = if ops = [] then [ "probe"; "watermark" ] else ops in
  let lines =
    List.map
      (fun op ->
        match parse_query_op op with
        | Ok line -> line
        | Error msg ->
            prerr_endline ("repro query: " ^ msg);
            exit 2)
      ops
  in
  match Serve.Load_gen.query ~connect lines with
  | Ok replies -> List.iter print_endline replies
  | Error msg ->
      prerr_endline ("repro query: " ^ msg);
      exit 1

let query_cmd =
  let ops =
    Arg.(value & pos_all string []
         & info [] ~docv:"OP"
             ~doc:"Ops to send in order: probe, watermark, occupancy, \
                   metrics, ping, step, remove, insert:<key> (default: probe \
                   watermark).")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Send one-shot requests to a running service")
    Term.(const query $ connect_arg $ ops)

(* ---- stat: the telemetry client (dashboard / --json / --prom) ---- *)

let stat_die msg =
  prerr_endline ("repro stat: " ^ msg);
  exit 1

let fetch_stats connect fmt =
  let line =
    match fmt with
    | `Json -> {|{"op":"stats"}|}
    | `Prom -> {|{"op":"stats","format":"prom"}|}
  in
  match Serve.Load_gen.query ~connect [ line ] with
  | Ok [ reply ] -> reply
  | Ok _ -> stat_die "unexpected reply count"
  | Error msg -> stat_die msg

let jint ?(default = 0) name j =
  match Experiment.Json.member name j with
  | Some (Experiment.Json.Int i) -> i
  | Some (Experiment.Json.Float f) -> int_of_float f
  | _ -> default

let jfloat ?(default = 0.) name j =
  match Experiment.Json.member name j with
  | Some (Experiment.Json.Float f) -> f
  | Some (Experiment.Json.Int i) -> float_of_int i
  | _ -> default

let render_dashboard j =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "uptime %.1fs  seq %d  balls %d  max_load %d  watermark %d\n"
    (jfloat "uptime_s" j) (jint "seq" j) (jint "balls" j) (jint "max_load" j)
    (jint "watermark" j);
  add
    "clients %d (of %d connections)  requests %d  events %d  errors %d  \
     rounds %d\n"
    (jint "clients" j) (jint "connections" j) (jint "requests" j)
    (jint "events" j) (jint "errors" j) (jint "rounds" j);
  (match Experiment.Json.member "round_ns" j with
  | Some r when jint "count" r > 0 ->
      add "rounds: mean %.1f us, p99 %.1f us; mean batch %.1f events\n"
        (jfloat "mean" r /. 1e3)
        (jfloat "p99" r /. 1e3)
        (match Experiment.Json.member "batch_events" j with
        | Some be -> jfloat "mean" be
        | None -> 0.)
  | _ -> ());
  (match Experiment.Json.member "ops" j with
  | Some (Experiment.Json.Obj ops) when ops <> [] ->
      add "\n%-10s %10s %11s %11s %11s %11s\n" "op" "count" "p50(us)"
        "p90(us)" "p99(us)" "p999(us)";
      List.iter
        (fun (name, o) ->
          match Experiment.Json.member "latency_ns" o with
          | Some lat when jint "count" lat > 0 ->
              add "%-10s %10d %11.1f %11.1f %11.1f %11.1f\n" name
                (jint "count" lat)
                (jfloat "p50" lat /. 1e3)
                (jfloat "p90" lat /. 1e3)
                (jfloat "p99" lat /. 1e3)
                (jfloat "p999" lat /. 1e3)
          | _ -> ())
        ops
  | _ -> ());
  (match Experiment.Json.member "shards" j with
  | Some (Experiment.Json.List shards) when shards <> [] ->
      add "\n%-6s %10s %9s %10s %8s %10s %12s\n" "shard" "balls" "max_load"
        "applied" "queue" "drains" "drain p99us";
      List.iter
        (fun s ->
          let drain = Experiment.Json.member "drain_ns" s in
          add "%-6d %10d %9d %10d %8d %10d %12.1f\n" (jint "shard" s)
            (jint "balls" s) (jint "max_load" s) (jint "applied" s)
            (jint "queue_depth" s)
            (match drain with Some d -> jint "count" d | None -> 0)
            (match drain with Some d -> jfloat "p99" d /. 1e3 | None -> 0.))
        shards
  | _ -> ());
  (match Experiment.Json.member "durability" j with
  | Some d ->
      add
        "\ndurability: journal %d bytes (flushed %.1fs ago%s), snapshot seq \
         %d (%.1fs ago), %d mutations since\n"
        (jint "journal_bytes" d)
        (jfloat "flush_age_s" d)
        (match Experiment.Json.member "sync_age_s" d with
        | Some (Experiment.Json.Float s) -> Printf.sprintf ", fsynced %.1fs ago" s
        | _ -> "")
        (jint "snapshot_seq" d)
        (jfloat "snapshot_age_s" d)
        (jint "since_snapshot" d)
  | None -> ());
  Buffer.contents b

let stat connect json prom interval count =
  if json && prom then stat_die "--json and --prom are mutually exclusive";
  if json then print_endline (fetch_stats connect `Json)
  else if prom then begin
    match Experiment.Json.of_string (fetch_stats connect `Prom) with
    | Ok j -> (
        match Experiment.Json.member "text" j with
        | Some (Experiment.Json.String text) -> print_string text
        | _ -> stat_die "malformed reply: no text field")
    | Error msg -> stat_die ("bad reply: " ^ msg)
  end
  else begin
    if interval <= 0. then stat_die "--interval must be positive";
    let forever = count <= 0 in
    let i = ref 0 in
    while forever || !i < count do
      (match Experiment.Json.of_string (fetch_stats connect `Json) with
      | Error msg -> stat_die ("bad reply: " ^ msg)
      | Ok j ->
          if !i > 0 && Unix.isatty Unix.stdout then
            (* redraw in place between refreshes *)
            print_string "\027[2J\027[H";
          print_string (render_dashboard j);
          flush stdout);
      incr i;
      if forever || !i < count then
        try ignore (Unix.select [] [] [] interval)
        with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  end

let stat_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"One-shot: print the raw stats reply (one JSON line) and \
                   exit.")
  in
  let prom =
    Arg.(value & flag
         & info [ "prom" ]
             ~doc:"One-shot: print the Prometheus text exposition and exit.")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECS"
             ~doc:"Dashboard refresh interval.")
  in
  let count =
    Arg.(value & opt int 1
         & info [ "count" ] ~docv:"N"
             ~doc:"Dashboard renders before exiting (0 = refresh until \
                   interrupted).")
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:"Show live telemetry of a running service (latency percentiles, \
             stage costs, shard and durability gauges)")
    Term.(const stat $ connect_arg $ json $ prom $ interval $ count)

(* ---- entry point ---- *)

let () =
  let doc = "recovery time of dynamic allocation processes (SPAA 1998)" in
  let info = Cmd.info "repro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            simulate_cmd; recover_cmd; couple_cmd; edge_cmd; exact_cmd;
            fluid_cmd; tv_cmd; weighted_cmd; parallel_cmd; removal_cmd;
            bench_cmd; validate_cmd; serve_cmd; load_cmd; query_cmd; stat_cmd;
          ]))
