(* Weighted jobs (the Berenbrink et al. line cited in the paper's intro):
   servers receive jobs whose sizes vary.  How much of the power of two
   choices survives depends on the weight tail - decisive for bounded
   sizes, marginal for heavy tails where one huge job dominates.

     dune exec examples/weighted_jobs.exe *)

module W = Core.Weighted

let () =
  let n = 8192 in
  let g = Prng.Rng.create ~seed:41 () in
  Printf.printf "Dispatching %d weighted jobs to %d servers\n\n" n n;
  Printf.printf "%-22s %10s %10s %10s\n" "job-size distribution" "d=1" "d=2" "gain";
  List.iter
    (fun dist ->
      let max_of d =
        let g' = Prng.Rng.split g in
        W.max_load (W.static_run g' ~n ~m:n ~d ~dist)
      in
      let m1 = max_of 1 and m2 = max_of 2 in
      Printf.printf "%-22s %10.2f %10.2f %9.2fx\n" (W.dist_name dist) m1 m2
        (m1 /. m2))
    [
      W.Constant 1.;
      W.Uniform_unit;
      W.Exponential 1.;
      W.Pareto { alpha = 2.5; xmin = 1. };
      W.Pareto { alpha = 1.2; xmin = 1. };
    ];

  (* A dynamic day in the cluster: jobs finish at random, new weighted
     jobs arrive, the dispatcher samples two servers. *)
  let t = W.static_run g ~n:1024 ~m:1024 ~d:2 ~dist:(W.Exponential 1.) in
  let peak = ref 0. in
  for _ = 1 to 100 * 1024 do
    W.dynamic_step t g ~d:2 ~dist:(W.Exponential 1.);
    if W.max_load t > !peak then peak := W.max_load t
  done;
  Printf.printf
    "\nDynamic run (1024 servers, exponential sizes, 100n steps):\n";
  Printf.printf "  final max load %.2f, worst seen %.2f, total weight %.0f\n"
    (W.max_load t) !peak (W.total_weight t);
  Printf.printf
    "  (the recovery-time machinery of the paper applies per Section 7: the \
     weighted process is scenario A with an enriched state)\n"
