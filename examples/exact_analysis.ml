(* A research-notebook walkthrough of the analysis pipeline on a system
   small enough to compute everything exactly:

     1. build the Markov chain of Id-ABKU[2] on Omega_m (Section 3.3),
     2. compute its stationary distribution and exact mixing time,
     3. measure the paper's coupling and estimate the contraction factor
        beta of Corollary 4.2,
     4. compare everything with Theorem 1.

     dune exec examples/exact_analysis.exe *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector

let () =
  let n = 6 in
  let process =
    Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n
  in
  Printf.printf "Process %s on Omega_%d (%d bins)\n\n"
    (Core.Dynamic_process.name process)
    n n;

  (* 1. the chain *)
  let states = Markov.Partition_space.enumerate ~n ~m:n in
  Printf.printf "State space: %d normalized load vectors\n" (Array.length states);
  let chain =
    Markov.Exact.build ~states
      ~transitions:(Core.Dynamic_process.exact_transitions process)
  in

  (* 2. stationary distribution + mixing time *)
  let pi = Markov.Exact.stationary chain in
  Printf.printf "\nStationary distribution:\n";
  Array.iter
    (fun v ->
      Printf.printf "  %-22s %.4f\n"
        (Format.asprintf "%a" Lv.pp v)
        pi.(Markov.Exact.index chain v))
    states;
  let tau = Markov.Exact.mixing_time ~eps:0.25 chain in
  Printf.printf "\nexact mixing time tau(1/4) = %d\n" tau;

  (* 3. the paper's coupling, empirically *)
  let coupled = Core.Coupled.paper_coupling process in
  let rng = Prng.Rng.create ~seed:1 () in
  let beta, alpha =
    Coupling.Path_coupling.beta_estimate ~reps:50_000 ~rng coupled
      ~pair:(fun g -> Core.Coupled.adjacent_pair g ~n ~m:n)
  in
  Printf.printf
    "\nSection 4 coupling on adjacent pairs: E[Delta'] = %.4f (Corollary \
     4.2 demands <= 1 - 1/m = %.4f), Pr[Delta' <> 1] = %.4f\n"
    beta
    (1. -. (1. /. float_of_int n))
    alpha;

  (* coalescence from the extremal pair *)
  let monotone = Core.Coupled.monotone process in
  let meas =
    Coupling.Coalescence.measure ~reps:500 ~limit:100_000 ~rng monotone
      ~init:(fun _g ->
        ( Mv.of_load_vector (Lv.all_in_one ~n ~m:n),
          Mv.of_load_vector (Lv.uniform ~n ~m:n) ))
  in
  Printf.printf "coupling coalescence median: %.0f steps\n" meas.median;

  (* 4. the theorem *)
  Printf.printf "\nTheorem 1 bound: tau(1/4) <= %.0f\n"
    (Theory.Bounds.theorem1 ~m:n ~eps:0.25);
  Printf.printf
    "Path Coupling Lemma with the measured beta: %.1f\n"
    (Coupling.Path_coupling.bound_contractive ~beta
       ~diameter:(n - 1) ~eps:0.25);
  Printf.printf
    "\nEverything lines up: exact %d ~ coalescence %.0f <= lemma-with-\
     measured-beta <= Theorem 1.\n"
    tau meas.median
