(* Fair allocations (paper, Sections 1.1 and 6): the carpool problem of
   Fagin and Williams under the uniform-pairs model.  Each day two people
   share a car; the greedy rule (whoever has driven less drives) keeps
   everyone's driving balance within O(log log n) of fair, and after any
   atypical stretch the system recovers in O(n^2 ln^2 n) days.

   The demo compares greedy against a coin-flip baseline and shows the
   recovery of an adversarially unfair state.

     dune exec examples/fair_scheduler.exe *)

let coin_flip_baseline g ~n ~days =
  (* Baseline: the driver is chosen by a fair coin.  Balances perform
     random walks and unfairness grows like sqrt(days). *)
  let balances = Array.make n 0 in
  for _ = 1 to days do
    let a, b = Prng.Rng.pair_distinct g n in
    let driver, passenger = if Prng.Rng.bool g then (a, b) else (b, a) in
    balances.(driver) <- balances.(driver) + 1;
    balances.(passenger) <- balances.(passenger) - 1
  done;
  Array.fold_left (fun acc x -> Stdlib.max acc (abs x)) 0 balances

let () =
  let n = 128 in
  let days = 50 * n * n in
  let g = Prng.Rng.create ~seed:21 () in

  (* Greedy. *)
  let pool = Edgeorient.Carpool.create ~n in
  Edgeorient.Carpool.run g pool ~days;
  Printf.printf "After %d days with %d people:\n" days n;
  Printf.printf "  greedy unfairness:    %.1f (Ajtai et al. predict ~log2 log2 n = %.2f)\n"
    (Edgeorient.Carpool.max_unfairness pool)
    (Theory.Bounds.edge_stationary_unfairness ~n);
  Printf.printf "  coin-flip unfairness: %.1f (random walk, grows like sqrt(days))\n"
    (float_of_int (coin_flip_baseline g ~n ~days) /. 2.);

  (* Recovery: start from an adversarial ledger. *)
  let extreme = n / 2 in
  let balances =
    Array.init n (fun i ->
        if i < n / 2 then if i mod 2 = 0 then extreme else -extreme else 0)
  in
  let pool = Edgeorient.Carpool.of_balances balances in
  Printf.printf "\nAdversarial ledger: unfairness %.1f\n"
    (Edgeorient.Carpool.max_unfairness pool);
  let target = Theory.Bounds.edge_stationary_unfairness ~n +. 1. in
  let day = ref 0 in
  while Edgeorient.Carpool.max_unfairness pool > target do
    Edgeorient.Carpool.day g pool;
    incr day
  done;
  Printf.printf
    "recovered to unfairness <= %.1f after %d days; the paper's Theorem 2 \
     bounds the recovery by O(n^2 ln^2 n) = %.0f\n"
    target !day
    (Theory.Bounds.theorem2 ~n)
