(* Scenario B in its natural habitat (paper, Section 1.1, footnote 2):
   a hash store with n buckets and two-choice insertion.  Deletions hit a
   random *occupied bucket* (e.g. a compaction worker picks a bucket and
   evicts one record) - that is exactly scenario B, whose recovery is
   quadratically slower than scenario A's.

   The demo measures both scenarios on the same store and prints the
   stationary bucket-depth profile against the fluid-limit prediction.

     dune exec examples/hashing_store.exe *)

let recovery ~scenario ~n =
  let g = Prng.Rng.create ~seed:31 () in
  let spec =
    { Core.Recovery.scenario; rule = Core.Scheduling_rule.abku 2; n; m = n }
  in
  let fluid =
    match scenario with
    | Core.Scenario.A -> Fluid.Mean_field.fixed_point_a ~d:2 ~m_over_n:1. ~levels:40
    | Core.Scenario.B -> Fluid.Mean_field.fixed_point_b ~d:2 ~m_over_n:1. ~levels:40
  in
  let target = Fluid.Mean_field.predicted_max_load ~n fluid + 1 in
  match
    Core.Recovery.time_to_max_load ~rng:g spec ~target ~limit:(10_000 * n)
  with
  | Some t -> (target, t)
  | None -> (target, -1)

let () =
  let n = 512 in
  Printf.printf "Hash store with %d buckets, two-choice insertion\n\n" n;

  Printf.printf "Recovery from a fully skewed store (all records in one bucket):\n";
  List.iter
    (fun (name, scenario) ->
      let target, steps = recovery ~scenario ~n in
      Printf.printf "  deletions hit %-28s -> max depth <= %d after %d ops\n"
        name target steps)
    [
      ("a random record (scenario A)", Core.Scenario.A);
      ("a random occupied bucket (scenario B)", Core.Scenario.B);
    ];
  Printf.printf
    "  (the paper: O(n ln n) = %.0f for A, O(n^2 ln n) = %.0f for B)\n"
    (Theory.Bounds.recovery_a_steps ~n)
    (Theory.Bounds.recovery_b_steps ~n);

  (* Stationary depth profile for scenario B vs the fluid limit. *)
  let g = Prng.Rng.create ~seed:32 () in
  let bins =
    Core.Bins.of_loads
      (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m:n))
  in
  let sys = Core.System.create Core.Scenario.B (Core.Scheduling_rule.abku 2) bins in
  Core.System.run g sys ~steps:(100 * n);
  let hist = Stats.Histogram.create () in
  for _ = 1 to 200 do
    Core.System.run g sys ~steps:n;
    Array.iter (Stats.Histogram.add hist) (Core.Bins.loads (Core.System.bins sys))
  done;
  let fluid = Fluid.Mean_field.fixed_point_b ~d:2 ~m_over_n:1. ~levels:10 in
  Printf.printf "\nStationary bucket depth (scenario B) vs fluid limit:\n";
  Printf.printf "  %5s  %10s  %10s\n" "depth" "P(>=depth)" "fluid s_i";
  for i = 1 to 5 do
    Printf.printf "  %5d  %10.5f  %10.5f\n" i
      (Stats.Histogram.fraction_at_least hist i)
      fluid.(i - 1)
  done
