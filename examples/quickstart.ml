(* Quickstart: crash a balanced system, watch it recover, and compare the
   measured recovery time to Theorem 1's prediction.

     dune exec examples/quickstart.exe *)

let () =
  let n = 512 in
  let g = Prng.Rng.create ~seed:1 ()
  (* Scenario A (a random job terminates) with two-choice insertions:
     the process the paper calls Id-ABKU[2]. *)
  and scenario = Core.Scenario.A
  and rule = Core.Scheduling_rule.abku 2 in

  (* The "crash": all n balls piled into a single bin. *)
  let loads = Array.make n 0 in
  loads.(0) <- n;
  let system = Core.System.create scenario rule (Core.Bins.of_loads loads) in

  (* What "recovered" means: the stationary max load predicted by the
     fluid limit, plus one. *)
  let profile = Fluid.Mean_field.fixed_point_a ~d:2 ~m_over_n:1. ~levels:40 in
  let target = Fluid.Mean_field.predicted_max_load ~n profile + 1 in
  Printf.printf "n = m = %d, process %s, recovery target: max load <= %d\n" n
    "Id-ABKU[2]" target;

  Printf.printf "\n%8s  %s\n" "step" "max load";
  let step = ref 0 in
  let next_print = ref 1 in
  while Core.System.max_load system > target do
    if !step = !next_print || !step = 0 then begin
      Printf.printf "%8d  %d\n" !step (Core.System.max_load system);
      next_print := 2 * !next_print
    end;
    Core.System.step g system;
    incr step
  done;
  Printf.printf "%8d  %d   <- recovered\n" !step (Core.System.max_load system);

  let bound = Theory.Bounds.theorem1 ~m:n ~eps:0.25 in
  Printf.printf
    "\nrecovered in %d steps; Theorem 1 bounds the mixing time by %.0f\n"
    !step bound;
  Printf.printf "(the bound covers total-variation mixing from any state, so \
                 recovery of the max load should land below it)\n"
