(* Dynamic resource allocation (paper, Section 1.1): n identical servers;
   each step one job finishes (a job chosen at random terminates -
   scenario A) and one new job arrives.  The dispatcher samples d servers
   and sends the job to the least loaded.

   The demo compares d = 1 (random dispatch) with d = 2 (two choices)
   through a crash-recovery episode and in steady state.

     dune exec examples/load_balancer.exe *)

let episode ~d =
  let n = 1024 in
  let g = Prng.Rng.create ~seed:11 () in
  let rule = Core.Scheduling_rule.abku d in
  (* Steady state first: start balanced, run 30n steps. *)
  let bins =
    Core.Bins.of_loads
      (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m:n))
  in
  let system = Core.System.create Core.Scenario.A rule bins in
  Core.System.run g system ~steps:(30 * n);
  let steady = Core.System.max_load system in
  (* The crash: a burst re-assigns every job of 32 random servers onto
     server 0 (e.g. a failover gone wrong). *)
  let bins = Core.System.bins system in
  for victim = 1 to 32 do
    while Core.Bins.load bins victim > 0 do
      Core.Bins.move_ball bins ~src:victim ~dst:0
    done
  done;
  let crashed = Core.Bins.max_load bins in
  (* Recovery: back to the steady max load + 1. *)
  let target = steady + 1 in
  let recovery =
    Core.System.run_until g system
      ~pred:(fun s -> Core.System.max_load s <= target)
      ~limit:(1000 * n)
  in
  (d, steady, crashed, target, recovery)

let () =
  Printf.printf
    "Load balancer on 1024 servers, one job ends / one arrives per step\n\n";
  Printf.printf "%4s  %10s  %12s  %14s\n" "d" "steady max" "after crash"
    "recovery steps";
  List.iter
    (fun d ->
      let d, steady, crashed, _target, recovery = episode ~d in
      Printf.printf "%4d  %10d  %12d  %14s\n" d steady crashed
        (match recovery with
        | Some t -> string_of_int t
        | None -> "did not recover"))
    [ 1; 2; 3 ];
  Printf.printf
    "\nTwo choices keep the steady max load exponentially lower (ln ln n vs \
     ln n), and the paper's Theorem 1 says the recovery after any crash \
     takes O(n ln n) steps = %.0f here.\n"
    (Theory.Bounds.recovery_a_steps ~n:1024)
