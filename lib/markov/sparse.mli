(** Compressed-sparse-row float matrices.

    The transition matrix of an allocation chain over [|S|] partition
    states has only [O(n)] non-zero successors per row, so the dense
    [O(|S|²)] representation in {!Matrix} wastes both memory and — for
    the repeated distribution·matrix products of exact mixing-time
    analysis — time.  This module stores only the non-zeros in the
    classic [row_ptr]/[col_idx]/[values] layout; construction sorts each
    row by column, merges duplicate coordinates by summing, and drops
    explicit zeros, so [nnz] counts structural non-zeros only. *)

type t

val of_rows : rows:int -> cols:int -> (int -> (int * float) list) -> t
(** [of_rows ~rows ~cols f] builds the matrix row by row from the entry
    lists [f i] (any order; duplicate columns are summed, zeros
    dropped).
    @raise Invalid_argument on non-positive dimensions or an
    out-of-bounds column index. *)

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** [of_triplets ~rows ~cols l] builds from [(row, col, value)]
    coordinates, same merging rules as {!of_rows}.
    @raise Invalid_argument on non-positive dimensions or out-of-bounds
    indices. *)

val of_dense : Matrix.t -> t
(** Exact non-zeros of a dense matrix. *)

val to_dense : t -> Matrix.t

val rows : t -> int
val cols : t -> int

val nnz : t -> int
(** Number of stored (non-zero) entries. *)

val row_iter : t -> int -> f:(int -> float -> unit) -> unit
(** [row_iter t i ~f] applies [f col value] to the stored entries of row
    [i] in increasing column order.
    @raise Invalid_argument on an out-of-bounds row. *)

val row_sums : t -> float array

val is_stochastic : ?tol:float -> t -> bool
(** Square, entries ≥ −[tol], every row sum within [tol] of 1 (default
    [tol = 1e-9]). *)

val spmv : float array -> t -> float array
(** [spmv v t] is the row vector [v·t] — one step of distribution
    evolution when [t] is a transition matrix.  Rows with [v.(i) = 0]
    are skipped, so evolving a point mass costs only the reachable
    rows.
    @raise Invalid_argument on dimension mismatch. *)

val spmv_into : t -> src:float array -> dst:float array -> unit
(** Allocation-free {!spmv}: overwrite [dst] with [src·t].  [src] and
    [dst] must be distinct arrays.
    @raise Invalid_argument on dimension mismatch. *)
