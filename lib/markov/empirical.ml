let counts_of sample =
  if Array.length sample = 0 then
    invalid_arg "Empirical.tv_between_samples: empty sample";
  let max_v =
    Array.fold_left
      (fun acc v ->
        if v < 0 then invalid_arg "Empirical.tv_between_samples: negative value";
        Stdlib.max acc v)
      0 sample
  in
  let counts = Array.make (max_v + 1) 0 in
  Array.iter (fun v -> counts.(v) <- counts.(v) + 1) sample;
  counts

let tv_between_samples a b =
  let ca = counts_of a and cb = counts_of b in
  let na = float_of_int (Array.length a) and nb = float_of_int (Array.length b) in
  let levels = Stdlib.max (Array.length ca) (Array.length cb) in
  let acc = ref 0. in
  for v = 0 to levels - 1 do
    let pa = if v < Array.length ca then float_of_int ca.(v) /. na else 0. in
    let pb = if v < Array.length cb then float_of_int cb.(v) /. nb else 0. in
    acc := !acc +. Float.abs (pa -. pb)
  done;
  !acc /. 2.

let observable_tv chain ~rng ~x0 ~y0 ~t ~reps ~observable =
  if reps <= 0 then invalid_arg "Empirical.observable_tv: reps must be positive";
  if t < 0 then invalid_arg "Empirical.observable_tv: negative t";
  let sample start =
    Array.init reps (fun _ ->
        let g = Prng.Rng.split rng in
        observable (Chain.iterate chain g (start ()) t))
  in
  tv_between_samples (sample x0) (sample y0)

let decay_profile chain ~rng ~x0 ~y0 ~times ~reps ~observable =
  List.map
    (fun t -> (t, observable_tv chain ~rng ~x0 ~y0 ~t ~reps ~observable))
    times
