(* Counting and the plug-in TV distance are delegated to the shared
   count layer (Stats.Freq) introduced with the lib/validate conformance
   subsystem; this module keeps its historical interface and error
   messages and adds only the chain-driving glue. *)

let counts_of what sample =
  if Array.length sample = 0 then
    invalid_arg (Printf.sprintf "Empirical.%s: empty sample" what);
  Array.iter
    (fun v ->
      if v < 0 then
        invalid_arg (Printf.sprintf "Empirical.%s: negative value" what))
    sample;
  Stats.Freq.of_values sample

let tv_between_samples a b =
  let ca = counts_of "tv_between_samples" a
  and cb = counts_of "tv_between_samples" b in
  Stats.Freq.tv ca cb

let iterate chain g s t =
  let state = ref s in
  for _ = 1 to t do
    state := chain.Chain.step g !state
  done;
  !state

let observable_tv chain ~rng ~x0 ~y0 ~t ~reps ~observable =
  if reps <= 0 then invalid_arg "Empirical.observable_tv: reps must be positive";
  if t < 0 then invalid_arg "Empirical.observable_tv: negative t";
  let sample start =
    Array.init reps (fun _ ->
        let g = Prng.Rng.split rng in
        observable (iterate chain g (start ()) t))
  in
  tv_between_samples (sample x0) (sample y0)

let decay_profile chain ~rng ~x0 ~y0 ~times ~reps ~observable =
  List.map
    (fun t -> (t, observable_tv chain ~rng ~x0 ~y0 ~t ~reps ~observable))
    times
