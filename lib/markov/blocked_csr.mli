(** Blocked CSR transition-matrix store with streaming builds, optional
    disk spill, and deterministic block-parallel kernels.

    The matrix is cut into fixed row-range blocks, each a compact CSR
    shard.  Shards either stay in memory or append to a disk-backed
    block file (format ["repro.blocked-csr/1"]) as soon as their row
    range completes, so the builder's working set is one block and
    builds larger than RAM finish.  Rows are fed one at a time in index
    order — exactly what a BFS enumeration produces, since state [i]'s
    row is fully determined when [i] is dequeued.

    Kernels compute [dst ← src · P], optionally fused with an L1
    statistic (power-iteration residual, TV distance to π).  With a
    {!Parallel.Pool} the product is block-parallel with a
    column-owner-computes split whose results — including the fused
    statistics — are bit-identical to the sequential path for any
    domain count. *)

type t

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val block_rows : t -> int
(** Rows per block (the last block may be shorter). *)

val block_count : t -> int

val path : t -> string option
(** The backing block file, when the matrix was spilled or opened from
    disk. *)

val in_memory : t -> bool
(** Whether every shard is resident.  Disk-backed matrices stream
    through one shared channel and are not safe to read from several
    domains at once. *)

val close : t -> unit
(** Close the backing file, if any.  The matrix must not be used
    afterwards unless it is fully in memory. *)

(** {1 Streaming builds} *)

type builder

val builder : ?block_rows:int -> ?spill:string -> unit -> builder
(** A fresh builder (default [block_rows = 4096]).  With [~spill:path],
    each completed block is appended to [path] and dropped from memory;
    the file is finalized (footer + trailer) by {!finish}.
    @raise Invalid_argument if [block_rows < 1]. *)

val add_row : builder -> (int * float) list -> unit
(** Append the next row.  Entries are sorted by column, duplicate
    columns merged, exact zeros dropped (the {!Sparse.of_rows}
    normalization, so conversions preserve nnz).  Column bounds are
    checked at {!finish}, when the final column count is known.
    @raise Invalid_argument on a negative column index. *)

val finish : builder -> cols:int -> t
(** Seal the matrix with [cols] columns.
    @raise Invalid_argument if no rows were added, or if any recorded
    column index is [>= cols]. *)

val open_file : string -> t
(** Reopen a spilled block file.  Validates the trailer magic, so a
    file from a killed build (no trailer yet) is rejected.
    @raise Failure on a truncated or corrupt file.
    @raise Sys_error if the file cannot be read. *)

(** {1 Conversions and queries} *)

val of_sparse : ?block_rows:int -> ?spill:string -> Sparse.t -> t
val to_sparse : t -> Sparse.t

val row_sums : t -> float array
val is_stochastic : ?tol:float -> t -> bool

(** {1 Kernels} *)

type kernel
(** A matrix prepared for repeated products: owns the column-chunk
    partition, the per-worker ranges (balanced by per-chunk nnz) and the
    fused-statistic scratch. *)

val kernel : ?pool:Parallel.Pool.t -> t -> kernel
(** Prepare [t] for repeated products.  The pool is used only when its
    size exceeds 1 and every shard is in memory; disk-backed matrices
    always stream sequentially (one shard resident at a time). *)

val kernel_parallel : kernel -> bool
(** Whether products will actually fan out over a pool. *)

val spmv : kernel -> src:float array -> dst:float array -> unit
(** [dst ← src · P].  Bit-identical for any pool size.
    @raise Invalid_argument on dimension mismatch. *)

val step_l1 : kernel -> src:float array -> dst:float array -> float
(** Fused power-iteration step: [dst ← src · P], returning
    [‖dst − src‖₁].  The statistic is accumulated per fixed-width column
    chunk and reduced in chunk order, so it too is identical for any
    pool size. *)

val step_tv :
  kernel -> pi:float array -> src:float array -> dst:float array -> float
(** Fused evolution step: [dst ← src · P], returning
    [½ ‖dst − pi‖₁] — the TV distance driving mixing searches. *)

val spmv_multi :
  kernel -> srcs:float array array -> dsts:float array array -> unit
(** Batched product without a fused statistic: [dsts.(b) ← srcs.(b) · P]
    for every vector in one traversal of the matrix, each result
    bit-identical to the corresponding {!spmv} call. *)

val step_tv_multi :
  kernel ->
  pi:float array ->
  srcs:float array array ->
  dsts:float array array ->
  float array
(** Batched fused evolution step: [dsts.(b) ← srcs.(b) · P] for every
    vector of the batch in {e one} traversal of the matrix, returning
    the per-vector TV distances [½ ‖dsts.(b) − pi‖₁].  The matrix —
    indices plus values — dominates the memory traffic of a fused step,
    so a batch of B vectors costs close to one single-vector product
    instead of B; disk-backed matrices are streamed once per batch
    instead of once per vector.  Every [dsts.(b)] and every returned
    statistic is bit-identical to the corresponding single-vector
    {!step_tv} call (same contribution skips, same per-entry summation
    order, same chunk-order reduction), for any pool size.  See
    [DESIGN.md], "The representation layer".
    @raise Invalid_argument if [srcs] and [dsts] differ in length or any
    vector has the wrong dimension. *)
