(** Versioned snapshots of long exact-analysis runs (schema
    ["repro.exact-checkpoint/1"]).

    A snapshot captures everything a killed power iteration or mixing
    search needs to resume: the in-progress iteration vector, the
    stationary distribution once found, the completed per-start
    crossings, the shared pruning bound, and the in-flight bracket with
    its committed base vector.  No RNG state is involved — the search
    schedule is a deterministic function of the snapshot — and the final
    τ is independent of the probe schedule, so a resumed run reproduces
    the uninterrupted answer bit-for-bit (see the qcheck property in
    [test/test_properties.ml]).

    Files are written atomically (temporary sibling + rename); loading
    treats a missing, truncated or foreign file as "no checkpoint". *)

type inflight = {
  start : int;  (** State index whose crossing is being bracketed. *)
  t_base : int;  (** Time of [base]; its TV to π exceeds ε. *)
  lo : int;  (** Largest time known to be above ε. *)
  hi : int;  (** Smallest time known to be ≤ ε; [0] while doubling. *)
  base : float array;  (** Distribution at [t_base]. *)
}

type stationary = {
  tol : float;
  iter : int;
  prev_r : float;
  dist : float array;
}
(** Power iteration in progress. *)

type mixing = {
  eps : float;
  pi_tol : float;  (** Tolerance [pi] was solved to. *)
  pi : float array;
  tau_hat : int;  (** Shared pruning bound: the largest crossing found. *)
  completed : (int * int) list;  (** Finished [(start, τ_start)] pairs. *)
  inflight : inflight option;
}
(** π found; per-start crossing searches in progress. *)

type phase = Stationary of stationary | Mixing of mixing

type snapshot = {
  states : int;
  nnz : int;  (** Fingerprint: a snapshot from a different chain shape
                  is refused at resume. *)
  phase : phase;
}

val save_file : string -> snapshot -> unit
(** Atomic write: encode to [path ^ ".tmp"], then rename. *)

val load_file : string -> snapshot option
(** [None] if the file is missing, truncated, or not a checkpoint. *)

(** {1 Sinks}

    The analysis code stores through an abstract sink, so tests can
    inject in-memory sinks that count stores or raise to simulate a
    kill at an exact point. *)

type sink

val sink :
  ?min_interval:float ->
  store:(snapshot -> unit) ->
  fetch:(unit -> snapshot option) ->
  unit ->
  sink
(** A custom sink.  [min_interval] (seconds, default 0) throttles
    {!offer}. *)

val file_sink : ?min_interval:float -> string -> sink
(** Persist to one file (default [min_interval = 15.]). *)

val memory_sink : ?min_interval:float -> unit -> sink * snapshot option ref
(** An in-memory sink and the cell it stores to, for tests. *)

val commit : sink -> snapshot -> unit
(** Store unconditionally (phase transitions, completed units of
    work). *)

val offer : sink -> (unit -> snapshot) -> unit
(** Store unless one happened within the last [min_interval] seconds.
    The thunk runs only when the store does, so snapshot construction
    (vector copies) is skipped while throttled. *)

val resume : sink -> snapshot option
(** The sink's current snapshot, if any. *)
