type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive size";
  { rows; cols; data = Array.make (rows * cols) 0. }

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.
  done;
  m

let rows m = m.rows
let cols m = m.cols

let check m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix: index out of bounds"

let get m i j = check m i j; m.data.((i * m.cols) + j)
let set m i j x = check m i j; m.data.((i * m.cols) + j) <- x
let add_to m i j x = check m i j;
  m.data.((i * m.cols) + j) <- m.data.((i * m.cols) + j) +. x

let copy m = { m with data = Array.copy m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let vec_mul v m =
  if Array.length v <> m.rows then invalid_arg "Matrix.vec_mul: dimension mismatch";
  let out = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let vi = v.(i) in
    if vi <> 0. then
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (vi *. m.data.((i * m.cols) + j))
      done
  done;
  out

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.row";
  Array.sub m.data (i * m.cols) m.cols

let is_stochastic ?(tol = 1e-9) m =
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    let s = ref 0. in
    for j = 0 to m.cols - 1 do
      let x = m.data.((i * m.cols) + j) in
      if x < -.tol then ok := false;
      s := !s +. x
    done;
    if Float.abs (!s -. 1.) > tol then ok := false
  done;
  !ok

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix.max_abs_diff: dimension mismatch";
  let best = ref 0. in
  Array.iteri
    (fun k x ->
      let d = Float.abs (x -. b.data.(k)) in
      if d > !best then best := d)
    a.data;
  !best
