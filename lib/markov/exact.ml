type 'state t = {
  states : 'state array;
  lookup : ('state, int) Hashtbl.t;
  sparse : Sparse.t;
  mutable dense : Matrix.t option; (* lazy dense view *)
  mutable pi : (float array * float) option; (* cached stationary, with its tol *)
}

let build ~states ~transitions =
  let n = Array.length states in
  if n = 0 then invalid_arg "Exact.build: empty state space";
  let lookup = Hashtbl.create n in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem lookup s then invalid_arg "Exact.build: duplicate state";
      Hashtbl.add lookup s i)
    states;
  let sparse =
    Sparse.of_rows ~rows:n ~cols:n (fun i ->
        let row = transitions states.(i) in
        let total = ref 0. in
        let entries =
          List.map
            (fun (s', p) ->
              if p < 0. then invalid_arg "Exact.build: negative probability";
              match Hashtbl.find_opt lookup s' with
              | None -> invalid_arg "Exact.build: successor outside state space"
              | Some j ->
                  total := !total +. p;
                  (j, p))
            row
        in
        if Float.abs (!total -. 1.) > 1e-9 then
          invalid_arg "Exact.build: row does not sum to 1";
        entries)
  in
  { states; lookup; sparse; dense = None; pi = None }

let size c = Array.length c.states
let sparse c = c.sparse
let states c = Array.copy c.states

let matrix c =
  match c.dense with
  | Some m -> m
  | None ->
      let m = Sparse.to_dense c.sparse in
      c.dense <- Some m;
      m

let index c s =
  match Hashtbl.find_opt c.lookup s with
  | Some i -> i
  | None -> raise Not_found

let state c i = c.states.(i)

let tv_distance p q =
  if Array.length p <> Array.length q then
    invalid_arg "Exact.tv_distance: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. q.(i))) p;
  !acc /. 2.

let l1_diff a b =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Float.abs (Array.unsafe_get a i -. Array.unsafe_get b i)
  done;
  !acc

(* TV between a dense distribution and pi, without allocating. *)
let tv_to_pi pi d = l1_diff pi d /. 2.

(* Power iteration with a gap-corrected stopping rule.  The naive rule
   "stop when successive iterates are close" can stop far from π on a
   slowly-mixing chain: the residual r_k = ‖d_k P − d_k‖₁ relates to the
   true error as ‖d_k − π‖₁ ≈ r_k / (1 − λ₂).  We estimate the decay
   factor λ₂ from the residual ratio and require both the residual and
   the gap-corrected error to be ≤ tol.  If the residual stops
   decreasing (floating-point floor) while already ≤ tol, no further
   progress is possible and we accept the iterate. *)
let power_stationary ~tol ~max_iter ~n step =
  let dist = ref (Array.make n (1. /. float_of_int n)) in
  let next = ref (Array.make n 0.) in
  let prev_r = ref infinity in
  let result = ref None in
  let iter = ref 0 in
  while !result = None do
    if !iter > max_iter then failwith "Exact.stationary: did not converge";
    step ~src:!dist ~dst:!next;
    let r = l1_diff !dist !next in
    let converged =
      r = 0.
      || r <= tol
         &&
         let rho = r /. !prev_r in
         (rho < 1. && r /. (1. -. rho) <= tol) || r >= !prev_r
    in
    prev_r := r;
    let tmp = !dist in
    dist := !next;
    next := tmp;
    if converged then result := Some !dist;
    incr iter
  done;
  (Option.get !result, !iter)

(* Shared cached π: reused when it was computed at a tolerance at least
   as tight as the requested one. *)
let stationary_cached ?(tol = 1e-12) ?(max_iter = 1_000_000) c =
  match c.pi with
  | Some (pi, cached_tol) when cached_tol <= tol -> pi
  | _ ->
      let sp =
        if Obs.enabled () then
          Obs.begin_span "exact.stationary"
            ~args:[ ("states", Obs.Int (size c)) ]
        else Obs.null_span
      in
      let pi, iters =
        power_stationary ~tol ~max_iter ~n:(size c) (fun ~src ~dst ->
            Sparse.spmv_into c.sparse ~src ~dst)
      in
      Obs.end_span ~args:[ ("iterations", Obs.Int iters) ] sp;
      c.pi <- Some (pi, tol);
      pi

let stationary ?tol ?max_iter c =
  Array.copy (stationary_cached ?tol ?max_iter c)

let distribution_after c ~start t =
  if t < 0 then invalid_arg "Exact.distribution_after: negative t";
  let n = size c in
  if start < 0 || start >= n then invalid_arg "Exact.distribution_after: start";
  let cur = ref (Array.make n 0.) in
  let nxt = ref (Array.make n 0.) in
  !cur.(start) <- 1.;
  for _ = 1 to t do
    Sparse.spmv_into c.sparse ~src:!cur ~dst:!nxt;
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp
  done;
  !cur

let worst_tv_after ?domains c ~pi t =
  let n = size c in
  let tvs =
    Parallel.init_array ?domains n (fun start ->
        tv_to_pi pi (distribution_after c ~start t))
  in
  Array.fold_left Float.max 0. tvs

let stationary_expectation c ?pi ~f () =
  let pi = match pi with Some p -> p | None -> stationary_cached c in
  let acc = ref 0. in
  Array.iteri (fun i s -> acc := !acc +. (pi.(i) *. f s)) c.states;
  !acc

(* Per-start TV decay curves.  Each start evolves its own distribution
   vector by repeated spmv — work is independent per start, so the sweep
   fans out over domains; the per-start curves (and hence their
   pointwise max) are identical for any domain count.  A start whose TV
   has fallen to ≤ drop_below stops evolving and keeps its last value:
   per-start TV to π is non-increasing, so the profile error is at most
   drop_below (exact for the default drop_below = 0). *)
let worst_tv_profile ?domains ?(drop_below = 0.) c ~max_t =
  if max_t < 0 then invalid_arg "Exact.worst_tv_profile: negative max_t";
  let pi = stationary_cached c in
  let n = size c in
  let per_start =
    Parallel.init_array ?domains n (fun start ->
        let tvs = Array.make (max_t + 1) 0. in
        let cur = ref (Array.make n 0.) in
        let nxt = ref (Array.make n 0.) in
        !cur.(start) <- 1.;
        tvs.(0) <- tv_to_pi pi !cur;
        let t = ref 1 in
        let stopped = tvs.(0) <= drop_below in
        let stopped = ref stopped in
        if !stopped then for u = 1 to max_t do tvs.(u) <- tvs.(0) done;
        while (not !stopped) && !t <= max_t do
          Sparse.spmv_into c.sparse ~src:!cur ~dst:!nxt;
          let tmp = !cur in
          cur := !nxt;
          nxt := tmp;
          let d = tv_to_pi pi !cur in
          tvs.(!t) <- d;
          if d <= drop_below then begin
            for u = !t + 1 to max_t do
              tvs.(u) <- d
            done;
            stopped := true
          end;
          incr t
        done;
        tvs)
  in
  Array.init (max_t + 1) (fun t ->
      Array.fold_left (fun acc tvs -> Float.max acc tvs.(t)) 0. per_start)

let relaxation_estimate ?domains c ?(max_t = 200) () =
  (* Points below 1e-8 are excluded from the fit, so dropping starts
     once they decay past 1e-9 does not perturb it. *)
  let profile = worst_tv_profile ?domains ~drop_below:1e-9 c ~max_t in
  (* Fit only the clean exponential regime: below the initial transient,
     above the floating-point noise floor. *)
  let pts = ref [] in
  Array.iteri
    (fun t d ->
      if d <= 0.1 && d >= 1e-8 then pts := (float_of_int t, log d) :: !pts)
    profile;
  (match !pts with
  | _ :: _ :: _ -> ()
  | _ -> failwith "Exact.relaxation_estimate: profile decayed too fast to fit");
  (* OLS slope of log TV vs t; tau_rel = -1/slope. *)
  let pts = Array.of_list !pts in
  let n = float_of_int (Array.length pts) in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. pts /. n in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. pts /. n in
  let sxx = Array.fold_left (fun a (x, _) -> a +. ((x -. sx) ** 2.)) 0. pts in
  let sxy =
    Array.fold_left (fun a (x, y) -> a +. ((x -. sx) *. (y -. sy))) 0. pts
  in
  if sxx = 0. || sxy >= 0. then
    failwith "Exact.relaxation_estimate: no exponential decay detected";
  -.sxx /. sxy

(* Doubling-then-bisect search for one start's ε-crossing time.

   Per-start TV to π is non-increasing in t (P contracts signed measures
   in L1), so τ_x = min {t : ‖P^t(x,·) − π‖ ≤ ε} is well defined and
   bisection over the bracket is sound.  [base] holds the distribution
   at time [t_base] (always a t with TV > ε, so the bracket invariant is
   maintained); probes evolve a scratch copy forward without touching
   it, and a probe that becomes the new lower bound is committed by
   swapping buffers.

   [tau_hat] is a shared lower bound on the answer (the max of the exact
   τ_x found so far).  Each start first probes there: if its TV is
   already ≤ ε it cannot raise the max and is abandoned with a single
   probe.  The final max is independent of the probe schedule — a start
   attaining the max has TV > ε at every t below its τ_x, so it is never
   pruned and always contributes its exact crossing — which keeps the
   result identical for any domain count despite the shared counter. *)
let search_crossing c ~pi ~eps ~max_t ~tau_hat start =
  let n = size c in
  let base = ref (Array.make n 0.) in
  let w1 = ref (Array.make n 0.) in
  let w2 = ref (Array.make n 0.) in
  !base.(start) <- 1.;
  let t_base = ref 0 in
  let probe target =
    Sparse.spmv_into c.sparse ~src:!base ~dst:!w1;
    for _ = 2 to target - !t_base do
      Sparse.spmv_into c.sparse ~src:!w1 ~dst:!w2;
      let tmp = !w1 in
      w1 := !w2;
      w2 := tmp
    done;
    tv_to_pi pi !w1
  in
  (* Traced probe: one span per doubling/bisection step carrying the
     probed time and the resulting TV distance.  [kind] distinguishes the
     two search phases in the trace view. *)
  let probe kind target =
    if not (Obs.enabled ()) then probe target
    else begin
      let sp =
        Obs.begin_span kind
          ~args:[ ("start", Obs.Int start); ("target", Obs.Int target) ]
      in
      let tv = probe target in
      Obs.end_span ~args:[ ("tv", Obs.Float tv) ] sp;
      tv
    end
  in
  let commit target =
    let tmp = !base in
    base := !w1;
    w1 := tmp;
    t_base := target
  in
  let guess = min (Atomic.get tau_hat) max_t in
  let prune_sp =
    if Obs.enabled () then
      Obs.begin_span "exact.prune"
        ~args:[ ("start", Obs.Int start); ("guess", Obs.Int guess) ]
    else Obs.null_span
  in
  (* Pruning probe, stepping toward [guess] but checking the (monotone)
     per-start TV after every product: a start that crosses ε at some
     s ≤ guess is certified under the shared bound after only s steps
     instead of always paying the full [guess]. *)
  Sparse.spmv_into c.sparse ~src:!base ~dst:!w1;
  let t = ref 1 in
  let last_tv = ref (tv_to_pi pi !w1) in
  let crossed = ref (!last_tv <= eps) in
  while (not !crossed) && !t < guess do
    Sparse.spmv_into c.sparse ~src:!w1 ~dst:!w2;
    let tmp = !w1 in
    w1 := !w2;
    w2 := tmp;
    incr t;
    last_tv := tv_to_pi pi !w1;
    crossed := !last_tv <= eps
  done;
  if Obs.enabled () then
    Obs.end_span
      ~args:[ ("t", Obs.Int !t); ("tv", Obs.Float !last_tv) ]
      prune_sp;
  if !crossed then !t (* τ_x = t ≤ guess ≤ answer: cannot raise it *)
  else if guess >= max_t then
    failwith "Exact.mixing_time: not mixed within max_t"
  else begin
    commit guess;
    let lo = ref guess in
    let hi = ref 0 in
    while !hi = 0 do
      let target = min (2 * !lo) max_t in
      if probe "exact.double" target <= eps then hi := target
      else if target >= max_t then
        failwith "Exact.mixing_time: not mixed within max_t"
      else begin
        commit target;
        lo := target
      end
    done;
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if probe "exact.bisect" mid <= eps then hi := mid
      else begin
        commit mid;
        lo := mid
      end
    done;
    let rec bump () =
      let cur = Atomic.get tau_hat in
      if !hi > cur && not (Atomic.compare_and_set tau_hat cur !hi) then bump ()
    in
    bump ();
    !hi
  end

let mixing_time_impl ~eps ~max_t ?domains c =
  let pi = stationary_cached c in
  let n = size c in
  (* TV of the point mass at [start] against π. *)
  let tv0 start =
    let acc = ref 0. in
    for j = 0 to n - 1 do
      acc := !acc +. if j = start then Float.abs (1. -. pi.(j)) else pi.(j)
    done;
    !acc /. 2.
  in
  let tv0s = Array.init n tv0 in
  let worst0 = Array.fold_left Float.max 0. tv0s in
  if worst0 <= eps then 0
  else if max_t < 1 then failwith "Exact.mixing_time: not mixed within max_t"
  else begin
    (* Only starts still above ε at t = 0 can determine τ; visit the
       farthest-from-π ones first so the shared lower bound is tight
       early and most remaining starts are pruned after one probe. *)
    let order =
      Array.init n Fun.id |> Array.to_list
      |> List.filter (fun s -> tv0s.(s) > eps)
      |> List.sort (fun a b ->
             match Float.compare tv0s.(b) tv0s.(a) with
             | 0 -> Int.compare a b
             | c -> c)
      |> Array.of_list
    in
    let tau_hat = Atomic.make 1 in
    (* Reserve one trace track per surviving start before the fan-out so
       the merged trace groups each start's probes together regardless
       of which domain ran it.  (The probe *schedule* still depends on
       the shared pruning bound, so span counts may vary across runs;
       the final τ does not.) *)
    let track0 =
      if Obs.enabled () then Obs.task_base ~count:(Array.length order) else 0
    in
    let crossings =
      Parallel.map_array ?domains
        (fun (k, start) ->
          Obs.in_task (track0 + k) (fun () ->
              search_crossing c ~pi ~eps ~max_t ~tau_hat start))
        (Array.mapi (fun k start -> (k, start)) order)
    in
    Array.fold_left max 1 crossings
  end

let mixing_time ?(eps = 0.25) ?(max_t = 100_000) ?domains c =
  let sp =
    if Obs.enabled () then
      Obs.begin_span "exact.mixing_time"
        ~args:[ ("states", Obs.Int (size c)); ("eps", Obs.Float eps) ]
    else Obs.null_span
  in
  match mixing_time_impl ~eps ~max_t ?domains c with
  | tau ->
      Obs.end_span ~args:[ ("tau", Obs.Int tau) ] sp;
      tau
  | exception e ->
      Obs.end_span sp;
      raise e

(* Historical dense implementations, kept as the reference the sparse
   paths are benchmarked and property-tested against. *)
module Dense = struct
  let stationary ?(tol = 1e-12) ?(max_iter = 1_000_000) c =
    let m = matrix c in
    let n = size c in
    let dist = ref (Array.make n (1. /. float_of_int n)) in
    let rec go iter =
      if iter > max_iter then failwith "Exact.stationary: did not converge";
      let next = Matrix.vec_mul !dist m in
      let d = tv_distance !dist next in
      dist := next;
      if d > tol then go (iter + 1)
    in
    go 0;
    !dist

  let mixing_time ?(eps = 0.25) ?(max_t = 100_000) c =
    let m = matrix c in
    let pi = stationary c in
    let n = size c in
    (* Evolve all n start distributions together: rows of P^t. *)
    let current = ref (Matrix.identity n) in
    let rec go t =
      if t > max_t then failwith "Exact.mixing_time: not mixed within max_t";
      let worst = ref 0. in
      for start = 0 to n - 1 do
        let d = tv_distance (Matrix.row !current start) pi in
        if d > !worst then worst := d
      done;
      if !worst <= eps then t
      else begin
        current := Matrix.mul !current m;
        go (t + 1)
      end
    in
    go 0
end
