type 'state t = {
  states : 'state array;
  find : 'state -> int option;
  bcsr : Blocked_csr.t;
  kernel : Blocked_csr.kernel; (* sequential kernel, shared (read-only in use) *)
  mutable sparse : Sparse.t option; (* lazy flat-CSR compat view *)
  mutable dense : Matrix.t option; (* lazy dense view *)
  mutable pi : (float array * float) option; (* cached stationary, with its tol *)
}

(* Normalize and validate one transition row against the state index.
   Shared with {!Exact_builder}'s streaming build so both construction
   paths enforce (and report) the same invariants. *)
let validate_row ~find row =
  let total = ref 0. in
  let entries =
    List.map
      (fun (s', p) ->
        if p < 0. then invalid_arg "Exact.build: negative probability";
        match find s' with
        | None -> invalid_arg "Exact.build: successor outside state space"
        | Some j ->
            total := !total +. p;
            (j, p))
      row
  in
  if Float.abs (!total -. 1.) > 1e-9 then
    invalid_arg "Exact.build: row does not sum to 1";
  entries

let of_blocked ~states ~find bcsr =
  let n = Array.length states in
  if n = 0 then invalid_arg "Exact.build: empty state space";
  if Blocked_csr.rows bcsr <> n || Blocked_csr.cols bcsr <> n then
    invalid_arg "Exact.of_blocked: matrix shape does not match the states";
  {
    states;
    find;
    bcsr;
    kernel = Blocked_csr.kernel bcsr;
    sparse = None;
    dense = None;
    pi = None;
  }

let build ~states ~transitions =
  let n = Array.length states in
  if n = 0 then invalid_arg "Exact.build: empty state space";
  let lookup = Hashtbl.create n in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem lookup s then invalid_arg "Exact.build: duplicate state";
      Hashtbl.add lookup s i)
    states;
  let find s = Hashtbl.find_opt lookup s in
  let b = Blocked_csr.builder () in
  Array.iter
    (fun s -> Blocked_csr.add_row b (validate_row ~find (transitions s)))
    states;
  of_blocked ~states ~find (Blocked_csr.finish b ~cols:n)

let size c = Array.length c.states
let blocked c = c.bcsr

let sparse c =
  match c.sparse with
  | Some s -> s
  | None ->
      let s = Blocked_csr.to_sparse c.bcsr in
      c.sparse <- Some s;
      s

let states c = Array.copy c.states

let matrix c =
  match c.dense with
  | Some m -> m
  | None ->
      let m = Sparse.to_dense (sparse c) in
      c.dense <- Some m;
      m

let index c s = match c.find s with Some i -> i | None -> raise Not_found
let state c i = c.states.(i)

let tv_distance p q =
  if Array.length p <> Array.length q then
    invalid_arg "Exact.tv_distance: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. q.(i))) p;
  !acc /. 2.

let l1_diff a b =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Float.abs (Array.unsafe_get a i -. Array.unsafe_get b i)
  done;
  !acc

(* TV between a dense distribution and pi, without allocating. *)
let tv_to_pi pi d = l1_diff pi d /. 2.

(* The kernel products are driven through: the chain's own sequential
   kernel, or a pool-parallel one prepared for the given pool.  Results
   are bit-identical either way (see {!Blocked_csr}). *)
let kernel_for c = function
  | None -> c.kernel
  | Some pool -> Blocked_csr.kernel ~pool c.bcsr

(* Multi-domain access (pooled kernels, per-start fan-outs) is only safe
   when every shard is resident: disk-backed shards stream through one
   shared channel. *)
let fan_out_safe c = Blocked_csr.in_memory c.bcsr

let fingerprint_matches c (s : Exact_checkpoint.snapshot) =
  s.Exact_checkpoint.states = size c
  && s.Exact_checkpoint.nnz = Blocked_csr.nnz c.bcsr

(* Power iteration with a gap-corrected stopping rule.  The naive rule
   "stop when successive iterates are close" can stop far from π on a
   slowly-mixing chain: the residual r_k = ‖d_k P − d_k‖₁ relates to the
   true error as ‖d_k − π‖₁ ≈ r_k / (1 − λ₂).  We estimate the decay
   factor λ₂ from the residual ratio and require both the residual and
   the gap-corrected error to be ≤ tol.  If the residual stops
   decreasing (floating-point floor) while already ≤ tol, no further
   progress is possible and we accept the iterate.

   [step] is the fused product: dst ← src·P returning ‖dst − src‖₁.
   [resume] restarts from a checkpointed (iter, prev_r, dist);
   [on_progress] observes each non-final iterate (for checkpointing) —
   both capture the loop state exactly, so a resumed iteration replays
   the same sequence as an uninterrupted one. *)
let power_stationary ~tol ~max_iter ~n ?resume ?on_progress step =
  let dist, next, prev_r, iter =
    match resume with
    | Some (i, r, d) -> (ref (Array.copy d), ref (Array.make n 0.), ref r, ref i)
    | None ->
        ( ref (Array.make n (1. /. float_of_int n)),
          ref (Array.make n 0.),
          ref infinity,
          ref 0 )
  in
  let result = ref None in
  while !result = None do
    if !iter > max_iter then failwith "Exact.stationary: did not converge";
    let r = step ~src:!dist ~dst:!next in
    let converged =
      r = 0.
      || r <= tol
         &&
         let rho = r /. !prev_r in
         (rho < 1. && r /. (1. -. rho) <= tol) || r >= !prev_r
    in
    prev_r := r;
    let tmp = !dist in
    dist := !next;
    next := tmp;
    if converged then result := Some !dist;
    incr iter;
    match on_progress with
    | Some f when !result = None -> f ~iter:!iter ~prev_r:!prev_r ~dist:!dist
    | _ -> ()
  done;
  (Option.get !result, !iter)

(* Shared cached π: reused when it was computed at a tolerance at least
   as tight as the requested one. *)
let stationary_cached ?(tol = 1e-12) ?(max_iter = 1_000_000) ?pool ?checkpoint c
    =
  match c.pi with
  | Some (pi, cached_tol) when cached_tol <= tol -> pi
  | _ ->
      let resume =
        match checkpoint with
        | None -> None
        | Some sink -> (
            match Exact_checkpoint.resume sink with
            | Some
                ({ phase = Stationary { tol = t'; iter; prev_r; dist }; _ } as s)
              when fingerprint_matches c s && t' = tol ->
                Some (iter, prev_r, dist)
            | _ -> None)
      in
      let on_progress =
        Option.map
          (fun sink ~iter ~prev_r ~dist ->
            Exact_checkpoint.offer sink (fun () ->
                {
                  Exact_checkpoint.states = size c;
                  nnz = Blocked_csr.nnz c.bcsr;
                  phase =
                    Stationary { tol; iter; prev_r; dist = Array.copy dist };
                }))
          checkpoint
      in
      let k = kernel_for c pool in
      let sp =
        if Obs.enabled () then
          Obs.begin_span "exact.stationary"
            ~args:[ ("states", Obs.Int (size c)) ]
        else Obs.null_span
      in
      let pi, iters =
        power_stationary ~tol ~max_iter ~n:(size c) ?resume ?on_progress
          (fun ~src ~dst -> Blocked_csr.step_l1 k ~src ~dst)
      in
      Obs.end_span ~args:[ ("iterations", Obs.Int iters) ] sp;
      c.pi <- Some (pi, tol);
      pi

let stationary ?tol ?max_iter ?domains ?checkpoint c =
  let solve pool = stationary_cached ?tol ?max_iter ?pool ?checkpoint c in
  let pi =
    match domains with
    | Some d when d > 1 && fan_out_safe c ->
        Parallel.Pool.with_pool ~domains:d (fun pool -> solve (Some pool))
    | _ -> solve None
  in
  Array.copy pi

let distribution_after c ~start t =
  if t < 0 then invalid_arg "Exact.distribution_after: negative t";
  let n = size c in
  if start < 0 || start >= n then invalid_arg "Exact.distribution_after: start";
  let cur = ref (Array.make n 0.) in
  let nxt = ref (Array.make n 0.) in
  !cur.(start) <- 1.;
  for _ = 1 to t do
    Blocked_csr.spmv c.kernel ~src:!cur ~dst:!nxt;
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp
  done;
  !cur

let resolve_starts ~what c = function
  | None -> Array.init (size c) Fun.id
  | Some s ->
      if Array.length s = 0 then
        invalid_arg (Printf.sprintf "Exact.%s: empty starts" what);
      Array.iter
        (fun i ->
          if i < 0 || i >= size c then
            invalid_arg (Printf.sprintf "Exact.%s: start out of range" what))
        s;
      s

let worst_tv_after ?domains c ~pi t =
  let domains = if fan_out_safe c then domains else Some 1 in
  let tvs =
    Parallel.init_array ?domains (size c) (fun start ->
        tv_to_pi pi (distribution_after c ~start t))
  in
  Array.fold_left Float.max 0. tvs

let stationary_expectation c ?pi ~f () =
  let pi = match pi with Some p -> p | None -> stationary_cached c in
  let acc = ref 0. in
  Array.iteri (fun i s -> acc := !acc +. (pi.(i) *. f s)) c.states;
  !acc

(* Per-start TV decay curves.  Each start evolves its own distribution
   vector by repeated fused products — work is independent per start, so
   the sweep fans out over domains; the per-start curves (and hence
   their pointwise max) are identical for any domain count.  A start
   whose TV has fallen to ≤ drop_below stops evolving and keeps its last
   value: per-start TV to π is non-increasing, so the profile error is
   at most drop_below (exact for the default drop_below = 0). *)
let worst_tv_profile ?domains ?(drop_below = 0.) ?starts c ~max_t =
  if max_t < 0 then invalid_arg "Exact.worst_tv_profile: negative max_t";
  let starts = resolve_starts ~what:"worst_tv_profile" c starts in
  let pi = stationary_cached c in
  let n = size c in
  let domains = if fan_out_safe c then domains else Some 1 in
  let per_start =
    Parallel.map_array ?domains
      (fun start ->
        let kern = Blocked_csr.kernel c.bcsr in
        let tvs = Array.make (max_t + 1) 0. in
        let cur = ref (Array.make n 0.) in
        let nxt = ref (Array.make n 0.) in
        !cur.(start) <- 1.;
        tvs.(0) <- tv_to_pi pi !cur;
        let t = ref 1 in
        let stopped = tvs.(0) <= drop_below in
        let stopped = ref stopped in
        if !stopped then
          for u = 1 to max_t do
            tvs.(u) <- tvs.(0)
          done;
        while (not !stopped) && !t <= max_t do
          let d = Blocked_csr.step_tv kern ~pi ~src:!cur ~dst:!nxt in
          let tmp = !cur in
          cur := !nxt;
          nxt := tmp;
          tvs.(!t) <- d;
          if d <= drop_below then begin
            for u = !t + 1 to max_t do
              tvs.(u) <- d
            done;
            stopped := true
          end;
          incr t
        done;
        tvs)
      starts
  in
  Array.init (max_t + 1) (fun t ->
      Array.fold_left (fun acc tvs -> Float.max acc tvs.(t)) 0. per_start)

let relaxation_estimate ?domains ?starts c ?(max_t = 200) () =
  (* Points below 1e-8 are excluded from the fit, so dropping starts
     once they decay past 1e-9 does not perturb it. *)
  let profile = worst_tv_profile ?domains ?starts ~drop_below:1e-9 c ~max_t in
  (* Fit only the clean exponential regime: below the initial transient,
     above the floating-point noise floor. *)
  let pts = ref [] in
  Array.iteri
    (fun t d ->
      if d <= 0.1 && d >= 1e-8 then pts := (float_of_int t, log d) :: !pts)
    profile;
  (match !pts with
  | _ :: _ :: _ -> ()
  | _ -> failwith "Exact.relaxation_estimate: profile decayed too fast to fit");
  (* OLS slope of log TV vs t; tau_rel = -1/slope. *)
  let pts = Array.of_list !pts in
  let n = float_of_int (Array.length pts) in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. pts /. n in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. pts /. n in
  let sxx = Array.fold_left (fun a (x, _) -> a +. ((x -. sx) ** 2.)) 0. pts in
  let sxy =
    Array.fold_left (fun a (x, y) -> a +. ((x -. sx) *. (y -. sy))) 0. pts
  in
  if sxx = 0. || sxy >= 0. then
    failwith "Exact.relaxation_estimate: no exponential decay detected";
  -.sxx /. sxy

(* Doubling-then-bisect search for one start's ε-crossing time.

   Per-start TV to π is non-increasing in t (P contracts signed measures
   in L1), so τ_x = min {t : ‖P^t(x,·) − π‖ ≤ ε} is well defined and
   bisection over the bracket is sound.  [base] holds the distribution
   at time [t_base] (always a t with TV > ε, so the bracket invariant is
   maintained); probes evolve a scratch copy forward without touching
   it, and a probe that becomes the new lower bound is committed by
   swapping buffers.

   [tau_hat] is a shared lower bound on the answer (the max of the exact
   τ_x found so far).  Each start first probes there: if its TV is
   already ≤ ε it cannot raise the max and is abandoned with a single
   probe.  The final max is independent of the probe schedule — a start
   attaining the max has TV > ε at every t below its τ_x, so it is never
   pruned and always contributes its exact crossing — which keeps the
   result identical for any domain count despite the shared counter, and
   identical across kill/resume boundaries despite the restarted
   schedule.

   [save] (when checkpointing) is offered the live bracket after every
   state change: (t_base, lo, hi, base) is exactly the loop state, so a
   resumed search continues the same trajectory.  [resume] re-enters the
   search at such a bracket, skipping the pruning phase. *)
let search_crossing ~kern c ~pi ~eps ~max_t ~tau_hat ?save ?resume start =
  let n = size c in
  let base = ref (Array.make n 0.) in
  let w1 = ref (Array.make n 0.) in
  let w2 = ref (Array.make n 0.) in
  !base.(start) <- 1.;
  let t_base = ref 0 in
  let lo = ref 0 in
  let hi = ref 0 in
  let step ~src ~dst = Blocked_csr.step_tv kern ~pi ~src ~dst in
  let probe target =
    let tv = ref (step ~src:!base ~dst:!w1) in
    for _ = 2 to target - !t_base do
      tv := step ~src:!w1 ~dst:!w2;
      let tmp = !w1 in
      w1 := !w2;
      w2 := tmp
    done;
    !tv
  in
  (* Traced probe: one span per doubling/bisection step carrying the
     probed time and the resulting TV distance.  [kind] distinguishes the
     two search phases in the trace view. *)
  let probe kind target =
    if not (Obs.enabled ()) then probe target
    else begin
      let sp =
        Obs.begin_span kind
          ~args:[ ("start", Obs.Int start); ("target", Obs.Int target) ]
      in
      let tv = probe target in
      Obs.end_span ~args:[ ("tv", Obs.Float tv) ] sp;
      tv
    end
  in
  let commit target =
    let tmp = !base in
    base := !w1;
    w1 := tmp;
    t_base := target
  in
  let offer_bracket () =
    match save with
    | None -> ()
    | Some f -> f ~t_base:!t_base ~lo:!lo ~hi:!hi ~base:!base
  in
  let enter_bracket =
    match resume with
    | Some (r : Exact_checkpoint.inflight) ->
        Array.fill !base 0 n 0.;
        Array.blit r.base 0 !base 0 n;
        t_base := r.t_base;
        lo := r.lo;
        hi := r.hi;
        true
    | None -> false
  in
  let pruned =
    if enter_bracket then None
    else begin
      let guess = min (Atomic.get tau_hat) max_t in
      let prune_sp =
        if Obs.enabled () then
          Obs.begin_span "exact.prune"
            ~args:[ ("start", Obs.Int start); ("guess", Obs.Int guess) ]
        else Obs.null_span
      in
      (* Pruning probe, stepping toward [guess] but checking the
         (monotone) per-start TV after every product: a start that
         crosses ε at some s ≤ guess is certified under the shared bound
         after only s steps instead of always paying the full [guess]. *)
      let t = ref 1 in
      let last_tv = ref (step ~src:!base ~dst:!w1) in
      let crossed = ref (!last_tv <= eps) in
      while (not !crossed) && !t < guess do
        last_tv := step ~src:!w1 ~dst:!w2;
        let tmp = !w1 in
        w1 := !w2;
        w2 := tmp;
        incr t;
        crossed := !last_tv <= eps
      done;
      if Obs.enabled () then
        Obs.end_span
          ~args:[ ("t", Obs.Int !t); ("tv", Obs.Float !last_tv) ]
          prune_sp;
      if !crossed then Some !t (* τ_x = t ≤ guess ≤ answer: cannot raise it *)
      else if guess >= max_t then
        failwith "Exact.mixing_time: not mixed within max_t"
      else begin
        commit guess;
        lo := guess;
        hi := 0;
        offer_bracket ();
        None
      end
    end
  in
  match pruned with
  | Some t -> t
  | None ->
      while !hi = 0 do
        let target = min (2 * !lo) max_t in
        if probe "exact.double" target <= eps then begin
          hi := target;
          offer_bracket ()
        end
        else if target >= max_t then
          failwith "Exact.mixing_time: not mixed within max_t"
        else begin
          commit target;
          lo := target;
          offer_bracket ()
        end
      done;
      while !hi - !lo > 1 do
        let mid = !lo + ((!hi - !lo) / 2) in
        if probe "exact.bisect" mid <= eps then begin
          hi := mid;
          offer_bracket ()
        end
        else begin
          commit mid;
          lo := mid;
          offer_bracket ()
        end
      done;
      let rec bump () =
        let cur = Atomic.get tau_hat in
        if !hi > cur && not (Atomic.compare_and_set tau_hat cur !hi) then
          bump ()
      in
      bump ();
      !hi

let mixing_time_impl ~eps ~max_t ~domains ?starts ?checkpoint c =
  let n = size c in
  let starts = resolve_starts ~what:"mixing_time" c starts in
  let nnz = Blocked_csr.nnz c.bcsr in
  (* A checkpointed search runs the starts sequentially so the snapshot
     is a single well-defined cursor; pooled products keep the domains
     busy instead.  Either way the answer is identical (see above). *)
  let sequential =
    Option.is_some checkpoint
    || Array.length starts <= 2
    || domains = 1
    || not (fan_out_safe c)
  in
  let body pool =
    (* Restore a matching mixing snapshot before π is computed: it
       carries the converged π, so a resumed run skips the solve. *)
    let mix0 =
      match checkpoint with
      | None -> None
      | Some sink -> (
          match Exact_checkpoint.resume sink with
          | Some ({ phase = Mixing m; _ } as s)
            when fingerprint_matches c s && m.eps = eps ->
              Some m
          | _ -> None)
    in
    (match mix0 with
    | Some m -> c.pi <- Some (m.pi, m.pi_tol)
    | None -> ());
    let pi_tol = 1e-12 in
    let pi = stationary_cached ~tol:pi_tol ?pool ?checkpoint c in
    (* TV of the point mass at [start] against π. *)
    let tv0 start =
      let acc = ref 0. in
      for j = 0 to n - 1 do
        acc := !acc +. if j = start then Float.abs (1. -. pi.(j)) else pi.(j)
      done;
      !acc /. 2.
    in
    let tv0s = Array.map tv0 starts in
    let worst0 = Array.fold_left Float.max 0. tv0s in
    if worst0 <= eps then 0
    else if max_t < 1 then failwith "Exact.mixing_time: not mixed within max_t"
    else begin
      (* Only starts still above ε at t = 0 can determine τ; visit the
         farthest-from-π ones first so the shared lower bound is tight
         early and most remaining starts are pruned after one probe. *)
      let order =
        Array.to_list (Array.mapi (fun k start -> (k, start)) starts)
        |> List.filter (fun (k, _) -> tv0s.(k) > eps)
        |> List.sort (fun (ka, a) (kb, b) ->
               match Float.compare tv0s.(kb) tv0s.(ka) with
               | 0 -> Int.compare a b
               | c -> c)
        |> List.map snd |> Array.of_list
      in
      let tau_hat =
        Atomic.make
          (match mix0 with Some m -> max 1 m.tau_hat | None -> 1)
      in
      if sequential then begin
        let kern = kernel_for c pool in
        let completed =
          ref (match mix0 with Some m -> m.completed | None -> [])
        in
        let inflight0 = match mix0 with Some m -> m.inflight | None -> None in
        let snapshot ?inflight () =
          {
            Exact_checkpoint.states = n;
            nnz;
            phase =
              Mixing
                {
                  eps;
                  pi_tol;
                  pi = Array.copy pi;
                  tau_hat = Atomic.get tau_hat;
                  completed = !completed;
                  inflight;
                };
          }
        in
        (* Mark the phase transition: a kill between π and the first
           crossing then resumes into the mixing phase directly. *)
        (match (checkpoint, mix0) with
        | Some sink, None -> Exact_checkpoint.commit sink (snapshot ())
        | _ -> ());
        let best = ref 1 in
        Array.iter
          (fun start ->
            let tau =
              match List.assoc_opt start !completed with
              | Some t -> t
              | None ->
                  let resume =
                    match inflight0 with
                    | Some i when i.Exact_checkpoint.start = start -> Some i
                    | _ -> None
                  in
                  let save =
                    Option.map
                      (fun sink ~t_base ~lo ~hi ~base ->
                        Exact_checkpoint.offer sink (fun () ->
                            snapshot
                              ~inflight:
                                {
                                  Exact_checkpoint.start;
                                  t_base;
                                  lo;
                                  hi;
                                  base = Array.copy base;
                                }
                              ()))
                      checkpoint
                  in
                  let tau =
                    search_crossing ~kern c ~pi ~eps ~max_t ~tau_hat ?save
                      ?resume start
                  in
                  completed := (start, tau) :: !completed;
                  (match checkpoint with
                  | Some sink ->
                      Exact_checkpoint.offer sink (fun () -> snapshot ())
                  | None -> ());
                  tau
            in
            if tau > !best then best := tau)
          order;
        (match checkpoint with
        | Some sink -> Exact_checkpoint.commit sink (snapshot ())
        | None -> ());
        !best
      end
      else begin
        (* Reserve one trace track per surviving start before the
           fan-out so the merged trace groups each start's probes
           together regardless of which domain ran it.  (The probe
           *schedule* still depends on the shared pruning bound, so span
           counts may vary across runs; the final τ does not.) *)
        let track0 =
          if Obs.enabled () then Obs.task_base ~count:(Array.length order)
          else 0
        in
        let crossings =
          Parallel.map_array ~domains
            (fun (k, start) ->
              Obs.in_task (track0 + k) (fun () ->
                  let kern = Blocked_csr.kernel c.bcsr in
                  search_crossing ~kern c ~pi ~eps ~max_t ~tau_hat start))
            (Array.mapi (fun k start -> (k, start)) order)
        in
        Array.fold_left max 1 crossings
      end
    end
  in
  (* Pooled products only pay off once the vectors span several column
     chunks; below that the per-product barrier dominates. *)
  if sequential && domains > 1 && fan_out_safe c && n > 1024 then
    Parallel.Pool.with_pool ~domains (fun pool -> body (Some pool))
  else body None

let mixing_time ?(eps = 0.25) ?(max_t = 100_000) ?domains ?starts ?checkpoint c
    =
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Exact.mixing_time: domains < 1";
        d
    | None -> Parallel.recommended_domains ()
  in
  let sp =
    if Obs.enabled () then
      Obs.begin_span "exact.mixing_time"
        ~args:[ ("states", Obs.Int (size c)); ("eps", Obs.Float eps) ]
    else Obs.null_span
  in
  match mixing_time_impl ~eps ~max_t ~domains ?starts ?checkpoint c with
  | tau ->
      Obs.end_span ~args:[ ("tau", Obs.Int tau) ] sp;
      tau
  | exception e ->
      Obs.end_span sp;
      raise e

(* Historical dense implementations, kept as the reference the sparse
   paths are benchmarked and property-tested against. *)
module Dense = struct
  let stationary ?(tol = 1e-12) ?(max_iter = 1_000_000) c =
    let m = matrix c in
    let n = size c in
    let dist = ref (Array.make n (1. /. float_of_int n)) in
    let rec go iter =
      if iter > max_iter then failwith "Exact.stationary: did not converge";
      let next = Matrix.vec_mul !dist m in
      let d = tv_distance !dist next in
      dist := next;
      if d > tol then go (iter + 1)
    in
    go 0;
    !dist

  let mixing_time ?(eps = 0.25) ?(max_t = 100_000) c =
    let m = matrix c in
    let pi = stationary c in
    let n = size c in
    (* Evolve all n start distributions together: rows of P^t. *)
    let current = ref (Matrix.identity n) in
    let rec go t =
      if t > max_t then failwith "Exact.mixing_time: not mixed within max_t";
      let worst = ref 0. in
      for start = 0 to n - 1 do
        let d = tv_distance (Matrix.row !current start) pi in
        if d > !worst then worst := d
      done;
      if !worst <= eps then t
      else begin
        current := Matrix.mul !current m;
        go (t + 1)
      end
    in
    go 0
end
