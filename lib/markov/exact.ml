type 'state t = {
  states : 'state array;
  find : 'state -> int option;
  bcsr : Blocked_csr.t;
  kernel : Blocked_csr.kernel; (* sequential kernel, shared (read-only in use) *)
  mutable sparse : Sparse.t option; (* lazy flat-CSR compat view *)
  mutable dense : Matrix.t option; (* lazy dense view *)
  mutable pi : (float array * float) option; (* cached stationary, with its tol *)
}

(* Normalize and validate one transition row against the state index.
   Shared with {!Exact_builder}'s streaming build so both construction
   paths enforce (and report) the same invariants. *)
let validate_row ~find row =
  let total = ref 0. in
  let entries =
    List.map
      (fun (s', p) ->
        if p < 0. then invalid_arg "Exact.build: negative probability";
        match find s' with
        | None -> invalid_arg "Exact.build: successor outside state space"
        | Some j ->
            total := !total +. p;
            (j, p))
      row
  in
  if Float.abs (!total -. 1.) > 1e-9 then
    invalid_arg "Exact.build: row does not sum to 1";
  entries

let of_blocked ~states ~find bcsr =
  let n = Array.length states in
  if n = 0 then invalid_arg "Exact.build: empty state space";
  if Blocked_csr.rows bcsr <> n || Blocked_csr.cols bcsr <> n then
    invalid_arg "Exact.of_blocked: matrix shape does not match the states";
  {
    states;
    find;
    bcsr;
    kernel = Blocked_csr.kernel bcsr;
    sparse = None;
    dense = None;
    pi = None;
  }

let build ~states ~transitions =
  let n = Array.length states in
  if n = 0 then invalid_arg "Exact.build: empty state space";
  let lookup = Hashtbl.create n in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem lookup s then invalid_arg "Exact.build: duplicate state";
      Hashtbl.add lookup s i)
    states;
  let find s = Hashtbl.find_opt lookup s in
  let b = Blocked_csr.builder () in
  Array.iter
    (fun s -> Blocked_csr.add_row b (validate_row ~find (transitions s)))
    states;
  of_blocked ~states ~find (Blocked_csr.finish b ~cols:n)

let size c = Array.length c.states
let blocked c = c.bcsr

let sparse c =
  match c.sparse with
  | Some s -> s
  | None ->
      let s = Blocked_csr.to_sparse c.bcsr in
      c.sparse <- Some s;
      s

let states c = Array.copy c.states

let matrix c =
  match c.dense with
  | Some m -> m
  | None ->
      let m = Sparse.to_dense (sparse c) in
      c.dense <- Some m;
      m

let index c s = match c.find s with Some i -> i | None -> raise Not_found
let state c i = c.states.(i)

let tv_distance p q =
  if Array.length p <> Array.length q then
    invalid_arg "Exact.tv_distance: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. q.(i))) p;
  !acc /. 2.

let l1_diff a b =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Float.abs (Array.unsafe_get a i -. Array.unsafe_get b i)
  done;
  !acc

(* TV between a dense distribution and pi, without allocating. *)
let tv_to_pi pi d = l1_diff pi d /. 2.

(* The kernel products are driven through: the chain's own sequential
   kernel, or a pool-parallel one prepared for the given pool.  Results
   are bit-identical either way (see {!Blocked_csr}). *)
let kernel_for c = function
  | None -> c.kernel
  | Some pool -> Blocked_csr.kernel ~pool c.bcsr

(* Multi-domain access (pooled kernels, per-start fan-outs) is only safe
   when every shard is resident: disk-backed shards stream through one
   shared channel. *)
let fan_out_safe c = Blocked_csr.in_memory c.bcsr

let fingerprint_matches c (s : Exact_checkpoint.snapshot) =
  s.Exact_checkpoint.states = size c
  && s.Exact_checkpoint.nnz = Blocked_csr.nnz c.bcsr

(* Power iteration with a gap-corrected stopping rule.  The naive rule
   "stop when successive iterates are close" can stop far from π on a
   slowly-mixing chain: the residual r_k = ‖d_k P − d_k‖₁ relates to the
   true error as ‖d_k − π‖₁ ≈ r_k / (1 − λ₂).  We estimate the decay
   factor λ₂ from the residual ratio and require both the residual and
   the gap-corrected error to be ≤ tol.  If the residual stops
   decreasing (floating-point floor) while already ≤ tol, no further
   progress is possible and we accept the iterate.

   [step] is the fused product: dst ← src·P returning ‖dst − src‖₁.
   [resume] restarts from a checkpointed (iter, prev_r, dist);
   [on_progress] observes each non-final iterate (for checkpointing) —
   both capture the loop state exactly, so a resumed iteration replays
   the same sequence as an uninterrupted one. *)
let power_stationary ~tol ~max_iter ~n ?resume ?on_progress step =
  let dist, next, prev_r, iter =
    match resume with
    | Some (i, r, d) -> (ref (Array.copy d), ref (Array.make n 0.), ref r, ref i)
    | None ->
        ( ref (Array.make n (1. /. float_of_int n)),
          ref (Array.make n 0.),
          ref infinity,
          ref 0 )
  in
  let result = ref None in
  while !result = None do
    if !iter > max_iter then failwith "Exact.stationary: did not converge";
    let r = step ~src:!dist ~dst:!next in
    let converged =
      r = 0.
      || r <= tol
         &&
         let rho = r /. !prev_r in
         (rho < 1. && r /. (1. -. rho) <= tol) || r >= !prev_r
    in
    prev_r := r;
    let tmp = !dist in
    dist := !next;
    next := tmp;
    if converged then result := Some !dist;
    incr iter;
    match on_progress with
    | Some f when !result = None -> f ~iter:!iter ~prev_r:!prev_r ~dist:!dist
    | _ -> ()
  done;
  (Option.get !result, !iter)

(* Shared cached π: reused when it was computed at a tolerance at least
   as tight as the requested one. *)
let stationary_cached ?(tol = 1e-12) ?(max_iter = 1_000_000) ?pool ?checkpoint c
    =
  match c.pi with
  | Some (pi, cached_tol) when cached_tol <= tol -> pi
  | _ ->
      let resume =
        match checkpoint with
        | None -> None
        | Some sink -> (
            match Exact_checkpoint.resume sink with
            | Some
                ({ phase = Stationary { tol = t'; iter; prev_r; dist }; _ } as s)
              when fingerprint_matches c s && t' = tol ->
                Some (iter, prev_r, dist)
            | _ -> None)
      in
      let on_progress =
        Option.map
          (fun sink ~iter ~prev_r ~dist ->
            Exact_checkpoint.offer sink (fun () ->
                {
                  Exact_checkpoint.states = size c;
                  nnz = Blocked_csr.nnz c.bcsr;
                  phase =
                    Stationary { tol; iter; prev_r; dist = Array.copy dist };
                }))
          checkpoint
      in
      let k = kernel_for c pool in
      let sp =
        if Obs.enabled () then
          Obs.begin_span "exact.stationary"
            ~args:[ ("states", Obs.Int (size c)) ]
        else Obs.null_span
      in
      let pi, iters =
        power_stationary ~tol ~max_iter ~n:(size c) ?resume ?on_progress
          (fun ~src ~dst -> Blocked_csr.step_l1 k ~src ~dst)
      in
      Obs.end_span ~args:[ ("iterations", Obs.Int iters) ] sp;
      c.pi <- Some (pi, tol);
      pi

let stationary ?tol ?max_iter ?domains ?checkpoint c =
  let solve pool = stationary_cached ?tol ?max_iter ?pool ?checkpoint c in
  let pi =
    match domains with
    | Some d when d > 1 && fan_out_safe c ->
        Parallel.Pool.with_pool ~domains:d (fun pool -> solve (Some pool))
    | _ -> solve None
  in
  Array.copy pi

let distribution_after c ~start t =
  if t < 0 then invalid_arg "Exact.distribution_after: negative t";
  let n = size c in
  if start < 0 || start >= n then invalid_arg "Exact.distribution_after: start";
  let cur = ref (Array.make n 0.) in
  let nxt = ref (Array.make n 0.) in
  !cur.(start) <- 1.;
  for _ = 1 to t do
    Blocked_csr.spmv c.kernel ~src:!cur ~dst:!nxt;
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp
  done;
  !cur

let resolve_starts ~what c = function
  | None -> Array.init (size c) Fun.id
  | Some s ->
      if Array.length s = 0 then
        invalid_arg (Printf.sprintf "Exact.%s: empty starts" what);
      Array.iter
        (fun i ->
          if i < 0 || i >= size c then
            invalid_arg (Printf.sprintf "Exact.%s: start out of range" what))
        s;
      s

(* {2 Batched per-start sweeps}

   All-start analyses (TV profiles, mixing searches) evolve one point
   mass per start through repeated fused products.  The matrix read —
   nnz indices plus values — dominates each product's memory traffic, so
   the sweeps below advance starts in {e batches} through
   {!Blocked_csr.step_tv_multi}: one traversal of the matrix per time
   step serves the whole batch, bit-identically per vector (see
   [DESIGN.md], "The representation layer").  The worthwhile batch width
   grows with the mean row density nnz/n (the same quantity the
   [bcsr.block_nnz] histogram reports per block): the denser the matrix,
   the more vector traffic one amortized traversal pays for.  The cap
   keeps a batch's 2B dense vectors within reach of the outer cache. *)
let multi_batch c =
  Stdlib.max 4
    (Stdlib.min 16 (Blocked_csr.nnz c.bcsr / Stdlib.max 1 (size c)))

let chunk_starts bsz starts =
  let m = Array.length starts in
  Array.init
    ((m + bsz - 1) / bsz)
    (fun g -> Array.sub starts (g * bsz) (Stdlib.min bsz (m - (g * bsz))))

(* One point mass per start of the batch, plus matching scratch. *)
let point_masses ~n batch =
  Array.map
    (fun start ->
      let a = Array.make n 0. in
      a.(start) <- 1.;
      a)
    batch

let worst_tv_after ?domains c ~pi t =
  if t < 0 then invalid_arg "Exact.distribution_after: negative t";
  let n = size c in
  let domains = if fan_out_safe c then domains else Some 1 in
  let batches = chunk_starts (multi_batch c) (Array.init n Fun.id) in
  let tvs =
    Parallel.map_array ?domains
      (fun batch ->
        let cur = ref (point_masses ~n batch) in
        if t = 0 then
          Array.fold_left
            (fun acc d -> Float.max acc (tv_to_pi pi d))
            0. !cur
        else begin
          let kern = Blocked_csr.kernel c.bcsr in
          let nxt = ref (Array.map (fun _ -> Array.make n 0.) batch) in
          for _ = 1 to t do
            Blocked_csr.spmv_multi kern ~srcs:!cur ~dsts:!nxt;
            let tmp = !cur in
            cur := !nxt;
            nxt := tmp
          done;
          (* The final distance is taken flat over the vector — the same
             summation order the historical per-start scan used. *)
          Array.fold_left
            (fun acc d -> Float.max acc (tv_to_pi pi d))
            0. !cur
        end)
      batches
  in
  Array.fold_left Float.max 0. tvs

let stationary_expectation c ?pi ~f () =
  let pi = match pi with Some p -> p | None -> stationary_cached c in
  let acc = ref 0. in
  Array.iteri (fun i s -> acc := !acc +. (pi.(i) *. f s)) c.states;
  !acc

(* Per-start TV decay curves, swept in fused batches.  Work is
   independent per start, so the batches fan out over domains; within a
   batch every still-active start advances through one shared matrix
   traversal per time step, with per-vector results bit-identical to the
   historical one-start-at-a-time sweep (so the curves — and hence their
   pointwise max — are identical for any domain count and batch shape).
   A start whose TV has fallen to ≤ drop_below stops evolving (it drops
   out of the batch) and keeps its last value: per-start TV to π is
   non-increasing, so the profile error is at most drop_below (exact for
   the default drop_below = 0). *)
let worst_tv_profile ?domains ?(drop_below = 0.) ?starts c ~max_t =
  if max_t < 0 then invalid_arg "Exact.worst_tv_profile: negative max_t";
  let starts = resolve_starts ~what:"worst_tv_profile" c starts in
  let pi = stationary_cached c in
  let n = size c in
  let domains = if fan_out_safe c then domains else Some 1 in
  let batches = chunk_starts (multi_batch c) starts in
  let per_batch =
    Parallel.map_array ?domains
      (fun batch ->
        let kern = Blocked_csr.kernel c.bcsr in
        let m = Array.length batch in
        let tvs = Array.init m (fun _ -> Array.make (max_t + 1) 0.) in
        let cur = point_masses ~n batch in
        let nxt = Array.map (fun _ -> Array.make n 0.) batch in
        (* [act.(0 .. nact-1)] are the batch positions still evolving;
           a retired start holds its last value through max_t. *)
        let act = Array.init m Fun.id in
        let retire i t =
          for u = t + 1 to max_t do
            tvs.(i).(u) <- tvs.(i).(t)
          done
        in
        let nact = ref 0 in
        for i = 0 to m - 1 do
          tvs.(i).(0) <- tv_to_pi pi cur.(i);
          if tvs.(i).(0) <= drop_below then retire i 0
          else begin
            act.(!nact) <- i;
            incr nact
          end
        done;
        let t = ref 1 in
        while !nact > 0 && !t <= max_t do
          let srcs = Array.init !nact (fun p -> cur.(act.(p))) in
          let dsts = Array.init !nact (fun p -> nxt.(act.(p))) in
          let ds = Blocked_csr.step_tv_multi kern ~pi ~srcs ~dsts in
          let w = ref 0 in
          for p = 0 to !nact - 1 do
            let i = act.(p) in
            let tmp = cur.(i) in
            cur.(i) <- nxt.(i);
            nxt.(i) <- tmp;
            tvs.(i).(!t) <- ds.(p);
            if ds.(p) <= drop_below then retire i !t
            else begin
              act.(!w) <- i;
              incr w
            end
          done;
          nact := !w;
          incr t
        done;
        tvs)
      batches
  in
  let per_start = Array.concat (Array.to_list per_batch) in
  Array.init (max_t + 1) (fun t ->
      Array.fold_left (fun acc tvs -> Float.max acc tvs.(t)) 0. per_start)

let relaxation_estimate ?domains ?starts c ?(max_t = 200) () =
  (* Points below 1e-8 are excluded from the fit, so dropping starts
     once they decay past 1e-9 does not perturb it. *)
  let profile = worst_tv_profile ?domains ?starts ~drop_below:1e-9 c ~max_t in
  (* Fit only the clean exponential regime: below the initial transient,
     above the floating-point noise floor. *)
  let pts = ref [] in
  Array.iteri
    (fun t d ->
      if d <= 0.1 && d >= 1e-8 then pts := (float_of_int t, log d) :: !pts)
    profile;
  (match !pts with
  | _ :: _ :: _ -> ()
  | _ -> failwith "Exact.relaxation_estimate: profile decayed too fast to fit");
  (* OLS slope of log TV vs t; tau_rel = -1/slope. *)
  let pts = Array.of_list !pts in
  let n = float_of_int (Array.length pts) in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. pts /. n in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. pts /. n in
  let sxx = Array.fold_left (fun a (x, _) -> a +. ((x -. sx) ** 2.)) 0. pts in
  let sxy =
    Array.fold_left (fun a (x, y) -> a +. ((x -. sx) *. (y -. sy))) 0. pts
  in
  if sxx = 0. || sxy >= 0. then
    failwith "Exact.relaxation_estimate: no exponential decay detected";
  -.sxx /. sxy

(* Doubling-then-bisect search for one start's ε-crossing time.

   Per-start TV to π is non-increasing in t (P contracts signed measures
   in L1), so τ_x = min {t : ‖P^t(x,·) − π‖ ≤ ε} is well defined and
   bisection over the bracket is sound.  [base] holds the distribution
   at time [t_base] (always a t with TV > ε, so the bracket invariant is
   maintained); probes evolve a scratch copy forward without touching
   it, and a probe that becomes the new lower bound is committed by
   swapping buffers.

   [tau_hat] is a shared lower bound on the answer (the max of the exact
   τ_x found so far).  Each start first probes there: if its TV is
   already ≤ ε it cannot raise the max and is abandoned with a single
   probe.  The final max is independent of the probe schedule — a start
   attaining the max has TV > ε at every t below its τ_x, so it is never
   pruned and always contributes its exact crossing — which keeps the
   result identical for any domain count despite the shared counter, and
   identical across kill/resume boundaries despite the restarted
   schedule.

   [save] (when checkpointing) is offered the live bracket after every
   state change: (t_base, lo, hi, base) is exactly the loop state, so a
   resumed search continues the same trajectory.  [resume] re-enters the
   search at such a bracket, skipping the pruning phase. *)
let search_crossing ~kern c ~pi ~eps ~max_t ~tau_hat ?save ?resume start =
  let n = size c in
  let base = ref (Array.make n 0.) in
  let w1 = ref (Array.make n 0.) in
  let w2 = ref (Array.make n 0.) in
  !base.(start) <- 1.;
  let t_base = ref 0 in
  let lo = ref 0 in
  let hi = ref 0 in
  let step ~src ~dst = Blocked_csr.step_tv kern ~pi ~src ~dst in
  let probe target =
    let tv = ref (step ~src:!base ~dst:!w1) in
    for _ = 2 to target - !t_base do
      tv := step ~src:!w1 ~dst:!w2;
      let tmp = !w1 in
      w1 := !w2;
      w2 := tmp
    done;
    !tv
  in
  (* Traced probe: one span per doubling/bisection step carrying the
     probed time and the resulting TV distance.  [kind] distinguishes the
     two search phases in the trace view. *)
  let probe kind target =
    if not (Obs.enabled ()) then probe target
    else begin
      let sp =
        Obs.begin_span kind
          ~args:[ ("start", Obs.Int start); ("target", Obs.Int target) ]
      in
      let tv = probe target in
      Obs.end_span ~args:[ ("tv", Obs.Float tv) ] sp;
      tv
    end
  in
  let commit target =
    let tmp = !base in
    base := !w1;
    w1 := tmp;
    t_base := target
  in
  let offer_bracket () =
    match save with
    | None -> ()
    | Some f -> f ~t_base:!t_base ~lo:!lo ~hi:!hi ~base:!base
  in
  let enter_bracket =
    match resume with
    | Some (r : Exact_checkpoint.inflight) ->
        Array.fill !base 0 n 0.;
        Array.blit r.base 0 !base 0 n;
        t_base := r.t_base;
        lo := r.lo;
        hi := r.hi;
        true
    | None -> false
  in
  let pruned =
    if enter_bracket then None
    else begin
      let guess = min (Atomic.get tau_hat) max_t in
      let prune_sp =
        if Obs.enabled () then
          Obs.begin_span "exact.prune"
            ~args:[ ("start", Obs.Int start); ("guess", Obs.Int guess) ]
        else Obs.null_span
      in
      (* Pruning probe, stepping toward [guess] but checking the
         (monotone) per-start TV after every product: a start that
         crosses ε at some s ≤ guess is certified under the shared bound
         after only s steps instead of always paying the full [guess]. *)
      let t = ref 1 in
      let last_tv = ref (step ~src:!base ~dst:!w1) in
      let crossed = ref (!last_tv <= eps) in
      while (not !crossed) && !t < guess do
        last_tv := step ~src:!w1 ~dst:!w2;
        let tmp = !w1 in
        w1 := !w2;
        w2 := tmp;
        incr t;
        crossed := !last_tv <= eps
      done;
      if Obs.enabled () then
        Obs.end_span
          ~args:[ ("t", Obs.Int !t); ("tv", Obs.Float !last_tv) ]
          prune_sp;
      if !crossed then Some !t (* τ_x = t ≤ guess ≤ answer: cannot raise it *)
      else if guess >= max_t then
        failwith "Exact.mixing_time: not mixed within max_t"
      else begin
        commit guess;
        lo := guess;
        hi := 0;
        offer_bracket ();
        None
      end
    end
  in
  match pruned with
  | Some t -> t
  | None ->
      while !hi = 0 do
        let target = min (2 * !lo) max_t in
        if probe "exact.double" target <= eps then begin
          hi := target;
          offer_bracket ()
        end
        else if target >= max_t then
          failwith "Exact.mixing_time: not mixed within max_t"
        else begin
          commit target;
          lo := target;
          offer_bracket ()
        end
      done;
      while !hi - !lo > 1 do
        let mid = !lo + ((!hi - !lo) / 2) in
        if probe "exact.bisect" mid <= eps then begin
          hi := mid;
          offer_bracket ()
        end
        else begin
          commit mid;
          lo := mid;
          offer_bracket ()
        end
      done;
      let rec bump () =
        let cur = Atomic.get tau_hat in
        if !hi > cur && not (Atomic.compare_and_set tau_hat cur !hi) then
          bump ()
      in
      bump ();
      !hi

(* Certify a batch of starts against the shared lower bound in fused
   steps: all their point masses evolve together — one matrix traversal
   per time step — and a start drops out of the batch as soon as its
   (monotone) TV crosses ε at some t ≤ guess ≤ τ-so-far, since it can no
   longer raise the maximum.  Starts still above ε at the bound are
   returned for an exact individual {!search_crossing}.  The per-start
   TVs are bit-identical to the single-vector pruning probe's, so the
   certification decisions — and through them the final τ — match the
   unbatched search exactly. *)
let batch_prune ~kern c ~pi ~eps ~max_t ~tau_hat batch =
  let n = size c in
  let m = Array.length batch in
  let guess = Stdlib.min (Atomic.get tau_hat) max_t in
  let sp =
    if Obs.enabled () then
      Obs.begin_span "exact.prune_batch"
        ~args:[ ("starts", Obs.Int m); ("guess", Obs.Int guess) ]
    else Obs.null_span
  in
  let cur = point_masses ~n batch in
  let nxt = Array.map (fun _ -> Array.make n 0.) batch in
  let act = Array.init m Fun.id in
  let nact = ref m in
  let t = ref 0 in
  while !nact > 0 && !t < guess do
    incr t;
    let srcs = Array.init !nact (fun p -> cur.(act.(p))) in
    let dsts = Array.init !nact (fun p -> nxt.(act.(p))) in
    let ds = Blocked_csr.step_tv_multi kern ~pi ~srcs ~dsts in
    let w = ref 0 in
    for p = 0 to !nact - 1 do
      let i = act.(p) in
      let tmp = cur.(i) in
      cur.(i) <- nxt.(i);
      nxt.(i) <- tmp;
      if ds.(p) > eps then begin
        act.(!w) <- i;
        incr w
      end
    done;
    nact := !w
  done;
  Obs.end_span ~args:[ ("survivors", Obs.Int !nact) ] sp;
  Array.to_list (Array.init !nact (fun p -> batch.(act.(p))))

let mixing_time_impl ~eps ~max_t ~domains ?starts ?checkpoint c =
  let n = size c in
  let starts = resolve_starts ~what:"mixing_time" c starts in
  let nnz = Blocked_csr.nnz c.bcsr in
  (* A checkpointed search runs the starts sequentially so the snapshot
     is a single well-defined cursor; pooled products keep the domains
     busy instead.  Either way the answer is identical (see above). *)
  let sequential = Option.is_some checkpoint || Array.length starts <= 2 in
  let body pool =
    (* Restore a matching mixing snapshot before π is computed: it
       carries the converged π, so a resumed run skips the solve. *)
    let mix0 =
      match checkpoint with
      | None -> None
      | Some sink -> (
          match Exact_checkpoint.resume sink with
          | Some ({ phase = Mixing m; _ } as s)
            when fingerprint_matches c s && m.eps = eps ->
              Some m
          | _ -> None)
    in
    (match mix0 with
    | Some m -> c.pi <- Some (m.pi, m.pi_tol)
    | None -> ());
    let pi_tol = 1e-12 in
    let pi = stationary_cached ~tol:pi_tol ?pool ?checkpoint c in
    (* TV of the point mass at [start] against π. *)
    let tv0 start =
      let acc = ref 0. in
      for j = 0 to n - 1 do
        acc := !acc +. if j = start then Float.abs (1. -. pi.(j)) else pi.(j)
      done;
      !acc /. 2.
    in
    let tv0s = Array.map tv0 starts in
    let worst0 = Array.fold_left Float.max 0. tv0s in
    if worst0 <= eps then 0
    else if max_t < 1 then failwith "Exact.mixing_time: not mixed within max_t"
    else begin
      (* Only starts still above ε at t = 0 can determine τ; visit the
         farthest-from-π ones first so the shared lower bound is tight
         early and most remaining starts are pruned after one probe. *)
      let order =
        Array.to_list (Array.mapi (fun k start -> (k, start)) starts)
        |> List.filter (fun (k, _) -> tv0s.(k) > eps)
        |> List.sort (fun (ka, a) (kb, b) ->
               match Float.compare tv0s.(kb) tv0s.(ka) with
               | 0 -> Int.compare a b
               | c -> c)
        |> List.map snd |> Array.of_list
      in
      let tau_hat =
        Atomic.make
          (match mix0 with Some m -> max 1 m.tau_hat | None -> 1)
      in
      if sequential then begin
        let kern = kernel_for c pool in
        let completed =
          ref (match mix0 with Some m -> m.completed | None -> [])
        in
        let inflight0 = match mix0 with Some m -> m.inflight | None -> None in
        let snapshot ?inflight () =
          {
            Exact_checkpoint.states = n;
            nnz;
            phase =
              Mixing
                {
                  eps;
                  pi_tol;
                  pi = Array.copy pi;
                  tau_hat = Atomic.get tau_hat;
                  completed = !completed;
                  inflight;
                };
          }
        in
        (* Mark the phase transition: a kill between π and the first
           crossing then resumes into the mixing phase directly. *)
        (match (checkpoint, mix0) with
        | Some sink, None -> Exact_checkpoint.commit sink (snapshot ())
        | _ -> ());
        let best = ref 1 in
        Array.iter
          (fun start ->
            let tau =
              match List.assoc_opt start !completed with
              | Some t -> t
              | None ->
                  let resume =
                    match inflight0 with
                    | Some i when i.Exact_checkpoint.start = start -> Some i
                    | _ -> None
                  in
                  let save =
                    Option.map
                      (fun sink ~t_base ~lo ~hi ~base ->
                        Exact_checkpoint.offer sink (fun () ->
                            snapshot
                              ~inflight:
                                {
                                  Exact_checkpoint.start;
                                  t_base;
                                  lo;
                                  hi;
                                  base = Array.copy base;
                                }
                              ()))
                      checkpoint
                  in
                  let tau =
                    search_crossing ~kern c ~pi ~eps ~max_t ~tau_hat ?save
                      ?resume start
                  in
                  completed := (start, tau) :: !completed;
                  (match checkpoint with
                  | Some sink ->
                      Exact_checkpoint.offer sink (fun () -> snapshot ())
                  | None -> ());
                  tau
            in
            if tau > !best then best := tau)
          order;
        (match checkpoint with
        | Some sink -> Exact_checkpoint.commit sink (snapshot ())
        | None -> ());
        !best
      end
      else begin
        (* Fused-batch search: the farthest-from-π start is searched
           exactly first, so the shared bound is tight from the outset;
           the remaining starts are then certified against it in fused
           batches — one matrix traversal per time step serves a whole
           batch — and the rare survivors (starts that can still raise
           the maximum) get exact individual searches.  τ is identical
           to the unbatched per-start fan-out: certified starts provably
           cannot raise the maximum, and every survivor's exact crossing
           bumps the shared bound.  (Batches fan out over domains when
           every shard is resident; the probe *schedule* still depends
           on the shared bound, so span counts may vary across runs; the
           final τ does not.) *)
        let kern = Blocked_csr.kernel c.bcsr in
        let first = search_crossing ~kern c ~pi ~eps ~max_t ~tau_hat order.(0) in
        let rest = Array.sub order 1 (Array.length order - 1) in
        let batches = chunk_starts (multi_batch c) rest in
        let batch_domains = if fan_out_safe c then domains else 1 in
        let survivors =
          if Array.length batches = 0 then [||]
          else begin
            (* One trace track per batch, reserved before the fan-out so
               the merged trace groups each batch's probes together
               regardless of which domain ran it. *)
            let track0 =
              if Obs.enabled () then
                Obs.task_base ~count:(Array.length batches)
              else 0
            in
            Parallel.map_array ~domains:batch_domains
              (fun (g, batch) ->
                Obs.in_task (track0 + g) (fun () ->
                    let kern = Blocked_csr.kernel c.bcsr in
                    batch_prune ~kern c ~pi ~eps ~max_t ~tau_hat batch))
              (Array.mapi (fun g batch -> (g, batch)) batches)
          end
        in
        let best = ref (max 1 first) in
        Array.iter
          (List.iter (fun start ->
               let tau =
                 search_crossing ~kern c ~pi ~eps ~max_t ~tau_hat start
               in
               if tau > !best then best := tau))
          survivors;
        max !best (Atomic.get tau_hat)
      end
    end
  in
  (* Pooled products only pay off once the vectors span several column
     chunks; below that the per-product barrier dominates. *)
  if sequential && domains > 1 && fan_out_safe c && n > 1024 then
    Parallel.Pool.with_pool ~domains (fun pool -> body (Some pool))
  else body None

let mixing_time ?(eps = 0.25) ?(max_t = 100_000) ?domains ?starts ?checkpoint c
    =
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Exact.mixing_time: domains < 1";
        d
    | None -> Parallel.recommended_domains ()
  in
  let sp =
    if Obs.enabled () then
      Obs.begin_span "exact.mixing_time"
        ~args:[ ("states", Obs.Int (size c)); ("eps", Obs.Float eps) ]
    else Obs.null_span
  in
  match mixing_time_impl ~eps ~max_t ~domains ?starts ?checkpoint c with
  | tau ->
      Obs.end_span ~args:[ ("tau", Obs.Int tau) ] sp;
      tau
  | exception e ->
      Obs.end_span sp;
      raise e

(* Historical dense implementations, kept as the reference the sparse
   paths are benchmarked and property-tested against. *)
module Dense = struct
  let stationary ?(tol = 1e-12) ?(max_iter = 1_000_000) c =
    let m = matrix c in
    let n = size c in
    let dist = ref (Array.make n (1. /. float_of_int n)) in
    let rec go iter =
      if iter > max_iter then failwith "Exact.stationary: did not converge";
      let next = Matrix.vec_mul !dist m in
      let d = tv_distance !dist next in
      dist := next;
      if d > tol then go (iter + 1)
    in
    go 0;
    !dist

  let mixing_time ?(eps = 0.25) ?(max_t = 100_000) c =
    let m = matrix c in
    let pi = stationary c in
    let n = size c in
    (* Evolve all n start distributions together: rows of P^t. *)
    let current = ref (Matrix.identity n) in
    let rec go t =
      if t > max_t then failwith "Exact.mixing_time: not mixed within max_t";
      let worst = ref 0. in
      for start = 0 to n - 1 do
        let d = tv_distance (Matrix.row !current start) pi in
        if d > !worst then worst := d
      done;
      if !worst <= eps then t
      else begin
        current := Matrix.mul !current m;
        go (t + 1)
      end
    in
    go 0
end
