type 'state t = {
  states : 'state array;
  lookup : ('state, int) Hashtbl.t;
  matrix : Matrix.t;
}

let build ~states ~transitions =
  let n = Array.length states in
  if n = 0 then invalid_arg "Exact.build: empty state space";
  let lookup = Hashtbl.create n in
  Array.iteri (fun i s -> Hashtbl.replace lookup s i) states;
  let matrix = Matrix.create ~rows:n ~cols:n in
  Array.iteri
    (fun i s ->
      let row = transitions s in
      let total = ref 0. in
      List.iter
        (fun (s', p) ->
          if p < 0. then invalid_arg "Exact.build: negative probability";
          match Hashtbl.find_opt lookup s' with
          | None -> invalid_arg "Exact.build: successor outside state space"
          | Some j ->
              Matrix.add_to matrix i j p;
              total := !total +. p)
        row;
      if Float.abs (!total -. 1.) > 1e-9 then
        invalid_arg "Exact.build: row does not sum to 1")
    states;
  { states; lookup; matrix }

let size c = Array.length c.states
let matrix c = c.matrix

let index c s =
  match Hashtbl.find_opt c.lookup s with
  | Some i -> i
  | None -> raise Not_found

let state c i = c.states.(i)

let tv_distance p q =
  if Array.length p <> Array.length q then
    invalid_arg "Exact.tv_distance: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. q.(i))) p;
  !acc /. 2.

let stationary ?(tol = 1e-12) ?(max_iter = 1_000_000) c =
  let n = size c in
  let dist = ref (Array.make n (1. /. float_of_int n)) in
  let rec go iter =
    if iter > max_iter then failwith "Exact.stationary: did not converge";
    let next = Matrix.vec_mul !dist c.matrix in
    let d = tv_distance !dist next in
    dist := next;
    if d > tol then go (iter + 1)
  in
  go 0;
  !dist

let distribution_after c ~start t =
  if t < 0 then invalid_arg "Exact.distribution_after: negative t";
  let n = size c in
  if start < 0 || start >= n then invalid_arg "Exact.distribution_after: start";
  let dist = ref (Array.init n (fun i -> if i = start then 1. else 0.)) in
  for _ = 1 to t do
    dist := Matrix.vec_mul !dist c.matrix
  done;
  !dist

let worst_tv_after c ~pi t =
  let n = size c in
  let worst = ref 0. in
  for start = 0 to n - 1 do
    let d = tv_distance (distribution_after c ~start t) pi in
    if d > !worst then worst := d
  done;
  !worst

let stationary_expectation c ?pi ~f () =
  let pi = match pi with Some p -> p | None -> stationary c in
  let acc = ref 0. in
  Array.iteri (fun i s -> acc := !acc +. (pi.(i) *. f s)) c.states;
  !acc

let worst_tv_profile c ~max_t =
  if max_t < 0 then invalid_arg "Exact.worst_tv_profile: negative max_t";
  let pi = stationary c in
  let n = size c in
  let current = ref (Matrix.identity n) in
  Array.init (max_t + 1) (fun t ->
      if t > 0 then current := Matrix.mul !current c.matrix;
      let worst = ref 0. in
      for start = 0 to n - 1 do
        let d = tv_distance (Matrix.row !current start) pi in
        if d > !worst then worst := d
      done;
      !worst)

let relaxation_estimate c ?(max_t = 200) () =
  let profile = worst_tv_profile c ~max_t in
  (* Fit only the clean exponential regime: below the initial transient,
     above the floating-point noise floor. *)
  let pts = ref [] in
  Array.iteri
    (fun t d -> if d <= 0.1 && d >= 1e-8 then
        pts := (float_of_int t, log d) :: !pts)
    profile;
  (match !pts with
  | _ :: _ :: _ -> ()
  | _ -> failwith "Exact.relaxation_estimate: profile decayed too fast to fit");
  (* OLS slope of log TV vs t; tau_rel = -1/slope. *)
  let pts = Array.of_list !pts in
  let n = float_of_int (Array.length pts) in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. pts /. n in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. pts /. n in
  let sxx = Array.fold_left (fun a (x, _) -> a +. ((x -. sx) ** 2.)) 0. pts in
  let sxy =
    Array.fold_left (fun a (x, y) -> a +. ((x -. sx) *. (y -. sy))) 0. pts
  in
  if sxx = 0. || sxy >= 0. then
    failwith "Exact.relaxation_estimate: no exponential decay detected";
  -.sxx /. sxy

let mixing_time ?(eps = 0.25) ?(max_t = 100_000) c =
  let pi = stationary c in
  let n = size c in
  (* Evolve all n start distributions together: rows of P^t. *)
  let current = ref (Matrix.identity n) in
  let rec go t =
    if t > max_t then failwith "Exact.mixing_time: not mixed within max_t";
    let worst = ref 0. in
    for start = 0 to n - 1 do
      let d = tv_distance (Matrix.row !current start) pi in
      if d > !worst then worst := d
    done;
    if !worst <= eps then t
    else begin
      current := Matrix.mul !current c.matrix;
      go (t + 1)
    end
  in
  go 0
