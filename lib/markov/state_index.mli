(** Keyed state ↔ dense-id interning for chain enumeration.

    Assigns consecutive ids (0, 1, 2, …) to states in first-seen order —
    exactly the discovery order a BFS enumeration wants — with the hash
    and equality supplied explicitly instead of falling back to
    polymorphic structural hashing.  Lookups go through an
    open-addressing table of ids over a growable state array, so the
    index doubles as the enumeration itself ({!to_array}). *)

type 'a t

val create : hash:('a -> int) -> equal:('a -> 'a -> bool) -> int -> 'a t
(** [create ~hash ~equal n] makes an empty index sized for about [n]
    states (it grows as needed).  [hash] must be compatible with
    [equal]. *)

val add : 'a t -> 'a -> int
(** [add t x] returns the id of [x], interning it with the next free id
    if unseen. *)

val find : 'a t -> 'a -> int option
(** The id of [x], if interned. *)

val size : _ t -> int

val get : 'a t -> int -> 'a
(** The state with id [i] ([0 <= i < size t]). *)

val to_array : 'a t -> 'a array
(** All interned states in id order (a copy). *)

val structural : unit -> ('a -> int) * ('a -> 'a -> bool)
(** The polymorphic structural [(hash, equal)] pair, for callers without
    a better key — correct on immutable concrete state types, slower
    than a type-specific hash. *)
