type 'state t = { step : Prng.Rng.t -> 'state -> 'state }

let make step = { step }
