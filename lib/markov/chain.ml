type 'state t = { step : Prng.Rng.t -> 'state -> 'state }

let make step = { step }

let iterate c g s t =
  if t < 0 then invalid_arg "Chain.iterate: negative step count";
  let state = ref s in
  for _ = 1 to t do
    state := c.step g !state
  done;
  !state

let fold c g s t ~init ~f =
  if t < 0 then invalid_arg "Chain.fold: negative step count";
  let acc = ref init in
  let state = ref s in
  for i = 1 to t do
    state := c.step g !state;
    acc := f !acc i !state
  done;
  !acc

let trajectory c g s t =
  if t < 0 then invalid_arg "Chain.trajectory: negative step count";
  let state = ref s in
  Array.init t (fun _ ->
      state := c.step g !state;
      !state)

let first_hit c g s ~pred ~limit =
  if limit < 0 then invalid_arg "Chain.first_hit: negative limit";
  let rec go t state =
    if pred state then Some t
    else if t >= limit then None
    else go (t + 1) (c.step g state)
  in
  go 0 s

let sample_every c g s ~burn_in ~every ~samples obs =
  if burn_in < 0 || every <= 0 || samples < 0 then
    invalid_arg "Chain.sample_every: bad parameters";
  let state = ref (iterate c g s burn_in) in
  let out = ref [] in
  for _ = 1 to samples do
    state := iterate c g !state every;
    out := obs !state :: !out
  done;
  List.rev !out
