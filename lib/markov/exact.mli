(** Exact analysis of finite Markov chains.

    Builds the transition matrix — stored as blocked CSR, see
    {!Blocked_csr} — from a state enumeration and a
    transition-distribution function, then computes the stationary
    distribution, total-variation distances and the {e exact} mixing
    time

    {v τ(ε) = min { T : ∀t ≥ T, max_x ‖L(M_t | M_0 = x) − π‖ ≤ ε } v}

    of the paper's Section 3.  All per-start quantities evolve
    distribution {e vectors} by repeated fused sparse products rather
    than materialising dense powers [P^t]; the stationary distribution
    is computed once per chain and cached.  Two axes of parallelism are
    available, both with results identical for any domain count:
    per-start sweeps fan out over {!Parallel.map_array}, and the
    products themselves can run block-parallel over a {!Parallel.Pool}
    (used automatically by {!mixing_time} when few starts are searched).
    Long solves checkpoint through {!Exact_checkpoint} sinks and resume
    to bit-identical answers.  Practical well beyond the dense
    implementation (kept in {!Dense} as the benchmark and testing
    reference), though still only for enumerable state spaces.

    A chain value carries internal caches (flat CSR and dense views,
    stationary distribution) and must not be shared across domains while
    these functions run on it. *)

type 'state t

val build :
  states:'state array ->
  transitions:('state -> ('state * float) list) ->
  'state t
(** [build ~states ~transitions] constructs the chain.  [states] must
    enumerate each state exactly once; [transitions s] must list
    successor states (all members of [states], compared structurally)
    with probabilities summing to 1; duplicate successors are merged.
    Rows stream into a {!Blocked_csr} store with the default shard
    shape; {!Exact_builder.build} exposes the block size and disk-spill
    controls.
    @raise Invalid_argument if a state appears twice in [states], if a
    successor is unknown, or if a row's total deviates from 1 by more
    than 1e-9. *)

val of_blocked :
  states:'state array ->
  find:('state -> int option) ->
  Blocked_csr.t ->
  'state t
(** Wrap an already-validated transition matrix — the entry point
    {!Exact_builder} uses after streaming a BFS discovery straight into
    a {!Blocked_csr.builder}.  [find] must map exactly the members of
    [states] to their indices.
    @raise Invalid_argument if the matrix is not |states| × |states|. *)

val validate_row :
  find:('state -> int option) -> ('state * float) list -> (int * float) list
(** Resolve and check one transition row (the {!build} invariants:
    known successors, no negative mass, total within 1e-9 of 1),
    returning index/probability pairs.  Exposed for streaming builders.
    @raise Invalid_argument as {!build}. *)

val size : _ t -> int

val blocked : _ t -> Blocked_csr.t
(** The transition matrix in its native blocked-CSR representation. *)

val sparse : _ t -> Sparse.t
(** Flat-CSR view of the transition matrix, converted on first use and
    cached. *)

val matrix : _ t -> Matrix.t
(** Dense view of the transition matrix, converted on first use and
    cached.  Callers must not mutate it. *)

val states : 'state t -> 'state array
(** The state enumeration, in index order (a copy). *)

val index : 'state t -> 'state -> int
(** @raise Not_found for a state outside the enumeration. *)

val state : 'state t -> int -> 'state

val tv_distance : float array -> float array -> float
(** Total variation distance [½ Σ |p_i − q_i|] between two distributions
    given as dense vectors.
    @raise Invalid_argument on length mismatch. *)

val stationary :
  ?tol:float ->
  ?max_iter:int ->
  ?domains:int ->
  ?checkpoint:Exact_checkpoint.sink ->
  'state t ->
  float array
(** Stationary distribution by power iteration from the uniform
    distribution (default [tol = 1e-12], [max_iter = 1_000_000]).
    Convergence requires the residual [‖πP − π‖₁] {e and} its
    gap-corrected projection of the true error to fall below [tol], so
    slowly-mixing chains are not declared converged early.  The result
    is cached on the chain and reused whenever the cached tolerance is
    at least as tight as the requested one.  With [domains > 1] the
    products run block-parallel (bit-identical result).  With a
    [checkpoint] sink the in-progress iterate is snapshotted
    periodically and resumed from on restart.
    @raise Failure if the iteration does not converge — e.g. for a
    periodic chain. *)

val distribution_after : 'state t -> start:int -> int -> float array
(** [distribution_after c ~start t] is the law of the chain after [t]
    steps from state index [start], by [t] sparse vector·matrix
    products. *)

val worst_tv_after : ?domains:int -> 'state t -> pi:float array -> int -> float
(** [worst_tv_after c ~pi t] is [max_x ‖P^t(x,·) − pi‖], the distance
    appearing in the mixing-time definition.  The per-start sweep fans
    out over [domains]; the result does not depend on the domain
    count. *)

val stationary_expectation :
  'state t -> ?pi:float array -> f:('state -> float) -> unit -> float
(** [stationary_expectation c ~f ()] is [Σ_x π(x) f(x)], computing π
    (cached) unless one is supplied. *)

val worst_tv_profile :
  ?domains:int ->
  ?drop_below:float ->
  ?starts:int array ->
  'state t ->
  max_t:int ->
  float array
(** [worst_tv_profile c ~max_t] is the sequence
    [t ↦ max_x ‖P^t(x,·) − π‖] for [t = 0..max_t] — the exact decay curve
    whose ε-crossing point is τ(ε).  Each start evolves independently
    (fanned out over [domains]; deterministic for any domain count).  A
    start whose TV has decayed to ≤ [drop_below] (default [0.], i.e.
    never) stops evolving and holds its last value: since per-start TV
    is non-increasing, the profile is then exact up to an additive error
    of at most [drop_below] and remains non-increasing.  [starts]
    restricts the max to the given state indices (default: all) — at
    scales where an all-start sweep is infeasible, designated extremal
    starts bound the profile from below.
    @raise Invalid_argument if [starts] is empty or holds an index out
    of range. *)

val relaxation_estimate :
  ?domains:int -> ?starts:int array -> 'state t -> ?max_t:int -> unit -> float
(** Fit [worst TV ≈ C·exp(−t/τ_rel)] to the tail of the decay curve and
    return the estimated relaxation time τ_rel (OLS on the log of the
    profile restricted to TV in [1e-8, 0.1], where the decay is cleanly
    exponential).  Complements {!mixing_time}: for a sound chain
    [τ(ε) ≲ τ_rel · ln(1/(ε·π_min))].  [starts] as in
    {!worst_tv_profile}.
    @raise Failure if the profile never decays enough to fit. *)

val mixing_time :
  ?eps:float ->
  ?max_t:int ->
  ?domains:int ->
  ?starts:int array ->
  ?checkpoint:Exact_checkpoint.sink ->
  'state t ->
  int
(** Exact [τ(ε)] (default [eps = 0.25], [max_t = 100_000]).  Uses the
    cached stationary distribution.  Because per-start TV distance to π
    is non-increasing in [t], each start's ε-crossing time is found by a
    doubling-then-bisect search over committed distribution vectors, and
    τ(ε) is the maximum over starts.  Starts are searched
    farthest-from-π first and share the largest crossing found so far: a
    start already within ε there is abandoned after a single probe,
    since it cannot raise the maximum.

    [starts] restricts the maximum to the given state indices (default:
    all states — the definition above).  [domains] parallelises either
    across starts (many starts) or inside each product over a
    {!Parallel.Pool} (few starts, or when checkpointing); the result is
    identical for any value.

    With a [checkpoint] sink the search runs its starts sequentially and
    snapshots the stationary iterate, completed crossings and in-flight
    bracket; a killed run resumed with the same sink (matching chain
    fingerprint and ε) skips completed work and returns the bit-identical
    τ.
    @raise Failure if not mixed within [max_t].
    @raise Invalid_argument if [domains < 1], or [starts] is empty or
    out of range. *)

(** Historical dense implementations — quadratic storage, full dense
    [P^t] per time step, stationary distribution recomputed per call.
    Kept as the reference that the sparse paths are property-tested for
    agreement with and benchmarked against (see [bench/micro.ml]). *)
module Dense : sig
  val stationary : ?tol:float -> ?max_iter:int -> 'state t -> float array
  (** Power iteration on the dense view with the historical
      successive-iterate stopping rule.
      @raise Failure if the iteration does not converge. *)

  val mixing_time : ?eps:float -> ?max_t:int -> 'state t -> int
  (** Step-by-step scan over dense powers [P^t].
      @raise Failure if not mixed within [max_t]. *)
end
