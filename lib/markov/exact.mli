(** Exact analysis of finite Markov chains.

    Builds the full transition matrix from a state enumeration and a
    transition-distribution function, then computes the stationary
    distribution, total-variation distances and the {e exact} mixing time

    {v τ(ε) = min { T : ∀t ≥ T, max_x ‖L(M_t | M_0 = x) − π‖ ≤ ε } v}

    of the paper's Section 3.  Only practical for small state spaces. *)

type 'state t

val build :
  states:'state array ->
  transitions:('state -> ('state * float) list) ->
  'state t
(** [build ~states ~transitions] constructs the chain.  [transitions s]
    must list successor states (all members of [states], compared
    structurally) with probabilities summing to 1; duplicates are merged.
    @raise Invalid_argument if a successor is unknown or a row's total
    deviates from 1 by more than 1e-9. *)

val size : _ t -> int
val matrix : _ t -> Matrix.t
val index : 'state t -> 'state -> int
(** @raise Not_found for a state outside the enumeration. *)

val state : 'state t -> int -> 'state

val tv_distance : float array -> float array -> float
(** Total variation distance [½ Σ |p_i − q_i|] between two distributions
    given as dense vectors.
    @raise Invalid_argument on length mismatch. *)

val stationary : ?tol:float -> ?max_iter:int -> 'state t -> float array
(** Stationary distribution by power iteration from the uniform
    distribution (default [tol = 1e-12], [max_iter = 1_000_000]).
    @raise Failure if the iteration does not converge — e.g. for a
    periodic chain. *)

val distribution_after : 'state t -> start:int -> int -> float array
(** [distribution_after c ~start t] is the law of the chain after [t]
    steps from state index [start]. *)

val worst_tv_after : 'state t -> pi:float array -> int -> float
(** [worst_tv_after c ~pi t] is [max_x ‖P^t(x,·) − pi‖], the distance
    appearing in the mixing-time definition. *)

val stationary_expectation :
  'state t -> ?pi:float array -> f:('state -> float) -> unit -> float
(** [stationary_expectation c ~f ()] is [Σ_x π(x) f(x)], computing π
    unless one is supplied. *)

val worst_tv_profile : 'state t -> max_t:int -> float array
(** [worst_tv_profile c ~max_t] is the sequence
    [t ↦ max_x ‖P^t(x,·) − π‖] for [t = 0..max_t] — the exact decay curve
    whose ε-crossing point is τ(ε). *)

val relaxation_estimate : 'state t -> ?max_t:int -> unit -> float
(** Fit [worst TV ≈ C·exp(−t/τ_rel)] to the tail of the decay curve and
    return the estimated relaxation time τ_rel (OLS on the log of the
    second half of the profile, truncated where the TV hits numerical
    noise).  Complements {!mixing_time}: for a sound chain
    [τ(ε) ≲ τ_rel · ln(1/(ε·π_min))].
    @raise Failure if the profile never decays enough to fit. *)

val mixing_time : ?eps:float -> ?max_t:int -> 'state t -> int
(** Exact [τ(ε)] (default [eps = 0.25], [max_t = 100_000]).  Computes the
    stationary distribution internally.  Because worst-case TV distance is
    non-increasing in [t], the first [t] with distance ≤ ε is τ(ε).
    @raise Failure if not mixed within [max_t]. *)
