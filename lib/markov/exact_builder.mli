(** The one way to go from a transition function to an analysed chain.

    Every exact pipeline in the repository does the same three things:
    obtain the state space (either a closed-form enumeration such as
    {!Partition_space.enumerate}, or the set reachable from a root
    state), build the {!Exact.t}, and compute its mixing time.  This
    module packages that build→mix sequence once, with wall-clock
    timings for each half so benches can report cost per grid cell
    (e.g. through [Engine.Metrics.add_phase]).

    Builds {e stream}: transition rows are emitted in discovery order
    straight into a {!Blocked_csr} store — for a reachable space, the
    BFS frontier property (a state's row is fully determined when it is
    dequeued) means discovery and row emission are one pass.  With
    [~spill] the store pages completed shards to disk, so builds whose
    transition structure exceeds RAM still finish.  State interning goes
    through {!State_index} with an explicit [hash]/[equal] when the
    caller has one (falling back to structural hashing). *)

type 'state source

val enumerated : 'state array -> 'state source
(** A state space given explicitly; must list each state once. *)

val reachable : root:'state -> 'state source
(** The states reachable from [root] under the transition function,
    discovered by breadth-first search. *)

val reachable_states :
  ?hash:('state -> int) ->
  ?equal:('state -> 'state -> bool) ->
  root:'state ->
  transitions:('state -> ('state * float) list) ->
  unit ->
  'state array
(** The BFS closure itself, in discovery order — [root] first.  States
    are interned through a {!State_index} keyed by [hash]/[equal]
    (default: structural). *)

val states_of :
  ?hash:('state -> int) ->
  ?equal:('state -> 'state -> bool) ->
  'state source ->
  transitions:('state -> ('state * float) list) ->
  'state array
(** The state array a source denotes (runs the BFS for {!reachable}). *)

val build :
  ?block_rows:int ->
  ?spill:string ->
  ?hash:('state -> int) ->
  ?equal:('state -> 'state -> bool) ->
  'state source ->
  transitions:('state -> ('state * float) list) ->
  'state Exact.t
(** Resolve the source and build the chain, streaming rows into a
    {!Blocked_csr} store ([block_rows] rows per shard, default 4096;
    [spill] pages completed shards to a disk block file).
    @raise Invalid_argument as {!Exact.build}. *)

type 'state analysis = {
  chain : 'state Exact.t;
  state_count : int;  (** [Exact.size chain]. *)
  nnz : int;  (** Non-zeros in the transition matrix. *)
  tau : int;  (** [Exact.mixing_time] of the chain. *)
  build_seconds : float;  (** Wall-clock for enumeration + build. *)
  mix_seconds : float;  (** Wall-clock for the mixing-time search. *)
}

val build_mix :
  ?eps:float ->
  ?max_t:int ->
  ?domains:int ->
  ?block_rows:int ->
  ?spill:string ->
  ?hash:('state -> int) ->
  ?equal:('state -> 'state -> bool) ->
  ?starts:'state array ->
  ?checkpoint:Exact_checkpoint.sink ->
  'state source ->
  transitions:('state -> ('state * float) list) ->
  'state analysis
(** Build the chain and compute its exact mixing time (defaults as
    {!Exact.mixing_time}).  [starts] restricts the mixing search to the
    given states (members of the space); [checkpoint] makes the mixing
    phase resumable through the sink, as {!Exact.mixing_time}.
    @raise Invalid_argument as {!Exact.build}, or if a designated start
    is outside the space.
    @raise Failure as {!Exact.mixing_time}. *)
