(** The one way to go from a transition function to an analysed chain.

    Every exact pipeline in the repository does the same three things:
    obtain the state space (either a closed-form enumeration such as
    {!Partition_space.enumerate}, or the set reachable from a root
    state), build the {!Exact.t}, and compute its mixing time.  This
    module packages that build→mix sequence once, with wall-clock
    timings for each half so benches can report cost per grid cell
    (e.g. through [Engine.Metrics.add_phase]). *)

type 'state source

val enumerated : 'state array -> 'state source
(** A state space given explicitly; must list each state once. *)

val reachable : root:'state -> 'state source
(** The states reachable from [root] under the transition function,
    discovered by breadth-first search (states are compared and hashed
    structurally). *)

val reachable_states :
  root:'state -> transitions:('state -> ('state * float) list) -> 'state array
(** The BFS closure itself, in discovery order — [root] first. *)

val states_of :
  'state source ->
  transitions:('state -> ('state * float) list) ->
  'state array
(** The state array a source denotes (runs the BFS for {!reachable}). *)

val build :
  'state source ->
  transitions:('state -> ('state * float) list) ->
  'state Exact.t
(** Resolve the source and {!Exact.build} the chain.
    @raise Invalid_argument as {!Exact.build}. *)

type 'state analysis = {
  chain : 'state Exact.t;
  state_count : int;  (** [Exact.size chain]. *)
  tau : int;  (** [Exact.mixing_time] of the chain. *)
  build_seconds : float;  (** Wall-clock for enumeration + build. *)
  mix_seconds : float;  (** Wall-clock for the mixing-time search. *)
}

val build_mix :
  ?eps:float ->
  ?max_t:int ->
  ?domains:int ->
  'state source ->
  transitions:('state -> ('state * float) list) ->
  'state analysis
(** Build the chain and compute its exact mixing time (defaults as
    {!Exact.mixing_time}).
    @raise Invalid_argument as {!Exact.build}.
    @raise Failure as {!Exact.mixing_time}. *)
