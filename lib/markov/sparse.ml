type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1; entries of row i at [row_ptr.(i), row_ptr.(i+1)) *)
  col_idx : int array;
  values : float array;
}

let rows t = t.rows
let cols t = t.cols
let nnz t = Array.length t.values

(* Telemetry (recorded only while Obs is enabled): how many spmv
   products a pipeline issues, and the per-row cost profile (nnz per
   row is the work one input coordinate costs in spmv). *)
let spmv_counter = Obs.Counter.make "sparse.spmv_calls"
let row_nnz_hist = Obs.Histogram.make "sparse.row_nnz"

let of_rows ~rows ~cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Sparse.of_rows: non-positive size";
  (* Per row: sort by column, merge duplicates, drop explicit zeros. *)
  let entries =
    Array.init rows (fun i ->
        let a = Array.of_list (f i) in
        Array.iter
          (fun (j, _) ->
            if j < 0 || j >= cols then
              invalid_arg "Sparse.of_rows: column index out of bounds")
          a;
        Array.sort (fun (a, _) (b, _) -> compare (a : int) b) a;
        let out = ref [] in
        let k = Array.length a in
        let p = ref 0 in
        while !p < k do
          let j, _ = a.(!p) in
          let v = ref 0. in
          while !p < k && fst a.(!p) = j do
            v := !v +. snd a.(!p);
            incr p
          done;
          if !v <> 0. then out := (j, !v) :: !out
        done;
        Array.of_list (List.rev !out))
  in
  let row_ptr = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + Array.length entries.(i)
  done;
  let total = row_ptr.(rows) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  for i = 0 to rows - 1 do
    Array.iteri
      (fun k (j, v) ->
        col_idx.(row_ptr.(i) + k) <- j;
        values.(row_ptr.(i) + k) <- v)
      entries.(i)
  done;
  if Obs.enabled () then
    for i = 0 to rows - 1 do
      Obs.Histogram.observe row_nnz_hist (row_ptr.(i + 1) - row_ptr.(i))
    done;
  { rows; cols; row_ptr; col_idx; values }

let of_triplets ~rows ~cols triplets =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Sparse.of_triplets: non-positive size";
  let buckets = Array.make rows [] in
  List.iter
    (fun (i, j, v) ->
      if i < 0 || i >= rows then
        invalid_arg "Sparse.of_triplets: row index out of bounds";
      buckets.(i) <- (j, v) :: buckets.(i))
    triplets;
  of_rows ~rows ~cols (fun i -> List.rev buckets.(i))

let of_dense m =
  let rows = Matrix.rows m and cols = Matrix.cols m in
  of_rows ~rows ~cols (fun i ->
      let acc = ref [] in
      for j = cols - 1 downto 0 do
        let v = Matrix.get m i j in
        if v <> 0. then acc := (j, v) :: !acc
      done;
      !acc)

let to_dense t =
  let m = Matrix.create ~rows:t.rows ~cols:t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Matrix.add_to m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let row_iter t i ~f =
  if i < 0 || i >= t.rows then invalid_arg "Sparse.row_iter: row out of bounds";
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let row_sums t =
  let sums = Array.make t.rows 0. in
  for i = 0 to t.rows - 1 do
    let acc = ref 0. in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. t.values.(k)
    done;
    sums.(i) <- !acc
  done;
  sums

let is_stochastic ?(tol = 1e-9) t =
  t.rows = t.cols
  && Array.for_all (fun v -> v >= -.tol) t.values
  && Array.for_all (fun s -> Float.abs (s -. 1.) <= tol) (row_sums t)

(* [dst <- src · A], skipping rows whose input weight is zero — early in a
   distribution's evolution from a point mass most rows are. *)
let spmv_into t ~src ~dst =
  if Array.length src <> t.rows || Array.length dst <> t.cols then
    invalid_arg "Sparse.spmv: dimension mismatch";
  Obs.Counter.incr spmv_counter;
  let rp = t.row_ptr and ci = t.col_idx and vs = t.values in
  Array.fill dst 0 t.cols 0.;
  for i = 0 to t.rows - 1 do
    let v = Array.unsafe_get src i in
    if v <> 0. then begin
      let k1 = Array.unsafe_get rp (i + 1) - 1 in
      for k = Array.unsafe_get rp i to k1 do
        let j = Array.unsafe_get ci k in
        Array.unsafe_set dst j
          (Array.unsafe_get dst j +. (v *. Array.unsafe_get vs k))
      done
    end
  done

let spmv src t =
  let dst = Array.make t.cols 0. in
  spmv_into t ~src ~dst;
  dst
