(** Enumeration of the state space Ω_m (paper, Section 3.1).

    The normalized load vectors on [n] bins with [m] balls are exactly the
    partitions of [m] into at most [n] parts.  For small [(n, m)] we can
    enumerate them and analyse the allocation chains exactly, which is how
    the path-coupling bounds are validated against ground truth (bench
    experiment E7). *)

val enumerate : n:int -> m:int -> Loadvec.Load_vector.t array
(** All normalized vectors in Ω_m on [n] bins, in lexicographically
    decreasing order of the underlying arrays.
    @raise Invalid_argument if [n <= 0] or [m < 0]. *)

val count : n:int -> m:int -> int
(** [count ~n ~m] is [p(m, n)], the number of partitions of [m] into at
    most [n] parts — computed without enumerating. *)

type index
(** Bidirectional mapping between states and dense indices. *)

val index_of_space : Loadvec.Load_vector.t array -> index
val find : index -> Loadvec.Load_vector.t -> int
(** @raise Not_found if the vector is not in the space. *)

val state : index -> int -> Loadvec.Load_vector.t
val size : index -> int
