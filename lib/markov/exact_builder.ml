type 'state source =
  | Enumerated of 'state array
  | Reachable of 'state

let enumerated states = Enumerated states
let reachable ~root = Reachable root

let reachable_states ~root ~transitions =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let acc = ref [] in
  Hashtbl.add seen root ();
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    acc := s :: !acc;
    List.iter
      (fun (s', _) ->
        if not (Hashtbl.mem seen s') then begin
          Hashtbl.add seen s' ();
          Queue.add s' queue
        end)
      (transitions s)
  done;
  Array.of_list (List.rev !acc)

let states_of source ~transitions =
  match source with
  | Enumerated states -> states
  | Reachable root -> reachable_states ~root ~transitions

let build source ~transitions =
  Exact.build ~states:(states_of source ~transitions) ~transitions

type 'state analysis = {
  chain : 'state Exact.t;
  state_count : int;
  tau : int;
  build_seconds : float;
  mix_seconds : float;
}

let build_mix ?eps ?max_t ?domains source ~transitions =
  let t0 = Obs.Clock.now_ns () in
  let sp = Obs.begin_span "exact.build" in
  let chain = build source ~transitions in
  Obs.end_span ~args:[ ("states", Obs.Int (Exact.size chain)) ] sp;
  let t1 = Obs.Clock.now_ns () in
  let sp = Obs.begin_span "exact.mix" in
  let tau = Exact.mixing_time ?eps ?max_t ?domains chain in
  Obs.end_span ~args:[ ("tau", Obs.Int tau) ] sp;
  let t2 = Obs.Clock.now_ns () in
  {
    chain;
    state_count = Exact.size chain;
    tau;
    build_seconds = Obs.Clock.seconds_of_ns (Int64.sub t1 t0);
    mix_seconds = Obs.Clock.seconds_of_ns (Int64.sub t2 t1);
  }
