type 'state source =
  | Enumerated of 'state array
  | Reachable of 'state

let enumerated states = Enumerated states
let reachable ~root = Reachable root

let reachable_states ~root ~transitions =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let acc = ref [] in
  Hashtbl.add seen root ();
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    acc := s :: !acc;
    List.iter
      (fun (s', _) ->
        if not (Hashtbl.mem seen s') then begin
          Hashtbl.add seen s' ();
          Queue.add s' queue
        end)
      (transitions s)
  done;
  Array.of_list (List.rev !acc)

let states_of source ~transitions =
  match source with
  | Enumerated states -> states
  | Reachable root -> reachable_states ~root ~transitions

let build source ~transitions =
  Exact.build ~states:(states_of source ~transitions) ~transitions

type 'state analysis = {
  chain : 'state Exact.t;
  state_count : int;
  tau : int;
  build_seconds : float;
  mix_seconds : float;
}

let build_mix ?eps ?max_t ?domains source ~transitions =
  let t0 = Unix.gettimeofday () in
  let chain = build source ~transitions in
  let t1 = Unix.gettimeofday () in
  let tau = Exact.mixing_time ?eps ?max_t ?domains chain in
  let t2 = Unix.gettimeofday () in
  {
    chain;
    state_count = Exact.size chain;
    tau;
    build_seconds = t1 -. t0;
    mix_seconds = t2 -. t1;
  }
