type 'state source =
  | Enumerated of 'state array
  | Reachable of 'state

let enumerated states = Enumerated states
let reachable ~root = Reachable root

let reachable_states ?hash ?equal ~root ~transitions () =
  let hash, equal =
    match (hash, equal) with
    | Some h, Some e -> (h, e)
    | None, None -> State_index.structural ()
    | Some h, None -> (h, snd (State_index.structural ()))
    | None, Some e -> (fst (State_index.structural ()), e)
  in
  let index = State_index.create ~hash ~equal 64 in
  ignore (State_index.add index root);
  (* BFS without an explicit queue: ids are assigned in discovery order,
     so the frontier is exactly the ids not yet processed. *)
  let cursor = ref 0 in
  while !cursor < State_index.size index do
    List.iter
      (fun (s', _) -> ignore (State_index.add index s'))
      (transitions (State_index.get index !cursor));
    incr cursor
  done;
  State_index.to_array index

let states_of ?hash ?equal source ~transitions =
  match source with
  | Enumerated states -> states
  | Reachable root -> reachable_states ?hash ?equal ~root ~transitions ()

(* Streaming build: the state index grows as rows are emitted.

   For an enumerated space the index is fully populated up front (also
   detecting duplicates), then rows stream in index order.  For a
   reachable space the BFS discovery loop doubles as the row loop:
   because ids are assigned in discovery order and processed FIFO, state
   [i]'s successors are all interned by the time row [i] is emitted, so
   each row is final when written and the blocked store never revisits
   one.  Either way the full transition structure is materialized only
   inside the {!Blocked_csr} store — with [~spill], never all at once in
   memory. *)
let build ?block_rows ?spill ?hash ?equal source ~transitions =
  let hash, equal =
    match (hash, equal) with
    | Some h, Some e -> (h, e)
    | None, None -> State_index.structural ()
    | Some h, None -> (h, snd (State_index.structural ()))
    | None, Some e -> (fst (State_index.structural ()), e)
  in
  let index = State_index.create ~hash ~equal 64 in
  let b = Blocked_csr.builder ?block_rows ?spill () in
  (match source with
  | Enumerated states ->
      if Array.length states = 0 then
        invalid_arg "Exact.build: empty state space";
      Array.iter
        (fun s ->
          let before = State_index.size index in
          if State_index.add index s < before then
            invalid_arg "Exact.build: duplicate state")
        states;
      let find s = State_index.find index s in
      Array.iter
        (fun s -> Blocked_csr.add_row b (Exact.validate_row ~find (transitions s)))
        states
  | Reachable root ->
      ignore (State_index.add index root);
      (* The row for state [i] may intern new successors; interning and
         row emission advance together. *)
      let cursor = ref 0 in
      while !cursor < State_index.size index do
        let s = State_index.get index !cursor in
        let row = transitions s in
        let entries =
          List.map
            (fun (s', p) ->
              if p < 0. then invalid_arg "Exact.build: negative probability";
              (State_index.add index s', p))
            row
        in
        let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. entries in
        if Float.abs (total -. 1.) > 1e-9 then
          invalid_arg "Exact.build: row does not sum to 1";
        Blocked_csr.add_row b entries;
        incr cursor
      done);
  let n = State_index.size index in
  let states = State_index.to_array index in
  Exact.of_blocked ~states
    ~find:(fun s -> State_index.find index s)
    (Blocked_csr.finish b ~cols:n)

type 'state analysis = {
  chain : 'state Exact.t;
  state_count : int;
  nnz : int;
  tau : int;
  build_seconds : float;
  mix_seconds : float;
}

let build_mix ?eps ?max_t ?domains ?block_rows ?spill ?hash ?equal ?starts
    ?checkpoint source ~transitions =
  let t0 = Obs.Clock.now_ns () in
  let sp = Obs.begin_span "exact.build" in
  let chain = build ?block_rows ?spill ?hash ?equal source ~transitions in
  Obs.end_span ~args:[ ("states", Obs.Int (Exact.size chain)) ] sp;
  let t1 = Obs.Clock.now_ns () in
  let starts =
    Option.map
      (Array.map (fun s ->
           match Exact.index chain s with
           | i -> i
           | exception Not_found ->
               invalid_arg
                 "Exact_builder.build_mix: start outside state space"))
      starts
  in
  let sp = Obs.begin_span "exact.mix" in
  let tau = Exact.mixing_time ?eps ?max_t ?domains ?starts ?checkpoint chain in
  Obs.end_span ~args:[ ("tau", Obs.Int tau) ] sp;
  let t2 = Obs.Clock.now_ns () in
  {
    chain;
    state_count = Exact.size chain;
    nnz = Blocked_csr.nnz (Exact.blocked chain);
    tau;
    build_seconds = Obs.Clock.seconds_of_ns (Int64.sub t1 t0);
    mix_seconds = Obs.Clock.seconds_of_ns (Int64.sub t2 t1);
  }
