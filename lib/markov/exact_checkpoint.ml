(* Versioned snapshots of long exact-analysis runs.

   Schema "repro.exact-checkpoint/1" (all integers int64 LE, floats
   IEEE-754 binary64 LE):

     magic[24] = "repro.exact-checkpoint/1"
     states, nnz                        — chain fingerprint
     phase tag (u8): 0 = Stationary, 1 = Mixing
     Stationary: tol, iter, prev_r, n, dist[n]
     Mixing:     eps, pi_tol, n, pi[n], tau_hat,
                 k, (start, tau)[k]     — completed crossings
                 inflight flag (u8); if 1: start, t_base, lo, hi, base[n]

   Every quantity a resumed run needs is either here or redundant: the
   search schedule is derived deterministically from (pi, eps) and the
   completed set, and the final τ is independent of the probe schedule,
   so a kill at any point resumes to a bit-identical answer.

   Files are written to a temporary sibling and renamed into place, so
   a kill mid-write leaves the previous snapshot intact.  [load_file]
   treats a missing, truncated or foreign file as "no checkpoint". *)

let magic = "repro.exact-checkpoint/1"

type inflight = {
  start : int;
  t_base : int; (* [base] is the distribution at this time, TV > eps *)
  lo : int;
  hi : int; (* 0 while still doubling *)
  base : float array;
}

type stationary = {
  tol : float;
  iter : int;
  prev_r : float;
  dist : float array;
}

type mixing = {
  eps : float;
  pi_tol : float;
  pi : float array;
  tau_hat : int;
  completed : (int * int) list; (* (start, tau), completion order *)
  inflight : inflight option;
}

type phase = Stationary of stationary | Mixing of mixing

type snapshot = { states : int; nnz : int; phase : phase }

(* {2 Encoding} *)

let put_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
let put_f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)
let put_vec buf a = Array.iter (put_f64 buf) a

let encode s =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_i64 buf s.states;
  put_i64 buf s.nnz;
  (match s.phase with
  | Stationary { tol; iter; prev_r; dist } ->
      Buffer.add_char buf '\000';
      put_f64 buf tol;
      put_i64 buf iter;
      put_f64 buf prev_r;
      put_i64 buf (Array.length dist);
      put_vec buf dist
  | Mixing { eps; pi_tol; pi; tau_hat; completed; inflight } ->
      Buffer.add_char buf '\001';
      put_f64 buf eps;
      put_f64 buf pi_tol;
      put_i64 buf (Array.length pi);
      put_vec buf pi;
      put_i64 buf tau_hat;
      put_i64 buf (List.length completed);
      List.iter
        (fun (s, t) ->
          put_i64 buf s;
          put_i64 buf t)
        completed;
      (match inflight with
      | None -> Buffer.add_char buf '\000'
      | Some { start; t_base; lo; hi; base } ->
          Buffer.add_char buf '\001';
          put_i64 buf start;
          put_i64 buf t_base;
          put_i64 buf lo;
          put_i64 buf hi;
          put_i64 buf (Array.length base);
          put_vec buf base));
  buf

exception Corrupt

let decode bytes =
  let pos = ref 0 in
  let len = Bytes.length bytes in
  let need n = if !pos + n > len then raise Corrupt in
  let get_i64 () =
    need 8;
    let v = Int64.to_int (Bytes.get_int64_le bytes !pos) in
    pos := !pos + 8;
    v
  in
  let get_f64 () =
    need 8;
    let v = Int64.float_of_bits (Bytes.get_int64_le bytes !pos) in
    pos := !pos + 8;
    v
  in
  let get_u8 () =
    need 1;
    let v = Char.code (Bytes.get bytes !pos) in
    incr pos;
    v
  in
  let get_vec () =
    let n = get_i64 () in
    if n < 0 || n > (len - !pos) / 8 then raise Corrupt;
    Array.init n (fun _ -> get_f64 ())
  in
  need (String.length magic);
  if Bytes.sub_string bytes 0 (String.length magic) <> magic then raise Corrupt;
  pos := String.length magic;
  let states = get_i64 () in
  let nnz = get_i64 () in
  let phase =
    match get_u8 () with
    | 0 ->
        let tol = get_f64 () in
        let iter = get_i64 () in
        let prev_r = get_f64 () in
        let dist = get_vec () in
        Stationary { tol; iter; prev_r; dist }
    | 1 ->
        let eps = get_f64 () in
        let pi_tol = get_f64 () in
        let pi = get_vec () in
        let tau_hat = get_i64 () in
        let k = get_i64 () in
        if k < 0 || k > (len - !pos) / 16 then raise Corrupt;
        let completed =
          List.init k (fun _ ->
              let s = get_i64 () in
              let t = get_i64 () in
              (s, t))
        in
        let inflight =
          match get_u8 () with
          | 0 -> None
          | 1 ->
              let start = get_i64 () in
              let t_base = get_i64 () in
              let lo = get_i64 () in
              let hi = get_i64 () in
              let base = get_vec () in
              Some { start; t_base; lo; hi; base }
          | _ -> raise Corrupt
        in
        Mixing { eps; pi_tol; pi; tau_hat; completed; inflight }
    | _ -> raise Corrupt
  in
  if !pos <> len then raise Corrupt;
  { states; nnz; phase }

let save_file path s =
  let tmp = path ^ ".tmp" in
  let ch = open_out_bin tmp in
  Buffer.output_buffer ch (encode s);
  close_out ch;
  Sys.rename tmp path

let load_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ch ->
      let r =
        match really_input_string ch (in_channel_length ch) with
        | exception End_of_file -> None
        | raw -> ( try Some (decode (Bytes.of_string raw)) with Corrupt -> None)
      in
      close_in_noerr ch;
      r

(* {2 Sinks}

   Exact-analysis code talks to an abstract sink so tests can inject
   in-memory sinks that count stores or simulate a kill by raising. *)

type sink = {
  store : snapshot -> unit;
  fetch : unit -> snapshot option;
  min_interval : float; (* seconds between periodic offers *)
  mutable last_store : float; (* Unix time; -infinity = never *)
}

let sink ?(min_interval = 0.) ~store ~fetch () =
  { store; fetch; min_interval; last_store = neg_infinity }

let file_sink ?(min_interval = 15.) path =
  sink ~min_interval
    ~store:(fun s -> save_file path s)
    ~fetch:(fun () -> load_file path)
    ()

let memory_sink ?min_interval () =
  let cell = ref None in
  ( sink ?min_interval ~store:(fun s -> cell := Some s)
      ~fetch:(fun () -> !cell)
      (),
    cell )

let commit t s =
  t.store s;
  t.last_store <- Unix.gettimeofday ()

let offer t make =
  let now = Unix.gettimeofday () in
  if now -. t.last_store >= t.min_interval then begin
    t.store (make ());
    t.last_store <- now
  end

let resume t = t.fetch ()
