(** Dense row-major float matrices.

    Just enough linear algebra for exact Markov-chain analysis of small
    state spaces: products, vector products and stochasticity checks. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix.
    @raise Invalid_argument on non-positive dimensions. *)

val identity : int -> t
val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] adds [x] to entry [(i,j)]. *)

val copy : t -> t
val mul : t -> t -> t
(** Matrix product. @raise Invalid_argument on dimension mismatch. *)

val vec_mul : float array -> t -> float array
(** [vec_mul v m] is the row vector [v m] — one step of distribution
    evolution when [m] is a transition matrix. *)

val row : t -> int -> float array

val is_stochastic : ?tol:float -> t -> bool
(** Rows non-negative and summing to 1 within [tol] (default 1e-9). *)

val max_abs_diff : t -> t -> float
