(** Simulable discrete-time Markov chains.

    A chain is just a randomized transition function; the allocation
    processes of the paper (Section 3.3) and the edge-orientation chain
    (Section 6) are instances.  This module holds the generic driving
    loops used by experiments.

    @deprecated For {e simulation} prefer [Engine.Sim]: each process
    module exposes a [sim] adapter whose steppers mutate preallocated
    buffers instead of rebuilding functional states, and whose drivers
    ([iterate], [fold], [first_hit], [trajectory], [sample_every])
    mirror the ones here with always-on instrumentation.  This module
    remains the right tool for chains over immutable states (exact
    analysis, couplings built with [of_identity]). *)

type 'state t = {
  step : Prng.Rng.t -> 'state -> 'state;
      (** One transition, drawing randomness from the generator. *)
}

val make : (Prng.Rng.t -> 'state -> 'state) -> 'state t

val iterate : 'state t -> Prng.Rng.t -> 'state -> int -> 'state
(** [iterate c g s t] runs [t] steps from [s].
    @raise Invalid_argument if [t < 0]. *)

val fold : 'state t -> Prng.Rng.t -> 'state -> int ->
  init:'acc -> f:('acc -> int -> 'state -> 'acc) -> 'acc
(** [fold c g s t ~init ~f] runs [t] steps, folding [f acc step_index
    state] over the state {e after} each step. *)

val trajectory : 'state t -> Prng.Rng.t -> 'state -> int -> 'state array
(** States after steps 1..t (length [t]). *)

val first_hit : 'state t -> Prng.Rng.t -> 'state ->
  pred:('state -> bool) -> limit:int -> int option
(** [first_hit c g s ~pred ~limit] is [Some t] for the smallest
    [0 <= t <= limit] such that the state after [t] steps satisfies
    [pred] ([t = 0] checks the initial state), or [None] if the predicate
    never holds within [limit] steps. *)

val sample_every : 'state t -> Prng.Rng.t -> 'state ->
  burn_in:int -> every:int -> samples:int -> ('state -> 'a) -> 'a list
(** [sample_every c g s ~burn_in ~every ~samples obs] runs [burn_in]
    steps, then records [obs state] every [every] steps until [samples]
    observations are collected.  Used to estimate stationary quantities. *)
