(** Discrete-time Markov chains as bare transition functions.

    A chain is just a randomized one-step map over an immutable state;
    the allocation processes of the paper (Section 3.3) and the
    edge-orientation chain (Section 6) are instances.  This functional
    view is the composition point for exact-analysis-style consumers —
    {!Markov.Empirical} drives it to estimate observable TV decay, and
    couplings pair two of them over a shared draw.

    Simulation {e drivers} live elsewhere: [Engine.Sim] steppers mutate
    preallocated buffers and carry always-on instrumentation ([iterate],
    [fold], [first_hit], [trajectory], [sample_every]); every process
    module exposes a [sim] adapter (and representation-selecting
    [sim_repr]) onto them.  The historical driver loops this module once
    held were deleted in favour of those. *)

type 'state t = {
  step : Prng.Rng.t -> 'state -> 'state;
      (** One transition, drawing randomness from the generator. *)
}

val make : (Prng.Rng.t -> 'state -> 'state) -> 'state t
