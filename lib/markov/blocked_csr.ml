(* Blocked CSR transition-matrix store.

   The matrix is split into fixed row-range blocks; each block is a
   compact CSR shard (local row pointers, column indices, values).
   Shards live in memory by default, or append to a disk-backed block
   file as each block completes ([?spill]), so a build whose transition
   structure exceeds RAM still finishes: the builder only ever holds the
   block under construction.

   Rows arrive one at a time, in order, through [add_row] — the shape a
   BFS enumeration produces naturally, since state [i]'s row is fully
   determined by the time [i] is dequeued.  The final column count is
   only known once discovery ends, so bounds are checked at [finish].

   Spill file format "repro.blocked-csr/1" (all integers int64 LE,
   values IEEE-754 float64 LE):

     per block, in order:
       nrows, nnz, row_ptr[nrows+1], col_idx[nnz], values[nnz]
     footer:
       nblocks, then per block: pos, nrows, nnz
     trailer (fixed 48 bytes at EOF):
       rows, cols, block_rows, total nnz, footer pos, magic[8] = "rprbcsr1"

   The trailer is written last, so a file missing or corrupting it (a
   killed build) is rejected by [open_file] rather than half-read. *)

let magic = "rprbcsr1"
let default_block_rows = 4096

type shard = {
  row_ptr : int array; (* local; length nrows+1 *)
  col_idx : int array;
  values : float array;
}

type storage =
  | Mem of shard
  | Disk of { pos : int; nrows : int; nnz : int }

type t = {
  rows : int;
  cols : int;
  block_rows : int;
  blocks : storage array;
  channel : in_channel option; (* open block file when any block is Disk *)
  path : string option;
  nnz : int;
}

let rows t = t.rows
let cols t = t.cols
let nnz t = t.nnz
let block_rows t = t.block_rows
let block_count t = Array.length t.blocks
let path t = t.path
let close t = Option.iter close_in_noerr t.channel

let spmv_counter = Obs.Counter.make "bcsr.spmv_calls"
let block_nnz_hist = Obs.Histogram.make "bcsr.block_nnz"

(* {2 Binary encoding} *)

let put_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
let put_f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let read_block ch ~pos =
  seek_in ch pos;
  let b8 = Bytes.create 8 in
  let get_i64 () =
    really_input ch b8 0 8;
    Int64.to_int (Bytes.get_int64_le b8 0)
  in
  let nrows = get_i64 () in
  let nnz = get_i64 () in
  if nrows < 0 || nnz < 0 then failwith "Blocked_csr: corrupt block header";
  let bulk = Bytes.create (8 * (nrows + 1 + nnz + nnz)) in
  really_input ch bulk 0 (Bytes.length bulk);
  let row_ptr =
    Array.init (nrows + 1) (fun i -> Int64.to_int (Bytes.get_int64_le bulk (8 * i)))
  in
  let off = 8 * (nrows + 1) in
  let col_idx =
    Array.init nnz (fun k -> Int64.to_int (Bytes.get_int64_le bulk (off + (8 * k))))
  in
  let off = off + (8 * nnz) in
  let values =
    Array.init nnz (fun k ->
        Int64.float_of_bits (Bytes.get_int64_le bulk (off + (8 * k))))
  in
  { row_ptr; col_idx; values }

(* Load block [b] and apply [f] to its shard; [row0] is the global index
   of the shard's first row.  Disk shards are read fresh per call — the
   working set is one block, whatever the matrix size. *)
let with_shard t b f =
  let row0 = b * t.block_rows in
  match t.blocks.(b) with
  | Mem s -> f ~row0 s
  | Disk { pos; _ } -> f ~row0 (read_block (Option.get t.channel) ~pos)

(* {2 Streaming builder} *)

type builder = {
  target_block_rows : int;
  spill : string option;
  mutable out : out_channel option;
  mutable written : int; (* bytes written so far = pos of next block *)
  mutable done_blocks : storage list; (* reversed *)
  mutable nrows : int; (* rows fed in, across all blocks *)
  mutable total_nnz : int;
  mutable max_col : int;
  (* block under construction *)
  mutable cur_rows : int;
  mutable cur_ptr : int array; (* length target_block_rows + 1 *)
  mutable cur_col : int array; (* growable *)
  mutable cur_val : float array;
}

let builder ?(block_rows = default_block_rows) ?spill () =
  if block_rows < 1 then invalid_arg "Blocked_csr.builder: block_rows < 1";
  {
    target_block_rows = block_rows;
    spill;
    out = None;
    written = 0;
    done_blocks = [];
    nrows = 0;
    total_nnz = 0;
    max_col = -1;
    cur_rows = 0;
    cur_ptr = Array.make (block_rows + 1) 0;
    cur_col = Array.make 64 0;
    cur_val = Array.make 64 0.;
  }

let spill_block b (s : shard) =
  let ch =
    match b.out with
    | Some ch -> ch
    | None ->
        let ch = open_out_bin (Option.get b.spill) in
        b.out <- Some ch;
        ch
  in
  let nnz = Array.length s.values in
  let buf = Buffer.create (8 * (2 + Array.length s.row_ptr + (2 * nnz))) in
  put_i64 buf (Array.length s.row_ptr - 1);
  put_i64 buf nnz;
  Array.iter (put_i64 buf) s.row_ptr;
  Array.iter (put_i64 buf) s.col_idx;
  Array.iter (put_f64 buf) s.values;
  let sp =
    if Obs.enabled () then
      Obs.begin_span "bcsr.spill"
        ~args:
          [
            ("block", Obs.Int (List.length b.done_blocks));
            ("bytes", Obs.Int (Buffer.length buf));
          ]
    else Obs.null_span
  in
  let pos = b.written in
  Buffer.output_buffer ch buf;
  b.written <- b.written + Buffer.length buf;
  Obs.end_span sp;
  Disk { pos; nrows = Array.length s.row_ptr - 1; nnz }

let flush_block b =
  if b.cur_rows > 0 then begin
    let nnz = b.cur_ptr.(b.cur_rows) in
    let s =
      {
        row_ptr = Array.sub b.cur_ptr 0 (b.cur_rows + 1);
        col_idx = Array.sub b.cur_col 0 nnz;
        values = Array.sub b.cur_val 0 nnz;
      }
    in
    Obs.Histogram.observe block_nnz_hist nnz;
    let st = match b.spill with None -> Mem s | Some _ -> spill_block b s in
    b.done_blocks <- st :: b.done_blocks;
    b.cur_rows <- 0;
    Array.fill b.cur_ptr 0 (Array.length b.cur_ptr) 0
  end

let ensure_entry_room b need =
  let cap = Array.length b.cur_col in
  if need > cap then begin
    let cap' = ref (Stdlib.max 64 (cap * 2)) in
    while !cap' < need do
      cap' := !cap' * 2
    done;
    let col' = Array.make !cap' 0 and val' = Array.make !cap' 0. in
    Array.blit b.cur_col 0 col' 0 cap;
    Array.blit b.cur_val 0 val' 0 cap;
    b.cur_col <- col';
    b.cur_val <- val'
  end

(* Per row: sort by column, merge duplicates, drop exact zeros — the
   same normalization {!Sparse.of_rows} applies, so conversions between
   the two stores preserve nnz. *)
let add_row b entries =
  let a = Array.of_list entries in
  Array.iter
    (fun (j, _) ->
      if j < 0 then invalid_arg "Blocked_csr.add_row: negative column index";
      if j > b.max_col then b.max_col <- j)
    a;
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) a;
  let base = b.cur_ptr.(b.cur_rows) in
  ensure_entry_room b (base + Array.length a);
  let out = ref base in
  let k = Array.length a in
  let p = ref 0 in
  while !p < k do
    let j, _ = a.(!p) in
    let v = ref 0. in
    while !p < k && fst a.(!p) = j do
      v := !v +. snd a.(!p);
      incr p
    done;
    if !v <> 0. then begin
      b.cur_col.(!out) <- j;
      b.cur_val.(!out) <- !v;
      incr out
    end
  done;
  b.total_nnz <- b.total_nnz + (!out - base);
  b.cur_rows <- b.cur_rows + 1;
  b.cur_ptr.(b.cur_rows) <- !out;
  b.nrows <- b.nrows + 1;
  if b.cur_rows = b.target_block_rows then flush_block b

let finish b ~cols =
  Obs.with_span "bcsr.build"
    ~args:
      (if Obs.enabled () then
         [ ("rows", Obs.Int b.nrows); ("nnz", Obs.Int b.total_nnz) ]
       else [])
    (fun () ->
      if b.nrows = 0 then invalid_arg "Blocked_csr.finish: empty matrix";
      if cols <= 0 then invalid_arg "Blocked_csr.finish: non-positive cols";
      if b.max_col >= cols then
        invalid_arg "Blocked_csr.finish: column index out of bounds";
      flush_block b;
      let blocks = Array.of_list (List.rev b.done_blocks) in
      match b.out with
      | None ->
          {
            rows = b.nrows;
            cols;
            block_rows = b.target_block_rows;
            blocks;
            channel = None;
            path = None;
            nnz = b.total_nnz;
          }
      | Some ch ->
          let footer_pos = b.written in
          let buf = Buffer.create 1024 in
          put_i64 buf (Array.length blocks);
          Array.iter
            (function
              | Disk { pos; nrows; nnz } ->
                  put_i64 buf pos;
                  put_i64 buf nrows;
                  put_i64 buf nnz
              | Mem _ -> assert false)
            blocks;
          put_i64 buf b.nrows;
          put_i64 buf cols;
          put_i64 buf b.target_block_rows;
          put_i64 buf b.total_nnz;
          put_i64 buf footer_pos;
          Buffer.add_string buf magic;
          Buffer.output_buffer ch buf;
          close_out ch;
          b.out <- None;
          let path = Option.get b.spill in
          {
            rows = b.nrows;
            cols;
            block_rows = b.target_block_rows;
            blocks;
            channel = Some (open_in_bin path);
            path = Some path;
            nnz = b.total_nnz;
          })

let open_file path =
  let ch = open_in_bin path in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        close_in_noerr ch;
        failwith ("Blocked_csr.open_file: " ^ m))
      fmt
  in
  let len = in_channel_length ch in
  if len < 48 then fail "%s: truncated file" path;
  seek_in ch (len - 48);
  let b = Bytes.create 48 in
  really_input ch b 0 48;
  if Bytes.sub_string b 40 8 <> magic then fail "%s: bad magic" path;
  let get i = Int64.to_int (Bytes.get_int64_le b (8 * i)) in
  let rows = get 0
  and cols = get 1
  and block_rows = get 2
  and total_nnz = get 3
  and footer_pos = get 4 in
  if rows <= 0 || cols <= 0 || block_rows <= 0 || footer_pos < 0 then
    fail "%s: corrupt trailer" path;
  seek_in ch footer_pos;
  let b8 = Bytes.create 8 in
  let get_i64 () =
    really_input ch b8 0 8;
    Int64.to_int (Bytes.get_int64_le b8 0)
  in
  let nblocks = get_i64 () in
  if nblocks < 0 || nblocks > rows then fail "%s: corrupt footer" path;
  let blocks =
    Array.init nblocks (fun _ ->
        let pos = get_i64 () in
        let nrows = get_i64 () in
        let nnz = get_i64 () in
        Disk { pos; nrows; nnz })
  in
  { rows; cols; block_rows; blocks; channel = Some ch; path = Some path;
    nnz = total_nnz }

(* {2 Conversions} *)

let of_sparse ?block_rows ?spill (s : Sparse.t) =
  let b = builder ?block_rows ?spill () in
  let row = ref [] in
  for i = 0 to Sparse.rows s - 1 do
    row := [];
    Sparse.row_iter s i ~f:(fun j v -> row := (j, v) :: !row);
    add_row b (List.rev !row)
  done;
  finish b ~cols:(Sparse.cols s)

let to_sparse t =
  let entries = Array.make t.rows [] in
  for b = 0 to block_count t - 1 do
    with_shard t b (fun ~row0 s ->
        let nrows = Array.length s.row_ptr - 1 in
        for r = 0 to nrows - 1 do
          let acc = ref [] in
          for k = s.row_ptr.(r + 1) - 1 downto s.row_ptr.(r) do
            acc := (s.col_idx.(k), s.values.(k)) :: !acc
          done;
          entries.(row0 + r) <- !acc
        done)
  done;
  Sparse.of_rows ~rows:t.rows ~cols:t.cols (fun i -> entries.(i))

let row_sums t =
  let sums = Array.make t.rows 0. in
  for b = 0 to block_count t - 1 do
    with_shard t b (fun ~row0 s ->
        let nrows = Array.length s.row_ptr - 1 in
        for r = 0 to nrows - 1 do
          let acc = ref 0. in
          for k = s.row_ptr.(r) to s.row_ptr.(r + 1) - 1 do
            acc := !acc +. s.values.(k)
          done;
          sums.(row0 + r) <- !acc
        done)
  done;
  sums

let is_stochastic ?(tol = 1e-9) t =
  t.rows = t.cols
  && Array.for_all (fun s -> Float.abs (s -. 1.) <= tol) (row_sums t)

(* {2 Kernels}

   [dst <- src · P] plus optionally a fused L1 statistic, deterministic
   for {e any} pool size.  Parallelism is column-owner-computes: the
   columns are cut into fixed-width chunks (a property of the matrix,
   not of the pool), each worker owns a contiguous chunk range, writes
   only the dst entries in it, and accumulates each dst entry over rows
   in increasing global row order — exactly the order the sequential
   row-major scatter uses, so every dst value is bit-identical to the
   sequential result.  Fused statistics are likewise summed per chunk
   and then across chunks in chunk order on the caller's domain, making
   residuals and TV values independent of the domain count too. *)

let chunk_cols = 1024

type stat = No_stat | L1_diff | Tv of float array

type kernel = {
  mat : t;
  pool : Parallel.Pool.t option;
  nchunks : int;
  ranges : int array; (* length workers+1; worker w owns chunks [r.(w), r.(w+1)) *)
  chunk_stat : float array; (* per-chunk partials of the fused statistic *)
}

(* Cut the chunks into [workers] contiguous ranges of roughly equal
   nnz, so a matrix whose mass concentrates in a few column bands still
   splits evenly. *)
let balance_ranges ~nchunks ~workers per_chunk_nnz =
  let total = Array.fold_left ( + ) 0 per_chunk_nnz in
  let ranges = Array.make (workers + 1) 0 in
  if total = 0 then
    for w = 0 to workers do
      ranges.(w) <- nchunks * w / workers
    done
  else begin
    let c = ref 0 and acc = ref 0 in
    for w = 1 to workers - 1 do
      let target = total * w / workers in
      while !c < nchunks && !acc + per_chunk_nnz.(!c) <= target do
        acc := !acc + per_chunk_nnz.(!c);
        incr c
      done;
      ranges.(w) <- !c
    done;
    ranges.(workers) <- nchunks
  end;
  ranges

let all_mem t = Array.for_all (function Mem _ -> true | Disk _ -> false) t.blocks
let in_memory = all_mem

let kernel ?pool mat =
  let nchunks = Stdlib.max 1 ((mat.cols + chunk_cols - 1) / chunk_cols) in
  (* A pool only helps when every shard is resident: disk shards are
     streamed through one shared channel and stay on the sequential
     path. *)
  let pool =
    match pool with
    | Some p when Parallel.Pool.size p > 1 && all_mem mat -> Some p
    | _ -> None
  in
  let workers = match pool with Some p -> Parallel.Pool.size p | None -> 1 in
  let per_chunk = Array.make nchunks 0 in
  if workers > 1 then
    Array.iter
      (function
        | Mem s ->
            Array.iter
              (fun j ->
                per_chunk.(j / chunk_cols) <- per_chunk.(j / chunk_cols) + 1)
              s.col_idx
        | Disk _ -> ())
      mat.blocks;
  let ranges = balance_ranges ~nchunks ~workers per_chunk in
  { mat; pool; nchunks; ranges; chunk_stat = Array.make nchunks 0. }

(* Sequential row-major scatter over the blocks, streaming any disk
   shard; the reference order every parallel variant reproduces. *)
let seq_spmv t ~src ~dst =
  Array.fill dst 0 t.cols 0.;
  for b = 0 to block_count t - 1 do
    with_shard t b (fun ~row0 s ->
        let rp = s.row_ptr and ci = s.col_idx and vs = s.values in
        let nrows = Array.length rp - 1 in
        for r = 0 to nrows - 1 do
          let v = Array.unsafe_get src (row0 + r) in
          if v <> 0. then
            for k = Array.unsafe_get rp r to Array.unsafe_get rp (r + 1) - 1 do
              let j = Array.unsafe_get ci k in
              Array.unsafe_set dst j
                (Array.unsafe_get dst j +. (v *. Array.unsafe_get vs k))
            done
        done)
  done

(* Worker slice: fill and accumulate the dst entries in column range
   [j0, j1), reading every block but touching only the columns it owns.
   For each row a binary search finds where the range starts in the
   row's sorted columns; entries are then consumed sequentially.  Each
   dst entry is owned by exactly one worker and accumulated over rows in
   increasing global order — the same per-entry summation order as
   {!seq_spmv}, hence bit-identical results for any pool size. *)
let slice_spmv mat ~src ~dst ~j0 ~j1 =
  Array.fill dst j0 (j1 - j0) 0.;
  Array.iteri
    (fun b st ->
      match st with
      | Disk _ -> assert false
      | Mem s ->
          let row0 = b * mat.block_rows in
          let rp = s.row_ptr and ci = s.col_idx and vs = s.values in
          let nrows = Array.length rp - 1 in
          for r = 0 to nrows - 1 do
            let v = Array.unsafe_get src (row0 + r) in
            if v <> 0. then begin
              let kend = Array.unsafe_get rp (r + 1) in
              let lo = ref (Array.unsafe_get rp r) and hi = ref kend in
              if j0 > 0 then
                while !lo < !hi do
                  let mid = (!lo + !hi) / 2 in
                  if Array.unsafe_get ci mid < j0 then lo := mid + 1
                  else hi := mid
                done;
              let k = ref !lo in
              let continue_ = ref (!k < kend) in
              while !continue_ do
                let j = Array.unsafe_get ci !k in
                if j >= j1 then continue_ := false
                else begin
                  Array.unsafe_set dst j
                    (Array.unsafe_get dst j +. (v *. Array.unsafe_get vs !k));
                  incr k;
                  if !k >= kend then continue_ := false
                end
              done
            end
          done)
    mat.blocks

let chunk_bounds mat c =
  (c * chunk_cols, Stdlib.min mat.cols ((c + 1) * chunk_cols))

let chunk_stat_value ~stat ~src ~dst ~j0 ~j1 =
  match stat with
  | No_stat -> 0.
  | L1_diff ->
      let acc = ref 0. in
      for j = j0 to j1 - 1 do
        acc :=
          !acc +. Float.abs (Array.unsafe_get dst j -. Array.unsafe_get src j)
      done;
      !acc
  | Tv pi ->
      let acc = ref 0. in
      for j = j0 to j1 - 1 do
        acc :=
          !acc +. Float.abs (Array.unsafe_get dst j -. Array.unsafe_get pi j)
      done;
      !acc

(* Fused product: dst <- src · P, returning the requested L1 statistic.
   The statistic is accumulated per fixed-width chunk (in ascending
   index order within the chunk) and the chunk partials are summed in
   chunk order on the caller's domain — both the chunk width and the
   summation order are properties of the matrix alone, so the value is
   identical for any pool size, including the sequential path. *)
let run k ~stat ~src ~dst =
  let mat = k.mat in
  if Array.length src <> mat.rows || Array.length dst <> mat.cols then
    invalid_arg "Blocked_csr.spmv: dimension mismatch";
  Obs.Counter.incr spmv_counter;
  let stat_chunks ~c0 ~c1 =
    match stat with
    | No_stat -> ()
    | _ ->
        for c = c0 to c1 - 1 do
          let j0, j1 = chunk_bounds mat c in
          k.chunk_stat.(c) <- chunk_stat_value ~stat ~src ~dst ~j0 ~j1
        done
  in
  (match k.pool with
  | None ->
      seq_spmv mat ~src ~dst;
      stat_chunks ~c0:0 ~c1:k.nchunks
  | Some pool ->
      Parallel.Pool.run pool (fun w _ ->
          let c0 = k.ranges.(w) and c1 = k.ranges.(w + 1) in
          if c1 > c0 then begin
            let j0 = c0 * chunk_cols
            and j1 = Stdlib.min mat.cols (c1 * chunk_cols) in
            slice_spmv mat ~src ~dst ~j0 ~j1;
            stat_chunks ~c0 ~c1
          end));
  match stat with
  | No_stat -> 0.
  | _ ->
      let total = ref 0. in
      for c = 0 to k.nchunks - 1 do
        total := !total +. k.chunk_stat.(c)
      done;
      !total

let spmv k ~src ~dst = ignore (run k ~stat:No_stat ~src ~dst)
let step_l1 k ~src ~dst = run k ~stat:L1_diff ~src ~dst
let step_tv k ~pi ~src ~dst = run k ~stat:(Tv pi) ~src ~dst /. 2.
let kernel_parallel k = Option.is_some k.pool

(* {2 Multi-vector fused products}

   Advance a whole batch of distribution vectors through one traversal
   of the matrix.  The matrix is the dominant memory traffic of a fused
   step (nnz column indices + values versus a handful of dense vectors),
   so amortizing its read over B vectors is close to a Bx reduction in
   traffic — the win the batched mixing sweeps in {!Exact} are built on.

   Bit-identity with the single-vector path is preserved per vector: a
   contribution [src.(row) * v] is added to [dst.(j)] if and only if
   [src.(row) <> 0.] (the same skip {!seq_spmv} performs), and each
   [dst.(j)] accumulates over rows in increasing global row order —
   exactly the single-vector summation order.  The fused statistic is
   likewise accumulated per column chunk and reduced in chunk order
   independently for every vector, so
   [step_tv_multi k ~pi ~srcs ~dsts] returns exactly the values the B
   separate [step_tv] calls would. *)

(* Sequential batched scatter.  The row's entries are the innermost
   loop, replayed once per vector with the source value and destination
   array in registers: a row (a few hundred bytes of CSR data) is pulled
   from the block once and re-read from L1 by the remaining B-1 vectors,
   which is where the traffic amortization comes from.  Entry-innermost
   ordering (one pass over the row updating all B vectors per entry)
   measures slower: it pays an [rv] load, a branch and a [dsts.(b)]
   indirection per (entry, vector) while saving only L1-hot re-reads. *)
let seq_spmv_multi t ~srcs ~dsts ~nb =
  for b = 0 to nb - 1 do
    Array.fill dsts.(b) 0 t.cols 0.
  done;
  for blk = 0 to block_count t - 1 do
    with_shard t blk (fun ~row0 s ->
        let rp = s.row_ptr and ci = s.col_idx and vs = s.values in
        let nrows = Array.length rp - 1 in
        for r = 0 to nrows - 1 do
          let row = row0 + r in
          let k0 = Array.unsafe_get rp r in
          let k1 = Array.unsafe_get rp (r + 1) in
          for b = 0 to nb - 1 do
            let sv = Array.unsafe_get (Array.unsafe_get srcs b) row in
            if sv <> 0. then begin
              let d = Array.unsafe_get dsts b in
              for k = k0 to k1 - 1 do
                let j = Array.unsafe_get ci k in
                Array.unsafe_set d j
                  (Array.unsafe_get d j +. (sv *. Array.unsafe_get vs k))
              done
            end
          done
        done)
  done

(* Batched worker slice: the column-owner-computes split of
   {!slice_spmv}, with the same vector-outermost replay of each row's
   owned entry range as {!seq_spmv_multi}.  [any] gates the binary
   search to [j0] (one per row, shared by the batch); the per-vector
   scan then walks the L1-hot entries until it leaves the owned
   column range. *)
let slice_spmv_multi mat ~srcs ~dsts ~nb ~j0 ~j1 =
  for b = 0 to nb - 1 do
    Array.fill dsts.(b) j0 (j1 - j0) 0.
  done;
  Array.iteri
    (fun blk st ->
      match st with
      | Disk _ -> assert false
      | Mem s ->
          let row0 = blk * mat.block_rows in
          let rp = s.row_ptr and ci = s.col_idx and vs = s.values in
          let nrows = Array.length rp - 1 in
          for r = 0 to nrows - 1 do
            let row = row0 + r in
            let any = ref false in
            for b = 0 to nb - 1 do
              if Array.unsafe_get (Array.unsafe_get srcs b) row <> 0. then
                any := true
            done;
            if !any then begin
              let kend = Array.unsafe_get rp (r + 1) in
              let lo = ref (Array.unsafe_get rp r) and hi = ref kend in
              if j0 > 0 then
                while !lo < !hi do
                  let mid = (!lo + !hi) / 2 in
                  if Array.unsafe_get ci mid < j0 then lo := mid + 1
                  else hi := mid
                done;
              let k0 = !lo in
              for b = 0 to nb - 1 do
                let sv = Array.unsafe_get (Array.unsafe_get srcs b) row in
                if sv <> 0. then begin
                  let d = Array.unsafe_get dsts b in
                  let k = ref k0 in
                  let continue_ = ref (k0 < kend) in
                  while !continue_ do
                    let j = Array.unsafe_get ci !k in
                    if j >= j1 then continue_ := false
                    else begin
                      Array.unsafe_set d j
                        (Array.unsafe_get d j
                        +. (sv *. Array.unsafe_get vs !k));
                      incr k;
                      if !k >= kend then continue_ := false
                    end
                  done
                end
              done
            end
          done)
    mat.blocks

let run_multi k ~stat ~srcs ~dsts =
  let mat = k.mat in
  let nb = Array.length srcs in
  if Array.length dsts <> nb then
    invalid_arg "Blocked_csr.step_tv_multi: srcs/dsts length mismatch";
  if nb = 0 then [||]
  else if nb = 1 then [| run k ~stat ~src:srcs.(0) ~dst:dsts.(0) |]
  else begin
    for b = 0 to nb - 1 do
      if Array.length srcs.(b) <> mat.rows || Array.length dsts.(b) <> mat.cols
      then invalid_arg "Blocked_csr.spmv: dimension mismatch"
    done;
    Obs.Counter.incr spmv_counter;
    (* Per-chunk, per-vector partials: chunk c of vector b lives at
       [c * nb + b], written by the (unique) worker owning chunk c. *)
    let chunk_stat =
      match stat with
      | No_stat -> [||]
      | _ -> Array.make (k.nchunks * nb) 0.
    in
    let stat_chunks ~c0 ~c1 =
      match stat with
      | No_stat -> ()
      | _ ->
          for c = c0 to c1 - 1 do
            let j0, j1 = chunk_bounds mat c in
            for b = 0 to nb - 1 do
              chunk_stat.((c * nb) + b) <-
                chunk_stat_value ~stat ~src:srcs.(b) ~dst:dsts.(b) ~j0 ~j1
            done
          done
    in
    (match k.pool with
    | None ->
        seq_spmv_multi mat ~srcs ~dsts ~nb;
        stat_chunks ~c0:0 ~c1:k.nchunks
    | Some pool ->
        Parallel.Pool.run pool (fun w _ ->
            let c0 = k.ranges.(w) and c1 = k.ranges.(w + 1) in
            if c1 > c0 then begin
              let j0 = c0 * chunk_cols
              and j1 = Stdlib.min mat.cols (c1 * chunk_cols) in
              slice_spmv_multi mat ~srcs ~dsts ~nb ~j0 ~j1;
              stat_chunks ~c0 ~c1
            end));
    match stat with
    | No_stat -> Array.make nb 0.
    | _ ->
        let totals = Array.make nb 0. in
        for c = 0 to k.nchunks - 1 do
          for b = 0 to nb - 1 do
            totals.(b) <- totals.(b) +. chunk_stat.((c * nb) + b)
          done
        done;
        totals
  end

let spmv_multi k ~srcs ~dsts = ignore (run_multi k ~stat:No_stat ~srcs ~dsts)

let step_tv_multi k ~pi ~srcs ~dsts =
  Array.map (fun s -> s /. 2.) (run_multi k ~stat:(Tv pi) ~srcs ~dsts)
