(** Empirical total-variation estimation.

    Exact TV distances need the full transition matrix; at realistic sizes
    we instead estimate the TV distance between the laws of an integer
    {e observable} (e.g. the maximum load) from repeated simulation.  By
    the data-processing inequality this lower-bounds the state-space TV
    distance, so a slow empirical decay certifies slow mixing, and the
    time at which it vanishes tracks the recovery time. *)

val tv_between_samples : int array -> int array -> float
(** TV distance between the empirical distributions of two samples of a
    non-negative integer observable.
    @raise Invalid_argument if either sample is empty or has a negative
    entry. *)

val observable_tv :
  'state Chain.t ->
  rng:Prng.Rng.t ->
  x0:(unit -> 'state) ->
  y0:(unit -> 'state) ->
  t:int ->
  reps:int ->
  observable:('state -> int) ->
  float
(** [observable_tv chain ~rng ~x0 ~y0 ~t ~reps ~observable] estimates
    [‖L(f(X_t) | X_0 = x0 ()) − L(f(Y_t) | Y_0 = y0 ())‖] from [reps]
    independent runs of each chain.  The initial states are thunks so
    that chains over mutable state get a fresh copy per run.
    @raise Invalid_argument if [reps <= 0] or [t < 0]. *)

val decay_profile :
  'state Chain.t ->
  rng:Prng.Rng.t ->
  x0:(unit -> 'state) ->
  y0:(unit -> 'state) ->
  times:int list ->
  reps:int ->
  observable:('state -> int) ->
  (int * float) list
(** [(t, estimated TV)] for each requested time, fresh runs per time
    point (no reuse, so estimates are independent). *)
