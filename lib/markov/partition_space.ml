let enumerate ~n ~m =
  if n <= 0 || m < 0 then invalid_arg "Partition_space.enumerate";
  let out = ref [] in
  (* Build parts left to right: remaining balls, remaining slots, cap on
     the next part (non-increasing order). *)
  let rec go acc remaining slots cap =
    if remaining = 0 then out := List.rev acc :: !out
    else if slots = 0 then ()
    else
      (* A part of size [p], p from min(cap, remaining) down to at least
         ceil(remaining / slots) so the rest fits under the cap p. *)
      for p = Stdlib.min cap remaining downto 1 do
        if p * slots >= remaining then go (p :: acc) (remaining - p) (slots - 1) p
      done
  in
  go [] m n m;
  let to_vector parts =
    let v = Array.make n 0 in
    List.iteri (fun i p -> v.(i) <- p) parts;
    Loadvec.Load_vector.of_array v
  in
  let states = List.rev_map to_vector !out in
  let arr = Array.of_list states in
  Array.sort (fun a b -> Loadvec.Load_vector.compare b a) arr;
  arr

let count ~n ~m =
  if n <= 0 || m < 0 then invalid_arg "Partition_space.count";
  (* p(m, k): partitions of m into at most k parts.
     p(m, k) = p(m, k-1) + p(m-k, k). *)
  let k_max = Stdlib.min n m in
  let table = Array.make_matrix (m + 1) (k_max + 1) 0 in
  for k = 0 to k_max do
    table.(0).(k) <- 1
  done;
  for mm = 1 to m do
    for k = 1 to k_max do
      table.(mm).(k) <-
        table.(mm).(k - 1) + (if mm >= k then table.(mm - k).(k) else 0)
    done
  done;
  table.(m).(k_max)

type index = {
  states : Loadvec.Load_vector.t array;
  lookup : (Loadvec.Load_vector.t, int) Hashtbl.t;
}

let index_of_space states =
  let lookup = Hashtbl.create (Array.length states) in
  Array.iteri (fun i s -> Hashtbl.replace lookup s i) states;
  { states; lookup }

let find idx v =
  match Hashtbl.find_opt idx.lookup v with
  | Some i -> i
  | None -> raise Not_found

let state idx i = idx.states.(i)
let size idx = Array.length idx.states
