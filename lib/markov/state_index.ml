(* Keyed state ↔ dense-id index.

   Interning states during a BFS enumeration was previously done with a
   polymorphic Hashtbl (structural hashing on arbitrary state values,
   re-hashing the whole representation on every probe) plus a
   list-accumulate-and-reverse for the discovery order.  This module
   takes the hash and equality explicitly, stores states in a growable
   array in id order (id = discovery rank), and resolves lookups through
   an open-addressing table of ids, so a probe touches one int array and
   calls the supplied hash exactly once. *)

type 'a t = {
  hash : 'a -> int;
  equal : 'a -> 'a -> bool;
  mutable slots : int array; (* open addressing; -1 = empty, else state id *)
  mutable mask : int; (* Array.length slots - 1; capacity is a power of 2 *)
  mutable states : 'a array; (* ids 0..size-1 valid; rest is padding *)
  mutable size : int;
}

let create ~hash ~equal n =
  let rec cap c = if c >= n * 2 then c else cap (c * 2) in
  let capacity = cap 16 in
  {
    hash;
    equal;
    slots = Array.make capacity (-1);
    mask = capacity - 1;
    states = [||];
    size = 0;
  }

let hashed : ('a -> int) -> 'a -> int = fun h x -> h x land max_int

let size t = t.size
let get t i = t.states.(i)
let to_array t = Array.sub t.states 0 t.size

let find t x =
  let h = hashed t.hash x in
  let rec probe i =
    let id = Array.unsafe_get t.slots i in
    if id = -1 then None
    else if t.equal t.states.(id) x then Some id
    else probe ((i + 1) land t.mask)
  in
  probe (h land t.mask)

let insert_slot t h id =
  let rec probe i =
    if Array.unsafe_get t.slots i = -1 then t.slots.(i) <- id
    else probe ((i + 1) land t.mask)
  in
  probe (h land t.mask)

let grow t =
  let capacity = (t.mask + 1) * 2 in
  t.slots <- Array.make capacity (-1);
  t.mask <- capacity - 1;
  for id = 0 to t.size - 1 do
    insert_slot t (hashed t.hash t.states.(id)) id
  done

let push_state t x =
  let cap = Array.length t.states in
  if t.size = cap then begin
    let cap' = Stdlib.max 16 (cap * 2) in
    let states' = Array.make cap' x in
    Array.blit t.states 0 states' 0 t.size;
    t.states <- states'
  end;
  t.states.(t.size) <- x;
  t.size <- t.size + 1

let add t x =
  let h = hashed t.hash x in
  let rec probe i =
    let id = Array.unsafe_get t.slots i in
    if id = -1 then begin
      let id = t.size in
      push_state t x;
      t.slots.(i) <- id;
      (* Keep the load factor below 1/2 so probe chains stay short. *)
      if 2 * t.size > t.mask then grow t;
      id
    end
    else if t.equal t.states.(id) x then id
    else probe ((i + 1) land t.mask)
  in
  probe (h land t.mask)

let structural () : ('a -> int) * ('a -> 'a -> bool) = (Hashtbl.hash, ( = ))
