(** The typed event vocabulary of the engine.

    The paper's dynamic processes are streams of remove/insert events
    against a live allocation state, so the engine speaks events: the rep
    loops ({!Sim.iterate}, {!Sim.first_hit}, ...) drive a machine with
    {!Step} events, while the serve layer ({!Serve.Cluster}) feeds it the
    mixed mutation/query traffic of a long-running service and journals
    the mutations for deterministic replay.

    Machines answer through {!Sim.apply}.  Events a machine does not
    support — [Insert] on a coupled pair, say — come back {!Rejected}
    rather than raising, so a server batch survives bad requests. *)

type t =
  | Step  (** One full process transition (remove + insert). *)
  | Round
      (** One synchronous round of a round-parallel process (every
          non-empty bin ejects one ball, ejected balls re-place): the
          unit transition of {!Rbb}-style machines, beside [Step] for
          the sequential ones.  Machines without a round semantics
          answer [Rejected]. *)
  | Insert of int
      (** Place one new ball per the machine's scheduling rule.  The
          payload is an opaque routing key (the serve layer shards on
          it); single machines ignore it. *)
  | Remove  (** Remove one ball per the machine's removal scenario. *)
  | Probe  (** Cheap scalar observable; never mutates. *)
  | Occupancy  (** Full per-bin load snapshot; never mutates. *)
  | Watermark  (** Highest probe level seen after any mutation. *)

type reply =
  | Ack  (** Mutation applied, no payload ([Step]). *)
  | Placed of int  (** [Insert]: the bin that received the ball. *)
  | Removed of int  (** [Remove]: the bin that lost the ball. *)
  | Level of int  (** [Probe] / [Watermark]. *)
  | Loads of int array  (** [Occupancy]. *)
  | Rejected of string
      (** Unsupported event for this machine, or a mutation against an
          empty state.  Rejected events consume no randomness and leave
          the state untouched, so they are replay-neutral. *)

val name : t -> string
(** Lower-case event name (also the wire protocol's ["op"] value). *)

val is_mutation : t -> bool
(** Whether the event advances machine state (and so belongs in a
    replay journal). *)

val reply_name : reply -> string
val reply_ok : reply -> bool
(** [false] exactly on [Rejected]. *)

val equal_reply : reply -> reply -> bool
