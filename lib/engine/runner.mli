(** Deterministic replication fan-out.

    One generic repetition runner for every measurement in the repo:
    generators are split from the root {e before} the fan-out over OCaml
    domains, so per-rep observations are bit-identical for any domain
    count; each repetition gets its own {!Metrics.t} (timed under the
    ["run"] phase) and the snapshots are merged after the join.
    {!Core.Recovery.measure}, {!Coupling.Coalescence.measure} and the
    bench experiments are built on this. *)

type 'r result = {
  observations : 'r array;  (** Per-rep results, in rep order. *)
  metrics : Metrics.snapshot;  (** Aggregate over all repetitions. *)
}

val run :
  ?domains:int ->
  rng:Prng.Rng.t ->
  reps:int ->
  (Prng.Rng.t -> Metrics.t -> 'r) ->
  'r result
(** [run ~rng ~reps f] evaluates [f] once per repetition on an
    independent generator split from [rng], fanning out over [domains]
    (default 1) OCaml domains via {!Parallel.map_array}.  [f] must not
    share mutable state across repetitions.
    @raise Invalid_argument if [reps <= 0]. *)

type measurement = {
  times : int array;  (** Hitting times of successful runs, in rep order. *)
  failures : int;  (** Runs that hit the limit. *)
  median : float;
  mean : float;
  q10 : float;
  q90 : float;
}
(** Aggregated first-hitting-time observations (coalescence times,
    recovery times, …).  Quantile fields are [nan] when every run
    failed. *)

val summarize : int option array -> measurement
(** Aggregate raw per-rep outcomes ([None] = hit the limit). *)

val measure :
  ?domains:int ->
  rng:Prng.Rng.t ->
  reps:int ->
  limit:int ->
  (Prng.Rng.t -> Metrics.t -> limit:int -> int option) ->
  measurement * Metrics.snapshot
(** [measure ~rng ~reps ~limit f] runs [f] per repetition (typically a
    {!Sim.first_hit} with the given [limit]) and {!summarize}s the
    outcomes, returning the aggregate metrics alongside.
    @raise Invalid_argument if [reps <= 0]. *)
