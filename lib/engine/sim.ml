(* A sim is an event-driven state machine over preallocated buffers: the
   primary interface is [apply : rng -> Event.t -> Event.reply], and the
   historical step/probe entry points are the [Step]/[Probe] projections
   of it.  [make] wraps the adapter's raw step exactly as before (step
   counter, watermark, sampled trace events), so the rep loops — now
   phrased as streams of [Step] events — are bit-identical to the
   pre-event engine. *)

type 'obs t = {
  step : Prng.Rng.t -> unit;  (* the wrapped [Step] transition *)
  extend : (Prng.Rng.t -> Event.t -> Event.reply) option;
  observe : unit -> 'obs;
  reset : 'obs -> unit;
  probe : unit -> int;
  metrics : Metrics.t;
}

(* Sampled trace events: every [sample_mask + 1]-th step of a traced
   run emits one "sim.step" span plus a point on the "sim.watermark"
   timeline and a histogram observation of the cheap observable.  The
   sampling test costs one extra branch on the Obs flag per step when
   tracing is off. *)
let sample_mask = 1023
let watermark_hist = Obs.Histogram.make "sim.watermark"

let traced_step metrics probe step g =
  let sp = Obs.begin_span "sim.step" in
  step g;
  Metrics.add_step metrics;
  let level = probe () in
  Metrics.watermark metrics level;
  Obs.end_span ~args:[ ("step", Obs.Int (Metrics.steps metrics)) ] sp;
  Obs.counter_sample "sim.watermark" level;
  Obs.Histogram.observe watermark_hist level

let make ?metrics ?(watermark = true) ?extend ~step ~observe ~reset ~probe () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let step =
    if watermark then (fun g ->
      if Obs.enabled () && Metrics.steps metrics land sample_mask = 0 then
        traced_step metrics probe step g
      else begin
        step g;
        Metrics.add_step metrics;
        Metrics.watermark metrics (probe ())
      end)
    else (fun g ->
      step g;
      Metrics.add_step metrics)
  in
  { step; extend; observe; reset; probe; metrics }

let metrics s = s.metrics

(* The state machine.  [Step]/[Probe]/[Watermark] are generic; the
   remaining vocabulary is machine-specific and goes through [extend]
   when the adapter provided one. *)
let apply s g ev =
  match ev with
  | Event.Step ->
      s.step g;
      Event.Ack
  | Event.Probe -> Event.Level (s.probe ())
  | Event.Watermark -> Event.Level (Metrics.watermark_level s.metrics)
  | Event.Round | Event.Insert _ | Event.Remove | Event.Occupancy -> (
      match s.extend with
      | Some handle -> handle g ev
      | None -> Event.Rejected (Event.name ev ^ " unsupported"))

let step s g = s.step g
let observe s = s.observe ()
let reset s obs = s.reset obs
let probe s = s.probe ()

(* The rep-loop drivers below are [Step]-event streams over [apply];
   [Step] replies are the immediate constructor [Ack], so the loops
   still allocate nothing. *)

let iterate s g t =
  if t < 0 then invalid_arg "Sim.iterate: negative step count";
  for _ = 1 to t do
    ignore (apply s g Event.Step)
  done

let fold s g t ~init ~f =
  if t < 0 then invalid_arg "Sim.fold: negative step count";
  let acc = ref init in
  for i = 1 to t do
    ignore (apply s g Event.Step);
    acc := f !acc i (s.probe ())
  done;
  !acc

let trajectory s g t =
  if t < 0 then invalid_arg "Sim.trajectory: negative step count";
  Array.init t (fun _ ->
      ignore (apply s g Event.Step);
      s.observe ())

let first_hit s g ~pred ~limit =
  if limit < 0 then invalid_arg "Sim.first_hit: negative limit";
  let rec go t =
    if pred (s.probe ()) then Some t
    else if t >= limit then None
    else begin
      ignore (apply s g Event.Step);
      go (t + 1)
    end
  in
  go 0

let sample_every s g ~burn_in ~every ~samples obs =
  if burn_in < 0 || every <= 0 || samples < 0 then
    invalid_arg "Sim.sample_every: bad parameters";
  iterate s g burn_in;
  let out = ref [] in
  for _ = 1 to samples do
    iterate s g every;
    out := obs () :: !out
  done;
  List.rev !out
