type 'obs t = {
  step : Prng.Rng.t -> unit;
  observe : unit -> 'obs;
  reset : 'obs -> unit;
  probe : unit -> int;
  metrics : Metrics.t;
}

(* Sampled trace events: every [sample_mask + 1]-th step of a traced
   run emits one "sim.step" span plus a point on the "sim.watermark"
   timeline and a histogram observation of the cheap observable.  The
   sampling test costs one extra branch on the Obs flag per step when
   tracing is off. *)
let sample_mask = 1023
let watermark_hist = Obs.Histogram.make "sim.watermark"

let traced_step metrics probe step g =
  let sp = Obs.begin_span "sim.step" in
  step g;
  Metrics.add_step metrics;
  let level = probe () in
  Metrics.watermark metrics level;
  Obs.end_span ~args:[ ("step", Obs.Int (Metrics.steps metrics)) ] sp;
  Obs.counter_sample "sim.watermark" level;
  Obs.Histogram.observe watermark_hist level

let make ?metrics ?(watermark = true) ~step ~observe ~reset ~probe () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let step =
    if watermark then (fun g ->
      if Obs.enabled () && Metrics.steps metrics land sample_mask = 0 then
        traced_step metrics probe step g
      else begin
        step g;
        Metrics.add_step metrics;
        Metrics.watermark metrics (probe ())
      end)
    else (fun g ->
      step g;
      Metrics.add_step metrics)
  in
  { step; observe; reset; probe; metrics }

let metrics s = s.metrics
let step s g = s.step g
let observe s = s.observe ()
let reset s obs = s.reset obs
let probe s = s.probe ()

let iterate s g t =
  if t < 0 then invalid_arg "Sim.iterate: negative step count";
  for _ = 1 to t do
    s.step g
  done

let fold s g t ~init ~f =
  if t < 0 then invalid_arg "Sim.fold: negative step count";
  let acc = ref init in
  for i = 1 to t do
    s.step g;
    acc := f !acc i (s.probe ())
  done;
  !acc

let trajectory s g t =
  if t < 0 then invalid_arg "Sim.trajectory: negative step count";
  Array.init t (fun _ ->
      s.step g;
      s.observe ())

let first_hit s g ~pred ~limit =
  if limit < 0 then invalid_arg "Sim.first_hit: negative limit";
  let rec go t =
    if pred (s.probe ()) then Some t
    else if t >= limit then None
    else begin
      s.step g;
      go (t + 1)
    end
  in
  go 0

let sample_every s g ~burn_in ~every ~samples obs =
  if burn_in < 0 || every <= 0 || samples < 0 then
    invalid_arg "Sim.sample_every: bad parameters";
  iterate s g burn_in;
  let out = ref [] in
  for _ = 1 to samples do
    iterate s g every;
    out := obs () :: !out
  done;
  List.rev !out
