type t = {
  mutable steps : int;
  mutable probes : int;
  mutable rng_draws : int;
  mutable watermark : int;
  phases : (string, float) Hashtbl.t;
}

type snapshot = {
  steps : int;
  probes : int;
  rng_draws : int;
  watermark : int;
  phases : (string * float) list;
}

let create () : t =
  {
    steps = 0;
    probes = 0;
    rng_draws = 0;
    watermark = min_int;
    phases = Hashtbl.create 4;
  }

let add_step (m : t) = m.steps <- m.steps + 1

let steps (m : t) = m.steps

(* Probes per insertion is one of the paper's headline distributions
   (ADAP vs ABKU[d]); every adapter report feeds the shared telemetry
   histogram when tracing is on. *)
let probes_hist = Obs.Histogram.make "engine.probes_per_insertion"

let add_probes (m : t) k =
  if k < 0 then invalid_arg "Metrics.add_probes: negative count";
  m.probes <- m.probes + k;
  Obs.Histogram.observe probes_hist k

let add_draws (m : t) k =
  if k < 0 then invalid_arg "Metrics.add_draws: negative count";
  m.rng_draws <- m.rng_draws + k

let watermark (m : t) level = if level > m.watermark then m.watermark <- level
let watermark_level (m : t) = m.watermark

let add_phase (m : t) name seconds =
  let prev = match Hashtbl.find_opt m.phases name with Some s -> s | None -> 0. in
  Hashtbl.replace m.phases name (prev +. seconds)

(* Phase timing rides on the obs primitives: the monotonic clock (an
   NTP adjustment under Unix.gettimeofday could record a negative or
   inflated duration; deltas are additionally clamped at zero), and a
   span of the same name so traced runs see every phase. *)
let time m name f =
  let sp = Obs.begin_span name in
  let t0 = Obs.Clock.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      add_phase m name (Obs.Clock.seconds_since t0);
      Obs.end_span sp)
    f

let reset (m : t) =
  m.steps <- 0;
  m.probes <- 0;
  m.rng_draws <- 0;
  m.watermark <- min_int;
  Hashtbl.reset m.phases

let snapshot (m : t) : snapshot =
  {
    steps = m.steps;
    probes = m.probes;
    rng_draws = m.rng_draws;
    watermark = m.watermark;
    phases =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.phases []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let zero =
  { steps = 0; probes = 0; rng_draws = 0; watermark = min_int; phases = [] }

let combine_phases op (a : (string * float) list) (b : (string * float) list) =
  let tbl = Hashtbl.create 4 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) a;
  List.iter
    (fun (k, v) ->
      let prev = match Hashtbl.find_opt tbl k with Some s -> s | None -> 0. in
      Hashtbl.replace tbl k (op prev v))
    b;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge (a : snapshot) (b : snapshot) =
  {
    steps = a.steps + b.steps;
    probes = a.probes + b.probes;
    rng_draws = a.rng_draws + b.rng_draws;
    watermark = Stdlib.max a.watermark b.watermark;
    phases = combine_phases ( +. ) a.phases b.phases;
  }

(* [diff before after]: counters accumulated between the two snapshots.
   The watermark is not differentiable; the later one is reported.
   Phase keys only in [before] are already fully elapsed — their delta
   is zero, which the clamp also guarantees (the historical argument
   order yielded before - after: the raw positive [before] value for
   such keys, and a negated delta for shared ones). *)
let diff (before : snapshot) (after : snapshot) =
  {
    steps = after.steps - before.steps;
    probes = after.probes - before.probes;
    rng_draws = after.rng_draws - before.rng_draws;
    watermark = after.watermark;
    phases =
      combine_phases
        (fun after_s before_s -> Float.max 0. (after_s -. before_s))
        after.phases before.phases;
  }

let run_seconds (s : snapshot) =
  match List.assoc_opt "run" s.phases with
  | Some t -> t
  | None -> List.fold_left (fun acc (_, t) -> acc +. t) 0. s.phases

let per f num den = if den = 0 then "-" else Printf.sprintf f (float_of_int num /. float_of_int den)

let to_table ?(title = "engine metrics") (s : snapshot) =
  let table = Stats.Table.create ~title ~columns:[ "counter"; "value" ] in
  let add name value = Stats.Table.add_row table [ name; value ] in
  add "steps" (string_of_int s.steps);
  add "probes" (string_of_int s.probes);
  add "probes/step" (per "%.3f" s.probes s.steps);
  add "rng draws" (string_of_int s.rng_draws);
  add "draws/step" (per "%.3f" s.rng_draws s.steps);
  add "max-load watermark"
    (if s.watermark = min_int then "-" else string_of_int s.watermark);
  List.iter (fun (name, t) -> add (name ^ " seconds") (Printf.sprintf "%.3f" t))
    s.phases;
  let secs = run_seconds s in
  if secs > 0. && s.steps > 0 then
    add "steps/sec" (Printf.sprintf "%.3e" (float_of_int s.steps /. secs));
  table

(* Environment handling is centralized in [Experiment.Config] (the
   [BENCH_METRICS] row of its variable table); the engine itself only
   holds the flag. *)
let dump_flag = ref false
let set_dump on = dump_flag := on
let dump_enabled () = !dump_flag

let dump ?(label = "engine metrics") s =
  if dump_enabled () then Stats.Table.print (to_table ~title:label s)
