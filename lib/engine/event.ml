(* The typed event vocabulary of the engine.

   A simulation step loop and a long-running allocation service are the
   same state machine driven differently: the rep loops feed it [Step]
   events as fast as possible, a server feeds it whatever mix of
   mutations and queries its clients produce.  Every process state
   machine in the repository answers this vocabulary through
   {!Sim.apply}; events a machine does not support come back
   [Rejected]. *)

type t =
  | Step  (* one full process transition (remove + insert) *)
  | Round  (* one synchronous round of a round-parallel process *)
  | Insert of int  (* place one new ball; the payload is a routing key *)
  | Remove  (* remove one ball per the machine's scenario *)
  | Probe  (* cheap scalar observable (max load, distance, ...) *)
  | Occupancy  (* full per-bin load snapshot *)
  | Watermark  (* highest probe level ever seen *)

type reply =
  | Ack  (* mutation applied, no payload *)
  | Placed of int  (* insert: the bin that received the ball *)
  | Removed of int  (* remove: the bin that lost the ball *)
  | Level of int  (* probe / watermark *)
  | Loads of int array  (* occupancy *)
  | Rejected of string  (* unsupported event or empty-state mutation *)

let name = function
  | Step -> "step"
  | Round -> "round"
  | Insert _ -> "insert"
  | Remove -> "remove"
  | Probe -> "probe"
  | Occupancy -> "occupancy"
  | Watermark -> "watermark"

(* Mutations advance the machine state and therefore belong in a replay
   journal; queries are pure reads. *)
let is_mutation = function
  | Step | Round | Insert _ | Remove -> true
  | Probe | Occupancy | Watermark -> false

let reply_name = function
  | Ack -> "ack"
  | Placed _ -> "placed"
  | Removed _ -> "removed"
  | Level _ -> "level"
  | Loads _ -> "loads"
  | Rejected _ -> "rejected"

let reply_ok = function Rejected _ -> false | _ -> true

let equal_reply a b =
  match (a, b) with
  | Ack, Ack -> true
  | Placed x, Placed y | Removed x, Removed y | Level x, Level y -> x = y
  | Loads x, Loads y -> x = y
  | Rejected x, Rejected y -> x = y
  | _ -> false
