type 'r result = { observations : 'r array; metrics : Metrics.snapshot }

let run ?(domains = 1) ~rng ~reps f =
  if reps <= 0 then invalid_arg "Runner.run: reps must be positive";
  (* Split all generators before the fan-out so the outcome does not
     depend on the domain count. *)
  let gens = Array.init reps (fun i -> (i, Prng.Rng.split rng)) in
  (* Each repetition records its trace under its own task track, so the
     merged trace is identical for any domain count. *)
  let base = if Obs.enabled () then Obs.task_base ~count:reps else 0 in
  let outs =
    Parallel.map_array ~domains
      (fun (i, g) ->
        Obs.in_task (base + i) (fun () ->
            Obs.with_span "runner.rep" (fun () ->
                let m = Metrics.create () in
                let r = Metrics.time m "run" (fun () -> f g m) in
                (r, Metrics.snapshot m))))
      gens
  in
  {
    observations = Array.map fst outs;
    metrics =
      Array.fold_left (fun acc (_, s) -> Metrics.merge acc s) Metrics.zero outs;
  }

type measurement = {
  times : int array;
  failures : int;
  median : float;
  mean : float;
  q10 : float;
  q90 : float;
}

(* First-hitting times (coalescence, recovery) are the paper's central
   distributions; aggregate them in a telemetry histogram when tracing
   is on. *)
let hit_hist = Obs.Histogram.make "runner.first_hit_steps"

let summarize outcomes =
  let times = ref [] in
  let failures = ref 0 in
  Array.iter
    (function
      | Some t ->
          times := t :: !times;
          Obs.Histogram.observe hit_hist t
      | None -> incr failures)
    outcomes;
  let times = Array.of_list (List.rev !times) in
  if Array.length times = 0 then
    { times; failures = !failures; median = nan; mean = nan; q10 = nan; q90 = nan }
  else begin
    let xs = Stats.Quantile.of_ints times in
    let s = Stats.Summary.create () in
    Array.iter (Stats.Summary.add s) xs;
    {
      times;
      failures = !failures;
      median = Stats.Quantile.median xs;
      mean = Stats.Summary.mean s;
      q10 = Stats.Quantile.quantile xs 0.1;
      q90 = Stats.Quantile.quantile xs 0.9;
    }
  end

let measure ?domains ~rng ~reps ~limit f =
  let r = run ?domains ~rng ~reps (fun g m -> f g m ~limit) in
  (summarize r.observations, r.metrics)
