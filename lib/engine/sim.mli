(** Event-driven in-place state machines.

    A sim is a process whose state lives in preallocated buffers owned
    by the adapter that built it.  Its primary interface is {!apply}: a
    state machine consuming the typed vocabulary of {!Event} — [Step]
    mutates that state without allocating, [Probe] reads a cheap scalar
    observable of it (the maximum load for allocation processes, the
    coupling distance for coupled pairs, the unfairness for edge
    orientations), [Watermark] reads the highest probe level seen, and
    machines built with an [extend] handler (allocation systems) also
    answer [Insert]/[Remove]/[Occupancy].  {!observe} snapshots the full
    state as an immutable value and {!reset} restores a snapshot — so
    one sim can be reused across repetitions.

    Every process in the repository exposes a [sim] constructor
    returning this type ({!Core.Dynamic_process.sim}, {!Core.System.sim},
    {!Core.Open_process.sim}, {!Coupling.Coupled_chain.sim},
    {!Edgeorient.Orientation.sim}, …).  The rep-loop drivers below are
    [Step]-event streams over {!apply} — bit-identical to the historical
    step loops.  They are the only driver loops in the repository:
    {!Markov.Chain} is now just the functional one-step view for
    exact-analysis-style immutable states.  The serve
    layer ({!Serve}) drives the same machines with the full vocabulary
    behind a socket front end. *)

type 'obs t

val make :
  ?metrics:Metrics.t ->
  ?watermark:bool ->
  ?extend:(Prng.Rng.t -> Event.t -> Event.reply) ->
  step:(Prng.Rng.t -> unit) ->
  observe:(unit -> 'obs) ->
  reset:('obs -> unit) ->
  probe:(unit -> int) ->
  unit ->
  'obs t
(** Wraps [step] so that the step counter — and, unless
    [watermark = false], the {!probe} watermark — are maintained
    automatically.  Adapters whose probe is not O(1) pass
    [~watermark:false].  A fresh {!Metrics.t} is created when none is
    given.

    [extend] handles the machine-specific events ([Insert], [Remove],
    [Occupancy]); without it {!apply} answers them [Rejected].  An
    [extend] handler is responsible for its own metrics (probes, draws,
    watermark) — the automatic maintenance above covers only [Step]. *)

val apply : 'obs t -> Prng.Rng.t -> Event.t -> Event.reply
(** The state machine: one event in, one reply out.  [Step] replies
    [Ack] without allocating; [Probe]/[Watermark] reply [Level]. *)

val metrics : _ t -> Metrics.t
val step : _ t -> Prng.Rng.t -> unit
(** [step s g] = [apply s g Event.Step], historical spelling. *)

val observe : 'obs t -> 'obs
val reset : 'obs t -> 'obs -> unit
val probe : _ t -> int

val iterate : _ t -> Prng.Rng.t -> int -> unit
(** [iterate s g t] applies [t] [Step] events in place.
    @raise Invalid_argument if [t < 0]. *)

val fold :
  _ t -> Prng.Rng.t -> int -> init:'acc -> f:('acc -> int -> int -> 'acc) -> 'acc
(** [fold s g t ~init ~f] applies [t] [Step] events, folding
    [f acc step_index probe_value] over the probe {e after} each step.
    Allocation-free when [f] is. *)

val trajectory : 'obs t -> Prng.Rng.t -> int -> 'obs array
(** Observations after steps 1..t (length [t]). *)

val first_hit : _ t -> Prng.Rng.t -> pred:(int -> bool) -> limit:int -> int option
(** [first_hit s g ~pred ~limit] is [Some t] for the smallest
    [0 <= t <= limit] such that the probe after [t] steps satisfies
    [pred] ([t = 0] checks the initial state), [None] if the predicate
    never holds within [limit] steps.
    @raise Invalid_argument if [limit < 0]. *)

val sample_every :
  _ t -> Prng.Rng.t -> burn_in:int -> every:int -> samples:int ->
  (unit -> 'a) -> 'a list
(** [sample_every s g ~burn_in ~every ~samples obs] runs [burn_in]
    steps, then records [obs ()] every [every] steps until [samples]
    observations are collected.  [obs] closes over the sim (typically
    {!probe} or an adapter-specific accessor). *)
