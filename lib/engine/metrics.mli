(** Always-on simulation counters.

    Every {!Sim.t} owns a value of this type; adapters thread the cheap
    counters (steps, probes, RNG draws, max-load watermark) through their
    step functions, and {!Runner} accumulates wall-clock per phase, so
    that any measurement can report probes/step and steps/sec next to its
    table.

    A [t] is a single-domain accumulator: it must not be shared across
    domains.  {!Runner} gives every repetition its own and {!merge}s the
    resulting {!snapshot}s after the join, which keeps parallel runs
    deterministic (timing phases excepted — wall-clock is inherently
    noisy; all integer counters are bit-stable). *)

type t
(** Mutable accumulator. *)

type snapshot = {
  steps : int;  (** Transitions taken. *)
  probes : int;  (** Insertion probes issued (where the adapter reports them). *)
  rng_draws : int;
      (** Primitive generator draws, as reported by the adapters (a close
          lower bound: rejection sampling inside {!Prng.Rng} is not
          visible to them). *)
  watermark : int;
      (** Highest value of the sim's cheap observable seen after any step
          (the max-load watermark for allocation processes); [min_int]
          when never observed. *)
  phases : (string * float) list;
      (** Accumulated wall-clock seconds per named phase, sorted by
          name. *)
}

val create : unit -> t
val reset : t -> unit

val add_step : t -> unit
(** Count one transition.  {!Sim.make} calls this; adapters normally do
    not. *)

val steps : t -> int
(** Transitions counted so far (cheap; {!Sim} uses it to sample trace
    events without snapshotting). *)

val add_probes : t -> int -> unit
(** Also feeds the ["engine.probes_per_insertion"] telemetry histogram
    when {!Obs.enabled}.
    @raise Invalid_argument on a negative count. *)

val add_draws : t -> int -> unit
(** @raise Invalid_argument on a negative count. *)

val watermark : t -> int -> unit
(** Raise the watermark to the given level if it exceeds the current
    one. *)

val watermark_level : t -> int
(** Current watermark ([min_int] when never observed); cheap — the
    [Watermark] query of {!Sim.apply} reads it per event. *)

val add_phase : t -> string -> float -> unit
(** Add seconds to a named phase directly. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time m phase f] runs [f] and adds its duration to [phase] (also on
    exception).  Durations come from the monotonic {!Obs.Clock} and are
    clamped at zero; when tracing is enabled the phase is also recorded
    as an {!Obs} span of the same name. *)

val snapshot : t -> snapshot

val zero : snapshot
(** The empty snapshot: identity for {!merge}. *)

val merge : snapshot -> snapshot -> snapshot
(** Component-wise sum (max for the watermark, per-phase sum for the
    timers) — aggregation across repetitions. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff before after]: what accumulated between the two snapshots.
    The watermark is not differentiable; [after]'s is reported.
    Per-phase deltas are clamped at zero; a phase key present only in
    [before] is already elapsed and contributes zero. *)

val to_table : ?title:string -> snapshot -> Stats.Table.t
(** Counters plus the derived probes/step, draws/step and steps/sec rows
    (the latter from the ["run"] phase when present, else the phase
    total). *)

val set_dump : bool -> unit
(** Turn counter-table dumping on or off.  The experiment harness sets
    this from the [BENCH_METRICS] row of [Experiment.Config]'s
    environment table; the engine reads no environment itself. *)

val dump_enabled : unit -> bool
(** Whether {!dump} prints (default [false]; see {!set_dump}). *)

val dump : ?label:string -> snapshot -> unit
(** Print {!to_table} to stdout when {!dump_enabled}; otherwise free. *)
