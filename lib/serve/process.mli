(** The process family a cluster's shards host.

    [Sequential] shards run the paper's remove-then-insert
    {!Core.System} machine ([Step]/[Insert]/[Remove]); [Rbb] shards run
    the round-synchronous repeated balls-into-bins machine of
    {!Rbb.service_sim} ([Round]/[Insert] — rounds conserve balls, so
    there is no removal law).  The family is part of the durability
    fingerprint ({!Serve.Journal}): journals do not replay across
    families. *)

type t = Sequential | Rbb

val all : t list
val name : t -> string
(** ["seq"] or ["rbb"]. *)

val of_string : string -> (t, string) result
val help : string
