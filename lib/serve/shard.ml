(* One shard of the allocation service: a contiguous range of the
   global bin space, owned by an event machine over a private
   {!Core.Bins} store plus the shard's private generator.  The machine
   is a {!Core.System} (sequential family) or an {!Rbb.service_sim}
   (round-synchronous family); either way the shard is driven
   exclusively through [Engine.Sim.apply] — the same state machine the
   rep loops step — so a shard's evolution is a pure function of the
   event sequence it is handed, which is what makes journal replay
   exact. *)

type t = {
  id : int;
  lo : int;  (* first global bin id owned *)
  width : int;  (* number of bins owned *)
  store : Core.Bins.t;
  machine : int array Engine.Sim.t;
  rng : Prng.Rng.t;
  mutable applied : int;  (* mutations applied (all accepted) *)
}

let machine_for ~process ~scenario ~rule ~repr store =
  match process with
  | Process.Sequential ->
      Core.System.sim (Core.System.create ~repr scenario rule store)
  | Process.Rbb -> (
      match Rbb.of_scheduling_rule rule with
      | Ok r -> Rbb.service_sim (Rbb.make r ~n:(Core.Bins.n store)) store
      | Error e -> invalid_arg ("Serve.Shard: " ^ e))

let create ~id ~lo ~process ~scenario ~rule ~repr ~loads ~rng =
  if Array.length loads = 0 then invalid_arg "Serve.Shard.create: no bins";
  let balls = Array.fold_left ( + ) 0 loads in
  if balls = 0 then
    invalid_arg
      (Printf.sprintf
         "Serve.Shard.create: shard %d starts empty — every shard needs at \
          least one initial ball (raise m or lower the shard count)"
         id);
  let store = Core.Bins.of_loads loads in
  let machine = machine_for ~process ~scenario ~rule ~repr store in
  (* Seed the watermark with the initial maximum so [Watermark] covers
     the whole service history, not just post-boot mutations. *)
  Engine.Metrics.watermark
    (Engine.Sim.metrics machine)
    (Core.Bins.max_load store);
  { id; lo; width = Array.length loads; store; machine; rng; applied = 0 }

let id t = t.id
let lo t = t.lo
let bin_count t = t.width
let balls t = Core.Bins.num_balls t.store
let max_load t = Core.Bins.max_load t.store
let loads t = Core.Bins.loads t.store
let applied t = t.applied

let watermark t =
  Engine.Metrics.watermark_level (Engine.Sim.metrics t.machine)

let metrics t = Engine.Sim.metrics t.machine

(* The [Step] guard mirrors the machine's [Remove] guard: a composite
   transition against an empty shard is rejected (consuming no
   randomness) instead of raising out of the batch.  [Round] needs no
   guard — a round over an empty shard ejects nothing and draws
   nothing. *)
let apply t ev =
  match ev with
  | Engine.Event.Step when balls t = 0 -> Engine.Event.Rejected "empty"
  | ev ->
      let reply = Engine.Sim.apply t.machine t.rng ev in
      if Engine.Event.is_mutation ev && Engine.Event.reply_ok reply then
        t.applied <- t.applied + 1;
      reply

(* {2 Snapshot state} *)

type state = {
  applied : int;
  watermark : int;
  rng : int64 array;
  bins : Core.Bins.snapshot;
}

let state (t : t) : state =
  { applied = t.applied; watermark = watermark t; rng = Prng.Rng.save t.rng;
    bins = Core.Bins.snapshot t.store }

(* The state carries the full {!Core.Bins} registry snapshot — loads
   alone would not replay bit-identically, because both removal
   scenarios sample internal registry orders.  [Core.System.create]
   refuses empty systems, but a sequential shard may have been
   legitimately drained to zero balls by snapshot time: boot those with
   one phantom ball and clear it (an empty registry has no order to
   lose).  The round-synchronous machine has no such refusal (rounds
   conserve balls), so it boots directly. *)
let of_state ~id ~lo ~process ~scenario ~rule ~repr (st : state) =
  let store = Core.Bins.of_snapshot st.bins in
  let n = Core.Bins.n store in
  let drained =
    process = Process.Sequential && Core.Bins.num_balls store = 0
  in
  (* Give the phantom to the bin at the TAIL of the level-0 bucket:
     moving that one out and back is a push-pop on both buckets, so the
     add/reset pair below leaves every recorded bucket order intact
     (bucket order is replayable state for sampled insertion). *)
  if drained then begin
    let l0 = st.bins.Core.Bins.sn_levels.(0) in
    Core.Bins.add_ball store l0.(Array.length l0 - 1)
  end;
  let machine = machine_for ~process ~scenario ~rule ~repr store in
  if drained then Core.Bins.reset_loads store (Array.make n 0);
  assert ((not drained) || Core.Bins.snapshot store = st.bins);
  Engine.Metrics.watermark (Engine.Sim.metrics machine) st.watermark;
  {
    id;
    lo;
    width = n;
    store;
    machine;
    rng = Prng.Rng.restore st.rng;
    applied = st.applied;
  }
