(** Pipelined load driver and one-shot query client for the serve
    daemon. *)

type mix = { insert_pct : int; remove_pct : int; probe_pct : int }
(** Traffic mix in percent; must sum to 100. *)

val default_mix : mix
(** 45 / 45 / 10 insert / remove / probe. *)

type result = {
  ops : int;
  errors : int;  (** Replies with [ok:false] (rejections included). *)
  seconds : float;
  ops_per_sec : float;
  latency : Obs.Hist.snapshot;
      (** Client-observed round-trip nanoseconds per reply, measured
          from the batch write — includes pipeline queueing, so it is
          the end-to-end number a real client would see
          ({!Obs.Hist.percentiles} extracts p50/p90/p99/p999). *)
}

val run :
  connect:Wire.address ->
  ?ops:int ->
  ?batch:int ->
  ?mix:mix ->
  ?seed:int ->
  unit ->
  (result, string) Stdlib.result
(** Drive [ops] seeded pseudo-random requests in pipelined batches of
    [batch] lines, reading the matching replies between writes.
    @raise Invalid_argument on a bad mix, [ops <= 0] or [batch <= 0]. *)

val query :
  connect:Wire.address -> string list -> (string list, string) Stdlib.result
(** Send raw request lines one at a time; returns the reply lines in
    order.  The kill-and-restore smoke diffs these. *)
