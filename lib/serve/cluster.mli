(** A cluster of shards behind one deterministic router.

    The cluster partitions the [n] global bins into contiguous shards
    (sizes differing by at most one), each a {!Serve.Shard} with its own
    generator, and routes mutations sequentially in arrival order:

    - [Insert key] — stateless splitmix hash of [key] mod shards;
    - [Remove] / [Step] — a shard drawn from the {e router's} generator
      with probability proportional to its tracked ball count (exact for
      the global scenario-A removal law; an approximation for B);
    - [Round] (round-synchronous clusters only) — a {e broadcast}: every
      shard advances one synchronous round, ordered in its queue
      relative to the inserts around it; the router draws nothing
      (rounds conserve balls);
    - queries ([Probe]/[Occupancy]/[Watermark]) are {e barriers}: all
      queued mutations are flushed (in parallel across shards when a
      {!Parallel.Pool} is attached) before the query is answered
      globally.

    Because routing is sequential and per-shard application preserves
    arrival order, the state after [N] events does not depend on how the
    caller batches them — the invariance {!Serve.Store} and the replay
    tests rely on. *)

type config = {
  n : int;  (** Global bins. *)
  m : int;  (** Initial balls, spread near-uniformly ([m >= n] keeps every shard non-empty). *)
  shards : int;
  process : Process.t;
      (** Which machine the shards host: [Sequential] answers
          [Step]/[Remove] and rejects [Round]; [Rbb] answers [Round]
          (and [Insert]) and rejects [Step]/[Remove] — the
          round-synchronous family conserves balls.  An [Rbb] cluster
          requires an ABKU rule ({!Rbb.of_scheduling_rule}). *)
  scenario : Core.Scenario.t;
  rule : Core.Scheduling_rule.t;
  repr : Core.Repr.t;
      (** Representation backend for the shards' insertion machinery.
          [Count_sampled] with an ABKU rule switches every shard to
          cutoff-table insertion (see {!Core.Bins.insert_sampled});
          [Array_backed] and [Count_backed] are identical here, since
          {!Core.Bins} is already count-indexed.  Part of the durability
          fingerprint: snapshots and journals record it. *)
  seed : int;
}

type t

val create : ?pool:Parallel.Pool.t -> config -> t
(** @raise Invalid_argument on a non-positive [n] or [shards], [shards >
    n], or an initial placement that leaves some shard without a ball. *)

val config : t -> config

val seq : t -> int
(** Mutation events routed since creation (counting rejected ones —
    this is the journal sequence number). *)

val shard_count : t -> int
val total_balls : t -> int
val shard : t -> int -> Shard.t

val set_telemetry : t -> Telemetry.t -> unit
(** Attach a telemetry bank: route and shard-apply stages (and drain
    depth/duration per shard) are timed into it from then on.  Without
    one the hot path performs no clock reads. *)

val queue_depths : t -> int array
(** Pending (queued, unflushed) events per shard — zero at batch
    boundaries, non-zero only observed mid-batch. *)

val max_load : t -> int
val watermark : t -> int

val loads : t -> int array
(** Global per-bin loads (shard snapshots concatenated in bin order). *)

val apply_batch : t -> Engine.Event.t array -> Engine.Event.reply array
(** Apply a batch in arrival order; [replies.(i)] answers [events.(i)].
    [Placed]/[Removed] bin ids are global.  A [Remove]/[Step] against an
    empty cluster is [Rejected "empty"] and consumes no randomness; so
    are the family mismatches ([Round] on a sequential cluster,
    [Step]/[Remove] on a round-synchronous one). *)

val apply : t -> Engine.Event.t -> Engine.Event.reply
(** [apply t ev] is [apply_batch t [|ev|]].(0). *)

(** {2 Snapshot state} *)

type state = {
  seq : int;
  router : int64 array;  (** {!Prng.Rng.save} words of the router. *)
  counts : int array;  (** Router-tracked balls per shard. *)
  shards : Shard.state array;
}

val state : t -> state
(** @raise Invalid_argument if called with queued (unflushed) mutations
    — only batch boundaries are snapshot points. *)

val of_state : ?pool:Parallel.Pool.t -> config -> state -> t
(** Rebuild a cluster that replays bit-identically to the one
    {!state} was taken from.
    @raise Invalid_argument on a config/state mismatch. *)
