(** One shard of the allocation service.

    A shard owns a contiguous range of the global bin space as a private
    event machine over {!Core.Bins} plus its own generator — a
    {!Core.System} for the sequential family, an {!Rbb.service_sim} for
    the round-synchronous one — and is driven exclusively through
    {!Engine.Sim.apply}.  Bin ids in its replies are {e shard-local};
    {!Serve.Cluster} translates them by the shard's {!lo} offset. *)

type t

val create :
  id:int ->
  lo:int ->
  process:Process.t ->
  scenario:Core.Scenario.t ->
  rule:Core.Scheduling_rule.t ->
  repr:Core.Repr.t ->
  loads:int array ->
  rng:Prng.Rng.t ->
  t
(** [process] selects the hosted machine; [scenario]/[repr] configure
    the sequential one (see {!Core.System.create}) and are ignored by
    the round-synchronous machine, whose [rule] must be ABKU
    ({!Rbb.of_scheduling_rule}).
    @raise Invalid_argument when [loads] is empty or holds no balls
    (every shard must start with at least one ball, because the
    underlying {!Core.System} forbids empty systems), or when [process]
    is [Rbb] and [rule] has no round-synchronous form. *)

val id : t -> int

val lo : t -> int
(** First global bin id owned by this shard. *)

val bin_count : t -> int
val balls : t -> int
val max_load : t -> int
val watermark : t -> int
val loads : t -> int array

val applied : t -> int
(** Accepted mutations applied since creation (restored by snapshots). *)

val metrics : t -> Engine.Metrics.t

val apply : t -> Engine.Event.t -> Engine.Event.reply
(** Apply one event with the shard's own generator.  [Step] against an
    empty shard is [Rejected "empty"] (consuming no randomness), like
    the machine's own [Remove] guard; everything else is
    {!Engine.Sim.apply} on the shard's machine.  [Round] needs no
    guard: a round over an empty shard ejects nothing and draws
    nothing. *)

(** {2 Snapshot state}

    The full mutable state as plain data — what {!Serve.Journal}
    serializes.  Restoring from [state] and replaying the same event
    suffix reproduces the shard bit-identically: the generator words
    capture the exact stream position and the registry snapshot the
    exact sampling orders. *)

type state = {
  applied : int;
  watermark : int;
  rng : int64 array;  (** {!Prng.Rng.save} words. *)
  bins : Core.Bins.snapshot;
      (** The {e full} registry snapshot — loads alone would not replay
          identically, because removals sample internal registry
          orders. *)
}

val state : t -> state

val of_state :
  id:int ->
  lo:int ->
  process:Process.t ->
  scenario:Core.Scenario.t ->
  rule:Core.Scheduling_rule.t ->
  repr:Core.Repr.t ->
  state ->
  t
(** Accepts a drained state (zero balls) even though {!create} refuses
    one — a shard can be emptied legitimately after boot, and its
    snapshot must restore.
    @raise Invalid_argument on an empty or malformed state. *)
