(* Which process family a cluster's shards host.  Sequential is the
   paper's remove-then-insert machine driven by [Step]; Rbb is the
   round-synchronous repeated balls-into-bins machine driven by
   [Round].  Part of the durability fingerprint: a journal written by
   one family must not replay into the other. *)

type t = Sequential | Rbb

let all = [ Sequential; Rbb ]

let name = function Sequential -> "seq" | Rbb -> "rbb"

let of_string = function
  | "seq" | "sequential" -> Ok Sequential
  | "rbb" -> Ok Rbb
  | s ->
      Error
        (Printf.sprintf "unknown process family %S (expected one of: %s)" s
           (String.concat ", " (List.map name all)))

let help = "seq | rbb"
