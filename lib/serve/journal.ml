(* Durability for the allocation service: a snapshot file plus an
   append-only event journal.

   Snapshot schema "repro.serve-snapshot/4" (integers int64 LE,
   strings length-prefixed):

     magic[23] = "repro.serve-snapshot/4\n"
     fingerprint            — n, m, shards, seed, process, scenario,
                              rule, repr
     seq                    — mutations routed when the snapshot was cut
     router[5]              — router generator words
     counts[shards]         — router ball accounting
     per shard: applied, watermark, rng[5],
                registry (n, balls[...], slot_order[...], nonempty[...],
                          levels: count then one int array per load level)

   Schema /2 replaced the per-shard load vector with the full
   {!Core.Bins} registry snapshot: loads alone do not replay
   bit-identically because removals sample registry orders.  Schema /3
   added the representation backend to the fingerprint and the
   per-level bucket orders to the registry: sampled insertion picks
   uniformly inside a bucket, so bucket order is replayable state too.
   Schema /4 added the process family (sequential vs round-synchronous)
   to the fingerprint: the same event suffix means different things to
   different machines.

   Journal schema "repro.serve-journal/3" (bumped alongside /4 for the
   fingerprint's process field and the round record): the same
   fingerprint header, then records

     [seq i64][count i64][count x event][trailer "JRNL"]
     event = tag u8: 0 = Step | 1 = Insert key:i64 | 2 = Remove
             | 3 = Round

   The trailer is written last, so a record is valid iff its trailer is
   intact: a kill mid-append leaves a torn tail that the reader (and
   [Writer.open_append], which truncates it) detects and drops.  The
   snapshot is written to a temporary sibling and renamed into place.
   Records carry every routed mutation — including ones the router
   later rejected, which consume no randomness — so replay from a
   snapshot cut at a record boundary is exactly: apply each record with
   [record.seq >= snapshot.seq]. *)

let snapshot_magic = "repro.serve-snapshot/4\n"
let journal_magic = "repro.serve-journal/3\n"
let trailer = "JRNL"

type fingerprint = {
  n : int;
  m : int;
  shards : int;
  seed : int;
  process : string;
  scenario : string;
  rule : string;
  repr : string;
}

let fingerprint_of_config (c : Cluster.config) =
  { n = c.n; m = c.m; shards = c.shards; seed = c.seed;
    process = Process.name c.process;
    scenario = Core.Scenario.name c.scenario;
    rule = Core.Scheduling_rule.name c.rule;
    repr = Core.Repr.name c.repr }

let fingerprint_to_string fp =
  Printf.sprintf
    "n=%d m=%d shards=%d seed=%d process=%s scenario=%s rule=%s repr=%s" fp.n
    fp.m fp.shards fp.seed fp.process fp.scenario fp.rule fp.repr

(* {2 Encoding} *)

let put_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
let put_word buf w = Buffer.add_int64_le buf w

let put_str buf s =
  put_i64 buf (String.length s);
  Buffer.add_string buf s

let put_words buf a =
  put_i64 buf (Array.length a);
  Array.iter (put_word buf) a

let put_ints buf a =
  put_i64 buf (Array.length a);
  Array.iter (put_i64 buf) a

let put_fingerprint buf fp =
  put_i64 buf fp.n;
  put_i64 buf fp.m;
  put_i64 buf fp.shards;
  put_i64 buf fp.seed;
  put_str buf fp.process;
  put_str buf fp.scenario;
  put_str buf fp.rule;
  put_str buf fp.repr

exception Corrupt

(* A little cursor over raw bytes; raises [Corrupt] past the end, which
   both readers turn into "stop cleanly". *)
type cursor = { bytes : Bytes.t; mutable pos : int }

let need c n = if c.pos + n > Bytes.length c.bytes then raise Corrupt

let get_i64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.bytes c.pos) in
  c.pos <- c.pos + 8;
  v

let get_word c =
  need c 8;
  let v = Bytes.get_int64_le c.bytes c.pos in
  c.pos <- c.pos + 8;
  v

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.bytes c.pos) in
  c.pos <- c.pos + 1;
  v

let get_str c =
  let n = get_i64 c in
  if n < 0 || n > Bytes.length c.bytes - c.pos then raise Corrupt;
  let s = Bytes.sub_string c.bytes c.pos n in
  c.pos <- c.pos + n;
  s

let get_words c =
  let n = get_i64 c in
  if n < 0 || n > (Bytes.length c.bytes - c.pos) / 8 then raise Corrupt;
  Array.init n (fun _ -> get_word c)

let get_ints c =
  let n = get_i64 c in
  if n < 0 || n > (Bytes.length c.bytes - c.pos) / 8 then raise Corrupt;
  Array.init n (fun _ -> get_i64 c)

let get_magic c magic =
  let k = String.length magic in
  need c k;
  if Bytes.sub_string c.bytes c.pos k <> magic then raise Corrupt;
  c.pos <- c.pos + k

let get_fingerprint c =
  let n = get_i64 c in
  let m = get_i64 c in
  let shards = get_i64 c in
  let seed = get_i64 c in
  let process = get_str c in
  let scenario = get_str c in
  let rule = get_str c in
  let repr = get_str c in
  { n; m; shards; seed; process; scenario; rule; repr }

let read_all path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ch ->
      let r =
        match really_input_string ch (in_channel_length ch) with
        | exception End_of_file -> None
        | raw -> Some (Bytes.unsafe_of_string raw)
      in
      close_in_noerr ch;
      r

(* {2 Snapshots} *)

let save_snapshot ~path fp (st : Cluster.state) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf snapshot_magic;
  put_fingerprint buf fp;
  put_i64 buf st.seq;
  put_words buf st.router;
  put_ints buf st.counts;
  put_i64 buf (Array.length st.shards);
  Array.iter
    (fun (sh : Shard.state) ->
      put_i64 buf sh.applied;
      put_i64 buf sh.watermark;
      put_words buf sh.rng;
      put_i64 buf sh.bins.Core.Bins.sn_n;
      put_ints buf sh.bins.Core.Bins.sn_balls;
      put_ints buf sh.bins.Core.Bins.sn_slot_order;
      put_ints buf sh.bins.Core.Bins.sn_nonempty;
      put_i64 buf (Array.length sh.bins.Core.Bins.sn_levels);
      Array.iter (put_ints buf) sh.bins.Core.Bins.sn_levels)
    st.shards;
  let tmp = path ^ ".tmp" in
  let ch = open_out_bin tmp in
  Buffer.output_buffer ch buf;
  close_out ch;
  Sys.rename tmp path

let load_snapshot ~path =
  match read_all path with
  | None -> None
  | Some bytes -> (
      let c = { bytes; pos = 0 } in
      try
        get_magic c snapshot_magic;
        let fp = get_fingerprint c in
        let seq = get_i64 c in
        let router = get_words c in
        let counts = get_ints c in
        let k = get_i64 c in
        if k < 0 || k > Bytes.length bytes then raise Corrupt;
        let shards =
          Array.init k (fun _ ->
              let applied = get_i64 c in
              let watermark = get_i64 c in
              let rng = get_words c in
              let sn_n = get_i64 c in
              let sn_balls = get_ints c in
              let sn_slot_order = get_ints c in
              let sn_nonempty = get_ints c in
              let nl = get_i64 c in
              if nl < 0 || nl > Bytes.length bytes - c.pos then raise Corrupt;
              let sn_levels = Array.init nl (fun _ -> get_ints c) in
              {
                Shard.applied;
                watermark;
                rng;
                bins =
                  {
                    Core.Bins.sn_n;
                    sn_balls;
                    sn_slot_order;
                    sn_nonempty;
                    sn_levels;
                  };
              })
        in
        if c.pos <> Bytes.length bytes then raise Corrupt;
        Some (fp, { Cluster.seq; router; counts; shards })
      with Corrupt -> None)

(* {2 Journal records} *)

let encode_record buf ~seq events =
  put_i64 buf seq;
  put_i64 buf (Array.length events);
  Array.iter
    (fun ev ->
      match ev with
      | Engine.Event.Step -> Buffer.add_char buf '\000'
      | Engine.Event.Insert key ->
          Buffer.add_char buf '\001';
          put_i64 buf key
      | Engine.Event.Remove -> Buffer.add_char buf '\002'
      | Engine.Event.Round -> Buffer.add_char buf '\003'
      | ev ->
          invalid_arg
            ("Serve.Journal: cannot journal non-mutation " ^ Engine.Event.name ev))
    events;
  Buffer.add_string buf trailer

(* Parse records from [c], calling [f] per valid record; returns the
   byte offset just past the last valid record (the truncation point
   for a torn tail). *)
let scan_records c f =
  let valid_end = ref c.pos in
  (try
     while c.pos < Bytes.length c.bytes do
       let seq = get_i64 c in
       let count = get_i64 c in
       if count < 0 || count > Bytes.length c.bytes - c.pos then raise Corrupt;
       let events =
         Array.init count (fun _ ->
             match get_u8 c with
             | 0 -> Engine.Event.Step
             | 1 -> Engine.Event.Insert (get_i64 c)
             | 2 -> Engine.Event.Remove
             | 3 -> Engine.Event.Round
             | _ -> raise Corrupt)
       in
       let k = String.length trailer in
       need c k;
       if Bytes.sub_string c.bytes c.pos k <> trailer then raise Corrupt;
       c.pos <- c.pos + k;
       valid_end := c.pos;
       f ~seq events
     done
   with Corrupt -> ());
  !valid_end

let read_fingerprint ~path =
  match read_all path with
  | None -> None
  | Some bytes -> (
      let c = { bytes; pos = 0 } in
      try
        get_magic c journal_magic;
        Some (get_fingerprint c)
      with Corrupt -> None)

let fold ~path ~init ~f =
  match read_all path with
  | None -> init
  | Some bytes -> (
      let c = { bytes; pos = 0 } in
      try
        get_magic c journal_magic;
        ignore (get_fingerprint c);
        let acc = ref init in
        ignore (scan_records c (fun ~seq events -> acc := f !acc ~seq events));
        !acc
      with Corrupt -> init)

(* {2 Writer} *)

module Writer = struct
  type t = {
    ch : out_channel;
    buf : Buffer.t;
    (* Durability gauges for the stats report: when the journal last
       reached the OS ([flush]) and the disk ([sync]). *)
    mutable last_flush_ns : int64;
    mutable last_sync_ns : int64 option;
  }

  let header fp =
    let buf = Buffer.create 256 in
    Buffer.add_string buf journal_magic;
    put_fingerprint buf fp;
    buf

  let create ~path fp =
    let ch = open_out_bin path in
    Buffer.output_buffer ch (header fp);
    flush ch;
    { ch; buf = Buffer.create 4096;
      last_flush_ns = Obs.Clock.now_ns (); last_sync_ns = None }

  let open_append ~path fp =
    match read_all path with
    | None -> create ~path fp
    | Some bytes ->
        let c = { bytes; pos = 0 } in
        let ok_header =
          try
            get_magic c journal_magic;
            let on_disk = get_fingerprint c in
            if on_disk <> fp then
              invalid_arg
                (Printf.sprintf
                   "Serve.Journal: journal %s belongs to a different service \
                    (%s, want %s)"
                   path
                   (fingerprint_to_string on_disk)
                   (fingerprint_to_string fp));
            true
          with Corrupt -> false
        in
        if not ok_header then
          (* Unreadable header: the file never held a full header write;
             start it over. *)
          create ~path fp
        else begin
          let valid_end = scan_records c (fun ~seq:_ _ -> ()) in
          if valid_end < Bytes.length bytes then
            (* Torn tail from a kill mid-append: drop it. *)
            Unix.truncate path valid_end;
          let ch =
            open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
          in
          { ch; buf = Buffer.create 4096;
            last_flush_ns = Obs.Clock.now_ns (); last_sync_ns = None }
        end

  let append t ~seq events =
    Buffer.clear t.buf;
    encode_record t.buf ~seq events;
    Buffer.output_buffer t.ch t.buf

  let flush t =
    flush t.ch;
    t.last_flush_ns <- Obs.Clock.now_ns ()

  let sync t =
    flush t;
    Unix.fsync (Unix.descr_of_out_channel t.ch);
    t.last_sync_ns <- Some (Obs.Clock.now_ns ())

  let close t = close_out t.ch

  let bytes t = pos_out t.ch
  (* Bytes written so far, buffered output included. *)

  let flush_age_s t = Obs.Clock.seconds_since t.last_flush_ns
  let sync_age_s t = Option.map Obs.Clock.seconds_since t.last_sync_ns
end
