(* Always-on telemetry for the serve daemon.

   The instruments are raw {!Obs.Hist} values — atomic, domain-safe,
   and deliberately NOT gated on [Obs.enabled]: the daemon measures its
   own latency whether or not a trace is being recorded.  The global
   Obs flag keeps governing spans and the named-instrument registries,
   so the engine's zero-overhead disabled-path contract is untouched.

   Two axes of histograms:

   - [stages.(stage).(op)] — nanoseconds spent in one lifecycle stage
     (decode, route, shard-apply, reply) of one request, keyed by op
     type.  Decode and reply are timed per request in the server's
     select loop; route and shard-apply are timed per mutation inside
     {!Serve.Cluster} when a telemetry sink is attached.  Budget: each
     stage costs two monotonic-clock reads (~20-25ns each), ~150-200ns
     per fully-staged mutation — about 5-10% of the request cost at the
     ~500k ops/sec mark, which is the price of knowing where the other
     90% goes.

   - [latency.(op)] — end-to-end service nanoseconds per request, from
     the moment its line is parsed to the moment its reply is in the
     client's output buffer (queueing behind the batch included).

   Per-shard distributions ([drain_ns], [drain_depth]) and per-round
   gauge histograms ([batch_events], [round_ns]) feed the same report.
   The report builders ([report_json], [report_prom]) take plain data
   for everything the telemetry bank cannot see itself (cluster
   totals, durability state, connection counts), so this module stays
   below {!Serve.Cluster} in the dependency order. *)

module Hist = Obs.Hist
module Json = Experiment.Json

(* {2 Op taxonomy} *)

(* Wire-visible request kinds, including the server-answered ones:
   stage histograms are keyed by these indices. *)
let op_names =
  [| "step"; "round"; "insert"; "remove"; "probe"; "occupancy"; "watermark";
     "ping"; "metrics"; "stats"; "error" |]

let op_count = Array.length op_names
let op_step = 0
let op_round = 1
let op_insert = 2
let op_remove = 3
let op_probe = 4
let op_occupancy = 5
let op_watermark = 6
let op_ping = 7
let op_metrics = 8
let op_stats = 9
let op_error = 10

let op_of_event = function
  | Engine.Event.Step -> op_step
  | Engine.Event.Round -> op_round
  | Engine.Event.Insert _ -> op_insert
  | Engine.Event.Remove -> op_remove
  | Engine.Event.Probe -> op_probe
  | Engine.Event.Occupancy -> op_occupancy
  | Engine.Event.Watermark -> op_watermark

let op_name i = op_names.(i)

(* {2 Stages} *)

type stage = Decode | Route | Apply | Reply

let stage_names = [| "decode"; "route"; "apply"; "reply" |]
let stage_count = Array.length stage_names

let stage_index = function
  | Decode -> 0
  | Route -> 1
  | Apply -> 2
  | Reply -> 3

type t = {
  created_ns : int64;
  stages : Hist.t array array;  (* stage x op, nanoseconds *)
  latency : Hist.t array;  (* op, end-to-end nanoseconds *)
  batch_events : Hist.t;  (* events per applied round *)
  round_ns : Hist.t;  (* full round duration *)
  drain_ns : Hist.t array;  (* per shard: one drain pass *)
  drain_depth : Hist.t array;  (* per shard: queue depth at drain *)
}

let create ~shards =
  if shards <= 0 then invalid_arg "Serve.Telemetry.create: shards";
  {
    created_ns = Obs.Clock.now_ns ();
    stages =
      Array.init stage_count (fun _ ->
          Array.init op_count (fun _ -> Hist.create ()));
    latency = Array.init op_count (fun _ -> Hist.create ());
    batch_events = Hist.create ();
    round_ns = Hist.create ();
    drain_ns = Array.init shards (fun _ -> Hist.create ());
    drain_depth = Array.init shards (fun _ -> Hist.create ());
  }

let uptime_s t = Obs.Clock.seconds_since t.created_ns

let observe_stage t stage ~op ns =
  Hist.observe t.stages.(stage_index stage).(op) (Int64.to_int ns)

let observe_latency t ~op ns = Hist.observe t.latency.(op) (Int64.to_int ns)
let observe_batch t events = Hist.observe t.batch_events events
let observe_round t ns = Hist.observe t.round_ns (Int64.to_int ns)

let observe_drain t ~shard ~depth ns =
  Hist.observe t.drain_ns.(shard) (Int64.to_int ns);
  Hist.observe t.drain_depth.(shard) depth

(* {2 Report inputs} *)

type totals = {
  connections : int;  (* accepted over the lifetime *)
  live : int;  (* currently connected *)
  requests : int;
  events : int;
  errors : int;
  rounds : int;
}

type shard_gauges = {
  shard : int;
  bins : int;
  balls : int;
  shard_max_load : int;
  shard_watermark : int;
  applied : int;  (* mutations applied by this shard *)
  queue_depth : int;  (* pending (unflushed) events right now *)
}

type durability = {
  journal_bytes : int;
  flush_age_s : float;  (* since the journal last flushed *)
  sync_age_s : float option;  (* since the last fsync; None = never *)
  snapshot_seq : int;
  snapshot_age_s : float;
  since_snapshot : int;  (* mutations not yet covered by a snapshot *)
}

type cluster_gauges = {
  seq : int;
  balls_total : int;
  max_load : int;
  watermark : int;
}

(* {2 JSON exposition} *)

let hist_fields (s : Hist.snapshot) =
  let quantiles =
    List.map (fun (k, v) -> (k, Json.Float v)) (Hist.percentiles s)
  in
  [
    ("count", Json.Int s.count);
    ("sum", Json.Int s.sum);
    ("max", Json.Int (if s.count = 0 then 0 else s.max));
    ("mean", Json.Float (if s.count = 0 then 0. else Hist.mean s));
  ]
  @ quantiles

let hist_json s = Json.Obj (hist_fields s)

let stage_json t ~op =
  List.filter_map
    (fun stage ->
      let s = Hist.snapshot t.stages.(stage_index stage).(op) in
      if s.Hist.count = 0 then None
      else Some (stage_names.(stage_index stage), hist_json s))
    [ Decode; Route; Apply; Reply ]

let ops_json t =
  Json.Obj
    (List.filter_map
       (fun op ->
         let lat = Hist.snapshot t.latency.(op) in
         let stages = stage_json t ~op in
         if lat.Hist.count = 0 && stages = [] then None
         else
           Some
             ( op_name op,
               Json.Obj
                 (("latency_ns", hist_json lat)
                 :: List.map (fun (k, v) -> ("stage_ns_" ^ k, v)) stages) ))
       (List.init op_count Fun.id))

let shard_json t (g : shard_gauges) =
  Json.Obj
    [
      ("shard", Json.Int g.shard);
      ("bins", Json.Int g.bins);
      ("balls", Json.Int g.balls);
      ("max_load", Json.Int g.shard_max_load);
      ("watermark", Json.Int g.shard_watermark);
      ("applied", Json.Int g.applied);
      ("queue_depth", Json.Int g.queue_depth);
      ("drain_ns", hist_json (Hist.snapshot t.drain_ns.(g.shard)));
      ("drain_depth", hist_json (Hist.snapshot t.drain_depth.(g.shard)));
    ]

let durability_json (d : durability) =
  Json.Obj
    [
      ("journal_bytes", Json.Int d.journal_bytes);
      ("flush_age_s", Json.Float d.flush_age_s);
      ( "sync_age_s",
        match d.sync_age_s with Some s -> Json.Float s | None -> Json.Null );
      ("snapshot_seq", Json.Int d.snapshot_seq);
      ("snapshot_age_s", Json.Float d.snapshot_age_s);
      ("since_snapshot", Json.Int d.since_snapshot);
    ]

let report_json t ~totals ~cluster ~shards ~durability =
  [
    ("uptime_s", Json.Float (uptime_s t));
    ("seq", Json.Int cluster.seq);
    ("balls", Json.Int cluster.balls_total);
    ("max_load", Json.Int cluster.max_load);
    ("watermark", Json.Int cluster.watermark);
    ("connections", Json.Int totals.connections);
    ("clients", Json.Int totals.live);
    ("requests", Json.Int totals.requests);
    ("events", Json.Int totals.events);
    ("errors", Json.Int totals.errors);
    ("rounds", Json.Int totals.rounds);
    ("batch_events", hist_json (Hist.snapshot t.batch_events));
    ("round_ns", hist_json (Hist.snapshot t.round_ns));
    ("ops", ops_json t);
    ("shards", Json.List (List.map (shard_json t) shards));
  ]
  @
  match durability with
  | Some d -> [ ("durability", durability_json d) ]
  | None -> []

(* {2 Prometheus text exposition} *)

(* The subset of the exposition format scrapers rely on: # HELP / #
   TYPE preambles, [name{label="v",...} value] samples, histograms
   published as pre-computed quantile summaries (gauge semantics — the
   scrape cost of full cumulative buckets is not worth it for log
   buckets whose edges never change). *)
let prom_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (prom_escape v)) labels)
    ^ "}"

let prom_number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

type prom = { buf : Buffer.t; mutable seen : string list }

let prom_head p name typ help =
  if not (List.mem name p.seen) then begin
    p.seen <- name :: p.seen;
    Buffer.add_string p.buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string p.buf (Printf.sprintf "# TYPE %s %s\n" name typ)
  end

let prom_sample p name labels v =
  Buffer.add_string p.buf
    (Printf.sprintf "%s%s %s\n" name (prom_labels labels) (prom_number v))

let prom_hist p name labels help (s : Hist.snapshot) =
  prom_head p name "gauge" help;
  List.iter
    (fun (q, v) ->
      let q =
        match q with
        | "p50" -> "0.5"
        | "p90" -> "0.9"
        | "p99" -> "0.99"
        | _ -> "0.999"
      in
      prom_sample p name (labels @ [ ("quantile", q) ]) v)
    (if s.Hist.count = 0 then [] else Hist.percentiles s);
  prom_head p (name ^ "_count") "counter" (help ^ " (observations)");
  prom_sample p (name ^ "_count") labels (float_of_int s.Hist.count);
  prom_head p (name ^ "_sum") "counter" (help ^ " (total)");
  prom_sample p (name ^ "_sum") labels (float_of_int s.Hist.sum)

let report_prom t ~totals ~cluster ~shards ~durability =
  let p = { buf = Buffer.create 4096; seen = [] } in
  let gauge name help v =
    prom_head p name "gauge" help;
    prom_sample p name [] v
  and counter name help v =
    prom_head p name "counter" help;
    prom_sample p name [] (float_of_int v)
  in
  gauge "repro_serve_uptime_seconds" "Seconds since the daemon started"
    (uptime_s t);
  gauge "repro_serve_seq" "Mutations routed over the service history"
    (float_of_int cluster.seq);
  gauge "repro_serve_balls" "Balls currently in the system"
    (float_of_int cluster.balls_total);
  gauge "repro_serve_max_load" "Current maximum bin load"
    (float_of_int cluster.max_load);
  gauge "repro_serve_watermark" "Highest load seen since boot"
    (float_of_int cluster.watermark);
  gauge "repro_serve_clients" "Currently connected clients"
    (float_of_int totals.live);
  counter "repro_serve_connections_total" "Connections accepted"
    totals.connections;
  counter "repro_serve_requests_total" "Requests parsed" totals.requests;
  counter "repro_serve_events_total" "Events applied" totals.events;
  counter "repro_serve_errors_total" "Error replies" totals.errors;
  counter "repro_serve_rounds_total" "Select rounds with traffic"
    totals.rounds;
  prom_hist p "repro_serve_batch_events" [] "Events per applied round"
    (Hist.snapshot t.batch_events);
  prom_hist p "repro_serve_round_ns" [] "Round duration in nanoseconds"
    (Hist.snapshot t.round_ns);
  List.iter
    (fun op ->
      let lat = Hist.snapshot t.latency.(op) in
      if lat.Hist.count > 0 then
        prom_hist p "repro_serve_latency_ns"
          [ ("op", op_name op) ]
          "End-to-end request latency in nanoseconds" lat;
      List.iter
        (fun stage ->
          let s = Hist.snapshot t.stages.(stage_index stage).(op) in
          if s.Hist.count > 0 then
            prom_hist p "repro_serve_stage_ns"
              [ ("op", op_name op);
                ("stage", stage_names.(stage_index stage)) ]
              "Lifecycle stage duration in nanoseconds" s)
        [ Decode; Route; Apply; Reply ])
    (List.init op_count Fun.id);
  List.iter
    (fun (g : shard_gauges) ->
      let labels = [ ("shard", string_of_int g.shard) ] in
      let shard_gauge name help v =
        prom_head p name "gauge" help;
        prom_sample p name labels (float_of_int v)
      in
      shard_gauge "repro_serve_shard_balls" "Balls in the shard" g.balls;
      shard_gauge "repro_serve_shard_max_load" "Shard maximum bin load"
        g.shard_max_load;
      shard_gauge "repro_serve_shard_applied" "Mutations applied by the shard"
        g.applied;
      shard_gauge "repro_serve_shard_queue_depth"
        "Pending events queued for the shard" g.queue_depth;
      prom_hist p "repro_serve_shard_drain_ns" labels
        "Shard drain pass duration in nanoseconds"
        (Hist.snapshot t.drain_ns.(g.shard));
      prom_hist p "repro_serve_shard_drain_depth" labels
        "Queue depth at drain time"
        (Hist.snapshot t.drain_depth.(g.shard)))
    shards;
  (match durability with
  | None -> ()
  | Some d ->
      gauge "repro_serve_journal_bytes" "Journal file size in bytes"
        (float_of_int d.journal_bytes);
      gauge "repro_serve_journal_flush_age_seconds"
        "Seconds since the journal last flushed" d.flush_age_s;
      (match d.sync_age_s with
      | Some s ->
          gauge "repro_serve_journal_sync_age_seconds"
            "Seconds since the journal last fsynced" s
      | None -> ());
      gauge "repro_serve_snapshot_seq" "Sequence of the last snapshot"
        (float_of_int d.snapshot_seq);
      gauge "repro_serve_snapshot_age_seconds"
        "Seconds since the last snapshot" d.snapshot_age_s;
      gauge "repro_serve_since_snapshot"
        "Mutations not yet covered by a snapshot"
        (float_of_int d.since_snapshot));
  Buffer.contents p.buf
