(** Durable allocation service state: a {!Cluster} plus its snapshot
    and write-ahead journal in one directory.

    Every batch journals its mutations (flushed — optionally fsynced —
    before application), so a kill at {e any} point restores, by
    snapshot load plus journal replay, to a state from which the
    surviving event stream produces byte-identical replies.  Snapshots
    are cut at batch boundaries every [snapshot_every] mutations, after
    which the journal is compacted, bounding restore cost. *)

type t

val open_ :
  ?pool:Parallel.Pool.t ->
  ?snapshot_every:int ->
  ?sync:bool ->
  dir:string ->
  Cluster.config ->
  (t, string) result
(** Open (creating [dir] as needed) or restore the service.  A fresh
    directory boots a new {!Cluster.create}; an existing one is
    restored from [snapshot.bin] (if any) and the valid prefix of
    [journal.bin].  [Error _] on a fingerprint mismatch (the directory
    belongs to a service with different parameters) or a corrupt replay
    sequence.  [sync] makes every batch [fsync] (default: flush only).
    @raise Invalid_argument if [snapshot_every <= 0]. *)

val cluster : t -> Cluster.t
val config : t -> Cluster.config

val seq : t -> int
(** Mutations routed over the service's whole history. *)

val durability : t -> Telemetry.durability
(** Point-in-time durability gauges for the stats report: journal size,
    flush/fsync ages, last snapshot sequence and age, and mutations not
    yet covered by a snapshot. *)

val apply_batch : t -> Engine.Event.t array -> Engine.Event.reply array
(** Journal the batch's mutations, then {!Cluster.apply_batch}. *)

val apply : t -> Engine.Event.t -> Engine.Event.reply

val snapshot_now : t -> unit
(** Cut a snapshot at the current (batch-boundary) state and compact
    the journal. *)

val close : t -> unit
(** Snapshot and release the journal handle.  Idempotent. *)
