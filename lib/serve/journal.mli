(** Durability for the allocation service: snapshots plus an
    append-only event journal.

    Both files open with a versioned magic string
    ([repro.serve-snapshot/4] / [repro.serve-journal/3]) and a service
    {!fingerprint}.  Snapshots are written to a temporary sibling and
    renamed into place; journal records end with a trailer written
    last, so a kill mid-append leaves a torn tail that readers detect
    and drop ({!Writer.open_append} truncates it).  Records carry every
    routed mutation — including rejected ones, which consume no
    randomness — so restoring a snapshot cut at a record boundary and
    applying each record with [seq >= snapshot.seq] replays the service
    bit-identically ({!Serve.Store} implements that loop). *)

type fingerprint = {
  n : int;
  m : int;
  shards : int;
  seed : int;
  process : string;  (** {!Serve.Process.name} — the hosted family. *)
  scenario : string;  (** {!Core.Scenario.name}. *)
  rule : string;  (** {!Core.Scheduling_rule.name}. *)
  repr : string;  (** {!Core.Repr.name} — the representation backend. *)
}

val fingerprint_of_config : Cluster.config -> fingerprint
val fingerprint_to_string : fingerprint -> string

(** {2 Snapshots} *)

val save_snapshot : path:string -> fingerprint -> Cluster.state -> unit
(** Atomic (temporary sibling + rename). *)

val load_snapshot : path:string -> (fingerprint * Cluster.state) option
(** [None] on a missing, truncated or foreign file. *)

(** {2 Journal} *)

val read_fingerprint : path:string -> fingerprint option

val fold :
  path:string ->
  init:'a ->
  f:('a -> seq:int -> Engine.Event.t array -> 'a) ->
  'a
(** Fold over the valid record prefix in order ([f acc ~seq events]);
    a torn tail or missing file ends the fold cleanly. *)

module Writer : sig
  type t

  val create : path:string -> fingerprint -> t
  (** Start a fresh journal, truncating any existing file. *)

  val open_append : path:string -> fingerprint -> t
  (** Append to an existing journal: validates the fingerprint,
      truncates any torn tail, and seeks to the end.  A missing file
      (or one whose header never finished writing) is created fresh.
      @raise Invalid_argument when the on-disk fingerprint differs. *)

  val append : t -> seq:int -> Engine.Event.t array -> unit
  (** Buffered; [events] must be mutations.
      @raise Invalid_argument on a non-mutation event. *)

  val flush : t -> unit

  val sync : t -> unit
  (** {!flush} plus [fsync] — full durability at the cost of a disk
      round-trip per batch. *)

  val close : t -> unit

  (** {3 Durability gauges} *)

  val bytes : t -> int
  (** Bytes written to the journal so far (buffered output included) —
      the on-disk size once flushed. *)

  val flush_age_s : t -> float
  (** Seconds since the journal last reached the OS. *)

  val sync_age_s : t -> float option
  (** Seconds since the last [fsync]; [None] when the writer has never
      synced (the [--sync] flag is off). *)
end
