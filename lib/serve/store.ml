(* The durable service state: a {!Cluster} paired with its snapshot and
   write-ahead journal in one directory.

   Batch protocol: journal the batch's mutations (arrival order, record
   seq = cluster seq before application), flush, then apply the whole
   batch to the cluster.  A kill between the journal write and the
   application is harmless — restore replays the journaled record onto
   the pre-batch state and lands exactly where the apply would have.

   Snapshots are cut at batch boundaries every [snapshot_every]
   mutations; after a successful (atomic) snapshot the journal is
   compacted — restarted fresh — so restore cost stays bounded by one
   snapshot interval.  A crash between the rename and the compaction
   only leaves fully-covered records behind, which the replay skip rule
   ([record.seq >= snapshot.seq]) ignores. *)

type t = {
  config : Cluster.config;
  fp : Journal.fingerprint;
  cluster : Cluster.t;
  mutable writer : Journal.Writer.t;
  journal_path : string;
  snapshot_path : string;
  snapshot_every : int;
  sync : bool;
  mutable last_snapshot_seq : int;
  mutable last_snapshot_ns : int64;  (* boot time until the first cut *)
  mutable closed : bool;
}

let journal_file = "journal.bin"
let snapshot_file = "snapshot.bin"

let restore_cluster ?pool ~snapshot_path ~journal_path config fp =
  let cluster, snap_seq =
    match Journal.load_snapshot ~path:snapshot_path with
    | Some (fp', st) ->
        if fp' <> fp then
          failwith
            (Printf.sprintf
               "snapshot %s belongs to a different service (%s, want %s)"
               snapshot_path
               (Journal.fingerprint_to_string fp')
               (Journal.fingerprint_to_string fp));
        (Cluster.of_state ?pool config st, st.seq)
    | None -> (Cluster.create ?pool config, 0)
  in
  (match Journal.read_fingerprint ~path:journal_path with
  | Some fp' when fp' <> fp ->
      failwith
        (Printf.sprintf
           "journal %s belongs to a different service (%s, want %s)"
           journal_path
           (Journal.fingerprint_to_string fp')
           (Journal.fingerprint_to_string fp))
  | _ -> ());
  ignore snap_seq;
  Journal.fold ~path:journal_path ~init:() ~f:(fun () ~seq events ->
      let cur = Cluster.seq cluster in
      if seq = cur then ignore (Cluster.apply_batch cluster events)
      else if seq > cur then
        failwith
          (Printf.sprintf
             "journal %s has a gap: record seq %d but service is at %d"
             journal_path seq cur)
      else if seq + Array.length events > cur then
        failwith
          (Printf.sprintf
             "journal %s record [%d, %d) straddles the snapshot seq %d"
             journal_path seq
             (seq + Array.length events)
             cur));
  cluster

let open_ ?pool ?(snapshot_every = 1_000_000) ?(sync = false) ~dir config =
  if snapshot_every <= 0 then
    invalid_arg "Serve.Store.open_: snapshot_every must be positive";
  Experiment.Util.mkdir_p dir;
  let snapshot_path = Filename.concat dir snapshot_file in
  let journal_path = Filename.concat dir journal_file in
  let fp = Journal.fingerprint_of_config config in
  match
    let cluster =
      restore_cluster ?pool ~snapshot_path ~journal_path config fp
    in
    let writer = Journal.Writer.open_append ~path:journal_path fp in
    { config; fp; cluster; writer; journal_path; snapshot_path;
      snapshot_every; sync; last_snapshot_seq = Cluster.seq cluster;
      last_snapshot_ns = Obs.Clock.now_ns (); closed = false }
  with
  | t -> Ok t
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let cluster t = t.cluster
let config t = t.config
let seq t = Cluster.seq t.cluster

let durability t : Telemetry.durability =
  {
    Telemetry.journal_bytes = Journal.Writer.bytes t.writer;
    flush_age_s = Journal.Writer.flush_age_s t.writer;
    sync_age_s = Journal.Writer.sync_age_s t.writer;
    snapshot_seq = t.last_snapshot_seq;
    snapshot_age_s = Obs.Clock.seconds_since t.last_snapshot_ns;
    since_snapshot = Cluster.seq t.cluster - t.last_snapshot_seq;
  }

let snapshot_now t =
  Journal.save_snapshot ~path:t.snapshot_path t.fp (Cluster.state t.cluster);
  (* Compact: everything on disk is now covered by the snapshot. *)
  Journal.Writer.close t.writer;
  t.writer <- Journal.Writer.create ~path:t.journal_path t.fp;
  t.last_snapshot_seq <- Cluster.seq t.cluster;
  t.last_snapshot_ns <- Obs.Clock.now_ns ()

let count_mutations events =
  Array.fold_left
    (fun k ev -> if Engine.Event.is_mutation ev then k + 1 else k)
    0 events

let apply_batch t events =
  if t.closed then invalid_arg "Serve.Store.apply_batch: closed";
  let muts = count_mutations events in
  if muts > 0 then begin
    let record =
      if muts = Array.length events then events
      else begin
        let r = Array.make muts Engine.Event.Step in
        let k = ref 0 in
        Array.iter
          (fun ev ->
            if Engine.Event.is_mutation ev then begin
              r.(!k) <- ev;
              incr k
            end)
          events;
        r
      end
    in
    Journal.Writer.append t.writer ~seq:(Cluster.seq t.cluster) record;
    if t.sync then Journal.Writer.sync t.writer
    else Journal.Writer.flush t.writer
  end;
  let replies = Cluster.apply_batch t.cluster events in
  if Cluster.seq t.cluster - t.last_snapshot_seq >= t.snapshot_every then
    snapshot_now t;
  replies

let apply t ev = (apply_batch t [| ev |]).(0)

let close t =
  if not t.closed then begin
    snapshot_now t;
    Journal.Writer.close t.writer;
    t.closed <- true
  end
