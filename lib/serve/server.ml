(* The serve daemon: a single-threaded select loop feeding the sharded
   cluster, with shard application fanned out over a {!Parallel.Pool}.

   Each select round drains every readable client, parses the complete
   lines into one batch (arrival order), applies the batch — in chunks
   of at most [max_batch]; chunking cannot change the outcome because
   cluster application is batch-invariant — and appends the replies to
   each client's output buffer in request order.  Ping, metrics and
   stats are answered by the server itself, after the batch, so a
   client that interleaves them with events still sees ordered replies.

   Telemetry is always on: every request is timed through its
   lifecycle stages (decode here, route/apply in the cluster, reply
   here) into a {!Telemetry} bank the [stats] op reports from.  When
   [trace] is set, the daemon additionally records Obs spans for a
   sampled 1-in-[trace_sample] request per round — a full
   request/decode/apply/reply span tree per sample — and writes the
   Perfetto trace on graceful shutdown.

   SIGTERM / SIGINT stop the loop; shutdown flushes output buffers
   best-effort, snapshots the store and removes a Unix socket file, so
   `kill` is a clean restart point — and `kill -9` is recovered by
   journal replay, which the CI smoke exercises. *)

type config = {
  listen : Wire.address;
  cluster : Cluster.config;
  dir : string option;  (* None = ephemeral (no snapshot/journal) *)
  snapshot_every : int;
  sync : bool;
  domains : int;
  max_batch : int;
  quiet : bool;
  trace : string option;  (* Perfetto trace path, written on shutdown *)
  trace_sample : int;  (* trace every Nth request (at most 1 per round) *)
}

let default_config ~listen ~cluster =
  { listen; cluster; dir = None; snapshot_every = 1_000_000; sync = false;
    domains = 1; max_batch = 8192; quiet = false; trace = None;
    trace_sample = 64 }

type backend = Durable of Store.t | Ephemeral of Cluster.t

let backend_cluster = function
  | Durable s -> Store.cluster s
  | Ephemeral c -> c

let backend_apply b events =
  match b with
  | Durable s -> Store.apply_batch s events
  | Ephemeral c -> Cluster.apply_batch c events

let backend_close = function
  | Durable s -> Store.close s
  | Ephemeral _ -> ()

type client = {
  fd : Unix.file_descr;
  pending : Buffer.t;  (* bytes read, not yet terminated by '\n' *)
  out : Buffer.t;
  mutable out_pos : int;
  mutable dead : bool;
}

(* What each parsed request of the current round owes its client. *)
type slot =
  | Reply of int  (* index into the round's event array *)
  | Immediate of string  (* preformatted line(s) *)
  | Metrics_slot
  | Stats_slot of Wire.stats_format

(* A parsed request of the current round, tagged for telemetry: its op
   index, its decode-start timestamp (the service-time origin) and —
   when sampled — its in-flight "serve.request" span. *)
type pending = {
  pc : client;
  pid : int option;
  pslot : slot;
  pop : int;
  pt0 : int64;
  pspan : Obs.span;
  ptraced : bool;
}

type stats = {
  started : float;
  mutable connections : int;
  mutable live : int;
  mutable requests : int;
  mutable events : int;
  mutable errors : int;
  mutable rounds : int;
}

let listen_socket addr =
  match addr with
  | Wire.Unix_sock path ->
      (try if (Unix.lstat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
       with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Wire.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      fd

let metrics_fields backend stats =
  let cluster = backend_cluster backend in
  let agg =
    let acc = ref Engine.Metrics.zero in
    for s = 0 to Cluster.shard_count cluster - 1 do
      acc :=
        Engine.Metrics.merge !acc
          (Engine.Metrics.snapshot (Shard.metrics (Cluster.shard cluster s)))
    done;
    !acc
  in
  let obs =
    if Obs.enabled () then
      [ ("obs_counters",
         Experiment.Json.Obj
           (List.map
              (fun (k, v) -> (k, Experiment.Json.Int v))
              (Obs.counters ()))) ]
    else []
  in
  [
    ("uptime_s", Experiment.Json.Float (Unix.gettimeofday () -. stats.started));
    ("seq", Experiment.Json.Int (Cluster.seq cluster));
    ("shards", Experiment.Json.Int (Cluster.shard_count cluster));
    ("balls", Experiment.Json.Int (Cluster.total_balls cluster));
    ("max_load", Experiment.Json.Int (Cluster.max_load cluster));
    ("watermark", Experiment.Json.Int (Cluster.watermark cluster));
    ("connections", Experiment.Json.Int stats.connections);
    ("clients", Experiment.Json.Int stats.live);
    ("requests", Experiment.Json.Int stats.requests);
    ("events", Experiment.Json.Int stats.events);
    ("errors", Experiment.Json.Int stats.errors);
    ("rounds", Experiment.Json.Int stats.rounds);
    ("engine_steps", Experiment.Json.Int agg.Engine.Metrics.steps);
    ("engine_probes", Experiment.Json.Int agg.Engine.Metrics.probes);
    ("engine_rng_draws", Experiment.Json.Int agg.Engine.Metrics.rng_draws);
  ]
  @ obs

let run ?on_ready config =
  if config.max_batch <= 0 then
    invalid_arg "Serve.Server.run: max_batch must be positive";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = ref false in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true)) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true)) in
  let pool =
    if config.domains > 1 then Some (Parallel.Pool.create ~domains:config.domains ())
    else None
  in
  let backend =
    match config.dir with
    | None -> Ephemeral (Cluster.create ?pool config.cluster)
    | Some dir -> (
        match
          Store.open_ ?pool ~snapshot_every:config.snapshot_every
            ~sync:config.sync ~dir config.cluster
        with
        | Ok store -> Durable store
        | Error msg -> failwith ("repro serve: " ^ msg))
  in
  let lsock = listen_socket config.listen in
  let stats =
    { started = Unix.gettimeofday (); connections = 0; live = 0; requests = 0;
      events = 0; errors = 0; rounds = 0 }
  in
  let tel = Telemetry.create ~shards:config.cluster.Cluster.shards in
  Cluster.set_telemetry (backend_cluster backend) tel;
  (match config.trace with Some _ -> Obs.enable () | None -> ());
  let trace_on = config.trace <> None && config.trace_sample > 0 in
  (* Next request count at which to sample a trace; starts at 1 so even
     a short run records at least one request tree. *)
  let next_trace = ref 1 in
  let telemetry_inputs () =
    let cluster = backend_cluster backend in
    let totals =
      { Telemetry.connections = stats.connections; live = stats.live;
        requests = stats.requests; events = stats.events;
        errors = stats.errors; rounds = stats.rounds }
    in
    let cg =
      { Telemetry.seq = Cluster.seq cluster;
        balls_total = Cluster.total_balls cluster;
        max_load = Cluster.max_load cluster;
        watermark = Cluster.watermark cluster }
    in
    let depths = Cluster.queue_depths cluster in
    let shards =
      List.init (Cluster.shard_count cluster) (fun s ->
          let sh = Cluster.shard cluster s in
          { Telemetry.shard = s; bins = Shard.bin_count sh;
            balls = Shard.balls sh; shard_max_load = Shard.max_load sh;
            shard_watermark = Shard.watermark sh; applied = Shard.applied sh;
            queue_depth = depths.(s) })
    in
    let durability =
      match backend with
      | Durable s -> Some (Store.durability s)
      | Ephemeral _ -> None
    in
    (totals, cg, shards, durability)
  in
  if not config.quiet then begin
    Printf.printf
      "repro serve: listening on %s (n=%d m=%d shards=%d process=%s rule=%s \
       scenario=%s%s)\n"
      (Wire.address_to_string config.listen)
      config.cluster.Cluster.n config.cluster.Cluster.m
      config.cluster.Cluster.shards
      (Process.name config.cluster.Cluster.process)
      (Core.Scheduling_rule.name config.cluster.Cluster.rule)
      (Core.Scenario.name config.cluster.Cluster.scenario)
      (match config.dir with None -> ", ephemeral" | Some d -> ", dir=" ^ d);
    flush stdout
  end;
  (match on_ready with Some f -> f () | None -> ());
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let scratch = Bytes.create 65536 in
  let line_buf = Buffer.create 256 in
  let close_client c =
    if not c.dead then begin
      c.dead <- true;
      stats.live <- stats.live - 1;
      Hashtbl.remove clients c.fd;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end
  in
  (* Split [c.pending] into complete lines, appending each to [lines]
     tagged with its client; the last partial line stays pending. *)
  let extract_lines c lines =
    let s = Buffer.contents c.pending in
    Buffer.clear c.pending;
    let n = String.length s in
    let start = ref 0 in
    for i = 0 to n - 1 do
      if s.[i] = '\n' then begin
        let line = String.sub s !start (i - !start) in
        let line =
          (* Tolerate CRLF clients. *)
          if line <> "" && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        if line <> "" then lines := (c, line) :: !lines;
        start := i + 1
      end
    done;
    if !start < n then Buffer.add_substring c.pending s !start (n - !start)
  in
  let apply_chunked events =
    let n = Array.length events in
    if n <= config.max_batch then backend_apply backend events
    else begin
      let replies = Array.make n Engine.Event.Ack in
      let pos = ref 0 in
      while !pos < n do
        let len = min config.max_batch (n - !pos) in
        let chunk = Array.sub events !pos len in
        let rs = backend_apply backend chunk in
        Array.blit rs 0 replies !pos len;
        pos := !pos + len
      done;
      replies
    end
  in
  let process_round ready =
    (* 1. drain readable clients *)
    let lines = ref [] in
    List.iter
      (fun fd ->
        match Hashtbl.find_opt clients fd with
        | None -> ()
        | Some c -> (
            match Unix.read fd scratch 0 (Bytes.length scratch) with
            | 0 -> close_client c
            | k ->
                Buffer.add_subbytes c.pending scratch 0 k;
                extract_lines c lines
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              -> close_client c
            | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()))
      ready;
    let lines = List.rev !lines in
    if lines <> [] then begin
      stats.rounds <- stats.rounds + 1;
      let t_round = Obs.Clock.now_ns () in
      (* At most one sampled request per round, so its span cleanly
         contains the round-level apply span and its own reply span. *)
      let traced_this_round = ref false in
      (* 2. parse into one batch *)
      let events = ref [] and nevents = ref 0 in
      let slots =
        (* fold_left, not map: the slot builder mutates the event
           accumulator, so evaluation order must be the arrival order. *)
        List.rev
          (List.fold_left
             (fun acc (c, line) ->
               stats.requests <- stats.requests + 1;
               let traced =
                 trace_on
                 && (not !traced_this_round)
                 && stats.requests >= !next_trace
               in
               if traced then begin
                 traced_this_round := true;
                 next_trace := stats.requests + config.trace_sample
               end;
               let pspan =
                 if traced then Obs.begin_span "serve.request"
                 else Obs.null_span
               in
               let dspan =
                 if traced then Obs.begin_span "serve.decode"
                 else Obs.null_span
               in
               let t0 = Obs.Clock.now_ns () in
               let parsed = Wire.parse line in
               let decode_ns = Obs.Clock.ns_since t0 in
               Obs.end_span dspan;
               let op, pid, pslot =
                 match parsed with
                 | Error msg ->
                     stats.errors <- stats.errors + 1;
                     Buffer.clear line_buf;
                     Wire.add_error line_buf ~id:None msg;
                     ( Telemetry.op_error, None,
                       Immediate (Buffer.contents line_buf) )
                 | Ok (id, Wire.Ping) ->
                     Buffer.clear line_buf;
                     Wire.add_pong line_buf ~id;
                     (Telemetry.op_ping, id, Immediate (Buffer.contents line_buf))
                 | Ok (id, Wire.Metrics) -> (Telemetry.op_metrics, id, Metrics_slot)
                 | Ok (id, Wire.Stats fmt) ->
                     (Telemetry.op_stats, id, Stats_slot fmt)
                 | Ok (id, Wire.Event ev) ->
                     let ix = !nevents in
                     events := ev :: !events;
                     incr nevents;
                     stats.events <- stats.events + 1;
                     (Telemetry.op_of_event ev, id, Reply ix)
               in
               Telemetry.observe_stage tel Telemetry.Decode ~op decode_ns;
               { pc = c; pid; pslot; pop = op; pt0 = t0; pspan;
                 ptraced = traced }
               :: acc)
             [] lines)
      in
      (* 3. apply *)
      let events = Array.of_list (List.rev !events) in
      let aspan =
        if !traced_this_round then
          Obs.begin_span "serve.apply"
            ~args:[ ("events", Obs.Int (Array.length events)) ]
        else Obs.null_span
      in
      let replies = apply_chunked events in
      Obs.end_span aspan;
      (* 4. answer in request order *)
      List.iter
        (fun p ->
          if not p.pc.dead then begin
            let t_reply = Obs.Clock.now_ns () in
            let rspan =
              if p.ptraced then Obs.begin_span "serve.reply" else Obs.null_span
            in
            (match p.pslot with
            | Immediate s -> Buffer.add_string p.pc.out s
            | Reply ix ->
                (match replies.(ix) with
                | Engine.Event.Rejected _ -> stats.errors <- stats.errors + 1
                | _ -> ());
                Wire.add_reply p.pc.out ~id:p.pid replies.(ix)
            | Metrics_slot ->
                Wire.add_metrics p.pc.out ~id:p.pid
                  (metrics_fields backend stats)
            | Stats_slot fmt -> (
                let totals, cg, shards, durability = telemetry_inputs () in
                match fmt with
                | Wire.Stats_json ->
                    Wire.add_stats p.pc.out ~id:p.pid
                      (Telemetry.report_json tel ~totals ~cluster:cg ~shards
                         ~durability)
                | Wire.Stats_prom ->
                    Wire.add_stats_text p.pc.out ~id:p.pid
                      (Telemetry.report_prom tel ~totals ~cluster:cg ~shards
                         ~durability)));
            Obs.end_span rspan;
            let t_end = Obs.Clock.now_ns () in
            Telemetry.observe_stage tel Telemetry.Reply ~op:p.pop
              (Int64.sub t_end t_reply);
            Telemetry.observe_latency tel ~op:p.pop (Int64.sub t_end p.pt0);
            if p.ptraced then
              Obs.end_span p.pspan
                ~args:[ ("op", Obs.Str (Telemetry.op_name p.pop)) ]
          end)
        slots;
      Telemetry.observe_batch tel (Array.length events);
      Telemetry.observe_round tel (Obs.Clock.ns_since t_round)
    end
  in
  let flush_client c =
    let len = Buffer.length c.out - c.out_pos in
    if len > 0 then begin
      let bytes = Bytes.unsafe_of_string (Buffer.contents c.out) in
      match Unix.write c.fd bytes c.out_pos len with
      | k ->
          c.out_pos <- c.out_pos + k;
          if c.out_pos = Buffer.length c.out then begin
            Buffer.clear c.out;
            c.out_pos <- 0
          end
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          close_client c
      | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()
    end
  in
  (while not !stop do
       let rfds = lsock :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
       let wfds =
         Hashtbl.fold
           (fun fd c acc -> if Buffer.length c.out > c.out_pos then fd :: acc else acc)
           clients []
       in
       match Unix.select rfds wfds [] 0.2 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | ready_r, ready_w, _ ->
           if List.mem lsock ready_r then begin
             match Unix.accept lsock with
             | fd, _ ->
                 stats.connections <- stats.connections + 1;
                 stats.live <- stats.live + 1;
                 Hashtbl.replace clients fd
                   { fd; pending = Buffer.create 1024; out = Buffer.create 4096;
                     out_pos = 0; dead = false }
             | exception Unix.Unix_error _ -> ()
           end;
           process_round (List.filter (fun fd -> fd <> lsock) ready_r);
           List.iter
             (fun fd ->
               match Hashtbl.find_opt clients fd with
               | Some c -> flush_client c
               | None -> ())
             ready_w;
           (* Answer fresh replies eagerly instead of waiting a round. *)
           Hashtbl.iter
             (fun _ c -> if Buffer.length c.out > c.out_pos then flush_client c)
             clients
   done);
  (* Graceful shutdown: flush what we can, persist, release. *)
  Hashtbl.iter (fun _ c -> try flush_client c with _ -> ()) clients;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with _ -> ()) clients;
  Hashtbl.reset clients;
  (try Unix.close lsock with Unix.Unix_error _ -> ());
  (match config.listen with
  | Wire.Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Wire.Tcp _ -> ());
  backend_close backend;
  (match pool with Some p -> Parallel.Pool.shutdown p | None -> ());
  (match config.trace with
  | Some path ->
      Obs.write_trace ~path;
      if not config.quiet then begin
        Printf.printf "repro serve: trace written to %s\n" path;
        flush stdout
      end
  | None -> ());
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  if not config.quiet then begin
    Printf.printf
      "repro serve: stopped after %d requests (%d events, %d errors)\n"
      stats.requests stats.events stats.errors;
    flush stdout
  end
