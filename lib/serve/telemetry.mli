(** Always-on telemetry for the serve daemon.

    A bank of raw {!Obs.Hist} instruments — atomic, domain-safe, and
    deliberately {e not} gated on [Obs.enabled ()]: the daemon measures
    its own latency whether or not a trace is being recorded, while the
    global Obs flag keeps governing spans and the named registries (the
    zero-overhead disabled-path contract of the step loops is
    untouched).

    Request lifecycle stages are timed per op type
    ([decode -> route -> shard-apply -> reply], see {!stage}); the
    server also records end-to-end service latency per request, events
    per round, and per-shard drain cost and queue depth.  Stage timing
    costs two monotonic-clock reads (~20-25ns each) per stage, ~5-10%
    of the request budget at the ~500k ops/sec mark — documented in
    DESIGN.md ("Serving observability").

    The report builders take plain data for the gauges the bank cannot
    see itself (cluster totals, durability state, connections) and
    render the [stats] wire reply: structured JSON fields
    ({!report_json}) or a Prometheus text exposition
    ({!report_prom}). *)

type t

val create : shards:int -> t
(** A fresh bank for a cluster of [shards] shards (the per-shard
    histograms are indexed by shard id). *)

val uptime_s : t -> float

(** {2 Op taxonomy}

    Stage and latency histograms are keyed by a small op index covering
    the wire vocabulary (events, [ping], [metrics], [stats]) plus a
    pseudo-op for unparseable requests. *)

val op_count : int
val op_of_event : Engine.Event.t -> int
val op_ping : int
val op_metrics : int
val op_stats : int
val op_error : int
val op_name : int -> string

(** {2 Recording} *)

type stage =
  | Decode  (** Wire parse of one request line (per request). *)
  | Route  (** Router draw + queue push of one mutation (per event). *)
  | Apply  (** Shard state-machine application (per event). *)
  | Reply  (** Reply formatting into the client buffer (per request). *)

val observe_stage : t -> stage -> op:int -> int64 -> unit
(** Record one stage duration in nanoseconds for op index [op]. *)

val observe_latency : t -> op:int -> int64 -> unit
(** End-to-end service time of one request: parse start to reply
    buffered. *)

val observe_batch : t -> int -> unit
(** Events in one applied round. *)

val observe_round : t -> int64 -> unit
(** Duration of one round (drain to replies buffered). *)

val observe_drain : t -> shard:int -> depth:int -> int64 -> unit
(** One drain pass over a shard's queue: its depth and duration. *)

(** {2 Report inputs} *)

type totals = {
  connections : int;
  live : int;
  requests : int;
  events : int;
  errors : int;
  rounds : int;
}

type shard_gauges = {
  shard : int;
  bins : int;
  balls : int;
  shard_max_load : int;
  shard_watermark : int;
  applied : int;
  queue_depth : int;  (** Pending (unflushed) events right now. *)
}

type durability = {
  journal_bytes : int;
  flush_age_s : float;
  sync_age_s : float option;  (** [None] = never fsynced. *)
  snapshot_seq : int;
  snapshot_age_s : float;
  since_snapshot : int;
}

type cluster_gauges = {
  seq : int;
  balls_total : int;
  max_load : int;
  watermark : int;
}

(** {2 Exposition} *)

val hist_fields : Obs.Hist.snapshot -> (string * Experiment.Json.t) list
(** count / sum / max / mean / p50 / p90 / p99 / p999 of one
    histogram, the JSON shape every latency field of the report uses. *)

val report_json :
  t ->
  totals:totals ->
  cluster:cluster_gauges ->
  shards:shard_gauges list ->
  durability:durability option ->
  (string * Experiment.Json.t) list
(** The [stats] reply fields: top-level gauges, [ops] (per-op latency
    and stage histograms, empty ops omitted), [shards] (gauges plus
    drain histograms), and [durability] when the service has a store. *)

val report_prom :
  t ->
  totals:totals ->
  cluster:cluster_gauges ->
  shards:shard_gauges list ->
  durability:durability option ->
  string
(** The same report as a Prometheus text exposition ([# HELP] /
    [# TYPE] preambles; histograms as pre-computed quantile samples
    with [_count] / [_sum] companions). *)
