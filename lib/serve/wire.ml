(* JSON-lines protocol of the allocation service.

   Requests (one object per line):

     {"op":"insert","key":123,"id":7}   -> {"id":7,"ok":true,"reply":"placed","bin":17}
     {"op":"remove"}                    -> {"ok":true,"reply":"removed","bin":4}
     {"op":"step"}                      -> {"ok":true,"reply":"ack"}
     {"op":"round"}                     -> {"ok":true,"reply":"ack"}
     {"op":"probe"}                     -> {"ok":true,"reply":"level","value":3}
     {"op":"watermark"}                 -> {"ok":true,"reply":"level","value":5}
     {"op":"occupancy"}                 -> {"ok":true,"reply":"loads","loads":[...]}
     {"op":"ping"}                      -> {"ok":true,"reply":"pong"}
     {"op":"metrics"}                   -> {"ok":true,"reply":"metrics",...}
     {"op":"stats"}                     -> {"ok":true,"reply":"stats",...}
     {"op":"stats","format":"prom"}     -> {"ok":true,"reply":"stats","format":"prom","text":"..."}

   "metrics" is the legacy coarse counter dump; "stats" is the full
   telemetry report (per-op stage histograms, latency quantiles,
   per-shard gauges, durability state), as structured JSON fields by
   default or, with "format":"prom", a Prometheus text exposition
   carried in the "text" field.

   "id" is optional and echoed back verbatim when present; replies are
   written in request order, so correlation works without ids too.
   Rejected mutations and malformed requests answer with "ok":false.

   Parsing goes through [Experiment.Json] (the repo's dependency-free
   parser); responses are hand-formatted into a caller-owned [Buffer]
   so the server's hot path allocates no intermediate strings. *)

type address = Unix_sock of string | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let parse_address s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then Error "unix: needs a socket path"
      else Ok (Unix_sock path)
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error "tcp: needs host:port"
      | Some j -> (
          let host = String.sub rest 0 j in
          let host = if host = "" then "127.0.0.1" else host in
          match int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1)) with
          | Some port when port > 0 && port < 65536 -> Ok (Tcp (host, port))
          | _ -> Error "tcp: bad port"))
  | _ ->
      Error
        (Printf.sprintf "bad address %S (use unix:PATH or tcp:HOST:PORT)" s)

type stats_format = Stats_json | Stats_prom

type request =
  | Event of Engine.Event.t
  | Ping
  | Metrics
  | Stats of stats_format

let parse line =
  match Experiment.Json.of_string line with
  | Error e -> Error ("bad json: " ^ e)
  | Ok json -> (
      let id =
        match Experiment.Json.member "id" json with
        | Some (Experiment.Json.Int i) -> Some i
        | _ -> None
      in
      match Experiment.Json.member "op" json with
      | Some (Experiment.Json.String op) -> (
          match op with
          | "step" -> Ok (id, Event Engine.Event.Step)
          | "round" -> Ok (id, Event Engine.Event.Round)
          | "insert" -> (
              match Experiment.Json.member "key" json with
              | Some (Experiment.Json.Int key) ->
                  Ok (id, Event (Engine.Event.Insert key))
              | _ -> Error "insert needs an integer \"key\"")
          | "remove" -> Ok (id, Event Engine.Event.Remove)
          | "probe" -> Ok (id, Event Engine.Event.Probe)
          | "occupancy" -> Ok (id, Event Engine.Event.Occupancy)
          | "watermark" -> Ok (id, Event Engine.Event.Watermark)
          | "ping" -> Ok (id, Ping)
          | "metrics" -> Ok (id, Metrics)
          | "stats" -> (
              match Experiment.Json.member "format" json with
              | None | Some (Experiment.Json.String "json") ->
                  Ok (id, Stats Stats_json)
              | Some (Experiment.Json.String "prom") ->
                  Ok (id, Stats Stats_prom)
              | Some (Experiment.Json.String f) ->
                  Error
                    (Printf.sprintf "unknown stats format %S (json | prom)" f)
              | Some _ -> Error "stats \"format\" must be a string")
          | op -> Error (Printf.sprintf "unknown op %S" op))
      | _ -> Error "missing \"op\"")

(* {2 Response formatting} *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let open_reply buf ~id ~ok ~reply =
  Buffer.add_char buf '{';
  (match id with
  | Some i ->
      Buffer.add_string buf "\"id\":";
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ','
  | None -> ());
  Buffer.add_string buf (if ok then "\"ok\":true" else "\"ok\":false");
  Buffer.add_string buf ",\"reply\":\"";
  Buffer.add_string buf reply;
  Buffer.add_char buf '"'

let close_reply buf =
  Buffer.add_char buf '}';
  Buffer.add_char buf '\n'

let add_reply buf ~id reply =
  (match reply with
  | Engine.Event.Ack -> open_reply buf ~id ~ok:true ~reply:"ack"
  | Engine.Event.Placed bin ->
      open_reply buf ~id ~ok:true ~reply:"placed";
      Buffer.add_string buf ",\"bin\":";
      Buffer.add_string buf (string_of_int bin)
  | Engine.Event.Removed bin ->
      open_reply buf ~id ~ok:true ~reply:"removed";
      Buffer.add_string buf ",\"bin\":";
      Buffer.add_string buf (string_of_int bin)
  | Engine.Event.Level v ->
      open_reply buf ~id ~ok:true ~reply:"level";
      Buffer.add_string buf ",\"value\":";
      Buffer.add_string buf (string_of_int v)
  | Engine.Event.Loads loads ->
      open_reply buf ~id ~ok:true ~reply:"loads";
      Buffer.add_string buf ",\"loads\":[";
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int v))
        loads;
      Buffer.add_char buf ']'
  | Engine.Event.Rejected msg ->
      open_reply buf ~id ~ok:false ~reply:"rejected";
      Buffer.add_string buf ",\"error\":\"";
      add_escaped buf msg;
      Buffer.add_char buf '"');
  close_reply buf

let add_pong buf ~id =
  open_reply buf ~id ~ok:true ~reply:"pong";
  close_reply buf

let add_error buf ~id msg =
  open_reply buf ~id ~ok:false ~reply:"error";
  Buffer.add_string buf ",\"error\":\"";
  add_escaped buf msg;
  Buffer.add_char buf '"';
  close_reply buf

let add_fields buf fields =
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      add_escaped buf k;
      Buffer.add_string buf "\":";
      Buffer.add_string buf (Experiment.Json.to_string ~indent:0 v))
    fields

let add_metrics buf ~id fields =
  open_reply buf ~id ~ok:true ~reply:"metrics";
  add_fields buf fields;
  close_reply buf

let add_stats buf ~id fields =
  open_reply buf ~id ~ok:true ~reply:"stats";
  add_fields buf fields;
  close_reply buf

let add_stats_text buf ~id text =
  open_reply buf ~id ~ok:true ~reply:"stats";
  Buffer.add_string buf ",\"format\":\"prom\",\"text\":\"";
  add_escaped buf text;
  Buffer.add_char buf '"';
  close_reply buf
