(* A cluster of shards behind one deterministic router.

   Routing is sequential in arrival order and independent of how the
   caller batches events — mutations queue per shard, and a shard
   applies its queue in global arrival order restricted to that shard.
   Together with the per-shard generators this makes the state after N
   events a pure function of the event prefix, regardless of batch
   boundaries (the batch-invariance property the tests pin down).

   Removal routing picks a shard with probability proportional to its
   router-tracked ball count, so the global removal law of scenario A
   (ball uniform among all balls) is exact.  For scenario B it is an
   approximation (exact B would weight by non-empty bins); insertion
   probes stay within the routed shard, which narrows d-choice to one
   shard's bins — both deviations are documented in DESIGN.md. *)

type config = {
  n : int;
  m : int;
  shards : int;
  process : Process.t;
  scenario : Core.Scenario.t;
  rule : Core.Scheduling_rule.t;
  repr : Core.Repr.t;
  seed : int;
}

type queue = {
  mutable evs : Engine.Event.t array;
  mutable slots : int array;  (* reply index in the current batch *)
  mutable len : int;
}

type t = {
  config : config;
  shards : Shard.t array;
  router : Prng.Rng.t;
  counts : int array;  (* router-tracked balls per shard *)
  mutable total : int;
  mutable seq : int;  (* mutation events routed since creation *)
  pool : Parallel.Pool.t option;
  queues : queue array;
  mutable tel : Telemetry.t option;
      (* When attached, route and shard-apply stages are timed into it;
         the telemetry-free path stays clock-call free. *)
}

let config t = t.config
let seq t = t.seq
let shard_count t = Array.length t.shards
let total_balls t = t.total
let shard t i = t.shards.(i)
let set_telemetry t tel = t.tel <- Some tel
let queue_depths t = Array.map (fun q -> q.len) t.queues

let validate_config c =
  if c.n <= 0 then invalid_arg "Serve.Cluster: n must be positive";
  if c.m < 0 then invalid_arg "Serve.Cluster: m must be non-negative";
  if c.shards <= 0 then invalid_arg "Serve.Cluster: shards must be positive";
  if c.shards > c.n then
    invalid_arg "Serve.Cluster: more shards than bins";
  if c.process = Process.Rbb then
    match Rbb.of_scheduling_rule c.rule with
    | Ok _ -> ()
    | Error e -> invalid_arg ("Serve.Cluster: " ^ e)

(* Contiguous ranges of near-equal size: the first [n mod shards]
   shards own one extra bin. *)
let shard_range c s =
  let base = c.n / c.shards and extra = c.n mod c.shards in
  let lo = (s * base) + min s extra in
  let len = base + if s < extra then 1 else 0 in
  (lo, len)

let initial_loads c =
  let q = c.m / c.n and r = c.m mod c.n in
  Array.init c.n (fun i -> if i < r then q + 1 else q)

let fresh_queue () = { evs = Array.make 64 Engine.Event.Step; slots = Array.make 64 0; len = 0 }

let build ~pool config mk_shard =
  validate_config config;
  let shards = Array.init config.shards mk_shard in
  let counts = Array.map Shard.balls shards in
  { config; shards;
    router = Prng.Rng.create ~seed:config.seed ();  (* replaced by callers *)
    counts;
    total = Array.fold_left ( + ) 0 counts;
    seq = 0; pool;
    queues = Array.init config.shards (fun _ -> fresh_queue ());
    tel = None }

let create ?pool config =
  validate_config config;
  let root = Prng.Rng.create ~seed:config.seed () in
  let router = Prng.Rng.split root in
  let loads = initial_loads config in
  let mk s =
    let lo, len = shard_range config s in
    let slice = Array.sub loads lo len in
    if Array.fold_left ( + ) 0 slice = 0 then
      invalid_arg
        (Printf.sprintf
           "Serve.Cluster.create: shard %d would start empty (n=%d m=%d \
            shards=%d) — every shard needs an initial ball; raise m (m >= n \
            always works) or lower the shard count"
           s config.n config.m config.shards);
    Shard.create ~id:s ~lo ~process:config.process ~scenario:config.scenario
      ~rule:config.rule ~repr:config.repr ~loads:slice
      ~rng:(Prng.Rng.split root)
  in
  let t = build ~pool config mk in
  (* Overwrite the placeholder router with the derived stream. *)
  { t with router }

(* {2 Routing} *)

(* Splitmix64 finalizer as a stateless key hash: inserts with the same
   key always land on the same shard, and keys spread uniformly. *)
let hash_key k =
  let open Int64 in
  let z = add (of_int k) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  (* Mask to OCaml's tagged-int range: [to_int] alone can overflow to a
     negative, which would make [mod shards] negative. *)
  to_int z land Stdlib.max_int

let pick_weighted t =
  (* Shard with probability proportional to its ball count; caller
     guarantees [t.total > 0]. *)
  let r = Prng.Rng.int t.router t.total in
  let rec go s acc =
    let acc = acc + t.counts.(s) in
    if r < acc then s else go (s + 1) acc
  in
  go 0 0

(* Route one mutation.  Returns [Some shard] and updates the router's
   ball accounting, or [None] (reject) — rejects consume no randomness,
   which keeps replay exact across them. *)
let route t ev =
  match ev with
  | Engine.Event.Insert key ->
      let s = hash_key key mod t.config.shards in
      t.counts.(s) <- t.counts.(s) + 1;
      t.total <- t.total + 1;
      Some s
  | Engine.Event.Remove ->
      if t.total = 0 then None
      else begin
        let s = pick_weighted t in
        t.counts.(s) <- t.counts.(s) - 1;
        t.total <- t.total - 1;
        Some s
      end
  | Engine.Event.Step ->
      (* Composite remove-then-insert stays within one shard: net zero
         ball movement, weighted like a removal. *)
      if t.total = 0 then None else Some (pick_weighted t)
  | _ -> invalid_arg "Serve.Cluster.route: not a single-shard mutation"

(* {2 Batch application} *)

let push q ev slot =
  let cap = Array.length q.evs in
  if q.len = cap then begin
    let evs = Array.make (2 * cap) Engine.Event.Step in
    let slots = Array.make (2 * cap) 0 in
    Array.blit q.evs 0 evs 0 cap;
    Array.blit q.slots 0 slots 0 cap;
    q.evs <- evs;
    q.slots <- slots
  end;
  q.evs.(q.len) <- ev;
  q.slots.(q.len) <- slot;
  q.len <- q.len + 1

let drain_shard t replies s =
  let q = t.queues.(s) in
  let shard = t.shards.(s) in
  let lo = Shard.lo shard in
  (match t.tel with
  | None ->
      for i = 0 to q.len - 1 do
        let reply =
          match Shard.apply shard q.evs.(i) with
          | Engine.Event.Placed bin -> Engine.Event.Placed (lo + bin)
          | Engine.Event.Removed bin -> Engine.Event.Removed (lo + bin)
          | reply -> reply
        in
        (* Broadcast events (rounds) carry slot -1: one reply was
           already written at route time, per-shard replies drop. *)
        if q.slots.(i) >= 0 then replies.(q.slots.(i)) <- reply
      done
  | Some tel ->
      (* Same loop with the shard-apply stage timed per event.  Hist
         cells are atomic, so recording is safe from pool workers. *)
      let t0 = Obs.Clock.now_ns () in
      for i = 0 to q.len - 1 do
        let ev = q.evs.(i) in
        let ta = Obs.Clock.now_ns () in
        let reply =
          match Shard.apply shard ev with
          | Engine.Event.Placed bin -> Engine.Event.Placed (lo + bin)
          | Engine.Event.Removed bin -> Engine.Event.Removed (lo + bin)
          | reply -> reply
        in
        Telemetry.observe_stage tel Telemetry.Apply
          ~op:(Telemetry.op_of_event ev)
          (Obs.Clock.ns_since ta);
        if q.slots.(i) >= 0 then replies.(q.slots.(i)) <- reply
      done;
      Telemetry.observe_drain tel ~shard:s ~depth:q.len
        (Obs.Clock.ns_since t0));
  q.len <- 0

let flush t replies =
  let pending = ref false in
  for s = 0 to Array.length t.queues - 1 do
    if t.queues.(s).len > 0 then pending := true
  done;
  if !pending then
    match t.pool with
    | Some pool when Array.length t.shards > 1 ->
        Parallel.Pool.run pool (fun w size ->
            let s = ref w in
            while !s < Array.length t.shards do
              drain_shard t replies !s;
              s := !s + size
            done)
    | _ ->
        for s = 0 to Array.length t.shards - 1 do
          drain_shard t replies s
        done

let max_load t =
  Array.fold_left (fun acc sh -> max acc (Shard.max_load sh)) 0 t.shards

let watermark t =
  Array.fold_left
    (fun acc sh -> max acc (Shard.watermark sh))
    min_int t.shards

let loads t =
  Array.concat (Array.to_list (Array.map Shard.loads t.shards))

let answer_query t ev =
  match ev with
  | Engine.Event.Probe -> Engine.Event.Level (max_load t)
  | Engine.Event.Watermark -> Engine.Event.Level (watermark t)
  | Engine.Event.Occupancy -> Engine.Event.Loads (loads t)
  | _ -> invalid_arg "Serve.Cluster.answer_query: not a query"

let route_and_queue t replies ev i =
  match ev with
  | Engine.Event.Round ->
      (* A round is a broadcast: every shard advances one synchronous
         round, in queue order relative to the inserts around it.  The
         single global reply is written here (slot -1 marks the
         per-shard copies); the router draws nothing and its ball
         accounting is untouched — rounds conserve balls. *)
      if t.config.process <> Process.Rbb then
        replies.(i) <-
          Engine.Event.Rejected "round unsupported (sequential cluster)"
      else begin
        for s = 0 to Array.length t.queues - 1 do
          push t.queues.(s) ev (-1)
        done;
        replies.(i) <- Engine.Event.Ack
      end
  | (Engine.Event.Step | Engine.Event.Remove)
    when t.config.process = Process.Rbb ->
      (* Rounds conserve balls: the round-synchronous family has no
         single-ball removal law, and its unit transition is [Round]. *)
      replies.(i) <-
        Engine.Event.Rejected "round-synchronous cluster: use round"
  | _ -> (
      match route t ev with
      | Some s -> push t.queues.(s) ev i
      | None -> replies.(i) <- Engine.Event.Rejected "empty")

let apply_batch t events =
  let n = Array.length events in
  let replies = Array.make n Engine.Event.Ack in
  for i = 0 to n - 1 do
    let ev = events.(i) in
    if Engine.Event.is_mutation ev then begin
      t.seq <- t.seq + 1;
      match t.tel with
      | None -> route_and_queue t replies ev i
      | Some tel ->
          let t0 = Obs.Clock.now_ns () in
          route_and_queue t replies ev i;
          Telemetry.observe_stage tel Telemetry.Route
            ~op:(Telemetry.op_of_event ev)
            (Obs.Clock.ns_since t0)
    end
    else begin
      (* Queries are barriers: they observe all prior mutations. *)
      flush t replies;
      match t.tel with
      | None -> replies.(i) <- answer_query t ev
      | Some tel ->
          (* The global answer is the query's apply stage. *)
          let t0 = Obs.Clock.now_ns () in
          replies.(i) <- answer_query t ev;
          Telemetry.observe_stage tel Telemetry.Apply
            ~op:(Telemetry.op_of_event ev)
            (Obs.Clock.ns_since t0)
    end
  done;
  flush t replies;
  replies

let apply t ev = (apply_batch t [| ev |]).(0)

(* {2 Snapshot state} *)

type state = {
  seq : int;
  router : int64 array;
  counts : int array;
  shards : Shard.state array;
}

let state t =
  (* Callers snapshot only at batch boundaries, where the queues are
     drained; assert rather than silently losing queued events. *)
  Array.iter
    (fun q -> if q.len > 0 then invalid_arg "Serve.Cluster.state: pending events")
    t.queues;
  { seq = t.seq; router = Prng.Rng.save t.router;
    counts = Array.copy t.counts;
    shards = Array.map Shard.state t.shards }

let of_state ?pool config (st : state) =
  validate_config config;
  if Array.length st.shards <> config.shards then
    invalid_arg "Serve.Cluster.of_state: shard count mismatch";
  if Array.length st.counts <> config.shards then
    invalid_arg "Serve.Cluster.of_state: counts length mismatch";
  let mk s =
    let lo, len = shard_range config s in
    let shard_st = st.shards.(s) in
    if shard_st.Shard.bins.Core.Bins.sn_n <> len then
      invalid_arg "Serve.Cluster.of_state: shard width mismatch";
    Shard.of_state ~id:s ~lo ~process:config.process
      ~scenario:config.scenario ~rule:config.rule ~repr:config.repr shard_st
  in
  let t = build ~pool config mk in
  let t = { t with router = Prng.Rng.restore st.router } in
  Array.blit st.counts 0 t.counts 0 config.shards;
  t.total <- Array.fold_left ( + ) 0 st.counts;
  t.seq <- st.seq;
  t
