(* Pipelined load driver for the serve daemon.

   Traffic is generated from a seeded {!Prng.Rng}, so a load run is
   reproducible; requests go out in batches of [batch] lines per write
   and the driver reads the matching batch of reply lines before the
   next write (half-duplex pipelining — one syscall pair per batch,
   which is what makes six-figure ops/sec reachable over a Unix
   socket). *)

type mix = { insert_pct : int; remove_pct : int; probe_pct : int }

let default_mix = { insert_pct = 45; remove_pct = 45; probe_pct = 10 }

let validate_mix m =
  if m.insert_pct < 0 || m.remove_pct < 0 || m.probe_pct < 0
     || m.insert_pct + m.remove_pct + m.probe_pct <> 100
  then invalid_arg "Serve.Load_gen: mix percentages must sum to 100"

type result = {
  ops : int;
  errors : int;
  seconds : float;
  ops_per_sec : float;
  latency : Obs.Hist.snapshot;
}

let connect addr =
  match addr with
  | Wire.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Wire.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      fd

let with_connection addr f =
  match connect addr with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (Wire.address_to_string addr)
           (Unix.error_message e))
  | fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> f ic oc)

(* Count the "ok":false replies without parsing: the server formats
   every reply with the ok field first. *)
let reply_failed line =
  let needle = "\"ok\":false" in
  let nl = String.length needle and ll = String.length line in
  let rec go i =
    i + nl <= ll && (String.sub line i nl = needle || go (i + 1))
  in
  go 0

let add_request buf g mix =
  let r = Prng.Rng.int g 100 in
  if r < mix.insert_pct then begin
    Buffer.add_string buf "{\"op\":\"insert\",\"key\":";
    Buffer.add_string buf
      (string_of_int (Int64.to_int (Int64.shift_right_logical (Prng.Rng.bits64 g) 2)));
    Buffer.add_string buf "}\n"
  end
  else if r < mix.insert_pct + mix.remove_pct then
    Buffer.add_string buf "{\"op\":\"remove\"}\n"
  else Buffer.add_string buf "{\"op\":\"probe\"}\n"

let run ~connect:addr ?(ops = 200_000) ?(batch = 512) ?(mix = default_mix)
    ?(seed = 0x10AD) () =
  validate_mix mix;
  if ops <= 0 then invalid_arg "Serve.Load_gen.run: ops must be positive";
  if batch <= 0 then invalid_arg "Serve.Load_gen.run: batch must be positive";
  let g = Prng.Rng.create ~seed () in
  with_connection addr (fun ic oc ->
      let buf = Buffer.create (batch * 32) in
      let errors = ref 0 in
      let sent = ref 0 in
      (* Client-observed round-trip per reply, measured from the
         batch's write: the honest closed-loop number — it includes
         queueing behind the pipeline, not just server service time. *)
      let lat = Obs.Hist.create () in
      let t0 = Unix.gettimeofday () in
      (try
         while !sent < ops do
           let k = min batch (ops - !sent) in
           Buffer.clear buf;
           for _ = 1 to k do
             add_request buf g mix
           done;
           Buffer.output_buffer oc buf;
           flush oc;
           let t_send = Obs.Clock.now_ns () in
           for _ = 1 to k do
             let line = input_line ic in
             Obs.Hist.observe lat (Int64.to_int (Obs.Clock.ns_since t_send));
             if reply_failed line then incr errors
           done;
           sent := !sent + k
         done;
         let seconds = Unix.gettimeofday () -. t0 in
         Ok
           { ops = !sent; errors = !errors; seconds;
             ops_per_sec = (if seconds > 0. then float_of_int !sent /. seconds else 0.);
             latency = Obs.Hist.snapshot lat }
       with
      | End_of_file -> Error "server closed the connection mid-run"
      | Sys_error msg -> Error msg))

(* {2 One-shot queries} *)

let query ~connect:addr lines =
  with_connection addr (fun ic oc ->
      try
        let replies =
          List.map
            (fun line ->
              output_string oc line;
              output_char oc '\n';
              flush oc;
              input_line ic)
            lines
        in
        Ok replies
      with
      | End_of_file -> Error "server closed the connection"
      | Sys_error msg -> Error msg)
