(** JSON-lines protocol of the allocation service.

    One request object per line; replies come back one line each, in
    request order, with an optional client-chosen ["id"] echoed.  See
    the implementation header for the full vocabulary — the event ops
    mirror {!Engine.Event} ([step], [insert], [remove], [probe],
    [occupancy], [watermark]) plus [ping], [metrics] (the legacy
    coarse counter dump) and [stats] (the full telemetry report,
    structured JSON or, with ["format":"prom"], a Prometheus text
    exposition). *)

(** Where a service listens (or a client connects). *)
type address = Unix_sock of string | Tcp of string * int

val address_to_string : address -> string

val parse_address : string -> (address, string) result
(** Accepts [unix:PATH] and [tcp:HOST:PORT] ([tcp::PORT] means
    127.0.0.1). *)

type stats_format = Stats_json | Stats_prom

type request =
  | Event of Engine.Event.t
  | Ping
  | Metrics  (** The [metrics] op — answered by the server, not the cluster. *)
  | Stats of stats_format
      (** The [stats] op: the telemetry report, structured JSON by
          default or Prometheus text with ["format":"prom"]. *)

val parse : string -> (int option * request, string) result
(** Parse one request line into its optional id and payload. *)

(** {2 Response formatting}

    All formatters append one newline-terminated JSON line to the
    caller's buffer. *)

val add_reply : Buffer.t -> id:int option -> Engine.Event.reply -> unit
val add_pong : Buffer.t -> id:int option -> unit
val add_error : Buffer.t -> id:int option -> string -> unit

val add_metrics :
  Buffer.t -> id:int option -> (string * Experiment.Json.t) list -> unit

val add_stats :
  Buffer.t -> id:int option -> (string * Experiment.Json.t) list -> unit
(** The [stats] reply with the report spliced in as top-level fields. *)

val add_stats_text : Buffer.t -> id:int option -> string -> unit
(** The [stats] reply carrying a text exposition escaped into the
    ["text"] field, tagged ["format":"prom"]. *)
