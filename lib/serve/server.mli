(** The serve daemon: a single-threaded select loop over the
    {!Wire} protocol, feeding batches into a {!Cluster} (optionally
    durable via {!Store}) whose shards apply in parallel on a
    {!Parallel.Pool}.

    Each select round collects the complete request lines from every
    readable client into one batch, applies it (in [max_batch]-sized
    chunks — harmless, since cluster application is batch-invariant)
    and answers each client in its own request order.  SIGTERM/SIGINT
    shut the loop down gracefully: flush, snapshot, unlink the Unix
    socket.  A [kill -9] is recovered on the next start by snapshot
    load plus journal replay.

    Every request is timed through its lifecycle stages into an
    always-on {!Telemetry} bank, reported by the [stats] wire op (JSON
    or Prometheus text).  With [trace] set, a sampled
    1-in-[trace_sample] request (at most one per round) additionally
    records a [serve.request]/[serve.decode]/[serve.apply]/[serve.reply]
    span tree, exported as a Perfetto trace on graceful shutdown. *)

type config = {
  listen : Wire.address;
  cluster : Cluster.config;
  dir : string option;
      (** State directory for snapshot + journal; [None] runs the
          service ephemeral (no durability). *)
  snapshot_every : int;
  sync : bool;  (** [fsync] the journal every batch. *)
  domains : int;  (** Pool width for shard application (1 = inline). *)
  max_batch : int;
  quiet : bool;
  trace : string option;
      (** Record sampled request spans and write a Perfetto trace here
          on graceful shutdown ([None] = no tracing). *)
  trace_sample : int;
      (** Trace every Nth request, at most one per round ([<= 0]
          disables sampling even when [trace] is set). *)
}

val default_config : listen:Wire.address -> cluster:Cluster.config -> config
(** Ephemeral, single-domain, [max_batch = 8192],
    [snapshot_every = 1_000_000], no tracing ([trace_sample = 64]). *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Serve until SIGTERM/SIGINT.  [on_ready] fires once the socket is
    listening (after the banner).
    @raise Failure when a state directory cannot be restored (it
    belongs to a service with different parameters, or is corrupt
    beyond the torn-tail rule). *)
