type 'state t = {
  step : Prng.Rng.t -> 'state -> 'state -> 'state * 'state;
  equal : 'state -> 'state -> bool;
  distance : 'state -> 'state -> int;
}

let make ~step ~equal ~distance = { step; equal; distance }

(* Each joint step derives one fresh substream and replays it into both
   copies.  Splitting (rather than copying the main generator) keeps the
   two marginal chains exact even when the copies consume different
   numbers of random draws (e.g. ADAP probing further in one copy). *)
let of_identity ~chain_step ~equal ~distance =
  let step g x y =
    let shared = Prng.Rng.split g in
    let replay = Prng.Rng.copy shared in
    let x' = chain_step shared x in
    let y' = chain_step replay y in
    (x', y')
  in
  { step; equal; distance }
