type 'state t = {
  step : Prng.Rng.t -> 'state -> 'state -> 'state * 'state;
  equal : 'state -> 'state -> bool;
  distance : 'state -> 'state -> int;
}

let make ~step ~equal ~distance = { step; equal; distance }

(* Each joint step derives one fresh substream and replays it into both
   copies.  Splitting (rather than copying the main generator) keeps the
   two marginal chains exact even when the copies consume different
   numbers of random draws (e.g. ADAP probing further in one copy). *)
let of_identity ~chain_step ~equal ~distance =
  let step g x y =
    let shared = Prng.Rng.split g in
    let replay = Prng.Rng.copy shared in
    let x' = chain_step shared x in
    let y' = chain_step replay y in
    (x', y')
  in
  { step; equal; distance }

(* Watermarking is off by default: the probe recomputes the coupling
   metric (typically O(n)), which the engine would otherwise evaluate
   after every step even when nobody reads it. *)
let sim ?metrics ?(copy = fun s -> s) c ~x ~y =
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  let x = ref x and y = ref y in
  Engine.Sim.make ~metrics ~watermark:false
    ~step:(fun g ->
      let x', y' = c.step g !x !y in
      x := x';
      y := y')
    ~observe:(fun () -> (copy !x, copy !y))
    ~reset:(fun (a, b) ->
      x := copy a;
      y := copy b)
    ~probe:(fun () ->
      if c.equal !x !y then 0 else Stdlib.max 1 (c.distance !x !y))
    ()
