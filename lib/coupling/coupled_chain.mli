(** Couplings of a Markov chain with itself (Definition 3.1).

    A coupling runs two copies [(X_t, Y_t)] of the same chain on shared
    randomness such that each copy, viewed alone, is a faithful copy of
    the chain.  Once the copies meet they stay together (all couplings in
    this library are sticky by construction: equal states receive equal
    updates). *)

type 'state t = {
  step : Prng.Rng.t -> 'state -> 'state -> 'state * 'state;
      (** One joint transition. *)
  equal : 'state -> 'state -> bool;
  distance : 'state -> 'state -> int;
      (** The path-coupling metric Δ; couplings report it so experiments
          can trace contraction. *)
}

val make :
  step:(Prng.Rng.t -> 'state -> 'state -> 'state * 'state) ->
  equal:('state -> 'state -> bool) ->
  distance:('state -> 'state -> int) ->
  'state t

val of_identity :
  chain_step:(Prng.Rng.t -> 'state -> 'state) ->
  equal:('state -> 'state -> bool) ->
  distance:('state -> 'state -> int) ->
  'state t
(** The {e identity coupling}: copy the generator state and feed both
    copies the very same random stream.  This is a valid coupling for any
    chain, and for chains driven by right-oriented functions (Lemma 3.4
    with [Φ = identity]) it coincides with the paper's coupling. *)

val sim :
  ?metrics:Engine.Metrics.t ->
  ?copy:('state -> 'state) ->
  'state t ->
  x:'state ->
  y:'state ->
  ('state * 'state) Engine.Sim.t
(** The coupling as an engine stepper over the pair.  The probe reports
    [0] exactly when the copies have met ([equal]) and otherwise the
    coupling distance clamped to at least 1, so
    [Engine.Sim.first_hit ~pred:(fun d -> d = 0)] is the coalescence
    time.  [copy] (default identity) deep-copies a state; supply it when
    states are mutable buffers so [observe]/[reset] detach from the live
    pair.  Watermarking is disabled: the probe is O(n), not a max-load. *)
