(** Delayed path coupling (Czumaj, Kanarek, Kutyłowski & Loryś — the
    companion technique the paper cites as [10]).

    Ordinary path coupling requires the one-step expected contraction
    [E Δ(X', Y') ≤ β Δ(X, Y)] with [β < 1].  Some chains only contract
    over a {e block} of [t₀] consecutive steps; delayed path coupling
    applies the same lemma to the [t₀]-step chain:

    {v if E Δ(X_{t+t₀}, Y_{t+t₀}) ≤ β Δ(X_t, Y_t) with β < 1
       then τ(ε) ≤ t₀ · ⌈ln(d_max ε⁻¹) / ln β⁻¹⌉ v}

    This module provides the bound calculator, a block-step combinator
    turning a coupling into its [t₀]-step version, and an empirical
    estimator of the block contraction factor. *)

val bound : block:int -> beta:float -> diameter:int -> eps:float -> float
(** The delayed bound above.
    @raise Invalid_argument unless [block >= 1], [0 <= beta < 1],
    [diameter >= 1] and [0 < eps < 1]. *)

val block_coupling : block:int -> 'state Coupled_chain.t -> 'state Coupled_chain.t
(** [block_coupling ~block c] is the coupling whose single step performs
    [block] steps of [c].
    @raise Invalid_argument if [block < 1]. *)

val block_beta_estimate :
  reps:int ->
  block:int ->
  rng:Prng.Rng.t ->
  'state Coupled_chain.t ->
  pair:(Prng.Rng.t -> 'state * 'state) ->
  float
(** Mean of [Δ after block steps / Δ before] over random pairs from
    [pair] (pairs need not be adjacent — delayed path coupling is
    typically applied to well-separated pairs).
    @raise Invalid_argument if [reps <= 0] or [block < 1], or if [pair]
    produces a pair at distance 0. *)
