let bound ~block ~beta ~diameter ~eps =
  if block < 1 then invalid_arg "Delayed.bound: block must be >= 1";
  if not (beta >= 0. && beta < 1.) then
    invalid_arg "Delayed.bound: beta must be in [0,1)";
  if diameter < 1 then invalid_arg "Delayed.bound: diameter must be >= 1";
  if not (eps > 0. && eps < 1.) then
    invalid_arg "Delayed.bound: eps must be in (0,1)";
  let blocks =
    if beta = 0. then 1.
    else ceil (log (float_of_int diameter /. eps) /. -.log beta)
  in
  float_of_int block *. Float.max 1. blocks

let block_coupling ~block c =
  if block < 1 then invalid_arg "Delayed.block_coupling: block must be >= 1";
  let step g x y =
    let x = ref x and y = ref y in
    for _ = 1 to block do
      let x', y' = c.Coupled_chain.step g !x !y in
      x := x';
      y := y'
    done;
    (!x, !y)
  in
  { c with Coupled_chain.step }

let block_beta_estimate ~reps ~block ~rng c ~pair =
  if reps <= 0 then invalid_arg "Delayed.block_beta_estimate: reps";
  let blocked = block_coupling ~block c in
  let acc = ref 0. in
  for _ = 1 to reps do
    let g = Prng.Rng.split rng in
    let x, y = pair g in
    let before = c.Coupled_chain.distance x y in
    if before = 0 then
      invalid_arg "Delayed.block_beta_estimate: pair at distance 0";
    let x', y' = blocked.Coupled_chain.step g x y in
    let after = c.Coupled_chain.distance x' y' in
    acc := !acc +. (float_of_int after /. float_of_int before)
  done;
  !acc /. float_of_int reps
