(** Coalescence-time measurement.

    For the couplings of Sections 4–6 the coalescence time from a pair of
    extremal states upper-bounds (and empirically tracks) the mixing time,
    hence the recovery time of the underlying allocation process.  This
    module runs a coupling until the copies meet and aggregates repeated
    measurements. *)

val time :
  'state Coupled_chain.t ->
  Prng.Rng.t ->
  'state ->
  'state ->
  limit:int ->
  int option
(** [time c g x y ~limit] is [Some t] for the first [t <= limit] with the
    copies equal, [None] if they have not met after [limit] steps.
    @raise Invalid_argument if [limit < 0]. *)

type measurement = {
  times : int array;       (** Coalescence times of successful runs. *)
  failures : int;          (** Runs that hit the limit without meeting. *)
  median : float;
  mean : float;
  q10 : float;
  q90 : float;
}

val measure :
  ?domains:int ->
  reps:int ->
  limit:int ->
  rng:Prng.Rng.t ->
  'state Coupled_chain.t ->
  init:(Prng.Rng.t -> 'state * 'state) ->
  measurement
(** [measure ~reps ~limit ~rng c ~init] repeats [reps] independent
    coalescence runs from (possibly randomized) initial pairs.  Quantile
    fields are [nan] when every run failed.

    [domains] (default 1) fans the repetitions out over OCaml domains;
    each repetition's generator is split from [rng] before the fan-out,
    so the result is bit-identical for any domain count.
    @raise Invalid_argument if [reps <= 0]. *)

val trace_distance :
  'state Coupled_chain.t ->
  Prng.Rng.t ->
  'state ->
  'state ->
  every:int ->
  limit:int ->
  (int * int) list
(** [(step, Δ)] samples of the coupling distance along one run, for
    contraction plots.  Stops early on coalescence. *)
