(** Coalescence-time measurement.

    For the couplings of Sections 4–6 the coalescence time from a pair of
    extremal states upper-bounds (and empirically tracks) the mixing time,
    hence the recovery time of the underlying allocation process.  This
    module runs a coupling until the copies meet and aggregates repeated
    measurements. *)

val time :
  'state Coupled_chain.t ->
  Prng.Rng.t ->
  'state ->
  'state ->
  limit:int ->
  int option
(** [time c g x y ~limit] is [Some t] for the first [t <= limit] with the
    copies equal, [None] if they have not met after [limit] steps.
    @raise Invalid_argument if [limit < 0]. *)

type measurement = Engine.Runner.measurement = {
  times : int array;       (** Coalescence times of successful runs. *)
  failures : int;          (** Runs that hit the limit without meeting. *)
  median : float;
  mean : float;
  q10 : float;
  q90 : float;
}
(** Re-exported from {!Engine.Runner} so engine and coupling results are
    interchangeable. *)

val measure_with_metrics :
  ?domains:int ->
  reps:int ->
  limit:int ->
  rng:Prng.Rng.t ->
  'state Coupled_chain.t ->
  init:(Prng.Rng.t -> 'state * 'state) ->
  measurement * Engine.Metrics.snapshot
(** Like {!measure}, additionally returning the aggregated engine
    counters of the fan-out (the experiment framework stores them
    per-cell in the JSON result sink). *)

val measure :
  ?domains:int ->
  reps:int ->
  limit:int ->
  rng:Prng.Rng.t ->
  'state Coupled_chain.t ->
  init:(Prng.Rng.t -> 'state * 'state) ->
  measurement
(** [measure ~reps ~limit ~rng c ~init] repeats [reps] independent
    coalescence runs from (possibly randomized) initial pairs.  Quantile
    fields are [nan] when every run failed.

    Implemented on {!Engine.Runner} over {!Coupled_chain.sim}: the
    fan-out, step order and aggregation are the engine's, and remain
    bit-identical to the historical bespoke loop for any [domains]
    (default 1).  With [BENCH_METRICS=1] the aggregated engine counters
    are printed.
    @raise Invalid_argument if [reps <= 0]. *)

val trace_distance :
  'state Coupled_chain.t ->
  Prng.Rng.t ->
  'state ->
  'state ->
  every:int ->
  limit:int ->
  (int * int) list
(** [(step, Δ)] samples of the coupling distance along one run, for
    contraction plots.  Stops early on coalescence. *)
