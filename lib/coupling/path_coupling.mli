(** The Path Coupling Lemma of Bubley and Dyer (paper, Lemma 3.1) as
    bound calculators.

    Given an integer metric Δ with diameter [d_max] on the state space, a
    set Γ of adjacent pairs along which any pair decomposes geodesically,
    and a coupling defined on Γ:

    {ul
    {- case (1): if [E Δ(X', Y') ≤ β·Δ(X,Y)] with [β < 1] then
       [τ(ε) ≤ ln(d_max·ε⁻¹) / (1 − β)];}
    {- case (2): if [β ≤ 1] and [Pr(Δ changes) ≥ α > 0] on Γ then
       [τ(ε) ≤ ⌈e·d_max²/α⌉·⌈ln ε⁻¹⌉].}} *)

val bound_contractive : beta:float -> diameter:int -> eps:float -> float
(** Case (1).
    @raise Invalid_argument unless [0 <= beta < 1], [diameter >= 1] and
    [0 < eps < 1]. *)

val bound_non_contractive : alpha:float -> diameter:int -> eps:float -> float
(** Case (2).
    @raise Invalid_argument unless [0 < alpha <= 1], [diameter >= 1] and
    [0 < eps < 1]. *)

val beta_estimate :
  reps:int ->
  rng:Prng.Rng.t ->
  'state Coupled_chain.t ->
  pair:(Prng.Rng.t -> 'state * 'state) ->
  float * float
(** [beta_estimate ~reps ~rng c ~pair] empirically estimates, over random
    adjacent pairs from [pair] (which must return pairs at Δ = 1), the
    contraction factor: returns [(mean Δ after one step, fraction of steps
    with Δ ≠ 1)] — estimates of β and α for the two lemma cases.
    @raise Invalid_argument if [reps <= 0]. *)
