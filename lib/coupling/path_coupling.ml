let check_common ~diameter ~eps name =
  if diameter < 1 then invalid_arg (name ^ ": diameter must be >= 1");
  if not (eps > 0. && eps < 1.) then invalid_arg (name ^ ": eps must be in (0,1)")

let bound_contractive ~beta ~diameter ~eps =
  check_common ~diameter ~eps "Path_coupling.bound_contractive";
  if not (beta >= 0. && beta < 1.) then
    invalid_arg "Path_coupling.bound_contractive: beta must be in [0,1)";
  log (float_of_int diameter /. eps) /. (1. -. beta)

let bound_non_contractive ~alpha ~diameter ~eps =
  check_common ~diameter ~eps "Path_coupling.bound_non_contractive";
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Path_coupling.bound_non_contractive: alpha must be in (0,1]";
  let d = float_of_int diameter in
  Float.of_int
    (int_of_float (ceil (exp 1. *. d *. d /. alpha)))
  *. ceil (log (1. /. eps))

let beta_estimate ~reps ~rng c ~pair =
  if reps <= 0 then invalid_arg "Path_coupling.beta_estimate: reps";
  let sum_delta = ref 0 in
  let changed = ref 0 in
  for _ = 1 to reps do
    let g = Prng.Rng.split rng in
    let x, y = pair g in
    let x', y' = c.Coupled_chain.step g x y in
    let d = c.Coupled_chain.distance x' y' in
    sum_delta := !sum_delta + d;
    if d <> 1 then incr changed
  done;
  let f = float_of_int reps in
  (float_of_int !sum_delta /. f, float_of_int !changed /. f)
