let time c g x y ~limit =
  if limit < 0 then invalid_arg "Coalescence.time: negative limit";
  let rec go t x y =
    if c.Coupled_chain.equal x y then Some t
    else if t >= limit then None
    else
      let x', y' = c.Coupled_chain.step g x y in
      go (t + 1) x' y'
  in
  go 0 x y

type measurement = {
  times : int array;
  failures : int;
  median : float;
  mean : float;
  q10 : float;
  q90 : float;
}

let measure ?(domains = 1) ~reps ~limit ~rng c ~init =
  if reps <= 0 then invalid_arg "Coalescence.measure: reps must be positive";
  (* Split all generators up front so the outcome does not depend on the
     domain count. *)
  let gens = Array.init reps (fun _ -> Prng.Rng.split rng) in
  let outcomes =
    Parallel.map_array ~domains
      (fun g ->
        let x, y = init g in
        time c g x y ~limit)
      gens
  in
  let times = ref [] in
  let failures = ref 0 in
  Array.iter
    (function
      | Some t -> times := t :: !times
      | None -> incr failures)
    outcomes;
  let times = Array.of_list (List.rev !times) in
  if Array.length times = 0 then
    { times; failures = !failures; median = nan; mean = nan; q10 = nan; q90 = nan }
  else begin
    let xs = Stats.Quantile.of_ints times in
    let s = Stats.Summary.create () in
    Array.iter (Stats.Summary.add s) xs;
    {
      times;
      failures = !failures;
      median = Stats.Quantile.median xs;
      mean = Stats.Summary.mean s;
      q10 = Stats.Quantile.quantile xs 0.1;
      q90 = Stats.Quantile.quantile xs 0.9;
    }
  end

let trace_distance c g x y ~every ~limit =
  if every <= 0 || limit < 0 then invalid_arg "Coalescence.trace_distance";
  let rec go t x y acc =
    let acc =
      if t mod every = 0 then (t, c.Coupled_chain.distance x y) :: acc else acc
    in
    if c.Coupled_chain.equal x y || t >= limit then List.rev acc
    else
      let x', y' = c.Coupled_chain.step g x y in
      go (t + 1) x' y' acc
  in
  go 0 x y []
