let time c g x y ~limit =
  if limit < 0 then invalid_arg "Coalescence.time: negative limit";
  let rec go t x y =
    if c.Coupled_chain.equal x y then Some t
    else if t >= limit then None
    else
      let x', y' = c.Coupled_chain.step g x y in
      go (t + 1) x' y'
  in
  go 0 x y

type measurement = Engine.Runner.measurement = {
  times : int array;
  failures : int;
  median : float;
  mean : float;
  q10 : float;
  q90 : float;
}

(* The generators are split and the coupling stepped in exactly the
   order of the historical bespoke loop (split all reps up front, then
   init and step each), so measurements are bit-identical to it for any
   domain count. *)
let measure_with_metrics ?(domains = 1) ~reps ~limit ~rng c ~init =
  if reps <= 0 then invalid_arg "Coalescence.measure: reps must be positive";
  let m, metrics =
    Engine.Runner.measure ~domains ~rng ~reps ~limit
      (fun g metrics ~limit ->
        let x, y = init g in
        let s = Coupled_chain.sim ~metrics c ~x ~y in
        Engine.Sim.first_hit s g ~pred:(fun d -> d = 0) ~limit)
  in
  if Engine.Metrics.dump_enabled () then
    Engine.Metrics.dump ~label:"coalescence" metrics;
  (m, metrics)

let measure ?domains ~reps ~limit ~rng c ~init =
  fst (measure_with_metrics ?domains ~reps ~limit ~rng c ~init)

let trace_distance c g x y ~every ~limit =
  if every <= 0 || limit < 0 then invalid_arg "Coalescence.trace_distance";
  let rec go t x y acc =
    let acc =
      if t mod every = 0 then (t, c.Coupled_chain.distance x y) :: acc else acc
    in
    if c.Coupled_chain.equal x y || t >= limit then List.rev acc
    else
      let x', y' = c.Coupled_chain.step g x y in
      go (t + 1) x' y' acc
  in
  go 0 x y []
