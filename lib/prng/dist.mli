(** Discrete probability distributions over [0, n).

    The paper's removal rules are exactly such distributions: {b A(v)}
    picks index [i] with probability [v_i / m] (scenario A) and {b B(v)}
    picks uniformly among the non-empty prefix (scenario B).  This module
    provides both ad-hoc weighted sampling and a precomputed alias table
    for repeated draws. *)

val weighted : Rng.t -> float array -> int
(** [weighted g w] samples index [i] with probability [w.(i) / sum w] by
    inverse CDF over a single uniform draw.  Couplings rely on this using
    exactly one [Rng.float] call.
    @raise Invalid_argument if [w] is empty, has a negative entry, or sums
    to zero. *)

val weighted_int : Rng.t -> int array -> int
(** [weighted_int g w] is [weighted] for non-negative integer weights,
    using exact integer arithmetic (a single [Rng.int] draw on the total
    weight).
    @raise Invalid_argument if [w] is empty, has a negative entry, or sums
    to zero. *)

val inverse_cdf : float array -> float -> int
(** [inverse_cdf w u] maps the uniform variate [u] in [0,1) to the index
    drawn by inverse CDF on weights [w].  Deterministic; this is the
    function shared between two coupled chains fed the same [u]. *)

type alias
(** Precomputed Walker alias table for O(1) sampling. *)

val alias_of_weights : float array -> alias
(** Build an alias table.  Same preconditions as {!weighted}. *)

val alias_sample : Rng.t -> alias -> int
(** O(1) draw from the table. *)

val alias_induced : alias -> float array
(** The exact law of {!alias_sample} on the given table, recovered
    symbolically from its probability and alias columns.  For a table
    built by {!alias_of_weights} this equals the normalized input
    weights up to float rounding — the property the conformance tests
    pin down without sampling noise. *)
