(** SplitMix64 pseudo-random number generator.

    A small, fast, splittable generator used here only to seed and split
    {!Xoshiro} states.  Reference: Steele, Lea & Flood, "Fast splittable
    pseudorandom number generators", OOPSLA 2014. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Any seed is acceptable. *)

val next : t -> int64
(** [next g] advances [g] and returns the next 64 pseudo-random bits. *)

val split : t -> t
(** [split g] advances [g] and returns a new statistically independent
    generator. *)

val state : t -> int64
(** Current state word — with {!create} this is the save/restore pair
    used by service snapshots ({!Serve.Journal}): a generator rebuilt by
    [create (state g)] replays exactly the stream [g] would have
    produced. *)
