type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let of_splitmix sm =
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  (* An all-zero state is a fixed point of the recurrence; SplitMix64 cannot
     produce four zero words from mixing, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let of_seed seed = of_splitmix (Splitmix64.create seed)

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next g =
  let open Int64 in
  let result = add (rotl (add g.s0 g.s3) 23) g.s0 in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let jump_table = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump g =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun jump_word ->
      for b = 0 to 63 do
        if Int64.logand jump_word (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 g.s0;
          s1 := Int64.logxor !s1 g.s1;
          s2 := Int64.logxor !s2 g.s2;
          s3 := Int64.logxor !s3 g.s3
        end;
        ignore (next g)
      done)
    jump_table;
  g.s0 <- !s0;
  g.s1 <- !s1;
  g.s2 <- !s2;
  g.s3 <- !s3

let state g = [| g.s0; g.s1; g.s2; g.s3 |]

let of_state words =
  if Array.length words <> 4 then invalid_arg "Xoshiro.of_state: need 4 words";
  if Array.for_all (Int64.equal 0L) words then
    invalid_arg "Xoshiro.of_state: all-zero state";
  { s0 = words.(0); s1 = words.(1); s2 = words.(2); s3 = words.(3) }
