(** Xoshiro256++ pseudo-random number generator.

    The workhorse generator of the library: fast, high quality, with a
    period of 2^256 - 1.  Reference: Blackman & Vigna, "Scrambled linear
    pseudorandom number generators", ACM TOMS 2021. *)

type t
(** Mutable generator state (256 bits). *)

val of_seed : int64 -> t
(** [of_seed seed] initialises the state from [seed] via SplitMix64, as
    recommended by the authors. *)

val of_splitmix : Splitmix64.t -> t
(** [of_splitmix sm] draws the four state words from [sm], advancing it. *)

val copy : t -> t
(** [copy g] is an independent duplicate of the current state of [g]; both
    copies subsequently produce the same stream.  Used to implement shared
    randomness in couplings. *)

val next : t -> int64
(** [next g] advances [g] and returns the next 64 pseudo-random bits. *)

val jump : t -> unit
(** [jump g] advances [g] by 2^128 steps, for independent substreams. *)

val state : t -> int64 array
(** The four state words, for service snapshots. *)

val of_state : int64 array -> t
(** Rebuild a generator from {!state}'s four words.
    @raise Invalid_argument on a wrong length or the all-zero state. *)
