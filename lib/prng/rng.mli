(** User-facing random number interface.

    All simulations in this library draw randomness exclusively through
    this module, so every experiment is reproducible from a seed, and
    couplings can share randomness by {!copy}-ing a generator. *)

type t
(** Mutable generator. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] returns a deterministic generator.  The default seed
    is 0x5EED. *)

val copy : t -> t
(** [copy g] duplicates the current state; the copy replays the same
    stream.  This is the primitive used to build identity couplings. *)

val split : t -> t
(** [split g] derives a statistically independent generator from [g],
    advancing [g].  Used to give independent streams to repetitions. *)

val bits64 : t -> int64
(** [bits64 g] returns 64 uniform pseudo-random bits. *)

val int : t -> int -> int
(** [int g bound] is uniform on [0, bound).  Unbiased (rejection sampling).
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform on the inclusive range [lo, hi].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** [float g] is uniform on [0, 1) with 53 random bits. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p].
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val geometric : t -> float -> int
(** [geometric g p] is the number of failures before the first success in
    Bernoulli(p) trials (support 0, 1, 2, ...).
    @raise Invalid_argument unless [0 < p <= 1]. *)

val pair_distinct : t -> int -> int * int
(** [pair_distinct g n] returns an unordered pair [(i, j)] with
    [0 <= i < j < n], uniform over all [n*(n-1)/2] pairs.
    @raise Invalid_argument if [n < 2]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val save : t -> int64 array
(** The full generator state as five words (four xoshiro256++ state
    words plus the splitmix64 word).  {!restore} rebuilds a generator
    that replays exactly the stream this one would have produced — the
    primitive behind service snapshots ({!Serve.Journal}). *)

val restore : int64 array -> t
(** Inverse of {!save}.
    @raise Invalid_argument on a malformed state vector. *)
