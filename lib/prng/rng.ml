type t = { gen : Xoshiro.t; sm : Splitmix64.t }

let create ?(seed = 0x5EED) () =
  let sm = Splitmix64.create (Int64.of_int seed) in
  { gen = Xoshiro.of_splitmix sm; sm }

let copy g = { gen = Xoshiro.copy g.gen; sm = Splitmix64.split g.sm }

let split g =
  let sm = Splitmix64.split g.sm in
  { gen = Xoshiro.of_splitmix sm; sm }

let bits64 g = Xoshiro.next g.gen

(* Lemire-style unbiased bounded sampling via rejection on the top bits. *)
let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* power of two: mask *)
    Int64.to_int (Int64.logand (bits64 g) (Int64.of_int (bound - 1)))
  else begin
    (* Rejection sampling on 62 bits to avoid sign issues. *)
    let mask = (1 lsl 62) - 1 in
    let limit = mask - (mask mod bound) in
    let rec draw () =
      let r = Int64.to_int (bits64 g) land mask in
      if r >= limit then draw () else r mod bound
    in
    draw ()
  end

let int_in g lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g =
  (* 53 uniform bits scaled to [0,1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int r *. 0x1.0p-53

let bool g = Int64.logand (bits64 g) 1L = 1L

let bernoulli g p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Rng.bernoulli: p not in [0,1]";
  float g < p

let geometric g p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p not in (0,1]";
  if p = 1. then 0
  else
    (* Inverse CDF: floor(log(1-u) / log(1-p)). *)
    let u = float g in
    int_of_float (floor (log1p (-.u) /. log1p (-.p)))

let pair_distinct g n =
  if n < 2 then invalid_arg "Rng.pair_distinct: need n >= 2";
  let i = int g n in
  let j0 = int g (n - 1) in
  let j = if j0 >= i then j0 + 1 else j0 in
  if i < j then (i, j) else (j, i)

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let save g = Array.append (Xoshiro.state g.gen) [| Splitmix64.state g.sm |]

let restore words =
  if Array.length words <> 5 then invalid_arg "Rng.restore: need 5 words";
  { gen = Xoshiro.of_state (Array.sub words 0 4);
    sm = Splitmix64.create words.(4) }
