let check_weights w =
  if Array.length w = 0 then invalid_arg "Dist: empty weight vector";
  let total = Array.fold_left (fun acc x ->
      if x < 0. then invalid_arg "Dist: negative weight" else acc +. x) 0. w
  in
  if total <= 0. then invalid_arg "Dist: zero total weight";
  total

let inverse_cdf w u =
  let total = check_weights w in
  let target = u *. total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let weighted g w = inverse_cdf w (Rng.float g)

let weighted_int g w =
  if Array.length w = 0 then invalid_arg "Dist: empty weight vector";
  let total = Array.fold_left (fun acc x ->
      if x < 0 then invalid_arg "Dist: negative weight" else acc + x) 0 w
  in
  if total <= 0 then invalid_arg "Dist: zero total weight";
  let target = Rng.int g total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc + w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0

type alias = { prob : float array; alias : int array }

(* Walker/Vose alias method: O(n) construction, O(1) sampling. *)
let alias_of_weights w =
  let total = check_weights w in
  let n = Array.length w in
  let scaled = Array.map (fun x -> x *. float_of_int n /. total) w in
  let prob = Array.make n 1. in
  let alias = Array.init n (fun i -> i) in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri (fun i p -> Queue.add i (if p < 1. then small else large)) scaled;
  while not (Queue.is_empty small) && not (Queue.is_empty large) do
    let s = Queue.pop small and l = Queue.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
    Queue.add l (if scaled.(l) < 1. then small else large)
  done;
  { prob; alias }

let alias_sample g { prob; alias } =
  let n = Array.length prob in
  let i = Rng.int g n in
  if Rng.float g < prob.(i) then i else alias.(i)

(* The law [alias_sample] actually draws from, computed symbolically
   from the table: column i is hit directly with mass prob.(i)/n and
   as the alias of every column pointing at it with the complementary
   mass.  Lets tests check table construction exactly, with no
   sampling noise. *)
let alias_induced { prob; alias } =
  let n = Array.length prob in
  let p = Array.make n 0. in
  for i = 0 to n - 1 do
    p.(i) <- p.(i) +. prob.(i);
    if prob.(i) < 1. then p.(alias.(i)) <- p.(alias.(i)) +. (1. -. prob.(i))
  done;
  let fn = float_of_int n in
  Array.map (fun x -> x /. fn) p
