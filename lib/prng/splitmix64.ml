type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = create (next g)

let state g = g.state
