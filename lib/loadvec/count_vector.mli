(** Multiset (count-vector) view of a normalized load vector.

    Stores the number of bins at each load level rather than the sorted
    load array.  Because Fact 3.2 realises every ⊕/⊖ at a class
    boundary, the multiset determines the normalized vector exactly, and
    the elementary moves of the dynamic processes become O(1) level
    shifts.  Queries scan the L = max_load + 1 occupied levels instead
    of the n ranks — the representation behind the count-backed stepper
    backends in {!Core.Dynamic_process}. *)

type t

val of_load_vector : Load_vector.t -> t
val to_load_vector : t -> Load_vector.t
(** Expand back to the sorted vector (O(n)). *)

val copy : t -> t

val set_from_load_vector : t -> Load_vector.t -> unit
(** Overwrite the state in place — the reset primitive of the simulation
    engine.  @raise Invalid_argument on a dimension mismatch. *)

val dim : t -> int
val total : t -> int
val support : t -> int
(** Number of non-empty bins (O(1)). *)

val max_load : t -> int
(** Highest occupied level, maintained incrementally. *)

val min_load : t -> int
val count : t -> int -> int
(** [count t l] is the number of bins carrying exactly [l] balls (0 for
    levels above [max_load]). *)

val equal : t -> t -> bool

val level_of_rank : t -> int -> int
(** Load of the bin at rank [r] of the descending sort (O(L)).
    @raise Invalid_argument unless [0 <= r < dim]. *)

val level_of_ball : t -> target:float -> int
(** Level at which the scenario-A inverse-CDF scan stops: the smallest
    descending-level prefix whose ball mass exceeds [target].  Matches
    the branch decisions of the rank-by-rank scan in
    [Scenario.remove_rank] bit-for-bit (integer partial sums compared
    against the same float target), so the array and count steppers
    remove from the same load class on the same draw.
    @raise Invalid_argument if the vector has no balls. *)

val eject_all : t -> int
(** One synchronous ejection: every non-empty bin drops one level at
    once — the whole count profile slides down by one.  Returns the
    number of balls ejected (the support before the call).
    O(max_level); the count-backend twin of
    {!Mutable_vector.eject_all}. *)

val shift_down : t -> int -> unit
(** [shift_down t l] moves one bin from level [l] to [l - 1] — the
    multiset form of ⊖ at a rank of load [l].
    @raise Invalid_argument if no bin sits at level [l >= 1]. *)

val shift_up : t -> int -> unit
(** [shift_up t l] moves one bin from level [l] to [l + 1] — the
    multiset form of ⊕ at a rank of load [l].
    @raise Invalid_argument if no bin sits at level [l]. *)
