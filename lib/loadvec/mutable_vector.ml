type t = {
  loads : int array;  (* sorted non-increasingly, non-negative *)
  mutable total : int;
  mutable support : int;  (* number of strictly positive entries *)
}

let of_load_vector lv =
  let loads = Load_vector.to_array lv in
  { loads; total = Load_vector.total lv; support = Load_vector.support lv }

let to_load_vector v = Load_vector.of_array v.loads

let copy v = { loads = Array.copy v.loads; total = v.total; support = v.support }

let set_from_load_vector v lv =
  if Load_vector.dim lv <> Array.length v.loads then
    invalid_arg "Mutable_vector.set_from_load_vector: dimension mismatch";
  let src = Load_vector.to_array lv in
  Array.blit src 0 v.loads 0 (Array.length src);
  v.total <- Load_vector.total lv;
  v.support <- Load_vector.support lv

let dim v = Array.length v.loads
let total v = v.total

let get v i =
  if i < 0 || i >= Array.length v.loads then invalid_arg "Mutable_vector.get";
  v.loads.(i)

let max_load v = v.loads.(0)
let min_load v = v.loads.(Array.length v.loads - 1)
let support v = v.support

let leftmost loads x =
  let rec bisect lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if loads.(mid) > x then bisect (mid + 1) hi else bisect lo mid
  in
  bisect 0 (Array.length loads)

let rightmost loads x =
  let rec bisect lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if loads.(mid) >= x then bisect mid hi else bisect lo (mid - 1)
  in
  bisect 0 (Array.length loads - 1)

let first_equal v i = leftmost v.loads (get v i)
let last_equal v i = rightmost v.loads (get v i)

let incr_at v i =
  let j = first_equal v i in
  if v.loads.(j) = 0 then v.support <- v.support + 1;
  v.loads.(j) <- v.loads.(j) + 1;
  v.total <- v.total + 1;
  j

let decr_at v i =
  if get v i = 0 then invalid_arg "Mutable_vector.decr_at: empty bin";
  let s = last_equal v i in
  v.loads.(s) <- v.loads.(s) - 1;
  if v.loads.(s) = 0 then v.support <- v.support - 1;
  v.total <- v.total - 1;
  s

(* Synchronous ejection (one round of an RBB-style parallel process):
   every strictly positive entry loses one ball.  The positives are a
   prefix of the descending sort and all drop by the same amount, so
   sortedness is preserved without any re-normalization. *)
let eject_all v =
  let q = v.support in
  for i = 0 to q - 1 do
    v.loads.(i) <- v.loads.(i) - 1;
    if v.loads.(i) = 0 then v.support <- v.support - 1
  done;
  v.total <- v.total - q;
  q

let equal a b = a.loads = b.loads

let l1_distance a b =
  if Array.length a.loads <> Array.length b.loads then
    invalid_arg "Mutable_vector.l1_distance: dimension mismatch";
  let acc = ref 0 in
  for i = 0 to Array.length a.loads - 1 do
    acc := !acc + abs (a.loads.(i) - b.loads.(i))
  done;
  !acc

let unsafe_loads v = v.loads
