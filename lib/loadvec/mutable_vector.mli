(** Mutable normalized load vectors.

    An in-place variant of {!Load_vector} for the inner loops of coupled
    simulations (Scenario-B coalescence runs take Θ(m²) steps, so per-step
    allocation matters).  All operations preserve the sortedness invariant
    via Fact 3.2 and cost O(log n). *)

type t

val of_load_vector : Load_vector.t -> t
val to_load_vector : t -> Load_vector.t
(** Snapshot as an immutable vector. *)

val copy : t -> t

val set_from_load_vector : t -> Load_vector.t -> unit
(** Overwrite the state with the given snapshot, in place — the reset
    primitive of the simulation engine.
    @raise Invalid_argument on a dimension mismatch. *)

val dim : t -> int
val total : t -> int
(** Ball count, maintained incrementally. *)

val get : t -> int -> int
val max_load : t -> int
val min_load : t -> int

val support : t -> int
(** Number of non-empty bins, maintained incrementally (O(1)). *)

val first_equal : t -> int -> int
val last_equal : t -> int -> int

val incr_at : t -> int -> int
(** [incr_at v i] performs [v ⊕ e_i] in place and returns the rank that
    was actually incremented (Fact 3.2's [j]). *)

val decr_at : t -> int -> int
(** [decr_at v i] performs [v ⊖ e_i] in place and returns the rank that
    was actually decremented (Fact 3.2's [s]).
    @raise Invalid_argument if the load at rank [i] is zero. *)

val eject_all : t -> int
(** One synchronous ejection: every strictly positive entry loses one
    ball (the deterministic phase of a repeated balls-into-bins round).
    Returns the number of balls ejected, i.e. the support before the
    call.  O(support); sortedness is preserved because the positives
    form a prefix that drops uniformly. *)

val equal : t -> t -> bool
(** Structural equality of the load vectors. *)

val l1_distance : t -> t -> int
val unsafe_loads : t -> int array
(** The underlying array; callers must not mutate it. *)
