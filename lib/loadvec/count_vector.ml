(* Multiset (count-vector) representation of a normalized load vector:
   [counts.(l)] is the number of bins carrying exactly [l] balls.  The
   paper's processes never distinguish bins of equal load (Fact 3.2
   realises every oplus/ominus at a class boundary), so the multiset is
   a lossless encoding of the normalized vector — and an elementary
   shift of one bin between adjacent levels is O(1) instead of the
   O(log n) bisection plus O(n)-array residency of Mutable_vector.

   Rank/mass scans run over levels in descending order.  With L the
   number of occupied levels (max load + 1), every query here is O(L);
   for the balanced states the dynamic processes live in, L is O(m/n +
   log log n) — effectively constant — which is where the steps/sec win
   over the array backend comes from. *)

type t = {
  n : int;
  mutable counts : int array;  (* counts.(l) = #bins with load l *)
  mutable max_level : int;  (* highest l with counts.(l) > 0, 0 if empty *)
  mutable total : int;  (* number of balls *)
}

let dim t = t.n
let total t = t.total
let max_load t = t.max_level
let support t = t.n - t.counts.(0)

let count t l = if l < 0 || l > t.max_level then 0 else t.counts.(l)

let min_load t =
  if t.counts.(0) > 0 then 0
  else begin
    let l = ref 1 in
    while t.counts.(!l) = 0 do
      incr l
    done;
    !l
  end

let of_load_vector lv =
  let n = Load_vector.dim lv in
  let max_level = Load_vector.max_load lv in
  let counts = Array.make (max_level + 1) 0 in
  for i = 0 to n - 1 do
    let l = Load_vector.get lv i in
    counts.(l) <- counts.(l) + 1
  done;
  { n; counts; max_level; total = Load_vector.total lv }

let to_load_vector t =
  let a = Array.make t.n 0 in
  let i = ref 0 in
  for l = t.max_level downto 0 do
    for _ = 1 to t.counts.(l) do
      a.(!i) <- l;
      incr i
    done
  done;
  Load_vector.of_array a

let copy t =
  { n = t.n; counts = Array.copy t.counts; max_level = t.max_level;
    total = t.total }

let set_from_load_vector t lv =
  if Load_vector.dim lv <> t.n then
    invalid_arg "Count_vector.set_from_load_vector: dimension mismatch";
  let max_level = Load_vector.max_load lv in
  if max_level >= Array.length t.counts then
    t.counts <- Array.make (max_level + 1) 0
  else Array.fill t.counts 0 (Array.length t.counts) 0;
  for i = 0 to t.n - 1 do
    let l = Load_vector.get lv i in
    t.counts.(l) <- t.counts.(l) + 1
  done;
  t.max_level <- max_level;
  t.total <- Load_vector.total lv

let equal a b =
  a.n = b.n && a.max_level = b.max_level
  && begin
       let ok = ref true in
       for l = 0 to a.max_level do
         if a.counts.(l) <> b.counts.(l) then ok := false
       done;
       !ok
     end

(* Rank [r] (0-indexed in the descending sort) has load >= l iff
   r < g(l), so the ranks of level l occupy [g(l+1), g(l)). *)
let level_of_rank t r =
  if r < 0 || r >= t.n then invalid_arg "Count_vector.level_of_rank";
  let rec scan l acc =
    if l < 0 then 0
    else
      let acc = acc + t.counts.(l) in
      if r < acc then l else scan (l - 1) acc
  in
  scan t.max_level 0

(* The level the scenario-A inverse-CDF scan stops at.  The array scan
   (Scenario.remove_rank) walks ranks accumulating integer loads and
   stops at the first rank with [target < acc]; within a level block of
   c bins the partial sums are A + l, A + 2l, ..., A + c*l, so the scan
   leaves the block iff [target >= A + c*l].  Comparing float [target]
   against exact integer partial sums reproduces the array scan's
   branch decisions bit-for-bit, so the level returned here is exactly
   the level of the rank the array scan picks. *)
let level_of_ball t ~target =
  if t.total <= 0 then invalid_arg "Count_vector.level_of_ball: no balls";
  let rec scan l acc =
    if l < 1 then min_load t |> Stdlib.max 1
    else
      let acc = acc + (l * t.counts.(l)) in
      if target < float_of_int acc then l else scan (l - 1) acc
  in
  scan t.max_level 0

let grow t l =
  if l >= Array.length t.counts then begin
    let cap = Stdlib.max (l + 1) (2 * Array.length t.counts) in
    let counts = Array.make cap 0 in
    Array.blit t.counts 0 counts 0 (Array.length t.counts);
    t.counts <- counts
  end

(* One bin moves from level l to l - 1 (a ball leaves it). *)
let shift_down t l =
  if l < 1 || l > t.max_level || t.counts.(l) = 0 then
    invalid_arg "Count_vector.shift_down: no bin at level";
  t.counts.(l) <- t.counts.(l) - 1;
  t.counts.(l - 1) <- t.counts.(l - 1) + 1;
  t.total <- t.total - 1;
  if l = t.max_level then
    while t.max_level > 0 && t.counts.(t.max_level) = 0 do
      t.max_level <- t.max_level - 1
    done

(* Synchronous ejection: every non-empty bin drops one level at once,
   i.e. the whole count profile slides down by one (level-0 bins stay).
   One O(max_level) pass — the count-backend twin of
   Mutable_vector.eject_all. *)
let eject_all t =
  let q = t.n - t.counts.(0) in
  for l = 1 to t.max_level do
    t.counts.(l - 1) <- (if l = 1 then t.counts.(0) else 0) + t.counts.(l)
  done;
  if t.max_level >= 1 then t.counts.(t.max_level) <- 0;
  t.total <- t.total - q;
  if t.max_level > 0 then t.max_level <- t.max_level - 1;
  q

(* One bin moves from level l to l + 1 (a ball lands in it). *)
let shift_up t l =
  if l < 0 || l > t.max_level || t.counts.(l) = 0 then
    invalid_arg "Count_vector.shift_up: no bin at level";
  grow t (l + 1);
  t.counts.(l) <- t.counts.(l) - 1;
  t.counts.(l + 1) <- t.counts.(l + 1) + 1;
  t.total <- t.total + 1;
  if l + 1 > t.max_level then t.max_level <- l + 1
