(** Normalized load vectors (paper, Section 3.1).

    A state of an allocation process on [n] bins is a {e normalized}
    vector [v] with [v.(0) >= v.(1) >= ... >= v.(n-1) >= 0]: entry [i] is
    the load of the bin of rank [i].  (We use 0-based ranks; the paper is
    1-based.)  The set of such vectors with [‖v‖₁ = m] is the paper's
    state space [Ω_m].

    The two primitive moves are [v ⊕ e_i] (add a ball at rank [i], then
    re-normalize) and [v ⊖ e_i] (remove one, then re-normalize).  By the
    paper's Fact 3.2 these are realised in place by incrementing the
    {e first} entry equal to [v.(i)], respectively decrementing the
    {e last} entry equal to [v.(i)] — which keeps the vector sorted. *)

type t
(** A normalized load vector.  Values of this type are immutable from the
    outside; every operation returns a fresh vector. *)

val of_array : int array -> t
(** [of_array a] normalizes (sorts) a copy of [a].
    @raise Invalid_argument if [a] is empty or has a negative entry. *)

val of_loads : n:int -> int list -> t
(** [of_loads ~n loads] places the listed loads into [n] bins, remaining
    bins empty.
    @raise Invalid_argument if [List.length loads > n] or any load is
    negative. *)

val uniform : n:int -> m:int -> t
(** The most balanced state: loads differ by at most one. *)

val all_in_one : n:int -> m:int -> t
(** The adversarial state with all [m] balls in a single bin. *)

val to_array : t -> int array
(** A fresh copy of the underlying (sorted, non-increasing) array. *)

val dim : t -> int
(** Number of bins [n]. *)

val total : t -> int
(** Number of balls [m = ‖v‖₁]. *)

val get : t -> int -> int
(** [get v i] is the load at rank [i] (0-based).
    @raise Invalid_argument if [i] is out of bounds. *)

val max_load : t -> int
val min_load : t -> int

val support : t -> int
(** Number of non-empty bins, the paper's [s = max{i : v_i > 0}] (as a
    count).  0 for the empty vector. *)

val first_equal : t -> int -> int
(** [first_equal v i] is the smallest rank [j] with [v_j = v_i]
    (Fact 3.2's [j = min{t : v_t = v_i}]). *)

val last_equal : t -> int -> int
(** [last_equal v i] is the largest rank [s] with [v_s = v_i]. *)

val oplus : t -> int -> t
(** [oplus v i] is [v ⊕ e_i]: the normalization of [v + e_i].
    @raise Invalid_argument if [i] is out of bounds. *)

val ominus : t -> int -> t
(** [ominus v i] is [v ⊖ e_i].
    @raise Invalid_argument if [i] is out of bounds or [v.(i) = 0]. *)

val is_normalized : int array -> bool
(** Whether an array is sorted non-increasingly with non-negative
    entries. *)

val delta : t -> t -> int
(** [delta v u] is the paper's metric [Δ(v,u) = ½‖v−u‖₁].  Requires both
    vectors to have the same dimension and total; then
    [Δ(v,u) = Σᵢ max(vᵢ−uᵢ, 0)].
    @raise Invalid_argument on dimension or total mismatch. *)

val l1_distance : t -> t -> int
(** [‖v−u‖₁], defined for any two vectors of the same dimension. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val counts_by_load : t -> (int * int) list
(** [(load, number of bins with that load)] pairs, decreasing load. *)
