(* Representation invariant: the array is sorted non-increasingly and all
   entries are non-negative.  Constructors establish it; operations rely on
   Fact 3.2 to preserve it. *)
type t = int array

let is_normalized a =
  let n = Array.length a in
  let rec check i =
    if i >= n then true
    else if a.(i) < 0 then false
    else if i > 0 && a.(i) > a.(i - 1) then false
    else check (i + 1)
  in
  n > 0 && check 0

let of_array a =
  if Array.length a = 0 then invalid_arg "Load_vector.of_array: empty";
  Array.iter
    (fun x -> if x < 0 then invalid_arg "Load_vector.of_array: negative load")
    a;
  let v = Array.copy a in
  Array.sort (fun x y -> Stdlib.compare y x) v;
  v

let of_loads ~n loads =
  if List.length loads > n then
    invalid_arg "Load_vector.of_loads: more loads than bins";
  let v = Array.make n 0 in
  List.iteri (fun i x ->
      if x < 0 then invalid_arg "Load_vector.of_loads: negative load";
      v.(i) <- x)
    loads;
  of_array v

let uniform ~n ~m =
  if n <= 0 || m < 0 then invalid_arg "Load_vector.uniform";
  let q = m / n and r = m mod n in
  Array.init n (fun i -> if i < r then q + 1 else q)

let all_in_one ~n ~m =
  if n <= 0 || m < 0 then invalid_arg "Load_vector.all_in_one";
  Array.init n (fun i -> if i = 0 then m else 0)

let to_array = Array.copy
let dim = Array.length
let total v = Array.fold_left ( + ) 0 v

let get v i =
  if i < 0 || i >= Array.length v then invalid_arg "Load_vector.get";
  v.(i)

let max_load v = v.(0)
let min_load v = v.(Array.length v - 1)

(* Ranks with positive load form a prefix, so the support size is the
   first rank holding 0 (binary search). *)
let support v =
  let n = Array.length v in
  let rec bisect lo hi =
    (* invariant: ranks < lo are > 0, ranks >= hi are 0 *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v.(mid) > 0 then bisect (mid + 1) hi else bisect lo mid
  in
  bisect 0 n

(* Leftmost rank with value [x], searching a non-increasing array in which
   [x] is known to occur. *)
let leftmost v x =
  let rec bisect lo hi =
    (* invariant: ranks < lo are > x, ranks >= hi are <= x *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v.(mid) > x then bisect (mid + 1) hi else bisect lo mid
  in
  bisect 0 (Array.length v)

let rightmost v x =
  let rec bisect lo hi =
    (* invariant: ranks <= lo are >= x, ranks > hi are < x *)
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if v.(mid) >= x then bisect mid hi else bisect lo (mid - 1)
  in
  bisect 0 (Array.length v - 1)

let first_equal v i = leftmost v (get v i)
let last_equal v i = rightmost v (get v i)

let oplus v i =
  let j = first_equal v i in
  let v' = Array.copy v in
  v'.(j) <- v'.(j) + 1;
  v'

let ominus v i =
  if get v i = 0 then invalid_arg "Load_vector.ominus: empty bin";
  let s = last_equal v i in
  let v' = Array.copy v in
  v'.(s) <- v'.(s) - 1;
  v'

let l1_distance v u =
  if Array.length v <> Array.length u then
    invalid_arg "Load_vector.l1_distance: dimension mismatch";
  let acc = ref 0 in
  for i = 0 to Array.length v - 1 do
    acc := !acc + abs (v.(i) - u.(i))
  done;
  !acc

let delta v u =
  if Array.length v <> Array.length u then
    invalid_arg "Load_vector.delta: dimension mismatch";
  if total v <> total u then invalid_arg "Load_vector.delta: total mismatch";
  l1_distance v u / 2

let equal v u = v = u
let compare = Stdlib.compare
let hash = Hashtbl.hash

let pp fmt v =
  Format.fprintf fmt "[%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int v)))

let counts_by_load v =
  let n = Array.length v in
  let rec group i acc =
    if i >= n then List.rev acc
    else
      let x = v.(i) in
      let j = rightmost v x in
      group (j + 1) ((x, j - i + 1) :: acc)
  in
  group 0 []
