(** Repeated balls-into-bins: the round-synchronous process family.

    RBB (Becchetti, Clementi, Natale, Pasquale, Posta; Cancrini &
    Posta; Los & Sauerwald) is the parallel-update sibling of the
    paper's sequential dynamic processes: in every {e round}, each
    non-empty bin ejects exactly one ball, and the ejected balls are
    re-placed one after another by a static rule — uniformly, or into
    the least loaded of [d] random bins.  The process is conservative
    (the ball count [m] never changes), so its state space is the same
    partition space the sequential scenario-B processes live in, and
    the whole exact pipeline ({!Markov.Exact_builder}, stationarity,
    mixing times) applies unchanged.

    The unit transition here is the {e round}, and the engine treats it
    as such: the sims below answer both [Step] and [Round] events with
    one full round, so every generic driver ([iterate], [first_hit],
    the conformance harness, the serve layer) works without change.

    A round over a normalized load vector splits into two phases:

    + {e ejection} — every strictly positive entry loses one ball.
      Deterministic, consumes no randomness, preserves sortedness
      (the positives are a prefix and drop uniformly).
    + {e re-placement} — the [q] ejected balls are inserted
      sequentially; each insertion lands at the maximum of [d] uniform
      ranks ([d = 1] for the uniform rule), exactly the ABKU\[d\]
      placement law of {!Core.Scheduling_rule}.

    Like the sequential processes, the round stepper exists in three
    representations ({!Core.Repr}): the sorted-array oracle, a
    draw-order-preserving count-vector twin (bit-identical traces), and
    a cutoff-table sampler (equal in law, one float per ball). *)

type rule =
  | Uniform  (** Each ejected ball lands in a bin chosen i.u.r. *)
  | Dchoice of int
      (** Each ejected ball probes [d >= 2] bins i.u.r. and lands in
          the least loaded (ties to the earlier probe). *)

val uniform : rule

val dchoice : int -> rule
(** @raise Invalid_argument if [d < 2] (use {!uniform} for [d = 1]). *)

val rule_name : rule -> string
(** ["uniform"] or ["d2"], ["d3"], ... *)

val rule_of_string : string -> (rule, string) result
(** Inverse of {!rule_name}; also accepts ["u"]. *)

val placement : rule -> Core.Scheduling_rule.t
(** The per-ball placement law as a scheduling rule: [Abku 1] for
    {!Uniform}, [Abku d] for [Dchoice d]. *)

val of_scheduling_rule : Core.Scheduling_rule.t -> (rule, string) result
(** The RBB rule whose placement is the given scheduling rule —
    [Abku 1 -> Uniform], [Abku d -> Dchoice d].  ADAP has no
    round-synchronous form (its probe count is data-adaptive, which
    breaks the fixed-draws-per-ball round structure): [Error]. *)

type t
(** An RBB process: a re-placement rule over [n] bins.  The ball count
    [m] is carried by the state, as in {!Core.Dynamic_process}. *)

val make : rule -> n:int -> t
(** @raise Invalid_argument if [n <= 0]. *)

val rule : t -> rule
val n : t -> int

val name : t -> string
(** ["RBB-u"] or ["RBB-d2"], ... — the subsystem tag every derived
    artifact (validate subjects, serve fingerprints) embeds. *)

(** {2 Round steppers}

    In-place rounds over each backing representation.  All return the
    number of placement probes issued ([q * d] with [q] the number of
    non-empty bins at round start). *)

val round_probes : t -> Prng.Rng.t -> Loadvec.Mutable_vector.t -> int
(** One round on the sorted-array oracle.  Consumes [q * d] int draws.
    @raise Invalid_argument on a dimension mismatch. *)

val round_in_place : t -> Prng.Rng.t -> Loadvec.Mutable_vector.t -> unit

val round_counts_probes : t -> Prng.Rng.t -> Loadvec.Count_vector.t -> int
(** The count-vector twin: identical draw sequence to {!round_probes},
    so on equal multisets the two steppers stay in lockstep forever.
    O(q(d + L)) per round instead of O(n + q(d + log n)). *)

val chain : t -> Loadvec.Load_vector.t Markov.Chain.t
(** One round per step, on immutable vectors — the adapter the
    empirical TV machinery consumes. *)

(** {2 Simulation engine adapters}

    Probes are accounted as [q * d] per round; draws record the real
    RNG consumption ([q * d] ints for the draw-order-preserving
    backends, [q] floats for the sampled one). *)

val sim :
  ?metrics:Engine.Metrics.t ->
  t ->
  Loadvec.Mutable_vector.t ->
  Loadvec.Load_vector.t Engine.Sim.t

val sim_counts :
  ?metrics:Engine.Metrics.t ->
  t ->
  Loadvec.Count_vector.t ->
  Loadvec.Load_vector.t Engine.Sim.t

val sim_counts_sampled :
  ?metrics:Engine.Metrics.t ->
  t ->
  Loadvec.Count_vector.t ->
  Loadvec.Load_vector.t Engine.Sim.t
(** Cutoff-table backend: the placement table is rebuilt once per round
    after the ejection (O(max load)), then each ball costs one float
    draw.  Equal in law to {!sim}, not in trace. *)

val sim_repr :
  ?metrics:Engine.Metrics.t ->
  ?repr:Core.Repr.t ->
  t ->
  Loadvec.Load_vector.t ->
  Loadvec.Load_vector.t Engine.Sim.t
(** Start a round sim from a snapshot under the chosen representation
    (default [Array_backed]).
    @raise Invalid_argument on a dimension mismatch. *)

(** {2 Exact one-round law}

    Feeds {!Markov.Exact_builder} exactly like
    {!Core.Dynamic_process.exact_transitions}: the state space is
    {!Markov.Partition_space.enumerate}[ ~n ~m] (the process is
    conservative). *)

val exact_transitions :
  t -> Loadvec.Load_vector.t -> (Loadvec.Load_vector.t * float) list
(** The distribution of the state after one round: deterministic
    ejection, then [q] placement laws
    ({!Core.Scheduling_rule.rank_distribution}) folded sequentially.
    Probabilities sum to 1. *)

(** {2 Identity-based service machine}

    The bin-identity lift of the round process, over {!Core.Bins} —
    what a serve shard hosts.  Destinations are planned sequentially
    against the post-ejection loads (the same law as the normalized
    round stepper), then realised as ball moves, so the ball count is
    conserved and checkpoint replay is exact. *)

val service_sim :
  ?metrics:Engine.Metrics.t -> t -> Core.Bins.t -> int array Engine.Sim.t
(** [Step] and [Round] both perform one round ([Ack]); [Insert] places
    one new ball by the placement rule ([Placed]); [Remove] is rejected
    (rounds conserve balls — a round-synchronous shard has no
    single-ball removal law); [Occupancy] snapshots the loads.
    @raise Invalid_argument on a dimension mismatch at reset. *)
