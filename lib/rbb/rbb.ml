module Mv = Loadvec.Mutable_vector
module Lv = Loadvec.Load_vector
module Cv = Loadvec.Count_vector
module Rule = Core.Scheduling_rule

type rule = Uniform | Dchoice of int

let uniform = Uniform

let dchoice d =
  if d < 2 then invalid_arg "Rbb.dchoice: d must be >= 2 (Uniform is d = 1)";
  Dchoice d

let d_of = function Uniform -> 1 | Dchoice d -> d

let rule_name = function
  | Uniform -> "uniform"
  | Dchoice d -> Printf.sprintf "d%d" d

let rule_of_string = function
  | "uniform" | "u" -> Ok Uniform
  | s ->
      let fail () =
        Error
          (Printf.sprintf
             "unknown RBB rule %S (expected \"uniform\" or \"d<k>\" with k >= 2)"
             s)
      in
      if String.length s >= 2 && s.[0] = 'd' then
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some d when d >= 2 -> Ok (Dchoice d)
        | _ -> fail ()
      else fail ()

let placement r = Rule.abku (d_of r)

let of_scheduling_rule = function
  | Rule.Abku 1 -> Ok Uniform
  | Rule.Abku d -> Ok (Dchoice d)
  | Rule.Adap _ ->
      Error
        "ADAP has no round-synchronous form (adaptive probe counts break \
         the fixed-draws-per-ball round structure)"

type t = { rule : rule; n : int }

let make rule ~n =
  if n <= 0 then invalid_arg "Rbb.make: n must be positive";
  { rule; n }

let rule t = t.rule
let n t = t.n

let name t =
  match t.rule with
  | Uniform -> "RBB-u"
  | Dchoice d -> Printf.sprintf "RBB-d%d" d

(* The placement of one ejected ball on a normalized vector: the
   maximum of d uniform ranks is the least loaded of d uniform bins
   (ABKU's law, Dynamic_process.choose_rank_direct with the loads read
   elided — ABKU never inspects them). *)
let draw_rank g ~n ~d =
  let best = ref (Prng.Rng.int g n) in
  for _ = 2 to d do
    let b = Prng.Rng.int g n in
    if b > !best then best := b
  done;
  !best

let round_probes t g v =
  if Mv.dim v <> t.n then invalid_arg "Rbb.round: dimension mismatch";
  let q = Mv.eject_all v in
  let d = d_of t.rule in
  for _ = 1 to q do
    ignore (Mv.incr_at v (draw_rank g ~n:t.n ~d))
  done;
  q * d

let round_in_place t g v = ignore (round_probes t g v)

(* Count-vector twin: the same int draws in the same order, with the
   rank-to-level lookup done by a level scan — lockstep with the array
   stepper on equal multisets, forever. *)
let round_counts_probes t g cv =
  if Cv.dim cv <> t.n then invalid_arg "Rbb.round_counts: dimension mismatch";
  let q = Cv.eject_all cv in
  let d = d_of t.rule in
  for _ = 1 to q do
    let level = Cv.level_of_rank cv (draw_rank g ~n:t.n ~d) in
    Cv.shift_up cv level
  done;
  q * d

let chain t =
  Markov.Chain.make (fun g lv ->
      let v = Mv.of_load_vector lv in
      round_in_place t g v;
      Mv.to_load_vector v)

(* The sims answer [Round] exactly as [Step]: the round IS the unit
   transition of this family, so every Step-driven rep loop (iterate,
   first_hit, conformance) advances it one round at a time. *)
let round_extend do_round g = function
  | Engine.Event.Round ->
      do_round g;
      Engine.Event.Ack
  | ev -> Engine.Event.Rejected (Engine.Event.name ev ^ " unsupported")

let sim ?metrics t v =
  if Mv.dim v <> t.n then invalid_arg "Rbb.sim: dimension mismatch";
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  let do_round g =
    let probes = round_probes t g v in
    Engine.Metrics.add_probes metrics probes;
    Engine.Metrics.add_draws metrics probes
  in
  Engine.Sim.make ~metrics
    ~extend:(round_extend do_round)
    ~step:do_round
    ~observe:(fun () -> Mv.to_load_vector v)
    ~reset:(fun lv -> Mv.set_from_load_vector v lv)
    ~probe:(fun () -> Mv.max_load v)
    ()

let sim_counts ?metrics t cv =
  if Cv.dim cv <> t.n then invalid_arg "Rbb.sim: dimension mismatch";
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  let do_round g =
    let probes = round_counts_probes t g cv in
    Engine.Metrics.add_probes metrics probes;
    Engine.Metrics.add_draws metrics probes
  in
  Engine.Sim.make ~metrics
    ~extend:(round_extend do_round)
    ~step:do_round
    ~observe:(fun () -> Cv.to_load_vector cv)
    ~reset:(fun lv -> Cv.set_from_load_vector cv lv)
    ~probe:(fun () -> Cv.max_load cv)
    ()

(* Cutoff-table backend: the ejection invalidates the whole CDF table
   (every non-empty level count moves), so it is rebuilt once per round
   — O(max load) — and then maintained through the round's placements
   with on_gain.  Each ball costs one float instead of d ints. *)
let sim_counts_sampled ?metrics t cv =
  if Cv.dim cv <> t.n then invalid_arg "Rbb.sim: dimension mismatch";
  let d = d_of t.rule in
  let module Tbl = Rule.Abku_table in
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  let do_round g =
    let q = Cv.eject_all cv in
    let table =
      Tbl.create ~d ~n:t.n ~max_level:(Cv.max_load cv) ~count:(Cv.count cv)
    in
    for _ = 1 to q do
      let dest = Tbl.draw_level table g in
      Cv.shift_up cv dest;
      Tbl.on_gain table (dest + 1)
    done;
    Engine.Metrics.add_probes metrics (q * d);
    Engine.Metrics.add_draws metrics q
  in
  Engine.Sim.make ~metrics
    ~extend:(round_extend do_round)
    ~step:do_round
    ~observe:(fun () -> Cv.to_load_vector cv)
    ~reset:(fun lv -> Cv.set_from_load_vector cv lv)
    ~probe:(fun () -> Cv.max_load cv)
    ()

let sim_repr ?metrics ?(repr = Core.Repr.Array_backed) t start =
  if Lv.dim start <> t.n then invalid_arg "Rbb.sim_repr: dimension mismatch";
  match repr with
  | Core.Repr.Array_backed -> sim ?metrics t (Mv.of_load_vector start)
  | Core.Repr.Count_backed -> sim_counts ?metrics t (Cv.of_load_vector start)
  | Core.Repr.Count_sampled ->
      sim_counts_sampled ?metrics t (Cv.of_load_vector start)

(* {2 Exact one-round law} *)

(* Deterministic ejection of a normalized vector: the positives are a
   prefix; decrementing the whole prefix keeps it sorted. *)
let eject lv =
  let a = Lv.to_array lv in
  let q = ref 0 in
  Array.iteri
    (fun i x ->
      if x > 0 then begin
        a.(i) <- x - 1;
        incr q
      end)
    a;
  (Lv.of_array a, !q)

(* One round = ejection, then q placement laws folded sequentially.
   Load_vector is a sorted int array, so polymorphic hashing over the
   intermediate distributions is sound. *)
let exact_transitions t lv =
  let w, q = eject lv in
  let place = placement t.rule in
  let dist = ref [ (w, 1.0) ] in
  for _ = 1 to q do
    let acc = Hashtbl.create 64 in
    List.iter
      (fun (v, p) ->
        let ins = Rule.rank_distribution place ~loads:(Lv.to_array v) in
        Array.iteri
          (fun r p_ins ->
            if p_ins > 0. then begin
              let v' = Lv.oplus v r in
              let cur = try Hashtbl.find acc v' with Not_found -> 0. in
              Hashtbl.replace acc v' (cur +. (p *. p_ins))
            end)
          ins)
      !dist;
    dist := Hashtbl.fold (fun v p out -> (v, p) :: out) acc []
  done;
  !dist

(* {2 Identity-based service machine} *)

(* One round over bin identities.  Destinations are planned
   sequentially against a working copy of the loads with all ejections
   already applied — the identity lift of the normalized two-phase
   round, so the load-vector projection has exactly the law of
   [round_probes].  The moves are then realised src by src; every src
   was non-empty at round start and loses exactly one ball, so each
   move finds its ball. *)
let service_round t g bins =
  let n = Core.Bins.n bins in
  let d = d_of t.rule in
  let work = Core.Bins.loads bins in
  let srcs = ref [] in
  for i = n - 1 downto 0 do
    if work.(i) > 0 then begin
      work.(i) <- work.(i) - 1;
      srcs := i :: !srcs
    end
  done;
  let q = List.length !srcs in
  let moves =
    List.map
      (fun src ->
        let best = ref (Prng.Rng.int g n) in
        for _ = 2 to d do
          let b = Prng.Rng.int g n in
          if work.(b) < work.(!best) then best := b
        done;
        work.(!best) <- work.(!best) + 1;
        (src, !best))
      !srcs
  in
  List.iter
    (fun (src, dst) ->
      if src <> dst then Core.Bins.move_ball bins ~src ~dst)
    moves;
  q * d

let service_sim ?metrics t bins =
  if Core.Bins.n bins <> t.n then
    invalid_arg "Rbb.service_sim: dimension mismatch";
  let place = placement t.rule in
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  let do_round g =
    let probes = service_round t g bins in
    Engine.Metrics.add_probes metrics probes;
    Engine.Metrics.add_draws metrics probes
  in
  let extend g = function
    | Engine.Event.Round ->
        do_round g;
        Engine.Metrics.watermark metrics (Core.Bins.max_load bins);
        Engine.Event.Ack
    | Engine.Event.Insert _ ->
        let bin, probes = Core.Bins.insert_with_rule place g bins in
        Engine.Metrics.add_probes metrics probes;
        Engine.Metrics.add_draws metrics probes;
        Engine.Metrics.watermark metrics (Core.Bins.max_load bins);
        Engine.Event.Placed bin
    | Engine.Event.Remove ->
        Engine.Event.Rejected "round-synchronous machine: no removal law"
    | Engine.Event.Occupancy -> Engine.Event.Loads (Core.Bins.loads bins)
    | ev -> Engine.Event.Rejected (Engine.Event.name ev ^ " unsupported")
  in
  Engine.Sim.make ~metrics ~extend ~step:do_round
    ~observe:(fun () -> Core.Bins.loads bins)
    ~reset:(fun loads -> Core.Bins.reset_loads bins loads)
    ~probe:(fun () -> Core.Bins.max_load bins)
    ()
