type spec = {
  scenario : Scenario.t;
  rule : Scheduling_rule.t;
  n : int;
  m : int;
}

let adversarial_bins spec =
  let loads = Array.make spec.n 0 in
  loads.(0) <- spec.m;
  Bins.of_loads loads

let balanced_bins spec =
  Bins.of_loads
    (Loadvec.Load_vector.to_array
       (Loadvec.Load_vector.uniform ~n:spec.n ~m:spec.m))

let time_to_max_load ~rng spec ~target ~limit =
  let system = System.create spec.scenario spec.rule (adversarial_bins spec) in
  System.run_until rng system ~pred:(fun s -> System.max_load s <= target) ~limit

let measure ?(domains = 1) ~rng ~reps spec ~target ~limit =
  if reps <= 0 then invalid_arg "Recovery.measure: reps must be positive";
  let gens = Array.init reps (fun _ -> Prng.Rng.split rng) in
  let outcomes =
    Parallel.map_array ~domains
      (fun g -> time_to_max_load ~rng:g spec ~target ~limit)
      gens
  in
  let times = ref [] in
  let failures = ref 0 in
  Array.iter
    (function
      | Some t -> times := t :: !times
      | None -> incr failures)
    outcomes;
  let times = Array.of_list (List.rev !times) in
  if Array.length times = 0 then
    {
      Coupling.Coalescence.times;
      failures = !failures;
      median = nan;
      mean = nan;
      q10 = nan;
      q90 = nan;
    }
  else begin
    let xs = Stats.Quantile.of_ints times in
    let s = Stats.Summary.create () in
    Array.iter (Stats.Summary.add s) xs;
    {
      Coupling.Coalescence.times;
      failures = !failures;
      median = Stats.Quantile.median xs;
      mean = Stats.Summary.mean s;
      q10 = Stats.Quantile.quantile xs 0.1;
      q90 = Stats.Quantile.quantile xs 0.9;
    }
  end

let trajectory ~rng spec ~every ~points =
  if every <= 0 || points < 0 then invalid_arg "Recovery.trajectory";
  let system = System.create spec.scenario spec.rule (adversarial_bins spec) in
  Array.init points (fun k ->
      if k > 0 then System.run rng system ~steps:every;
      (k * every, System.max_load system))

let stationary_max_load ~rng spec ~burn_in ~every ~samples =
  if burn_in < 0 || every <= 0 || samples <= 0 then
    invalid_arg "Recovery.stationary_max_load";
  let system = System.create spec.scenario spec.rule (balanced_bins spec) in
  System.run rng system ~steps:burn_in;
  let summary = Stats.Summary.create () in
  let worst = ref 0 in
  for _ = 1 to samples do
    System.run rng system ~steps:every;
    let ml = System.max_load system in
    Stats.Summary.add_int summary ml;
    if ml > !worst then worst := ml
  done;
  (Stats.Summary.mean summary, !worst)
