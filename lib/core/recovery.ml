type spec = {
  scenario : Scenario.t;
  rule : Scheduling_rule.t;
  n : int;
  m : int;
}

let adversarial_bins spec =
  let loads = Array.make spec.n 0 in
  loads.(0) <- spec.m;
  Bins.of_loads loads

let balanced_bins spec =
  Bins.of_loads
    (Loadvec.Load_vector.to_array
       (Loadvec.Load_vector.uniform ~n:spec.n ~m:spec.m))

(* The sim's probe is the O(1) max load, so first-hitting times come
   out of the generic engine driver with the historical draw order.
   [repr] selects the state backend ({!Repr}); the default array oracle
   keeps the draw order — and hence every measurement — bit-identical
   to the historical path. *)
let adversarial_sim ?metrics ?repr spec =
  System.sim ?metrics
    (System.create ?repr spec.scenario spec.rule (adversarial_bins spec))

let time_to_max_load ?repr ~rng spec ~target ~limit =
  let s = adversarial_sim ?repr spec in
  Engine.Sim.first_hit s rng ~pred:(fun ml -> ml <= target) ~limit

let measure_with_metrics ?(domains = 1) ?repr ~rng ~reps spec ~target ~limit =
  if reps <= 0 then invalid_arg "Recovery.measure: reps must be positive";
  let m, metrics =
    Engine.Runner.measure ~domains ~rng ~reps ~limit
      (fun g metrics ~limit ->
        let s = adversarial_sim ~metrics ?repr spec in
        Engine.Sim.first_hit s g ~pred:(fun ml -> ml <= target) ~limit)
  in
  if Engine.Metrics.dump_enabled () then
    Engine.Metrics.dump ~label:"recovery" metrics;
  (m, metrics)

let measure ?domains ?repr ~rng ~reps spec ~target ~limit =
  fst (measure_with_metrics ?domains ?repr ~rng ~reps spec ~target ~limit)

let trajectory ~rng spec ~every ~points =
  if every <= 0 || points < 0 then invalid_arg "Recovery.trajectory";
  let s = adversarial_sim spec in
  Array.init points (fun k ->
      if k > 0 then Engine.Sim.iterate s rng every;
      (k * every, Engine.Sim.probe s))

let stationary_max_load ~rng spec ~burn_in ~every ~samples =
  if burn_in < 0 || every <= 0 || samples <= 0 then
    invalid_arg "Recovery.stationary_max_load";
  let s =
    System.sim (System.create spec.scenario spec.rule (balanced_bins spec))
  in
  let summary = Stats.Summary.create () in
  let worst = ref 0 in
  Engine.Sim.sample_every s rng ~burn_in ~every ~samples (fun () ->
      Engine.Sim.probe s)
  |> List.iter (fun ml ->
         Stats.Summary.add_int summary ml;
         if ml > !worst then worst := ml);
  (Stats.Summary.mean summary, !worst)
