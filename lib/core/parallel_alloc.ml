type result = {
  loads : int array;
  max_load : int;
  rounds_used : int;
  fallback_balls : int;
}

let run g ~n ~m ~d ~rounds ?(threshold = fun r -> r) () =
  if n <= 0 then invalid_arg "Parallel_alloc.run: n must be positive";
  if m < 0 then invalid_arg "Parallel_alloc.run: negative m";
  if d < 1 then invalid_arg "Parallel_alloc.run: d must be >= 1";
  if rounds < 0 then invalid_arg "Parallel_alloc.run: negative rounds";
  let candidates = Array.init m (fun _ -> Array.init d (fun _ -> Prng.Rng.int g n)) in
  let loads = Array.make n 0 in
  let placed = Array.make m false in
  let requests = Array.make n 0 in
  let remaining = ref m in
  let rounds_used = ref 0 in
  let round = ref 1 in
  while !remaining > 0 && !round <= rounds do
    let cap = threshold !round in
    if cap < 1 then invalid_arg "Parallel_alloc.run: threshold must be >= 1";
    Array.fill requests 0 n 0;
    for ball = 0 to m - 1 do
      if not placed.(ball) then
        Array.iter (fun b -> requests.(b) <- requests.(b) + 1) candidates.(ball)
    done;
    (* A bin accepts this round when its pending demand fits under the
       cap together with what it already holds.  The decision is taken
       simultaneously for all bins (snapshot before placing), so an
       accepting bin ends the round with at most [cap] balls. *)
    let accepting = Array.init n (fun b -> loads.(b) + requests.(b) <= cap) in
    let accepts b = accepting.(b) in
    let progressed = ref false in
    for ball = 0 to m - 1 do
      if not placed.(ball) then begin
        match Array.find_opt accepts candidates.(ball) with
        | Some b ->
            loads.(b) <- loads.(b) + 1;
            placed.(ball) <- true;
            decr remaining;
            progressed := true
        | None -> ()
      end
    done;
    if !progressed then rounds_used := !round;
    incr round
  done;
  (* Sequential greedy fallback for stragglers. *)
  let fallback_balls = !remaining in
  for ball = 0 to m - 1 do
    if not placed.(ball) then begin
      let best = ref candidates.(ball).(0) in
      Array.iter (fun b -> if loads.(b) < loads.(!best) then best := b)
        candidates.(ball);
      loads.(!best) <- loads.(!best) + 1;
      placed.(ball) <- true
    end
  done;
  {
    loads;
    max_load = Array.fold_left Stdlib.max 0 loads;
    rounds_used = !rounds_used;
    fallback_balls;
  }

(* The protocol is a one-shot batch: one engine step is one complete
   run, and the observation is the last result. *)
let sim ?metrics ~n ~m ~d ~rounds ?threshold () =
  let metrics =
    match metrics with Some mt -> mt | None -> Engine.Metrics.create ()
  in
  let last = ref None in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      let r = run g ~n ~m ~d ~rounds ?threshold () in
      last := Some r;
      Engine.Metrics.add_probes metrics (m * d);
      Engine.Metrics.add_draws metrics (m * d))
    ~observe:(fun () ->
      match !last with
      | Some r -> r
      | None -> invalid_arg "Parallel_alloc.sim: observe before any step")
    ~reset:(fun r -> last := Some r)
    ~probe:(fun () -> match !last with Some r -> r.max_load | None -> 0)
    ()
