(** Right-oriented random functions (Definition 3.4) as a checkable
    property.

    A random function [D] from states to ranks is {e right-oriented}
    (with [Φ] the identity, which Lemma 3.4 establishes for ABKU and
    ADAP) when for every probe sequence [b] and states [v, u] of equal
    total:

    - if [D(v,b) = i < D(u,b)] then [u_i > v_i], and
    - if [D(u,b) = i < D(v,b)] then [v_i > u_i].

    Right-orientation is exactly what makes the shared-probe insertion
    coupling contract (Lemma 3.3).  This module offers pointwise and
    randomized checks, used by the test suite and available to users
    implementing custom rules. *)

val holds_pointwise :
  Scheduling_rule.t ->
  v:Loadvec.Load_vector.t ->
  u:Loadvec.Load_vector.t ->
  probe:Probe.t ->
  bool
(** Check Definition 3.4 for one probe sequence (the probe is read, and
    thereby fixed, for both states).
    @raise Invalid_argument on dimension mismatch. *)

val spot_check :
  Scheduling_rule.t ->
  Prng.Rng.t ->
  n:int ->
  m:int ->
  trials:int ->
  bool
(** Randomized search for a counterexample over random state pairs and
    probe sequences; [true] when none is found.
    @raise Invalid_argument if [n < 1], [m < 0] or [trials < 1]. *)

val contraction_holds :
  Scheduling_rule.t ->
  v:Loadvec.Load_vector.t ->
  u:Loadvec.Load_vector.t ->
  probe:Probe.t ->
  bool
(** The Lemma 3.3 consequence for one probe sequence:
    [‖v° − u°‖₁ ≤ ‖v − u‖₁] after the shared-probe insertions. *)
