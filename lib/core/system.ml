type t = { scenario : Scenario.t; rule : Scheduling_rule.t; bins : Bins.t }

let create ?(repr = Repr.Array_backed) scenario rule bins =
  if Bins.num_balls bins = 0 then invalid_arg "System.create: no balls";
  (* Bins is already count-indexed, so [Count_backed] changes nothing
     here; only [Count_sampled] switches the insertion machinery (and
     only ABKU has a sampled form — ADAP's threshold is adaptive). *)
  (match (repr, rule) with
  | Repr.Count_sampled, Scheduling_rule.Abku d ->
      Bins.enable_sampled_insertion bins ~d
  | _ -> ());
  { scenario; rule; bins }

let scenario t = t.scenario
let rule t = t.rule
let bins t = t.bins
let sampled t = Bins.sampled_insertion t.bins <> None

let insert g t =
  if sampled t then Bins.insert_sampled g t.bins
  else Bins.insert_with_rule t.rule g t.bins

let step_probes g t =
  (match t.scenario with
  | Scenario.A -> ignore (Bins.remove_ball_uniform g t.bins)
  | Scenario.B -> ignore (Bins.remove_from_random_nonempty g t.bins));
  let _, probes = insert g t in
  probes

let step g t = ignore (step_probes g t)

let run g t ~steps =
  if steps < 0 then invalid_arg "System.run: negative steps";
  for _ = 1 to steps do
    step g t
  done

let max_load t = Bins.max_load t.bins

(* Scenario A draws one registry slot, scenario B one non-empty bin;
   the insertion draws one bin per probe.  The [extend] handler below
   makes the sim a full event machine: the serve layer drives the same
   system through half-transitions ([Insert]/[Remove]) and queries,
   while the rep loops keep feeding it composite [Step]s.  Mutations
   against an empty system come back [Rejected] instead of raising —
   and consume no randomness — so a service batch survives them and
   journal replay stays exact. *)
let sim ?metrics t =
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  let extend g = function
    | Engine.Event.Insert _ ->
        let was_sampled = sampled t in
        let bin, probes = insert g t in
        Engine.Metrics.add_probes metrics probes;
        (* Sampled insertion consumes one float + one int, whatever the
           rule's probe count [d] (the law it reports as probes). *)
        Engine.Metrics.add_draws metrics (if was_sampled then 2 else probes);
        Engine.Metrics.watermark metrics (Bins.max_load t.bins);
        Engine.Event.Placed bin
    | Engine.Event.Remove ->
        if Bins.num_balls t.bins = 0 then Engine.Event.Rejected "empty"
        else begin
          let bin =
            match t.scenario with
            | Scenario.A -> Bins.remove_ball_uniform g t.bins
            | Scenario.B -> Bins.remove_from_random_nonempty g t.bins
          in
          Engine.Metrics.add_draws metrics 1;
          Engine.Event.Removed bin
        end
    | Engine.Event.Occupancy -> Engine.Event.Loads (Bins.loads t.bins)
    | ev -> Engine.Event.Rejected (Engine.Event.name ev ^ " unsupported")
  in
  Engine.Sim.make ~metrics ~extend
    ~step:(fun g ->
      let probes = step_probes g t in
      Engine.Metrics.add_probes metrics probes;
      Engine.Metrics.add_draws metrics (1 + if sampled t then 2 else probes))
    ~observe:(fun () -> Bins.loads t.bins)
    ~reset:(fun loads -> Bins.reset_loads t.bins loads)
    ~probe:(fun () -> Bins.max_load t.bins)
    ()

let run_until g t ~pred ~limit =
  if limit < 0 then invalid_arg "System.run_until: negative limit";
  let rec go k =
    if pred t then Some k
    else if k >= limit then None
    else begin
      step g t;
      go (k + 1)
    end
  in
  go 0
