module Mv = Loadvec.Mutable_vector

type t = { name : string; weights : int array -> float array }

let name t = t.name

let make ~name weights = { name; weights }

let scenario_a =
  make ~name:"ball i.u.r. (A)" (fun loads ->
      Array.map float_of_int loads)

let scenario_b =
  make ~name:"non-empty bin i.u.r. (B)" (fun loads ->
      Array.map (fun l -> if l > 0 then 1. else 0.) loads)

let load_squared =
  make ~name:"load-squared" (fun loads ->
      Array.map (fun l -> float_of_int (l * l)) loads)

let heaviest =
  make ~name:"fullest bin" (fun loads ->
      let top = Array.fold_left Stdlib.max 0 loads in
      Array.map (fun l -> if l = top && l > 0 then 1. else 0.) loads)

let remove_rank t v ~u =
  if Mv.total v <= 0 then invalid_arg "Removal.remove_rank: no balls";
  let loads = Mv.unsafe_loads v in
  let w = t.weights loads in
  if Array.length w <> Array.length loads then
    invalid_arg "Removal.remove_rank: weight arity mismatch";
  let total = ref 0. in
  Array.iteri
    (fun i x ->
      if x < 0. then invalid_arg "Removal.remove_rank: negative weight";
      if x > 0. && loads.(i) = 0 then
        invalid_arg "Removal.remove_rank: weight on empty bin";
      total := !total +. x)
    w;
  if !total <= 0. then invalid_arg "Removal.remove_rank: all-zero weights";
  Prng.Dist.inverse_cdf w u

let insert_shared rule probe v =
  let rank, _ =
    Scheduling_rule.choose_rank rule ~loads:(Mv.unsafe_loads v) ~probe
  in
  ignore (Mv.incr_at v rank)

let step t rule g v =
  let u = Prng.Rng.float g in
  ignore (Mv.decr_at v (remove_rank t v ~u));
  let probe = Probe.create g ~n:(Mv.dim v) in
  insert_shared rule probe v

let coupled t rule =
  let step g x y =
    let u = Prng.Rng.float g in
    ignore (Mv.decr_at x (remove_rank t x ~u));
    ignore (Mv.decr_at y (remove_rank t y ~u));
    let probe = Probe.create g ~n:(Mv.dim x) in
    insert_shared rule probe x;
    insert_shared rule probe y;
    (x, y)
  in
  Coupling.Coupled_chain.make ~step ~equal:Mv.equal ~distance:(fun a b ->
      Mv.l1_distance a b / 2)
