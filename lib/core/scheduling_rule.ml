type t = Abku of int | Adap of Adaptive.t

let abku d =
  if d < 1 then invalid_arg "Scheduling_rule.abku: d must be >= 1";
  Abku d

let adap x = Adap x

let name = function
  | Abku d -> Printf.sprintf "ABKU[%d]" d
  | Adap x -> Printf.sprintf "ADAP(%s)" (Adaptive.name x)

let probe_cap = 1_000_000

exception Probe_cap_exceeded of { n : int; x : string; cap : int }

let () =
  Printexc.register_printer (function
    | Probe_cap_exceeded { n; x; cap } ->
        Some
          (Printf.sprintf
             "Probe_cap_exceeded: rule %s issued more than %d probes on %d \
              bins (the threshold sequence never released the insertion)"
             x cap n)
    | _ -> None)

let probe_cap_exceeded rule ~n =
  raise (Probe_cap_exceeded { n; x = name rule; cap = probe_cap })

let choose_rank rule ~loads ~probe =
  match rule with
  | Abku d -> (Probe.prefix_max probe (d - 1), d)
  | Adap x ->
      let rec go t =
        if t > probe_cap then
          probe_cap_exceeded rule ~n:(Array.length loads);
        let best = Probe.prefix_max probe (t - 1) in
        if Adaptive.threshold x loads.(best) <= t then (best, t) else go (t + 1)
      in
      go 1

(* Branch-free ABKU[d] insertion: on a normalized vector the chosen
   rank is the maximum of d uniform ranks, whose CDF at the level
   boundaries is B(l) = (g(l)/n)^d with g(l) the number of bins of load
   >= l.  The table keeps g and B per level; an elementary shift of one
   bin between adjacent levels changes a single g entry, so maintenance
   is O(1) per move, and a draw is one float plus an ascending scan of
   the occupied levels (no per-probe branching or memory chasing). *)
module Abku_table = struct
  type table = {
    d : int;
    n : int;
    mutable geq : int array;  (* geq.(l) = #bins with load >= l *)
    mutable b : float array;  (* b.(l) = (geq.(l) / n)^d *)
    mutable max_level : int;  (* highest l with geq.(l) > 0 *)
  }

  let cdf t l = (float_of_int t.geq.(l) /. float_of_int t.n) ** float_of_int t.d

  let create ~d ~n ~max_level ~count =
    if d < 1 then invalid_arg "Abku_table.create: d must be >= 1";
    if n <= 0 then invalid_arg "Abku_table.create: n must be positive";
    let cap = max_level + 2 in
    let t =
      { d; n; geq = Array.make cap 0; b = Array.make cap 0.; max_level }
    in
    (* Suffix sums of the level counts. *)
    let acc = ref 0 in
    for l = max_level downto 1 do
      acc := !acc + count l;
      t.geq.(l) <- !acc;
      t.b.(l) <- cdf t l
    done;
    t.geq.(0) <- n;
    t.b.(0) <- 1.;
    while t.max_level > 0 && t.geq.(t.max_level) = 0 do
      t.max_level <- t.max_level - 1
    done;
    t

  let grow t l =
    if l >= Array.length t.geq then begin
      let cap = Stdlib.max (l + 1) (2 * Array.length t.geq) in
      let geq = Array.make cap 0 and b = Array.make cap 0. in
      Array.blit t.geq 0 geq 0 (Array.length t.geq);
      Array.blit t.b 0 b 0 (Array.length t.b);
      t.geq <- geq;
      t.b <- b
    end

  (* A bin rose from level [l - 1] to [l]: only g(l) changes. *)
  let on_gain t l =
    if l < 1 then invalid_arg "Abku_table.on_gain: level must be >= 1";
    grow t l;
    t.geq.(l) <- t.geq.(l) + 1;
    t.b.(l) <- cdf t l;
    if l > t.max_level then t.max_level <- l

  (* A bin fell from level [l] to [l - 1]: only g(l) changes. *)
  let on_loss t l =
    if l < 1 || t.geq.(l) <= 0 then
      invalid_arg "Abku_table.on_loss: no bin at level";
    t.geq.(l) <- t.geq.(l) - 1;
    t.b.(l) <- cdf t l;
    while t.max_level > 0 && t.geq.(t.max_level) = 0 do
      t.max_level <- t.max_level - 1
    done

  (* P(level = l) = B(l) - B(l + 1): exactly the mass the rank law
     ((j+1)/n)^d - (j/n)^d puts on the rank class of level l. *)
  let draw_level t g =
    let u = Prng.Rng.float g in
    let l = ref 0 in
    while !l < t.max_level && u < t.b.(!l + 1) do
      incr l
    done;
    !l

  let level_distribution t =
    Array.init (t.max_level + 1) (fun l ->
        let hi = if l = t.max_level then 0. else t.b.(l + 1) in
        t.b.(l) -. hi)
end

(* Dynamic program over (probe count, best rank so far): alive.(r) is the
   probability mass that has taken t probes, has best rank r, and has not
   yet stopped.  A state stops at time t iff x_{load r} <= t. *)
let adap_dp x ~loads ~emit =
  let n = Array.length loads in
  let fn = float_of_int n in
  let alive = Array.make n (1. /. fn) in
  let t = ref 1 in
  let remaining = ref 1. in
  while !remaining > 1e-15 do
    if !t > probe_cap then probe_cap_exceeded (Adap x) ~n;
    (* Emit the mass that stops at time t. *)
    for r = 0 to n - 1 do
      if alive.(r) > 0. && Adaptive.threshold x loads.(r) <= !t then begin
        emit r !t alive.(r);
        remaining := !remaining -. alive.(r);
        alive.(r) <- 0.
      end
    done;
    (* Advance the survivors by one probe: new best = max(best, uniform). *)
    if !remaining > 1e-15 then begin
      let next = Array.make n 0. in
      let below = ref 0. in
      for r = 0 to n - 1 do
        next.(r) <- (alive.(r) *. float_of_int (r + 1) /. fn) +. (!below /. fn);
        below := !below +. alive.(r)
      done;
      Array.blit next 0 alive 0 n
    end;
    incr t
  done

let rank_distribution rule ~loads =
  let n = Array.length loads in
  if n = 0 then invalid_arg "Scheduling_rule.rank_distribution: empty vector";
  match rule with
  | Abku d ->
      let fn = float_of_int n in
      Array.init n (fun j ->
          ((float_of_int (j + 1) /. fn) ** float_of_int d)
          -. ((float_of_int j /. fn) ** float_of_int d))
  | Adap x ->
      let dist = Array.make n 0. in
      adap_dp x ~loads ~emit:(fun r _t p -> dist.(r) <- dist.(r) +. p);
      dist

let expected_probes rule ~loads =
  match rule with
  | Abku d -> float_of_int d
  | Adap x ->
      let acc = ref 0. in
      adap_dp x ~loads ~emit:(fun _r t p -> acc := !acc +. (float_of_int t *. p));
      !acc
