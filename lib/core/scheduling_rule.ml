type t = Abku of int | Adap of Adaptive.t

let abku d =
  if d < 1 then invalid_arg "Scheduling_rule.abku: d must be >= 1";
  Abku d

let adap x = Adap x

let name = function
  | Abku d -> Printf.sprintf "ABKU[%d]" d
  | Adap x -> Printf.sprintf "ADAP(%s)" (Adaptive.name x)

let probe_cap = 1_000_000

exception Probe_cap_exceeded of { n : int; x : string; cap : int }

let () =
  Printexc.register_printer (function
    | Probe_cap_exceeded { n; x; cap } ->
        Some
          (Printf.sprintf
             "Probe_cap_exceeded: rule %s issued more than %d probes on %d \
              bins (the threshold sequence never released the insertion)"
             x cap n)
    | _ -> None)

let probe_cap_exceeded rule ~n =
  raise (Probe_cap_exceeded { n; x = name rule; cap = probe_cap })

let choose_rank rule ~loads ~probe =
  match rule with
  | Abku d -> (Probe.prefix_max probe (d - 1), d)
  | Adap x ->
      let rec go t =
        if t > probe_cap then
          probe_cap_exceeded rule ~n:(Array.length loads);
        let best = Probe.prefix_max probe (t - 1) in
        if Adaptive.threshold x loads.(best) <= t then (best, t) else go (t + 1)
      in
      go 1

(* Dynamic program over (probe count, best rank so far): alive.(r) is the
   probability mass that has taken t probes, has best rank r, and has not
   yet stopped.  A state stops at time t iff x_{load r} <= t. *)
let adap_dp x ~loads ~emit =
  let n = Array.length loads in
  let fn = float_of_int n in
  let alive = Array.make n (1. /. fn) in
  let t = ref 1 in
  let remaining = ref 1. in
  while !remaining > 1e-15 do
    if !t > probe_cap then probe_cap_exceeded (Adap x) ~n;
    (* Emit the mass that stops at time t. *)
    for r = 0 to n - 1 do
      if alive.(r) > 0. && Adaptive.threshold x loads.(r) <= !t then begin
        emit r !t alive.(r);
        remaining := !remaining -. alive.(r);
        alive.(r) <- 0.
      end
    done;
    (* Advance the survivors by one probe: new best = max(best, uniform). *)
    if !remaining > 1e-15 then begin
      let next = Array.make n 0. in
      let below = ref 0. in
      for r = 0 to n - 1 do
        next.(r) <- (alive.(r) *. float_of_int (r + 1) /. fn) +. (!below /. fn);
        below := !below +. alive.(r)
      done;
      Array.blit next 0 alive 0 n
    end;
    incr t
  done

let rank_distribution rule ~loads =
  let n = Array.length loads in
  if n = 0 then invalid_arg "Scheduling_rule.rank_distribution: empty vector";
  match rule with
  | Abku d ->
      let fn = float_of_int n in
      Array.init n (fun j ->
          ((float_of_int (j + 1) /. fn) ** float_of_int d)
          -. ((float_of_int j /. fn) ** float_of_int d))
  | Adap x ->
      let dist = Array.make n 0. in
      adap_dp x ~loads ~emit:(fun r _t p -> dist.(r) <- dist.(r) +. p);
      dist

let expected_probes rule ~loads =
  match rule with
  | Abku d -> float_of_int d
  | Adap x ->
      let acc = ref 0. in
      adap_dp x ~loads ~emit:(fun _r t p -> acc := !acc +. (float_of_int t *. p));
      !acc
