type t = { d : int; n : int; group_size : int }

let make ~d ~n =
  if d < 1 then invalid_arg "Go_left.make: d must be >= 1";
  if n < d then invalid_arg "Go_left.make: need n >= d";
  if n mod d <> 0 then invalid_arg "Go_left.make: d must divide n";
  { d; n; group_size = n / d }

let d t = t.d

let name t = Printf.sprintf "GoLeft[%d]" t.d

let insert t g bins =
  if Bins.n bins <> t.n then invalid_arg "Go_left.insert: size mismatch";
  (* One probe per group; least load wins, ties to the leftmost group. *)
  let best = ref (Prng.Rng.int g t.group_size) in
  (* probe of group 0 *)
  for group = 1 to t.d - 1 do
    let b = (group * t.group_size) + Prng.Rng.int g t.group_size in
    if Bins.load bins b < Bins.load bins !best then best := b
  done;
  Bins.add_ball bins !best;
  !best

let static_run t g ~m =
  let bins = Bins.create ~n:t.n in
  for _ = 1 to m do
    ignore (insert t g bins)
  done;
  bins

let dynamic_step t scenario g bins =
  (match scenario with
  | Scenario.A -> ignore (Bins.remove_ball_uniform g bins)
  | Scenario.B -> ignore (Bins.remove_from_random_nonempty g bins));
  ignore (insert t g bins)

(* One removal variate plus one probe per group. *)
let sim ?metrics t scenario bins =
  if Bins.n bins <> t.n then invalid_arg "Go_left.sim: size mismatch";
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      dynamic_step t scenario g bins;
      Engine.Metrics.add_probes metrics t.d;
      Engine.Metrics.add_draws metrics (1 + t.d))
    ~observe:(fun () -> Bins.loads bins)
    ~reset:(fun loads -> Bins.reset_loads bins loads)
    ~probe:(fun () -> Bins.max_load bins)
    ()
