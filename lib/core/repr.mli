(** Selectable state-representation backends for the stepper hot paths.

    The RNG-draw-order contract (DESIGN.md, "The representation
    layer"): a backend either consumes the generator in exactly the
    order the array oracle does — in which case its trajectories must
    be bit-identical to the oracle's — or it redistributes draws (the
    cutoff-table sampler uses one float where ABKU\[d\] uses [d] ints)
    and is instead held to equality in law through
    {!Validate.Conformance}. *)

type t =
  | Array_backed
      (** Sorted load array ({!Loadvec.Mutable_vector} /
          {!Bins}) — the oracle all other backends are checked
          against, and the default everywhere. *)
  | Count_backed
      (** {!Loadvec.Count_vector} multiset state; consumes the same
          draws as the array path, so traces are bit-identical. *)
  | Count_sampled
      (** Count-vector state with branch-free ABKU\[d\] insertion from
          an incrementally maintained cutoff table
          ({!Scheduling_rule.Abku_table}): one float draw per
          insertion.  Equal in law, not in trace; ADAP rules fall back
          to [Count_backed] (their probe loop is inherently
          sequential). *)

val all : t list

val name : t -> string
(** ["array"], ["counts"], ["counts-sampled"] — the spelling accepted
    by [--repr] flags and the [BENCH_REPR] environment variable. *)

val of_string : string -> (t, string) result
val help : string

val draw_order_preserved : t -> bool
(** Whether the backend is held to the bit-identical-trace contract
    (true) or to equality in law (false). *)
