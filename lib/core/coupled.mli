(** Couplings of the allocation chains (Sections 4 and 5).

    Two couplings are provided:

    {ul
    {- the {e monotone} coupling used for coalescence measurement on
       arbitrary pairs: the removal ranks of both copies are produced by
       inverse CDF from one shared uniform variate, and the insertions
       read one shared probe sequence (the right-oriented coupling of
       Lemma 3.3 with [Φ] the identity, which Lemma 3.4 licenses for both
       ABKU and ADAP);}
    {- the {e paper} couplings, defined exactly as in Section 4
       (scenario A) and Section 5 (scenario B) for pairs at distance
       [Δ = 1], used to check Corollary 4.2 and Claims 5.1–5.3
       empirically.}} *)

val monotone :
  Dynamic_process.t -> Loadvec.Mutable_vector.t Coupling.Coupled_chain.t
(** Monotone coupling on mutable states.  The step mutates its arguments
    and returns them; callers must not retain old states (the coalescence
    runners do not). *)

val find_adjacent_offsets :
  Loadvec.Load_vector.t -> Loadvec.Load_vector.t -> (int * int) option
(** [find_adjacent_offsets v u] is [Some (lambda, delta)] when
    [v = u + e_lambda − e_delta] with [lambda < delta] (0-based ranks),
    [None] otherwise. *)

val adjacent_pair :
  Prng.Rng.t -> n:int -> m:int ->
  Loadvec.Load_vector.t * Loadvec.Load_vector.t
(** A random pair [(v, u)] at distance 1 with
    [v = u + e_lambda − e_delta], [lambda < delta]: [u] is a uniform
    random allocation, perturbed by moving one ball.
    @raise Invalid_argument if [m < 1] or [n < 2]. *)

val paper_step :
  Dynamic_process.t ->
  Prng.Rng.t ->
  Loadvec.Load_vector.t ->
  Loadvec.Load_vector.t ->
  Loadvec.Load_vector.t * Loadvec.Load_vector.t
(** One step of the paper's coupling.  The pair must be at distance 1
    (with either orientation; the step re-orients internally).  For equal
    states the identity coupling is applied.
    @raise Invalid_argument if the states are neither equal nor
    adjacent. *)

val paper_coupling :
  Dynamic_process.t -> Loadvec.Load_vector.t Coupling.Coupled_chain.t
(** {!paper_step} packaged with the metric Δ, suitable for
    [Coupling.Path_coupling.beta_estimate]. *)
