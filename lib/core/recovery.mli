(** Recovery-time measurement.

    The paper's motivating question (Section 1): starting from an
    arbitrarily bad state, how many steps until the system again looks
    typical?  We operationalise "typical" as the maximum load dropping to
    a target value (e.g. the fluid-limit prediction plus a constant) and
    measure the first hitting time, repeated over seeds. *)

type spec = {
  scenario : Scenario.t;
  rule : Scheduling_rule.t;
  n : int;
  m : int;
}

val adversarial_bins : spec -> Bins.t
(** All [m] balls in bin 0 — the worst state for the max-load measure. *)

val time_to_max_load :
  ?repr:Repr.t ->
  rng:Prng.Rng.t -> spec -> target:int -> limit:int -> int option
(** Steps from the adversarial state until [max_load <= target].
    [repr] selects the state backend (default {!Repr.Array_backed}, the
    oracle with the historical draw order). *)

val measure_with_metrics :
  ?domains:int ->
  ?repr:Repr.t ->
  rng:Prng.Rng.t -> reps:int -> spec -> target:int -> limit:int ->
  Coupling.Coalescence.measurement * Engine.Metrics.snapshot
(** Like {!measure}, additionally returning the aggregated engine
    counters of the fan-out (stored per-cell in the JSON result sink by
    the experiment framework). *)

val measure :
  ?domains:int ->
  ?repr:Repr.t ->
  rng:Prng.Rng.t -> reps:int -> spec -> target:int -> limit:int ->
  Coupling.Coalescence.measurement
(** Repeated {!time_to_max_load} (failures = runs hitting [limit]).
    Implemented on {!Engine.Runner} over {!System.sim}: [domains]
    (default 1) fans repetitions over OCaml domains with bit-identical
    results (generators split before the fan-out), and with
    [BENCH_METRICS=1] the aggregated engine counters are printed.
    [repr] as in {!time_to_max_load}; backends that preserve the draw
    order leave every measurement bit-identical.
    @raise Invalid_argument if [reps <= 0]. *)

val trajectory :
  rng:Prng.Rng.t -> spec -> every:int -> points:int -> (int * int) array
(** [(step, max_load)] samples along one run from the adversarial
    state. *)

val stationary_max_load :
  rng:Prng.Rng.t -> spec -> burn_in:int -> every:int -> samples:int ->
  float * int
(** Mean and maximum of the max-load observable in (approximate)
    stationarity, starting from the balanced state. *)
