module Mv = Loadvec.Mutable_vector
module Lv = Loadvec.Load_vector

let insert_shared process probe v =
  let rank, _probes =
    Scheduling_rule.choose_rank
      (Dynamic_process.rule process)
      ~loads:(Mv.unsafe_loads v) ~probe
  in
  ignore (Mv.incr_at v rank)

let monotone process =
  let sc = Dynamic_process.scenario process in
  let n = Dynamic_process.n process in
  let step g x y =
    let u = Prng.Rng.float g in
    ignore (Mv.decr_at x (Scenario.remove_rank sc x ~u));
    ignore (Mv.decr_at y (Scenario.remove_rank sc y ~u));
    let probe = Probe.create g ~n in
    insert_shared process probe x;
    insert_shared process probe y;
    (x, y)
  in
  Coupling.Coupled_chain.make ~step ~equal:Mv.equal
    ~distance:(fun a b -> Mv.l1_distance a b / 2)

let find_adjacent_offsets v u =
  if Lv.dim v <> Lv.dim u then None
  else begin
    let a = Lv.to_array v and b = Lv.to_array u in
    let plus = ref (-1) and minus = ref (-1) and ok = ref true in
    Array.iteri
      (fun i x ->
        match x - b.(i) with
        | 0 -> ()
        | 1 -> if !plus = -1 then plus := i else ok := false
        | -1 -> if !minus = -1 then minus := i else ok := false
        | _ -> ok := false)
      a;
    if !ok && !plus >= 0 && !minus >= 0 && !plus < !minus then
      Some (!plus, !minus)
    else None
  end

let random_state g ~n ~m =
  let loads = Array.make n 0 in
  for _ = 1 to m do
    let b = Prng.Rng.int g n in
    loads.(b) <- loads.(b) + 1
  done;
  Lv.of_array loads

let adjacent_pair g ~n ~m =
  if m < 1 || n < 2 then invalid_arg "Coupled.adjacent_pair";
  let rec attempt () =
    let u = random_state g ~n ~m in
    let support = Lv.support u in
    let a = Prng.Rng.int g support in
    let b = Prng.Rng.int g n in
    let v = Lv.oplus (Lv.ominus u a) b in
    match find_adjacent_offsets v u with
    | Some _ -> (v, u)
    | None -> (
        match find_adjacent_offsets u v with
        | Some _ -> (u, v)
        | None -> attempt ())
  in
  attempt ()

(* Shared-probe insertion on immutable vectors. *)
let insert_pair process g v u =
  let probe = Probe.create g ~n:(Dynamic_process.n process) in
  let rule = Dynamic_process.rule process in
  let rank_v, _ = Scheduling_rule.choose_rank rule ~loads:(Lv.to_array v) ~probe in
  let rank_u, _ = Scheduling_rule.choose_rank rule ~loads:(Lv.to_array u) ~probe in
  (Lv.oplus v rank_v, Lv.oplus u rank_u)

(* Section 4 removal coupling for v = u + e_lambda - e_delta, lambda < delta:
   draw i from A(v); set j = i except that when i = lambda, with probability
   1/v_lambda redirect j to delta. *)
let remove_pair_a g v u ~lambda ~delta =
  let loads = Lv.to_array v in
  let i = Prng.Dist.weighted_int g loads in
  let j =
    if i = lambda && Prng.Rng.float g < 1. /. float_of_int loads.(lambda) then
      delta
    else i
  in
  (Lv.ominus v i, Lv.ominus u j)

(* Section 5 removal coupling.  Supports can differ only when
   u_delta = 1 so that v_delta = 0 (then support v = support u - 1). *)
let remove_pair_b g v u ~lambda ~delta =
  let s1 = Lv.support v and s2 = Lv.support u in
  if s1 = s2 then begin
    let i = Prng.Rng.int g s1 in
    let i' = if i = lambda then delta else if i = delta then lambda else i in
    (Lv.ominus v i, Lv.ominus u i')
  end
  else begin
    (* s1 = s2 - 1 and delta is u's last non-empty rank. *)
    let i' = Prng.Rng.int g s2 in
    let i =
      if i' = delta then lambda
      else if i' = lambda then Prng.Rng.int g s1
      else i'
    in
    (Lv.ominus v i, Lv.ominus u i')
  end

let paper_step process g v u =
  if Lv.equal v u then begin
    (* Identity coupling keeps equal copies together. *)
    let c = Dynamic_process.chain process in
    let g' = Prng.Rng.copy g in
    let v' = c.Markov.Chain.step g v in
    let u' = c.Markov.Chain.step g' u in
    (v', u')
  end
  else begin
    let oriented =
      match find_adjacent_offsets v u with
      | Some (l, d) -> Some (v, u, l, d, true)
      | None -> (
          match find_adjacent_offsets u v with
          | Some (l, d) -> Some (u, v, l, d, false)
          | None -> None)
    in
    match oriented with
    | None -> invalid_arg "Coupled.paper_step: states not adjacent"
    | Some (v, u, lambda, delta, keep_order) ->
        let v_star, u_star =
          match Dynamic_process.scenario process with
          | Scenario.A -> remove_pair_a g v u ~lambda ~delta
          | Scenario.B -> remove_pair_b g v u ~lambda ~delta
        in
        let v', u' = insert_pair process g v_star u_star in
        if keep_order then (v', u') else (u', v')
  end

let paper_coupling process =
  Coupling.Coupled_chain.make
    ~step:(fun g v u -> paper_step process g v u)
    ~equal:Lv.equal ~distance:Lv.delta
