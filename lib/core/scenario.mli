(** Removal scenarios (paper, Section 2).

    Scenario {b A} removes a ball chosen i.u.r. among the [m] balls — on a
    normalized vector this decrements rank [i] with probability [v_i/m]
    (the distribution [A(v)] of Definition 3.2).  Scenario {b B} removes
    one ball from a non-empty bin chosen i.u.r. — rank [i] uniform over
    the non-empty prefix (the distribution [B(v)] of Definition 3.3). *)

type t = A | B

val name : t -> string

val remove_rank : t -> Loadvec.Mutable_vector.t -> u:float -> int
(** [remove_rank sc v ~u] maps the uniform variate [u ∈ [0,1)] to the
    rank to decrement, by inverse CDF.  Feeding two coupled copies the
    same [u] yields the monotone removal coupling.
    @raise Invalid_argument if the vector is empty of balls. *)

val remove_level : t -> Loadvec.Count_vector.t -> u:float -> int
(** Count-vector form of {!remove_rank}: same variate, same branch
    decisions, but the answer is the load class hit by the removal
    (which determines the normalized successor by Fact 3.2).  On any
    pair of states with equal multisets, [remove_level] on the count
    vector and [remove_rank] on the array pick the same class for every
    [u] — the contract behind the bit-identical count-backed stepper.
    @raise Invalid_argument if the vector is empty of balls. *)

val removal_distribution : t -> loads:int array -> float array
(** Exact law over ranks for a normalized [loads] vector; used to build
    exact transition matrices.
    @raise Invalid_argument if there are no balls. *)
