(** Always-Go-Left allocation (Vöcking's asymmetric d-choice rule).

    The bins are split into [d] contiguous groups of [n/d]; the ball
    probes one uniform bin {e per group} and goes to a least-loaded
    probe, breaking ties toward the leftmost group.  The asymmetry plus
    tie-breaking improves the maximum load from [ln ln n / ln d] to
    [ln ln n / (d·ln φ_d)] — a strictly better constant that experiment
    E18 contrasts with ABKU[d].

    Published the year after the paper, included here as the natural
    ablation of the d-choice rule family the paper analyses. *)

type t
(** The rule, fixed by [d] and the group layout for a given [n]. *)

val make : d:int -> n:int -> t
(** @raise Invalid_argument if [d < 1], [n < d], or [d] does not divide
    [n] (groups must be equal-sized). *)

val d : t -> int
val name : t -> string

val insert : t -> Prng.Rng.t -> Bins.t -> int
(** Place one ball; returns the bin.
    @raise Invalid_argument if the bins' size differs from the rule's
    [n]. *)

val static_run : t -> Prng.Rng.t -> m:int -> Bins.t
(** Throw [m] balls into fresh bins. *)

val dynamic_step : t -> Scenario.t -> Prng.Rng.t -> Bins.t -> unit
(** One remove-and-reinsert step of the dynamic process using this rule
    for insertion. *)

val sim :
  ?metrics:Engine.Metrics.t ->
  t ->
  Scenario.t ->
  Bins.t ->
  int array Engine.Sim.t
(** {!dynamic_step} as an in-place engine stepper on the given bins
    (adopted and mutated).
    @raise Invalid_argument if the bins' size differs from the rule's
    [n]. *)
