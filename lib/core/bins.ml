(* The ball registry is a doubly-indexed multiset so that both removal
   scenarios are O(1):
     balls          : registry slot -> bin id
     slots_of.(b)   : registry slots currently holding balls of bin b
     pos_of_slot    : registry slot -> its position inside slots_of.(bin)
   Scenario A samples a uniform registry slot; scenario B samples a
   uniform non-empty bin and deletes any of its slots. *)
type t = {
  n : int;
  loads : int array;            (* by bin id *)
  balls : Int_vec.t;            (* slot -> bin id *)
  pos_of_slot : Int_vec.t;      (* slot -> index in slots_of.(bin) *)
  slots_of : Int_vec.t array;   (* bin id -> slots *)
  nonempty : Int_vec.t;         (* bin ids with load > 0 *)
  pos_in_nonempty : int array;  (* bin id -> index in [nonempty], or -1 *)
  mutable count_by_load : int array;  (* #bins with load l, for l >= 1 *)
  mutable max_load : int;
  mutable by_level : Int_vec.t array;  (* level -> bin ids at that load *)
  pos_in_level : int array;  (* bin id -> index in by_level.(load) *)
  mutable sampler : (int * Scheduling_rule.Abku_table.table) option;
      (* (d, cutoff table) when sampled ABKU insertion is enabled *)
}

let fresh_level_bucket () = Int_vec.create ~capacity:4 ()

let create ~n =
  if n <= 0 then invalid_arg "Bins.create: n must be positive";
  let level0 = Int_vec.create ~capacity:n () in
  for b = 0 to n - 1 do
    Int_vec.push level0 b
  done;
  {
    n;
    loads = Array.make n 0;
    balls = Int_vec.create ~capacity:(4 * n) ();
    pos_of_slot = Int_vec.create ~capacity:(4 * n) ();
    slots_of = Array.init n (fun _ -> Int_vec.create ~capacity:4 ());
    nonempty = Int_vec.create ~capacity:n ();
    pos_in_nonempty = Array.make n (-1);
    count_by_load = Array.make 8 0;
    max_load = 0;
    by_level =
      Array.init 8 (fun l -> if l = 0 then level0 else fresh_level_bucket ());
    pos_in_level = Array.init n (fun b -> b);
    sampler = None;
  }

let n t = t.n
let num_balls t = Int_vec.length t.balls

let load t b =
  if b < 0 || b >= t.n then invalid_arg "Bins.load: bad bin";
  t.loads.(b)

let max_load t = t.max_load
let num_nonempty t = Int_vec.length t.nonempty

let ensure_count t l =
  let len = Array.length t.count_by_load in
  if l >= len then begin
    let arr = Array.make (Stdlib.max (l + 1) (2 * len)) 0 in
    Array.blit t.count_by_load 0 arr 0 len;
    t.count_by_load <- arr
  end

let ensure_level t l =
  let len = Array.length t.by_level in
  if l >= len then begin
    let arr =
      Array.init
        (Stdlib.max (l + 1) (2 * len))
        (fun i -> if i < len then t.by_level.(i) else fresh_level_bucket ())
    in
    t.by_level <- arr
  end

(* Move bin [b] from its bucket at [from_l] to the one at [to_l]. *)
let move_level t b ~from_l ~to_l =
  let bk = t.by_level.(from_l) in
  let pos = t.pos_in_level.(b) in
  ignore (Int_vec.swap_remove bk pos);
  if pos < Int_vec.length bk then
    t.pos_in_level.(Int_vec.get bk pos) <- pos;
  ensure_level t to_l;
  t.pos_in_level.(b) <- Int_vec.length t.by_level.(to_l);
  Int_vec.push t.by_level.(to_l) b

let note_increment t b =
  let l = t.loads.(b) in
  if l = 0 then begin
    t.pos_in_nonempty.(b) <- Int_vec.length t.nonempty;
    Int_vec.push t.nonempty b
  end
  else t.count_by_load.(l) <- t.count_by_load.(l) - 1;
  ensure_count t (l + 1);
  t.count_by_load.(l + 1) <- t.count_by_load.(l + 1) + 1;
  move_level t b ~from_l:l ~to_l:(l + 1);
  (match t.sampler with
  | Some (_, table) -> Scheduling_rule.Abku_table.on_gain table (l + 1)
  | None -> ());
  t.loads.(b) <- l + 1;
  if l + 1 > t.max_load then t.max_load <- l + 1

let note_decrement t b =
  let l = t.loads.(b) in
  assert (l > 0);
  t.count_by_load.(l) <- t.count_by_load.(l) - 1;
  if l > 1 then t.count_by_load.(l - 1) <- t.count_by_load.(l - 1) + 1
  else begin
    let pos = t.pos_in_nonempty.(b) in
    ignore (Int_vec.swap_remove t.nonempty pos);
    if pos < Int_vec.length t.nonempty then begin
      let moved = Int_vec.get t.nonempty pos in
      t.pos_in_nonempty.(moved) <- pos
    end;
    t.pos_in_nonempty.(b) <- -1
  end;
  move_level t b ~from_l:l ~to_l:(l - 1);
  (match t.sampler with
  | Some (_, table) -> Scheduling_rule.Abku_table.on_loss table l
  | None -> ());
  t.loads.(b) <- l - 1;
  (* A removal lowers the max by at most one, exactly when the last
     max-loaded bin lost a ball. *)
  if l = t.max_load && t.count_by_load.(l) = 0 then t.max_load <- l - 1

let add_ball t b =
  if b < 0 || b >= t.n then invalid_arg "Bins.add_ball: bad bin";
  let slot = Int_vec.length t.balls in
  Int_vec.push t.balls b;
  Int_vec.push t.pos_of_slot (Int_vec.length t.slots_of.(b));
  Int_vec.push t.slots_of.(b) slot;
  note_increment t b

(* Delete registry slot [slot], patching all three indices. *)
let delete_slot t slot =
  let b = Int_vec.get t.balls slot in
  (* Unlink from slots_of.(b); the former tail entry (if any) moves into
     [pos], so its back-pointer must be updated. *)
  let pos = Int_vec.get t.pos_of_slot slot in
  ignore (Int_vec.swap_remove t.slots_of.(b) pos);
  if pos < Int_vec.length t.slots_of.(b) then begin
    let moved_slot = Int_vec.get t.slots_of.(b) pos in
    Int_vec.set t.pos_of_slot moved_slot pos
  end;
  (* Swap-remove the registry entry; entry [last] (if distinct) moves to
     [slot], so its slots_of cell must be repointed. *)
  let last = Int_vec.length t.balls - 1 in
  ignore (Int_vec.swap_remove t.balls slot);
  ignore (Int_vec.swap_remove t.pos_of_slot slot);
  if slot <> last then begin
    let moved_bin = Int_vec.get t.balls slot in
    let moved_pos = Int_vec.get t.pos_of_slot slot in
    Int_vec.set t.slots_of.(moved_bin) moved_pos slot
  end;
  note_decrement t b;
  b

let of_loads per_bin =
  let n = Array.length per_bin in
  if n = 0 then invalid_arg "Bins.of_loads: empty";
  let t = create ~n in
  Array.iteri
    (fun b l ->
      if l < 0 then invalid_arg "Bins.of_loads: negative load";
      for _ = 1 to l do
        add_ball t b
      done)
    per_bin;
  t

let copy t = of_loads t.loads

let remove_ball_uniform g t =
  let m = Int_vec.length t.balls in
  if m = 0 then invalid_arg "Bins.remove_ball_uniform: no balls";
  delete_slot t (Prng.Rng.int g m)

let remove_from_random_nonempty g t =
  let s = Int_vec.length t.nonempty in
  if s = 0 then invalid_arg "Bins.remove_from_random_nonempty: no balls";
  let b = Int_vec.get t.nonempty (Prng.Rng.int g s) in
  let slots = t.slots_of.(b) in
  delete_slot t (Int_vec.get slots (Int_vec.length slots - 1))

let move_ball t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Bins.move_ball: bad bin";
  let slots = t.slots_of.(src) in
  if Int_vec.length slots = 0 then invalid_arg "Bins.move_ball: empty source";
  ignore (delete_slot t (Int_vec.get slots (Int_vec.length slots - 1)));
  add_ball t dst

let insert_with_rule rule g t =
  match rule with
  | Scheduling_rule.Abku d ->
      let best = ref (Prng.Rng.int g t.n) in
      for _ = 2 to d do
        let b = Prng.Rng.int g t.n in
        if t.loads.(b) < t.loads.(!best) then best := b
      done;
      add_ball t !best;
      (!best, d)
  | Scheduling_rule.Adap x ->
      let rec go probes best =
        if probes > Scheduling_rule.probe_cap then
          Scheduling_rule.probe_cap_exceeded rule ~n:t.n;
        if Adaptive.threshold x t.loads.(best) <= probes then begin
          add_ball t best;
          (best, probes)
        end
        else begin
          let b = Prng.Rng.int g t.n in
          let best = if t.loads.(b) < t.loads.(best) then b else best in
          go (probes + 1) best
        end
      in
      go 1 (Prng.Rng.int g t.n)

(* {2 Sampled (cutoff-table) ABKU insertion} *)

let enable_sampled_insertion t ~d =
  if d < 1 then invalid_arg "Bins.enable_sampled_insertion: d must be >= 1";
  let table =
    Scheduling_rule.Abku_table.create ~d ~n:t.n ~max_level:t.max_load
      ~count:(fun l ->
        if l = 0 then t.n - Int_vec.length t.nonempty
        else if l < Array.length t.count_by_load then t.count_by_load.(l)
        else 0)
  in
  t.sampler <- Some (d, table)

let sampled_insertion t =
  match t.sampler with Some (d, _) -> Some d | None -> None

let insert_sampled g t =
  match t.sampler with
  | None -> invalid_arg "Bins.insert_sampled: sampler not enabled"
  | Some (d, table) ->
      let level = Scheduling_rule.Abku_table.draw_level table g in
      let bucket = t.by_level.(level) in
      let b = Int_vec.get bucket (Prng.Rng.int g (Int_vec.length bucket)) in
      add_ball t b;
      (b, d)

let reset_loads t per_bin =
  if Array.length per_bin <> t.n then
    invalid_arg "Bins.reset_loads: dimension mismatch";
  Array.iter
    (fun l -> if l < 0 then invalid_arg "Bins.reset_loads: negative load")
    per_bin;
  while Int_vec.length t.balls > 0 do
    ignore (delete_slot t (Int_vec.length t.balls - 1))
  done;
  Array.iteri
    (fun b l ->
      for _ = 1 to l do
        add_ball t b
      done)
    per_bin

let loads t = Array.copy t.loads

let to_load_vector t = Loadvec.Load_vector.of_array t.loads

(* {2 Registry snapshots}

   Both removal scenarios sample internal *orders* — the registry slot
   vector (A), the non-empty list and the per-bin slot stacks (B) — so
   a load vector alone does not pin down future behaviour.  A snapshot
   records every order; [of_snapshot] rebuilds the structure so that
   each subsequent operation touches exactly the cells the original
   would have. *)

type snapshot = {
  sn_n : int;
  sn_balls : int array;
  sn_slot_order : int array;
  sn_nonempty : int array;
  sn_levels : int array array;
}

let snapshot t =
  let vec v = Array.init (Int_vec.length v) (Int_vec.get v) in
  let m = Int_vec.length t.balls in
  let slot_order = Array.make m 0 in
  let k = ref 0 in
  Array.iter
    (fun slots ->
      for i = 0 to Int_vec.length slots - 1 do
        slot_order.(!k) <- Int_vec.get slots i;
        incr k
      done)
    t.slots_of;
  {
    sn_n = t.n;
    sn_balls = vec t.balls;
    sn_slot_order = slot_order;
    sn_nonempty = vec t.nonempty;
    sn_levels = Array.init (t.max_load + 1) (fun l -> vec t.by_level.(l));
  }

let of_snapshot s =
  let m = Array.length s.sn_balls in
  if s.sn_n <= 0 then invalid_arg "Bins.of_snapshot: n must be positive";
  if Array.length s.sn_slot_order <> m then
    invalid_arg "Bins.of_snapshot: slot_order length mismatch";
  Array.iter
    (fun b ->
      if b < 0 || b >= s.sn_n then invalid_arg "Bins.of_snapshot: bad bin id")
    s.sn_balls;
  let t = create ~n:s.sn_n in
  (* The registry vector itself, in the recorded slot order; the
     pos_of_slot cells are patched while rebuilding the stacks. *)
  Array.iter
    (fun b ->
      Int_vec.push t.balls b;
      Int_vec.push t.pos_of_slot 0)
    s.sn_balls;
  let seen = Array.make m false in
  Array.iter
    (fun slot ->
      if slot < 0 || slot >= m || seen.(slot) then
        invalid_arg "Bins.of_snapshot: slot_order is not a permutation";
      seen.(slot) <- true;
      let b = s.sn_balls.(slot) in
      Int_vec.set t.pos_of_slot slot (Int_vec.length t.slots_of.(b));
      Int_vec.push t.slots_of.(b) slot)
    s.sn_slot_order;
  (* Derived occupancy indices. *)
  let nonempty_bins = ref 0 in
  for b = 0 to s.sn_n - 1 do
    let l = Int_vec.length t.slots_of.(b) in
    t.loads.(b) <- l;
    if l > 0 then begin
      ensure_count t l;
      t.count_by_load.(l) <- t.count_by_load.(l) + 1;
      if l > t.max_load then t.max_load <- l;
      incr nonempty_bins
    end
  done;
  if Array.length s.sn_nonempty <> !nonempty_bins then
    invalid_arg "Bins.of_snapshot: nonempty set mismatch";
  Array.iter
    (fun b ->
      if b < 0 || b >= s.sn_n || t.loads.(b) = 0 || t.pos_in_nonempty.(b) >= 0
      then invalid_arg "Bins.of_snapshot: nonempty set mismatch";
      t.pos_in_nonempty.(b) <- Int_vec.length t.nonempty;
      Int_vec.push t.nonempty b)
    s.sn_nonempty;
  (* Rebuild the per-level buckets in the recorded order (their order is
     sampled by the cutoff-table insertion, so it is part of the
     replayable state). *)
  ensure_level t (Array.length s.sn_levels - 1);
  Array.iter (fun bucket -> Int_vec.clear bucket) t.by_level;
  let placed = ref 0 in
  let seen_bin = Array.make s.sn_n false in
  Array.iteri
    (fun l bins ->
      Array.iter
        (fun b ->
          if b < 0 || b >= s.sn_n || t.loads.(b) <> l || seen_bin.(b) then
            invalid_arg "Bins.of_snapshot: level bucket mismatch";
          seen_bin.(b) <- true;
          t.pos_in_level.(b) <- Int_vec.length t.by_level.(l);
          Int_vec.push t.by_level.(l) b;
          incr placed)
        bins)
    s.sn_levels;
  if !placed <> s.sn_n then
    invalid_arg "Bins.of_snapshot: level bucket mismatch";
  t
