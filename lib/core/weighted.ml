type weight_dist =
  | Constant of float
  | Uniform_unit
  | Exponential of float
  | Pareto of { alpha : float; xmin : float }

let sample_weight g = function
  | Constant w ->
      if w <= 0. then invalid_arg "Weighted: non-positive constant weight";
      w
  | Uniform_unit -> 1. -. Prng.Rng.float g
  | Exponential mean ->
      if mean <= 0. then invalid_arg "Weighted: non-positive mean";
      -.mean *. log (1. -. Prng.Rng.float g)
  | Pareto { alpha; xmin } ->
      if alpha <= 0. || xmin <= 0. then invalid_arg "Weighted: bad Pareto";
      xmin /. ((1. -. Prng.Rng.float g) ** (1. /. alpha))

let dist_name = function
  | Constant w -> Printf.sprintf "const(%.2g)" w
  | Uniform_unit -> "uniform(0,1]"
  | Exponential mean -> Printf.sprintf "exp(mean=%.2g)" mean
  | Pareto { alpha; xmin } -> Printf.sprintf "pareto(a=%.2g,x0=%.2g)" alpha xmin

type t = {
  n : int;
  loads : float array;         (* weighted load by bin *)
  ball_bins : Int_vec.t;       (* ball slot -> bin *)
  mutable ball_weights : float array;  (* ball slot -> weight *)
  mutable num_balls : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Weighted.create: n must be positive";
  {
    n;
    loads = Array.make n 0.;
    ball_bins = Int_vec.create ();
    ball_weights = Array.make 16 0.;
    num_balls = 0;
  }

let n t = t.n
let num_balls t = t.num_balls

let load t b =
  if b < 0 || b >= t.n then invalid_arg "Weighted.load: bad bin";
  t.loads.(b)

let max_load t = Array.fold_left Float.max 0. t.loads
let total_weight t = Array.fold_left ( +. ) 0. t.loads

let push_ball t bin weight =
  if t.num_balls = Array.length t.ball_weights then begin
    let grown = Array.make (2 * t.num_balls) 0. in
    Array.blit t.ball_weights 0 grown 0 t.num_balls;
    t.ball_weights <- grown
  end;
  Int_vec.push t.ball_bins bin;
  t.ball_weights.(t.num_balls) <- weight;
  t.num_balls <- t.num_balls + 1;
  t.loads.(bin) <- t.loads.(bin) +. weight

let insert t g ~d ~weight =
  if d < 1 then invalid_arg "Weighted.insert: d must be >= 1";
  if weight <= 0. then invalid_arg "Weighted.insert: non-positive weight";
  let best = ref (Prng.Rng.int g t.n) in
  for _ = 2 to d do
    let b = Prng.Rng.int g t.n in
    if t.loads.(b) < t.loads.(!best) then best := b
  done;
  push_ball t !best weight;
  !best

let remove_uniform_ball t g =
  if t.num_balls = 0 then invalid_arg "Weighted.remove_uniform_ball: empty";
  let slot = Prng.Rng.int g t.num_balls in
  let bin = Int_vec.swap_remove t.ball_bins slot in
  let weight = t.ball_weights.(slot) in
  let last = t.num_balls - 1 in
  t.ball_weights.(slot) <- t.ball_weights.(last);
  t.num_balls <- last;
  t.loads.(bin) <- Float.max 0. (t.loads.(bin) -. weight);
  weight

let static_run g ~n ~m ~d ~dist =
  if m < 0 then invalid_arg "Weighted.static_run: negative m";
  let t = create ~n in
  for _ = 1 to m do
    ignore (insert t g ~d ~weight:(sample_weight g dist))
  done;
  t

let dynamic_step t g ~d ~dist =
  ignore (remove_uniform_ball t g);
  ignore (insert t g ~d ~weight:(sample_weight g dist))
