type weight_dist =
  | Constant of float
  | Uniform_unit
  | Exponential of float
  | Pareto of { alpha : float; xmin : float }

let sample_weight g = function
  | Constant w ->
      if w <= 0. then invalid_arg "Weighted: non-positive constant weight";
      w
  | Uniform_unit -> 1. -. Prng.Rng.float g
  | Exponential mean ->
      if mean <= 0. then invalid_arg "Weighted: non-positive mean";
      -.mean *. log (1. -. Prng.Rng.float g)
  | Pareto { alpha; xmin } ->
      if alpha <= 0. || xmin <= 0. then invalid_arg "Weighted: bad Pareto";
      xmin /. ((1. -. Prng.Rng.float g) ** (1. /. alpha))

let dist_name = function
  | Constant w -> Printf.sprintf "const(%.2g)" w
  | Uniform_unit -> "uniform(0,1]"
  | Exponential mean -> Printf.sprintf "exp(mean=%.2g)" mean
  | Pareto { alpha; xmin } -> Printf.sprintf "pareto(a=%.2g,x0=%.2g)" alpha xmin

type t = {
  n : int;
  loads : float array;         (* weighted load by bin *)
  ball_bins : Int_vec.t;       (* ball slot -> bin *)
  mutable ball_weights : float array;  (* ball slot -> weight *)
  mutable num_balls : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Weighted.create: n must be positive";
  {
    n;
    loads = Array.make n 0.;
    ball_bins = Int_vec.create ();
    ball_weights = Array.make 16 0.;
    num_balls = 0;
  }

let n t = t.n
let num_balls t = t.num_balls

let load t b =
  if b < 0 || b >= t.n then invalid_arg "Weighted.load: bad bin";
  t.loads.(b)

let max_load t = Array.fold_left Float.max 0. t.loads
let total_weight t = Array.fold_left ( +. ) 0. t.loads

let push_ball t bin weight =
  if t.num_balls = Array.length t.ball_weights then begin
    let grown = Array.make (2 * t.num_balls) 0. in
    Array.blit t.ball_weights 0 grown 0 t.num_balls;
    t.ball_weights <- grown
  end;
  Int_vec.push t.ball_bins bin;
  t.ball_weights.(t.num_balls) <- weight;
  t.num_balls <- t.num_balls + 1;
  t.loads.(bin) <- t.loads.(bin) +. weight

let insert t g ~d ~weight =
  if d < 1 then invalid_arg "Weighted.insert: d must be >= 1";
  if weight <= 0. then invalid_arg "Weighted.insert: non-positive weight";
  let best = ref (Prng.Rng.int g t.n) in
  for _ = 2 to d do
    let b = Prng.Rng.int g t.n in
    if t.loads.(b) < t.loads.(!best) then best := b
  done;
  push_ball t !best weight;
  !best

let remove_uniform_ball t g =
  if t.num_balls = 0 then invalid_arg "Weighted.remove_uniform_ball: empty";
  let slot = Prng.Rng.int g t.num_balls in
  let bin = Int_vec.swap_remove t.ball_bins slot in
  let weight = t.ball_weights.(slot) in
  let last = t.num_balls - 1 in
  t.ball_weights.(slot) <- t.ball_weights.(last);
  t.num_balls <- last;
  t.loads.(bin) <- Float.max 0. (t.loads.(bin) -. weight);
  weight

let static_run g ~n ~m ~d ~dist =
  if m < 0 then invalid_arg "Weighted.static_run: negative m";
  let t = create ~n in
  for _ = 1 to m do
    ignore (insert t g ~d ~weight:(sample_weight g dist))
  done;
  t

let dynamic_step t g ~d ~dist =
  ignore (remove_uniform_ball t g);
  ignore (insert t g ~d ~weight:(sample_weight g dist))

(* The ball registry (bin, weight per slot) determines the whole state:
   per-bin loads are recomputed on restore. *)
type snapshot = { snap_bins : int array; snap_weights : float array }

let snapshot t =
  {
    snap_bins = Int_vec.to_array t.ball_bins;
    snap_weights = Array.sub t.ball_weights 0 t.num_balls;
  }

let restore t s =
  if Array.length s.snap_bins <> Array.length s.snap_weights then
    invalid_arg "Weighted.restore: mismatched snapshot";
  Array.fill t.loads 0 t.n 0.;
  Int_vec.clear t.ball_bins;
  t.num_balls <- 0;
  Array.iteri
    (fun i bin ->
      if bin < 0 || bin >= t.n then invalid_arg "Weighted.restore: bad bin";
      push_ball t bin s.snap_weights.(i))
    s.snap_bins

let sim ?metrics t ~d ~dist =
  if d < 1 then invalid_arg "Weighted.sim: d must be >= 1";
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  let weight_draws = match dist with Constant _ -> 0 | _ -> 1 in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      dynamic_step t g ~d ~dist;
      Engine.Metrics.add_probes metrics d;
      Engine.Metrics.add_draws metrics (1 + d + weight_draws))
    ~observe:(fun () -> snapshot t)
    ~reset:(fun s -> restore t s)
    ~probe:(fun () -> int_of_float (Float.ceil (max_load t)))
    ()
