(** Generalized removal rules (paper, Section 7: "our techniques can be
    also applied to processes in which we remove a ball according to
    other probability distributions").

    A removal rule assigns every rank of the normalized load vector a
    non-negative weight; the rank to decrement is drawn proportionally.
    Scenarios A and B are the special cases [weight = load] and
    [weight = 1 on the non-empty prefix]; the extra built-ins cover the
    natural spectrum from adversary-friendly to repair-friendly. *)

type t

val name : t -> string

val make : name:string -> (int array -> float array) -> t
(** [make ~name weights] builds a rule from a weight function on the
    loads of a normalized vector.  The weight function must return
    non-negative weights, zero on empty bins, not all zero when balls
    remain. *)

val scenario_a : t
(** Weight = load: a ball chosen i.u.r. (the paper's scenario A). *)

val scenario_b : t
(** Weight = 1 on non-empty bins (the paper's scenario B). *)

val load_squared : t
(** Weight = load²: failures prefer busy servers — faster than A. *)

val heaviest : t
(** All weight on the fullest bins: deterministic drain, the
    repair-friendliest rule. *)

val remove_rank : t -> Loadvec.Mutable_vector.t -> u:float -> int
(** Inverse-CDF removal from the uniform variate [u].
    @raise Invalid_argument when no balls remain or the weight function
    misbehaves (negative or all-zero weights). *)

val step :
  t -> Scheduling_rule.t -> Prng.Rng.t -> Loadvec.Mutable_vector.t -> unit
(** One remove-and-reinsert step of the generalized dynamic process. *)

val coupled :
  t ->
  Scheduling_rule.t ->
  Loadvec.Mutable_vector.t Coupling.Coupled_chain.t
(** The monotone coupling for the generalized process: shared removal
    variate (inverse CDF of this rule's law on each copy) and shared
    probe sequence — the Section 3–4 construction with the removal law
    swapped out, which is exactly how Section 7 proposes extending the
    framework. *)
