(** Weighted balls (the "Allocating weighted jobs" line of Berenbrink,
    Meyer auf der Heide & Schröder, cited by the paper).

    Balls carry positive real weights; a bin's load is the sum of the
    weights it holds, and the d-choice rule compares weighted loads.  The
    dynamic scenario-A process removes a ball chosen i.u.r. among the
    balls (independently of weight) and inserts a fresh ball with a newly
    drawn weight.

    The qualitative story to reproduce: for light-tailed weights the
    power of two choices survives almost unchanged, while for heavy tails
    the single largest job dominates the maximum load and extra choices
    stop helping. *)

type weight_dist =
  | Constant of float
  | Uniform_unit  (** uniform on (0, 1] *)
  | Exponential of float  (** with the given mean *)
  | Pareto of { alpha : float; xmin : float }
      (** heavy-tailed; infinite variance for [alpha <= 2] *)

val sample_weight : Prng.Rng.t -> weight_dist -> float
(** Draws a weight.
    @raise Invalid_argument on non-positive parameters. *)

val dist_name : weight_dist -> string

type t
(** A weighted system: per-bin weighted loads plus a ball registry. *)

val create : n:int -> t
(** @raise Invalid_argument if [n <= 0]. *)

val n : t -> int
val num_balls : t -> int
val load : t -> int -> float
val max_load : t -> float
(** O(n). *)

val total_weight : t -> float

val insert : t -> Prng.Rng.t -> d:int -> weight:float -> int
(** Place one ball of the given weight into the least (weighted-)loaded
    of [d] bins chosen i.u.r.; returns the bin.
    @raise Invalid_argument if [d < 1] or [weight <= 0]. *)

val remove_uniform_ball : t -> Prng.Rng.t -> float
(** Scenario-A removal: a ball chosen i.u.r. among balls; returns its
    weight.  @raise Invalid_argument when empty. *)

val static_run :
  Prng.Rng.t -> n:int -> m:int -> d:int -> dist:weight_dist -> t
(** Throw [m] fresh weighted balls. *)

val dynamic_step : t -> Prng.Rng.t -> d:int -> dist:weight_dist -> unit
(** One scenario-A step: remove a random ball, insert a fresh one. *)

type snapshot
(** A full copy of the ball registry (bins and weights by slot). *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** @raise Invalid_argument if the snapshot references a bin outside the
    system or its arrays disagree in length. *)

val sim :
  ?metrics:Engine.Metrics.t ->
  t ->
  d:int ->
  dist:weight_dist ->
  snapshot Engine.Sim.t
(** {!dynamic_step} as an in-place engine stepper on the given system
    (adopted and mutated); the system must be non-empty before stepping.
    The probe hook reports the weighted maximum load rounded up to an
    integer (the engine watermark is integral).
    @raise Invalid_argument if [d < 1]. *)
