(** The closed dynamic system on concrete bins.

    One step = remove a ball per the scenario, then insert a new one per
    the rule.  This is the application-level view (jobs on servers) used
    by the recovery experiments; it is distributionally identical to
    {!Dynamic_process.chain} on the normalized state. *)

type t

val create : ?repr:Repr.t -> Scenario.t -> Scheduling_rule.t -> Bins.t -> t
(** Adopts (and will mutate) the given bins.  [repr] (default
    {!Repr.Array_backed}) selects the insertion machinery:
    [Count_sampled] with an ABKU rule enables the bins'
    {!Bins.enable_sampled_insertion} cutoff table (2 draws per insert,
    equal in law but not in trace); [Count_backed] is identical to
    [Array_backed] here, since {!Bins} is already count-indexed.
    @raise Invalid_argument if the bins hold no balls. *)

val scenario : t -> Scenario.t
val rule : t -> Scheduling_rule.t
val bins : t -> Bins.t

val step : Prng.Rng.t -> t -> unit
val step_probes : Prng.Rng.t -> t -> int
(** As {!step}, returning the probes used by the insertion. *)

val run : Prng.Rng.t -> t -> steps:int -> unit

val max_load : t -> int

val sim : ?metrics:Engine.Metrics.t -> t -> int array Engine.Sim.t
(** The system as a full event machine (observations are per-bin load
    snapshots; the probe is the maximum load).  Besides [Step], its
    {!Engine.Sim.apply} answers [Insert] ([Placed bin], counting probes
    and raising the watermark), [Remove] ([Removed bin], or
    [Rejected "empty"] — consuming no randomness — when no balls
    remain), [Occupancy], [Probe] and [Watermark].  The recovery harness
    drives it through {!Engine.Sim.first_hit}; the serve layer's shards
    ({!Serve.Shard}) drive it through the full vocabulary. *)

val run_until :
  Prng.Rng.t -> t -> pred:(t -> bool) -> limit:int -> int option
(** First step count [<= limit] at which [pred] holds (checked before the
    first step and after every step), or [None]. *)
