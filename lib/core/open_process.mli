(** Open systems (paper, Section 7).

    The ball population varies over time.  The paper's example: start from
    any state and, at each step, with probability ½ remove a ball chosen
    i.u.r. (if any) and with probability ½ insert a new ball.  The
    insertion rule is configurable: the paper's example inserts into a
    bin chosen i.u.r. (ABKU[1]); any rule is accepted.

    Couplings for open systems share the insert/remove coin as well, so
    two copies always hold populations drifting together once their ball
    counts agree. *)

type t

val make :
  ?insert_probability:float -> ?capacity:int -> Scheduling_rule.t -> n:int -> t
(** [capacity] bounds the ball population (the paper's first class of
    open systems, Section 7): an insertion that would exceed it is
    skipped.  Unbounded when omitted.
    @raise Invalid_argument if [n <= 0], the probability is outside
    (0, 1), or [capacity < 1]. *)

val capacity : t -> int option

val n : t -> int
val name : t -> string

val step : t -> Prng.Rng.t -> Bins.t -> unit
(** One step on a concrete system (removal is scenario-A style: a uniform
    random ball). *)

val coupled :
  t -> Loadvec.Mutable_vector.t Coupling.Coupled_chain.t
(** Identity coupling on normalized states: shared coin, shared removal
    variate, shared probe sequence.  The distance is ½‖·‖₁ {e after
    padding}: states may have different totals, so the reported distance
    is ⌈½ ‖v − u‖₁⌉. *)

val step_normalized : t -> Prng.Rng.t -> Loadvec.Mutable_vector.t -> unit

val sim :
  ?metrics:Engine.Metrics.t ->
  t ->
  Loadvec.Mutable_vector.t ->
  Loadvec.Load_vector.t Engine.Sim.t
(** {!step_normalized} as an in-place engine stepper on the given state
    buffer (adopted and mutated).
    @raise Invalid_argument on a dimension mismatch. *)

val exact_transitions :
  t -> Loadvec.Load_vector.t -> (Loadvec.Load_vector.t * float) list
(** Exact one-step law of {!step_normalized} from a normalized state:
    with probability [insert_probability] an insertion (a no-op at
    capacity), otherwise a scenario-A removal (a no-op on the empty
    state).  Probabilities sum to 1; duplicate successors may appear and
    are merged by {!Markov.Exact.build}.  With a capacity the state
    space — all vectors with at most [capacity] balls — is finite, so the
    open system becomes exactly analysable (paper, Section 7).
    @raise Invalid_argument on a dimension mismatch or a state above
    capacity. *)
