(** Growable integer vectors.

    A minimal dynamic array of [int]s (OCaml 5.1's stdlib has none) used
    for ball registries and non-empty-bin sets in {!Bins} and for probe
    memoization in {!Probe}. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
(** @raise Invalid_argument on out-of-bounds access. *)

val set : t -> int -> int -> unit
val push : t -> int -> unit
val pop : t -> int
(** Removes and returns the last element.
    @raise Invalid_argument when empty. *)

val swap_remove : t -> int -> int
(** [swap_remove v i] removes index [i] in O(1) by moving the last
    element into its place; returns the removed value. *)

val clear : t -> unit
val to_array : t -> int array
