type t = {
  rng : Prng.Rng.t;
  n : int;
  buf : Int_vec.t;
  maxes : Int_vec.t;  (* maxes.(i) = max of buf.(0..i) *)
}

let create rng ~n =
  if n <= 0 then invalid_arg "Probe.create: n must be positive";
  { rng; n; buf = Int_vec.create (); maxes = Int_vec.create () }

let extend_to p i =
  while Int_vec.length p.buf <= i do
    let b = Prng.Rng.int p.rng p.n in
    Int_vec.push p.buf b;
    let len = Int_vec.length p.buf in
    let running =
      if len = 1 then b else Stdlib.max b (Int_vec.get p.maxes (len - 2))
    in
    Int_vec.push p.maxes running
  done

let get p i =
  if i < 0 then invalid_arg "Probe.get: negative index";
  extend_to p i;
  Int_vec.get p.buf i

let consumed p = Int_vec.length p.buf

let prefix_max p i =
  if i < 0 then invalid_arg "Probe.prefix_max: negative index";
  extend_to p i;
  Int_vec.get p.maxes i
