module Mv = Loadvec.Mutable_vector

type t = {
  insert_probability : float;
  rule : Scheduling_rule.t;
  n : int;
  capacity : int option;
}

let make ?(insert_probability = 0.5) ?capacity rule ~n =
  if n <= 0 then invalid_arg "Open_process.make: n must be positive";
  if not (insert_probability > 0. && insert_probability < 1.) then
    invalid_arg "Open_process.make: probability must be in (0,1)";
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Open_process.make: capacity must be >= 1"
  | _ -> ());
  { insert_probability; rule; n; capacity }

let n t = t.n
let capacity t = t.capacity

let name t =
  Printf.sprintf "Open(p=%.2f, %s%s)" t.insert_probability
    (Scheduling_rule.name t.rule)
    (match t.capacity with
    | None -> ""
    | Some c -> Printf.sprintf ", cap=%d" c)

let below_capacity t current =
  match t.capacity with None -> true | Some c -> current < c

let step t g bins =
  if Prng.Rng.float g < t.insert_probability then begin
    if below_capacity t (Bins.num_balls bins) then
      ignore (Bins.insert_with_rule t.rule g bins)
  end
  else if Bins.num_balls bins > 0 then ignore (Bins.remove_ball_uniform g bins)

(* One normalized step driven by explicit variates so the coupling can
   share them: [coin] decides insert/remove, [u] drives the removal
   inverse CDF, [probe] drives the insertion. *)
let step_with t v ~coin ~u ~probe =
  if coin < t.insert_probability then begin
    if below_capacity t (Mv.total v) then begin
      let rank, _ =
        Scheduling_rule.choose_rank t.rule ~loads:(Mv.unsafe_loads v) ~probe
      in
      ignore (Mv.incr_at v rank)
    end
  end
  else if Mv.total v > 0 then
    ignore (Mv.decr_at v (Scenario.remove_rank Scenario.A v ~u))

let step_normalized t g v =
  let coin = Prng.Rng.float g in
  let u = Prng.Rng.float g in
  let probe = Probe.create g ~n:t.n in
  step_with t v ~coin ~u ~probe

(* Two variates (coin, removal) plus one draw per consumed probe. *)
let sim ?metrics t v =
  if Mv.dim v <> t.n then invalid_arg "Open_process.sim: dimension mismatch";
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      let coin = Prng.Rng.float g in
      let u = Prng.Rng.float g in
      let probe = Probe.create g ~n:t.n in
      step_with t v ~coin ~u ~probe;
      let probes = Probe.consumed probe in
      Engine.Metrics.add_probes metrics probes;
      Engine.Metrics.add_draws metrics (2 + probes))
    ~observe:(fun () -> Mv.to_load_vector v)
    ~reset:(fun lv -> Mv.set_from_load_vector v lv)
    ~probe:(fun () -> Mv.max_load v)
    ()

let exact_transitions t lv =
  let module Lv = Loadvec.Load_vector in
  if Lv.dim lv <> t.n then
    invalid_arg "Open_process.exact_transitions: dimension mismatch";
  (match t.capacity with
  | Some c when Lv.total lv > c ->
      invalid_arg "Open_process.exact_transitions: state above capacity"
  | _ -> ());
  let p = t.insert_probability in
  let loads = Lv.to_array lv in
  let insert_part =
    if below_capacity t (Lv.total lv) then
      Scheduling_rule.rank_distribution t.rule ~loads
      |> Array.to_seqi
      |> Seq.filter_map (fun (r, pr) ->
             if pr > 0. then Some (Lv.oplus lv r, p *. pr) else None)
      |> List.of_seq
    else [ (lv, p) ]
  in
  let remove_part =
    if Lv.total lv > 0 then
      Scenario.removal_distribution Scenario.A ~loads
      |> Array.to_seqi
      |> Seq.filter_map (fun (r, pr) ->
             if pr > 0. then Some (Lv.ominus lv r, (1. -. p) *. pr) else None)
      |> List.of_seq
    else [ (lv, 1. -. p) ]
  in
  insert_part @ remove_part

let coupled t =
  let step g x y =
    let coin = Prng.Rng.float g in
    let u = Prng.Rng.float g in
    let probe = Probe.create g ~n:t.n in
    step_with t x ~coin ~u ~probe;
    step_with t y ~coin ~u ~probe;
    (x, y)
  in
  Coupling.Coupled_chain.make ~step ~equal:Mv.equal ~distance:(fun a b ->
      (Mv.l1_distance a b + 1) / 2)
