(** Static allocation: throw [m] balls into [n] empty bins with a rule.

    The baseline of Azar et al.: with ABKU[1] the maximum load is
    Θ(ln n / ln ln n) for m = n; with ABKU[d], d ≥ 2, it drops to
    ln ln n / ln d (1 + o(1)) + Θ(m/n).  Experiment E5 reproduces this
    contrast. *)

val sim :
  ?metrics:Engine.Metrics.t -> Scheduling_rule.t -> Bins.t ->
  int array Engine.Sim.t
(** One insertion per step into the given bins (adopted and mutated).
    [run]/[run_stats] are [m] steps of this sim from empty bins. *)

val run : Scheduling_rule.t -> Prng.Rng.t -> n:int -> m:int -> Bins.t
(** Allocate [m] balls sequentially.
    @raise Invalid_argument if [n <= 0] or [m < 0]. *)

val run_stats :
  Scheduling_rule.t -> Prng.Rng.t -> n:int -> m:int -> Bins.t * float
(** Also returns the average number of probes per ball. *)

val max_load_samples :
  Scheduling_rule.t -> Prng.Rng.t -> n:int -> m:int -> reps:int -> int array
(** Max load over [reps] independent runs. *)
