type t = { name : string; threshold : int -> int }

let name x = x.name

let threshold x l =
  if l < 0 then invalid_arg "Adaptive.threshold: negative load";
  x.threshold l

let constant d =
  if d < 1 then invalid_arg "Adaptive.constant: d must be >= 1";
  { name = Printf.sprintf "const%d" d; threshold = (fun _ -> d) }

let of_list ?name steps =
  if steps = [] then invalid_arg "Adaptive.of_list: empty";
  let rec validate prev = function
    | [] -> ()
    | x :: rest ->
        if x < 1 then invalid_arg "Adaptive.of_list: threshold < 1";
        if x < prev then invalid_arg "Adaptive.of_list: not non-decreasing";
        validate x rest
  in
  validate 1 steps;
  let arr = Array.of_list steps in
  let last = arr.(Array.length arr - 1) in
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "list[%s]"
          (String.concat ";" (List.map string_of_int steps))
  in
  { name; threshold = (fun l -> if l < Array.length arr then arr.(l) else last) }

let linear ?(slope = 1) ?(base = 1) () =
  if slope < 0 || base < 1 then invalid_arg "Adaptive.linear";
  { name = Printf.sprintf "linear(%d+%dl)" base slope;
    threshold = (fun l -> base + (slope * l)) }

let doubling () =
  let cap = 1 lsl 20 in
  { name = "doubling";
    threshold = (fun l -> if l >= 20 then cap else 1 lsl l) }
