(** Dynamic processes with limited relocation (paper, Section 7).

    The paper defers relocation to its full version; our instantiation is
    the natural one: after the usual remove-and-insert step, up to [k]
    {e relocations} are performed, each taking one ball out of a
    currently fullest bin and re-inserting it with the scheduling rule
    (the move is kept only if the destination is strictly less loaded,
    so relocation never hurts).  [k = 0] recovers the base process.
    Experiment E12 measures the recovery speed-up as a function of [k]. *)

type t

val make :
  Scenario.t -> Scheduling_rule.t -> relocations:int -> n:int -> t
(** @raise Invalid_argument if [relocations < 0] or [n <= 0]. *)

val name : t -> string

val step : t -> Prng.Rng.t -> Bins.t -> unit
(** One remove-insert step followed by at most [relocations] relocation
    attempts. *)

val sim : ?metrics:Engine.Metrics.t -> t -> Bins.t -> int array Engine.Sim.t
(** {!step} as an in-place engine stepper on the given bins (adopted and
    mutated).  Probes count both insertion and relocation traffic.
    @raise Invalid_argument if the bins were not created with [n] bins. *)

val relocation_attempts : t -> int

val exact_transitions : t -> int array -> (int array * float) list
(** Exact one-step law of {!step} on per-bin load arrays (the state the
    {!sim} adapter observes): removal per the scenario, an ABKU[d]
    insertion (enumerating the [n^d] probe tuples with the stepper's
    first-strict-minimum tie-breaking), then the configured number of
    relocation attempts, each enumerated the same way with the
    deterministic lowest-index fullest source bin.  Duplicate successors
    are merged; probabilities sum to 1.
    @raise Invalid_argument for an ADAP rule (its probe count is
    unbounded, so the tuple enumeration does not terminate), a dimension
    mismatch, a negative load, or a state with no balls. *)
