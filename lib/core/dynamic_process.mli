(** The paper's dynamic allocation processes (Section 3.3).

    A process is a removal scenario plus a scheduling rule; one step
    removes a ball and re-inserts one.  The instances are:

    - [Id-ABKU[d]]  = scenario A + ABKU[d]   (protocol 1_A)
    - [Id-ADAP(x)]  = scenario A + ADAP(x)
    - [Ib-ABKU[d]]  = scenario B + ABKU[d]   (protocol 1_B)
    - [Ib-ADAP(x)]  = scenario B + ADAP(x)

    The module exposes a fast in-place step on mutable normalized vectors,
    a functional {!Markov.Chain.t} view, and the exact transition law used
    for small-state-space ground truth. *)

type t

val make : Scenario.t -> Scheduling_rule.t -> n:int -> t
(** @raise Invalid_argument if [n <= 0]. *)

val scenario : t -> Scenario.t
val rule : t -> Scheduling_rule.t
val n : t -> int

val name : t -> string
(** E.g. ["Id-ABKU[2]"] (scenario A) or ["Ib-ADAP(linear)"]. *)

val step_in_place : t -> Prng.Rng.t -> Loadvec.Mutable_vector.t -> unit
(** One step (remove, then insert), mutating the state.
    @raise Invalid_argument if the state has no balls or wrong
    dimension. *)

val step_probes : t -> Prng.Rng.t -> Loadvec.Mutable_vector.t -> int
(** Like {!step_in_place} but returns the number of probes the insertion
    used (of interest for the ADAP ablation). *)

val chain : t -> Loadvec.Load_vector.t Markov.Chain.t
(** Functional view.
    @deprecated for simulation: each step copies the state through
    {!Loadvec.Mutable_vector.of_load_vector}/[to_load_vector] (two array
    allocations plus a sort).  Use {!sim} with the {!Engine.Sim} drivers
    instead; [chain] remains for exact-analysis-style functional
    states. *)

val sim :
  ?metrics:Engine.Metrics.t ->
  t ->
  Loadvec.Mutable_vector.t ->
  Loadvec.Load_vector.t Engine.Sim.t
(** Zero-allocation stepper on the given state buffer (adopted and
    mutated; the caller may keep it for cheap reads).  The probe is the
    maximum load; probes and RNG draws are counted per step.
    @raise Invalid_argument on a dimension mismatch. *)

val exact_transitions :
  t -> Loadvec.Load_vector.t -> (Loadvec.Load_vector.t * float) list
(** Exact one-step law from a state, enumerating (removal rank class ×
    insertion rank) outcomes.  Probabilities sum to 1. *)
