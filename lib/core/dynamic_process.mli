(** The paper's dynamic allocation processes (Section 3.3).

    A process is a removal scenario plus a scheduling rule; one step
    removes a ball and re-inserts one.  The instances are:

    - [Id-ABKU[d]]  = scenario A + ABKU[d]   (protocol 1_A)
    - [Id-ADAP(x)]  = scenario A + ADAP(x)
    - [Ib-ABKU[d]]  = scenario B + ABKU[d]   (protocol 1_B)
    - [Ib-ADAP(x)]  = scenario B + ADAP(x)

    The module exposes a fast in-place step on mutable normalized vectors,
    a functional {!Markov.Chain.t} view, and the exact transition law used
    for small-state-space ground truth. *)

type t

val make : Scenario.t -> Scheduling_rule.t -> n:int -> t
(** @raise Invalid_argument if [n <= 0]. *)

val scenario : t -> Scenario.t
val rule : t -> Scheduling_rule.t
val n : t -> int

val name : t -> string
(** E.g. ["Id-ABKU[2]"] (scenario A) or ["Ib-ADAP(linear)"]. *)

val step_in_place : t -> Prng.Rng.t -> Loadvec.Mutable_vector.t -> unit
(** One step (remove, then insert), mutating the state.
    @raise Invalid_argument if the state has no balls or wrong
    dimension. *)

val step_probes : t -> Prng.Rng.t -> Loadvec.Mutable_vector.t -> int
(** Like {!step_in_place} but returns the number of probes the insertion
    used (of interest for the ADAP ablation). *)

val step_counts_in_place :
  t -> Prng.Rng.t -> Loadvec.Count_vector.t -> unit
(** One step on the count-vector (multiset) state.  Consumes the
    generator in exactly the order of {!step_in_place}: on states with
    equal multisets the two backends produce bit-identical
    trajectories.  O(max_load) per step instead of O(n).
    @raise Invalid_argument on a dimension mismatch or empty state. *)

val step_counts_probes :
  t -> Prng.Rng.t -> Loadvec.Count_vector.t -> int
(** Like {!step_counts_in_place} but returns the probe count. *)

val chain : t -> Loadvec.Load_vector.t Markov.Chain.t
(** Functional one-step view on immutable vectors (each step copies the
    state through {!Loadvec.Mutable_vector.of_load_vector}, so this is
    for exact-analysis-style functional composition — e.g. feeding
    {!Markov.Empirical} — not for simulation loops; those use {!sim}
    or {!sim_repr} with the {!Engine.Sim} drivers). *)

val sim :
  ?metrics:Engine.Metrics.t ->
  t ->
  Loadvec.Mutable_vector.t ->
  Loadvec.Load_vector.t Engine.Sim.t
(** Zero-allocation stepper on the given state buffer (adopted and
    mutated; the caller may keep it for cheap reads).  The probe is the
    maximum load; probes and RNG draws are counted per step.
    @raise Invalid_argument on a dimension mismatch. *)

val sim_repr :
  ?metrics:Engine.Metrics.t ->
  ?repr:Repr.t ->
  t ->
  Loadvec.Load_vector.t ->
  Loadvec.Load_vector.t Engine.Sim.t
(** Representation-selectable stepper, started from the given state.

    - {!Repr.Array_backed} (default): {!sim} on a fresh
      {!Loadvec.Mutable_vector} — the oracle.
    - {!Repr.Count_backed}: {!Loadvec.Count_vector} state; same RNG
      draw order as the oracle, bit-identical trajectories.
    - {!Repr.Count_sampled}: count-vector state with branch-free
      ABKU\[d\] insertion via {!Scheduling_rule.Abku_table} — one float
      draw replaces the [d] probe draws, so trajectories are equal in
      law but not in trace (checked by {!Validate}); ADAP rules fall
      back to [Count_backed].

    The probe metric always records the law's probe count; the draw
    metric records actual RNG consumption (2 per step for the sampled
    backend, [1 + probes] otherwise).
    @raise Invalid_argument on a dimension mismatch. *)

val exact_transitions :
  t -> Loadvec.Load_vector.t -> (Loadvec.Load_vector.t * float) list
(** Exact one-step law from a state, enumerating (removal rank class ×
    insertion rank) outcomes.  Probabilities sum to 1. *)
