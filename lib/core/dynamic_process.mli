(** The paper's dynamic allocation processes (Section 3.3).

    A process is a removal scenario plus a scheduling rule; one step
    removes a ball and re-inserts one.  The instances are:

    - [Id-ABKU[d]]  = scenario A + ABKU[d]   (protocol 1_A)
    - [Id-ADAP(x)]  = scenario A + ADAP(x)
    - [Ib-ABKU[d]]  = scenario B + ABKU[d]   (protocol 1_B)
    - [Ib-ADAP(x)]  = scenario B + ADAP(x)

    The module exposes a fast in-place step on mutable normalized vectors,
    a functional {!Markov.Chain.t} view, and the exact transition law used
    for small-state-space ground truth. *)

type t

val make : Scenario.t -> Scheduling_rule.t -> n:int -> t
(** @raise Invalid_argument if [n <= 0]. *)

val scenario : t -> Scenario.t
val rule : t -> Scheduling_rule.t
val n : t -> int

val name : t -> string
(** E.g. ["Id-ABKU[2]"] (scenario A) or ["Ib-ADAP(linear)"]. *)

val step_in_place : t -> Prng.Rng.t -> Loadvec.Mutable_vector.t -> unit
(** One step (remove, then insert), mutating the state.
    @raise Invalid_argument if the state has no balls or wrong
    dimension. *)

val step_probes : t -> Prng.Rng.t -> Loadvec.Mutable_vector.t -> int
(** Like {!step_in_place} but returns the number of probes the insertion
    used (of interest for the ADAP ablation). *)

val chain : t -> Loadvec.Load_vector.t Markov.Chain.t
(** Functional view for the generic chain drivers. *)

val exact_transitions :
  t -> Loadvec.Load_vector.t -> (Loadvec.Load_vector.t * float) list
(** Exact one-step law from a state, enumerating (removal rank class ×
    insertion rank) outcomes.  Probabilities sum to 1. *)
