(** Identity-based balls-into-bins system.

    While the Markov-chain analysis works on normalized load vectors, the
    {e application} view (Section 1.1: jobs on servers) keeps bin
    identities.  This module is the O(1)-per-operation concrete system
    used by the recovery and max-load experiments: it tracks per-bin
    loads, the ball registry (for scenario-A removal), the non-empty bin
    set (for scenario-B removal) and the maximum load, all incrementally. *)

type t

val create : n:int -> t
(** [n] empty bins. @raise Invalid_argument if [n <= 0]. *)

val of_loads : int array -> t
(** Start from explicit per-bin loads.
    @raise Invalid_argument on an empty array or negative load. *)

val copy : t -> t
(** A fresh system with the same per-bin loads.  Internal orders
    (registry, slot stacks, level buckets) are canonicalized, not
    replicated, and sampled-insertion mode is not carried over — use
    {!snapshot}/{!of_snapshot} for replay-exact duplication. *)

val n : t -> int
val num_balls : t -> int
val load : t -> int -> int
(** @raise Invalid_argument on a bad bin id. *)

val max_load : t -> int
(** O(1). 0 when empty. *)

val num_nonempty : t -> int

val add_ball : t -> int -> unit
(** @raise Invalid_argument on a bad bin id. *)

val remove_ball_uniform : Prng.Rng.t -> t -> int
(** Scenario-A removal: delete a ball chosen i.u.r. among all balls;
    returns the bin it came from.
    @raise Invalid_argument when there are no balls. *)

val remove_from_random_nonempty : Prng.Rng.t -> t -> int
(** Scenario-B removal: delete one ball from a non-empty bin chosen
    i.u.r.; returns the bin.
    @raise Invalid_argument when there are no balls. *)

val move_ball : t -> src:int -> dst:int -> unit
(** Relocate one ball from [src] to [dst].
    @raise Invalid_argument on bad ids or an empty [src]. *)

val insert_with_rule : Scheduling_rule.t -> Prng.Rng.t -> t -> int * int
(** [insert_with_rule rule g bins] places one new ball by probing bins
    i.u.r. per the rule (least-loaded-so-far wins, ADAP keeps probing
    while its threshold demands).  Returns [(bin, probes_used)]. *)

val enable_sampled_insertion : t -> d:int -> unit
(** Switch this store to cutoff-table ABKU\[d\] insertion: build a
    {!Scheduling_rule.Abku_table} over the current level counts and
    keep it maintained (O(1)) through every subsequent ball move.
    Backs the [counts-sampled] representation of {!Repr} in the serve
    layer.  @raise Invalid_argument if [d < 1]. *)

val sampled_insertion : t -> int option
(** [Some d] when sampled insertion is enabled. *)

val insert_sampled : Prng.Rng.t -> t -> int * int
(** Place one ball using the cutoff table: one float draw picks the
    destination load level (exactly the law of the least-loaded of [d]
    uniform probes), one int draw picks the bin uniformly inside that
    level's bucket.  Equal in law to [insert_with_rule (Abku d)] but
    not in trace (2 draws instead of [d]).  Returns [(bin, d)].
    @raise Invalid_argument unless {!enable_sampled_insertion} ran. *)

val reset_loads : t -> int array -> unit
(** Overwrite the state with the given per-bin loads, in place (O(m)) —
    the reset primitive of the simulation engine.
    @raise Invalid_argument on a dimension mismatch or negative load. *)

val loads : t -> int array
(** Snapshot of per-bin loads. *)

val to_load_vector : t -> Loadvec.Load_vector.t

(** {2 Registry snapshots}

    Both removal scenarios sample internal {e orders} — the ball
    registry (scenario A), the non-empty list and per-bin slot stacks
    (scenario B) — so two systems with equal load vectors need not
    replay identically under the same random stream.  A snapshot
    captures every order; {!of_snapshot} rebuilds a system that is
    bit-identical to the original under all subsequent operations.
    This is what makes checkpoint/restore of a live system exact
    (see {!Serve.Shard.state}). *)

type snapshot = {
  sn_n : int;  (** Bin count. *)
  sn_balls : int array;  (** Registry slot -> bin id, in slot order. *)
  sn_slot_order : int array;
      (** Every slot exactly once, listed in each bin's internal stack
          order (bins concatenated in id order). *)
  sn_nonempty : int array;  (** The non-empty bins, in internal order. *)
  sn_levels : int array array;
      (** Entry [l]: the bins at load [l], in bucket order (entry [0]
          lists the empty bins).  Sampled insertion picks uniformly
          inside a bucket, so bucket order is replayable state too. *)
}

val snapshot : t -> snapshot

val of_snapshot : snapshot -> t
(** @raise Invalid_argument on a malformed snapshot (bad bin ids,
    [sn_slot_order] not a permutation, or an [sn_nonempty] list that
    does not match the occupied bins). *)
