(** Identity-based balls-into-bins system.

    While the Markov-chain analysis works on normalized load vectors, the
    {e application} view (Section 1.1: jobs on servers) keeps bin
    identities.  This module is the O(1)-per-operation concrete system
    used by the recovery and max-load experiments: it tracks per-bin
    loads, the ball registry (for scenario-A removal), the non-empty bin
    set (for scenario-B removal) and the maximum load, all incrementally. *)

type t

val create : n:int -> t
(** [n] empty bins. @raise Invalid_argument if [n <= 0]. *)

val of_loads : int array -> t
(** Start from explicit per-bin loads.
    @raise Invalid_argument on an empty array or negative load. *)

val copy : t -> t
val n : t -> int
val num_balls : t -> int
val load : t -> int -> int
(** @raise Invalid_argument on a bad bin id. *)

val max_load : t -> int
(** O(1). 0 when empty. *)

val num_nonempty : t -> int

val add_ball : t -> int -> unit
(** @raise Invalid_argument on a bad bin id. *)

val remove_ball_uniform : Prng.Rng.t -> t -> int
(** Scenario-A removal: delete a ball chosen i.u.r. among all balls;
    returns the bin it came from.
    @raise Invalid_argument when there are no balls. *)

val remove_from_random_nonempty : Prng.Rng.t -> t -> int
(** Scenario-B removal: delete one ball from a non-empty bin chosen
    i.u.r.; returns the bin.
    @raise Invalid_argument when there are no balls. *)

val move_ball : t -> src:int -> dst:int -> unit
(** Relocate one ball from [src] to [dst].
    @raise Invalid_argument on bad ids or an empty [src]. *)

val insert_with_rule : Scheduling_rule.t -> Prng.Rng.t -> t -> int * int
(** [insert_with_rule rule g bins] places one new ball by probing bins
    i.u.r. per the rule (least-loaded-so-far wins, ADAP keeps probing
    while its threshold demands).  Returns [(bin, probes_used)]. *)

val reset_loads : t -> int array -> unit
(** Overwrite the state with the given per-bin loads, in place (O(m)) —
    the reset primitive of the simulation engine.
    @raise Invalid_argument on a dimension mismatch or negative load. *)

val loads : t -> int array
(** Snapshot of per-bin loads. *)

val to_load_vector : t -> Loadvec.Load_vector.t

(** {2 Registry snapshots}

    Both removal scenarios sample internal {e orders} — the ball
    registry (scenario A), the non-empty list and per-bin slot stacks
    (scenario B) — so two systems with equal load vectors need not
    replay identically under the same random stream.  A snapshot
    captures every order; {!of_snapshot} rebuilds a system that is
    bit-identical to the original under all subsequent operations.
    This is what makes checkpoint/restore of a live system exact
    (see {!Serve.Shard.state}). *)

type snapshot = {
  sn_n : int;  (** Bin count. *)
  sn_balls : int array;  (** Registry slot -> bin id, in slot order. *)
  sn_slot_order : int array;
      (** Every slot exactly once, listed in each bin's internal stack
          order (bins concatenated in id order). *)
  sn_nonempty : int array;  (** The non-empty bins, in internal order. *)
}

val snapshot : t -> snapshot

val of_snapshot : snapshot -> t
(** @raise Invalid_argument on a malformed snapshot (bad bin ids,
    [sn_slot_order] not a permutation, or an [sn_nonempty] list that
    does not match the occupied bins). *)
