type t = {
  scenario : Scenario.t;
  rule : Scheduling_rule.t;
  relocations : int;
  n : int;
}

let make scenario rule ~relocations ~n =
  if relocations < 0 then invalid_arg "Relocation.make: negative relocations";
  if n <= 0 then invalid_arg "Relocation.make: n must be positive";
  { scenario; rule; relocations; n }

let name t =
  let prefix = match t.scenario with Scenario.A -> "Id" | Scenario.B -> "Ib" in
  Printf.sprintf "%s-%s+reloc%d" prefix (Scheduling_rule.name t.rule)
    t.relocations

let relocation_attempts t = t.relocations

(* Find some bin with the current maximum load: scan is O(n) but the
   relocation count is small and experiments use moderate n. *)
let fullest_bin bins =
  let target = Bins.max_load bins in
  let rec scan b =
    if Bins.load bins b = target then b else scan (b + 1)
  in
  scan 0

(* Returns the number of probes it consumed, so the engine adapter can
   meter relocation traffic alongside insertion traffic. *)
let relocate_once t g bins =
  if Bins.max_load bins > 0 then begin
    let from_bin = fullest_bin bins in
    (* Probe for a destination per the rule without committing. *)
    let d = match t.rule with Scheduling_rule.Abku d -> d | Adap _ -> 2 in
    let best = ref (Prng.Rng.int g t.n) in
    for _ = 2 to d do
      let b = Prng.Rng.int g t.n in
      if Bins.load bins b < Bins.load bins !best then best := b
    done;
    (* Commit only strictly improving moves, so relocation never makes
       the state worse. *)
    if Bins.load bins !best + 1 < Bins.load bins from_bin then
      Bins.move_ball bins ~src:from_bin ~dst:!best;
    d
  end
  else 0

let step_counted t g bins =
  (match t.scenario with
  | Scenario.A -> ignore (Bins.remove_ball_uniform g bins)
  | Scenario.B -> ignore (Bins.remove_from_random_nonempty g bins));
  let _, insert_probes = Bins.insert_with_rule t.rule g bins in
  let reloc_probes = ref 0 in
  for _ = 1 to t.relocations do
    reloc_probes := !reloc_probes + relocate_once t g bins
  done;
  insert_probes + !reloc_probes

let step t g bins = ignore (step_counted t g bins)

let sim ?metrics t bins =
  if Bins.n bins <> t.n then invalid_arg "Relocation.sim: size mismatch";
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      let probes = step_counted t g bins in
      Engine.Metrics.add_probes metrics probes;
      Engine.Metrics.add_draws metrics (1 + probes))
    ~observe:(fun () -> Bins.loads bins)
    ~reset:(fun loads -> Bins.reset_loads bins loads)
    ~probe:(fun () -> Bins.max_load bins)
    ()
