type t = {
  scenario : Scenario.t;
  rule : Scheduling_rule.t;
  relocations : int;
  n : int;
}

let make scenario rule ~relocations ~n =
  if relocations < 0 then invalid_arg "Relocation.make: negative relocations";
  if n <= 0 then invalid_arg "Relocation.make: n must be positive";
  { scenario; rule; relocations; n }

let name t =
  let prefix = match t.scenario with Scenario.A -> "Id" | Scenario.B -> "Ib" in
  Printf.sprintf "%s-%s+reloc%d" prefix (Scheduling_rule.name t.rule)
    t.relocations

let relocation_attempts t = t.relocations

(* Find some bin with the current maximum load: scan is O(n) but the
   relocation count is small and experiments use moderate n. *)
let fullest_bin bins =
  let target = Bins.max_load bins in
  let rec scan b =
    if Bins.load bins b = target then b else scan (b + 1)
  in
  scan 0

(* Returns the number of probes it consumed, so the engine adapter can
   meter relocation traffic alongside insertion traffic. *)
let relocate_once t g bins =
  if Bins.max_load bins > 0 then begin
    let from_bin = fullest_bin bins in
    (* Probe for a destination per the rule without committing. *)
    let d = match t.rule with Scheduling_rule.Abku d -> d | Adap _ -> 2 in
    let best = ref (Prng.Rng.int g t.n) in
    for _ = 2 to d do
      let b = Prng.Rng.int g t.n in
      if Bins.load bins b < Bins.load bins !best then best := b
    done;
    (* Commit only strictly improving moves, so relocation never makes
       the state worse. *)
    if Bins.load bins !best + 1 < Bins.load bins from_bin then
      Bins.move_ball bins ~src:from_bin ~dst:!best;
    d
  end
  else 0

let step_counted t g bins =
  (match t.scenario with
  | Scenario.A -> ignore (Bins.remove_ball_uniform g bins)
  | Scenario.B -> ignore (Bins.remove_from_random_nonempty g bins));
  let _, insert_probes = Bins.insert_with_rule t.rule g bins in
  let reloc_probes = ref 0 in
  for _ = 1 to t.relocations do
    reloc_probes := !reloc_probes + relocate_once t g bins
  done;
  insert_probes + !reloc_probes

let step t g bins = ignore (step_counted t g bins)

(* ---- exact one-step law (per-bin load arrays) ---------------------- *)

(* The enumerations below mirror the steppers above branch for branch:
   Bins.insert_with_rule's and relocate_once's first-strict-minimum probe
   tie-breaking, and relocate_once's lowest-index fullest source. *)

let merge_outcomes outcomes =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s, p) ->
      let prev = Option.value (Hashtbl.find_opt tbl s) ~default:0. in
      Hashtbl.replace tbl s (prev +. p))
    outcomes;
  Hashtbl.fold (fun s p acc -> (s, p) :: acc) tbl []

let apply_stage dist f =
  List.concat_map (fun (s, p) -> List.map (fun (s', q) -> (s', p *. q)) (f s)) dist
  |> merge_outcomes

(* Probability each bin is the probe winner after [d] i.u.r. probes,
   a later probe displacing the current best only on a strictly smaller
   load — exactly [Bins.insert_with_rule (Abku d)]. *)
let abku_choice_distribution ~d loads =
  let n = Array.length loads in
  let dist = Array.make n 0. in
  let inv_n = 1. /. float_of_int n in
  let rec go probes best p =
    if probes = d then dist.(best) <- dist.(best) +. p
    else
      for b = 0 to n - 1 do
        go (probes + 1) (if loads.(b) < loads.(best) then b else best) (p *. inv_n)
      done
  in
  for b0 = 0 to n - 1 do
    go 1 b0 inv_n
  done;
  dist

let array_update loads b delta =
  let s = Array.copy loads in
  s.(b) <- s.(b) + delta;
  s

let removal_outcomes scenario loads =
  let m = Array.fold_left ( + ) 0 loads in
  match scenario with
  | Scenario.A ->
      let inv_m = 1. /. float_of_int m in
      List.filter_map
        (fun b ->
          if loads.(b) = 0 then None
          else Some (array_update loads b (-1), float_of_int loads.(b) *. inv_m))
        (List.init (Array.length loads) Fun.id)
  | Scenario.B ->
      let nonempty = Array.fold_left (fun acc l -> if l > 0 then acc + 1 else acc) 0 loads in
      let p = 1. /. float_of_int nonempty in
      List.filter_map
        (fun b -> if loads.(b) = 0 then None else Some (array_update loads b (-1), p))
        (List.init (Array.length loads) Fun.id)

let insertion_outcomes ~d loads =
  abku_choice_distribution ~d loads
  |> Array.to_seqi
  |> Seq.filter_map (fun (b, p) ->
         if p > 0. then Some (array_update loads b 1, p) else None)
  |> List.of_seq

let relocation_outcomes ~d loads =
  let max_load = Array.fold_left Stdlib.max 0 loads in
  if max_load = 0 then [ (loads, 1.) ]
  else begin
    (* relocate_once's [fullest_bin]: lowest index at the maximum. *)
    let from_bin =
      let rec scan b = if loads.(b) = max_load then b else scan (b + 1) in
      scan 0
    in
    abku_choice_distribution ~d loads
    |> Array.to_seqi
    |> Seq.filter_map (fun (b, p) ->
           if p <= 0. then None
           else if loads.(b) + 1 < loads.(from_bin) then
             (* Commit: move one ball from the fullest bin to [b]. *)
             let s = Array.copy loads in
             s.(from_bin) <- s.(from_bin) - 1;
             s.(b) <- s.(b) + 1;
             Some (s, p)
           else Some (loads, p))
    |> List.of_seq
    |> merge_outcomes
  end

let exact_transitions t loads0 =
  let d =
    match t.rule with
    | Scheduling_rule.Abku d -> d
    | Adap _ ->
        invalid_arg
          "Relocation.exact_transitions: ADAP probe tuples are unbounded"
  in
  if Array.length loads0 <> t.n then
    invalid_arg "Relocation.exact_transitions: dimension mismatch";
  Array.iter
    (fun l ->
      if l < 0 then invalid_arg "Relocation.exact_transitions: negative load")
    loads0;
  if Array.for_all (( = ) 0) loads0 then
    invalid_arg "Relocation.exact_transitions: no balls";
  let dist = removal_outcomes t.scenario loads0 in
  let dist = apply_stage dist (insertion_outcomes ~d) in
  let rec relocate k dist =
    if k = 0 then dist else relocate (k - 1) (apply_stage dist (relocation_outcomes ~d))
  in
  relocate t.relocations dist

let sim ?metrics t bins =
  if Bins.n bins <> t.n then invalid_arg "Relocation.sim: size mismatch";
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      let probes = step_counted t g bins in
      Engine.Metrics.add_probes metrics probes;
      Engine.Metrics.add_draws metrics (1 + probes))
    ~observe:(fun () -> Bins.loads bins)
    ~reset:(fun loads -> Bins.reset_loads bins loads)
    ~probe:(fun () -> Bins.max_load bins)
    ()
