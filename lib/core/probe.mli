(** Probe sequences — the random source RS of Section 3.2.

    One insertion's randomness is the i.u.r. sequence [b₁, b₂, …] of bin
    ranks (the paper's [b ∈ RS]).  A [Probe.t] materialises such a
    sequence lazily and memoizes it, so two coupled copies of a chain can
    read the {e same} sequence even when they consume different prefixes —
    exactly the identity permutation [Φ_D] of Lemma 3.4. *)

type t

val create : Prng.Rng.t -> n:int -> t
(** [create g ~n] starts an empty memoized sequence of uniform draws from
    [0, n).
    @raise Invalid_argument if [n <= 0]. *)

val get : t -> int -> int
(** [get p i] is the [i]-th probe (0-based), drawing and memoizing any
    missing prefix. *)

val consumed : t -> int
(** Number of probes materialised so far. *)

val prefix_max : t -> int -> int
(** [prefix_max p i] is [max(b₀, …, bᵢ)] — the paper's [p(b)ᵢ₊₁], i.e.
    the rank of the least-loaded bin probed so far when ranks index a
    normalized (non-increasing) load vector.  Memoized in O(1) amortized. *)
