(** Static scheduling rules: ABKU[d] and ADAP(x) (paper, Section 2).

    A rule decides where a new ball goes.  On a {e normalized} load
    vector, both rules are instances of the right-oriented random function
    [D] of formula (1): given the probe sequence [b], they pick the rank
    [p(b)_j] with [j = min{t : x_{load(p(b)_t)} ≤ t}].  Lemma 3.4 proves
    this [D] right-oriented with [Φ] the identity, which is what makes
    sharing the probe sequence between coupled copies contractive
    (Lemma 3.3). *)

type t =
  | Abku of int  (** ABKU[d]: probe [d] bins i.u.r., use the least full. *)
  | Adap of Adaptive.t
      (** ADAP(x): keep probing while the best bin so far looks too full. *)

val abku : int -> t
(** @raise Invalid_argument if [d < 1]. *)

val adap : Adaptive.t -> t
val name : t -> string

val probe_cap : int
(** Safety bound on probes per insertion. *)

exception Probe_cap_exceeded of { n : int; x : string; cap : int }
(** Raised when an insertion issues more than [cap = probe_cap] probes
    over [n] bins under the threshold sequence named [x] — a sequence
    whose thresholds exceed the cap can demand more probes than any
    state can release, which would otherwise loop for a very long time.
    Raised by {!choose_rank}, {!rank_distribution}, {!expected_probes},
    {!Bins.insert_with_rule} and the direct stepper in
    {!Dynamic_process}. *)

val probe_cap_exceeded : t -> n:int -> 'a
(** Raise {!Probe_cap_exceeded} for the given rule on [n] bins. *)

val choose_rank : t -> loads:int array -> probe:Probe.t -> int * int
(** [choose_rank rule ~loads ~probe] evaluates [D(v, b)] on the normalized
    vector [loads] (sorted non-increasingly) reading ranks from [probe].
    Returns [(rank, probes_used)]. *)

val rank_distribution : t -> loads:int array -> float array
(** The exact law of [choose_rank]'s rank on the given normalized vector:
    entry [j] is the probability the new ball lands at rank [j].  Closed
    form for ABKU; dynamic program over probe counts for ADAP.  Used to
    build exact transition matrices. *)

val expected_probes : t -> loads:int array -> float
(** Expected number of probes per insertion on the given vector (exact,
    same dynamic program). *)
