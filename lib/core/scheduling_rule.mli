(** Static scheduling rules: ABKU[d] and ADAP(x) (paper, Section 2).

    A rule decides where a new ball goes.  On a {e normalized} load
    vector, both rules are instances of the right-oriented random function
    [D] of formula (1): given the probe sequence [b], they pick the rank
    [p(b)_j] with [j = min{t : x_{load(p(b)_t)} ≤ t}].  Lemma 3.4 proves
    this [D] right-oriented with [Φ] the identity, which is what makes
    sharing the probe sequence between coupled copies contractive
    (Lemma 3.3). *)

type t =
  | Abku of int  (** ABKU[d]: probe [d] bins i.u.r., use the least full. *)
  | Adap of Adaptive.t
      (** ADAP(x): keep probing while the best bin so far looks too full. *)

val abku : int -> t
(** @raise Invalid_argument if [d < 1]. *)

val adap : Adaptive.t -> t
val name : t -> string

val probe_cap : int
(** Safety bound on probes per insertion. *)

exception Probe_cap_exceeded of { n : int; x : string; cap : int }
(** Raised when an insertion issues more than [cap = probe_cap] probes
    over [n] bins under the threshold sequence named [x] — a sequence
    whose thresholds exceed the cap can demand more probes than any
    state can release, which would otherwise loop for a very long time.
    Raised by {!choose_rank}, {!rank_distribution}, {!expected_probes},
    {!Bins.insert_with_rule} and the direct stepper in
    {!Dynamic_process}. *)

val probe_cap_exceeded : t -> n:int -> 'a
(** Raise {!Probe_cap_exceeded} for the given rule on [n] bins. *)

val choose_rank : t -> loads:int array -> probe:Probe.t -> int * int
(** [choose_rank rule ~loads ~probe] evaluates [D(v, b)] on the normalized
    vector [loads] (sorted non-increasingly) reading ranks from [probe].
    Returns [(rank, probes_used)]. *)

(** Branch-free ABKU\[d\] insertion sampling.  On a normalized vector
    the inserted rank is the maximum of [d] uniform ranks; grouped by
    load level its CDF at the class boundaries is [B(l) = (g(l)/n)^d]
    with [g(l)] the number of bins of load at least [l].  The table
    precomputes [B] and keeps it current under the elementary moves of
    the dynamic processes — each move changes a single [g] entry, so
    maintenance is O(1) — turning a d-probe insertion into one float
    draw plus a short ascending scan.  This is the sampler behind the
    [counts-sampled] backend of {!Repr}; it spends its randomness
    differently from the probe-by-probe oracle, so it is equal in law
    but not in trace. *)
module Abku_table : sig
  type table

  val create : d:int -> n:int -> max_level:int -> count:(int -> int) -> table
  (** Build from level counts: [count l] must return the number of bins
      carrying exactly [l] balls, for [0 <= l <= max_level].
      @raise Invalid_argument if [d < 1] or [n <= 0]. *)

  val on_gain : table -> int -> unit
  (** [on_gain t l]: a bin rose from level [l - 1] to [l]. *)

  val on_loss : table -> int -> unit
  (** [on_loss t l]: a bin fell from level [l] to [l - 1].
      @raise Invalid_argument if no bin sits at level [l]. *)

  val draw_level : table -> Prng.Rng.t -> int
  (** Sample the level of the bin that receives the ball (its load
      {e before} the insertion), using one float draw. *)

  val level_distribution : table -> float array
  (** Exact law of {!draw_level}: entry [l] is the probability the ball
      lands in a bin of current load [l].  Sums to 1; used by the
      conformance tests to check the table against
      {!rank_distribution}. *)
end

val rank_distribution : t -> loads:int array -> float array
(** The exact law of [choose_rank]'s rank on the given normalized vector:
    entry [j] is the probability the new ball lands at rank [j].  Closed
    form for ABKU; dynamic program over probe counts for ADAP.  Used to
    build exact transition matrices. *)

val expected_probes : t -> loads:int array -> float
(** Expected number of probes per insertion on the given vector (exact,
    same dynamic program). *)
