let run_stats rule g ~n ~m =
  if n <= 0 || m < 0 then invalid_arg "Static_process.run";
  let bins = Bins.create ~n in
  let probes = ref 0 in
  for _ = 1 to m do
    let _, p = Bins.insert_with_rule rule g bins in
    probes := !probes + p
  done;
  let avg = if m = 0 then 0. else float_of_int !probes /. float_of_int m in
  (bins, avg)

let run rule g ~n ~m = fst (run_stats rule g ~n ~m)

let max_load_samples rule g ~n ~m ~reps =
  if reps < 0 then invalid_arg "Static_process.max_load_samples";
  Array.init reps (fun _ ->
      let g' = Prng.Rng.split g in
      Bins.max_load (run rule g' ~n ~m))
