(* One insertion per step; the caller owns the bins. *)
let sim ?metrics rule bins =
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      let _, probes = Bins.insert_with_rule rule g bins in
      Engine.Metrics.add_probes metrics probes;
      Engine.Metrics.add_draws metrics probes)
    ~observe:(fun () -> Bins.loads bins)
    ~reset:(fun loads -> Bins.reset_loads bins loads)
    ~probe:(fun () -> Bins.max_load bins)
    ()

let run_stats rule g ~n ~m =
  if n <= 0 || m < 0 then invalid_arg "Static_process.run";
  let bins = Bins.create ~n in
  let s = sim rule bins in
  Engine.Sim.iterate s g m;
  let probes = (Engine.Metrics.snapshot (Engine.Sim.metrics s)).probes in
  let avg = if m = 0 then 0. else float_of_int probes /. float_of_int m in
  (bins, avg)

let run rule g ~n ~m = fst (run_stats rule g ~n ~m)

let max_load_samples rule g ~n ~m ~reps =
  if reps < 0 then invalid_arg "Static_process.max_load_samples";
  Array.init reps (fun _ ->
      let g' = Prng.Rng.split g in
      Bins.max_load (run rule g' ~n ~m))
