module Mv = Loadvec.Mutable_vector
module Lv = Loadvec.Load_vector
module Cv = Loadvec.Count_vector

type t = { scenario : Scenario.t; rule : Scheduling_rule.t; n : int }

let make scenario rule ~n =
  if n <= 0 then invalid_arg "Dynamic_process.make: n must be positive";
  { scenario; rule; n }

let scenario t = t.scenario
let rule t = t.rule
let n t = t.n

let name t =
  let prefix = match t.scenario with Scenario.A -> "Id" | Scenario.B -> "Ib" in
  Printf.sprintf "%s-%s" prefix (Scheduling_rule.name t.rule)

(* Insertion without probe memoization: draw ranks directly.  Equivalent
   in law to evaluating D(v, b) on a fresh probe sequence. *)
let choose_rank_direct rule g ~loads =
  let n = Array.length loads in
  match rule with
  | Scheduling_rule.Abku d ->
      let best = ref (Prng.Rng.int g n) in
      for _ = 2 to d do
        let b = Prng.Rng.int g n in
        if b > !best then best := b
      done;
      (!best, d)
  | Scheduling_rule.Adap x ->
      let rec go t best =
        if t > Scheduling_rule.probe_cap then
          Scheduling_rule.probe_cap_exceeded rule ~n;
        if Adaptive.threshold x loads.(best) <= t then (best, t)
        else go (t + 1) (Stdlib.max best (Prng.Rng.int g n))
      in
      go 1 (Prng.Rng.int g n)

let step_probes t g v =
  if Mv.dim v <> t.n then invalid_arg "Dynamic_process.step: dimension mismatch";
  let u = Prng.Rng.float g in
  let rank = Scenario.remove_rank t.scenario v ~u in
  ignore (Mv.decr_at v rank);
  let target, probes = choose_rank_direct t.rule g ~loads:(Mv.unsafe_loads v) in
  ignore (Mv.incr_at v target);
  probes

let step_in_place t g v = ignore (step_probes t g v)

(* Count-vector twin of [choose_rank_direct]: identical draw sequence,
   with the rank-to-load lookup done by a level scan instead of an
   array read.  For ADAP the best level is only rescanned when the best
   rank improves. *)
let choose_level_direct rule g cv =
  let n = Cv.dim cv in
  match rule with
  | Scheduling_rule.Abku d ->
      let best = ref (Prng.Rng.int g n) in
      for _ = 2 to d do
        let b = Prng.Rng.int g n in
        if b > !best then best := b
      done;
      (Cv.level_of_rank cv !best, d)
  | Scheduling_rule.Adap x ->
      let rec go t best level =
        if t > Scheduling_rule.probe_cap then
          Scheduling_rule.probe_cap_exceeded rule ~n;
        if Adaptive.threshold x level <= t then (level, t)
        else
          let b = Prng.Rng.int g n in
          if b > best then go (t + 1) b (Cv.level_of_rank cv b)
          else go (t + 1) best level
      in
      let r = Prng.Rng.int g n in
      go 1 r (Cv.level_of_rank cv r)

(* Count-backed step: consumes exactly the draws of [step_probes] (one
   removal float, then the rule's rank ints), so on equal multisets the
   two steppers stay in lockstep forever. *)
let step_counts_probes t g cv =
  if Cv.dim cv <> t.n then
    invalid_arg "Dynamic_process.step_counts: dimension mismatch";
  let u = Prng.Rng.float g in
  let level = Scenario.remove_level t.scenario cv ~u in
  Cv.shift_down cv level;
  let dest, probes = choose_level_direct t.rule g cv in
  Cv.shift_up cv dest;
  probes

let step_counts_in_place t g cv = ignore (step_counts_probes t g cv)

let chain t =
  Markov.Chain.make (fun g lv ->
      let v = Mv.of_load_vector lv in
      step_in_place t g v;
      Mv.to_load_vector v)

(* One removal variate plus one draw per insertion probe. *)
let sim ?metrics t v =
  if Mv.dim v <> t.n then invalid_arg "Dynamic_process.sim: dimension mismatch";
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      let probes = step_probes t g v in
      Engine.Metrics.add_probes metrics probes;
      Engine.Metrics.add_draws metrics (1 + probes))
    ~observe:(fun () -> Mv.to_load_vector v)
    ~reset:(fun lv -> Mv.set_from_load_vector v lv)
    ~probe:(fun () -> Mv.max_load v)
    ()

(* {2 Representation-selectable steppers} *)

let sim_counts ?metrics t cv =
  if Cv.dim cv <> t.n then
    invalid_arg "Dynamic_process.sim: dimension mismatch";
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      let probes = step_counts_probes t g cv in
      Engine.Metrics.add_probes metrics probes;
      Engine.Metrics.add_draws metrics (1 + probes))
    ~observe:(fun () -> Cv.to_load_vector cv)
    ~reset:(fun lv -> Cv.set_from_load_vector cv lv)
    ~probe:(fun () -> Cv.max_load cv)
    ()

(* Cutoff-table backend (ABKU only): the removal draw is unchanged, the
   d probe draws collapse into one float through the incrementally
   maintained CDF table.  Probes are still accounted as d — that is the
   law being simulated — while the draw counter records the real
   consumption (two floats per step). *)
let sim_counts_sampled ?metrics t cv ~d =
  if Cv.dim cv <> t.n then
    invalid_arg "Dynamic_process.sim: dimension mismatch";
  let module Tbl = Scheduling_rule.Abku_table in
  let rebuild () =
    Tbl.create ~d ~n:t.n ~max_level:(Cv.max_load cv) ~count:(Cv.count cv)
  in
  let table = ref (rebuild ()) in
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      let u = Prng.Rng.float g in
      let level = Scenario.remove_level t.scenario cv ~u in
      Cv.shift_down cv level;
      Tbl.on_loss !table level;
      let dest = Tbl.draw_level !table g in
      Cv.shift_up cv dest;
      Tbl.on_gain !table (dest + 1);
      Engine.Metrics.add_probes metrics d;
      Engine.Metrics.add_draws metrics 2)
    ~observe:(fun () -> Cv.to_load_vector cv)
    ~reset:(fun lv ->
      Cv.set_from_load_vector cv lv;
      table := rebuild ())
    ~probe:(fun () -> Cv.max_load cv)
    ()

let sim_repr ?metrics ?(repr = Repr.Array_backed) t start =
  if Lv.dim start <> t.n then
    invalid_arg "Dynamic_process.sim_repr: dimension mismatch";
  match (repr, t.rule) with
  | Repr.Array_backed, _ -> sim ?metrics t (Mv.of_load_vector start)
  | Repr.Count_backed, _ | Repr.Count_sampled, Scheduling_rule.Adap _ ->
      (* ADAP's probe loop is data-dependent; there is no cutoff table
         to collapse it, so counts-sampled degrades to counts. *)
      sim_counts ?metrics t (Cv.of_load_vector start)
  | Repr.Count_sampled, Scheduling_rule.Abku d ->
      sim_counts_sampled ?metrics t (Cv.of_load_vector start) ~d

let exact_transitions t lv =
  let loads = Lv.to_array lv in
  let removal = Scenario.removal_distribution t.scenario ~loads in
  (* Group removal ranks by load value: within a value class every rank
     yields the same normalized successor (Fact 3.2). *)
  let out = ref [] in
  let nranks = Array.length loads in
  let i = ref 0 in
  while !i < nranks do
    let v_i = loads.(!i) in
    let j = ref !i in
    let p_class = ref 0. in
    while !j < nranks && loads.(!j) = v_i do
      p_class := !p_class +. removal.(!j);
      incr j
    done;
    if !p_class > 0. then begin
      let after_removal = Lv.ominus lv !i in
      let loads' = Lv.to_array after_removal in
      let insertion = Scheduling_rule.rank_distribution t.rule ~loads:loads' in
      Array.iteri
        (fun r p_ins ->
          if p_ins > 0. then
            out := (Lv.oplus after_removal r, !p_class *. p_ins) :: !out)
        insertion
    end;
    i := !j
  done;
  !out
