module Lv = Loadvec.Load_vector

let holds_pointwise rule ~v ~u ~probe =
  if Lv.dim v <> Lv.dim u then
    invalid_arg "Right_oriented.holds_pointwise: dimension mismatch";
  let av = Lv.to_array v and au = Lv.to_array u in
  let rv, _ = Scheduling_rule.choose_rank rule ~loads:av ~probe in
  let ru, _ = Scheduling_rule.choose_rank rule ~loads:au ~probe in
  if rv < ru then au.(rv) > av.(rv)
  else if ru < rv then av.(ru) > au.(ru)
  else true

let contraction_holds rule ~v ~u ~probe =
  if Lv.dim v <> Lv.dim u then
    invalid_arg "Right_oriented.contraction_holds: dimension mismatch";
  let rv, _ = Scheduling_rule.choose_rank rule ~loads:(Lv.to_array v) ~probe in
  let ru, _ = Scheduling_rule.choose_rank rule ~loads:(Lv.to_array u) ~probe in
  Lv.l1_distance (Lv.oplus v rv) (Lv.oplus u ru) <= Lv.l1_distance v u

let random_state g ~n ~m =
  let a = Array.make n 0 in
  for _ = 1 to m do
    let i = Prng.Rng.int g n in
    a.(i) <- a.(i) + 1
  done;
  Lv.of_array a

let spot_check rule g ~n ~m ~trials =
  if n < 1 || m < 0 || trials < 1 then
    invalid_arg "Right_oriented.spot_check: bad parameters";
  let ok = ref true in
  let t = ref 0 in
  while !ok && !t < trials do
    let v = random_state g ~n ~m and u = random_state g ~n ~m in
    let probe = Probe.create g ~n in
    if not (holds_pointwise rule ~v ~u ~probe)
       || not (contraction_holds rule ~v ~u ~probe)
    then ok := false;
    incr t
  done;
  !ok
