(* Which state representation backs a stepper.  The array backend is
   the oracle every other backend is checked against; the count
   backends trade the O(n) sorted array for the O(L) multiset of
   Loadvec.Count_vector.  See DESIGN.md, "The representation layer". *)

type t =
  | Array_backed  (* sorted load array (Mutable_vector / Bins) — oracle *)
  | Count_backed  (* count vector, same RNG draw order as the array *)
  | Count_sampled  (* count vector + cutoff-table d-choice sampling *)

let all = [ Array_backed; Count_backed; Count_sampled ]

let name = function
  | Array_backed -> "array"
  | Count_backed -> "counts"
  | Count_sampled -> "counts-sampled"

let of_string = function
  | "array" -> Ok Array_backed
  | "counts" -> Ok Count_backed
  | "counts-sampled" -> Ok Count_sampled
  | s ->
      Error
        (Printf.sprintf
           "unknown representation %S (expected one of: %s)" s
           (String.concat ", " (List.map name all)))

let help = "array | counts | counts-sampled"

(* Whether a stepper under this representation consumes the RNG in the
   same order as the array oracle (and is therefore held to the
   bit-identical-trace contract rather than equality in law). *)
let draw_order_preserved = function
  | Array_backed | Count_backed -> true
  | Count_sampled -> false
