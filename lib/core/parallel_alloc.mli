(** Parallel balanced allocation — the collision protocol of Stemann
    (SPAA 1996) in the style also analysed by Adler, Chakrabarti,
    Mitzenmacher & Rasmussen, both cited in the paper's opening.

    All [m] balls are placed {e in parallel rounds} instead of
    sequentially: each ball commits to [d] candidate bins up front; in
    round [r] every unplaced ball requests all its candidates, and a bin
    that gathered at most [threshold r] requests (counting balls already
    committed to it) accepts them all.  After the round budget is
    exhausted, stragglers fall back to sequential greedy placement into
    their least-loaded candidate.

    With [r] rounds the achievable maximum load is
    [O((ln n / ln ln n)^{1/r})] — a few rounds already collapse the
    sequential d = 1 maximum, which experiment E17 reproduces. *)

type result = {
  loads : int array;
  max_load : int;
  rounds_used : int;
  fallback_balls : int;  (** balls placed by the sequential fallback *)
}

val run :
  Prng.Rng.t ->
  n:int ->
  m:int ->
  d:int ->
  rounds:int ->
  ?threshold:(int -> int) ->
  unit ->
  result
(** [run g ~n ~m ~d ~rounds ()] executes the protocol.  The default
    threshold for round [r] (1-based) is [r].
    @raise Invalid_argument if [n <= 0], [m < 0], [d < 1] or
    [rounds < 0]. *)

val sim :
  ?metrics:Engine.Metrics.t ->
  n:int ->
  m:int ->
  d:int ->
  rounds:int ->
  ?threshold:(int -> int) ->
  unit ->
  result Engine.Sim.t
(** The protocol as an engine stepper: each step is one complete batch
    {!run} and the observation is the last result.  [observe] raises
    [Invalid_argument] before the first step (there is nothing to
    report); [reset] installs a prior result as the last observation. *)
