(** Threshold sequences for the ADAP(x) rule of Czumaj and Stemann.

    A threshold sequence is a non-decreasing sequence [x₀ ≤ x₁ ≤ …] of
    positive integers, indexed by bin {e load}: probing stops after [M]
    probes as soon as the least-loaded bin seen so far has load [l] with
    [x_l ≤ M].  ABKU[d] is the constant sequence [x_l = d]. *)

type t

val name : t -> string

val threshold : t -> int -> int
(** [threshold x l] is [x_l] for a load [l >= 0].
    @raise Invalid_argument if [l < 0]. *)

val constant : int -> t
(** [constant d] is ABKU[d]'s sequence.
    @raise Invalid_argument if [d < 1]. *)

val of_list : ?name:string -> int list -> t
(** [of_list steps] uses the listed values for loads [0, 1, …] and repeats
    the last value beyond the list.
    @raise Invalid_argument if the list is empty, non-monotone, or
    contains a value < 1. *)

val linear : ?slope:int -> ?base:int -> unit -> t
(** [linear ~slope ~base ()] is [x_l = base + slope*l] (defaults 1 and 1):
    probe harder when the candidate bin is fuller. *)

val doubling : unit -> t
(** [x_l = 2^l] capped at 2^20 — very aggressive probing on loaded bins. *)
