type t = A | B

let name = function A -> "A" | B -> "B"

let remove_rank sc v ~u =
  let module Mv = Loadvec.Mutable_vector in
  let m = Mv.total v in
  if m <= 0 then invalid_arg "Scenario.remove_rank: no balls";
  match sc with
  | A ->
      (* Inverse CDF of A(v): rank i with probability v_i / m.  The
         partial sums are ints (exact as floats up to 2^53), so the
         accumulator stays unboxed and the scan never allocates. *)
      let loads = Mv.unsafe_loads v in
      let target = u *. float_of_int m in
      let n = Array.length loads in
      let rec scan i acc =
        if i = n - 1 then i
        else
          let acc = acc + loads.(i) in
          if target < float_of_int acc then i else scan (i + 1) acc
      in
      scan 0 0
  | B ->
      let s = Mv.support v in
      Stdlib.min (int_of_float (u *. float_of_int s)) (s - 1)

(* Count-vector form of [remove_rank]: same single float draw, same
   branch decisions (Cv.level_of_ball replays the scenario-A prefix
   scan over level blocks), returning the load class the removal hits
   instead of a rank — which by Fact 3.2 is all a normalized state
   needs. *)
let remove_level sc cv ~u =
  let module Cv = Loadvec.Count_vector in
  let m = Cv.total cv in
  if m <= 0 then invalid_arg "Scenario.remove_level: no balls";
  match sc with
  | A -> Cv.level_of_ball cv ~target:(u *. float_of_int m)
  | B ->
      let s = Cv.support cv in
      Cv.level_of_rank cv (Stdlib.min (int_of_float (u *. float_of_int s)) (s - 1))

let removal_distribution sc ~loads =
  let n = Array.length loads in
  let m = Array.fold_left ( + ) 0 loads in
  if m <= 0 then invalid_arg "Scenario.removal_distribution: no balls";
  match sc with
  | A -> Array.map (fun l -> float_of_int l /. float_of_int m) loads
  | B ->
      let s = ref 0 in
      Array.iter (fun l -> if l > 0 then incr s) loads;
      let p = 1. /. float_of_int !s in
      Array.init n (fun i -> if loads.(i) > 0 then p else 0.)
