let recommended_domains () = Stdlib.max 1 (Domain.recommended_domain_count ())

exception Worker_failure of exn

let map_array ?domains f xs =
  let domains =
    match domains with Some d -> d | None -> recommended_domains ()
  in
  if domains < 1 then invalid_arg "Parallel.map_array: domains < 1";
  let n = Array.length xs in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then Array.map f xs
  else begin
    let workers = Stdlib.min domains n in
    let results = Array.make n None in
    (* Static striding keeps the layout deterministic and balanced for
       heterogeneous task durations. *)
    let worker w () =
      let i = ref w in
      while !i < n do
        (match f xs.(!i) with
        | y -> results.(!i) <- Some y
        | exception e -> raise (Worker_failure e));
        i := !i + workers
      done
    in
    let handles = Array.init workers (fun w -> Domain.spawn (worker w)) in
    let failure = ref None in
    Array.iter
      (fun h ->
        match Domain.join h with
        | () -> ()
        | exception Worker_failure e -> if !failure = None then failure := Some e)
      handles;
    (match !failure with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some y -> y
        | None -> failwith "Parallel.map_array: missing result")
      results
  end

let init_array ?domains k f =
  if k < 0 then invalid_arg "Parallel.init_array: negative size";
  map_array ?domains f (Array.init k (fun i -> i))

(* Persistent worker domains for fine-grained data parallelism.

   [map_array] spawns fresh domains per call, which is fine for
   coarse-grained fan-outs (one experiment repetition per task) but far
   too expensive inside an spmv that a power iteration issues thousands
   of times.  A pool keeps [size - 1] worker domains parked on a
   condition variable; [run] wakes them for one job, executes slice 0 on
   the calling domain, and barriers until every slice has finished.  The
   caller is responsible for making slices race-free (workers in this
   repository own disjoint output ranges). *)
module Pool = struct
  type t = {
    size : int;
    mutex : Mutex.t;
    wake : Condition.t;
    done_ : Condition.t;
    mutable job : (int -> int -> unit) option;
    mutable generation : int;
    mutable pending : int;
    mutable failure : exn option;
    mutable stopped : bool;
    mutable handles : unit Domain.t list;
  }

  let worker t w () =
    let seen = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      Mutex.lock t.mutex;
      while (not t.stopped) && t.generation = !seen do
        Condition.wait t.wake t.mutex
      done;
      if t.stopped then begin
        Mutex.unlock t.mutex;
        continue_ := false
      end
      else begin
        seen := t.generation;
        let job = Option.get t.job in
        Mutex.unlock t.mutex;
        let outcome = try Ok (job w t.size) with e -> Error e in
        Mutex.lock t.mutex;
        (match outcome with
        | Ok () -> ()
        | Error e -> if t.failure = None then t.failure <- Some e);
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.signal t.done_;
        Mutex.unlock t.mutex
      end
    done

  let create ?domains () =
    let size =
      match domains with Some d -> d | None -> recommended_domains ()
    in
    if size < 1 then invalid_arg "Parallel.Pool.create: domains < 1";
    let t =
      {
        size;
        mutex = Mutex.create ();
        wake = Condition.create ();
        done_ = Condition.create ();
        job = None;
        generation = 0;
        pending = 0;
        failure = None;
        stopped = false;
        handles = [];
      }
    in
    t.handles <- List.init (size - 1) (fun w -> Domain.spawn (worker t (w + 1)));
    t

  let size t = t.size

  let run t f =
    if t.size = 1 then f 0 1
    else begin
      Mutex.lock t.mutex;
      if t.stopped then begin
        Mutex.unlock t.mutex;
        invalid_arg "Parallel.Pool.run: pool is shut down"
      end;
      if t.pending > 0 then begin
        Mutex.unlock t.mutex;
        invalid_arg "Parallel.Pool.run: concurrent run on the same pool"
      end;
      t.job <- Some f;
      t.generation <- t.generation + 1;
      t.pending <- t.size - 1;
      t.failure <- None;
      Condition.broadcast t.wake;
      Mutex.unlock t.mutex;
      let mine = try Ok (f 0 t.size) with e -> Error e in
      Mutex.lock t.mutex;
      while t.pending > 0 do
        Condition.wait t.done_ t.mutex
      done;
      t.job <- None;
      let failure = t.failure in
      t.failure <- None;
      Mutex.unlock t.mutex;
      match (mine, failure) with
      | Error e, _ -> raise e
      | Ok (), Some e -> raise e
      | Ok (), None -> ()
    end

  let shutdown t =
    Mutex.lock t.mutex;
    let already = t.stopped in
    t.stopped <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    if not already then begin
      List.iter Domain.join t.handles;
      t.handles <- []
    end

  let with_pool ?domains f =
    let t = create ?domains () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end
