let recommended_domains () = Stdlib.max 1 (Domain.recommended_domain_count ())

exception Worker_failure of exn

let map_array ?domains f xs =
  let domains =
    match domains with Some d -> d | None -> recommended_domains ()
  in
  if domains < 1 then invalid_arg "Parallel.map_array: domains < 1";
  let n = Array.length xs in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then Array.map f xs
  else begin
    let workers = Stdlib.min domains n in
    let results = Array.make n None in
    (* Static striding keeps the layout deterministic and balanced for
       heterogeneous task durations. *)
    let worker w () =
      let i = ref w in
      while !i < n do
        (match f xs.(!i) with
        | y -> results.(!i) <- Some y
        | exception e -> raise (Worker_failure e));
        i := !i + workers
      done
    in
    let handles = Array.init workers (fun w -> Domain.spawn (worker w)) in
    let failure = ref None in
    Array.iter
      (fun h ->
        match Domain.join h with
        | () -> ()
        | exception Worker_failure e -> if !failure = None then failure := Some e)
      handles;
    (match !failure with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some y -> y
        | None -> failwith "Parallel.map_array: missing result")
      results
  end

let init_array ?domains k f =
  if k < 0 then invalid_arg "Parallel.init_array: negative size";
  map_array ?domains f (Array.init k (fun i -> i))
