(** Multicore fan-out over OCaml 5 domains.

    Experiment repetitions are embarrassingly parallel: every repetition
    owns an independent generator obtained by splitting the root one
    {e before} the fan-out, so results are bit-identical regardless of
    the number of domains.  This module is the small scheduling layer the
    measurement harnesses build on. *)

val recommended_domains : unit -> int
(** The runtime's recommended domain count (at least 1). *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~domains f xs] maps [f] over [xs] using up to [domains]
    additional domains (default {!recommended_domains}).  [f] must not
    share mutable state across elements.  Order is preserved; with
    [domains <= 1] this is [Array.map].
    @raise Invalid_argument if [domains < 1].  Exceptions raised by [f]
    are re-raised in the caller. *)

val init_array : ?domains:int -> int -> (int -> 'b) -> 'b array
(** [init_array ~domains k f] is [map_array ~domains f [|0..k-1|]].
    @raise Invalid_argument if [k < 0]. *)
