(** Multicore fan-out over OCaml 5 domains.

    Experiment repetitions are embarrassingly parallel: every repetition
    owns an independent generator obtained by splitting the root one
    {e before} the fan-out, so results are bit-identical regardless of
    the number of domains.  This module is the small scheduling layer the
    measurement harnesses build on. *)

val recommended_domains : unit -> int
(** The runtime's recommended domain count (at least 1). *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~domains f xs] maps [f] over [xs] using up to [domains]
    additional domains (default {!recommended_domains}).  [f] must not
    share mutable state across elements.  Order is preserved; with
    [domains <= 1] this is [Array.map].
    @raise Invalid_argument if [domains < 1].  Exceptions raised by [f]
    are re-raised in the caller. *)

val init_array : ?domains:int -> int -> (int -> 'b) -> 'b array
(** [init_array ~domains k f] is [map_array ~domains f [|0..k-1|]].
    @raise Invalid_argument if [k < 0]. *)

(** Persistent worker domains for fine-grained data parallelism.

    {!map_array} spawns fresh domains per call — far too expensive for
    kernels issued thousands of times per solve (one spmv costs tens of
    microseconds; a domain spawn, hundreds).  A pool parks its workers
    on a condition variable between jobs so the per-job cost is one
    broadcast and one barrier. *)
module Pool : sig
  type t

  val create : ?domains:int -> unit -> t
  (** [create ~domains ()] spawns [domains - 1] worker domains (default
      {!recommended_domains}); slice 0 of every job runs on the calling
      domain.  @raise Invalid_argument if [domains < 1]. *)

  val size : t -> int
  (** Total parallelism of the pool, counting the caller. *)

  val run : t -> (int -> int -> unit) -> unit
  (** [run t f] executes [f w size] for every [w] in [0..size-1]
      concurrently and returns when all have finished.  [f] must write
      only to worker-disjoint state.  A pool of size 1 runs [f 0 1]
      inline.  An exception from any slice is re-raised in the caller
      (the caller's own slice wins when several fail); the pool remains
      usable afterwards.
      @raise Invalid_argument if the pool is shut down or already
      running a job. *)

  val shutdown : t -> unit
  (** Stop and join the workers.  Idempotent. *)

  val with_pool : ?domains:int -> (t -> 'a) -> 'a
  (** [with_pool f] runs [f] on a fresh pool and shuts it down on exit,
      normal or exceptional. *)
end
