(** The carpool problem of Fagin and Williams, via the reduction of Ajtai
    et al. (paper, Section 1.1).

    [n] people; each day a pair of them (chosen i.u.r. in our model)
    shares a car and one of the two must drive.  A scheduling protocol
    should keep driving duties fair.  Ajtai et al. reduce fairness of
    scheduling to the edge orientation problem at the price of doubling
    the expected fairness: a day's trip is an arriving edge, the driver
    its source.  The greedy protocol lets whoever has the lower driving
    balance drive.

    The {e fairness} of a person is half the absolute balance (each trip
    moves one unit of balance from passenger to driver, i.e. two half
    units of "fair share"). *)

type t

val create : n:int -> t
(** Fresh pool, everyone at balance 0.
    @raise Invalid_argument if [n < 2]. *)

val of_balances : int array -> t
(** @raise Invalid_argument if balances do not sum to zero or [n < 2]. *)

val n : t -> int
val balance : t -> int -> int
(** Driving balance of a person: +1 per drive, −1 per passenger trip. *)

val trips : t -> int

val max_unfairness : t -> float
(** Half the maximum absolute balance. *)

val day : Prng.Rng.t -> t -> unit
(** One day: a uniform random pair travels; the greedy rule picks the
    driver (coin on ties). *)

val run : Prng.Rng.t -> t -> days:int -> unit
