(** The paper's metric Δ on the edge-orientation state space
    (Definition 6.3), computed exactly on small enumerable spaces.

    Pairs related through G̃ are at distance 1; pairs related through
    J̃_k are at distance (at most) k; general distances are shortest
    paths through such moves inside the state space.  On the enumerated
    Ψ this is all-pairs shortest paths over the Γ adjacency, which lets
    the contraction statements of Lemmas 6.2 and 6.3 be verified as
    exact inequalities rather than surrogates. *)

type t

val build : states:Class_chain.t array -> t
(** All-pairs distances over the given state set (Floyd–Warshall;
    practical for a few hundred states).
    @raise Invalid_argument on an empty set or mixed sizes. *)

val size : t -> int

val distance : t -> Class_chain.t -> Class_chain.t -> int
(** Δ(x, y).  @raise Not_found if a state is outside the set;
    @raise Failure if the two states are not connected through Γ inside
    the set. *)

val gamma_pairs : t -> (Class_chain.t * Class_chain.t * int) list
(** All ordered pairs [(x, y, k)] with [y] obtained from [x] by one
    Γ move of weight [k] (i.e. [Class_chain.j_tilde x y = Some (_, k)]). *)

val diameter : t -> int
(** Largest finite pairwise distance. *)
