(** The edge orientation problem of Ajtai et al. (paper, Sections 1-2, 6),
    identity-based view.

    A multigraph on [n] vertices receives undirected edges one by one;
    each arriving edge is oriented immediately.  The state we track is the
    per-vertex {e discrepancy} (outdegree − indegree); the {e unfairness}
    is the maximum absolute discrepancy.  The greedy protocol orients each
    new edge from the endpoint with the smaller discrepancy to the one
    with the larger (ties broken by a coin).

    Discrepancies are clamped-checked against a window of ±[n]: the
    greedy protocol never leaves it when started inside. *)

type t

val create : n:int -> t
(** All discrepancies zero. @raise Invalid_argument if [n < 2]. *)

val of_discrepancies : int array -> t
(** Start from an explicit state.
    @raise Invalid_argument if the values do not sum to 0, exceed the
    ±n window, or fewer than 2 vertices are given. *)

val adversarial : n:int -> t
(** A worst-ish state: half the vertices at discrepancy +⌈n/2⌉ paired
    against half at −⌈n/2⌉ (one vertex left at 0 when [n] is odd). *)

val copy : t -> t
val n : t -> int
val discrepancy : t -> int -> int
val discrepancies : t -> int array
val edges_seen : t -> int

val unfairness : t -> int
(** Maximum absolute discrepancy, maintained in O(1) per step. *)

val greedy_step : Prng.Rng.t -> t -> unit
(** One uniform random edge arrives and is oriented greedily. *)

val run : Prng.Rng.t -> t -> steps:int -> unit

val orient : t -> src:int -> dst:int -> unit
(** Record an edge oriented [src -> dst] (for custom protocols /
    baselines).
    @raise Invalid_argument on bad ids, [src = dst], or window
    overflow. *)

val restore : t -> int array -> unit
(** In-place {!of_discrepancies}: overwrite the state with the given
    discrepancies and reset [edges_seen] to 0, reusing the buffers.
    @raise Invalid_argument under the {!of_discrepancies} conditions or
    on a dimension mismatch. *)

val sim : ?metrics:Engine.Metrics.t -> t -> int array Engine.Sim.t
(** {!greedy_step} as an engine stepper on the given state (adopted and
    mutated).  Observations are discrepancy vectors; the probe is the
    unfairness, so [Engine.Sim.first_hit] measures recovery of the
    orientation process directly. *)
