(* count_by_diff.(d + n) = number of vertices with discrepancy d.  The
   extremes move by at most one per orientation, so min/max pointers are
   maintained in O(1) amortized. *)
type t = {
  n : int;
  diffs : int array;
  count_by_diff : int array;  (* index = diff + n *)
  mutable max_diff : int;
  mutable min_diff : int;
  mutable edges_seen : int;
}

let create ~n =
  if n < 2 then invalid_arg "Orientation.create: need n >= 2";
  let count_by_diff = Array.make ((2 * n) + 1) 0 in
  count_by_diff.(n) <- n;
  {
    n;
    diffs = Array.make n 0;
    count_by_diff;
    max_diff = 0;
    min_diff = 0;
    edges_seen = 0;
  }

let check_values ~who n values =
  if Array.fold_left ( + ) 0 values <> 0 then
    invalid_arg (who ^ ": values must sum to 0");
  Array.iter
    (fun d -> if abs d > n then invalid_arg (who ^ ": outside +-n window"))
    values

(* Unchecked in-place install of a discrepancy vector. *)
let install t values =
  Array.blit values 0 t.diffs 0 t.n;
  Array.fill t.count_by_diff 0 ((2 * t.n) + 1) 0;
  Array.iter
    (fun d -> t.count_by_diff.(d + t.n) <- t.count_by_diff.(d + t.n) + 1)
    values;
  t.max_diff <- Array.fold_left Stdlib.max values.(0) values;
  t.min_diff <- Array.fold_left Stdlib.min values.(0) values

let of_discrepancies values =
  let n = Array.length values in
  if n < 2 then invalid_arg "Orientation.of_discrepancies: need n >= 2";
  check_values ~who:"Orientation.of_discrepancies" n values;
  let t = create ~n in
  install t values;
  t

let restore t values =
  if Array.length values <> t.n then
    invalid_arg "Orientation.restore: dimension mismatch";
  check_values ~who:"Orientation.restore" t.n values;
  install t values;
  t.edges_seen <- 0

let adversarial ~n =
  if n < 2 then invalid_arg "Orientation.adversarial: need n >= 2";
  let extreme = (n + 1) / 2 in
  let values = Array.make n 0 in
  let pairs = n / 2 in
  for k = 0 to pairs - 1 do
    values.(2 * k) <- extreme;
    values.((2 * k) + 1) <- -extreme
  done;
  of_discrepancies values

let copy t =
  {
    t with
    diffs = Array.copy t.diffs;
    count_by_diff = Array.copy t.count_by_diff;
  }

let n t = t.n

let discrepancy t v =
  if v < 0 || v >= t.n then invalid_arg "Orientation.discrepancy: bad vertex";
  t.diffs.(v)

let discrepancies t = Array.copy t.diffs
let edges_seen t = t.edges_seen

let unfairness t = Stdlib.max t.max_diff (-t.min_diff)

let shift t v delta =
  let d = t.diffs.(v) in
  let d' = d + delta in
  if abs d' > t.n then invalid_arg "Orientation: discrepancy window overflow";
  t.count_by_diff.(d + t.n) <- t.count_by_diff.(d + t.n) - 1;
  t.count_by_diff.(d' + t.n) <- t.count_by_diff.(d' + t.n) + 1;
  t.diffs.(v) <- d';
  if d' > t.max_diff then t.max_diff <- d';
  if d' < t.min_diff then t.min_diff <- d';
  if d = t.max_diff && t.count_by_diff.(d + t.n) = 0 && d' < d then
    t.max_diff <- d - 1;
  if d = t.min_diff && t.count_by_diff.(d + t.n) = 0 && d' > d then
    t.min_diff <- d + 1

let orient t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n || src = dst then
    invalid_arg "Orientation.orient: bad endpoints";
  shift t src 1;
  shift t dst (-1);
  t.edges_seen <- t.edges_seen + 1

let greedy_step g t =
  let a, b = Prng.Rng.pair_distinct g t.n in
  let da = t.diffs.(a) and db = t.diffs.(b) in
  let src, dst =
    if da < db then (a, b)
    else if db < da then (b, a)
    else if Prng.Rng.bool g then (a, b)
    else (b, a)
  in
  orient t ~src ~dst

let run g t ~steps =
  if steps < 0 then invalid_arg "Orientation.run: negative steps";
  for _ = 1 to steps do
    greedy_step g t
  done

(* Two endpoint inspections per edge; the tie-breaking coin is not
   metered separately. *)
let sim ?metrics t =
  let metrics =
    match metrics with Some m -> m | None -> Engine.Metrics.create ()
  in
  Engine.Sim.make ~metrics
    ~step:(fun g ->
      greedy_step g t;
      Engine.Metrics.add_probes metrics 2;
      Engine.Metrics.add_draws metrics 2)
    ~observe:(fun () -> discrepancies t)
    ~reset:(fun values -> restore t values)
    ~probe:(fun () -> unfairness t)
    ()
