(** The Markov chain of Section 6 for the edge orientation problem.

    States are count vectors [x] over discrepancy classes: class [i]
    holds the number of vertices with discrepancy [offset − i], so
    classes are ordered by decreasing discrepancy and [Σ xᵢ = n].  One
    transition picks positions [φ < ψ] i.u.r. from [n] (positions index
    vertices sorted by discrepancy), maps them to classes [i ≤ j] through
    the cumulative counts, draws the ergodicity bit [b], and when [b = 1]
    applies [x ← x − e_i + e_{i+1} − e_j + e_{j−1}] — the greedy
    orientation slowed down by the factor ~2 of Remark 1.

    The coupling feeds both copies the same [(φ, ψ, b)] and applies the
    paper's [b* = 1 − b] flip in the special case of Lemma 6.2 (7). *)

type t
(** A chain state.  Immutable. *)

val of_discrepancies : int array -> t
(** @raise Invalid_argument as {!Orientation.of_discrepancies}. *)

val start : n:int -> t
(** The paper's initial state [x̂]: all vertices at discrepancy 0. *)

val adversarial : n:int -> t
(** Count-vector image of {!Orientation.adversarial}. *)

val n : t -> int
val counts : t -> int array
(** The count vector (a copy), length [2n + 1]; class [i] is discrepancy
    [n − i]. *)

val discrepancy_of_class : t -> int -> int
val unfairness : t -> int
val equal : t -> t -> bool

val emd : t -> t -> int
(** Earth-mover (transportation) distance between the discrepancy
    multisets: [Σ_i |cum_x(i) − cum_y(i)|].  A convenient computable
    stand-in for the paper's path metric Δ (Definition 6.3); both vanish
    exactly on equal states.
    @raise Invalid_argument on different [n]. *)

val step : Prng.Rng.t -> t -> t
(** One transition of the chain. *)

val exact_transitions : t -> (t * float) list
(** The exact one-step law: (n choose 2) position pairs × the ergodicity
    bit.  Probabilities sum to 1 (the [b = 0] branch contributes a
    self-loop of mass ½). *)

val reachable : from:t -> t array
(** Breadth-first closure of {!exact_transitions} — the paper's state
    space Ψ when [from] is {!start} — in discovery order ([from]
    first).  Only practical for small [n]. *)

val exact_chain : from:t -> t Markov.Exact.t
(** The chain over {!reachable}[ ~from], built through
    [Markov.Exact_builder] — the exact path used by the e08 grid and
    the path-metric tests. *)

val coupled : unit -> t Coupling.Coupled_chain.t
(** The shared-[(φ,ψ,b)] coupling with the Lemma 6.2 (7) bit flip. *)

val g_tilde_lambda : t -> t -> int option
(** [g_tilde_lambda x y] is [Some lambda] when
    [x = y + e_λ − 2e_{λ+1} + e_{λ+2}] (the set G̃ of Definition 6.1),
    [None] otherwise. *)

val j_tilde : t -> t -> (int * int) option
(** [j_tilde x y] is [Some (lambda, k)] when
    [x = y + e_λ − e_{λ+1} − e_{λ+k} + e_{λ+k+1}] with
    [x_{λ+1} = … = x_{λ+k} = 0] (the set J̃_k of Definition 6.2; [k = 1]
    coincides with G̃). *)

val coupled_exact_transitions : t -> t -> ((t * t) * float) list
(** The exact joint law of one step of {!coupled} from the pair [(x, y)]:
    enumeration of the (n choose 2) position pairs × the ergodicity bit,
    with the Lemma 6.2(7) flip applied.  Probabilities sum to 1.
    @raise Invalid_argument on different [n]. *)
