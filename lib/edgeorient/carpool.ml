(* Thin relabelling of the greedy edge-orientation protocol: a trip is an
   arriving edge oriented from driver to passenger; the driving balance is
   the vertex discrepancy. *)
type t = Orientation.t

let create ~n = Orientation.create ~n

let of_balances = Orientation.of_discrepancies

let n = Orientation.n
let balance = Orientation.discrepancy
let trips = Orientation.edges_seen

let max_unfairness t = float_of_int (Orientation.unfairness t) /. 2.

(* The greedy driver is the endpoint with the smaller balance — which is
   exactly the greedy orientation rule. *)
let day = Orientation.greedy_step

let run g t ~days = Orientation.run g t ~steps:days
