type t = {
  states : Class_chain.t array;
  lookup : (Class_chain.t, int) Hashtbl.t;
  dist : int array array;  (* max_int = unreachable *)
}

let infinity_ = max_int

let build ~states =
  let s = Array.length states in
  if s = 0 then invalid_arg "Path_metric.build: empty state set";
  let n0 = Class_chain.n states.(0) in
  Array.iter
    (fun x ->
      if Class_chain.n x <> n0 then
        invalid_arg "Path_metric.build: mixed sizes")
    states;
  let lookup = Hashtbl.create s in
  Array.iteri (fun i x -> Hashtbl.replace lookup x i) states;
  let dist = Array.init s (fun i -> Array.init s (fun j -> if i = j then 0 else infinity_)) in
  (* Gamma adjacency in both orientations. *)
  for i = 0 to s - 1 do
    for j = 0 to s - 1 do
      if i <> j then
        match Class_chain.j_tilde states.(i) states.(j) with
        | Some (_, k) ->
            if k < dist.(i).(j) then begin
              dist.(i).(j) <- k;
              dist.(j).(i) <- Stdlib.min dist.(j).(i) k
            end
        | None -> ()
    done
  done;
  (* Floyd-Warshall. *)
  for k = 0 to s - 1 do
    for i = 0 to s - 1 do
      if dist.(i).(k) < infinity_ then
        for j = 0 to s - 1 do
          if dist.(k).(j) < infinity_ then begin
            let through = dist.(i).(k) + dist.(k).(j) in
            if through < dist.(i).(j) then dist.(i).(j) <- through
          end
        done
    done
  done;
  { states; lookup; dist }

let size t = Array.length t.states

let index t x =
  match Hashtbl.find_opt t.lookup x with
  | Some i -> i
  | None -> raise Not_found

let distance t x y =
  let d = t.dist.(index t x).(index t y) in
  if d = infinity_ then failwith "Path_metric.distance: states not connected";
  d

let gamma_pairs t =
  let out = ref [] in
  let s = Array.length t.states in
  for i = 0 to s - 1 do
    for j = 0 to s - 1 do
      if i <> j then
        match Class_chain.j_tilde t.states.(i) t.states.(j) with
        | Some (_, k) -> out := (t.states.(i), t.states.(j), k) :: !out
        | None -> ()
    done
  done;
  !out

let diameter t =
  let best = ref 0 in
  Array.iter
    (fun row ->
      Array.iter (fun d -> if d < infinity_ && d > !best then best := d) row)
    t.dist;
  !best
