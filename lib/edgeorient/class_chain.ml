type t = { n : int; x : int array }  (* x.(i) = #vertices at discrepancy n - i *)

let width n = (2 * n) + 1

let of_discrepancies values =
  let n = Array.length values in
  if n < 2 then invalid_arg "Class_chain.of_discrepancies: need n >= 2";
  if Array.fold_left ( + ) 0 values <> 0 then
    invalid_arg "Class_chain.of_discrepancies: values must sum to 0";
  let x = Array.make (width n) 0 in
  Array.iter
    (fun d ->
      if abs d > n then
        invalid_arg "Class_chain.of_discrepancies: outside +-n window";
      x.(n - d) <- x.(n - d) + 1)
    values;
  { n; x }

let start ~n = of_discrepancies (Array.make n 0)

let adversarial ~n =
  if n < 2 then invalid_arg "Class_chain.adversarial: need n >= 2";
  let extreme = (n + 1) / 2 in
  let values = Array.make n 0 in
  for k = 0 to (n / 2) - 1 do
    values.(2 * k) <- extreme;
    values.((2 * k) + 1) <- -extreme
  done;
  of_discrepancies values

let n t = t.n
let counts t = Array.copy t.x
let discrepancy_of_class t i = t.n - i

let unfairness t =
  let k = width t.n in
  let first = ref (-1) and last = ref (-1) in
  for i = 0 to k - 1 do
    if t.x.(i) > 0 then begin
      if !first = -1 then first := i;
      last := i
    end
  done;
  Stdlib.max (abs (t.n - !first)) (abs (t.n - !last))

let equal a b = a.n = b.n && a.x = b.x

let emd a b =
  if a.n <> b.n then invalid_arg "Class_chain.emd: size mismatch";
  let acc = ref 0 in
  let ca = ref 0 and cb = ref 0 in
  for i = 0 to width a.n - 1 do
    ca := !ca + a.x.(i);
    cb := !cb + b.x.(i);
    acc := !acc + abs (!ca - !cb)
  done;
  !acc

(* Class of the vertex at sorted position [p] (0-based, discrepancies
   non-increasing): the class where the cumulative count first exceeds
   p. *)
let class_of_position t p =
  let rec scan i acc =
    let acc = acc + t.x.(i) in
    if p < acc then i else scan (i + 1) acc
  in
  scan 0 0

let apply t ~i ~j =
  if i + 1 >= width t.n || j < 1 then
    invalid_arg "Class_chain: discrepancy window overflow";
  let x = Array.copy t.x in
  x.(i) <- x.(i) - 1;
  x.(i + 1) <- x.(i + 1) + 1;
  x.(j) <- x.(j) - 1;
  x.(j - 1) <- x.(j - 1) + 1;
  { t with x }

let step_with t ~phi ~psi ~b =
  if not b then t
  else begin
    let i = class_of_position t phi in
    let j = class_of_position t psi in
    apply t ~i ~j
  end

let step g t =
  let phi, psi = Prng.Rng.pair_distinct g t.n in
  let b = Prng.Rng.bool g in
  step_with t ~phi ~psi ~b

let exact_transitions t =
  let n = t.n in
  let pairs = n * (n - 1) / 2 in
  let p_pair = 1. /. float_of_int pairs in
  let out = ref [ (t, 0.5) ] in
  (* b = 0 keeps the state *)
  for phi = 0 to n - 2 do
    for psi = phi + 1 to n - 1 do
      let i = class_of_position t phi in
      let j = class_of_position t psi in
      out := (apply t ~i ~j, 0.5 *. p_pair) :: !out
    done
  done;
  !out

let reachable ~from =
  Markov.Exact_builder.reachable_states ~root:from
    ~transitions:exact_transitions ()

let exact_chain ~from =
  Markov.Exact_builder.build
    (Markov.Exact_builder.reachable ~root:from)
    ~transitions:exact_transitions

let g_tilde_lambda x y =
  if x.n <> y.n then None
  else begin
    let k = width x.n in
    (* Expect differences +1, -2, +1 at consecutive indices. *)
    let lambda = ref (-1) and ok = ref true in
    let i = ref 0 in
    while !i < k && !ok do
      let d = x.x.(!i) - y.x.(!i) in
      if d <> 0 then begin
        if d = 1 && !lambda = -1 && !i + 2 < k
           && x.x.(!i + 1) - y.x.(!i + 1) = -2
           && x.x.(!i + 2) - y.x.(!i + 2) = 1
        then begin
          lambda := !i;
          i := !i + 2
        end
        else ok := false
      end;
      incr i
    done;
    if !ok && !lambda >= 0 then Some !lambda else None
  end

let j_tilde x y =
  if x.n <> y.n then None
  else begin
    let k = width x.n in
    let nonzero = ref [] in
    for i = k - 1 downto 0 do
      let d = x.x.(i) - y.x.(i) in
      if d <> 0 then nonzero := (i, d) :: !nonzero
    done;
    let gap_empty lo hi =
      let ok = ref true in
      for i = lo to hi do
        if x.x.(i) <> 0 then ok := false
      done;
      !ok
    in
    match !nonzero with
    | [ (a, 1); (b, -2); (c, 1) ] when b = a + 1 && c = a + 2 ->
        (* k = 1 coincides with G-tilde (no emptiness condition). *)
        Some (a, 1)
    | [ (a, 1); (b, -1); (c, -1); (d, 1) ]
      when b = a + 1 && d = c + 1 && c > b && gap_empty (a + 1) c ->
        Some (a, c - a)
    | _ -> None
  end

(* One joint transition of the coupling given the shared randomness
   (phi, psi, b), with the Lemma 6.2 case (7) bit flip applied in
   whichever orientation the pair is G-tilde adjacent. *)
let coupled_outcome x y ~phi ~psi ~b =
  let i = class_of_position x phi and j = class_of_position x psi in
  let i' = class_of_position y phi and j' = class_of_position y psi in
  let b_y =
    match g_tilde_lambda x y with
    | Some lambda when i = lambda && j = lambda + 2 && i' = lambda + 1
                       && j' = lambda + 1 -> not b
    | _ -> b
  in
  let b_x =
    match g_tilde_lambda y x with
    | Some lambda when i' = lambda && j' = lambda + 2 && i = lambda + 1
                       && j = lambda + 1 -> not b
    | _ -> b
  in
  let x' = if b_x then apply x ~i ~j else x in
  let y' = if b_y then apply y ~i:i' ~j:j' else y in
  (x', y')

let coupled () =
  let step g x y =
    let phi, psi = Prng.Rng.pair_distinct g x.n in
    let b = Prng.Rng.bool g in
    coupled_outcome x y ~phi ~psi ~b
  in
  Coupling.Coupled_chain.make ~step ~equal ~distance:emd

let coupled_exact_transitions x y =
  if x.n <> y.n then
    invalid_arg "Class_chain.coupled_exact_transitions: size mismatch";
  let n = x.n in
  let p = 0.5 /. float_of_int (n * (n - 1) / 2) in
  let out = ref [] in
  for phi = 0 to n - 2 do
    for psi = phi + 1 to n - 1 do
      List.iter
        (fun b -> out := (coupled_outcome x y ~phi ~psi ~b, p) :: !out)
        [ false; true ]
    done
  done;
  !out
