type t = { mutable counts : int array; mutable total : int; mutable max_value : int }

let create () = { counts = Array.make 8 0; total = 0; max_value = -1 }

let ensure h v =
  let n = Array.length h.counts in
  if v >= n then begin
    let n' = Stdlib.max (v + 1) (2 * n) in
    let counts = Array.make n' 0 in
    Array.blit h.counts 0 counts 0 n;
    h.counts <- counts
  end

let add h v =
  if v < 0 then invalid_arg "Histogram.add: negative value";
  ensure h v;
  h.counts.(v) <- h.counts.(v) + 1;
  h.total <- h.total + 1;
  if v > h.max_value then h.max_value <- v

let count h v = if v < 0 || v > h.max_value then 0 else h.counts.(v)

let total h = h.total
let max_value h = h.max_value

let mean h =
  if h.total = 0 then nan
  else begin
    let acc = ref 0 in
    for v = 0 to h.max_value do
      acc := !acc + (v * h.counts.(v))
    done;
    float_of_int !acc /. float_of_int h.total
  end

let to_array h = Array.sub h.counts 0 (Stdlib.max 0 (h.max_value + 1))

let fraction_at_least h v =
  if h.total = 0 then nan
  else begin
    let acc = ref 0 in
    for i = Stdlib.max 0 v to h.max_value do
      acc := !acc + h.counts.(i)
    done;
    float_of_int !acc /. float_of_int h.total
  end

let pp fmt h =
  if h.total = 0 then Format.fprintf fmt "(empty histogram)"
  else begin
    let peak = Array.fold_left Stdlib.max 1 h.counts in
    for v = 0 to h.max_value do
      let c = h.counts.(v) in
      let bar = String.make (c * 40 / peak) '#' in
      Format.fprintf fmt "%4d: %8d %s@." v c bar
    done
  end
