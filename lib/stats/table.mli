(** Plain-text tables.

    Every experiment in the benchmark harness prints its result as one of
    these, mirroring how the paper's claims would appear as tables. *)

type t

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts an empty table. *)

val add_row : t -> string list -> unit
(** Append a row.
    @raise Invalid_argument if the arity differs from [columns]. *)

val add_note : t -> string -> unit
(** Append a free-form footnote rendered under the table. *)

val pp : Format.formatter -> t -> unit
val print : t -> unit
(** [pp]/[print] render with a title line, aligned columns and rules. *)

val to_csv : t -> string
(** RFC-4180-ish CSV: header row then data rows (notes are not
    included).  Cells containing commas or quotes are quoted. *)

val title : t -> string

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_ci : float * float -> string
(** Renders an interval as ["[lo, hi]"]. *)
