(** Plain-text tables.

    Every experiment in the benchmark harness prints its result as one of
    these, mirroring how the paper's claims would appear as tables. *)

type t

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts an empty table. *)

val add_row : t -> string list -> unit
(** Append a row.
    @raise Invalid_argument if the arity differs from [columns]. *)

val add_note : t -> string -> unit
(** Append a free-form footnote rendered under the table. *)

val pp : Format.formatter -> t -> unit
val print : t -> unit
(** [pp]/[print] render with a title line, aligned columns and rules. *)

val to_csv : ?notes:bool -> t -> string
(** RFC 4180 CSV: header row then data rows.  Cells containing commas,
    quotes, CR or LF are quoted, with embedded quotes doubled, so the
    output round-trips through any conforming parser (records are
    LF-separated; RFC 4180 parsers accept both).  With [~notes:true]
    each footnote is appended as a trailing record of the form
    [note,<text>,...] padded to the header arity; the default omits
    notes, matching the historical layout. *)

val title : t -> string
val columns : t -> string list
val rows : t -> string list list
(** Rows in insertion order. *)

val notes : t -> string list
(** Notes in insertion order. *)

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_ci : float * float -> string
(** Renders an interval as ["[lo, hi]"]. *)
