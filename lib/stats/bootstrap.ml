let ci ?(replicates = 1000) ?(level = 0.95) ~rng ~stat xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.ci: empty sample";
  if not (level > 0. && level < 1.) then
    invalid_arg "Bootstrap.ci: level must be in (0,1)";
  let stats =
    Array.init replicates (fun _ ->
        let resample = Array.init n (fun _ -> xs.(Prng.Rng.int rng n)) in
        stat resample)
  in
  let alpha = (1. -. level) /. 2. in
  (Quantile.quantile stats alpha, Quantile.quantile stats (1. -. alpha))

let ci_median ?replicates ?level ~rng xs =
  ci ?replicates ?level ~rng ~stat:Quantile.median xs

let mean xs =
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let ci_mean ?replicates ?level ~rng xs = ci ?replicates ?level ~rng ~stat:mean xs
