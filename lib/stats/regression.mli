(** Least-squares fits.

    The paper's theorems are growth rates (for example Theorem 1 says the
    scenario-A recovery time grows as [m ln m]).  The experiments validate
    them by fitting the exponent of a power law to measured data; this
    module provides ordinary least squares and the log-log exponent fit. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** Coefficient of determination. *)
}

val ols : (float * float) array -> fit
(** Ordinary least squares of [y] on [x].
    @raise Invalid_argument with fewer than two points or zero variance
    in [x]. *)

val power_law : (float * float) array -> fit
(** [power_law pts] fits [y = c * x^slope] by OLS in log-log space.
    All coordinates must be strictly positive.
    @raise Invalid_argument otherwise. *)

val log_corrected_power_law :
  log_exponent:float -> (float * float) array -> fit
(** [log_corrected_power_law ~log_exponent pts] fits
    [y = c * x^slope * (ln x)^log_exponent]: it divides each [y] by
    [(ln x)^log_exponent] before the log-log fit.  Used when a theorem
    predicts e.g. [m ln m] (exponent 1 with one log factor) so the fitted
    slope should be compared to the polynomial part alone. *)
