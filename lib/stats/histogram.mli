(** Integer histograms.

    Counts of small non-negative integers (loads, unfairness values).
    Grows on demand. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** [add h v] counts one occurrence of [v].
    @raise Invalid_argument if [v < 0]. *)

val count : t -> int -> int
(** Occurrences of a value (0 if never seen). *)

val total : t -> int
val max_value : t -> int
(** Largest value observed; -1 when empty. *)

val mean : t -> float
val to_array : t -> int array
(** Counts indexed by value, length [max_value + 1]. *)

val fraction_at_least : t -> int -> float
(** [fraction_at_least h v] is the empirical probability of an observation
    [>= v]. *)

val pp : Format.formatter -> t -> unit
(** Render as [value: count] lines with a proportional bar. *)
