type fit = { slope : float; intercept : float; r_squared : float }

let ols pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Regression.ols: need at least two points";
  let fn = float_of_int n in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. pts in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. pts in
  let mx = sx /. fn and my = sy /. fn in
  let sxx = Array.fold_left (fun a (x, _) -> a +. ((x -. mx) ** 2.)) 0. pts in
  let sxy =
    Array.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0. pts
  in
  if sxx = 0. then invalid_arg "Regression.ols: zero variance in x";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res =
    Array.fold_left
      (fun a (x, y) -> a +. ((y -. (intercept +. (slope *. x))) ** 2.))
      0. pts
  in
  let ss_tot = Array.fold_left (fun a (_, y) -> a +. ((y -. my) ** 2.)) 0. pts in
  let r_squared = if ss_tot = 0. then 1. else 1. -. (ss_res /. ss_tot) in
  { slope; intercept; r_squared }

let to_logs pts =
  Array.map
    (fun (x, y) ->
      if x <= 0. || y <= 0. then
        invalid_arg "Regression.power_law: coordinates must be positive";
      (log x, log y))
    pts

let power_law pts = ols (to_logs pts)

let log_corrected_power_law ~log_exponent pts =
  let corrected =
    Array.map
      (fun (x, y) ->
        if x <= 1. then
          invalid_arg "Regression.log_corrected_power_law: need x > 1";
        (x, y /. (log x ** log_exponent)))
      pts
  in
  power_law corrected
