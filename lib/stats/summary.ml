type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add s x =
  s.count <- s.count + 1;
  let delta = x -. s.mean in
  s.mean <- s.mean +. (delta /. float_of_int s.count);
  s.m2 <- s.m2 +. (delta *. (x -. s.mean));
  if x < s.min then s.min <- x;
  if x > s.max then s.max <- x

let add_int s x = add s (float_of_int x)

let count s = s.count

let mean s = if s.count = 0 then nan else s.mean

let variance s =
  if s.count < 2 then nan else s.m2 /. float_of_int (s.count - 1)

let stddev s = sqrt (variance s)

let min s = s.min
let max s = s.max
let sum s = s.mean *. float_of_int s.count

let std_error s =
  if s.count < 2 then nan else stddev s /. sqrt (float_of_int s.count)

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let count = a.count + b.count in
    let fa = float_of_int a.count and fb = float_of_int b.count in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. float_of_int count) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int count) in
    { count; mean; m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max }
  end
