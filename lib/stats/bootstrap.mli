(** Bootstrap confidence intervals.

    Percentile bootstrap for medians and means of measured recovery times,
    replacing the "w.h.p." qualifiers of the paper with empirical interval
    estimates. *)

val ci :
  ?replicates:int ->
  ?level:float ->
  rng:Prng.Rng.t ->
  stat:(float array -> float) ->
  float array ->
  float * float
(** [ci ~rng ~stat xs] returns a percentile-bootstrap confidence interval
    (default 1000 replicates, level 0.95) for [stat] of the distribution
    underlying the sample [xs].
    @raise Invalid_argument on an empty sample or a level outside (0,1). *)

val ci_median :
  ?replicates:int -> ?level:float -> rng:Prng.Rng.t -> float array ->
  float * float

val ci_mean :
  ?replicates:int -> ?level:float -> rng:Prng.Rng.t -> float array ->
  float * float
