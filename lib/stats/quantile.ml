let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Quantile.quantile: empty sample";
  if not (q >= 0. && q <= 1.) then invalid_arg "Quantile.quantile: q not in [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    (* Hyndman-Fan type 7: h = (n-1) q, interpolate between floor and ceil. *)
    let h = float_of_int (n - 1) *. q in
    let lo = int_of_float (floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = quantile xs 0.5

let iqr xs = quantile xs 0.75 -. quantile xs 0.25

let of_ints xs = Array.map float_of_int xs
