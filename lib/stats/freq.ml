type t = { counts : int array; mutable total : int }

let create ~size =
  if size <= 0 then invalid_arg "Freq.create: size must be positive";
  { counts = Array.make size 0; total = 0 }

let size t = Array.length t.counts
let total t = t.total

let observe t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Freq.observe: bad cell";
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let add t i k =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Freq.add: bad cell";
  if k < 0 then invalid_arg "Freq.add: negative count";
  t.counts.(i) <- t.counts.(i) + k;
  t.total <- t.total + k

let get t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Freq.get: bad cell";
  t.counts.(i)

let counts t = Array.copy t.counts

let merge_into ~dst src =
  if Array.length dst.counts <> Array.length src.counts then
    invalid_arg "Freq.merge_into: size mismatch";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total

let of_values sample =
  if Array.length sample = 0 then invalid_arg "Freq.of_values: empty sample";
  let max_v =
    Array.fold_left
      (fun acc v ->
        if v < 0 then invalid_arg "Freq.of_values: negative value";
        Stdlib.max acc v)
      0 sample
  in
  let t = create ~size:(max_v + 1) in
  Array.iter (fun v -> observe t v) sample;
  t

let freqs t =
  if t.total = 0 then invalid_arg "Freq.freqs: no observations";
  let n = float_of_int t.total in
  Array.map (fun c -> float_of_int c /. n) t.counts

let tv a b =
  if a.total = 0 || b.total = 0 then invalid_arg "Freq.tv: empty sample";
  let na = float_of_int a.total and nb = float_of_int b.total in
  let cells = Stdlib.max (Array.length a.counts) (Array.length b.counts) in
  let acc = ref 0. in
  for i = 0 to cells - 1 do
    let pa =
      if i < Array.length a.counts then float_of_int a.counts.(i) /. na else 0.
    in
    let pb =
      if i < Array.length b.counts then float_of_int b.counts.(i) /. nb else 0.
    in
    acc := !acc +. Float.abs (pa -. pb)
  done;
  !acc /. 2.

let tv_against t q =
  if Array.length q <> Array.length t.counts then
    invalid_arg "Freq.tv_against: length mismatch";
  if t.total = 0 then invalid_arg "Freq.tv_against: no observations";
  let n = float_of_int t.total in
  let acc = ref 0. in
  Array.iteri
    (fun i c -> acc := !acc +. Float.abs ((float_of_int c /. n) -. q.(i)))
    t.counts;
  !acc /. 2.
