(** Special functions backing the goodness-of-fit p-values.

    Only what the conformance tests need: the log-gamma function and the
    regularized incomplete gamma function, from which the chi-square
    survival function follows.  Pure OCaml (the toolchain image carries
    no scientific library), accurate to ~1e-12 over the ranges the tests
    use — far beyond what a pass/fail decision at alpha >= 1e-4
    requires. *)

val log_gamma : float -> float
(** [log_gamma x] is ln Γ(x) for [x > 0] (Lanczos approximation).
    @raise Invalid_argument if [x <= 0]. *)

val gamma_p : a:float -> x:float -> float
(** Lower regularized incomplete gamma [P(a, x) = γ(a,x)/Γ(a)] for
    [a > 0], [x >= 0]: series expansion for [x < a + 1], continued
    fraction otherwise.
    @raise Invalid_argument if [a <= 0] or [x < 0]. *)

val gamma_q : a:float -> x:float -> float
(** Upper regularized incomplete gamma [Q(a, x) = 1 − P(a, x)], computed
    directly (not via subtraction) where that is better conditioned. *)

val chi_square_sf : df:int -> float -> float
(** [chi_square_sf ~df x] is the survival function
    [P(X >= x)] of a chi-square distribution with [df] degrees of
    freedom — the p-value of a goodness-of-fit statistic.
    @raise Invalid_argument if [df < 1] or [x < 0]. *)
