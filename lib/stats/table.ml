type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
  mutable notes : string list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes

let pp fmt t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> Stdlib.max w (String.length c)) ws row)
      (List.map String.length t.columns)
      rows
  in
  let total_width =
    List.fold_left ( + ) 0 widths + (3 * (List.length widths - 1))
  in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    String.concat " | " (List.map2 pad widths row)
  in
  Format.fprintf fmt "@.== %s ==@." t.title;
  Format.fprintf fmt "%s@." (render_row t.columns);
  Format.fprintf fmt "%s@." (String.make total_width '-');
  List.iter (fun row -> Format.fprintf fmt "%s@." (render_row row)) rows;
  List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) (List.rev t.notes)

let print t = pp Format.std_formatter t

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv ?(notes = false) t =
  let line cells = String.concat "," (List.map csv_cell cells) in
  (* Notes become trailing records marked "note" in the first field,
     padded to the header arity so every record has the same number of
     fields (RFC 4180).  Off by default: the historical CSV layout has
     no note rows. *)
  let note_rows =
    if not notes then []
    else
      let pad = List.init (Stdlib.max 0 (List.length t.columns - 2)) (fun _ -> "") in
      List.rev_map (fun n -> "note" :: n :: pad) t.notes
  in
  String.concat "\n"
    ((line t.columns :: List.rev_map line t.rows) @ List.map line note_rows)
  ^ "\n"

let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rows
let notes t = List.rev t.notes

let cell_int = string_of_int

let cell_float ?(decimals = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let cell_ci (lo, hi) = Printf.sprintf "[%s, %s]" (cell_float lo) (cell_float hi)
