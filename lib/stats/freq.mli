(** Frequency counts of a non-negative integer variable.

    The count layer shared by {!Markov.Empirical}'s observable-law
    estimates and the [Validate] conformance subsystem's state-occupancy
    collection: a mutable vector of counts over [0 .. size-1] with an
    incrementally-maintained total, plus the plug-in total-variation
    distances computed from such counts.  Deliberately free of any
    state-space or simulation dependency so both layers can share it. *)

type t

val create : size:int -> t
(** [size] cells, all zero.
    @raise Invalid_argument if [size <= 0]. *)

val size : t -> int
val total : t -> int

val observe : t -> int -> unit
(** Count one observation of cell [i].
    @raise Invalid_argument if [i] is outside [0 .. size-1]. *)

val add : t -> int -> int -> unit
(** [add t i k] counts [k] observations of cell [i].
    @raise Invalid_argument on a bad cell or [k < 0]. *)

val get : t -> int -> int
val counts : t -> int array
(** A copy of the count vector. *)

val merge_into : dst:t -> t -> unit
(** Add every count of the source into [dst].
    @raise Invalid_argument on a size mismatch. *)

val of_values : int array -> t
(** Counts of a sample of a non-negative integer variable; the size is
    [max value + 1].
    @raise Invalid_argument if the sample is empty or has a negative
    entry. *)

val freqs : t -> float array
(** The empirical distribution [count / total].
    @raise Invalid_argument if no observations were recorded. *)

val tv : t -> t -> float
(** Plug-in total-variation distance [½ Σ |p̂ᵢ − q̂ᵢ|] between two
    empirical distributions; the shorter count vector is padded with
    zeros.
    @raise Invalid_argument if either side is empty. *)

val tv_against : t -> float array -> float
(** Plug-in TV distance between the empirical distribution and an exact
    law given as a probability vector of length [size].
    @raise Invalid_argument on a length mismatch or an empty count. *)
