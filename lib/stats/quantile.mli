(** Quantiles of finite samples.

    Linear-interpolation quantiles (type 7 in Hyndman-Fan's taxonomy, the
    R default), used to report medians and spread of measured recovery
    times. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [0 <= q <= 1].  Does not modify [xs].
    @raise Invalid_argument on an empty array or [q] outside [0,1]. *)

val median : float array -> float
val iqr : float array -> float
(** Interquartile range, [quantile 0.75 - quantile 0.25]. *)

val of_ints : int array -> float array
(** Convenience conversion. *)
