(** Streaming summary statistics (Welford's algorithm).

    Numerically stable single-pass mean and variance, plus extrema.  Used
    by every experiment to aggregate repeated measurements. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** [add s x] folds the observation [x] into [s]. *)

val add_int : t -> int -> unit

val count : t -> int
val mean : t -> float
(** Mean of the observations so far; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** Minimum observation; [infinity] when empty. *)

val max : t -> float
(** Maximum observation; [neg_infinity] when empty. *)

val sum : t -> float

val std_error : t -> float
(** Standard error of the mean, [stddev / sqrt count]. *)

val merge : t -> t -> t
(** [merge a b] is a fresh summary equivalent to having observed both
    streams (Chan's parallel update). *)
