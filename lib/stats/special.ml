(* Lanczos log-gamma and the two standard evaluations of the regularized
   incomplete gamma function (series below the diagonal x < a + 1,
   Lentz-style continued fraction above), as in Numerical Recipes 6.1-6.2.
   Each regime computes the member of the pair (P, Q) that it converges
   on fastest; the other follows by complement. *)

(* g = 7, n = 9 Lanczos coefficients (Godfrey).  Relative error < 1e-13
   on the positive reals. *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let log_gamma x =
  if x <= 0. || Float.is_nan x then invalid_arg "Special.log_gamma: need x > 0";
  (* No reflection needed: callers only use x > 0. *)
  let x = x -. 1. in
  let acc = ref lanczos.(0) in
  for i = 1 to 8 do
    acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
  done;
  let t = x +. 7.5 in
  (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc

(* Series: P(a,x) = e^{-x} x^a / Γ(a) * Σ_{k>=0} x^k / (a(a+1)...(a+k)). *)
let p_series ~a ~x =
  let lg = log_gamma a in
  let term = ref (1. /. a) in
  let sum = ref !term in
  let ap = ref a in
  (try
     for _ = 1 to 500 do
       ap := !ap +. 1.;
       term := !term *. x /. !ap;
       sum := !sum +. !term;
       if Float.abs !term < Float.abs !sum *. 1e-16 then raise Exit
     done
   with Exit -> ());
  !sum *. exp ((a *. log x) -. x -. lg)

(* Continued fraction (modified Lentz):
   Q(a,x) = e^{-x} x^a / Γ(a) * 1/(x+1-a- 1·(1-a)/(x+3-a- ...)). *)
let q_cont_frac ~a ~x =
  let lg = log_gamma a in
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  (try
     for i = 1 to 500 do
       let fi = float_of_int i in
       let an = -.fi *. (fi -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if Float.abs !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1. /. !d;
       let delta = !d *. !c in
       h := !h *. delta;
       if Float.abs (delta -. 1.) < 1e-16 then raise Exit
     done
   with Exit -> ());
  exp ((a *. log x) -. x -. lg) *. !h

let gamma_p ~a ~x =
  if a <= 0. then invalid_arg "Special.gamma_p: need a > 0";
  if x < 0. then invalid_arg "Special.gamma_p: need x >= 0";
  if x = 0. then 0.
  else if x < a +. 1. then p_series ~a ~x
  else 1. -. q_cont_frac ~a ~x

let gamma_q ~a ~x =
  if a <= 0. then invalid_arg "Special.gamma_q: need a > 0";
  if x < 0. then invalid_arg "Special.gamma_q: need x >= 0";
  if x = 0. then 1.
  else if x < a +. 1. then 1. -. p_series ~a ~x
  else q_cont_frac ~a ~x

let chi_square_sf ~df x =
  if df < 1 then invalid_arg "Special.chi_square_sf: need df >= 1";
  if x < 0. then invalid_arg "Special.chi_square_sf: need x >= 0";
  gamma_q ~a:(float_of_int df /. 2.) ~x:(x /. 2.)
