(** Closed forms of the paper's bounds, for "predicted" table columns.

    Constants inside O(·) are taken literal where the paper states them
    (Theorem 1, Lemma 3.1) and set to 1 where it only gives an order of
    growth; every function documents which case applies. *)

val theorem1 : m:int -> eps:float -> float
(** Theorem 1: scenario-A mixing time [⌈m ln(m ε⁻¹)⌉] — exact statement.
    @raise Invalid_argument if [m < 1] or [eps] outside (0,1). *)

val claim53 : n:int -> m:int -> eps:float -> float
(** Claim 5.3: scenario-B upper bound O(n m² ln ε⁻¹); rendered via
    Lemma 3.1(2) with diameter m and α = 1/n:
    [⌈e·m²·n⌉·⌈ln ε⁻¹⌉]. *)

val scenario_b_improved : m:int -> float
(** The full-version improvement Õ(m²): rendered as [m² ln m]. *)

val scenario_b_lower : m:int -> float
(** The Ω(m²) lower bound: rendered as [m²]. *)

val corollary64 : n:int -> eps:float -> float
(** Corollary 6.4: edge orientation O(n³(ln n + ln ε⁻¹)); rendered from
    Lemma 3.1(1) with β = 1 − 4/(n²(n−1)) and diameter n:
    [(n²(n−1)/4)·ln(n ε⁻¹)]. *)

val theorem2 : n:int -> float
(** Theorem 2: O(n² ln² n) for τ(¼); rendered as [n² ln² n]. *)

val edge_lower : n:int -> float
(** The Ω(n²) remark: rendered as [n²]. *)

val path_coupling_case1 : beta:float -> diameter:int -> eps:float -> float
val path_coupling_case2 : alpha:float -> diameter:int -> eps:float -> float
(** Lemma 3.1 calculators (same as [Coupling.Path_coupling] but kept here
    so theory-only code need not depend on the simulation stack). *)

val azar_static_max_load : n:int -> m:int -> d:int -> float
(** Azar et al.: static max load ≈ [ln ln n / ln d + m/n] for d ≥ 2 and
    ≈ [ln n / ln ln n] for d = 1 (m = n).
    @raise Invalid_argument for [n < 2], [m < 0] or [d < 1]. *)

val edge_stationary_unfairness : n:int -> float
(** Ajtai et al.: expected unfairness Θ(log log n); rendered as
    [log₂ log₂ n] (n ≥ 4). *)

val recovery_a_steps : n:int -> float
(** Section 1.1, second removal scenario (a job chosen i.u.r. ends):
    recovery within O(n ln n) steps — rendered as [n ln n]. *)

val recovery_b_steps : n:int -> float
(** Section 1.1, first removal scenario (a server chosen i.u.r. finishes
    a job): recovery within O(n² ln n) steps — rendered as [n² ln n]. *)

(** {2 Repeated balls-into-bins (round-synchronous family)} *)

val rbb_mixing : n:int -> m:int -> float
(** Los & Sauerwald (tight bounds for repeated balls-into-bins): for
    [m = Θ(n)] the uniform RBB process mixes in Θ(n log n) rounds;
    rendered with unit constants as [(m/n)·n ln n] so the [m = n] case
    reads [n ln n].  @raise Invalid_argument if [n < 2] or [m < 1]. *)

val rbb_stabilization : n:int -> float
(** Becchetti et al. (self-stabilizing repeated balls-into-bins,
    [m = n]): from any configuration the max load drops to O(log n)
    within O(n) rounds w.h.p.; the rounds bound rendered as [n].
    @raise Invalid_argument if [n < 2]. *)

val rbb_max_load : n:int -> float
(** The same theorem's equilibrium ceiling: max load O(log n) w.h.p.
    once stabilized; rendered as [ln n].
    @raise Invalid_argument if [n < 2]. *)
