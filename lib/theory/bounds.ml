let check_eps eps name =
  if not (eps > 0. && eps < 1.) then invalid_arg (name ^ ": eps not in (0,1)")

let theorem1 ~m ~eps =
  if m < 1 then invalid_arg "Bounds.theorem1: m < 1";
  check_eps eps "Bounds.theorem1";
  ceil (float_of_int m *. log (float_of_int m /. eps))

let path_coupling_case1 ~beta ~diameter ~eps =
  if diameter < 1 then invalid_arg "Bounds.path_coupling_case1: diameter";
  check_eps eps "Bounds.path_coupling_case1";
  if not (beta >= 0. && beta < 1.) then
    invalid_arg "Bounds.path_coupling_case1: beta";
  log (float_of_int diameter /. eps) /. (1. -. beta)

let path_coupling_case2 ~alpha ~diameter ~eps =
  if diameter < 1 then invalid_arg "Bounds.path_coupling_case2: diameter";
  check_eps eps "Bounds.path_coupling_case2";
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Bounds.path_coupling_case2: alpha";
  let d = float_of_int diameter in
  ceil (exp 1. *. d *. d /. alpha) *. ceil (log (1. /. eps))

let claim53 ~n ~m ~eps =
  if n < 1 || m < 1 then invalid_arg "Bounds.claim53";
  path_coupling_case2 ~alpha:(1. /. float_of_int n) ~diameter:m ~eps

let scenario_b_improved ~m =
  if m < 2 then invalid_arg "Bounds.scenario_b_improved: m < 2";
  let fm = float_of_int m in
  fm *. fm *. log fm

let scenario_b_lower ~m =
  if m < 1 then invalid_arg "Bounds.scenario_b_lower: m < 1";
  float_of_int m *. float_of_int m

let corollary64 ~n ~eps =
  if n < 2 then invalid_arg "Bounds.corollary64: n < 2";
  check_eps eps "Bounds.corollary64";
  let fn = float_of_int n in
  fn *. fn *. (fn -. 1.) /. 4. *. log (fn /. eps)

let theorem2 ~n =
  if n < 2 then invalid_arg "Bounds.theorem2: n < 2";
  let fn = float_of_int n in
  fn *. fn *. log fn *. log fn

let edge_lower ~n =
  if n < 1 then invalid_arg "Bounds.edge_lower: n < 1";
  float_of_int n *. float_of_int n

let azar_static_max_load ~n ~m ~d =
  if n < 2 || m < 0 || d < 1 then invalid_arg "Bounds.azar_static_max_load";
  let fn = float_of_int n in
  if d = 1 then log fn /. log (log fn)
  else (log (log fn) /. log (float_of_int d)) +. (float_of_int m /. fn)

let edge_stationary_unfairness ~n =
  if n < 4 then invalid_arg "Bounds.edge_stationary_unfairness: n < 4";
  let log2 x = log x /. log 2. in
  log2 (log2 (float_of_int n))

let recovery_a_steps ~n =
  if n < 2 then invalid_arg "Bounds.recovery_a_steps: n < 2";
  float_of_int n *. log (float_of_int n)

let recovery_b_steps ~n =
  if n < 2 then invalid_arg "Bounds.recovery_b_steps: n < 2";
  let fn = float_of_int n in
  fn *. fn *. log fn

let rbb_mixing ~n ~m =
  if n < 2 || m < 1 then invalid_arg "Bounds.rbb_mixing";
  let fn = float_of_int n in
  float_of_int m /. fn *. (fn *. log fn)

let rbb_stabilization ~n =
  if n < 2 then invalid_arg "Bounds.rbb_stabilization: n < 2";
  float_of_int n

let rbb_max_load ~n =
  if n < 2 then invalid_arg "Bounds.rbb_max_load: n < 2";
  log (float_of_int n)
