(** Tracing and telemetry.

    One subsystem for all three execution layers (engine, exact
    analysis, experiment framework): nestable {e spans} on a monotonic
    clock, named {e counters} and log-bucketed {e histograms}, and a
    Chrome/Perfetto trace-event JSON export.

    {b Overhead contract.}  Everything is gated on one static flag set
    by {!enable}: while disabled (the default), every recording entry
    point is a single load-and-branch with {e no allocation}, so
    instrumented step loops keep their throughput.  Call sites that
    would allocate just to build span attributes must guard on
    {!enabled} themselves.

    {b Determinism contract.}  Events buffer per domain and are merged
    by sorting on the (track, seq) key.  Work fanned out over domains
    records under explicit task tracks ({!task_base} / {!in_task}), so
    the merged trace is identical for any domain count once timestamps
    are stripped. *)

val enabled : unit -> bool
(** Whether recording is on.  Guard any instrumentation that allocates
    (attribute lists, formatted strings) behind this. *)

val enable : unit -> unit
(** Turn recording on (idempotent).  Call from the main domain before
    the instrumented work starts; also pins the calling domain's buffer
    to track 0. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all buffered events and zero every counter and histogram (they
    stay registered).  Also resets the task-track allocator. *)

(** Monotonic wall-clock (CLOCK_MONOTONIC): immune to NTP adjustments,
    which can make [Unix.gettimeofday] deltas negative or inflated. *)
module Clock : sig
  val now_ns : unit -> int64

  val ns_since : int64 -> int64
  (** Nanoseconds elapsed since an earlier {!now_ns}, clamped at zero. *)

  val seconds_since : int64 -> float
  (** {!ns_since} in seconds (clamped at zero). *)

  val seconds_of_ns : int64 -> float
end

(** Log-bucketed histogram: the pure, domain-safe data structure behind
    {!Histogram}.  Bucket 0 holds values [<= 0]; bucket [k >= 1] holds
    the k-bit values [2^(k-1) .. 2^k - 1]. *)
module Hist : sig
  type t

  val create : unit -> t

  val observe : t -> int -> unit
  (** Record one value.  Atomic; safe from any domain, and the totals
      are deterministic for any fan-out (sums commute).  Unlike the
      {!Histogram} wrapper this is {e not} gated on {!enabled}. *)

  val bucket_of : int -> int

  type snapshot = {
    count : int;
    sum : int;
    max : int;  (** [min_int] when empty. *)
    buckets : (int * int * int) list;
        (** Non-empty buckets as [(lo, hi, count)], in value order. *)
  }

  val snapshot : t -> snapshot
  val reset : t -> unit
  val mean : snapshot -> float

  val empty : snapshot
  (** The identity of {!merge}. *)

  val merge : snapshot -> snapshot -> snapshot
  (** Combine two snapshots as if their observation streams had been
      interleaved into one histogram: bucket counts, totals and the max
      all combine cell-by-cell, so merging is associative and
      commutative with {!empty} as identity, and
      [merge (snapshot a) (snapshot b)] equals the snapshot of a
      histogram fed both streams. *)

  val quantile : snapshot -> float -> float
  (** [quantile s q] estimates the [q]-quantile ([q] clamped to
      [0..1]) by linear interpolation within the bucket holding rank
      [q * count]; the top bucket's edge is pulled in to the recorded
      max.  Monotone in [q]; exact to within the width of the bucket
      containing the true order statistic; [nan] when empty. *)

  val percentiles : snapshot -> (string * float) list
  (** [("p50", _); ("p90", _); ("p99", _); ("p999", _)] via
      {!quantile} — the latency summary the serve layer exports. *)
end

(** Named global counters (e.g. spmv calls).  [make] registers by name
    (idempotent); increments are atomic and no-ops while disabled. *)
module Counter : sig
  type t

  val make : string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

(** Named global histograms (probes per insertion, coalescence times,
    spmv row cost, load watermarks).  [make] registers by name
    (idempotent); observation is a no-op while disabled. *)
module Histogram : sig
  type t

  val make : string -> t
  val observe : t -> int -> unit
  val observe_ns : t -> int64 -> unit
  val snapshot : t -> Hist.snapshot
end

val counters : unit -> (string * int) list
(** Counters that recorded something, sorted by name. *)

val histograms : unit -> (string * Hist.snapshot) list
(** Histograms that recorded something, sorted by name. *)

(** {1 Spans} *)

type arg = Int of int | Float of float | Str of string

type span
(** A span in flight.  While disabled this is a static constant: the
    begin/end pair costs two branches and allocates nothing. *)

val null_span : span

val begin_span : ?args:(string * arg) list -> string -> span
val end_span : ?args:(string * arg) list -> span -> unit
(** End-side [args] (results: a mixing time, a TV distance) are appended
    to the begin-side ones. *)

val with_span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span (closed also on exception). *)

val instant : ?args:(string * arg) list -> string -> unit
(** A zero-duration marker event. *)

val counter_sample : string -> int -> unit
(** A point on a named timeline (trace-event phase ["C"]), e.g. the load
    watermark over time. *)

(** {1 Tasks — deterministic parallel merge} *)

val task_base : count:int -> int
(** Reserve [count] consecutive track ids.  Call on the main domain
    before a fan-out; give task [i] the track [base + i] via
    {!in_task}.  Allocation order is deterministic as long as the calls
    themselves are. *)

val in_task : int -> (unit -> 'a) -> 'a
(** Run the thunk with the current domain's buffer retargeted to the
    given track, with a fresh span sequence; restores the previous
    track/sequence after (also on exception).  No-op indirection while
    disabled. *)

(** {1 Export} *)

type phase = Complete | Instant | Counter_sample

type event = {
  name : string;
  ph : phase;
  track : int;
  seq : int;
  ts_ns : int64;
  dur_ns : int64;  (** 0 unless [Complete]. *)
  args : (string * arg) list;
}

val events : unit -> event list
(** All buffered events merged across domains, sorted by (track, seq). *)

val trace_json : unit -> string
(** The merged events as Chrome/Perfetto trace-event JSON (object form,
    ["traceEvents"] array; [ts]/[dur] in microseconds, [pid] constant 1,
    [tid] = track).  Open in https://ui.perfetto.dev or
    chrome://tracing. *)

val write_trace : path:string -> unit
(** Write {!trace_json} to a file. *)
