(* Tracing and telemetry.  The whole module is gated on one static flag:
   every recording entry point opens with [if not !on then ...], so the
   disabled path is a single load-and-branch with no allocation, and the
   hot step loops of the simulation engine keep their throughput.  When
   enabled, spans and instants accumulate in per-domain buffers (domain-
   local storage, registered under a mutex) and are merged after the
   parallel joins by sorting on the deterministic (track, seq) key, so
   the exported trace does not depend on the domain fan-out. *)

let on = ref false

module Clock = struct
  (* CLOCK_MONOTONIC via bechamel's stub: immune to NTP adjustments,
     which can make Unix.gettimeofday deltas negative or inflated. *)
  let now_ns () = Monotonic_clock.now ()

  let ns_since t0 =
    let d = Int64.sub (now_ns ()) t0 in
    if Int64.compare d 0L < 0 then 0L else d

  let seconds_of_ns ns = Int64.to_float ns /. 1e9
  let seconds_since t0 = seconds_of_ns (ns_since t0)
end

let enabled () = !on

(* ---- log-bucketed histograms (the pure data structure) ---- *)

module Hist = struct
  (* Power-of-two buckets: bucket 0 holds values <= 0, bucket k >= 1
     holds [2^(k-1), 2^k - 1] (the k-bit values).  All cells are atomic
     so observation is safe from any domain; sums commute, so the merged
     totals are deterministic whatever the fan-out. *)
  let bucket_count = 63

  type t = {
    buckets : int Atomic.t array;
    count : int Atomic.t;
    sum : int Atomic.t;
    max : int Atomic.t;
  }

  let create () =
    {
      buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
      count = Atomic.make 0;
      sum = Atomic.make 0;
      max = Atomic.make min_int;
    }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 in
      let v = ref v in
      while !v > 0 do
        incr b;
        v := !v lsr 1
      done;
      !b
    end

  let rec raise_max cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then raise_max cell v

  let observe h v =
    ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.count 1);
    ignore (Atomic.fetch_and_add h.sum v);
    raise_max h.max v

  type snapshot = {
    count : int;
    sum : int;
    max : int;  (** [min_int] when empty. *)
    buckets : (int * int * int) list;
        (** Non-empty buckets as (lo, hi, count), in value order. *)
  }

  let snapshot (h : t) =
    let buckets = ref [] in
    for k = bucket_count - 1 downto 0 do
      let c = Atomic.get h.buckets.(k) in
      if c > 0 then begin
        let lo = if k = 0 then 0 else 1 lsl (k - 1) in
        let hi = if k = 0 then 0 else (1 lsl k) - 1 in
        buckets := (lo, hi, c) :: !buckets
      end
    done;
    {
      count = Atomic.get h.count;
      sum = Atomic.get h.sum;
      max = Atomic.get h.max;
      buckets = !buckets;
    }

  let reset (h : t) =
    Array.iter (fun c -> Atomic.set c 0) h.buckets;
    Atomic.set h.count 0;
    Atomic.set h.sum 0;
    Atomic.set h.max min_int

  let mean (s : snapshot) =
    if s.count = 0 then nan else float_of_int s.sum /. float_of_int s.count

  let empty : snapshot = { count = 0; sum = 0; max = min_int; buckets = [] }

  (* Buckets are keyed by their lower bound: two snapshots' bucket lists
     are aligned like a sorted merge, so merging is associative and
     commutative cell-by-cell (integer sums and max), which the qcheck
     properties pin down. *)
  let merge (a : snapshot) (b : snapshot) : snapshot =
    let rec go xs ys =
      match (xs, ys) with
      | [], rest | rest, [] -> rest
      | ((alo, ahi, ac) as x) :: xs', ((blo, _, bc) as y) :: ys' ->
          if alo = blo then (alo, ahi, ac + bc) :: go xs' ys'
          else if alo < blo then x :: go xs' ys
          else y :: go xs ys'
    in
    {
      count = a.count + b.count;
      sum = a.sum + b.sum;
      max = Stdlib.max a.max b.max;
      buckets = go a.buckets b.buckets;
    }

  (* Within-bucket linear interpolation: walk the buckets to the one
     holding rank [q * count] and place the estimate proportionally
     inside its [lo, hi] range.  The last bucket's upper edge is pulled
     in to the recorded max (the true largest observation lives there),
     so p999 never exceeds an observed value.  The estimate is exact to
     within the width of the bucket containing the true order statistic
     — the resolution contract of a log-bucketed histogram. *)
  let quantile (s : snapshot) q =
    if s.count = 0 then nan
    else begin
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      let interpolate lo hi c remaining =
        let frac =
          Float.max 0. (Float.min 1. (remaining /. float_of_int c))
        in
        float_of_int lo +. (frac *. float_of_int (hi - lo))
      in
      let rec go remaining = function
        | [] -> float_of_int s.max
        | [ (lo, hi, c) ] ->
            let hi = if s.max >= lo && s.max <= hi then s.max else hi in
            interpolate lo hi c remaining
        | (lo, hi, c) :: rest ->
            let fc = float_of_int c in
            if remaining <= fc then interpolate lo hi c remaining
            else go (remaining -. fc) rest
      in
      go (q *. float_of_int s.count) s.buckets
    end

  let percentiles (s : snapshot) =
    List.map
      (fun (name, q) -> (name, quantile s q))
      [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99); ("p999", 0.999) ]
end

(* ---- named-instrument registries ---- *)

let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

module Counter = struct
  type t = { name : string; cell : int Atomic.t }

  let registry : t list ref = ref []

  let make name =
    with_lock (fun () ->
        match List.find_opt (fun c -> c.name = name) !registry with
        | Some c -> c
        | None ->
            let c = { name; cell = Atomic.make 0 } in
            registry := c :: !registry;
            c)

  let add t k = if !on then ignore (Atomic.fetch_and_add t.cell k)
  let incr t = add t 1
  let value t = Atomic.get t.cell
end

module Histogram = struct
  type t = { name : string; hist : Hist.t }

  let registry : t list ref = ref []

  let make name =
    with_lock (fun () ->
        match List.find_opt (fun h -> h.name = name) !registry with
        | Some h -> h
        | None ->
            let h = { name; hist = Hist.create () } in
            registry := h :: !registry;
            h)

  let observe t v = if !on then Hist.observe t.hist v
  let observe_ns t ns = if !on then Hist.observe t.hist (Int64.to_int ns)
  let snapshot t = Hist.snapshot t.hist
end

(* Aggregate views for the telemetry sink: only instruments that have
   recorded something, sorted by name so the output is stable. *)
let counters () =
  with_lock (fun () ->
      List.filter_map
        (fun (c : Counter.t) ->
          let v = Atomic.get c.cell in
          if v = 0 then None else Some (c.name, v))
        !Counter.registry)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms () =
  with_lock (fun () ->
      List.filter_map
        (fun (h : Histogram.t) ->
          let s = Hist.snapshot h.hist in
          if s.Hist.count = 0 then None else Some (h.name, s))
        !Histogram.registry)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- trace events ---- *)

type arg = Int of int | Float of float | Str of string

type phase = Complete | Instant | Counter_sample

type event = {
  name : string;
  ph : phase;
  track : int;
  seq : int;
  ts_ns : int64;
  dur_ns : int64;  (* 0 unless Complete *)
  args : (string * arg) list;
}

(* Per-domain buffer.  [track] and [seq] form the deterministic merge
   key: tasks (replications, per-start searches) are given explicit
   globally-unique track ids from [task_base] before the fan-out, and
   [seq] numbers the spans begun within a task, so the same logical work
   yields the same keys whatever domain it lands on.  A buffer created
   outside any task (a worker domain doing untasked work) gets a unique
   anonymous track well away from the task range. *)
type buffer = {
  mutable track : int;
  mutable seq : int;
  mutable events : event list; (* reversed *)
}

let buffers : buffer list ref = ref []
let anon_track = Atomic.make (1 lsl 40)

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { track = Atomic.fetch_and_add anon_track 1; seq = 0; events = [] }
      in
      with_lock (fun () -> buffers := b :: !buffers);
      b)

let buffer () = Domain.DLS.get buffer_key

let task_counter = Atomic.make 1

let task_base ~count =
  if count < 0 then invalid_arg "Obs.task_base: negative count";
  Atomic.fetch_and_add task_counter count

let in_task track f =
  if not !on then f ()
  else begin
    let b = buffer () in
    let old_track = b.track and old_seq = b.seq in
    b.track <- track;
    b.seq <- 0;
    Fun.protect
      ~finally:(fun () ->
        b.track <- old_track;
        b.seq <- old_seq)
      f
  end

(* A span in flight.  [None] when tracing is disabled, so the disabled
   begin/end pair is two branches and no allocation. *)
type span = (string * (string * arg) list * int64 * int * int) option

let null_span : span = None

let begin_span ?(args = []) name : span =
  if not !on then None
  else begin
    let b = buffer () in
    let seq = b.seq in
    b.seq <- seq + 1;
    Some (name, args, Clock.now_ns (), b.track, seq)
  end

let end_span ?(args = []) (s : span) =
  match s with
  | None -> ()
  | Some (name, args0, t0, track, seq) ->
      let b = buffer () in
      b.events <-
        {
          name;
          ph = Complete;
          track;
          seq;
          ts_ns = t0;
          dur_ns = Clock.ns_since t0;
          args = args0 @ args;
        }
        :: b.events

let with_span ?args name f =
  if not !on then f ()
  else begin
    let s = begin_span ?args name in
    Fun.protect ~finally:(fun () -> end_span s) f
  end

let record ph ?(args = []) name =
  if !on then begin
    let b = buffer () in
    let seq = b.seq in
    b.seq <- seq + 1;
    b.events <-
      { name; ph; track = b.track; seq; ts_ns = Clock.now_ns (); dur_ns = 0L; args }
      :: b.events
  end

let instant ?args name = record Instant ?args name
let counter_sample name v = record Counter_sample ~args:[ ("value", Int v) ] name

let events () =
  let all = with_lock (fun () -> List.map (fun b -> b.events) !buffers) in
  List.concat_map List.rev all
  |> List.sort (fun (a : event) (b : event) ->
         match Int.compare a.track b.track with
         | 0 -> Int.compare a.seq b.seq
         | c -> c)

(* ---- control ---- *)

let enable () =
  (* Pin the calling domain's buffer to track 0 so top-level spans sort
     first; worker-domain buffers keep their anonymous tracks unless the
     work runs under [in_task]. *)
  (buffer ()).track <- 0;
  on := true

let disable () = on := false

let reset () =
  with_lock (fun () ->
      List.iter
        (fun b ->
          b.events <- [];
          b.seq <- 0)
        !buffers;
      List.iter (fun (c : Counter.t) -> Atomic.set c.cell 0) !Counter.registry;
      List.iter (fun (h : Histogram.t) -> Hist.reset h.hist) !Histogram.registry);
  Atomic.set task_counter 1

(* ---- Chrome/Perfetto trace-event JSON ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_arg buf (k, v) =
  escape buf k;
  Buffer.add_char buf ':';
  match v with
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | Str s -> escape buf s

let ph_letter = function
  | Complete -> "X"
  | Instant -> "i"
  | Counter_sample -> "C"

(* One event per line: ts/dur in microseconds (the unit the trace-event
   format specifies), pid constant, tid = the deterministic track. *)
let add_event buf e =
  Buffer.add_string buf "{\"name\":";
  escape buf e.name;
  Buffer.add_string buf (Printf.sprintf ",\"ph\":%S" (ph_letter e.ph));
  Buffer.add_string buf
    (Printf.sprintf ",\"ts\":%.3f" (Int64.to_float e.ts_ns /. 1e3));
  if e.ph = Complete then
    Buffer.add_string buf
      (Printf.sprintf ",\"dur\":%.3f" (Int64.to_float e.dur_ns /. 1e3));
  Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" e.track);
  if e.args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_char buf ',';
        add_arg buf a)
      e.args
  end
  else Buffer.add_string buf ",\"args\":{";
  Buffer.add_string buf "}}"

let trace_json () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_event buf e)
    (events ());
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (trace_json ()))
