(** Mean-field (fluid-limit) equations for d-choice allocation systems.

    Mitzenmacher's method: describe the system by the fractions
    [s_i = (number of bins with load ≥ i) / n], [i ≥ 1] ([s_0 ≡ 1]),
    whose large-[n] dynamics follow an ODE.  A new ball lands on a bin of
    load ≥ i with probability [q_i = s_i^d] (d-choice), so

    - static:      [s_i' = s_{i-1}^d − s_i^d]
    - scenario A:  [s_i' = (s_{i-1}^d − s_i^d) − i (s_i − s_{i+1}) n/m]
    - scenario B:  [s_i' = (s_{i-1}^d − s_i^d) − (s_i − s_{i+1}) / s_1]

    (time scaled so one unit = n process steps).  The fixed points predict
    the stationary load profile; the paper proposes using precisely such
    predictions together with its recovery-time bounds (Section 1).

    Vectors are indexed from 0: entry [i] holds [s_{i+1}]; levels are
    truncated at a finite [L]. *)

val insertion_tail : d:int -> float array -> float array
(** [insertion_tail ~d s] maps [s] (entries [s_1..s_L]) to
    [q_1..q_L = s_i^d].
    @raise Invalid_argument if [d < 1]. *)

val uniform_profile : m_over_n:float -> levels:int -> float array
(** The balanced profile with mean load [m_over_n]: [s_i = 1] for
    [i <= ⌊m/n⌋], the fractional remainder at the next level, then 0. *)

val static : d:int -> c:float -> levels:int -> float array
(** Load profile after throwing [c·n] balls into [n] empty bins,
    integrated to time [c].
    @raise Invalid_argument if [c < 0], [d < 1], or [levels <= 0]. *)

val derivative_a : d:int -> m_over_n:float -> float array -> float array
val derivative_b : d:int -> float array -> float array
(** The right-hand sides above (exposed for tests). *)

val fixed_point_a : d:int -> m_over_n:float -> levels:int -> float array
(** Stationary profile of Id-ABKU[d] (scenario A). *)

val fixed_point_b : d:int -> m_over_n:float -> levels:int -> float array
(** Stationary profile of Ib-ABKU[d] (scenario B). *)

val adap_landing : threshold:(int -> int) -> float array -> float array
(** [adap_landing ~threshold s] is the mean-field law of the load of the
    bin an ADAP(x) insertion picks, probing against the profile [s]:
    entry [l] (for [l = 0..L]) is the probability the chosen bin has load
    exactly [l].  Computed by the probe dynamic program over
    [min]-of-samples distributions; for the constant threshold [d] the
    tail of this law is exactly [s_i^d].
    @raise Invalid_argument if a threshold is < 1; @raise Failure if the
    thresholds force more than 10^4 probes. *)

val expected_probes_fluid : threshold:(int -> int) -> float array -> float
(** Mean-field expected probes per ADAP insertion against profile [s]. *)

val fixed_point_a_adap :
  threshold:(int -> int) -> m_over_n:float -> levels:int -> float array
(** Stationary profile of Id-ADAP(x) (scenario A). *)

val fixed_point_b_adap :
  threshold:(int -> int) -> m_over_n:float -> levels:int -> float array
(** Stationary profile of Ib-ADAP(x) (scenario B). *)

val predicted_max_load : n:int -> float array -> int
(** Largest [i] with [s_i ≥ 1/n] — the level down to which at least one
    bin is expected. *)

val mean_load : float array -> float
(** [Σ_i s_i], the balls-per-bin the profile carries. *)
