(** Runge-Kutta integration of autonomous ODE systems.

    The paper pairs its recovery-time bounds with Mitzenmacher's
    differential-equation method for predicting stationary behaviour;
    this is the integrator behind those fluid-limit predictions. *)

val rk4_step :
  f:(float array -> float array) -> dt:float -> float array -> float array
(** One classical RK4 step for the autonomous system [y' = f y].
    @raise Invalid_argument if [dt <= 0]. *)

val integrate :
  f:(float array -> float array) ->
  y0:float array ->
  t:float ->
  steps:int ->
  float array
(** Integrate from 0 to [t] in [steps] RK4 steps.
    @raise Invalid_argument if [t < 0] or [steps <= 0]. *)

val to_fixed_point :
  ?dt:float ->
  ?tol:float ->
  ?max_steps:int ->
  f:(float array -> float array) ->
  y0:float array ->
  unit ->
  float array
(** Integrate until the sup-norm of [f y] falls below [tol] (defaults
    [dt = 0.1], [tol = 1e-10], [max_steps = 10_000_000]).
    @raise Failure if no fixed point is reached. *)
