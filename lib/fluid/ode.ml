let axpy out a x y =
  Array.iteri (fun i xi -> out.(i) <- y.(i) +. (a *. xi)) x

let rk4_step ~f ~dt y =
  if dt <= 0. then invalid_arg "Ode.rk4_step: dt must be positive";
  let n = Array.length y in
  let tmp = Array.make n 0. in
  let k1 = f y in
  axpy tmp (dt /. 2.) k1 y;
  let k2 = f tmp in
  axpy tmp (dt /. 2.) k2 y;
  let k3 = f tmp in
  axpy tmp dt k3 y;
  let k4 = f tmp in
  Array.init n (fun i ->
      y.(i) +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

let integrate ~f ~y0 ~t ~steps =
  if t < 0. then invalid_arg "Ode.integrate: negative time";
  if steps <= 0 then invalid_arg "Ode.integrate: steps must be positive";
  if t = 0. then Array.copy y0
  else begin
    let dt = t /. float_of_int steps in
    let y = ref (Array.copy y0) in
    for _ = 1 to steps do
      y := rk4_step ~f ~dt !y
    done;
    !y
  end

let sup_norm v = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0. v

let to_fixed_point ?(dt = 0.1) ?(tol = 1e-10) ?(max_steps = 10_000_000)
    ~f ~y0 () =
  let y = ref (Array.copy y0) in
  let rec go k =
    if sup_norm (f !y) <= tol then !y
    else if k >= max_steps then failwith "Ode.to_fixed_point: no convergence"
    else begin
      y := rk4_step ~f ~dt !y;
      go (k + 1)
    end
  in
  go 0
