let pow_int x d =
  let rec go acc x d =
    if d = 0 then acc
    else if d land 1 = 1 then go (acc *. x) (x *. x) (d asr 1)
    else go acc (x *. x) (d asr 1)
  in
  go 1. x d

let insertion_tail ~d s =
  if d < 1 then invalid_arg "Mean_field.insertion_tail: d must be >= 1";
  Array.map (fun si -> pow_int si d) s

(* Entry i holds s_{i+1}; s_0 = 1 and s beyond the last level is 0. *)
let s_at s i = if i = 0 then 1. else if i > Array.length s then 0. else s.(i - 1)

let uniform_profile ~m_over_n ~levels =
  if m_over_n < 0. || levels <= 0 then invalid_arg "Mean_field.uniform_profile";
  let whole = int_of_float (floor m_over_n) in
  let frac = m_over_n -. floor m_over_n in
  Array.init levels (fun idx ->
      let i = idx + 1 in
      if i <= whole then 1. else if i = whole + 1 then frac else 0.)

let insertion_flux ~d s i =
  (* Probability the new ball raises a bin from load i-1 to i. *)
  pow_int (s_at s (i - 1)) d -. pow_int (s_at s i) d

let static_derivative ~d s =
  Array.init (Array.length s) (fun idx -> insertion_flux ~d s (idx + 1))

let static ~d ~c ~levels =
  if c < 0. || d < 1 || levels <= 0 then invalid_arg "Mean_field.static";
  if c = 0. then Array.make levels 0.
  else
    Ode.integrate ~f:(static_derivative ~d) ~y0:(Array.make levels 0.) ~t:c
      ~steps:(Stdlib.max 100 (int_of_float (c *. 200.)))

let derivative_a ~d ~m_over_n s =
  if m_over_n <= 0. then invalid_arg "Mean_field.derivative_a";
  Array.init (Array.length s) (fun idx ->
      let i = idx + 1 in
      insertion_flux ~d s i
      -. (float_of_int i *. (s_at s i -. s_at s (i + 1)) /. m_over_n))

let derivative_b ~d s =
  let s1 = s_at s 1 in
  Array.init (Array.length s) (fun idx ->
      let i = idx + 1 in
      let removal =
        if s1 <= 0. then 0. else (s_at s i -. s_at s (i + 1)) /. s1
      in
      insertion_flux ~d s i -. removal)

let fixed_point ~f ~m_over_n ~levels =
  if levels <= 0 then invalid_arg "Mean_field.fixed_point";
  let y0 = uniform_profile ~m_over_n ~levels in
  Ode.to_fixed_point ~dt:0.05 ~tol:1e-9 ~max_steps:500_000 ~f ~y0 ()

let fixed_point_a ~d ~m_over_n ~levels =
  if d < 1 then invalid_arg "Mean_field.fixed_point_a";
  fixed_point ~f:(derivative_a ~d ~m_over_n) ~m_over_n ~levels

let fixed_point_b ~d ~m_over_n ~levels =
  if d < 1 then invalid_arg "Mean_field.fixed_point_b";
  fixed_point ~f:(derivative_b ~d) ~m_over_n ~levels

(* Probe dynamic program for ADAP(x) in the mean field.  alive.(l) is the
   probability that the probing is still running with current best load
   exactly l; at probe count M the mass with x_l <= M stops (the ball
   lands on a bin of load l). *)
let adap_dp ~threshold ~emit s =
  let levels = Array.length s in
  let p l = s_at s l -. s_at s (l + 1) in
  let alive = Array.init (levels + 1) p in
  let remaining = ref (Array.fold_left ( +. ) 0. alive) in
  let m = ref 1 in
  while !remaining > 1e-13 do
    if !m > 10_000 then failwith "Mean_field.adap_dp: probe cap exceeded";
    for l = 0 to levels do
      if alive.(l) > 0. then begin
        let x_l = threshold l in
        if x_l < 1 then invalid_arg "Mean_field.adap_dp: threshold < 1";
        if x_l <= !m then begin
          emit l !m alive.(l);
          remaining := !remaining -. alive.(l);
          alive.(l) <- 0.
        end
      end
    done;
    if !remaining > 1e-13 then begin
      (* One more probe: new best = min(best, fresh sample). *)
      let above = Array.make (levels + 2) 0. in
      for l = levels downto 0 do
        above.(l) <- above.(l + 1) +. alive.(l)
      done;
      for l = 0 to levels do
        alive.(l) <- (alive.(l) *. s_at s l) +. (p l *. above.(l + 1))
      done
    end;
    incr m
  done

let adap_landing ~threshold s =
  let landing = Array.make (Array.length s + 1) 0. in
  adap_dp ~threshold s ~emit:(fun l _m mass -> landing.(l) <- landing.(l) +. mass);
  landing

let expected_probes_fluid ~threshold s =
  let acc = ref 0. in
  adap_dp ~threshold s ~emit:(fun _l m mass -> acc := !acc +. (float_of_int m *. mass));
  !acc

let derivative_a_adap ~threshold ~m_over_n s =
  if m_over_n <= 0. then invalid_arg "Mean_field.derivative_a_adap";
  let landing = adap_landing ~threshold s in
  Array.init (Array.length s) (fun idx ->
      let i = idx + 1 in
      landing.(i - 1)
      -. (float_of_int i *. (s_at s i -. s_at s (i + 1)) /. m_over_n))

let derivative_b_adap ~threshold s =
  let landing = adap_landing ~threshold s in
  let s1 = s_at s 1 in
  Array.init (Array.length s) (fun idx ->
      let i = idx + 1 in
      let removal =
        if s1 <= 0. then 0. else (s_at s i -. s_at s (i + 1)) /. s1
      in
      landing.(i - 1) -. removal)

let fixed_point_a_adap ~threshold ~m_over_n ~levels =
  fixed_point ~f:(derivative_a_adap ~threshold ~m_over_n) ~m_over_n ~levels

let fixed_point_b_adap ~threshold ~m_over_n ~levels =
  fixed_point ~f:(derivative_b_adap ~threshold) ~m_over_n ~levels

let predicted_max_load ~n s =
  if n <= 0 then invalid_arg "Mean_field.predicted_max_load";
  let threshold = 1. /. float_of_int n in
  let best = ref 0 in
  Array.iteri (fun idx si -> if si >= threshold then best := idx + 1) s;
  !best

let mean_load s = Array.fold_left ( +. ) 0. s
