type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest decimal representation that round-trips; non-finite floats
   have no JSON encoding and collapse to null. *)
let float_repr x =
  let s = Printf.sprintf "%.15g" x in
  let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  then s
  else s ^ ".0"

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf ~indent ~level v =
  let pad n = if indent > 0 then Buffer.add_string buf (String.make (n * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_finite x then Buffer.add_string buf (float_repr x)
      else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          write buf ~indent ~level:(level + 1) x)
        xs;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          escape_string buf k;
          Buffer.add_string buf (if indent > 0 then ": " else ":");
          write buf ~indent ~level:(level + 1) x)
        kvs;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 4096 in
  write buf ~indent ~level:0 v;
  Buffer.contents buf

let rec strip_keys ~keys = function
  | Obj kvs ->
      Obj
        (List.filter_map
           (fun (k, v) ->
             if List.mem k keys then None else Some (k, strip_keys ~keys v))
           kvs)
  | List xs -> List (List.map (strip_keys ~keys) xs)
  | v -> v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
