type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest decimal representation that round-trips; non-finite floats
   have no JSON encoding and collapse to null. *)
let float_repr x =
  let s = Printf.sprintf "%.15g" x in
  let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  then s
  else s ^ ".0"

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf ~indent ~level v =
  let pad n = if indent > 0 then Buffer.add_string buf (String.make (n * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_finite x then Buffer.add_string buf (float_repr x)
      else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          write buf ~indent ~level:(level + 1) x)
        xs;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          escape_string buf k;
          Buffer.add_string buf (if indent > 0 then ": " else ":");
          write buf ~indent ~level:(level + 1) x)
        kvs;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 4096 in
  write buf ~indent ~level:0 v;
  Buffer.contents buf

let rec strip_keys ~keys = function
  | Obj kvs ->
      Obj
        (List.filter_map
           (fun (k, v) ->
             if List.mem k keys then None else Some (k, strip_keys ~keys v))
           kvs)
  | List xs -> List (List.map (strip_keys ~keys) xs)
  | v -> v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* Recursive-descent parser, the inverse of [to_string].  Exists so the
   trace checker and tests can validate emitted artifacts without
   external dependencies; accepts standard JSON (with \uXXXX escapes and
   surrogate pairs), not extensions. *)

exception Parse_error of string * int

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then text.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub text !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match text.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match text.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "truncated escape";
          let c = text.[!pos] in
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              let cp = hex4 () in
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  (* High surrogate: a low surrogate must follow. *)
                  if !pos + 1 < n && text.[!pos] = '\\' && text.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      fail "invalid low surrogate";
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else fail "lone high surrogate"
                end
                else if cp >= 0xDC00 && cp <= 0xDFFF then
                  fail "lone low surrogate"
                else cp
              in
              add_utf8 buf cp
          | _ -> fail "invalid escape");
          go ()
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while
      !pos < n
      &&
      match text.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      incr pos
    done;
    let lit = String.sub text start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit
    in
    if is_float then
      match float_of_string_opt lit with
      | Some x -> Float x
      | None -> fail "invalid number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          (* Integer literal outside the native int range. *)
          match float_of_string_opt lit with
          | Some x -> Float x
          | None -> fail "invalid number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let acc = ref [] in
          let rec fields () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            acc := (k, v) :: !acc;
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                fields ()
            | '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields ();
          Obj (List.rev !acc)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else begin
          let acc = ref [] in
          let rec elems () =
            let v = parse_value () in
            acc := v :: !acc;
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems ()
            | ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elems ();
          List (List.rev !acc)
        end
    | '"' -> String (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, p) ->
      Error (Printf.sprintf "%s at offset %d" msg p)
