(* Per-experiment execution context: configuration access, derived RNG
   streams, grid resolution, and the sink pipeline.  Tables built here
   print exactly as the historical bench/exp_util.ml did (byte-identical
   default-mode output); in addition every row may carry typed values
   and engine metrics, which flow into the CSV/JSON sinks. *)

type fit = {
  what : string;
  slope : float;
  r_squared : float;
  expected : string;
  log_exponent : float;
}

type row_record = {
  cells : string list;
  values : (string * float) list;
  metrics : Engine.Metrics.snapshot option;
}

type tbl = {
  table : Stats.Table.t;
  mutable records : row_record list;  (* reversed *)
  mutable fits : fit list;  (* reversed *)
}

type t = {
  config : Config.t;
  id : string;
  claim : string;
  tags : string list;
  grid : Grid.t option;
  start_ns : int64;  (* monotonic experiment start, for the heartbeat *)
  mutable emitted : tbl list;  (* reversed *)
  mutable extras : (string * Json.t) list;  (* reversed *)
}

let make ~config ~id ~claim ~tags ~grid =
  {
    config;
    id;
    claim;
    tags;
    grid;
    start_ns = Obs.Clock.now_ns ();
    emitted = [];
    extras = [];
  }

let config t = t.config
let id t = t.id
let full t = t.config.Config.full
let domains t = t.config.Config.domains
let seed t = t.config.Config.seed
let repr t = t.config.Config.repr
let rng t ~experiment = Config.rng_for t.config ~experiment

let sizes t =
  match t.grid with
  | Some g -> Grid.sizes g ~full:(full t)
  | None -> invalid_arg (t.id ^ ": spec declares no grid")

let reps t =
  match t.grid with
  | Some g ->
      let r = Grid.reps g ~full:(full t) in
      if r <= 0 then invalid_arg (t.id ^ ": spec grid declares no reps") else r
  | None -> invalid_arg (t.id ^ ": spec declares no grid")

let scale t ~quick ~full:f = if full t then f else quick

(* Checkpoint file for one unit of work.  The experiment layer only
   hands out paths (constructing the sink needs the markov library,
   which this one deliberately does not depend on); a fresh run deletes
   any stale snapshot so only [--resume] picks one up. *)
let checkpoint_path t ~name =
  match t.config.Config.checkpoint_dir with
  | None -> None
  | Some dir ->
      Util.mkdir_p dir;
      let path =
        Filename.concat dir
          (Util.sanitize_component (t.id ^ "_" ^ name) ^ ".ckpt")
      in
      if (not t.config.Config.resume) && Sys.file_exists path then
        Sys.remove path;
      Some path

(* Full-mode sweeps run for minutes; a heartbeat on stderr shows which
   grid cell is in flight.  Interactive runs only: silent whenever
   stdout (or stderr) is redirected, so logged and golden-diffed output
   is untouched. *)
let heartbeat_wanted t =
  full t && Unix.isatty Unix.stdout && Unix.isatty Unix.stderr

let iter_cells t f =
  let all = sizes t in
  let total = List.length all in
  let hb = heartbeat_wanted t in
  List.iteri
    (fun i n ->
      let sp =
        if Obs.enabled () then
          Obs.begin_span "experiment.cell"
            ~args:[ ("id", Obs.Str t.id); ("size", Obs.Int n) ]
        else Obs.null_span
      in
      Fun.protect ~finally:(fun () -> Obs.end_span sp) (fun () -> f n);
      if hb then
        Printf.eprintf "[%s %d/%d cells, %.0fs elapsed]\n%!" t.id (i + 1) total
          (Obs.Clock.seconds_since t.start_ns))
    all

(* ---- tables ---- *)

let table (_ : t) ~title ~columns =
  { table = Stats.Table.create ~title ~columns; records = []; fits = [] }

let row ?(values = []) ?metrics tbl cells =
  Stats.Table.add_row tbl.table cells;
  tbl.records <- { cells; values; metrics } :: tbl.records

let note tbl s = Stats.Table.add_note tbl.table s

(* Attached documents (e.g. e23's conformance report) ride into the JSON
   sink next to the tables; last set wins per key. *)
let set_extra t key json =
  t.extras <- (key, json) :: List.remove_assoc key t.extras

(* Fit a power law to (size, median) points, optionally dividing out a
   polylog factor first, and attach the result to the table as a note.
   The note text is the historical bench/exp_util.ml one, verbatim; the
   fit additionally becomes a structured record for the JSON sink. *)
let note_exponent tbl ~points ~log_exponent ~expected ~what =
  match points with
  | _ :: _ :: _ ->
      let pts = Array.of_list points in
      let fit =
        if log_exponent = 0. then Stats.Regression.power_law pts
        else Stats.Regression.log_corrected_power_law ~log_exponent pts
      in
      note tbl
        (Printf.sprintf
           "fitted exponent of %s: %.2f (R^2 = %.3f); theorem predicts %s"
           what fit.Stats.Regression.slope fit.Stats.Regression.r_squared
           expected);
      tbl.fits <-
        {
          what;
          slope = fit.Stats.Regression.slope;
          r_squared = fit.Stats.Regression.r_squared;
          expected;
          log_exponent;
        }
        :: tbl.fits
  | _ -> note tbl "too few sizes for an exponent fit"

(* Print the table and hand it to the file sinks.  The CSV sink keeps
   the historical one-file-per-table layout and byte format. *)
let emit t tbl =
  Stats.Table.print tbl.table;
  (match t.config.Config.csv_dir with
  | None -> ()
  | Some dir ->
      Util.mkdir_p dir;
      let path =
        Filename.concat dir
          (Util.sanitize_component (Stats.Table.title tbl.table) ^ ".csv")
      in
      Util.write_file path (Stats.Table.to_csv tbl.table));
  t.emitted <- tbl :: t.emitted

(* ---- cell formatting (historical bench/exp_util.ml helpers) ---- *)

let cell_measurement (m : Engine.Runner.measurement) =
  if Float.is_nan m.median then "(all runs hit limit)"
  else Printf.sprintf "%.0f [%.0f, %.0f]" m.median m.q10 m.q90

let ratio_cell measured predicted =
  if Float.is_nan measured || predicted = 0. then "-"
  else Printf.sprintf "%.3f" (measured /. predicted)

let measurement_values (m : Engine.Runner.measurement) =
  [
    ("median", m.median);
    ("mean", m.mean);
    ("q10", m.q10);
    ("q90", m.q90);
    ("failures", float_of_int m.failures);
    ("runs", float_of_int (Array.length m.times + m.failures));
  ]

(* ---- JSON view ---- *)

let metrics_json (s : Engine.Metrics.snapshot) =
  Json.Obj
    [
      ("steps", Json.Int s.steps);
      ("probes", Json.Int s.probes);
      ("rng_draws", Json.Int s.rng_draws);
      ( "watermark",
        if s.watermark = min_int then Json.Null else Json.Int s.watermark );
      (* Wall-clock lives under this one key so determinism comparisons
         can strip it. *)
      ( "phase_seconds",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.phases) );
    ]

let tbl_json (tbl : tbl) =
  let fit_json (f : fit) =
    Json.Obj
      [
        ("what", Json.String f.what);
        ("slope", Json.Float f.slope);
        ("r_squared", Json.Float f.r_squared);
        ("expected", Json.String f.expected);
        ("log_exponent", Json.Float f.log_exponent);
      ]
  in
  let row_json (r : row_record) =
    Json.Obj
      ([ ("cells", Json.List (List.map (fun c -> Json.String c) r.cells)) ]
      @ (match r.values with
        | [] -> []
        | vs ->
            [
              ( "values",
                Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) vs) );
            ])
      @
      match r.metrics with
      | None -> []
      | Some s -> [ ("metrics", metrics_json s) ])
  in
  Json.Obj
    [
      ("title", Json.String (Stats.Table.title tbl.table));
      ( "columns",
        Json.List
          (List.map (fun c -> Json.String c) (Stats.Table.columns tbl.table))
      );
      ("rows", Json.List (List.rev_map row_json tbl.records));
      ( "notes",
        Json.List
          (List.map (fun n -> Json.String n) (Stats.Table.notes tbl.table)) );
      ("fits", Json.List (List.rev_map fit_json tbl.fits));
    ]

let to_json t ~wall_seconds =
  let grid =
    match t.grid with
    | None -> Json.Null
    | Some g ->
        Json.Obj
          [
            ("axis", Json.String g.Grid.axis);
            ( "sizes",
              Json.List
                (List.map (fun n -> Json.Int n) (Grid.sizes g ~full:(full t)))
            );
            ( "reps",
              let r = Grid.reps g ~full:(full t) in
              if r <= 0 then Json.Null else Json.Int r );
          ]
  in
  Json.Obj
    ([
       ("id", Json.String t.id);
      ("claim", Json.String t.claim);
      ("tags", Json.List (List.map (fun s -> Json.String s) t.tags));
      ("grid", grid);
      ("wall_seconds", Json.Float wall_seconds);
      ("tables", Json.List (List.rev_map tbl_json t.emitted));
    ]
    @
    match t.extras with
    | [] -> []
    | extras -> [ ("extra", Json.Obj (List.rev extras)) ])
