(** Run configuration for the experiment harness. *)

type t = {
  full : bool;  (** Paper-scale sweeps instead of quick sizes. *)
  seed : int;  (** Root seed. *)
  domains : int;  (** Replication fan-out width; results are identical for any value. *)
  csv_dir : string option;  (** Dump every table as CSV into this directory. *)
  json_dir : string option;  (** Write [BENCH_RESULTS.json] into this directory. *)
  trace : string option;  (** Write a Chrome/Perfetto trace of the run here. *)
  checkpoint_dir : string option;
      (** Snapshot long exact-analysis runs into this directory
          ([BENCH_CHECKPOINT]). *)
  resume : bool;
      (** Resume from existing snapshots instead of replacing them
          ([BENCH_RESUME]). *)
}

val default : t
(** Quick mode, seed [0xB0B], one domain, no file sinks, no trace. *)

val load : unit -> t
(** [default] overridden by the historical environment variables
    [BENCH_FULL], [BENCH_SEED], [BENCH_DOMAINS], [BENCH_CSV],
    [BENCH_JSON], plus [REPRO_TRACE] naming a trace output file and
    [BENCH_CHECKPOINT] / [BENCH_RESUME] controlling snapshots of long
    exact-analysis runs. *)

val mode_name : t -> string
(** ["quick"] or ["FULL"] — for result provenance. *)

val mode_description : t -> string
(** The harness banner's mode string (kept byte-identical to the
    pre-framework harness). *)

val rng : t -> Prng.Rng.t
(** The root generator. *)

val rng_for : t -> experiment:int -> Prng.Rng.t
(** An independent stream per experiment key, so adding or reordering
    experiments does not perturb the others. *)
