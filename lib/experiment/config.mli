(** Run configuration for the experiment harness. *)

type t = {
  full : bool;  (** Paper-scale sweeps instead of quick sizes. *)
  seed : int;  (** Root seed. *)
  domains : int;  (** Replication fan-out width; results are identical for any value. *)
  csv_dir : string option;  (** Dump every table as CSV into this directory. *)
  json_dir : string option;  (** Write [BENCH_RESULTS.json] into this directory. *)
  trace : string option;  (** Write a Chrome/Perfetto trace of the run here. *)
  checkpoint_dir : string option;
      (** Snapshot long exact-analysis runs into this directory
          ([BENCH_CHECKPOINT]). *)
  resume : bool;
      (** Resume from existing snapshots instead of replacing them
          ([BENCH_RESUME]). *)
  metrics_dump : bool;
      (** Print engine counter tables after instrumented measurements
          ([BENCH_METRICS]); {!Driver.run} forwards this to
          {!Engine.Metrics.set_dump}. *)
}

val default : t
(** Quick mode, seed [0xB0B], one domain, no file sinks, no trace. *)

val env_table : (string * string * string) list
(** Every environment variable the harnesses read, as
    [(name, kind, doc)] — the one documented table; {!load} reads
    exactly these. *)

val env_help : unit -> string
(** {!env_table} rendered for [--help] output. *)

val load : unit -> t
(** [default] overridden by the environment per {!env_table}. *)

val mode_name : t -> string
(** ["quick"] or ["FULL"] — for result provenance. *)

val mode_description : t -> string
(** The harness banner's mode string (kept byte-identical to the
    pre-framework harness). *)

val rng : t -> Prng.Rng.t
(** The root generator. *)

val rng_for : t -> experiment:int -> Prng.Rng.t
(** An independent stream per experiment key, so adding or reordering
    experiments does not perturb the others. *)
