(** Run configuration for the experiment harness. *)

type t = {
  full : bool;  (** Paper-scale sweeps instead of quick sizes. *)
  seed : int;  (** Root seed. *)
  domains : int;  (** Replication fan-out width; results are identical for any value. *)
  csv_dir : string option;  (** Dump every table as CSV into this directory. *)
  json_dir : string option;  (** Write [BENCH_RESULTS.json] into this directory. *)
  trace : string option;  (** Write a Chrome/Perfetto trace of the run here. *)
  checkpoint_dir : string option;
      (** Snapshot long exact-analysis runs into this directory
          ([BENCH_CHECKPOINT]). *)
  resume : bool;
      (** Resume from existing snapshots instead of replacing them
          ([BENCH_RESUME]). *)
  metrics_dump : bool;
      (** Print engine counter tables after instrumented measurements
          ([BENCH_METRICS]); {!Driver.run} forwards this to
          {!Engine.Metrics.set_dump}. *)
  repr : string;
      (** State-representation backend for the stepper hot paths
          ([BENCH_REPR] / [--repr]): one of {!repr_names}.  The
          experiment layer sits below [Core] in the dependency order, so
          the value is kept as a validated name and parsed with
          [Core.Repr.of_string] by the harness at the point of use.
          Specs that honour it are flagged {!Spec.t.uses_repr}; all
          others run the array oracle regardless. *)
}

val repr_names : string list
(** The accepted {!t.repr} spellings, matching [Core.Repr.name]:
    ["array"], ["counts"], ["counts-sampled"]. *)

val valid_repr : string -> bool

val default : t
(** Quick mode, seed [0xB0B], one domain, no file sinks, no trace. *)

val env_table : (string * string * string) list
(** Every environment variable the harnesses read, as
    [(name, kind, doc)] — the one documented table; {!load} reads
    exactly these. *)

val env_help : unit -> string
(** {!env_table} rendered for [--help] output. *)

val load : unit -> t
(** [default] overridden by the environment per {!env_table}.
    @raise Invalid_argument if [BENCH_REPR] names an unknown backend. *)

val mode_name : t -> string
(** ["quick"] or ["FULL"] — for result provenance. *)

val mode_description : t -> string
(** The harness banner's mode string (kept byte-identical to the
    pre-framework harness). *)

val rng : t -> Prng.Rng.t
(** The root generator. *)

val rng_for : t -> experiment:int -> Prng.Rng.t
(** An independent stream per experiment key, so adding or reordering
    experiments does not perturb the others. *)
