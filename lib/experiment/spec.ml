(* A declarative experiment: identity, the paper claim it checks, tags
   for selection, the quick/full grid it sweeps, and the measurement
   body.  The 22 bench experiments and the micro benchmark are all
   values of this type, registered in Bench.Registry. *)

type t = {
  id : string;  (* CLI id, lower case: "e1" .. "e22", "micro" *)
  claim : string;  (* one-line paper claim, shown in headings and --list *)
  tags : string list;
  grid : Grid.t option;
  default : bool;  (* part of the no-argument run? *)
  auto_heading : bool;  (* driver prints the "#### ID — claim" heading *)
  uses_repr : bool;  (* grid honours Config.repr (vs always the array oracle) *)
  run : Ctx.t -> unit;
}

let v ?(tags = []) ?grid ?(default = true) ?(auto_heading = true)
    ?(uses_repr = false) ~id ~claim run =
  if id = "" then invalid_arg "Spec.v: empty id";
  { id; claim; tags; grid; default; auto_heading; uses_repr; run }

let has_tag t tag = List.mem tag t.tags
