(* Filesystem helpers shared by the CSV and JSON sinks (historically a
   private copy inside bench/exp_util.ml). *)

(* Like mkdir -p; tolerates another process or domain creating the same
   component between the existence check and the mkdir. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

(* Keep only [A-Za-z0-9_-] so a table title is a safe file name. *)
let sanitize_component s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    s

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
