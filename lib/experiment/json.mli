(** Minimal JSON values and serializer for the experiment result sink.

    Kept dependency-free on purpose: the container image pins the
    toolchain, so the bench harness cannot assume yojson.  Only what the
    [BENCH_RESULTS.json] sink needs: construction, deterministic
    serialization, and key stripping for determinism comparisons. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize. [indent] spaces per level (default 2); [~indent:0] is
    compact one-line output.  Non-finite floats serialize as [null]
    (JSON has no encoding for them); finite floats use the shortest
    representation that round-trips through [float_of_string]. *)

val strip_keys : keys:string list -> t -> t
(** Recursively drop every object field whose name is in [keys].  Used
    to remove wall-clock fields before determinism comparisons. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val float_repr : float -> string
(** The serializer's representation of a finite float. *)

val of_string : string -> (t, string) result
(** Parse standard JSON text (the inverse of [to_string]).  Number
    literals without a fraction or exponent that fit in a native [int]
    parse as [Int]; everything else numeric parses as [Float].  [Error]
    carries a message with the byte offset of the failure. *)
