(* Orchestration: select specs, run them under one configuration,
   and route results to the sinks.  The stdout stream (banner, headings,
   aligned tables) is byte-identical to the pre-framework harness in
   default mode. *)

let results_file = "BENCH_RESULTS.json"

type selection_error =
  | Unknown_ids of string list
  | Unknown_tags of string list  (* no spec at all carries them *)
  | Empty_selection  (* tag filter matched nothing *)

let known_ids specs =
  String.concat " " (List.map (fun (s : Spec.t) -> s.id) specs)

let known_tags specs =
  List.sort_uniq compare (List.concat_map (fun (s : Spec.t) -> s.tags) specs)

let unknown_tags specs tags =
  let known = known_tags specs in
  List.filter (fun t -> not (List.mem t known)) tags

let selection_error_message specs = function
  | Unknown_ids ids ->
      Printf.sprintf "unknown experiment%s %s; known: %s"
        (if List.length ids > 1 then "s" else "")
        (String.concat " " (List.map (Printf.sprintf "%S") ids))
        (known_ids specs)
  | Unknown_tags tags ->
      Printf.sprintf "unknown tag%s %s; known: %s"
        (if List.length tags > 1 then "s" else "")
        (String.concat " " (List.map (Printf.sprintf "%S") tags))
        (String.concat " " (known_tags specs))
  | Empty_selection -> "no experiment matches the tag filter"

(* Resolve ids (in the order given) and apply the tag filter; [ids = []]
   selects every default spec.  Tags are validated against the union of
   every spec's tags, so a typo is reported as such rather than as an
   empty selection. *)
let select specs ~ids ~tags =
  let base, unknown =
    match ids with
    | [] -> (List.filter (fun (s : Spec.t) -> s.default) specs, [])
    | ids ->
        List.fold_left
          (fun (sel, unk) id ->
            match
              List.find_opt (fun (s : Spec.t) -> s.id = id) specs
            with
            | Some s -> (s :: sel, unk)
            | None -> (sel, id :: unk))
          ([], []) ids
        |> fun (sel, unk) -> (List.rev sel, List.rev unk)
  in
  if unknown <> [] then Error (Unknown_ids unknown)
  else
    match unknown_tags specs tags with
    | _ :: _ as bad -> Error (Unknown_tags bad)
    | [] ->
    let selected =
      match tags with
      | [] -> base
      | tags ->
          List.filter
            (fun (s : Spec.t) -> List.exists (fun t -> Spec.has_tag s t) tags)
            base
    in
    if selected = [] then Error Empty_selection else Ok selected

let print_list ?(verbose = false) ?(repr = "array") specs =
  List.iter
    (fun (s : Spec.t) ->
      Printf.printf "%-6s %s%s\n" s.id s.claim
        (match s.tags with
        | [] -> ""
        | tags -> Printf.sprintf "  [%s]" (String.concat " " tags));
      if verbose then begin
        Printf.printf "       repr: %s\n"
          (if s.uses_repr then repr else "array (fixed)");
        match s.grid with
        | None -> Printf.printf "       grid: none\n"
        | Some g ->
            let sizes full = Grid.sizes g ~full in
            let cells full = List.length (sizes full) in
            let reps_str full =
              let r = Grid.reps g ~full in
              if r <= 0 then "" else Printf.sprintf " x %d reps" r
            in
            let fmt ns = String.concat " " (List.map string_of_int ns) in
            Printf.printf "       %s: quick %d cells [%s]%s; full %d cells [%s]%s\n"
              g.Grid.axis (cells false) (fmt (sizes false)) (reps_str false)
              (cells true) (fmt (sizes true)) (reps_str true)
      end)
    specs

let print_banner config =
  Printf.printf
    "Recovery Time of Dynamic Allocation Processes - experiment harness\n";
  Printf.printf "mode: %s, seed: %d\n%!"
    (Config.mode_description config)
    config.Config.seed

(* Aggregate telemetry for the results document: every counter and
   histogram that recorded something during the run.  Populated only
   while tracing is enabled (the [tracing] field says which), and
   influenced by probe scheduling — the deterministic view strips the
   whole section. *)
let telemetry_json () =
  let hist_json (s : Obs.Hist.snapshot) =
    Json.Obj
      ([
         ("count", Json.Int s.count);
         ("sum", Json.Int s.sum);
         ("max", Json.Int s.max);
       ]
      @ List.map (fun (k, v) -> (k, Json.Float v)) (Obs.Hist.percentiles s)
      @ [
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, hi, c) ->
                 Json.Obj
                   [
                     ("lo", Json.Int lo);
                     ("hi", Json.Int hi);
                     ("count", Json.Int c);
                   ])
               s.buckets) );
      ])
  in
  Json.Obj
    [
      ("tracing", Json.Bool (Obs.enabled ()));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Obs.counters ()))
      );
      ( "histograms",
        Json.Obj (List.map (fun (k, s) -> (k, hist_json s)) (Obs.histograms ()))
      );
    ]

let results_json ~config outcomes =
  Json.Obj
    [
      ("schema", Json.String "repro.bench-results/3");
      ( "config",
        Json.Obj
          [
            ("mode", Json.String (Config.mode_name config));
            ("seed", Json.Int config.Config.seed);
            ("repr", Json.String config.Config.repr);
            ("domains", Json.Int config.Config.domains);
          ] );
      ( "experiments",
        Json.List
          (List.map
             (fun (ctx, seconds) -> Ctx.to_json ctx ~wall_seconds:seconds)
             outcomes) );
      ("telemetry", telemetry_json ());
    ]

let write_results ~dir doc =
  Util.mkdir_p dir;
  let path = Filename.concat dir results_file in
  Util.write_file path (Json.to_string doc ^ "\n");
  path

(* Run the specs in order under [config]: banner, then per spec the
   heading and body, then the JSON document (written to
   [config.json_dir] when set) and the trace file (when requested).
   Returns the document. *)
let run ?(banner = true) ~config specs =
  if config.Config.trace <> None then Obs.enable ();
  (* The engine reads no environment itself; the config's BENCH_METRICS
     row is forwarded here, once, for the whole run. *)
  Engine.Metrics.set_dump config.Config.metrics_dump;
  if banner then print_banner config;
  let outcomes =
    List.map
      (fun (s : Spec.t) ->
        if s.auto_heading then
          Printf.printf "\n#### %s — %s\n%!" (String.uppercase_ascii s.id)
            s.claim;
        let ctx =
          Ctx.make ~config ~id:s.id ~claim:s.claim ~tags:s.tags ~grid:s.grid
        in
        let sp =
          if Obs.enabled () then
            Obs.begin_span "experiment" ~args:[ ("id", Obs.Str s.id) ]
          else Obs.null_span
        in
        let t0 = Obs.Clock.now_ns () in
        let finish () =
          let seconds = Obs.Clock.seconds_since t0 in
          Obs.end_span sp;
          seconds
        in
        (match s.run ctx with
        | () -> ()
        | exception e ->
            ignore (finish ());
            raise e);
        (ctx, finish ()))
      specs
  in
  let doc = results_json ~config outcomes in
  (match config.Config.json_dir with
  | None -> ()
  | Some dir -> ignore (write_results ~dir doc));
  (match config.Config.trace with
  | None -> ()
  | Some path -> Obs.write_trace ~path);
  doc

(* Object keys under which the JSON document stores wall-clock times:
   stripping them must make two runs of the same seed comparable
   byte-for-byte regardless of domain count or machine speed. *)
let timing_keys = [ "wall_seconds"; "phase_seconds" ]

(* "domains" is execution provenance, not a result: the runner splits
   generators before fan-out, so any width yields the same records.
   "telemetry" goes too — it is empty unless tracing is on, and the
   exact layer's probe counts depend on the shared-bound schedule. *)
let deterministic_view doc =
  Json.strip_keys ~keys:("domains" :: "telemetry" :: timing_keys) doc
