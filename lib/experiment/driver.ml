(* Orchestration: select specs, run them under one configuration,
   and route results to the sinks.  The stdout stream (banner, headings,
   aligned tables) is byte-identical to the pre-framework harness in
   default mode. *)

let results_file = "BENCH_RESULTS.json"

type selection_error =
  | Unknown_ids of string list
  | Empty_selection  (* tag filter matched nothing *)

let known_ids specs =
  String.concat " " (List.map (fun (s : Spec.t) -> s.id) specs)

let selection_error_message specs = function
  | Unknown_ids ids ->
      Printf.sprintf "unknown experiment%s %s; known: %s"
        (if List.length ids > 1 then "s" else "")
        (String.concat " " (List.map (Printf.sprintf "%S") ids))
        (known_ids specs)
  | Empty_selection -> "no experiment matches the tag filter"

(* Resolve ids (in the order given) and apply the tag filter; [ids = []]
   selects every default spec. *)
let select specs ~ids ~tags =
  let base, unknown =
    match ids with
    | [] -> (List.filter (fun (s : Spec.t) -> s.default) specs, [])
    | ids ->
        List.fold_left
          (fun (sel, unk) id ->
            match
              List.find_opt (fun (s : Spec.t) -> s.id = id) specs
            with
            | Some s -> (s :: sel, unk)
            | None -> (sel, id :: unk))
          ([], []) ids
        |> fun (sel, unk) -> (List.rev sel, List.rev unk)
  in
  if unknown <> [] then Error (Unknown_ids unknown)
  else
    let selected =
      match tags with
      | [] -> base
      | tags ->
          List.filter
            (fun (s : Spec.t) -> List.exists (fun t -> Spec.has_tag s t) tags)
            base
    in
    if selected = [] then Error Empty_selection else Ok selected

let print_list specs =
  List.iter
    (fun (s : Spec.t) ->
      Printf.printf "%-6s %s%s\n" s.id s.claim
        (match s.tags with
        | [] -> ""
        | tags -> Printf.sprintf "  [%s]" (String.concat " " tags)))
    specs

let print_banner config =
  Printf.printf
    "Recovery Time of Dynamic Allocation Processes - experiment harness\n";
  Printf.printf "mode: %s, seed: %d\n%!"
    (Config.mode_description config)
    config.Config.seed

let results_json ~config outcomes =
  Json.Obj
    [
      ("schema", Json.String "repro.bench-results/1");
      ( "config",
        Json.Obj
          [
            ("mode", Json.String (Config.mode_name config));
            ("seed", Json.Int config.Config.seed);
            ("domains", Json.Int config.Config.domains);
          ] );
      ( "experiments",
        Json.List
          (List.map
             (fun (ctx, seconds) -> Ctx.to_json ctx ~wall_seconds:seconds)
             outcomes) );
    ]

let write_results ~dir doc =
  Util.mkdir_p dir;
  let path = Filename.concat dir results_file in
  Util.write_file path (Json.to_string doc ^ "\n");
  path

(* Run the specs in order under [config]: banner, then per spec the
   heading and body, then the JSON document (written to
   [config.json_dir] when set).  Returns the document. *)
let run ?(banner = true) ~config specs =
  if banner then print_banner config;
  let outcomes =
    List.map
      (fun (s : Spec.t) ->
        if s.auto_heading then
          Printf.printf "\n#### %s — %s\n%!" (String.uppercase_ascii s.id)
            s.claim;
        let ctx =
          Ctx.make ~config ~id:s.id ~claim:s.claim ~tags:s.tags ~grid:s.grid
        in
        let t0 = Unix.gettimeofday () in
        s.run ctx;
        (ctx, Unix.gettimeofday () -. t0))
      specs
  in
  let doc = results_json ~config outcomes in
  (match config.Config.json_dir with
  | None -> ()
  | Some dir -> ignore (write_results ~dir doc));
  doc

(* Object keys under which the JSON document stores wall-clock times:
   stripping them must make two runs of the same seed comparable
   byte-for-byte regardless of domain count or machine speed. *)
let timing_keys = [ "wall_seconds"; "phase_seconds" ]

(* "domains" is execution provenance, not a result: the runner splits
   generators before fan-out, so any width yields the same records. *)
let deterministic_view doc =
  Json.strip_keys ~keys:("domains" :: timing_keys) doc
