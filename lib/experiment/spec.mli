(** A declarative experiment spec.

    Identity, the paper claim it checks, selection tags, the quick/full
    grid it sweeps, and the measurement body wired through {!Ctx}. *)

type t = private {
  id : string;  (** CLI id, lower case: ["e1"] .. ["e22"], ["micro"]. *)
  claim : string;  (** One-line paper claim, shown in headings and [--list]. *)
  tags : string list;
  grid : Grid.t option;
  default : bool;  (** Included in the no-argument run. *)
  auto_heading : bool;  (** Driver prints the ["#### ID — claim"] heading. *)
  uses_repr : bool;
      (** Whether the spec's grid honours {!Config.t.repr} — selectable
          state backends for its stepper hot paths.  Specs without the
          flag always run the array oracle; [--list -v] reports which. *)
  run : Ctx.t -> unit;
}

val v :
  ?tags:string list ->
  ?grid:Grid.t ->
  ?default:bool ->
  ?auto_heading:bool ->
  ?uses_repr:bool ->
  id:string ->
  claim:string ->
  (Ctx.t -> unit) ->
  t
(** [default] and [auto_heading] default to [true]; [uses_repr] to
    [false].
    @raise Invalid_argument on an empty id. *)

val has_tag : t -> string -> bool
