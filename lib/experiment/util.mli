(** Filesystem helpers shared by the CSV and JSON sinks. *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents, like [mkdir -p].  Safe
    against a concurrent process or domain creating the same component
    (the lost race is detected and ignored).
    @raise Sys_error if a path component exists but is not a directory. *)

val sanitize_component : string -> string
(** Replace every character outside [A-Za-z0-9_-] with ['_'], making an
    arbitrary table title usable as a file-name component. *)

val write_file : string -> string -> unit
(** [write_file path contents] truncates/creates [path] with [contents],
    closing the channel even on exceptions. *)
