(** The quick/full sweep axis of an experiment spec. *)

type t = {
  axis : string;  (** Display name of the swept quantity, e.g. ["n=m"]. *)
  quick : int list;
  full : int list;
  reps_quick : int;  (** [0] when the experiment has no per-cell reps. *)
  reps_full : int;
}

val v :
  ?reps:int * int -> axis:string -> quick:int list -> full:int list -> unit -> t
(** [reps] is [(quick, full)]; omitted means the experiment has no
    per-cell replication count. *)

val sizes : t -> full:bool -> int list
val reps : t -> full:bool -> int
