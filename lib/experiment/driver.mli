(** Orchestration: selection, execution, sinks.

    The stdout stream (banner, headings, aligned tables) is
    byte-identical to the pre-framework harness in default mode; the
    JSON document adds the machine-readable view. *)

val results_file : string
(** ["BENCH_RESULTS.json"]. *)

type selection_error =
  | Unknown_ids of string list
  | Unknown_tags of string list
  | Empty_selection

val selection_error_message : Spec.t list -> selection_error -> string

val unknown_tags : Spec.t list -> string list -> string list
(** The requested tags carried by no spec at all — callers that filter
    outside {!select} (e.g. a [--list] path) use this to reject typos
    with the same error the selection would give. *)

val select :
  Spec.t list ->
  ids:string list ->
  tags:string list ->
  (Spec.t list, selection_error) result
(** Resolve [ids] (in the order given; [[]] means every spec with
    [default = true]) and then keep only specs carrying at least one of
    [tags] ([[]] keeps all).  Tags absent from every spec are an
    [Unknown_tags] error; valid tags that merely match nothing in the
    id-selected base are [Empty_selection]. *)

val print_list : ?verbose:bool -> ?repr:string -> Spec.t list -> unit
(** One line per spec: id, claim, tags.  With [~verbose:true], extra
    lines per spec show which representation backend the grid will use —
    [repr] (default ["array"]) for specs with {!Spec.t.uses_repr},
    ["array (fixed)"] otherwise — and the grid axis with the quick and
    full cell counts, sizes and replication counts. *)

val print_banner : Config.t -> unit

val run : ?banner:bool -> config:Config.t -> Spec.t list -> Json.t
(** Run the specs in order: banner (unless [~banner:false]), per-spec
    heading and body, then the JSON results document — returned, and
    also written to [config.json_dir]/[results_file] when that is set.
    When [config.trace] is set, tracing ({!Obs.enable}) is switched on
    before the first spec and the merged trace is written there after
    the last. *)

val results_json : config:Config.t -> (Ctx.t * float) list -> Json.t
val write_results : dir:string -> Json.t -> string
(** Returns the path written. *)

val timing_keys : string list
(** JSON object keys holding wall-clock times. *)

val deterministic_view : Json.t -> Json.t
(** The document with {!timing_keys} and the ["domains"] provenance
    field stripped: two runs with the same seed must agree on this view
    regardless of domain count or machine speed. *)
