(* Run configuration for the experiment harness.  Environment variables
   give the historical defaults; the CLI flags of [bench/main.exe] and
   [repro bench] override them.  Every variable any harness reads lives
   in [env_table] below — one documented table instead of scattered
   [Sys.getenv_opt] calls. *)

type t = {
  full : bool;  (** Paper-scale sweeps (minutes to hours) instead of quick. *)
  seed : int;  (** Root seed; every experiment derives independent streams. *)
  domains : int;  (** Replication fan-out width (results are identical for any value). *)
  csv_dir : string option;  (** Dump every table as CSV into this directory. *)
  json_dir : string option;  (** Write [BENCH_RESULTS.json] into this directory. *)
  trace : string option;  (** Write a Chrome/Perfetto trace of the run here. *)
  checkpoint_dir : string option;
      (** Snapshot long exact-analysis runs into this directory. *)
  resume : bool;  (** Resume from existing snapshots instead of replacing them. *)
  metrics_dump : bool;
      (** Print the engine counter tables (steps, probes, draws,
          phases) after instrumented measurements. *)
  repr : string;
      (** State-representation backend for the stepper hot paths.  Kept
          as a validated {e name} — the experiment layer sits below
          [Core] in the dependency order, so the harnesses parse it with
          [Core.Repr.of_string] at the point of use. *)
}

(* Must match the [Core.Repr.name] spellings; validated here so a typo
   in BENCH_REPR/--repr fails loudly instead of silently running the
   default backend. *)
let repr_names = [ "array"; "counts"; "counts-sampled" ]

let valid_repr name = List.mem name repr_names

let default =
  {
    full = false;
    seed = 0xB0B;
    domains = 1;
    csv_dir = None;
    json_dir = None;
    trace = None;
    checkpoint_dir = None;
    resume = false;
    metrics_dump = false;
    repr = "array";
  }

(* The single source of truth for the harness environment.  [load]
   reads exactly these variables; [env_help] renders this table for
   --help output and the docs quote it. *)
let env_table =
  [
    ("BENCH_FULL", "flag", "paper-scale sweeps instead of quick sizes");
    ("BENCH_SEED", "int", "root seed (default 0xB0B)");
    ("BENCH_DOMAINS", "int >= 1", "replication fan-out width (results identical for any value)");
    ("BENCH_CSV", "dir", "write every table as CSV into DIR");
    ("BENCH_JSON", "dir", "write BENCH_RESULTS.json into DIR");
    ("BENCH_METRICS", "flag", "dump engine counter tables (steps, probes, draws, phases)");
    ("BENCH_CHECKPOINT", "dir", "snapshot long exact-analysis runs into DIR");
    ("BENCH_RESUME", "flag", "resume from snapshots left in BENCH_CHECKPOINT");
    ("BENCH_REPR", "name", "stepper state backend: array (default), counts, counts-sampled");
    ("REPRO_TRACE", "file", "write a Chrome/Perfetto trace of the run to FILE");
  ]

let env_help () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "environment variables (flags override them):\n";
  List.iter
    (fun (name, kind, doc) ->
      Buffer.add_string buf (Printf.sprintf "  %-17s %-9s %s\n" name kind doc))
    env_table;
  Buffer.contents buf

let env_flag name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let env_int name ~min ~default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with Some v when v >= min -> v | _ -> default)
  | None -> default

let env_repr name ~default =
  match Sys.getenv_opt name with
  | Some s when valid_repr s -> s
  | Some s ->
      invalid_arg
        (Printf.sprintf "%s: unknown representation %S (expected %s)" name s
           (String.concat " | " repr_names))
  | None -> default

let load () =
  {
    full = env_flag "BENCH_FULL";
    seed = env_int "BENCH_SEED" ~min:min_int ~default:0xB0B;
    domains = env_int "BENCH_DOMAINS" ~min:1 ~default:1;
    csv_dir = Sys.getenv_opt "BENCH_CSV";
    json_dir = Sys.getenv_opt "BENCH_JSON";
    trace = Sys.getenv_opt "REPRO_TRACE";
    checkpoint_dir = Sys.getenv_opt "BENCH_CHECKPOINT";
    resume = env_flag "BENCH_RESUME";
    metrics_dump = env_flag "BENCH_METRICS";
    repr = env_repr "BENCH_REPR" ~default:"array";
  }

let mode_name cfg = if cfg.full then "FULL" else "quick"

(* The harness banner string predates the framework; keep it verbatim. *)
let mode_description cfg =
  if cfg.full then "FULL" else "quick (set BENCH_FULL=1 for paper-scale)"

let rng cfg = Prng.Rng.create ~seed:cfg.seed ()

(* Every experiment derives an independent stream so that adding or
   reordering experiments does not perturb the others. *)
let rng_for cfg ~experiment =
  let g = Prng.Rng.create ~seed:(cfg.seed + (0x9E37 * experiment)) () in
  ignore (Prng.Rng.bits64 g);
  g
