(* Run configuration for the experiment harness.  Environment variables
   give the historical defaults (BENCH_FULL=1 enlarges every sweep to
   paper scale, BENCH_SEED overrides the root seed, BENCH_DOMAINS the
   fan-out width, BENCH_CSV / BENCH_JSON name sink directories); the CLI
   flags of [bench/main.exe] and [repro bench] override them. *)

type t = {
  full : bool;  (** Paper-scale sweeps (minutes to hours) instead of quick. *)
  seed : int;  (** Root seed; every experiment derives independent streams. *)
  domains : int;  (** Replication fan-out width (results are identical for any value). *)
  csv_dir : string option;  (** Dump every table as CSV into this directory. *)
  json_dir : string option;  (** Write [BENCH_RESULTS.json] into this directory. *)
  trace : string option;  (** Write a Chrome/Perfetto trace of the run here. *)
  checkpoint_dir : string option;
      (** Snapshot long exact-analysis runs into this directory. *)
  resume : bool;  (** Resume from existing snapshots instead of replacing them. *)
}

let default =
  {
    full = false;
    seed = 0xB0B;
    domains = 1;
    csv_dir = None;
    json_dir = None;
    trace = None;
    checkpoint_dir = None;
    resume = false;
  }

let env_flag name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let load () =
  let seed =
    match Sys.getenv_opt "BENCH_SEED" with
    | Some s -> ( match int_of_string_opt s with Some v -> v | None -> 0xB0B)
    | None -> 0xB0B
  in
  let domains =
    match Sys.getenv_opt "BENCH_DOMAINS" with
    | Some s -> (
        match int_of_string_opt s with Some v when v >= 1 -> v | _ -> 1)
    | None -> 1
  in
  {
    full = env_flag "BENCH_FULL";
    seed;
    domains;
    csv_dir = Sys.getenv_opt "BENCH_CSV";
    json_dir = Sys.getenv_opt "BENCH_JSON";
    trace = Sys.getenv_opt "REPRO_TRACE";
    checkpoint_dir = Sys.getenv_opt "BENCH_CHECKPOINT";
    resume = env_flag "BENCH_RESUME";
  }

let mode_name cfg = if cfg.full then "FULL" else "quick"

(* The harness banner string predates the framework; keep it verbatim. *)
let mode_description cfg =
  if cfg.full then "FULL" else "quick (set BENCH_FULL=1 for paper-scale)"

let rng cfg = Prng.Rng.create ~seed:cfg.seed ()

(* Every experiment derives an independent stream so that adding or
   reordering experiments does not perturb the others. *)
let rng_for cfg ~experiment =
  let g = Prng.Rng.create ~seed:(cfg.seed + (0x9E37 * experiment)) () in
  ignore (Prng.Rng.bits64 g);
  g
