(** Per-experiment execution context.

    An experiment's [run] function receives one of these and uses it for
    everything the old hand-rolled modules duplicated: quick/full grid
    resolution, per-experiment RNG streams, table construction, exponent
    fits, and output.  Tables print byte-identically to the historical
    [bench/exp_util.ml] pipeline; rows may additionally carry typed
    values and engine metrics, which flow into the JSON sink
    ([BENCH_RESULTS.json]) and make the run machine-readable. *)

type t

type tbl
(** A result table being assembled: the aligned text table plus the
    structured row records behind it. *)

val make :
  config:Config.t ->
  id:string ->
  claim:string ->
  tags:string list ->
  grid:Grid.t option ->
  t
(** Normally called by {!Driver}, not by experiments. *)

(** {1 Configuration access} *)

val config : t -> Config.t
val id : t -> string
val full : t -> bool
val domains : t -> int
val seed : t -> int

val repr : t -> string
(** The configured state-backend name ({!Config.t.repr}); specs flagged
    [uses_repr] parse it with [Core.Repr.of_string] and thread the
    result into their steppers. *)

val rng : t -> experiment:int -> Prng.Rng.t
(** An independent stream per sub-experiment key (see
    {!Config.rng_for}). *)

val sizes : t -> int list
(** The spec grid's sweep sizes in the current mode.
    @raise Invalid_argument if the spec declares no grid. *)

val reps : t -> int
(** The spec grid's replication count in the current mode.
    @raise Invalid_argument if the spec grid declares none. *)

val scale : t -> quick:'a -> full:'a -> 'a
(** Pick a mode-dependent parameter that is not part of the grid. *)

val checkpoint_path : t -> name:string -> string option
(** A snapshot file for one unit of work (e.g. one grid cell), under the
    configured checkpoint directory — [None] when checkpointing is off.
    Unless the run is resuming ({!Config.t.resume}), any stale file from
    a previous run is deleted first, so a snapshot is only ever read by
    an explicit [--resume]. *)

val iter_cells : t -> (int -> unit) -> unit
(** Run the body once per grid size, in order — the instrumented
    equivalent of [List.iter body (sizes t)].  Each cell runs under an
    ["experiment.cell"] trace span, and full-mode interactive runs (both
    stdout and stderr on a TTY) get a per-cell progress heartbeat on
    stderr, e.g. [[e07 3/12 cells, 42s elapsed]].  Redirected output —
    including the golden-diffed default mode — sees no extra bytes.
    @raise Invalid_argument if the spec declares no grid. *)

(** {1 Result tables} *)

val table : t -> title:string -> columns:string list -> tbl

val row :
  ?values:(string * float) list ->
  ?metrics:Engine.Metrics.snapshot ->
  tbl ->
  string list ->
  unit
(** Append a display row; [values] are the typed numbers behind the
    formatted cells and [metrics] the engine counters of the cell's
    measurement, both surfaced only in the JSON sink.
    @raise Invalid_argument if the cell arity differs from [columns]. *)

val note : tbl -> string -> unit

val note_exponent :
  tbl ->
  points:(float * float) list ->
  log_exponent:float ->
  expected:string ->
  what:string ->
  unit
(** Fit a power law to (size, median) points, optionally dividing out a
    [ln^log_exponent] factor first; attaches the historical note text
    and records the fit for the JSON sink. *)

val emit : t -> tbl -> unit
(** Print the table and hand it to the configured file sinks.  Call
    exactly once per table, after its last row/note. *)

val set_extra : t -> string -> Json.t -> unit
(** Attach a JSON document to the experiment's entry in the results
    sink, under ["extra"][key] — e.g. e23 attaches its full conformance
    report.  Setting a key again replaces it.  Stdout is untouched. *)

(** {1 Cell formatting helpers} *)

val cell_measurement : Engine.Runner.measurement -> string
(** ["median [q10, q90]"], or ["(all runs hit limit)"]. *)

val ratio_cell : float -> float -> string
(** [measured /. predicted] to three decimals, ["-"] when undefined. *)

val measurement_values : Engine.Runner.measurement -> (string * float) list
(** The typed view of a measurement for {!row}'s [values]: median, mean,
    q10, q90, failures, runs. *)

(** {1 JSON view (used by {!Driver})} *)

val metrics_json : Engine.Metrics.snapshot -> Json.t
val to_json : t -> wall_seconds:float -> Json.t
