(* The quick/full sweep axis of an experiment spec: the sizes iterated
   over and the replication count, in both modes. *)

type t = {
  axis : string;  (* display name of the swept quantity, e.g. "n=m" *)
  quick : int list;
  full : int list;
  reps_quick : int;  (* 0 when the experiment has no per-cell reps *)
  reps_full : int;
}

let v ?reps ~axis ~quick ~full () =
  let reps_quick, reps_full = match reps with Some r -> r | None -> (0, 0) in
  { axis; quick; full; reps_quick; reps_full }

let sizes t ~full = if full then t.full else t.quick
let reps t ~full = if full then t.reps_full else t.reps_quick
