let check_lengths what freq expected =
  if Array.length expected <> Stats.Freq.size freq then
    invalid_arg (Printf.sprintf "Estimators.%s: length mismatch" what)

let plugin_tv freq ~expected = Stats.Freq.tv_against freq expected

(* Under the null, cell i's empirical frequency is asymptotically normal
   with variance q(1-q)/N; the mean absolute deviation of that normal is
   √(2 q(1-q)/(π N)).  Summing halves gives the expected plug-in TV. *)
let tv_bias ~expected ~total =
  if total <= 0 then invalid_arg "Estimators.tv_bias: no observations";
  let n = float_of_int total in
  let acc = ref 0. in
  Array.iter
    (fun q ->
      if q > 0. then
        acc := !acc +. sqrt (2. *. q *. (1. -. q) /. (Float.pi *. n)))
    expected;
  0.5 *. !acc

let bias_corrected_tv freq ~expected =
  check_lengths "bias_corrected_tv" freq expected;
  let tv = plugin_tv freq ~expected in
  Float.max 0. (tv -. tv_bias ~expected ~total:(Stats.Freq.total freq))

type gof = {
  statistic : float;
  df : int;
  p_value : float;
  cells : int;
  pooled : int;
  forbidden : int;
}

(* Deterministic pooling: positive-expectation cells sorted by rising
   expected count (index as tie-break) are greedily grouped until each
   group's expectation reaches the threshold; a short final group is
   folded into its predecessor. *)
let pooled_cells ~min_expected freq ~expected =
  let total = float_of_int (Stats.Freq.total freq) in
  let cells = ref [] in
  Array.iteri
    (fun i q ->
      if q > 0. then
        cells := (q *. total, float_of_int (Stats.Freq.get freq i), i) :: !cells)
    expected;
  let cells =
    List.sort
      (fun (ea, _, ia) (eb, _, ib) ->
        match Float.compare ea eb with 0 -> compare ia ib | c -> c)
      !cells
  in
  let groups = ref [] in
  let cur_e = ref 0. and cur_o = ref 0. and cur_n = ref 0 in
  List.iter
    (fun (e, o, _) ->
      cur_e := !cur_e +. e;
      cur_o := !cur_o +. o;
      incr cur_n;
      if !cur_e >= min_expected then begin
        groups := (!cur_e, !cur_o) :: !groups;
        cur_e := 0.;
        cur_o := 0.;
        cur_n := 0
      end)
    cells;
  (if !cur_n > 0 then
     match !groups with
     | (e, o) :: rest -> groups := (e +. !cur_e, o +. !cur_o) :: rest
     | [] -> groups := [ (!cur_e, !cur_o) ]);
  (List.rev !groups, List.length cells)

let forbidden_mass freq ~expected =
  let acc = ref 0 in
  Array.iteri
    (fun i q -> if q <= 0. then acc := !acc + Stats.Freq.get freq i)
    expected;
  !acc

let gof_of_statistic ~statistic ~groups ~cells ~forbidden =
  let df = List.length groups - 1 in
  let p_value =
    if forbidden > 0 then 0.
    else if df <= 0 then 1.
    else Stats.Special.chi_square_sf ~df statistic
  in
  let statistic = if forbidden > 0 then infinity else statistic in
  { statistic; df; p_value; cells; pooled = List.length groups; forbidden }

let g_test ?(min_expected = 5.) freq ~expected =
  check_lengths "g_test" freq expected;
  let groups, cells = pooled_cells ~min_expected freq ~expected in
  let statistic =
    2.
    *. List.fold_left
         (fun acc (e, o) -> if o > 0. then acc +. (o *. log (o /. e)) else acc)
         0. groups
  in
  let forbidden = forbidden_mass freq ~expected in
  gof_of_statistic ~statistic ~groups ~cells ~forbidden

let chi_square_test ?(min_expected = 5.) freq ~expected =
  check_lengths "chi_square_test" freq expected;
  let groups, cells = pooled_cells ~min_expected freq ~expected in
  let statistic =
    List.fold_left
      (fun acc (e, o) ->
        let d = o -. e in
        acc +. (d *. d /. e))
      0. groups
  in
  let forbidden = forbidden_mass freq ~expected in
  gof_of_statistic ~statistic ~groups ~cells ~forbidden

let standardized_residuals freq ~expected =
  check_lengths "standardized_residuals" freq expected;
  let n = float_of_int (Stats.Freq.total freq) in
  Array.mapi
    (fun i q ->
      let o = float_of_int (Stats.Freq.get freq i) in
      let variance = n *. q *. (1. -. q) in
      if variance > 0. then (o -. (n *. q)) /. sqrt variance
      else if o = n *. q then 0.
      else infinity)
    expected

let worst_residual freq ~expected =
  let rs = standardized_residuals freq ~expected in
  let best = ref 0 in
  Array.iteri
    (fun i r -> if Float.abs r > Float.abs rs.(!best) then best := i)
    rs;
  (!best, rs.(!best))

let tv_ci ?(replicates = 200) ?(level = 0.95) ~rng freq ~expected =
  check_lengths "tv_ci" freq expected;
  let n = Stats.Freq.size freq in
  let total = Stats.Freq.total freq in
  if total = 0 then invalid_arg "Estimators.tv_ci: no observations";
  (* Expand the counts into a sample of cell indices so the generic
     percentile bootstrap applies unchanged. *)
  let xs = Array.make total 0. in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    for _ = 1 to Stats.Freq.get freq i do
      xs.(!pos) <- float_of_int i;
      incr pos
    done
  done;
  let counts = Array.make n 0 in
  let stat sample =
    Array.fill counts 0 n 0;
    Array.iter
      (fun x ->
        let i = int_of_float x in
        counts.(i) <- counts.(i) + 1)
      sample;
    let inv = 1. /. float_of_int (Array.length sample) in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. Float.abs ((float_of_int counts.(i) *. inv) -. expected.(i))
    done;
    0.5 *. !acc
  in
  Stats.Bootstrap.ci ~replicates ~level ~rng ~stat xs
