module Json = Experiment.Json

let schema = "repro.validate-report/1"

let float_or_null v = if Float.is_nan v then Json.Null else Json.Float v

let check_json (c : Conformance.check) =
  Json.Obj
    ([
       ("check", Json.String c.Conformance.check);
       ("verdict", Json.String (Sequential.verdict_name c.Conformance.verdict));
       ("samples", Json.Int c.Conformance.samples);
       ("detail", Json.String c.Conformance.detail);
       ( "stats",
         Json.Obj
           (List.map (fun (k, v) -> (k, float_or_null v)) c.Conformance.stats)
       );
     ]
    @
    match c.Conformance.outcome with
    | None -> []
    | Some o ->
        [
          ( "sequential",
            Json.Obj
              [
                ("looks", Json.Int o.Sequential.looks);
                ("escapes", Json.Int o.Sequential.escapes);
                ("alpha_adjusted", Json.Float o.Sequential.alpha_adjusted);
                ("df", Json.Int o.Sequential.df);
              ] );
        ])

let subject_json (s : Conformance.subject_report) =
  Json.Obj
    [
      ("subject", Json.String s.Conformance.subject);
      ("family", Json.String s.Conformance.family);
      ("states", Json.Int s.Conformance.state_count);
      ("verdict", Json.String (Sequential.verdict_name s.Conformance.verdict));
      ("samples", Json.Int s.Conformance.samples);
      ("checks", Json.List (List.map check_json s.Conformance.checks));
    ]

let to_json (r : Conformance.report) =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("alpha", Json.Float r.Conformance.alpha);
      ("seed", Json.Int r.Conformance.seed);
      ("mode", Json.String (if r.Conformance.quick then "quick" else "full"));
      ("verdict", Json.String (Sequential.verdict_name r.Conformance.verdict));
      ("subjects", Json.List (List.map subject_json r.Conformance.subjects));
    ]

let print (r : Conformance.report) =
  Printf.printf "conformance run: %d subjects, alpha = %g, %s mode\n"
    (List.length r.Conformance.subjects)
    r.Conformance.alpha
    (if r.Conformance.quick then "quick" else "full");
  List.iter
    (fun (s : Conformance.subject_report) ->
      Printf.printf "\n%s (%s, %d states)\n" s.Conformance.subject
        s.Conformance.family s.Conformance.state_count;
      List.iter
        (fun (c : Conformance.check) ->
          Printf.printf "  %-14s %s\n" c.Conformance.check
            c.Conformance.detail)
        s.Conformance.checks;
      Printf.printf "  => %s (%d samples)\n"
        (Sequential.verdict_name s.Conformance.verdict)
        s.Conformance.samples)
    r.Conformance.subjects;
  Printf.printf "\noverall: %s\n"
    (Sequential.verdict_name r.Conformance.verdict)

let exit_code (r : Conformance.report) =
  match r.Conformance.verdict with Sequential.Fail -> 1 | _ -> 0
