(** Conformance subjects: a simulator paired with its exact chain.

    A subject packages everything one conformance run needs about a
    process: the enumerated state space, the exact one-step law on it,
    a factory for fresh independent simulators observing states in that
    space, a (typically adversarial) start state, and — where the paper
    states one — the closed-form mixing/recovery-time bound its measured
    TV decay is checked against.  The state type is existentially packed
    so heterogeneous catalogs (load vectors, class-count vectors,
    per-bin arrays) run through one harness. *)

type 'state spec = {
  name : string;
  family : string;
  (** ["balls"], ["rbb"], ["edge"], ["open"] or ["relocation"]. *)
  states : 'state array;
  transitions : 'state -> ('state * float) list;
  fresh_sim : unit -> 'state Engine.Sim.t;
  (** Each call returns an independent simulator (fresh buffers), safe
      to use concurrently with other fresh instances. *)
  start : 'state;
  bound : (string * float) option;
  (** Paper bound on τ(¼) from [start], as (label, steps). *)
  block_rows : int option;
  (** Opt-in blocked-chain granularity: when set, the conformance run
      builds the subject's exact chain with this many rows per
      {!Markov.Blocked_csr} block (exercising the multi-block kernels);
      when [None] the builder's default applies. *)
}

type t = P : 'state spec -> t

val name : t -> string
val family : t -> string
val state_count : t -> int

(** {1 Constructors} *)

val balls :
  ?block_rows:int ->
  ?repr:Core.Repr.t ->
  Core.Scenario.t -> Core.Scheduling_rule.t -> n:int -> m:int -> t
(** A closed dynamic allocation process over Ω_m (state space
    {!Markov.Partition_space.enumerate}), starting from all-in-one-bin.
    Scenario A carries the Theorem 1 bound; scenario B with an ABKU rule
    the Claim 5.3 bound.  [repr] (default {!Core.Repr.Array_backed})
    selects the simulator's state backend through
    {!Core.Dynamic_process.sim_repr}; the exact law is the same for
    every backend, so a non-array subject is precisely the
    equality-in-law check the non-draw-order-preserving backends are
    held to. *)

val rbb : ?block_rows:int -> ?repr:Core.Repr.t -> Rbb.rule -> n:int -> m:int -> t
(** A round-synchronous repeated balls-into-bins process over the same
    Ω_m (rounds conserve balls), starting from all-in-one-bin, with the
    Los–Sauerwald Θ(n log n)-style mixing bound.  The subject's unit
    transition is one full {e round}; [repr] selects the round
    stepper's backend through {!Rbb.sim_repr}. *)

val edge : ?block_rows:int -> n:int -> unit -> t
(** The Section 6 edge-orientation class chain, state space reachable
    from the adversarial state, bound Corollary 6.4. *)

val open_system : n:int -> capacity:int -> t
(** A capacity-bounded open system (ABKU[2] insertions at probability
    ½), state space reachable from empty, starting full-in-one-bin. *)

val relocation :
  Core.Scenario.t -> d:int -> relocations:int -> n:int -> m:int -> t
(** A relocation process on per-bin load arrays, state space reachable
    from all-in-bin-0. *)

(** {1 Catalogs} *)

val quick_catalog : unit -> t list
(** Cheap subjects for CI and [--quick] runs: two balls-into-bins, one
    edge orientation and two round-synchronous RBB processes. *)

val full_catalog : unit -> t list
(** The full conformance matrix: Id/Ib × ABKU/ADAP closed processes,
    the edge class chain, a capacity-bounded open system, a relocation
    process and the RBB round family — 14 subjects on small (n, m). *)
