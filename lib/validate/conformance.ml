type check = {
  check : string;
  verdict : Sequential.verdict;
  samples : int;
  detail : string;
  stats : (string * float) list;
  outcome : Sequential.outcome option;
}

type subject_report = {
  subject : string;
  family : string;
  state_count : int;
  checks : check list;
  verdict : Sequential.verdict;
  samples : int;
}

type report = {
  alpha : float;
  seed : int;
  quick : bool;
  subjects : subject_report list;
  verdict : Sequential.verdict;
}

let span_args args = if Obs.enabled () then args () else []

(* Start states for the one-step checks: the subject's own start plus a
   deterministic spread across the enumeration. *)
let one_step_start_indices ~quick ~size start_idx =
  let wanted =
    if quick then [ start_idx; size / 2 ]
    else [ start_idx; 0; size - 1; size / 2 ]
  in
  List.fold_left
    (fun acc i -> if List.mem i acc then acc else acc @ [ i ])
    [] wanted

let sequential_stats (o : Sequential.outcome) =
  [
    ("p_value", o.Sequential.p_value);
    ("statistic", o.Sequential.statistic);
    ("df", float_of_int o.Sequential.df);
    ("tv_plugin", o.Sequential.tv_plugin);
    ("tv_corrected", o.Sequential.tv_corrected);
    ("ci_lo", fst o.Sequential.ci);
    ("ci_hi", snd o.Sequential.ci);
    ("escapes", float_of_int o.Sequential.escapes);
    ("looks", float_of_int o.Sequential.looks);
  ]

let check_of_outcome ~name ~what (o : Sequential.outcome) =
  let detail =
    Printf.sprintf
      "%s: %s after %d samples (%d looks): p = %.4f, corrected TV = %.4f \
       [%.4f, %.4f]%s"
      what
      (Sequential.verdict_name o.Sequential.verdict)
      o.Sequential.samples o.Sequential.looks o.Sequential.p_value
      o.Sequential.tv_corrected (fst o.Sequential.ci) (snd o.Sequential.ci)
      (if o.Sequential.escapes > 0 then
         Printf.sprintf ", %d escapes" o.Sequential.escapes
       else "")
  in
  {
    check = name;
    verdict = o.Sequential.verdict;
    samples = o.Sequential.samples;
    detail;
    stats = sequential_stats o;
    outcome = Some o;
  }

let one_step_check ~domains ~cfg ~rng space (s : _ Subject.spec) idx =
  Obs.with_span "validate.check"
    ~args:(span_args (fun () -> [ ("check", Obs.Str "one-step") ]))
    (fun () ->
      let x = Space.state space idx in
      let expected = Space.dense_law space (s.Subject.transitions x) in
      let sample k =
        Space.collect ~domains ~rng ~reps:k space ~sample:(fun g ->
            let sim = s.Subject.fresh_sim () in
            Engine.Sim.reset sim x;
            Engine.Sim.step sim g;
            [| Engine.Sim.observe sim |])
      in
      let o = Sequential.test cfg ~rng ~expected ~sample in
      check_of_outcome
        ~name:(Printf.sprintf "one-step x%d" idx)
        ~what:
          (Printf.sprintf "one-step law from state %d vs exact row" idx)
        o)

let stationary_check ~domains ~cfg ~rng space (s : _ Subject.spec) ~chain =
  Obs.with_span "validate.check"
    ~args:(span_args (fun () -> [ ("check", Obs.Str "stationary") ]))
    (fun () ->
      let pi = Markov.Exact.stationary chain in
      (* Thinning at the exact τ(0.01) makes consecutive observations
         nearly independent, so the iid goodness-of-fit machinery
         applies up to a 1% TV slack per observation. *)
      let thin = max 1 (Markov.Exact.mixing_time ~eps:0.01 ~domains chain) in
      let per_rep = 4 in
      let sample k =
        let reps = max 1 ((k + per_rep - 1) / per_rep) in
        Space.collect ~domains ~rng ~reps space ~sample:(fun g ->
            let sim = s.Subject.fresh_sim () in
            Engine.Sim.reset sim s.Subject.start;
            Array.init per_rep (fun _ ->
                Engine.Sim.iterate sim g thin;
                Engine.Sim.observe sim))
      in
      let o = Sequential.test cfg ~rng ~expected:pi ~sample in
      let c =
        check_of_outcome ~name:"stationary"
          ~what:
            (Printf.sprintf "occupancy (thinned every %d steps) vs exact pi"
               thin)
          o
      in
      { c with stats = ("thin", float_of_int thin) :: c.stats })

let geometric_times t_bound =
  let rec up acc t = if t >= t_bound then List.rev acc else up (t :: acc) (2 * t) in
  up [] 1 @ [ t_bound ]

let decay_check ~domains ~quick ~rng space (s : _ Subject.spec) ~chain
    (label, bound) =
  Obs.with_span "validate.check"
    ~args:(span_args (fun () -> [ ("check", Obs.Str "tv-decay") ]))
    (fun () ->
      let pi = Markov.Exact.stationary chain in
      let t_bound = max 1 (int_of_float (ceil bound)) in
      let reps = if quick then 400 else 1200 in
      let measure t =
        Space.collect ~domains ~rng ~reps space ~sample:(fun g ->
            let sim = s.Subject.fresh_sim () in
            Engine.Sim.reset sim s.Subject.start;
            Engine.Sim.iterate sim g t;
            [| Engine.Sim.observe sim |])
      in
      let curve =
        List.map
          (fun t ->
            let c = measure t in
            (t, c, Estimators.bias_corrected_tv c.Space.freq ~expected:pi))
          (geometric_times t_bound)
      in
      let escapes =
        List.fold_left (fun acc (_, c, _) -> acc + c.Space.escapes) 0 curve
      in
      let _, at_bound, tv_at_bound =
        List.nth curve (List.length curve - 1)
      in
      let lo, hi = Estimators.tv_ci ~rng at_bound.Space.freq ~expected:pi in
      let bias =
        Estimators.tv_bias ~expected:pi
          ~total:(Stats.Freq.total at_bound.Space.freq)
      in
      let crossing =
        List.find_map (fun (t, _, tv) -> if tv <= 0.25 then Some t else None)
          curve
      in
      let verdict =
        if escapes > 0 then Sequential.Fail
        else if lo -. bias > 0.25 then Sequential.Fail
        else if tv_at_bound <= 0.25 then Sequential.Pass
        else Sequential.Inconclusive
      in
      let samples = reps * List.length curve in
      let detail =
        Printf.sprintf
          "%s: corrected TV to pi at the %s bound (t = %d) is %.4f [%.4f, \
           %.4f]%s"
          (Sequential.verdict_name verdict)
          label t_bound tv_at_bound lo hi
          (match crossing with
          | Some t -> Printf.sprintf "; 1/4 first crossed at t = %d" t
          | None -> "; never crossed 1/4")
      in
      {
        check = "tv-decay";
        verdict;
        samples;
        detail;
        stats =
          [
            ("bound", bound);
            ("tv_at_bound", tv_at_bound);
            ("ci_lo", lo);
            ("ci_hi", hi);
            ("bias", bias);
            ( "crossing",
              match crossing with Some t -> float_of_int t | None -> nan );
            ("escapes", float_of_int escapes);
          ];
        outcome = None;
      })

let run_subject ?(domains = 1) ~quick ~alpha ~rng (Subject.P s) =
  Obs.with_span "validate.subject"
    ~args:(span_args (fun () -> [ ("subject", Obs.Str s.Subject.name) ]))
    (fun () ->
      let space = Space.make s.Subject.states in
      let chain =
        Markov.Exact_builder.build ?block_rows:s.Subject.block_rows
          (Markov.Exact_builder.enumerated s.Subject.states)
          ~transitions:s.Subject.transitions
      in
      let start_idx =
        match Space.find_opt space s.Subject.start with
        | Some i -> i
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Conformance.run_subject: %s's start state is outside its \
                  state space"
                 s.Subject.name)
      in
      let one_cfg =
        Sequential.config ~alpha
          ~batch:(if quick then 1000 else 2500)
          ~max_batches:(if quick then 4 else 8)
          ()
      in
      let one_steps =
        List.map
          (one_step_check ~domains ~cfg:one_cfg ~rng space s)
          (one_step_start_indices ~quick ~size:(Space.size space) start_idx)
      in
      let stationary =
        stationary_check ~domains ~cfg:one_cfg ~rng space s ~chain
      in
      let decay =
        match s.Subject.bound with
        | None -> []
        | Some b -> [ decay_check ~domains ~quick ~rng space s ~chain b ]
      in
      let checks = one_steps @ [ stationary ] @ decay in
      {
        subject = s.Subject.name;
        family = s.Subject.family;
        state_count = Array.length s.Subject.states;
        checks;
        verdict =
          List.fold_left
            (fun acc (c : check) -> Sequential.worst acc c.verdict)
            Sequential.Pass checks;
        samples =
          List.fold_left (fun acc (c : check) -> acc + c.samples) 0 checks;
      })

let run ?(domains = 1) ?(quick = false) ?(alpha = 0.01) ~seed subjects =
  let rng = Prng.Rng.create ~seed () in
  let subjects =
    List.map
      (fun subj ->
        let g = Prng.Rng.split rng in
        run_subject ~domains ~quick ~alpha ~rng:g subj)
      subjects
  in
  {
    alpha;
    seed;
    quick;
    subjects;
    verdict =
      List.fold_left
        (fun acc (s : subject_report) -> Sequential.worst acc s.verdict)
        Sequential.Pass subjects;
  }
