(** Indexed state spaces and empirical distribution collection.

    Conformance checks compare {e empirical} distributions — frequency
    counts over a finite state space — against {e exact} laws given as
    dense probability vectors in the same indexing.  This module holds
    the shared indexing (states are compared and hashed structurally,
    like {!Markov.Exact.build}) and the batched trajectory collection
    over {!Engine.Runner}, so counts are deterministic for any domain
    count.

    A simulator under test may step {e outside} the enumerated space —
    that is precisely the kind of bug the subsystem exists to catch — so
    collection never raises on an unknown state: it counts such
    observations as {e escapes} and the testers turn a positive escape
    count into a hard failure. *)

type 'state t

val make : 'state array -> 'state t
(** Index an enumeration.  States must be pairwise structurally
    distinct.
    @raise Invalid_argument on a duplicate state or an empty array. *)

val size : _ t -> int

val states : 'state t -> 'state array
(** The enumeration, in index order (a copy). *)

val state : 'state t -> int -> 'state
val find_opt : 'state t -> 'state -> int option

val dense_law : 'state t -> ('state * float) list -> float array
(** A transition law as a dense vector over the space.  Duplicate
    successors are merged.
    @raise Invalid_argument if a successor lies outside the space or the
    total mass deviates from 1 by more than 1e-9. *)

type counts = {
  freq : Stats.Freq.t;  (** Per-index observation counts. *)
  escapes : int;  (** Observations outside the space. *)
}

val collect :
  ?domains:int ->
  rng:Prng.Rng.t ->
  reps:int ->
  'state t ->
  sample:(Prng.Rng.t -> 'state array) ->
  counts
(** [collect ~rng ~reps space ~sample] runs [sample] as [reps]
    repetitions fanned out through {!Engine.Runner.run} (one RNG split
    per repetition, so the counts are identical for any [domains]) and
    tallies every observed state.
    @raise Invalid_argument if [reps <= 0]. *)

val merge : counts -> counts -> counts
(** Pointwise sum (fresh value).
    @raise Invalid_argument on mismatched sizes. *)
