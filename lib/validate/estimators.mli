(** Distance estimators and goodness-of-fit tests against exact laws.

    Everything here compares an empirical count vector ({!Stats.Freq.t})
    with an exact probability vector [q] over the same indexing (built
    by {!Space.dense_law} or {!Markov.Exact.stationary}).

    The plug-in TV estimator [½ Σ |p̂ᵢ − qᵢ|] is biased upward: with [N]
    samples each cell contributes noise of order [√(qᵢ/N)] even under
    the null.  {!bias_corrected_tv} subtracts the CLT estimate of that
    null expectation, [½ Σᵢ √(2 qᵢ(1−qᵢ)/(π N))] (the mean absolute
    deviation of a normal with the binomial cell variance), clamped at
    zero — the Valiant-style correction that makes small true distances
    distinguishable from sampling noise.

    The goodness-of-fit tests pool low-expectation cells (classical
    [E ≥ 5] rule, configurable) in a deterministic order before
    computing the statistic, and get p-values from
    {!Stats.Special.chi_square_sf}.  Mass observed on cells with [qᵢ = 0]
    is structurally impossible under the null; both tests then report a
    p-value of 0 and an infinite statistic. *)

val plugin_tv : Stats.Freq.t -> expected:float array -> float
(** [½ Σ |p̂ᵢ − qᵢ|].
    @raise Invalid_argument on a length mismatch or an empty count. *)

val tv_bias : expected:float array -> total:int -> float
(** The CLT null expectation of {!plugin_tv} with [total] samples. *)

val bias_corrected_tv : Stats.Freq.t -> expected:float array -> float
(** [max 0 (plugin_tv − tv_bias)]. *)

type gof = {
  statistic : float;
  df : int;  (** Pooled cells − 1 (0 for a degenerate single cell). *)
  p_value : float;
  cells : int;  (** Cells with positive expectation before pooling. *)
  pooled : int;  (** Cells after pooling. *)
  forbidden : int;  (** Observations on zero-probability cells. *)
}

val g_test : ?min_expected:float -> Stats.Freq.t -> expected:float array -> gof
(** Likelihood-ratio statistic [G = 2 Σ O ln(O/E)] over pooled cells.
    [min_expected] (default 5.) is the pooling threshold on [E].
    @raise Invalid_argument on a length mismatch or an empty count. *)

val chi_square_test :
  ?min_expected:float -> Stats.Freq.t -> expected:float array -> gof
(** Pearson statistic [Σ (O−E)²/E] over the same pooling. *)

val standardized_residuals : Stats.Freq.t -> expected:float array -> float array
(** Per-cell (unpooled) residuals [(Oᵢ − N qᵢ) / √(N qᵢ (1−qᵢ))]; 0 when
    the null variance vanishes and the observation agrees, [infinity]
    when mass sits on a zero-probability cell. *)

val worst_residual : Stats.Freq.t -> expected:float array -> int * float
(** Index and value of the residual largest in absolute value. *)

val tv_ci :
  ?replicates:int ->
  ?level:float ->
  rng:Prng.Rng.t ->
  Stats.Freq.t ->
  expected:float array ->
  float * float
(** Percentile-bootstrap interval (default 200 replicates, level 0.95)
    for the plug-in TV distance, by multinomial resampling of the
    observations through {!Stats.Bootstrap.ci}. *)
