(** The conformance harness: run every check a subject supports.

    For each {!Subject.t} the harness builds the exact chain
    ({!Markov.Exact_builder}) over the subject's state space and runs:

    - {b one-step} checks: from a deterministic selection of start
      states (always including the subject's start), single simulator
      steps are collected and their frequencies sequentially tested
      against the exact transition row;
    - a {b stationary} check: long trajectories are thinned at the exact
      τ(0.01) spacing (so consecutive observations are nearly
      independent) and the occupancy frequencies are tested against the
      exact stationary distribution π;
    - a {b tv-decay} check (subjects carrying a paper bound): the
      bias-corrected TV distance to π of the empirical state law at
      geometrically spaced times is measured from the adversarial start,
      and the distance at the bound time must be compatible with
      τ(¼) ≤ bound — an observed distance whose bootstrap lower
      confidence limit stays above ¼ after bias adjustment refutes the
      bound ({e Fail}); a corrected distance below ¼ certifies it
      ({e Pass}).

    All sampling fans out through {!Space.collect}, so reports are
    deterministic in (seed, quick, alpha) for any domain count. *)

type check = {
  check : string;  (** E.g. ["one-step x17"], ["stationary"], ["tv-decay"]. *)
  verdict : Sequential.verdict;
  samples : int;
  detail : string;  (** One human-readable line. *)
  stats : (string * float) list;  (** Numbers behind the verdict. *)
  outcome : Sequential.outcome option;  (** For sequential checks. *)
}

type subject_report = {
  subject : string;
  family : string;
  state_count : int;
  checks : check list;
  verdict : Sequential.verdict;  (** Worst check verdict. *)
  samples : int;  (** Total observations across checks. *)
}

type report = {
  alpha : float;
  seed : int;
  quick : bool;
  subjects : subject_report list;
  verdict : Sequential.verdict;  (** Worst subject verdict. *)
}

val run_subject :
  ?domains:int ->
  quick:bool ->
  alpha:float ->
  rng:Prng.Rng.t ->
  Subject.t ->
  subject_report
(** Every check uses its own false-FAIL budget [alpha]. *)

val run :
  ?domains:int ->
  ?quick:bool ->
  ?alpha:float ->
  seed:int ->
  Subject.t list ->
  report
(** Defaults: [quick = false], [alpha = 0.01].  Each subject gets an
    independent RNG stream split from the seed. *)
