(** Rendering and export of conformance reports.

    The text rendering is the [repro validate] CLI output; the JSON
    document (schema ["repro.validate-report/1"]) is what CI archives
    and what [bench] experiment e23 attaches to [BENCH_RESULTS.json]. *)

val schema : string
(** ["repro.validate-report/1"]. *)

val to_json : Conformance.report -> Experiment.Json.t

val print : Conformance.report -> unit
(** Human-readable report on stdout: a verdict line per check, a
    summary line per subject, and a final overall verdict line. *)

val exit_code : Conformance.report -> int
(** 1 when the overall verdict is Fail, 0 otherwise (Inconclusive does
    not fail a run; it asks for more samples, not for a bug hunt). *)
