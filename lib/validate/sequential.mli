(** Sequential conformance testing at a fixed confidence level.

    A conformance check does not know in advance how many samples it
    needs: a grossly wrong law fails on the first batch, a subtly wrong
    one needs many.  The tester grows the sample in batches and looks at
    the data after each batch — a fixed-confidence sequential scheme in
    the SPRT spirit, with the multiple looks paid for by a Bonferroni
    split of the failure budget: each of the at most [max_batches] looks
    rejects only below [alpha / max_batches], so the overall false-FAIL
    rate under the null stays below [alpha] regardless of when the test
    stops.

    Verdicts are three-valued.  {e Fail} means the goodness-of-fit test
    rejected (or the simulator escaped the state space); {e Pass} means
    the test never rejected {e and} the bias-corrected TV distance ended
    below the practical-equivalence threshold [tv_pass]; {e Inconclusive}
    means no rejection but a distance estimate too large to certify —
    more samples would be needed to tell noise from defect. *)

type verdict = Pass | Fail | Inconclusive

val verdict_name : verdict -> string
(** ["PASS"], ["FAIL"], ["INCONCLUSIVE"]. *)

val worst : verdict -> verdict -> verdict
(** Severity order [Fail > Inconclusive > Pass]. *)

type config = {
  alpha : float;  (** Overall false-FAIL budget of the check. *)
  batch : int;  (** Observations added per look. *)
  max_batches : int;
  tv_pass : float;  (** Corrected-TV practical-equivalence bound. *)
  min_expected : float;  (** GOF pooling threshold. *)
  ci_replicates : int;  (** Bootstrap replicates for the reported CI. *)
}

val config :
  ?batch:int ->
  ?max_batches:int ->
  ?tv_pass:float ->
  ?min_expected:float ->
  ?ci_replicates:int ->
  alpha:float ->
  unit ->
  config
(** Defaults: [batch = 2000], [max_batches = 8], [tv_pass = 0.05],
    [min_expected = 5.], [ci_replicates = 200].
    @raise Invalid_argument if [alpha] is outside (0,1) or a count is
    not positive. *)

type outcome = {
  verdict : verdict;
  samples : int;  (** Total observations consumed. *)
  looks : int;  (** Looks taken before stopping. *)
  escapes : int;  (** Observations outside the state space. *)
  p_value : float;  (** G-test p-value at the deciding look. *)
  statistic : float;
  df : int;
  tv_plugin : float;
  tv_corrected : float;
  ci : float * float;  (** Bootstrap CI of the plug-in TV. *)
  alpha_adjusted : float;  (** The per-look rejection threshold. *)
}

val test :
  config ->
  rng:Prng.Rng.t ->
  expected:float array ->
  sample:(int -> Space.counts) ->
  outcome
(** [test cfg ~rng ~expected ~sample] grows the sample by
    [sample cfg.batch] per look and stops at the first decisive look.
    A look fails on any escape or a G-test p-value below
    [alpha / max_batches].  An early Pass is taken once at least half
    the looks have been spent, the unadjusted p-value is unsuspicious
    ([>= alpha]) and the corrected TV is below [tv_pass / 2]; otherwise
    the verdict at the final look is Pass or Inconclusive by the
    [tv_pass] comparison. *)
