type verdict = Pass | Fail | Inconclusive

let verdict_name = function
  | Pass -> "PASS"
  | Fail -> "FAIL"
  | Inconclusive -> "INCONCLUSIVE"

let worst a b =
  match (a, b) with
  | Fail, _ | _, Fail -> Fail
  | Inconclusive, _ | _, Inconclusive -> Inconclusive
  | Pass, Pass -> Pass

type config = {
  alpha : float;
  batch : int;
  max_batches : int;
  tv_pass : float;
  min_expected : float;
  ci_replicates : int;
}

let config ?(batch = 2000) ?(max_batches = 8) ?(tv_pass = 0.05)
    ?(min_expected = 5.) ?(ci_replicates = 200) ~alpha () =
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Sequential.config: alpha must be in (0,1)";
  if batch <= 0 || max_batches <= 0 || ci_replicates <= 0 then
    invalid_arg "Sequential.config: counts must be positive";
  if not (tv_pass > 0.) then
    invalid_arg "Sequential.config: tv_pass must be positive";
  { alpha; batch; max_batches; tv_pass; min_expected; ci_replicates }

type outcome = {
  verdict : verdict;
  samples : int;
  looks : int;
  escapes : int;
  p_value : float;
  statistic : float;
  df : int;
  tv_plugin : float;
  tv_corrected : float;
  ci : float * float;
  alpha_adjusted : float;
}

let looks_counter = Obs.Counter.make "validate.looks"

let test cfg ~rng ~expected ~sample =
  let size = Array.length expected in
  let freq = Stats.Freq.create ~size in
  let escapes = ref 0 in
  let alpha_adjusted = cfg.alpha /. float_of_int cfg.max_batches in
  let finish ~look ~verdict ~(gof : Estimators.gof) =
    {
      verdict;
      samples = Stats.Freq.total freq + !escapes;
      looks = look;
      escapes = !escapes;
      p_value = gof.Estimators.p_value;
      statistic = gof.Estimators.statistic;
      df = gof.Estimators.df;
      tv_plugin = Estimators.plugin_tv freq ~expected;
      tv_corrected = Estimators.bias_corrected_tv freq ~expected;
      ci =
        Estimators.tv_ci ~replicates:cfg.ci_replicates ~rng freq ~expected;
      alpha_adjusted;
    }
  in
  let rec look k =
    Obs.Counter.incr looks_counter;
    let batch = sample cfg.batch in
    Stats.Freq.merge_into ~dst:freq batch.Space.freq;
    escapes := !escapes + batch.Space.escapes;
    let gof = Estimators.g_test ~min_expected:cfg.min_expected freq ~expected in
    if !escapes > 0 || gof.Estimators.p_value < alpha_adjusted then
      finish ~look:k ~verdict:Fail ~gof
    else if k >= cfg.max_batches then
      let tvc = Estimators.bias_corrected_tv freq ~expected in
      finish ~look:k
        ~verdict:(if tvc <= cfg.tv_pass then Pass else Inconclusive)
        ~gof
    else
      let tvc = Estimators.bias_corrected_tv freq ~expected in
      if
        2 * k >= cfg.max_batches
        && gof.Estimators.p_value >= cfg.alpha
        && tvc <= cfg.tv_pass /. 2.
      then finish ~look:k ~verdict:Pass ~gof
      else look (k + 1)
  in
  look 1
