module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector

type 'state spec = {
  name : string;
  family : string;
  states : 'state array;
  transitions : 'state -> ('state * float) list;
  fresh_sim : unit -> 'state Engine.Sim.t;
  start : 'state;
  bound : (string * float) option;
  block_rows : int option;
}

type t = P : 'state spec -> t

let name (P s) = s.name
let family (P s) = s.family
let state_count (P s) = Array.length s.states

let balls ?block_rows ?(repr = Core.Repr.Array_backed) scenario rule ~n ~m =
  let p = Core.Dynamic_process.make scenario rule ~n in
  let start = Lv.all_in_one ~n ~m in
  let bound =
    match (scenario, rule) with
    | Core.Scenario.A, _ ->
        Some ("Theorem 1", Theory.Bounds.theorem1 ~m ~eps:0.25)
    | Core.Scenario.B, Core.Scheduling_rule.Abku _ ->
        Some ("Claim 5.3", Theory.Bounds.claim53 ~n ~m ~eps:0.25)
    | Core.Scenario.B, Core.Scheduling_rule.Adap _ -> None
  in
  let suffix =
    match repr with
    | Core.Repr.Array_backed -> ""
    | r -> Printf.sprintf " (%s)" (Core.Repr.name r)
  in
  P
    {
      name =
        Printf.sprintf "%s n=%d m=%d%s" (Core.Dynamic_process.name p) n m
          suffix;
      family = "balls";
      states = Markov.Partition_space.enumerate ~n ~m;
      transitions = Core.Dynamic_process.exact_transitions p;
      fresh_sim =
        (match repr with
        | Core.Repr.Array_backed ->
            fun () -> Core.Dynamic_process.sim p (Mv.of_load_vector start)
        | r -> fun () -> Core.Dynamic_process.sim_repr ~repr:r p start);
      start;
      bound;
      block_rows;
    }

(* Round-synchronous subjects: the RBB sims answer [Step] as one full
   round, so the Step-driven conformance harness needs no changes — it
   checks the empirical one-round law against [Rbb.exact_transitions]
   and the long-run occupancy against the exact stationary vector. *)
let rbb ?block_rows ?(repr = Core.Repr.Array_backed) rule ~n ~m =
  let p = Rbb.make rule ~n in
  let start = Lv.all_in_one ~n ~m in
  let suffix =
    match repr with
    | Core.Repr.Array_backed -> ""
    | r -> Printf.sprintf " (%s)" (Core.Repr.name r)
  in
  P
    {
      name = Printf.sprintf "%s n=%d m=%d%s" (Rbb.name p) n m suffix;
      family = "rbb";
      states = Markov.Partition_space.enumerate ~n ~m;
      transitions = Rbb.exact_transitions p;
      fresh_sim = (fun () -> Rbb.sim_repr ~repr p start);
      start;
      bound = Some ("Los-Sauerwald", Theory.Bounds.rbb_mixing ~n ~m);
      block_rows;
    }

let edge ?block_rows ~n () =
  let module Cc = Edgeorient.Class_chain in
  let start = Cc.adversarial ~n in
  P
    {
      name = Printf.sprintf "EdgeClass n=%d" n;
      family = "edge";
      states = Cc.reachable ~from:start;
      transitions = Cc.exact_transitions;
      fresh_sim =
        (fun () ->
          let cur = ref start in
          Engine.Sim.make ~watermark:false
            ~step:(fun g -> cur := Cc.step g !cur)
            ~observe:(fun () -> !cur)
            ~reset:(fun s -> cur := s)
            ~probe:(fun () -> Cc.unfairness !cur)
            ());
      start;
      bound = Some ("Corollary 6.4", Theory.Bounds.corollary64 ~n ~eps:0.25);
      block_rows;
    }

let open_system ~n ~capacity =
  let t = Core.Open_process.make ~capacity (Core.Scheduling_rule.abku 2) ~n in
  let empty = Lv.of_array (Array.make n 0) in
  let start = Lv.all_in_one ~n ~m:capacity in
  P
    {
      name = Printf.sprintf "%s n=%d" (Core.Open_process.name t) n;
      family = "open";
      states =
        Markov.Exact_builder.reachable_states ~root:empty
          ~transitions:(Core.Open_process.exact_transitions t) ();
      transitions = Core.Open_process.exact_transitions t;
      fresh_sim = (fun () -> Core.Open_process.sim t (Mv.of_load_vector start));
      start;
      bound = None;
      block_rows = None;
    }

let relocation scenario ~d ~relocations ~n ~m =
  let t =
    Core.Relocation.make scenario (Core.Scheduling_rule.abku d) ~relocations ~n
  in
  let start = Array.init n (fun i -> if i = 0 then m else 0) in
  P
    {
      name = Printf.sprintf "%s n=%d m=%d" (Core.Relocation.name t) n m;
      family = "relocation";
      states =
        Markov.Exact_builder.reachable_states ~root:start
          ~transitions:(Core.Relocation.exact_transitions t) ();
      transitions = Core.Relocation.exact_transitions t;
      fresh_sim =
        (fun () -> Core.Relocation.sim t (Core.Bins.of_loads start));
      start;
      bound = None;
      block_rows = None;
    }

(* One subject per catalog opts into a blocked chain with a tiny block
   size, so the conformance net exercises the multi-block code path on
   every CI run.  The counts-sampled subjects pair the cutoff-table
   sampler against the same exact law its array oracle is checked
   against: the sampled backend redistributes RNG draws, so this
   equality-in-law net is its correctness argument (DESIGN.md, "The
   representation layer") — the draw-order-preserving count backend
   needs no subject of its own, being bit-identical to the oracle. *)
let quick_catalog () =
  [
    balls Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n:4 ~m:4;
    balls ~repr:Core.Repr.Count_sampled Core.Scenario.A
      (Core.Scheduling_rule.abku 2) ~n:4 ~m:4;
    edge ~block_rows:4 ~n:3 ();
    rbb Rbb.uniform ~n:4 ~m:4;
    rbb (Rbb.dchoice 2) ~n:4 ~m:5;
  ]

let full_catalog () =
  [
    balls Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n:4 ~m:4;
    balls ~repr:Core.Repr.Count_sampled Core.Scenario.A
      (Core.Scheduling_rule.abku 2) ~n:4 ~m:4;
    balls Core.Scenario.A (Core.Scheduling_rule.abku 3) ~n:4 ~m:5;
    balls ~repr:Core.Repr.Count_sampled Core.Scenario.A
      (Core.Scheduling_rule.abku 3) ~n:4 ~m:5;
    balls Core.Scenario.A
      (Core.Scheduling_rule.adap (Core.Adaptive.of_list [ 1; 2; 2; 3 ]))
      ~n:4 ~m:4;
    balls ~block_rows:8 Core.Scenario.B (Core.Scheduling_rule.abku 2) ~n:4
      ~m:4;
    balls ~repr:Core.Repr.Count_sampled Core.Scenario.B
      (Core.Scheduling_rule.abku 2) ~n:4 ~m:4;
    balls Core.Scenario.B
      (Core.Scheduling_rule.adap (Core.Adaptive.linear ()))
      ~n:4 ~m:5;
    edge ~block_rows:4 ~n:4 ();
    open_system ~n:3 ~capacity:4;
    relocation Core.Scenario.A ~d:2 ~relocations:1 ~n:3 ~m:3;
    rbb Rbb.uniform ~n:4 ~m:4;
    rbb ~block_rows:8 (Rbb.dchoice 2) ~n:4 ~m:5;
    rbb ~repr:Core.Repr.Count_sampled (Rbb.dchoice 2) ~n:4 ~m:4;
  ]
