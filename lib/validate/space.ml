type 'state t = { states : 'state array; index : ('state, int) Hashtbl.t }

let make states =
  if Array.length states = 0 then invalid_arg "Space.make: empty state space";
  let index = Hashtbl.create (2 * Array.length states) in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem index s then invalid_arg "Space.make: duplicate state";
      Hashtbl.add index s i)
    states;
  { states = Array.copy states; index }

let size t = Array.length t.states
let states t = Array.copy t.states
let state t i = t.states.(i)
let find_opt t s = Hashtbl.find_opt t.index s

let dense_law t law =
  let v = Array.make (size t) 0. in
  let mass = ref 0. in
  List.iter
    (fun (s, p) ->
      match find_opt t s with
      | Some i ->
          v.(i) <- v.(i) +. p;
          mass := !mass +. p
      | None -> invalid_arg "Space.dense_law: successor outside the space")
    law;
  if Float.abs (!mass -. 1.) > 1e-9 then
    invalid_arg "Space.dense_law: law does not sum to 1";
  v

type counts = { freq : Stats.Freq.t; escapes : int }

let samples_counter = Obs.Counter.make "validate.samples"
let escapes_counter = Obs.Counter.make "validate.escapes"

(* The fan-out returns raw observations per repetition; indexing happens
   on the calling domain so the (read-mostly) hash table never races
   with anything. *)
let collect ?domains ~rng ~reps t ~sample =
  let r = Engine.Runner.run ?domains ~rng ~reps (fun g _metrics -> sample g) in
  let freq = Stats.Freq.create ~size:(size t) in
  let escapes = ref 0 in
  Array.iter
    (fun obs ->
      Array.iter
        (fun s ->
          match find_opt t s with
          | Some i -> Stats.Freq.observe freq i
          | None -> incr escapes)
        obs)
    r.Engine.Runner.observations;
  Obs.Counter.add samples_counter (Stats.Freq.total freq + !escapes);
  Obs.Counter.add escapes_counter !escapes;
  { freq; escapes = !escapes }

let merge a b =
  let freq = Stats.Freq.create ~size:(Stats.Freq.size a.freq) in
  Stats.Freq.merge_into ~dst:freq a.freq;
  Stats.Freq.merge_into ~dst:freq b.freq;
  { freq; escapes = a.escapes + b.escapes }
