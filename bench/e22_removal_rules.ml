(* E22 — Section 7's first generalization: "our techniques can be also
   applied to processes in which we remove a ball according to other
   probability distributions".  We sweep a spectrum of removal rules from
   repair-friendly to adversary-friendly and measure the recovery time of
   the d-choice process from the all-in-one state.

   Expected ordering: the more the removal rule favours loaded bins, the
   faster the recovery — deterministic drain ~ m, load-squared < load
   (scenario A) < uniform-non-empty-bin (scenario B). *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let rules () =
  [
    Core.Removal.heaviest;
    Core.Removal.load_squared;
    Core.Removal.scenario_a;
    Core.Removal.scenario_b;
  ]

let run ctx =
  let n = Ctx.scale ctx ~quick:256 ~full:512 in
  let reps = Ctx.scale ctx ~quick:11 ~full:21 in
  let target = 4 in
  let table =
    Ctx.table ctx
      ~title:
        (Printf.sprintf
           "E22: recovery of the d=2 process to max load <= %d, n = m = %d"
           target n)
      ~columns:[ "removal rule"; "median steps [q10,q90]"; "vs scenario A" ]
  in
  let measured =
    List.map
      (fun rule ->
        let rng =
          Ctx.rng ctx
            ~experiment:(22_000 + Hashtbl.hash (Core.Removal.name rule))
        in
        let times =
          Array.init reps (fun _ ->
              let g = Prng.Rng.split rng in
              let v = Mv.of_load_vector (Lv.all_in_one ~n ~m:n) in
              let steps = ref 0 in
              while Mv.max_load v > target && !steps < 100_000_000 do
                Core.Removal.step rule (Sr.abku 2) g v;
                incr steps
              done;
              float_of_int !steps)
        in
        (rule, times))
      (rules ())
  in
  let base =
    List.find_map
      (fun (r, xs) ->
        if Core.Removal.name r = Core.Removal.name Core.Removal.scenario_a then
          Some (Stats.Quantile.median xs)
        else None)
      measured
    |> Option.value ~default:nan
  in
  List.iter
    (fun (rule, xs) ->
      let median = Stats.Quantile.median xs in
      Ctx.row table
        ~values:[ ("median", median); ("vs_scenario_a", median /. base) ]
        [
          Core.Removal.name rule;
          Printf.sprintf "%.0f [%.0f, %.0f]" median
            (Stats.Quantile.quantile xs 0.1)
            (Stats.Quantile.quantile xs 0.9);
          Printf.sprintf "%.2fx" (median /. base);
        ])
    measured;
  Ctx.note table
    "the coupling framework covers all four rows; only the contraction \
     rate (hence the bound) changes with the removal law";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e22"
    ~claim:"Section 7: recovery under other removal distributions"
    ~tags:[ "removal"; "recovery"; "sim" ]
    run
