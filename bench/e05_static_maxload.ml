(* E5 — the Azar et al. baseline the paper builds on: the static maximum
   load of ABKU[d] is ln n / ln ln n (1+o(1)) for d = 1 and drops to
   ln ln n / ln d (1+o(1)) + O(m/n) for d >= 2. *)

module Sr = Core.Scheduling_rule

let run (cfg : Config.t) =
  Exp_util.heading ~id:"E5"
    ~claim:"Azar et al.: static max load, one choice vs d choices";
  let sizes =
    if cfg.full then [ 4096; 16384; 65536; 262144; 1048576 ]
    else [ 1024; 4096; 16384; 65536; 262144 ]
  in
  let reps = if cfg.full then 15 else 7 in
  let ds = [ 1; 2; 3; 4 ] in
  let table =
    Stats.Table.create ~title:"E5: static max load of ABKU[d], m = n"
      ~columns:
        ([ "n" ]
        @ List.concat_map
            (fun d ->
              [ Printf.sprintf "d=%d measured" d; Printf.sprintf "d=%d formula" d ])
            ds)
  in
  List.iter
    (fun n ->
      let rng = Config.rng_for cfg ~experiment:(5000 + n) in
      let cells =
        List.concat_map
          (fun d ->
            let samples =
              Core.Static_process.max_load_samples (Sr.abku d) rng ~n ~m:n ~reps
            in
            let median =
              Stats.Quantile.median (Stats.Quantile.of_ints samples)
            in
            let formula = Theory.Bounds.azar_static_max_load ~n ~m:n ~d in
            [ Printf.sprintf "%.1f" median; Printf.sprintf "%.2f" formula ])
          ds
      in
      Stats.Table.add_row table (string_of_int n :: cells))
    sizes;
  Stats.Table.add_note table
    "who wins: every d >= 2 beats d = 1 and the d = 1 column grows with n \
     while d >= 2 columns stay nearly flat (the ln ln n effect)";
  Exp_util.output table
