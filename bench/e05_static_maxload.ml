(* E5 — the Azar et al. baseline the paper builds on: the static maximum
   load of ABKU[d] is ln n / ln ln n (1+o(1)) for d = 1 and drops to
   ln ln n / ln d (1+o(1)) + O(m/n) for d >= 2. *)

module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let run ctx =
  let reps = Ctx.reps ctx in
  let ds = [ 1; 2; 3; 4 ] in
  let table =
    Ctx.table ctx ~title:"E5: static max load of ABKU[d], m = n"
      ~columns:
        ([ "n" ]
        @ List.concat_map
            (fun d ->
              [ Printf.sprintf "d=%d measured" d; Printf.sprintf "d=%d formula" d ])
            ds)
  in
  Ctx.iter_cells ctx
    (fun n ->
      let rng = Ctx.rng ctx ~experiment:(5000 + n) in
      let values = ref [] in
      let cells =
        List.concat_map
          (fun d ->
            let samples =
              Core.Static_process.max_load_samples (Sr.abku d) rng ~n ~m:n ~reps
            in
            let median =
              Stats.Quantile.median (Stats.Quantile.of_ints samples)
            in
            let formula = Theory.Bounds.azar_static_max_load ~n ~m:n ~d in
            values :=
              (Printf.sprintf "d%d_formula" d, formula)
              :: (Printf.sprintf "d%d_median" d, median)
              :: !values;
            [ Printf.sprintf "%.1f" median; Printf.sprintf "%.2f" formula ])
          ds
      in
      Ctx.row table ~values:(List.rev !values) (string_of_int n :: cells));
  Ctx.note table
    "who wins: every d >= 2 beats d = 1 and the d = 1 column grows with n \
     while d >= 2 columns stay nearly flat (the ln ln n effect)";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e5"
    ~claim:"Azar et al.: static max load, one choice vs d choices"
    ~tags:[ "static"; "baseline"; "sim" ]
    ~grid:
      (Experiment.Grid.v ~axis:"n"
         ~quick:[ 1024; 4096; 16384; 65536; 262144 ]
         ~full:[ 4096; 16384; 65536; 262144; 1048576 ]
         ~reps:(7, 15) ())
    run
