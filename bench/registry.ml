(* Every experiment spec, in presentation order.  The driver's
   no-argument selection takes the [default = true] specs (e1..e22,
   e24, e25); [e23] and [micro] opt out and run only when named. *)

let all : Experiment.Spec.t list =
  [
    E01_scenario_a_mixing.spec;
    E02_recovery_a.spec;
    E03_scenario_b_mixing.spec;
    E04_recovery_b.spec;
    E05_static_maxload.spec;
    E06_fluid_vs_sim.spec;
    E07_exact_vs_bounds.spec;
    E08_edge_mixing.spec;
    E09_edge_recovery.spec;
    E10_adap_ablation.spec;
    E11_open_system.spec;
    E12_relocation.spec;
    E13_tv_decay.spec;
    E14_relaxation.spec;
    E15_m_over_n.spec;
    E16_weighted.spec;
    E17_parallel.spec;
    E18_go_left.spec;
    E19_delayed.spec;
    E20_bad_states.spec;
    E21_coalescence_tail.spec;
    E22_removal_rules.spec;
    E23_conformance.spec;
    E24_rbb_stabilization.spec;
    E25_rbb_mixing.spec;
    Micro.spec;
  ]
