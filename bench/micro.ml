(* Bechamel micro-benchmarks: per-step cost of every process.  All
   recovery times in the experiment tables are quoted in steps; these
   numbers convert them to wall-clock. *)

open Bechamel
open Toolkit
module Ctx = Experiment.Ctx

let make_tests () =
  let n = 1024 in
  let g = Prng.Rng.create ~seed:7 () in
  let system scenario =
    let bins =
      Core.Bins.of_loads
        (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m:n))
    in
    Core.System.create scenario (Core.Scheduling_rule.abku 2) bins
  in
  let sys_a = system Core.Scenario.A in
  let sys_b = system Core.Scenario.B in
  let process = Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n in
  let mv =
    Loadvec.Mutable_vector.of_load_vector (Loadvec.Load_vector.uniform ~n ~m:n)
  in
  let coupled = Core.Coupled.monotone process in
  let cx =
    Loadvec.Mutable_vector.of_load_vector (Loadvec.Load_vector.all_in_one ~n ~m:n)
  in
  let cy =
    Loadvec.Mutable_vector.of_load_vector (Loadvec.Load_vector.uniform ~n ~m:n)
  in
  let orientation = Edgeorient.Orientation.create ~n in
  let class_state = ref (Edgeorient.Class_chain.start ~n:128) in
  [
    Test.make ~name:"system step Id-ABKU[2] (n=1024)"
      (Staged.stage (fun () -> Core.System.step g sys_a));
    Test.make ~name:"system step Ib-ABKU[2] (n=1024)"
      (Staged.stage (fun () -> Core.System.step g sys_b));
    Test.make ~name:"normalized step Id-ABKU[2] (n=1024)"
      (Staged.stage (fun () -> Core.Dynamic_process.step_in_place process g mv));
    Test.make ~name:"coupled step Id-ABKU[2] (n=1024)"
      (Staged.stage (fun () ->
           ignore (coupled.Coupling.Coupled_chain.step g cx cy)));
    Test.make ~name:"greedy edge step (n=1024)"
      (Staged.stage (fun () -> Edgeorient.Orientation.greedy_step g orientation));
    Test.make ~name:"class-chain step (n=128)"
      (Staged.stage (fun () ->
           class_state := Edgeorient.Class_chain.step g !class_state));
    (let w =
       Core.Weighted.static_run g ~n ~m:n ~d:2 ~dist:(Core.Weighted.Exponential 1.)
     in
     Test.make ~name:"weighted dynamic step (n=1024)"
       (Staged.stage (fun () ->
            Core.Weighted.dynamic_step w g ~d:2
              ~dist:(Core.Weighted.Exponential 1.))));
    (let rule = Core.Go_left.make ~d:2 ~n in
     let bins =
       Core.Bins.of_loads
         (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m:n))
     in
     Test.make ~name:"go-left dynamic step (n=1024)"
       (Staged.stage (fun () ->
            Core.Go_left.dynamic_step rule Core.Scenario.A g bins)));
  ]

(* Run [step] under a wall-clock budget in batches; report throughput
   and minor-heap allocation per step. *)
let time_budget_loop ~budget step =
  for _ = 1 to 1_000 do
    step ()
  done;
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let count = ref 0 in
  while Unix.gettimeofday () -. t0 < budget do
    for _ = 1 to 1_000 do
      step ()
    done;
    count := !count + 1_000
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let steps = float_of_int !count in
  (steps /. dt, (Gc.minor_words () -. w0) /. steps)

(* The refactor's headline number: the historical Markov.Chain stepper
   rebuilds a sorted load vector per step (of_load_vector /
   to_load_vector round-trip), while the engine sim mutates one
   preallocated buffer.  The allocation column makes the difference
   visible: the chain allocates O(n) words per step, the sim O(1). *)
let engine_vs_chain ctx =
  Printf.printf
    "\n#### Micro — engine sim vs Markov.Chain, Id-ABKU[2] (n=10_000)\n%!";
  let n = 10_000 in
  let process =
    Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n
  in
  let budget = 0.5 in
  let chain_rate, chain_alloc =
    let g = Prng.Rng.create ~seed:11 () in
    let chain = Core.Dynamic_process.chain process in
    let state = ref (Loadvec.Load_vector.uniform ~n ~m:n) in
    time_budget_loop ~budget (fun () ->
        state := chain.Markov.Chain.step g !state)
  in
  let sim_rate, sim_alloc =
    let g = Prng.Rng.create ~seed:11 () in
    let v =
      Loadvec.Mutable_vector.of_load_vector
        (Loadvec.Load_vector.uniform ~n ~m:n)
    in
    let s = Core.Dynamic_process.sim process v in
    time_budget_loop ~budget (fun () -> Engine.Sim.step s g)
  in
  let table =
    Ctx.table ctx ~title:"engine sim vs chain"
      ~columns:[ "path"; "steps/sec"; "minor words/step" ]
  in
  Ctx.row table
    ~values:[ ("steps_per_sec", chain_rate); ("minor_words", chain_alloc) ]
    [
      "Markov.Chain (immutable)";
      Printf.sprintf "%.0f" chain_rate;
      Printf.sprintf "%.1f" chain_alloc;
    ];
  Ctx.row table
    ~values:[ ("steps_per_sec", sim_rate); ("minor_words", sim_alloc) ]
    [
      "Engine.Sim (in-place)";
      Printf.sprintf "%.0f" sim_rate;
      Printf.sprintf "%.1f" sim_alloc;
    ];
  Ctx.note table (Printf.sprintf "speedup: %.1fx" (sim_rate /. chain_rate));
  Ctx.emit ctx table

(* Mean seconds per call of [f] under a wall-clock budget.  Calls here
   are ms-scale, so no batching: one warm call, then count whole
   calls. *)
let time_calls ~budget f =
  ignore (Sys.opaque_identity (f ()));
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let count = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < budget do
    ignore (Sys.opaque_identity (f ()));
    incr count;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !count

(* The exact-layer refactor's headline number: dense mixing_time scans
   t = 0,1,2,... with a full |Omega|^3 matrix product per step and
   recomputes the stationary distribution on every call, while the
   sparse path evolves per-start distribution vectors by CSR spmv with
   a doubling-then-bisect crossing search, pruning starts against the
   shared crossing bound, and reuses the chain's cached pi.  The n=8
   cells are the largest of the pre-extension e07 grid; n=12 is the
   largest extended quick cell.  Results must agree exactly — between
   the two implementations and across domain counts. *)
let dense_vs_sparse ctx =
  Printf.printf "\n#### Micro — dense vs sparse Exact.mixing_time\n%!";
  let metrics = Engine.Metrics.create () in
  let budget = 0.3 in
  let table =
    Ctx.table ctx ~title:"dense vs sparse exact mixing time"
      ~columns:[ "cell"; "|Omega|"; "tau"; "dense ms"; "sparse ms"; "speedup" ]
  in
  let headline = ref 0. in
  List.iter
    (fun (scenario, n, is_headline) ->
      let name =
        Printf.sprintf "%s n=%d"
          (match scenario with Core.Scenario.A -> "Id" | B -> "Ib")
          n
      in
      let process =
        Core.Dynamic_process.make scenario (Core.Scheduling_rule.abku 2) ~n
      in
      let chain =
        Markov.Exact_builder.build
          (Markov.Exact_builder.enumerated
             (Markov.Partition_space.enumerate ~n ~m:n))
          ~transitions:(Core.Dynamic_process.exact_transitions process)
      in
      let tau_dense = Markov.Exact.Dense.mixing_time ~eps:0.25 chain in
      let tau_sparse = Markov.Exact.mixing_time ~eps:0.25 ~domains:1 chain in
      let tau_par = Markov.Exact.mixing_time ~eps:0.25 ~domains:2 chain in
      if tau_sparse <> tau_dense then
        failwith
          (Printf.sprintf "micro: sparse tau %d <> dense tau %d (%s)"
             tau_sparse tau_dense name);
      if tau_par <> tau_sparse then
        failwith
          (Printf.sprintf "micro: tau differs across domains (%s)" name);
      let dense_s =
        time_calls ~budget (fun () ->
            Markov.Exact.Dense.mixing_time ~eps:0.25 chain)
      in
      let sparse_s =
        time_calls ~budget (fun () ->
            Markov.Exact.mixing_time ~eps:0.25 ~domains:1 chain)
      in
      Engine.Metrics.add_phase metrics (name ^ " dense call") dense_s;
      Engine.Metrics.add_phase metrics (name ^ " sparse call") sparse_s;
      if is_headline then headline := dense_s /. sparse_s;
      Ctx.row table
        ~values:
          [
            ("state_count", float_of_int (Markov.Exact.size chain));
            ("tau", float_of_int tau_sparse);
            ("dense_ms", dense_s *. 1e3);
            ("sparse_ms", sparse_s *. 1e3);
          ]
        [
          name;
          string_of_int (Markov.Exact.size chain);
          string_of_int tau_sparse;
          Printf.sprintf "%.4f" (dense_s *. 1e3);
          Printf.sprintf "%.4f" (sparse_s *. 1e3);
          Printf.sprintf "%.1fx" (dense_s /. sparse_s);
        ])
    [
      (Core.Scenario.A, 8, false);
      (Core.Scenario.B, 8, true);
      (Core.Scenario.B, 12, false);
    ];
  Ctx.note table
    (Printf.sprintf
       "speedup on the largest pre-extension e07 cell (Ib n=8): %.1fx; taus \
        identical dense/sparse and for domains=1 vs 2"
       !headline);
  Ctx.emit ctx table;
  Engine.Metrics.dump ~label:"micro dense vs sparse"
    (Engine.Metrics.snapshot metrics)

(* The blocked-CSR kernel against the flat sparse product, across block
   sizes and pool sizes, plus the streaming-build story: with [~spill]
   the builder's working set is one block, so the peak heap of a build
   stays flat while the in-memory build holds the whole matrix.  All
   kernel variants must agree bitwise — the column-owner-computes split
   makes the pooled product deterministic — so the table doubles as a
   parity check.  Note: wall-clock speedup from the pool needs real
   cores; on a single-CPU host the domains>1 rows mostly measure
   barrier overhead. *)
let blocked_spmv ctx =
  Printf.printf "\n#### Micro — blocked vs flat spmv, streaming build peak\n%!";
  let n = 30 in
  let process =
    Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n
  in
  let states = Markov.Partition_space.enumerate ~n ~m:n in
  let transitions = Core.Dynamic_process.exact_transitions process in
  let top_heap () = (Gc.quick_stat ()).Gc.top_heap_words in
  (* Spill-first ordering: the spilled build runs against the lower
     high-water mark, so its delta reflects its own (flat) peak rather
     than the in-memory build's. *)
  let spill_path = Filename.temp_file "micro_bcsr" ".blk" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove spill_path with Sys_error _ -> ())
    (fun () ->
      Gc.compact ();
      let t0 = top_heap () in
      let spilled =
        Markov.Exact_builder.build ~block_rows:512 ~spill:spill_path
          (Markov.Exact_builder.enumerated states)
          ~transitions
      in
      let spill_peak = top_heap () - t0 in
      let t1 = top_heap () in
      let chain =
        Markov.Exact_builder.build ~block_rows:512
          (Markov.Exact_builder.enumerated states)
          ~transitions
      in
      let mem_peak = top_heap () - t1 in
      let bcsr = Markov.Exact.blocked chain in
      let nnz = Markov.Blocked_csr.nnz bcsr in
      let build_table =
        Ctx.table ctx ~title:"streaming build peak heap"
          ~columns:[ "build"; "|Omega|"; "nnz"; "peak heap growth (words)" ]
      in
      let build_row name peak =
        Ctx.row build_table
          ~values:
            [
              ("state_count", float_of_int (Array.length states));
              ("nnz", float_of_int nnz);
              ("peak_heap_words", float_of_int peak);
            ]
          [
            name;
            string_of_int (Array.length states);
            string_of_int nnz;
            string_of_int peak;
          ]
      in
      build_row "spill (one block resident)" spill_peak;
      build_row "in-memory (all blocks)" mem_peak;
      Ctx.emit ctx build_table;
      Markov.Blocked_csr.close (Markov.Exact.blocked spilled);
      (* spmv parity + cost across layouts and pool sizes. *)
      let flat = Markov.Exact.sparse chain in
      let size = Array.length states in
      let src = Array.make size (1. /. float_of_int size) in
      let budget = 0.2 in
      let expect = Markov.Sparse.spmv src flat in
      let table =
        Ctx.table ctx ~title:"blocked vs flat spmv"
          ~columns:[ "kernel"; "blocks"; "domains"; "us/spmv"; "vs flat" ]
      in
      let flat_s =
        let dst = Array.make size 0. in
        time_calls ~budget (fun () ->
            Markov.Sparse.spmv_into flat ~src ~dst)
      in
      let emit_row name ~blocks ~domains seconds =
        Ctx.row table
          ~values:
            [
              ("blocks", float_of_int blocks);
              ("domains", float_of_int domains);
              ("us_per_spmv", seconds *. 1e6);
            ]
          [
            name;
            string_of_int blocks;
            string_of_int domains;
            Printf.sprintf "%.1f" (seconds *. 1e6);
            Printf.sprintf "%.2fx" (flat_s /. seconds);
          ]
      in
      emit_row "flat CSR" ~blocks:1 ~domains:1 flat_s;
      let check dst =
        if not (Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-12) dst expect)
        then failwith "micro: blocked spmv disagrees with flat spmv"
      in
      List.iter
        (fun block_rows ->
          let b = Markov.Blocked_csr.of_sparse ~block_rows flat in
          List.iter
            (fun domains ->
              let run_with kernel =
                let dst = Array.make size 0. in
                Markov.Blocked_csr.spmv kernel ~src ~dst;
                check dst;
                time_calls ~budget (fun () ->
                    Markov.Blocked_csr.spmv kernel ~src ~dst)
              in
              let seconds =
                if domains = 1 then run_with (Markov.Blocked_csr.kernel b)
                else
                  Parallel.Pool.with_pool ~domains (fun pool ->
                      run_with (Markov.Blocked_csr.kernel ~pool b))
              in
              emit_row "blocked CSR"
                ~blocks:(Markov.Blocked_csr.block_count b)
                ~domains seconds)
            (if block_rows >= size then [ 1 ] else [ 1; 2; 4 ]))
        [ size; 512 ];
      Ctx.note table
        "all kernels verified bitwise against the flat product; pooled rows \
         need >1 physical core to show wall-clock speedup";
      Ctx.emit ctx table)

(* Evidence for the Obs overhead contract: while tracing is disabled,
   every recording entry point is one load-and-branch with no
   allocation, so instrumenting the step loops costs well under 2% of
   their throughput.  Each row pairs an instrumentation call with the
   same baseline work (a ref increment), so the delta to the baseline
   row is the per-call cost. *)
let obs_overhead ctx =
  Printf.printf "\n#### Micro — disabled-path instrumentation overhead\n%!";
  let budget = 0.2 in
  let table =
    Ctx.table ctx
      ~title:
        (if Obs.enabled () then "obs overhead (tracing ON)"
         else "obs disabled-path overhead")
      ~columns:[ "operation"; "ns/op"; "minor words/op" ]
  in
  let c = Obs.Counter.make "micro.overhead_counter" in
  let h = Obs.Histogram.make "micro.overhead_hist" in
  let x = ref 0 in
  let row name f =
    let rate, alloc = time_budget_loop ~budget f in
    Ctx.row table
      ~values:[ ("ns_per_op", 1e9 /. rate); ("minor_words", alloc) ]
      [ name; Printf.sprintf "%.1f" (1e9 /. rate); Printf.sprintf "%.2f" alloc ]
  in
  row "baseline (ref incr)" (fun () -> incr x);
  row "  + Counter.add" (fun () ->
      incr x;
      Obs.Counter.add c 1);
  row "  + Histogram.observe" (fun () ->
      incr x;
      Obs.Histogram.observe h !x);
  row "  + with_span" (fun () ->
      incr x;
      Obs.with_span "micro.overhead_span" (fun () -> ()));
  Ctx.note table
    "contract: with tracing off, each entry point is one load-and-branch \
     and allocates nothing";
  Ctx.emit ctx table

(* The serve daemon's hot path in isolation: [Serve.Cluster.apply_batch]
   on a mixed insert/remove/probe stream (the `repro load` default mix),
   across shard counts and batch sizes.  Probes are barriers that flush
   the per-shard queues, so batch size controls how much routing and
   flush fan-out each query amortises; rows with shards > 1 attach a
   pool, whose wall-clock gain needs real cores.  Socket and JSON
   framing costs are excluded — compare with `repro load` against a
   running daemon for the end-to-end number. *)
let serve_throughput ctx =
  Printf.printf "\n#### Micro — serve cluster throughput\n%!";
  let n = 16_384 in
  let budget = 0.15 in
  let g = Prng.Rng.create ~seed:0x5E57E () in
  let batch_of size =
    Array.init size (fun _ ->
        match Prng.Rng.int g 100 with
        | r when r < 45 ->
            Engine.Event.Insert
              (Int64.to_int (Int64.shift_right_logical (Prng.Rng.bits64 g) 2))
        | r when r < 90 -> Engine.Event.Remove
        | _ -> Engine.Event.Probe)
  in
  let table =
    Ctx.table ctx ~title:"serve cluster throughput, in process"
      ~columns:[ "shards"; "batch"; "kops/s" ]
  in
  List.iter
    (fun shards ->
      let config =
        {
          Serve.Cluster.n;
          m = 2 * n;
          shards;
          scenario = Core.Scenario.A;
          rule = Core.Scheduling_rule.abku 2;
          seed = 0xC10C;
        }
      in
      let rows pool =
        let cluster = Serve.Cluster.create ?pool config in
        List.iter
          (fun size ->
            let batch = batch_of size in
            ignore (Sys.opaque_identity (Serve.Cluster.apply_batch cluster batch));
            let t0 = Unix.gettimeofday () in
            let events = ref 0 in
            while Unix.gettimeofday () -. t0 < budget do
              ignore
                (Sys.opaque_identity (Serve.Cluster.apply_batch cluster batch));
              events := !events + size
            done;
            let rate =
              float_of_int !events /. (Unix.gettimeofday () -. t0)
            in
            Ctx.row table
              ~values:
                [
                  ("shards", float_of_int shards);
                  ("batch", float_of_int size);
                  ("ops_per_sec", rate);
                ]
              [
                string_of_int shards;
                string_of_int size;
                Printf.sprintf "%.0f" (rate /. 1e3);
              ])
          [ 64; 512; 4096 ]
      in
      if shards = 1 then rows None
      else
        Parallel.Pool.with_pool ~domains:(min shards 4) (fun pool ->
            rows (Some pool)))
    [ 1; 2; 4; 8 ];
  Ctx.note table
    "in-process Cluster.apply_batch, mixed 45/45/10 insert/remove/probe; \
     excludes socket and JSON framing (see `repro load`); pooled rows need \
     >1 physical core to show wall-clock speedup";
  Ctx.emit ctx table

let run ctx =
  dense_vs_sparse ctx;
  blocked_spmv ctx;
  engine_vs_chain ctx;
  serve_throughput ctx;
  obs_overhead ctx;
  Printf.printf "\n#### Micro — per-step cost (Bechamel OLS estimate)\n%!";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let instances = [ Instance.monotonic_clock ] in
  let tests = make_tests () in
  let table =
    Ctx.table ctx ~title:"per-step cost" ~columns:[ "operation"; "ns/step"; "R^2" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (x :: _) -> Printf.sprintf "%.1f" x
            | _ -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "-"
          in
          Ctx.row table [ name; estimate; r2 ])
        ols)
    tests;
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"micro"
    ~claim:"Bechamel per-step costs and engine/exact-layer speedups"
    ~tags:[ "micro"; "perf" ]
    ~default:false ~auto_heading:false run
