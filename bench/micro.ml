(* Bechamel micro-benchmarks: per-step cost of every process.  All
   recovery times in the experiment tables are quoted in steps; these
   numbers convert them to wall-clock. *)

open Bechamel
open Toolkit

let make_tests () =
  let n = 1024 in
  let g = Prng.Rng.create ~seed:7 () in
  let system scenario =
    let bins =
      Core.Bins.of_loads
        (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m:n))
    in
    Core.System.create scenario (Core.Scheduling_rule.abku 2) bins
  in
  let sys_a = system Core.Scenario.A in
  let sys_b = system Core.Scenario.B in
  let process = Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n in
  let mv =
    Loadvec.Mutable_vector.of_load_vector (Loadvec.Load_vector.uniform ~n ~m:n)
  in
  let coupled = Core.Coupled.monotone process in
  let cx =
    Loadvec.Mutable_vector.of_load_vector (Loadvec.Load_vector.all_in_one ~n ~m:n)
  in
  let cy =
    Loadvec.Mutable_vector.of_load_vector (Loadvec.Load_vector.uniform ~n ~m:n)
  in
  let orientation = Edgeorient.Orientation.create ~n in
  let class_state = ref (Edgeorient.Class_chain.start ~n:128) in
  [
    Test.make ~name:"system step Id-ABKU[2] (n=1024)"
      (Staged.stage (fun () -> Core.System.step g sys_a));
    Test.make ~name:"system step Ib-ABKU[2] (n=1024)"
      (Staged.stage (fun () -> Core.System.step g sys_b));
    Test.make ~name:"normalized step Id-ABKU[2] (n=1024)"
      (Staged.stage (fun () -> Core.Dynamic_process.step_in_place process g mv));
    Test.make ~name:"coupled step Id-ABKU[2] (n=1024)"
      (Staged.stage (fun () ->
           ignore (coupled.Coupling.Coupled_chain.step g cx cy)));
    Test.make ~name:"greedy edge step (n=1024)"
      (Staged.stage (fun () -> Edgeorient.Orientation.greedy_step g orientation));
    Test.make ~name:"class-chain step (n=128)"
      (Staged.stage (fun () ->
           class_state := Edgeorient.Class_chain.step g !class_state));
    (let w =
       Core.Weighted.static_run g ~n ~m:n ~d:2 ~dist:(Core.Weighted.Exponential 1.)
     in
     Test.make ~name:"weighted dynamic step (n=1024)"
       (Staged.stage (fun () ->
            Core.Weighted.dynamic_step w g ~d:2
              ~dist:(Core.Weighted.Exponential 1.))));
    (let rule = Core.Go_left.make ~d:2 ~n in
     let bins =
       Core.Bins.of_loads
         (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m:n))
     in
     Test.make ~name:"go-left dynamic step (n=1024)"
       (Staged.stage (fun () ->
            Core.Go_left.dynamic_step rule Core.Scenario.A g bins)));
  ]

let run () =
  Printf.printf "\n#### Micro — per-step cost (Bechamel OLS estimate)\n%!";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let instances = [ Instance.monotonic_clock ] in
  let tests = make_tests () in
  let table =
    Stats.Table.create ~title:"per-step cost" ~columns:[ "operation"; "ns/step"; "R^2" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (x :: _) -> Printf.sprintf "%.1f" x
            | _ -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "-"
          in
          Stats.Table.add_row table [ name; estimate; r2 ])
        ols)
    tests;
  Stats.Table.print table
