(* Bechamel micro-benchmarks: per-step cost of every process.  All
   recovery times in the experiment tables are quoted in steps; these
   numbers convert them to wall-clock. *)

open Bechamel
open Toolkit
module Ctx = Experiment.Ctx

let make_tests () =
  let n = 1024 in
  let g = Prng.Rng.create ~seed:7 () in
  let system scenario =
    let bins =
      Core.Bins.of_loads
        (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m:n))
    in
    Core.System.create scenario (Core.Scheduling_rule.abku 2) bins
  in
  let sys_a = system Core.Scenario.A in
  let sys_b = system Core.Scenario.B in
  let process = Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n in
  let mv =
    Loadvec.Mutable_vector.of_load_vector (Loadvec.Load_vector.uniform ~n ~m:n)
  in
  let coupled = Core.Coupled.monotone process in
  let cx =
    Loadvec.Mutable_vector.of_load_vector (Loadvec.Load_vector.all_in_one ~n ~m:n)
  in
  let cy =
    Loadvec.Mutable_vector.of_load_vector (Loadvec.Load_vector.uniform ~n ~m:n)
  in
  let orientation = Edgeorient.Orientation.create ~n in
  let class_state = ref (Edgeorient.Class_chain.start ~n:128) in
  [
    Test.make ~name:"system step Id-ABKU[2] (n=1024)"
      (Staged.stage (fun () -> Core.System.step g sys_a));
    Test.make ~name:"system step Ib-ABKU[2] (n=1024)"
      (Staged.stage (fun () -> Core.System.step g sys_b));
    Test.make ~name:"normalized step Id-ABKU[2] (n=1024)"
      (Staged.stage (fun () -> Core.Dynamic_process.step_in_place process g mv));
    Test.make ~name:"coupled step Id-ABKU[2] (n=1024)"
      (Staged.stage (fun () ->
           ignore (coupled.Coupling.Coupled_chain.step g cx cy)));
    Test.make ~name:"greedy edge step (n=1024)"
      (Staged.stage (fun () -> Edgeorient.Orientation.greedy_step g orientation));
    Test.make ~name:"class-chain step (n=128)"
      (Staged.stage (fun () ->
           class_state := Edgeorient.Class_chain.step g !class_state));
    (let w =
       Core.Weighted.static_run g ~n ~m:n ~d:2 ~dist:(Core.Weighted.Exponential 1.)
     in
     Test.make ~name:"weighted dynamic step (n=1024)"
       (Staged.stage (fun () ->
            Core.Weighted.dynamic_step w g ~d:2
              ~dist:(Core.Weighted.Exponential 1.))));
    (let rule = Core.Go_left.make ~d:2 ~n in
     let bins =
       Core.Bins.of_loads
         (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m:n))
     in
     Test.make ~name:"go-left dynamic step (n=1024)"
       (Staged.stage (fun () ->
            Core.Go_left.dynamic_step rule Core.Scenario.A g bins)));
  ]

(* Run [step] under a wall-clock budget in batches; report throughput
   and minor-heap allocation per step. *)
let time_budget_loop ~budget step =
  for _ = 1 to 1_000 do
    step ()
  done;
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let count = ref 0 in
  while Unix.gettimeofday () -. t0 < budget do
    for _ = 1 to 1_000 do
      step ()
    done;
    count := !count + 1_000
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let steps = float_of_int !count in
  (steps /. dt, (Gc.minor_words () -. w0) /. steps)

(* The refactor's headline number: the historical Markov.Chain stepper
   rebuilds a sorted load vector per step (of_load_vector /
   to_load_vector round-trip), while the engine sim mutates one
   preallocated buffer.  The allocation column makes the difference
   visible: the chain allocates O(n) words per step, the sim O(1). *)
let engine_vs_chain ctx =
  Printf.printf
    "\n#### Micro — engine sim vs Markov.Chain, Id-ABKU[2] (n=10_000)\n%!";
  let n = 10_000 in
  let process =
    Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n
  in
  let budget = 0.5 in
  let chain_rate, chain_alloc =
    let g = Prng.Rng.create ~seed:11 () in
    let chain = Core.Dynamic_process.chain process in
    let state = ref (Loadvec.Load_vector.uniform ~n ~m:n) in
    time_budget_loop ~budget (fun () ->
        state := chain.Markov.Chain.step g !state)
  in
  let sim_rate, sim_alloc =
    let g = Prng.Rng.create ~seed:11 () in
    let v =
      Loadvec.Mutable_vector.of_load_vector
        (Loadvec.Load_vector.uniform ~n ~m:n)
    in
    let s = Core.Dynamic_process.sim process v in
    time_budget_loop ~budget (fun () -> Engine.Sim.step s g)
  in
  let table =
    Ctx.table ctx ~title:"engine sim vs chain"
      ~columns:[ "path"; "steps/sec"; "minor words/step" ]
  in
  Ctx.row table
    ~values:[ ("steps_per_sec", chain_rate); ("minor_words", chain_alloc) ]
    [
      "Markov.Chain (immutable)";
      Printf.sprintf "%.0f" chain_rate;
      Printf.sprintf "%.1f" chain_alloc;
    ];
  Ctx.row table
    ~values:[ ("steps_per_sec", sim_rate); ("minor_words", sim_alloc) ]
    [
      "Engine.Sim (in-place)";
      Printf.sprintf "%.0f" sim_rate;
      Printf.sprintf "%.1f" sim_alloc;
    ];
  Ctx.note table (Printf.sprintf "speedup: %.1fx" (sim_rate /. chain_rate));
  Ctx.emit ctx table

(* The representation tentpole's headline number: the array oracle keeps
   the full n-slot sorted load vector hot (removal locates the hit bin
   inside it), while the count-vector stepper walks the O(max_load)
   level counts — a handful of words at n=10^4.  The count backend
   consumes the generator in exactly the oracle's draw order, so its
   max-load trajectory is checked bitwise here before any timing; the
   sampled backend redistributes draws (2 per step via the ABKU cutoff
   table) and is held to equality in law by `repro validate` instead. *)
let repr_comparison ctx =
  Printf.printf
    "\n#### Micro — stepper state backends, Id-ABKU[2] (n=10_000)\n%!";
  let n = 10_000 in
  let process =
    Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n
  in
  let start = Loadvec.Load_vector.uniform ~n ~m:n in
  let trace repr =
    let g = Prng.Rng.create ~seed:0xAB5 () in
    let s = Core.Dynamic_process.sim_repr ~repr process start in
    Array.init 2_000 (fun _ ->
        Engine.Sim.step s g;
        Engine.Sim.probe s)
  in
  if trace Core.Repr.Count_backed <> trace Core.Repr.Array_backed then
    failwith "micro: count-vector trajectory diverges from the array oracle";
  let budget = 0.3 in
  let measure repr =
    let g = Prng.Rng.create ~seed:0xAB5 () in
    let s = Core.Dynamic_process.sim_repr ~repr process start in
    time_budget_loop ~budget (fun () -> Engine.Sim.step s g)
  in
  let rows = List.map (fun repr -> (repr, measure repr)) Core.Repr.all in
  let array_rate =
    match List.assoc_opt Core.Repr.Array_backed rows with
    | Some (rate, _) -> rate
    | None -> assert false
  in
  let table =
    Ctx.table ctx ~title:"stepper state backends"
      ~columns:[ "backend"; "steps/sec"; "minor words/step"; "vs array" ]
  in
  List.iter
    (fun (repr, (rate, alloc)) ->
      Ctx.row table
        ~values:
          [
            ("steps_per_sec", rate);
            ("minor_words", alloc);
            ("speedup_vs_array", rate /. array_rate);
          ]
        [
          Core.Repr.name repr;
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.2f" alloc;
          Printf.sprintf "%.1fx" (rate /. array_rate);
        ])
    rows;
  let speedup_of repr =
    match List.assoc_opt repr rows with
    | Some (rate, _) -> rate /. array_rate
    | None -> 0.
  in
  Ctx.note table
    (Printf.sprintf
       "count-vector speedup over the array oracle: %.1fx (counts, trajectory \
        verified bitwise), %.1fx (counts-sampled, equal in law)"
       (speedup_of Core.Repr.Count_backed)
       (speedup_of Core.Repr.Count_sampled));
  Ctx.emit ctx table

(* The RBB subsystem's backend story, per round rather than per step:
   the array round costs O(n + q(d + log n)), the count-vector round
   O(q(d + L)) on the identical draw sequence (the max-load trajectory
   is checked bitwise here first), and the sampled round rebuilds the
   ABKU cutoff table once per round after the ejection and then spends
   one float draw per ball — equal in law, held to it by
   `repro validate`. *)
let rbb_round_comparison ctx =
  Printf.printf "\n#### Micro — RBB round backends, RBB-d2 (n=10_000)\n%!";
  let n = 10_000 in
  let p = Rbb.make (Rbb.dchoice 2) ~n in
  let start = Loadvec.Load_vector.uniform ~n ~m:n in
  let trace repr =
    let g = Prng.Rng.create ~seed:0xAB5 () in
    let s = Rbb.sim_repr ~repr p start in
    Array.init 500 (fun _ ->
        Engine.Sim.step s g;
        Engine.Sim.probe s)
  in
  if trace Core.Repr.Count_backed <> trace Core.Repr.Array_backed then
    failwith "micro: RBB count-vector trajectory diverges from the array oracle";
  let budget = 0.3 in
  let measure repr =
    let g = Prng.Rng.create ~seed:0xAB5 () in
    let s = Rbb.sim_repr ~repr p start in
    time_budget_loop ~budget (fun () -> Engine.Sim.step s g)
  in
  let rows = List.map (fun repr -> (repr, measure repr)) Core.Repr.all in
  let array_rate =
    match List.assoc_opt Core.Repr.Array_backed rows with
    | Some (rate, _) -> rate
    | None -> assert false
  in
  let table =
    Ctx.table ctx ~title:"rbb round backends"
      ~columns:[ "backend"; "rounds/sec"; "minor words/round"; "vs array" ]
  in
  List.iter
    (fun (repr, (rate, alloc)) ->
      Ctx.row table
        ~values:
          [
            ("rounds_per_sec", rate);
            ("minor_words", alloc);
            ("speedup_vs_array", rate /. array_rate);
          ]
        [
          Core.Repr.name repr;
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.2f" alloc;
          Printf.sprintf "%.1fx" (rate /. array_rate);
        ])
    rows;
  let speedup_of repr =
    match List.assoc_opt repr rows with
    | Some (rate, _) -> rate /. array_rate
    | None -> 0.
  in
  Ctx.note table
    (Printf.sprintf
       "count-vector round speedup over the array oracle: %.1fx (counts, \
        trajectory verified bitwise), %.1fx (counts-sampled, equal in law); \
        a round moves every non-empty bin, so the per-round gap is the \
        per-step gap amortised over q placements"
       (speedup_of Core.Repr.Count_backed)
       (speedup_of Core.Repr.Count_sampled));
  Ctx.emit ctx table

(* Mean seconds per call of [f] under a wall-clock budget.  Calls here
   are ms-scale, so no batching: one warm call, then count whole
   calls. *)
let time_calls ~budget f =
  ignore (Sys.opaque_identity (f ()));
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let count = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < budget do
    ignore (Sys.opaque_identity (f ()));
    incr count;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !count

(* The fused multi-vector kernel against B separate [step_tv] sweeps
   over the same blocked CSR: one traversal of the matrix per batch
   instead of B.  Bit-identity is asserted first — same zero-row skip,
   same row-order accumulation, same chunk-order statistic reduction —
   so the table doubles as a parity check; the timing then shows the
   matrix-traffic amortisation that worst_tv_profile and the batched
   mixing search ride on. *)
let fused_mixing ctx =
  Printf.printf "\n#### Micro — fused multi-vector mixing kernel\n%!";
  let n = 40 in
  let process =
    Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n
  in
  let chain =
    Markov.Exact_builder.build
      (Markov.Exact_builder.enumerated
         (Markov.Partition_space.enumerate ~n ~m:n))
      ~transitions:(Core.Dynamic_process.exact_transitions process)
  in
  let size = Markov.Exact.size chain in
  let pi = Markov.Exact.stationary chain in
  let kern = Markov.Blocked_csr.kernel (Markov.Exact.blocked chain) in
  let budget = 0.2 in
  let table =
    Ctx.table ctx ~title:"fused multi-vector mixing kernel"
      ~columns:
        [ "batch"; "unfused ms/sweep"; "fused ms/sweep"; "speedup" ]
  in
  (* Dense sources (structured perturbations of pi): a point mass would
     let the zero-row skip bypass the traversal entirely, timing only
     the O(|Omega|) zero-fill and statistic scans. *)
  let dense b =
    let v =
      Array.mapi
        (fun j p -> p *. (1. +. (0.5 *. cos (float_of_int (j * (b + 1))))))
        pi
    in
    let total = Array.fold_left ( +. ) 0. v in
    Array.map (fun x -> x /. total) v
  in
  List.iter
    (fun nb ->
      let srcs = Array.init nb dense in
      let dsts = Array.init nb (fun _ -> Array.make size 0.) in
      (* Parity: the batched sweep must reproduce the sequential one to
         the last bit, TVs and evolved vectors alike. *)
      let seq_dsts = Array.init nb (fun _ -> Array.make size 0.) in
      let seq_tvs =
        Array.init nb (fun b ->
            Markov.Blocked_csr.step_tv kern ~pi ~src:srcs.(b)
              ~dst:seq_dsts.(b))
      in
      let tvs = Markov.Blocked_csr.step_tv_multi kern ~pi ~srcs ~dsts in
      for b = 0 to nb - 1 do
        if Int64.bits_of_float tvs.(b) <> Int64.bits_of_float seq_tvs.(b)
        then failwith "micro: fused TV differs from sequential step_tv";
        for j = 0 to size - 1 do
          if
            Int64.bits_of_float dsts.(b).(j)
            <> Int64.bits_of_float seq_dsts.(b).(j)
          then failwith "micro: fused product differs from sequential spmv"
        done
      done;
      let unfused_s =
        time_calls ~budget (fun () ->
            for b = 0 to nb - 1 do
              ignore
                (Markov.Blocked_csr.step_tv kern ~pi ~src:srcs.(b)
                   ~dst:dsts.(b))
            done)
      in
      let fused_s =
        time_calls ~budget (fun () ->
            Markov.Blocked_csr.step_tv_multi kern ~pi ~srcs ~dsts)
      in
      Ctx.row table
        ~values:
          [
            ("batch", float_of_int nb);
            ("unfused_ms", unfused_s *. 1e3);
            ("fused_ms", fused_s *. 1e3);
            ("speedup_vs_unfused", unfused_s /. fused_s);
          ]
        [
          string_of_int nb;
          Printf.sprintf "%.3f" (unfused_s *. 1e3);
          Printf.sprintf "%.3f" (fused_s *. 1e3);
          Printf.sprintf "%.2fx" (unfused_s /. fused_s);
        ])
    [ 4; 8; 16 ];
  Ctx.note table
    (Printf.sprintf
       "all batches verified bitwise against B separate step_tv sweeps \
        (|Omega| = %d, nnz = %d); one matrix traversal per batch is the \
        win worst_tv_profile and the batched mixing search inherit"
       size
       (Markov.Blocked_csr.nnz (Markov.Exact.blocked chain)));
  Ctx.emit ctx table

(* The exact-layer refactor's headline number: dense mixing_time scans
   t = 0,1,2,... with a full |Omega|^3 matrix product per step and
   recomputes the stationary distribution on every call, while the
   sparse path evolves per-start distribution vectors by CSR spmv with
   a doubling-then-bisect crossing search, pruning starts against the
   shared crossing bound, and reuses the chain's cached pi.  The n=8
   cells are the largest of the pre-extension e07 grid; n=12 is the
   largest extended quick cell.  Results must agree exactly — between
   the two implementations and across domain counts. *)
let dense_vs_sparse ctx =
  Printf.printf "\n#### Micro — dense vs sparse Exact.mixing_time\n%!";
  let metrics = Engine.Metrics.create () in
  let budget = 0.3 in
  let table =
    Ctx.table ctx ~title:"dense vs sparse exact mixing time"
      ~columns:[ "cell"; "|Omega|"; "tau"; "dense ms"; "sparse ms"; "speedup" ]
  in
  let headline = ref 0. in
  List.iter
    (fun (scenario, n, is_headline) ->
      let name =
        Printf.sprintf "%s n=%d"
          (match scenario with Core.Scenario.A -> "Id" | B -> "Ib")
          n
      in
      let process =
        Core.Dynamic_process.make scenario (Core.Scheduling_rule.abku 2) ~n
      in
      let chain =
        Markov.Exact_builder.build
          (Markov.Exact_builder.enumerated
             (Markov.Partition_space.enumerate ~n ~m:n))
          ~transitions:(Core.Dynamic_process.exact_transitions process)
      in
      let tau_dense = Markov.Exact.Dense.mixing_time ~eps:0.25 chain in
      let tau_sparse = Markov.Exact.mixing_time ~eps:0.25 ~domains:1 chain in
      let tau_par = Markov.Exact.mixing_time ~eps:0.25 ~domains:2 chain in
      if tau_sparse <> tau_dense then
        failwith
          (Printf.sprintf "micro: sparse tau %d <> dense tau %d (%s)"
             tau_sparse tau_dense name);
      if tau_par <> tau_sparse then
        failwith
          (Printf.sprintf "micro: tau differs across domains (%s)" name);
      let dense_s =
        time_calls ~budget (fun () ->
            Markov.Exact.Dense.mixing_time ~eps:0.25 chain)
      in
      let sparse_s =
        time_calls ~budget (fun () ->
            Markov.Exact.mixing_time ~eps:0.25 ~domains:1 chain)
      in
      Engine.Metrics.add_phase metrics (name ^ " dense call") dense_s;
      Engine.Metrics.add_phase metrics (name ^ " sparse call") sparse_s;
      if is_headline then headline := dense_s /. sparse_s;
      Ctx.row table
        ~values:
          [
            ("state_count", float_of_int (Markov.Exact.size chain));
            ("tau", float_of_int tau_sparse);
            ("dense_ms", dense_s *. 1e3);
            ("sparse_ms", sparse_s *. 1e3);
          ]
        [
          name;
          string_of_int (Markov.Exact.size chain);
          string_of_int tau_sparse;
          Printf.sprintf "%.4f" (dense_s *. 1e3);
          Printf.sprintf "%.4f" (sparse_s *. 1e3);
          Printf.sprintf "%.1fx" (dense_s /. sparse_s);
        ])
    [
      (Core.Scenario.A, 8, false);
      (Core.Scenario.B, 8, true);
      (Core.Scenario.B, 12, false);
    ];
  Ctx.note table
    (Printf.sprintf
       "speedup on the largest pre-extension e07 cell (Ib n=8): %.1fx; taus \
        identical dense/sparse and for domains=1 vs 2"
       !headline);
  Ctx.emit ctx table;
  Engine.Metrics.dump ~label:"micro dense vs sparse"
    (Engine.Metrics.snapshot metrics)

(* The blocked-CSR kernel against the flat sparse product, across block
   sizes and pool sizes, plus the streaming-build story: with [~spill]
   the builder's working set is one block, so the peak heap of a build
   stays flat while the in-memory build holds the whole matrix.  All
   kernel variants must agree bitwise — the column-owner-computes split
   makes the pooled product deterministic — so the table doubles as a
   parity check.  Note: wall-clock speedup from the pool needs real
   cores; on a single-CPU host the domains>1 rows mostly measure
   barrier overhead. *)
let blocked_spmv ctx =
  Printf.printf "\n#### Micro — blocked vs flat spmv, streaming build peak\n%!";
  let n = 30 in
  let process =
    Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n
  in
  let states = Markov.Partition_space.enumerate ~n ~m:n in
  let transitions = Core.Dynamic_process.exact_transitions process in
  let top_heap () = (Gc.quick_stat ()).Gc.top_heap_words in
  (* Spill-first ordering: the spilled build runs against the lower
     high-water mark, so its delta reflects its own (flat) peak rather
     than the in-memory build's. *)
  let spill_path = Filename.temp_file "micro_bcsr" ".blk" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove spill_path with Sys_error _ -> ())
    (fun () ->
      Gc.compact ();
      let t0 = top_heap () in
      let spilled =
        Markov.Exact_builder.build ~block_rows:512 ~spill:spill_path
          (Markov.Exact_builder.enumerated states)
          ~transitions
      in
      let spill_peak = top_heap () - t0 in
      let t1 = top_heap () in
      let chain =
        Markov.Exact_builder.build ~block_rows:512
          (Markov.Exact_builder.enumerated states)
          ~transitions
      in
      let mem_peak = top_heap () - t1 in
      let bcsr = Markov.Exact.blocked chain in
      let nnz = Markov.Blocked_csr.nnz bcsr in
      let build_table =
        Ctx.table ctx ~title:"streaming build peak heap"
          ~columns:[ "build"; "|Omega|"; "nnz"; "peak heap growth (words)" ]
      in
      let build_row name peak =
        Ctx.row build_table
          ~values:
            [
              ("state_count", float_of_int (Array.length states));
              ("nnz", float_of_int nnz);
              ("peak_heap_words", float_of_int peak);
            ]
          [
            name;
            string_of_int (Array.length states);
            string_of_int nnz;
            string_of_int peak;
          ]
      in
      build_row "spill (one block resident)" spill_peak;
      build_row "in-memory (all blocks)" mem_peak;
      Ctx.emit ctx build_table;
      Markov.Blocked_csr.close (Markov.Exact.blocked spilled);
      (* spmv parity + cost across layouts and pool sizes. *)
      let flat = Markov.Exact.sparse chain in
      let size = Array.length states in
      let src = Array.make size (1. /. float_of_int size) in
      let budget = 0.2 in
      let expect = Markov.Sparse.spmv src flat in
      let table =
        Ctx.table ctx ~title:"blocked vs flat spmv"
          ~columns:[ "kernel"; "blocks"; "domains"; "us/spmv"; "vs flat" ]
      in
      let flat_s =
        let dst = Array.make size 0. in
        time_calls ~budget (fun () ->
            Markov.Sparse.spmv_into flat ~src ~dst)
      in
      let emit_row name ~blocks ~domains seconds =
        Ctx.row table
          ~values:
            [
              ("blocks", float_of_int blocks);
              ("domains", float_of_int domains);
              ("us_per_spmv", seconds *. 1e6);
            ]
          [
            name;
            string_of_int blocks;
            string_of_int domains;
            Printf.sprintf "%.1f" (seconds *. 1e6);
            Printf.sprintf "%.2fx" (flat_s /. seconds);
          ]
      in
      emit_row "flat CSR" ~blocks:1 ~domains:1 flat_s;
      let check dst =
        if not (Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-12) dst expect)
        then failwith "micro: blocked spmv disagrees with flat spmv"
      in
      List.iter
        (fun block_rows ->
          let b = Markov.Blocked_csr.of_sparse ~block_rows flat in
          List.iter
            (fun domains ->
              let run_with kernel =
                let dst = Array.make size 0. in
                Markov.Blocked_csr.spmv kernel ~src ~dst;
                check dst;
                time_calls ~budget (fun () ->
                    Markov.Blocked_csr.spmv kernel ~src ~dst)
              in
              let seconds =
                if domains = 1 then run_with (Markov.Blocked_csr.kernel b)
                else
                  Parallel.Pool.with_pool ~domains (fun pool ->
                      run_with (Markov.Blocked_csr.kernel ~pool b))
              in
              emit_row "blocked CSR"
                ~blocks:(Markov.Blocked_csr.block_count b)
                ~domains seconds)
            (if block_rows >= size then [ 1 ] else [ 1; 2; 4 ]))
        [ size; 512 ];
      Ctx.note table
        "all kernels verified bitwise against the flat product; pooled rows \
         need >1 physical core to show wall-clock speedup";
      Ctx.emit ctx table)

(* Evidence for the Obs overhead contract: while tracing is disabled,
   every recording entry point is one load-and-branch with no
   allocation, so instrumenting the step loops costs well under 2% of
   their throughput.  Each row pairs an instrumentation call with the
   same baseline work (a ref increment), so the delta to the baseline
   row is the per-call cost. *)
let obs_overhead ctx =
  Printf.printf "\n#### Micro — disabled-path instrumentation overhead\n%!";
  let budget = 0.2 in
  let table =
    Ctx.table ctx
      ~title:
        (if Obs.enabled () then "obs overhead (tracing ON)"
         else "obs disabled-path overhead")
      ~columns:[ "operation"; "ns/op"; "minor words/op" ]
  in
  let c = Obs.Counter.make "micro.overhead_counter" in
  let h = Obs.Histogram.make "micro.overhead_hist" in
  let x = ref 0 in
  let row name f =
    let rate, alloc = time_budget_loop ~budget f in
    Ctx.row table
      ~values:[ ("ns_per_op", 1e9 /. rate); ("minor_words", alloc) ]
      [ name; Printf.sprintf "%.1f" (1e9 /. rate); Printf.sprintf "%.2f" alloc ]
  in
  row "baseline (ref incr)" (fun () -> incr x);
  row "  + Counter.add" (fun () ->
      incr x;
      Obs.Counter.add c 1);
  row "  + Histogram.observe" (fun () ->
      incr x;
      Obs.Histogram.observe h !x);
  row "  + with_span" (fun () ->
      incr x;
      Obs.with_span "micro.overhead_span" (fun () -> ()));
  Ctx.note table
    "contract: with tracing off, each entry point is one load-and-branch \
     and allocates nothing; quantile and merge work on snapshots only, so \
     the record path is unchanged by the percentile additions";
  Ctx.emit ctx table

(* The serve daemon's hot path in isolation: [Serve.Cluster.apply_batch]
   on a mixed insert/remove/probe stream (the `repro load` default mix),
   across shard counts and batch sizes.  Probes are barriers that flush
   the per-shard queues, so batch size controls how much routing and
   flush fan-out each query amortises; rows with shards > 1 attach a
   pool, whose wall-clock gain needs real cores.  Socket and JSON
   framing costs are excluded — compare with `repro load` against a
   running daemon for the end-to-end number. *)
let serve_throughput ctx =
  Printf.printf "\n#### Micro — serve cluster throughput\n%!";
  let n = 16_384 in
  let budget = 0.15 in
  let g = Prng.Rng.create ~seed:0x5E57E () in
  let batch_of size =
    Array.init size (fun _ ->
        match Prng.Rng.int g 100 with
        | r when r < 45 ->
            Engine.Event.Insert
              (Int64.to_int (Int64.shift_right_logical (Prng.Rng.bits64 g) 2))
        | r when r < 90 -> Engine.Event.Remove
        | _ -> Engine.Event.Probe)
  in
  let table =
    Ctx.table ctx ~title:"serve cluster throughput, in process"
      ~columns:
        [ "config"; "kops/s"; "batch p50(us)"; "batch p99(us)";
          "batch p999(us)" ]
  in
  List.iter
    (fun shards ->
      let config =
        {
          Serve.Cluster.n;
          m = 2 * n;
          shards;
          process = Serve.Process.Sequential;
          scenario = Core.Scenario.A;
          rule = Core.Scheduling_rule.abku 2;
          repr = Core.Repr.Array_backed;
          seed = 0xC10C;
        }
      in
      let rows pool =
        let cluster = Serve.Cluster.create ?pool config in
        List.iter
          (fun size ->
            let batch = batch_of size in
            ignore (Sys.opaque_identity (Serve.Cluster.apply_batch cluster batch));
            let lat = Obs.Hist.create () in
            let t0 = Unix.gettimeofday () in
            let events = ref 0 in
            while Unix.gettimeofday () -. t0 < budget do
              let t1 = Obs.Clock.now_ns () in
              ignore
                (Sys.opaque_identity (Serve.Cluster.apply_batch cluster batch));
              Obs.Hist.observe lat (Int64.to_int (Obs.Clock.ns_since t1));
              events := !events + size
            done;
            let rate =
              float_of_int !events /. (Unix.gettimeofday () -. t0)
            in
            let snap = Obs.Hist.snapshot lat in
            let p q = Obs.Hist.quantile snap q /. 1e3 in
            Ctx.row table
              ~values:
                [
                  ("shards", float_of_int shards);
                  ("batch", float_of_int size);
                  ("ops_per_sec", rate);
                  ("batch_p50_us", p 0.5);
                  ("batch_p99_us", p 0.99);
                  ("batch_p999_us", p 0.999);
                ]
              [
                Printf.sprintf "%d shards x %d" shards size;
                Printf.sprintf "%.0f" (rate /. 1e3);
                Printf.sprintf "%.1f" (p 0.5);
                Printf.sprintf "%.1f" (p 0.99);
                Printf.sprintf "%.1f" (p 0.999);
              ])
          [ 64; 512; 4096 ]
      in
      if shards = 1 then rows None
      else
        Parallel.Pool.with_pool ~domains:(min shards 4) (fun pool ->
            rows (Some pool)))
    [ 1; 2; 4; 8 ];
  Ctx.note table
    "in-process Cluster.apply_batch, mixed 45/45/10 insert/remove/probe; \
     excludes socket and JSON framing (see `repro load`); batch percentiles \
     are whole-batch apply latency; pooled rows need >1 physical core to \
     show wall-clock speedup";
  Ctx.emit ctx table

let run ctx =
  repr_comparison ctx;
  rbb_round_comparison ctx;
  fused_mixing ctx;
  dense_vs_sparse ctx;
  blocked_spmv ctx;
  engine_vs_chain ctx;
  serve_throughput ctx;
  obs_overhead ctx;
  Printf.printf "\n#### Micro — per-step cost (Bechamel OLS estimate)\n%!";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let instances = [ Instance.monotonic_clock ] in
  let tests = make_tests () in
  let table =
    Ctx.table ctx ~title:"per-step cost" ~columns:[ "operation"; "ns/step"; "R^2" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (x :: _) -> Printf.sprintf "%.1f" x
            | _ -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "-"
          in
          Ctx.row table [ name; estimate; r2 ])
        ols)
    tests;
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"micro"
    ~claim:"Bechamel per-step costs and engine/exact-layer speedups"
    ~tags:[ "micro"; "perf" ]
    ~default:false ~auto_heading:false run
