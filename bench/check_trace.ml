(* Validate a Chrome/Perfetto trace-event file written by --trace.

     dune exec bench/check_trace.exe -- t.json

   Checks the structural contract the Perfetto UI relies on: an object
   with a "traceEvents" array whose entries carry name / ph / ts / pid /
   tid with the right types, complete ("X") events a duration, and
   counter ("C") events a numeric value argument.  Exits non-zero with a
   message on the first violation, so CI can gate on it. *)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "check_trace: %s\n%!" msg;
      exit 1)
    fmt

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

open Experiment

let number = function
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float x) -> Some x
  | _ -> None

let check_event i ev =
  let ctx fmt = Printf.ksprintf (fun s -> s) fmt in
  let get k = Json.member k ev in
  (match get "name" with
  | Some (Json.String s) when s <> "" -> ()
  | _ -> fail "%s" (ctx "event %d: missing or empty \"name\"" i));
  let ph =
    match get "ph" with
    | Some (Json.String ("X" | "i" | "C" as p)) -> p
    | Some (Json.String p) ->
        fail "%s" (ctx "event %d: unexpected phase %S" i p)
    | _ -> fail "%s" (ctx "event %d: missing \"ph\"" i)
  in
  (match number (get "ts") with
  | Some ts when ts >= 0. -> ()
  | Some _ -> fail "%s" (ctx "event %d: negative \"ts\"" i)
  | None -> fail "%s" (ctx "event %d: missing numeric \"ts\"" i));
  (match get "pid" with
  | Some (Json.Int _) -> ()
  | _ -> fail "%s" (ctx "event %d: missing integer \"pid\"" i));
  (match get "tid" with
  | Some (Json.Int _) -> ()
  | _ -> fail "%s" (ctx "event %d: missing integer \"tid\"" i));
  (match ph with
  | "X" -> (
      match number (get "dur") with
      | Some d when d >= 0. -> ()
      | _ -> fail "%s" (ctx "event %d: \"X\" event needs a \"dur\" >= 0" i))
  | "C" -> (
      match number (Option.bind (get "args") (Json.member "value")) with
      | Some _ -> ()
      | None ->
          fail "%s" (ctx "event %d: \"C\" event needs args.value" i))
  | _ -> ())

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ -> fail "usage: check_trace.exe TRACE.json"
  in
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List evs) -> evs
    | _ -> fail "%s: no \"traceEvents\" array" path
  in
  if events = [] then fail "%s: empty trace" path;
  List.iteri check_event events;
  Printf.printf "%s: OK, %d events\n" path (List.length events)
