(* Validate a Chrome/Perfetto trace-event file written by --trace.

     dune exec bench/check_trace.exe -- t.json [--serve]

   Checks the structural contract the Perfetto UI relies on: an object
   with a "traceEvents" array whose entries carry name / ph / ts / pid /
   tid with the right types, complete ("X") events a duration, and
   counter ("C") events a numeric value argument.  Exits non-zero with a
   message on the first violation, so CI can gate on it.

   With --serve it additionally checks the serve daemon's sampled
   request-tracing contract: at least one "serve.request" span, each
   containing a "serve.decode" child on the same track; complete spans
   on each track properly nested (no partial overlap — the daemon
   samples at most one request per round precisely so this holds); and
   per track the span start timestamps non-decreasing in file order
   (spans carry the sequence number of their begin_span, so the merged
   (track, seq) order is begin order). *)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "check_trace: %s\n%!" msg;
      exit 1)
    fmt

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

open Experiment

let number = function
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float x) -> Some x
  | _ -> None

let check_event i ev =
  let ctx fmt = Printf.ksprintf (fun s -> s) fmt in
  let get k = Json.member k ev in
  (match get "name" with
  | Some (Json.String s) when s <> "" -> ()
  | _ -> fail "%s" (ctx "event %d: missing or empty \"name\"" i));
  let ph =
    match get "ph" with
    | Some (Json.String ("X" | "i" | "C" as p)) -> p
    | Some (Json.String p) ->
        fail "%s" (ctx "event %d: unexpected phase %S" i p)
    | _ -> fail "%s" (ctx "event %d: missing \"ph\"" i)
  in
  (match number (get "ts") with
  | Some ts when ts >= 0. -> ()
  | Some _ -> fail "%s" (ctx "event %d: negative \"ts\"" i)
  | None -> fail "%s" (ctx "event %d: missing numeric \"ts\"" i));
  (match get "pid" with
  | Some (Json.Int _) -> ()
  | _ -> fail "%s" (ctx "event %d: missing integer \"pid\"" i));
  (match get "tid" with
  | Some (Json.Int _) -> ()
  | _ -> fail "%s" (ctx "event %d: missing integer \"tid\"" i));
  (match ph with
  | "X" -> (
      match number (get "dur") with
      | Some d when d >= 0. -> ()
      | _ -> fail "%s" (ctx "event %d: \"X\" event needs a \"dur\" >= 0" i))
  | "C" -> (
      match number (Option.bind (get "args") (Json.member "value")) with
      | Some _ -> ()
      | None ->
          fail "%s" (ctx "event %d: \"C\" event needs args.value" i))
  | _ -> ())

(* ---- serve request-tracing contract ---- *)

type span = { s_name : string; s_tid : int; s_ts : float; s_end : float }

(* Timestamps round-trip through microseconds with 3 decimals, so
   comparisons tolerate one-nanosecond rounding. *)
let eps = 0.0015

(* Complete ("X") spans in file order, which is emission (end) order. *)
let spans_of events =
  List.filter_map
    (fun ev ->
      match Json.member "ph" ev with
      | Some (Json.String "X") ->
          let name =
            match Json.member "name" ev with
            | Some (Json.String s) -> s
            | _ -> "?"
          in
          let tid =
            match Json.member "tid" ev with Some (Json.Int t) -> t | _ -> 0
          in
          let ts = Option.value ~default:0. (number (Json.member "ts" ev)) in
          let dur = Option.value ~default:0. (number (Json.member "dur" ev)) in
          Some { s_name = name; s_tid = tid; s_ts = ts; s_end = ts +. dur }
      | _ -> None)
    events

let contains outer inner =
  outer.s_tid = inner.s_tid
  && inner.s_ts >= outer.s_ts -. eps
  && inner.s_end <= outer.s_end +. eps

let check_serve events =
  let spans = spans_of events in
  let tids = List.sort_uniq compare (List.map (fun s -> s.s_tid) spans) in
  (* Start timestamps non-decreasing per track in file order (file
     order is (track, seq) = begin order). *)
  List.iter
    (fun tid ->
      let starts =
        List.filter_map
          (fun s -> if s.s_tid = tid then Some s.s_ts else None)
          spans
      in
      ignore
        (List.fold_left
           (fun prev ts ->
             if ts < prev -. eps then
               fail
                 "track %d: span timestamps go backwards (%.3f after %.3f)"
                 tid ts prev;
             Float.max prev ts)
           neg_infinity starts))
    tids;
  (* Proper nesting per track: sweep spans by start time (ties: longer
     first) with a stack of enclosing intervals. *)
  List.iter
    (fun tid ->
      let track = List.filter (fun s -> s.s_tid = tid) spans in
      let sorted =
        List.sort
          (fun a b ->
            match compare a.s_ts b.s_ts with
            | 0 -> compare b.s_end a.s_end
            | c -> c)
          track
      in
      ignore
        (List.fold_left
           (fun stack s ->
             let stack =
               List.filter (fun top -> s.s_ts < top.s_end -. eps) stack
             in
             (match stack with
             | top :: _ when s.s_end > top.s_end +. eps ->
                 fail
                   "track %d: %S [%.3f, %.3f] partially overlaps %S [%.3f, \
                    %.3f]"
                   tid s.s_name s.s_ts s.s_end top.s_name top.s_ts top.s_end
             | _ -> ());
             s :: stack)
           [] sorted))
    tids;
  (* Every sampled request carries its decode child. *)
  let requests = List.filter (fun s -> s.s_name = "serve.request") spans in
  if requests = [] then fail "no \"serve.request\" span in the trace";
  let decodes = List.filter (fun s -> s.s_name = "serve.decode") spans in
  List.iter
    (fun r ->
      if not (List.exists (fun d -> contains r d) decodes) then
        fail "serve.request [%.3f, %.3f] has no serve.decode child" r.s_ts
          r.s_end)
    requests;
  Printf.printf
    "serve contract: OK, %d sampled requests (%d spans, %d tracks)\n"
    (List.length requests) (List.length spans) (List.length tids)

let () =
  let path, serve =
    match Sys.argv with
    | [| _; p |] -> (p, false)
    | [| _; "--serve"; p |] | [| _; p; "--serve" |] -> (p, true)
    | _ -> fail "usage: check_trace.exe TRACE.json [--serve]"
  in
  let doc =
    match Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List evs) -> evs
    | _ -> fail "%s: no \"traceEvents\" array" path
  in
  if events = [] then fail "%s: empty trace" path;
  List.iteri check_event events;
  if serve then check_serve events;
  Printf.printf "%s: OK, %d events\n" path (List.length events)
