(* Wall-clock perf gate: compare a BENCH_RESULTS.json document against
   the committed BENCH_BASELINE.json and fail on a regression.

   Usage: perf_gate.exe BASELINE CURRENT [--ratio R] [--min-wall S]

   An experiment regresses when its wall time exceeds [ratio] x the
   baseline AND both sides are above the [min-wall] floor — machine
   noise dominates below a few hundredths of a second.  The default
   ratio is 2x: loose enough for CI-runner speed variance, tight enough
   that an O(n) loop turned O(n^2) or a kernel falling off its fast
   path trips it.  Experiments whose wall time is structurally noisier
   carry a per-benchmark override in the baseline document's "gate"
   section:

     "gate": {
       "ratios": { "e8": 3.0 },
       "floors": [
         { "id": "micro", "table": "stepper state backends",
           "row": "counts", "value": "speedup_vs_array", "min": 5.0 }
       ],
       "ceilings": [
         { "id": "micro", "table": "serve cluster throughput, in process",
           "row": "1 shards x 512", "value": "batch_p99_us", "max": 20000.0 }
       ]
     }

   [ratios] overrides the wall-time ratio for one experiment id.
   [floors] are value gates on table cells of the CURRENT document: the
   named row (or, with "row" omitted, the best row) of the named table
   must carry [value] >= [min] — this is how the representation-backend
   and fused-kernel speedups are held above their committed claims.
   [ceilings] are the mirror image ([value] <= [max], best = lowest
   row), gating latency percentiles that must not regress upward.  A
   floor or ceiling whose experiment is absent from the current
   document is reported and skipped, so the same baseline serves both
   the pinned e1/e8 run and the micro run.  PERF_GATE_RATIO and
   PERF_GATE_MIN_WALL override the defaults in CI without a rebuild.

   Experiments present on only one side are reported but do not fail
   the gate: the baseline is refreshed by committing a new file, and a
   newly added experiment must not break the gate retroactively. *)

let default_ratio = 2.0
let default_min_wall = 0.05

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("perf_gate: " ^ s); exit 2) fmt

let read_doc path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> fail "cannot read %s: %s" path msg
  | raw -> (
      match Experiment.Json.of_string raw with
      | Ok doc -> doc
      | Error msg -> fail "%s: %s" path msg)

let number = function
  | Experiment.Json.Float f -> Some f
  | Experiment.Json.Int i -> Some (float_of_int i)
  | _ -> None

(* id -> wall_seconds for every experiment in the document. *)
let wall_times doc =
  match Experiment.Json.member "experiments" doc with
  | Some (Experiment.Json.List exps) ->
      List.filter_map
        (fun exp ->
          match
            ( Experiment.Json.member "id" exp,
              Experiment.Json.member "wall_seconds" exp )
          with
          | Some (Experiment.Json.String id), Some w ->
              Option.map (fun w -> (id, w)) (number w)
          | _ -> None)
        exps
  | _ -> fail "document has no \"experiments\" list"

(* The baseline's optional "gate" section.  Floors and ceilings share
   one shape; [b_dir] says which way the limit cuts. *)
type direction = Floor | Ceiling

type bound = {
  b_dir : direction;
  b_id : string;
  b_table : string;
  b_row : string option;
  b_value : string;
  b_limit : float;
}

let bounds_of g ~key ~limit_key ~dir =
  match Experiment.Json.member key g with
  | Some (Experiment.Json.List fs) ->
      List.map
        (fun f ->
          let str k =
            match Experiment.Json.member k f with
            | Some (Experiment.Json.String s) -> Some s
            | _ -> None
          in
          match
            ( str "id",
              str "table",
              str "value",
              Option.bind (Experiment.Json.member limit_key f) number )
          with
          | Some b_id, Some b_table, Some b_value, Some b_limit ->
              { b_dir = dir; b_id; b_table; b_row = str "row"; b_value;
                b_limit }
          | _ ->
              fail
                "gate.%s entries need string \"id\", \"table\", \"value\" \
                 and numeric \"%s\""
                key limit_key)
        fs
  | Some _ -> fail "gate.%s must be a list" key
  | None -> []

let gate_of doc =
  match Experiment.Json.member "gate" doc with
  | None -> ([], [])
  | Some g ->
      let ratios =
        match Experiment.Json.member "ratios" g with
        | Some (Experiment.Json.Obj kvs) ->
            List.filter_map
              (fun (id, v) -> Option.map (fun r -> (id, r)) (number v))
              kvs
        | Some _ -> fail "gate.ratios must be an object of id -> ratio"
        | None -> []
      in
      let bounds =
        bounds_of g ~key:"floors" ~limit_key:"min" ~dir:Floor
        @ bounds_of g ~key:"ceilings" ~limit_key:"max" ~dir:Ceiling
      in
      (ratios, bounds)

let direction_name = function Floor -> "floor" | Ceiling -> "ceiling"

(* The [bound.b_value] entries of the named table's rows, as
   (first-cell, value) pairs — [None] when the experiment is absent
   from the document (not an error: the bound then does not apply to
   this run). *)
let bound_candidates doc bound =
  let exps =
    match Experiment.Json.member "experiments" doc with
    | Some (Experiment.Json.List exps) -> exps
    | _ -> []
  in
  match
    List.find_opt
      (fun exp ->
        Experiment.Json.member "id" exp
        = Some (Experiment.Json.String bound.b_id))
      exps
  with
  | None -> None
  | Some exp ->
      let tables =
        match Experiment.Json.member "tables" exp with
        | Some (Experiment.Json.List ts) -> ts
        | _ -> []
      in
      let table =
        match
          List.find_opt
            (fun t ->
              Experiment.Json.member "title" t
              = Some (Experiment.Json.String bound.b_table))
            tables
        with
        | Some t -> t
        | None ->
            fail "%s on %s: no table titled %S in current document"
              (direction_name bound.b_dir) bound.b_id bound.b_table
      in
      let rows =
        match Experiment.Json.member "rows" table with
        | Some (Experiment.Json.List rows) -> rows
        | _ -> []
      in
      Some
        (List.filter_map
           (fun row ->
             let label =
               match Experiment.Json.member "cells" row with
               | Some (Experiment.Json.List (Experiment.Json.String c :: _))
                 ->
                   c
               | _ -> "?"
             in
             match Experiment.Json.member "values" row with
             | Some vals ->
                 Option.bind (Experiment.Json.member bound.b_value vals)
                   (fun v -> Option.map (fun v -> (label, v)) (number v))
             | None -> None)
           rows)

let check_bound doc bound =
  let name = direction_name bound.b_dir in
  match bound_candidates doc bound with
  | None ->
      Printf.printf "%-7s %-10s %-32s %8s  skipped (not in current)\n" name
        bound.b_id bound.b_value "-";
      false
  | Some candidates ->
      let relevant =
        match bound.b_row with
        | None -> candidates
        | Some r -> List.filter (fun (label, _) -> label = r) candidates
      in
      if relevant = [] then
        fail "%s on %s: table %S has no row carrying %S%s" name bound.b_id
          bound.b_table bound.b_value
          (match bound.b_row with
          | Some r -> Printf.sprintf " at row %S" r
          | None -> "");
      let best =
        match bound.b_dir with
        | Floor ->
            List.fold_left (fun acc (_, v) -> Float.max acc v) neg_infinity
              relevant
        | Ceiling ->
            List.fold_left (fun acc (_, v) -> Float.min acc v) infinity
              relevant
      in
      let ok =
        match bound.b_dir with
        | Floor -> best >= bound.b_limit
        | Ceiling -> best <= bound.b_limit
      in
      Printf.printf "%-7s %-10s %-32s %8.2f  %s (%s %.2f%s)\n" name
        bound.b_id bound.b_value best
        (if ok then "ok"
         else match bound.b_dir with
           | Floor -> "BELOW FLOOR"
           | Ceiling -> "ABOVE CEILING")
        (match bound.b_dir with Floor -> "min" | Ceiling -> "max")
        bound.b_limit
        (match bound.b_row with
        | Some r -> Printf.sprintf ", row %s" r
        | None -> ", best row");
      not ok

let env_float name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some v when v > 0. -> v
      | _ -> fail "%s must be a positive number, got %S" name s)

let () =
  let args = Array.to_list Sys.argv in
  let rec parse paths ratio min_wall = function
    | [] -> (paths, ratio, min_wall)
    | "--ratio" :: v :: rest -> (
        match float_of_string_opt v with
        | Some r when r > 0. -> parse paths r min_wall rest
        | _ -> fail "--ratio needs a positive number")
    | "--min-wall" :: v :: rest -> (
        match float_of_string_opt v with
        | Some w when w >= 0. -> parse paths ratio w rest
        | _ -> fail "--min-wall needs a non-negative number")
    | p :: rest -> parse (p :: paths) ratio min_wall rest
  in
  let paths, ratio, min_wall =
    parse []
      (env_float "PERF_GATE_RATIO" default_ratio)
      (env_float "PERF_GATE_MIN_WALL" default_min_wall)
      (List.tl args)
  in
  let baseline_path, current_path =
    match List.rev paths with
    | [ b; c ] -> (b, c)
    | _ -> fail "usage: perf_gate.exe BASELINE CURRENT [--ratio R] [--min-wall S]"
  in
  let baseline_doc = read_doc baseline_path in
  let current_doc = read_doc current_path in
  let baseline = wall_times baseline_doc in
  let current = wall_times current_doc in
  let ratios, bounds = gate_of baseline_doc in
  let ratio_for id =
    match List.assoc_opt id ratios with Some r -> r | None -> ratio
  in
  Printf.printf "perf gate: ratio %.2fx (%d override%s), floor %.3fs (%s vs %s)\n"
    ratio (List.length ratios)
    (if List.length ratios = 1 then "" else "s")
    min_wall baseline_path current_path;
  Printf.printf "%-12s %12s %12s %8s  %s\n" "experiment" "baseline(s)"
    "current(s)" "ratio" "verdict";
  let regressions = ref 0 in
  List.iter
    (fun (id, base) ->
      match List.assoc_opt id current with
      | None -> Printf.printf "%-12s %12.3f %12s %8s  missing from current\n" id base "-" "-"
      | Some cur ->
          let limit = ratio_for id in
          let r = if base > 0. then cur /. base else infinity in
          let regressed = cur > min_wall && base > 0. && r > limit in
          if regressed then incr regressions;
          Printf.printf "%-12s %12.3f %12.3f %8.2f  %s\n" id base cur r
            (if regressed then
               Printf.sprintf "REGRESSED (limit %.2fx)" limit
             else if cur <= min_wall then "ok (below floor)"
             else "ok"))
    baseline;
  List.iter
    (fun (id, cur) ->
      if not (List.mem_assoc id baseline) then
        Printf.printf "%-12s %12s %12.3f %8s  new (no baseline)\n" id "-" cur "-")
    current;
  let bound_failures =
    List.fold_left
      (fun acc bound -> if check_bound current_doc bound then acc + 1 else acc)
      0 bounds
  in
  if !regressions > 0 || bound_failures > 0 then begin
    Printf.printf
      "perf gate: %d wall-time regression(s), %d floor/ceiling failure(s)\n"
      !regressions bound_failures;
    exit 1
  end;
  print_endline "perf gate: ok"
