(* Wall-clock perf gate: compare a BENCH_RESULTS.json document against
   the committed BENCH_BASELINE.json and fail on a regression.

   Usage: perf_gate.exe BASELINE CURRENT [--ratio R] [--min-wall S]

   An experiment regresses when its wall time exceeds [ratio] x the
   baseline AND both sides are above the [min-wall] floor — machine
   noise dominates below a few hundredths of a second, and CI runners
   are slower than the machine that recorded the baseline, so the
   default ratio is deliberately loose (4x): the gate exists to catch
   order-of-magnitude accidents (an O(n) loop turned O(n^2), a kernel
   falling off its fast path), not 20% drift.  PERF_GATE_RATIO and
   PERF_GATE_MIN_WALL override the defaults in CI without a rebuild.

   Experiments present on only one side are reported but do not fail
   the gate: the baseline is refreshed by committing a new file, and a
   newly added experiment must not break the gate retroactively. *)

let default_ratio = 4.0
let default_min_wall = 0.05

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("perf_gate: " ^ s); exit 2) fmt

let read_doc path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> fail "cannot read %s: %s" path msg
  | raw -> (
      match Experiment.Json.of_string raw with
      | Ok doc -> doc
      | Error msg -> fail "%s: %s" path msg)

(* id -> wall_seconds for every experiment in the document. *)
let wall_times doc =
  match Experiment.Json.member "experiments" doc with
  | Some (Experiment.Json.List exps) ->
      List.filter_map
        (fun exp ->
          match
            ( Experiment.Json.member "id" exp,
              Experiment.Json.member "wall_seconds" exp )
          with
          | Some (Experiment.Json.String id), Some (Experiment.Json.Float w) ->
              Some (id, w)
          | Some (Experiment.Json.String id), Some (Experiment.Json.Int w) ->
              Some (id, float_of_int w)
          | _ -> None)
        exps
  | _ -> fail "document has no \"experiments\" list"

let env_float name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some v when v > 0. -> v
      | _ -> fail "%s must be a positive number, got %S" name s)

let () =
  let args = Array.to_list Sys.argv in
  let rec parse paths ratio min_wall = function
    | [] -> (paths, ratio, min_wall)
    | "--ratio" :: v :: rest -> (
        match float_of_string_opt v with
        | Some r when r > 0. -> parse paths r min_wall rest
        | _ -> fail "--ratio needs a positive number")
    | "--min-wall" :: v :: rest -> (
        match float_of_string_opt v with
        | Some w when w >= 0. -> parse paths ratio w rest
        | _ -> fail "--min-wall needs a non-negative number")
    | p :: rest -> parse (p :: paths) ratio min_wall rest
  in
  let paths, ratio, min_wall =
    parse []
      (env_float "PERF_GATE_RATIO" default_ratio)
      (env_float "PERF_GATE_MIN_WALL" default_min_wall)
      (List.tl args)
  in
  let baseline_path, current_path =
    match List.rev paths with
    | [ b; c ] -> (b, c)
    | _ -> fail "usage: perf_gate.exe BASELINE CURRENT [--ratio R] [--min-wall S]"
  in
  let baseline = wall_times (read_doc baseline_path) in
  let current = wall_times (read_doc current_path) in
  Printf.printf "perf gate: ratio %.2fx, floor %.3fs (%s vs %s)\n" ratio
    min_wall baseline_path current_path;
  Printf.printf "%-12s %12s %12s %8s  %s\n" "experiment" "baseline(s)"
    "current(s)" "ratio" "verdict";
  let regressions = ref 0 in
  List.iter
    (fun (id, base) ->
      match List.assoc_opt id current with
      | None -> Printf.printf "%-12s %12.3f %12s %8s  missing from current\n" id base "-" "-"
      | Some cur ->
          let r = if base > 0. then cur /. base else infinity in
          let regressed = cur > min_wall && base > 0. && r > ratio in
          if regressed then incr regressions;
          Printf.printf "%-12s %12.3f %12.3f %8.2f  %s\n" id base cur r
            (if regressed then "REGRESSED"
             else if cur <= min_wall then "ok (below floor)"
             else "ok"))
    baseline;
  List.iter
    (fun (id, cur) ->
      if not (List.mem_assoc id baseline) then
        Printf.printf "%-12s %12s %12.3f %8s  new (no baseline)\n" id "-" cur "-")
    current;
  if !regressions > 0 then begin
    Printf.printf "perf gate: %d regression(s) beyond %.2fx\n" !regressions ratio;
    exit 1
  end;
  print_endline "perf gate: ok"
