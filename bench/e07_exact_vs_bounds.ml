(* E7 — soundness of the whole pipeline on small state spaces: the exact
   mixing time tau(1/4) (transition-matrix computation on the partition
   space Omega_m), the measured coalescence time of the coupling, and the
   closed-form path-coupling bounds, side by side.

   The ordering exact <= bound must hold; coalescence tracks the exact
   value from a fixed extremal pair.

   The sparse exact layer (CSR matrix, cached stationary distribution,
   doubling-then-bisect crossing search) makes state spaces several
   times larger than the historical dense ceiling affordable; the
   blocked streaming build plus designated extremal starts push the
   full-mode grid to n = m = 46 (|Omega| = 105558) for scenario A.
   Each cell reports |Omega| in the table and its build/mix wall-clock
   through Engine.Metrics phases (dump with BENCH_METRICS=1), keeping
   the default table byte-identical across runs and domain counts.
   With --checkpoint the per-cell mixing search snapshots its progress
   and a killed run resumes with --resume, reproducing the
   uninterrupted rows exactly. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let eps = 0.25

(* Above this |Omega| the mixing search runs from the designated
   extremal starts only (one full bin, balanced): the monotone coupling
   puts every other start between them, so they realize the worst-case
   TV distance while the search cost drops from |Omega| starts to 2. *)
let all_starts_ceiling = 2000

(* Scenario B mixes like n * m log m (Claim 5.3), so its cells stop at
   the historical full ceiling; the extended sizes are scenario A. *)
let scenario_b_ceiling = 14

let run ctx =
  let reps = Ctx.reps ctx in
  List.iter
    (fun scenario ->
      let metrics = Engine.Metrics.create () in
      let table =
        Ctx.table ctx
          ~title:
            (Printf.sprintf
               "E7: %s-ABKU[2], exact tau(%.2f) on Omega_m vs bound"
               (match scenario with Core.Scenario.A -> "Id" | B -> "Ib")
               eps)
          ~columns:
            [
              "n=m"; "|Omega|"; "exact tau"; "median coalescence"; "bound";
              "E[max load] exact"; "fluid pred";
            ]
      in
      let scen_tag =
        match scenario with Core.Scenario.A -> "id" | B -> "ib"
      in
      Ctx.iter_cells ctx
        (fun n ->
          if scenario = Core.Scenario.B && n > scenario_b_ceiling then ()
          else begin
          let m = n in
          let process = Core.Dynamic_process.make scenario (Sr.abku 2) ~n in
          let starts =
            if Markov.Partition_space.count ~n ~m <= all_starts_ceiling then
              None
            else Some [| Lv.all_in_one ~n ~m; Lv.uniform ~n ~m |]
          in
          let checkpoint =
            Option.map Markov.Exact_checkpoint.file_sink
              (Ctx.checkpoint_path ctx
                 ~name:(Printf.sprintf "%s_n%02d" scen_tag n))
          in
          let a =
            Markov.Exact_builder.build_mix ~eps ~max_t:1_000_000
              ~domains:(Ctx.domains ctx) ?starts ?checkpoint
              (Markov.Exact_builder.enumerated
                 (Markov.Partition_space.enumerate ~n ~m))
              ~transitions:(Core.Dynamic_process.exact_transitions process)
          in
          let cell = Printf.sprintf "cell n=%02d |Omega|=%d" n a.state_count in
          Engine.Metrics.add_phase metrics (cell ^ " build") a.build_seconds;
          Engine.Metrics.add_phase metrics (cell ^ " mix") a.mix_seconds;
          let coupled = Core.Coupled.monotone process in
          let rng = Ctx.rng ctx ~experiment:(7000 + n) in
          let meas, cell_metrics =
            Coupling.Coalescence.measure_with_metrics ~domains:(Ctx.domains ctx)
              ~reps ~limit:1_000_000 ~rng coupled
              ~init:(fun _g ->
                ( Mv.of_load_vector (Lv.all_in_one ~n ~m),
                  Mv.of_load_vector (Lv.uniform ~n ~m) ))
          in
          let bound =
            match scenario with
            | Core.Scenario.A -> Theory.Bounds.theorem1 ~m ~eps
            | Core.Scenario.B -> Theory.Bounds.claim53 ~n ~m ~eps
          in
          let exact_mean_max =
            Markov.Exact.stationary_expectation a.chain
              ~f:(fun v -> float_of_int (Loadvec.Load_vector.max_load v))
              ()
          in
          let fluid =
            match scenario with
            | Core.Scenario.A ->
                Fluid.Mean_field.fixed_point_a ~d:2 ~m_over_n:1. ~levels:30
            | Core.Scenario.B ->
                Fluid.Mean_field.fixed_point_b ~d:2 ~m_over_n:1. ~levels:30
          in
          Ctx.row table
            ~values:
              (Ctx.measurement_values meas
              @ [
                  ("state_count", float_of_int a.state_count);
                  ("exact_tau", float_of_int a.tau);
                  ("bound", bound);
                  ("exact_mean_max", exact_mean_max);
                ])
            ~metrics:cell_metrics
            [
              string_of_int n;
              string_of_int a.state_count;
              string_of_int a.tau;
              Ctx.cell_measurement meas;
              Printf.sprintf "%.0f" bound;
              Printf.sprintf "%.2f" exact_mean_max;
              string_of_int (Fluid.Mean_field.predicted_max_load ~n fluid);
            ]
          end);
      Ctx.note table "soundness: exact tau <= closed-form bound on every row";
      Ctx.note table
        (Printf.sprintf
           "cells with |Omega| > %d search the extremal starts (all-in-one, \
            uniform) only; the monotone coupling sandwiches every other start \
            between them"
           all_starts_ceiling);
      Ctx.emit ctx table;
      Engine.Metrics.dump
        ~label:
          (Printf.sprintf "E7 %s exact-cell metrics"
             (match scenario with Core.Scenario.A -> "Id" | B -> "Ib"))
        (Engine.Metrics.snapshot metrics))
    [ Core.Scenario.A; Core.Scenario.B ]

let spec =
  Experiment.Spec.v ~id:"e7"
    ~claim:"exact mixing time vs coupling coalescence vs closed-form bounds"
    ~tags:[ "exact"; "mixing"; "coupling"; "soundness" ]
    ~grid:
      (Experiment.Grid.v ~axis:"n=m" ~quick:[ 4; 6; 8; 10; 12 ]
         ~full:[ 4; 6; 8; 10; 12; 14; 20; 30; 46 ] ~reps:(201, 401) ())
    run
