(* E6 — the combination the paper advocates (Section 1): Mitzenmacher's
   differential-equation method predicts the stationary profile; the
   paper's coupling bounds say how fast the process reaches it.  Here we
   validate the predictor: simulated stationary load fractions
   s_i = #bins(load >= i)/n against the fluid fixed point, for both
   scenarios. *)

module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let simulated_profile ctx ~scenario ~d ~n ~levels =
  let rng = Ctx.rng ctx ~experiment:6000 in
  let bins =
    Core.Bins.of_loads
      (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m:n))
  in
  let sys = Core.System.create scenario (Sr.abku d) bins in
  Core.System.run rng sys ~steps:(50 * n);
  let acc = Array.make levels 0. in
  let samples = 200 in
  for _ = 1 to samples do
    Core.System.run rng sys ~steps:n;
    let loads = Core.Bins.loads (Core.System.bins sys) in
    for i = 1 to levels do
      let count = Array.fold_left (fun a l -> if l >= i then a + 1 else a) 0 loads in
      acc.(i - 1) <- acc.(i - 1) +. (float_of_int count /. float_of_int n)
    done
  done;
  Array.map (fun x -> x /. float_of_int samples) acc

let run ctx =
  let n = Ctx.scale ctx ~quick:4096 ~full:16384 in
  let d = 2 and levels = 8 in
  List.iter
    (fun (scenario, fixed_point) ->
      let fluid = fixed_point () in
      let sim = simulated_profile ctx ~scenario ~d ~n ~levels in
      let table =
        Ctx.table ctx
          ~title:
            (Printf.sprintf "E6: load fractions s_i, %s-ABKU[%d], n = m = %d"
               (match scenario with Core.Scenario.A -> "Id" | B -> "Ib")
               d n)
          ~columns:[ "i"; "simulated s_i"; "fluid s_i"; "abs diff" ]
      in
      for i = 1 to levels do
        let s = sim.(i - 1) in
        let f = if i - 1 < Array.length fluid then fluid.(i - 1) else 0. in
        Ctx.row table
          ~values:[ ("simulated", s); ("fluid", f); ("abs_diff", Float.abs (s -. f)) ]
          [
            string_of_int i;
            Printf.sprintf "%.5f" s;
            Printf.sprintf "%.5f" f;
            Printf.sprintf "%.5f" (Float.abs (s -. f));
          ]
      done;
      let pred = Fluid.Mean_field.predicted_max_load ~n fluid in
      Ctx.note table
        (Printf.sprintf "fluid-predicted max load: %d (used as the recovery \
                         target in E2/E4)" pred);
      Ctx.emit ctx table)
    [
      (Core.Scenario.A,
       fun () -> Fluid.Mean_field.fixed_point_a ~d ~m_over_n:1. ~levels:40);
      (Core.Scenario.B,
       fun () -> Fluid.Mean_field.fixed_point_b ~d ~m_over_n:1. ~levels:40);
    ]

let spec =
  Experiment.Spec.v ~id:"e6"
    ~claim:"Mitzenmacher fluid limit predicts the stationary profile"
    ~tags:[ "fluid"; "stationary"; "sim" ]
    run
