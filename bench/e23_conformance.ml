(* E23: statistical conformance of the simulators against their exact
   chains and the paper's bounds (lib/validate).  Quick mode runs the
   two-subject CI catalog; full mode the whole matrix.  The complete
   typed report is attached to the JSON sink under
   extra.conformance_report; the table shows one row per check. *)

module Ctx = Experiment.Ctx

let alpha = 0.01

let run ctx =
  let quick = not (Ctx.full ctx) in
  let subjects =
    if quick then Validate.Subject.quick_catalog ()
    else Validate.Subject.full_catalog ()
  in
  let report =
    Validate.Conformance.run ~domains:(Ctx.domains ctx) ~quick ~alpha
      ~seed:(Ctx.seed ctx) subjects
  in
  let table =
    Ctx.table ctx
      ~title:(Printf.sprintf "E23: simulator conformance (alpha = %g)" alpha)
      ~columns:[ "subject"; "check"; "verdict"; "samples"; "p"; "TV corr" ]
  in
  List.iter
    (fun (s : Validate.Conformance.subject_report) ->
      List.iter
        (fun (c : Validate.Conformance.check) ->
          let p, tv =
            match c.Validate.Conformance.outcome with
            | Some o ->
                ( Printf.sprintf "%.3f" o.Validate.Sequential.p_value,
                  Printf.sprintf "%.4f" o.Validate.Sequential.tv_corrected )
            | None ->
                ( "-",
                  match
                    List.assoc_opt "tv_at_bound" c.Validate.Conformance.stats
                  with
                  | Some tv -> Printf.sprintf "%.4f" tv
                  | None -> "-" )
          in
          Ctx.row ~values:c.Validate.Conformance.stats table
            [
              s.Validate.Conformance.subject;
              c.Validate.Conformance.check;
              Validate.Sequential.verdict_name c.Validate.Conformance.verdict;
              string_of_int c.Validate.Conformance.samples;
              p;
              tv;
            ])
        s.Validate.Conformance.checks)
    report.Validate.Conformance.subjects;
  Ctx.note table
    (Printf.sprintf "overall: %s over %d subjects"
       (Validate.Sequential.verdict_name report.Validate.Conformance.verdict)
       (List.length report.Validate.Conformance.subjects));
  Ctx.emit ctx table;
  Ctx.set_extra ctx "conformance_report" (Validate.Report.to_json report)

let spec =
  Experiment.Spec.v ~id:"e23"
    ~claim:"Simulators conform to their exact chains and the paper's bounds"
    ~tags:[ "validate"; "exact"; "soundness" ]
    ~default:false run
