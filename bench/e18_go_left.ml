(* E18 — ablation of the d-choice rule family: Vöcking's Always-Go-Left
   (asymmetric groups + left-biased ties) against the paper's symmetric
   ABKU[d], statically and in the dynamic scenario A.  Go-Left should
   shave the maximum load at equal d. *)

module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let run ctx =
  let n = Ctx.scale ctx ~quick:65536 ~full:262144 in
  let reps = Ctx.scale ctx ~quick:9 ~full:15 in
  let table =
    Ctx.table ctx
      ~title:(Printf.sprintf "E18: static max load, n = m = %d" n)
      ~columns:[ "d"; "ABKU[d] median"; "GoLeft[d] median"; "fraction of runs GoLeft <= ABKU" ]
  in
  List.iter
    (fun d ->
      let rng = Ctx.rng ctx ~experiment:(18_000 + d) in
      let abku = Array.make reps 0 and gol = Array.make reps 0 in
      for k = 0 to reps - 1 do
        let g = Prng.Rng.split rng in
        abku.(k) <-
          Core.Bins.max_load (Core.Static_process.run (Sr.abku d) g ~n ~m:n);
        let rule = Core.Go_left.make ~d ~n in
        gol.(k) <- Core.Bins.max_load (Core.Go_left.static_run rule g ~m:n)
      done;
      let wins = ref 0 in
      for k = 0 to reps - 1 do
        if gol.(k) <= abku.(k) then incr wins
      done;
      Ctx.row table
        ~values:
          [
            ( "abku_median",
              Stats.Quantile.median (Stats.Quantile.of_ints abku) );
            ( "goleft_median",
              Stats.Quantile.median (Stats.Quantile.of_ints gol) );
            ("goleft_wins", float_of_int !wins);
          ]
        [
          string_of_int d;
          Printf.sprintf "%.1f" (Stats.Quantile.median (Stats.Quantile.of_ints abku));
          Printf.sprintf "%.1f" (Stats.Quantile.median (Stats.Quantile.of_ints gol));
          Printf.sprintf "%d/%d" !wins reps;
        ])
    [ 2; 4 ];
  (* Dynamic stationary comparison at d = 2. *)
  let rng = Ctx.rng ctx ~experiment:18_500 in
  let nd = 4096 in
  let stationary_mean insert_step =
    let bins =
      Core.Bins.of_loads
        (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n:nd ~m:nd))
    in
    let g = Prng.Rng.split rng in
    for _ = 1 to 50 * nd do
      insert_step g bins
    done;
    let s = Stats.Summary.create () in
    for _ = 1 to 200 do
      for _ = 1 to nd do
        insert_step g bins
      done;
      Stats.Summary.add_int s (Core.Bins.max_load bins)
    done;
    Stats.Summary.mean s
  in
  let abku_dyn =
    stationary_mean (fun g bins ->
        ignore (Core.Bins.remove_ball_uniform g bins);
        ignore (Core.Bins.insert_with_rule (Sr.abku 2) g bins))
  in
  let rule = Core.Go_left.make ~d:2 ~n:nd in
  let gol_dyn =
    stationary_mean (fun g bins ->
        Core.Go_left.dynamic_step rule Core.Scenario.A g bins)
  in
  Ctx.note table
    (Printf.sprintf
       "dynamic scenario A at n = %d: stationary mean max load %.2f (ABKU[2]) \
        vs %.2f (GoLeft[2])"
       nd abku_dyn gol_dyn);
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e18"
    ~claim:"Always-Go-Left vs ABKU[d]: asymmetry helps at equal d"
    ~tags:[ "go-left"; "ablation"; "static"; "sim" ]
    run
