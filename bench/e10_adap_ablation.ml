(* E10 — the Czumaj-Stemann extension: ADAP(x) trades probes per
   insertion against maximum load.  Ablation over threshold sequences in
   the dynamic scenario A, reporting probes/insertion and the stationary
   max load; ABKU[d] columns are the baselines. *)

module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let rules () =
  [
    Sr.abku 1;
    Sr.abku 2;
    Sr.abku 3;
    Sr.abku 4;
    Sr.adap (Core.Adaptive.of_list ~name:"1;2;4" [ 1; 2; 4 ]);
    Sr.adap (Core.Adaptive.linear ~slope:1 ~base:1 ());
    Sr.adap (Core.Adaptive.doubling ());
  ]

let run ctx =
  let n = Ctx.scale ctx ~quick:4096 ~full:16384 in
  let steps = 50 * n and samples = 200 in
  let table =
    Ctx.table ctx
      ~title:(Printf.sprintf "E10: Id-* rules, n = m = %d (stationary)" n)
      ~columns:
        [
          "rule"; "probes/insert"; "exact probes (snapshot)"; "fluid probes";
          "mean max load"; "worst max load"; "fluid max pred";
        ]
  in
  List.iter
    (fun rule ->
      let rng = Ctx.rng ctx ~experiment:10_000 in
      let bins =
        Core.Bins.of_loads
          (Loadvec.Load_vector.to_array (Loadvec.Load_vector.uniform ~n ~m:n))
      in
      let sys = Core.System.create Core.Scenario.A rule bins in
      (* Burn in, then sample probes and max load. *)
      Core.System.run rng sys ~steps;
      let probes = Stats.Summary.create () in
      let maxes = Stats.Summary.create () in
      let worst = ref 0 in
      for _ = 1 to samples do
        for _ = 1 to n / 4 do
          Stats.Summary.add_int probes (Core.System.step_probes rng sys)
        done;
        let ml = Core.System.max_load sys in
        Stats.Summary.add_int maxes ml;
        if ml > !worst then worst := ml
      done;
      (* Cross-check: the exact expected-probe count (the DP behind the
         exact transition matrices) evaluated on the final stationary
         snapshot must agree with the measured per-step average. *)
      let snapshot =
        Loadvec.Load_vector.to_array
          (Core.Bins.to_load_vector (Core.System.bins sys))
      in
      let exact = Sr.expected_probes rule ~loads:snapshot in
      (* Mean-field predictions: stationary profile for this rule under
         scenario A, expected probes against it, and its max-load
         prediction at this n. *)
      let threshold =
        match rule with
        | Sr.Abku d -> fun (_ : int) -> d
        | Sr.Adap x -> Core.Adaptive.threshold x
      in
      let fluid =
        Fluid.Mean_field.fixed_point_a_adap ~threshold ~m_over_n:1. ~levels:30
      in
      let fluid_probes = Fluid.Mean_field.expected_probes_fluid ~threshold fluid in
      Ctx.row table
        ~values:
          [
            ("probes_per_insert", Stats.Summary.mean probes);
            ("exact_probes", exact);
            ("fluid_probes", fluid_probes);
            ("mean_max_load", Stats.Summary.mean maxes);
            ("worst_max_load", float_of_int !worst);
            ( "fluid_max_pred",
              float_of_int (Fluid.Mean_field.predicted_max_load ~n fluid) );
          ]
        [
          Sr.name rule;
          Printf.sprintf "%.3f" (Stats.Summary.mean probes);
          Printf.sprintf "%.3f" exact;
          Printf.sprintf "%.3f" fluid_probes;
          Printf.sprintf "%.2f" (Stats.Summary.mean maxes);
          string_of_int !worst;
          string_of_int (Fluid.Mean_field.predicted_max_load ~n fluid);
        ])
    (rules ());
  Ctx.note table
    "ADAP(1;2;4) should sit near ABKU[2]'s balance at clearly fewer probes \
     than ABKU[2]'s 2.0 (it only re-probes when the candidate looks full)";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e10"
    ~claim:"ADAP(x): fewer expected probes for the same balance"
    ~tags:[ "adap"; "ablation"; "stationary"; "sim" ]
    run
