(* E12 — Section 7, relocations: allowing a bounded number of ball moves
   per step accelerates recovery.  Recovery time of Id-ABKU[2]+reloc(k)
   from the all-in-one state, as a function of k. *)

module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let run ctx =
  let n = Ctx.scale ctx ~quick:256 ~full:1024 in
  let reps = Ctx.scale ctx ~quick:11 ~full:21 in
  let ks = [ 0; 1; 2; 4 ] in
  let d = 2 in
  let profile = Fluid.Mean_field.fixed_point_a ~d ~m_over_n:1. ~levels:40 in
  let target = Fluid.Mean_field.predicted_max_load ~n profile + 1 in
  let table =
    Ctx.table ctx
      ~title:
        (Printf.sprintf
           "E12: Id-ABKU[2]+reloc(k), n = m = %d, recovery to max load <= %d"
           n target)
      ~columns:[ "k relocations"; "median steps [q10,q90]"; "speedup vs k=0" ]
  in
  let base = ref nan in
  List.iter
    (fun k ->
      let reloc = Core.Relocation.make Core.Scenario.A (Sr.abku d) ~relocations:k ~n in
      let rng = Ctx.rng ctx ~experiment:(12_000 + k) in
      let limit = 500 * n * (1 + int_of_float (log (float_of_int n))) in
      let times = ref [] in
      let failures = ref 0 in
      for _ = 1 to reps do
        let g = Prng.Rng.split rng in
        let loads = Array.make n 0 in
        loads.(0) <- n;
        let bins = Core.Bins.of_loads loads in
        let steps = ref 0 in
        while Core.Bins.max_load bins > target && !steps < limit do
          Core.Relocation.step reloc g bins;
          incr steps
        done;
        if !steps >= limit then incr failures
        else times := float_of_int !steps :: !times
      done;
      let xs = Array.of_list !times in
      let median = if Array.length xs = 0 then nan else Stats.Quantile.median xs in
      if k = 0 then base := median;
      Ctx.row table
        ~values:
          [
            ("median", median);
            ("failures", float_of_int !failures);
            ("speedup", if k = 0 then 1. else !base /. median);
          ]
        [
          string_of_int k;
          (if Float.is_nan median then "(limit)"
           else
             Printf.sprintf "%.0f [%.0f, %.0f]" median
               (Stats.Quantile.quantile xs 0.1)
               (Stats.Quantile.quantile xs 0.9));
          (if k = 0 || Float.is_nan median then "-"
           else Printf.sprintf "%.2fx" (!base /. median));
        ])
    ks;
  Ctx.note table
    "speedup should grow with k and saturate: each step still inserts only \
     one new ball";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e12"
    ~claim:"relocations speed up recovery (Section 7 extension)"
    ~tags:[ "relocation"; "recovery"; "sim" ]
    run
