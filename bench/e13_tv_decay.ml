(* E13 — the mixing-time definition made visible at realistic sizes:
   the total-variation distance between the laws of the max-load
   observable from an adversarial start and from a balanced start, as a
   function of time.  By data processing this lower-bounds the state TV
   distance, so its epsilon-crossing point must land below the theorems'
   bounds: Theorem 1 for scenario A, the O~(m^2) scale for scenario B. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let geometric_times limit =
  let rec go t acc = if t > limit then List.rev acc else go (t * 4) (t :: acc) in
  go 1 []

let run ctx =
  let n = Ctx.scale ctx ~quick:64 ~full:128 in
  let m = n in
  let reps = Ctx.scale ctx ~quick:500 ~full:2000 in
  List.iter
    (fun (scenario, scale_name, scale) ->
      let process = Core.Dynamic_process.make scenario (Sr.abku 2) ~n in
      (* Chain over mutable state; Empirical copies the start per run. *)
      let chain =
        Markov.Chain.make (fun g v ->
            Core.Dynamic_process.step_in_place process g v;
            v)
      in
      let rng = Ctx.rng ctx ~experiment:13_000 in
      let limit = 2 * int_of_float scale in
      (* Geometric grid plus the bound itself, so the table shows the TV
         exactly where the theorem promises <= eps. *)
      let times =
        List.sort_uniq compare (int_of_float scale :: geometric_times limit)
      in
      let profile =
        Markov.Empirical.decay_profile chain ~rng
          ~x0:(fun () -> Mv.of_load_vector (Lv.all_in_one ~n ~m))
          ~y0:(fun () -> Mv.of_load_vector (Lv.uniform ~n ~m))
          ~times ~reps ~observable:Mv.max_load
      in
      let table =
        Ctx.table ctx
          ~title:
            (Printf.sprintf "E13: TV(max load at t) for %s, n = m = %d"
               (Core.Dynamic_process.name process)
               n)
          ~columns:[ "t"; "estimated TV" ]
      in
      List.iter
        (fun (t, tv) ->
          Ctx.row table
            ~values:[ ("tv", tv) ]
            [ string_of_int t; Printf.sprintf "%.3f" tv ])
        profile;
      let at_bound =
        List.find_opt (fun (t, _) -> t = int_of_float scale) profile
      in
      (match at_bound with
      | Some (t, tv) ->
          Ctx.note table
            (Printf.sprintf
               "at the bound t = %s = %d the observable TV is %.3f %s 0.25 \
                (observable TV lower-bounds state TV, so <= is required)"
               scale_name t tv
               (if tv <= 0.25 then "<=" else "> !! VIOLATION of"))
      | None -> ());
      Ctx.emit ctx table)
    [
      (Core.Scenario.A, "Theorem 1", Theory.Bounds.theorem1 ~m ~eps:0.25);
      (Core.Scenario.B, "m^2 ln m", Theory.Bounds.scenario_b_improved ~m);
    ]

let spec =
  Experiment.Spec.v ~id:"e13"
    ~claim:"TV decay of the max-load observable vs the theorems' scales"
    ~tags:[ "mixing"; "tv"; "sim" ]
    run
