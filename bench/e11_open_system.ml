(* E11 — Section 7, open systems: the ball population fluctuates (insert
   with probability 1/2, else delete a random ball).  The paper's proposal
   is to couple two copies from very different initial populations and
   measure when their distributions agree; our shared-randomness coupling
   makes that a coalescence measurement. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule

let run (cfg : Config.t) =
  Exp_util.heading ~id:"E11"
    ~claim:"open systems: coalescence of 0-ball vs m-ball starts";
  let sizes = if cfg.full then [ 8; 16; 32; 64 ] else [ 8; 16; 32; 48 ] in
  let reps = if cfg.full then 31 else 15 in
  let table =
    Stats.Table.create
      ~title:"E11: Open(p=1/2, ABKU[2]), start 0 balls vs 2n balls"
      ~columns:[ "n"; "median coalescence [q10,q90]"; "failures" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let p = Core.Open_process.make (Sr.abku 2) ~n in
      let coupled = Core.Open_process.coupled p in
      let rng = Config.rng_for cfg ~experiment:(11_000 + n) in
      let m = 2 * n in
      (* The population must drift from m down to meet the other copy:
         a random walk needs ~m^2 steps to lose m balls net. *)
      let limit = 2000 * m * m in
      let meas =
        Coupling.Coalescence.measure ~domains:cfg.domains ~reps ~limit ~rng coupled ~init:(fun _g ->
            ( Mv.of_load_vector (Lv.all_in_one ~n ~m),
              Mv.of_load_vector (Lv.of_array (Array.make n 0)) ))
      in
      points := (float_of_int m, meas.median) :: !points;
      Stats.Table.add_row table
        [
          string_of_int n;
          Exp_util.cell_measurement meas;
          string_of_int meas.failures;
        ])
    sizes;
  Exp_util.note_exponent table ~points:(List.rev !points) ~log_exponent:0.
    ~expected:"~2, with a heavy upper tail (the population gap must \
               random-walk to zero before the profiles can merge)"
    ~what:"median vs m";
  Stats.Table.add_note table
    "wide quantile spread is inherent: null-recurrent hitting times";
  Exp_util.output table;
  (* The paper's own formulation (Section 7): estimate the time until the
     0-ball process has almost the same *distribution* as the m-ball one.
     Distributional agreement (here of the population size) arrives long
     before samplewise coalescence. *)
  let n = if cfg.full then 32 else 16 in
  let m = 2 * n in
  let p = Core.Open_process.make (Sr.abku 2) ~n in
  let chain =
    Markov.Chain.make (fun g v ->
        Core.Open_process.step_normalized p g v;
        v)
  in
  let rng = Config.rng_for cfg ~experiment:11_500 in
  let rec times t acc =
    if t > 40 * m * m then List.rev acc else times (4 * t) (t :: acc)
  in
  (* The population has no stationary law (a reflected unbiased walk), so
     its support spreads like sqrt t; estimate the TV on population
     buckets of width m/8 to keep the finite-sample bias of the
     empirical-TV estimator small. *)
  let bucket v = Mv.total v * 8 / m in
  let profile =
    Markov.Empirical.decay_profile chain ~rng
      ~x0:(fun () -> Mv.of_load_vector (Lv.all_in_one ~n ~m))
      ~y0:(fun () -> Mv.of_load_vector (Lv.of_array (Array.make n 0)))
      ~times:(times 1 []) ~reps:(if cfg.full then 2000 else 800)
      ~observable:bucket
  in
  let tv_table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E11b: TV of the population-size law, 0 vs %d balls (n = %d)" m n)
      ~columns:[ "t"; "estimated TV" ]
  in
  List.iter
    (fun (t, tv) ->
      Stats.Table.add_row tv_table [ string_of_int t; Printf.sprintf "%.3f" tv ])
    profile;
  Stats.Table.add_note tv_table
    "the distributions merge at ~m^2 steps, well before samplewise \
     coalescence: the distributional question the paper poses is easier";
  Exp_util.output tv_table
