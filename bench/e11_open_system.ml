(* E11 — Section 7, open systems: the ball population fluctuates (insert
   with probability 1/2, else delete a random ball).  The paper's proposal
   is to couple two copies from very different initial populations and
   measure when their distributions agree; our shared-randomness coupling
   makes that a coalescence measurement. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let run ctx =
  let reps = Ctx.reps ctx in
  let table =
    Ctx.table ctx
      ~title:"E11: Open(p=1/2, ABKU[2]), start 0 balls vs 2n balls"
      ~columns:[ "n"; "median coalescence [q10,q90]"; "failures" ]
  in
  let points = ref [] in
  Ctx.iter_cells ctx
    (fun n ->
      let p = Core.Open_process.make (Sr.abku 2) ~n in
      let coupled = Core.Open_process.coupled p in
      let rng = Ctx.rng ctx ~experiment:(11_000 + n) in
      let m = 2 * n in
      (* The population must drift from m down to meet the other copy:
         a random walk needs ~m^2 steps to lose m balls net. *)
      let limit = 2000 * m * m in
      let meas, metrics =
        Coupling.Coalescence.measure_with_metrics ~domains:(Ctx.domains ctx)
          ~reps ~limit ~rng coupled
          ~init:(fun _g ->
            ( Mv.of_load_vector (Lv.all_in_one ~n ~m),
              Mv.of_load_vector (Lv.of_array (Array.make n 0)) ))
      in
      points := (float_of_int m, meas.median) :: !points;
      Ctx.row table
        ~values:(Ctx.measurement_values meas)
        ~metrics
        [
          string_of_int n;
          Ctx.cell_measurement meas;
          string_of_int meas.failures;
        ]);
  Ctx.note_exponent table ~points:(List.rev !points) ~log_exponent:0.
    ~expected:"~2, with a heavy upper tail (the population gap must \
               random-walk to zero before the profiles can merge)"
    ~what:"median vs m";
  Ctx.note table "wide quantile spread is inherent: null-recurrent hitting times";
  Ctx.emit ctx table;
  (* The paper's own formulation (Section 7): estimate the time until the
     0-ball process has almost the same *distribution* as the m-ball one.
     Distributional agreement (here of the population size) arrives long
     before samplewise coalescence. *)
  let n = Ctx.scale ctx ~quick:16 ~full:32 in
  let m = 2 * n in
  let p = Core.Open_process.make (Sr.abku 2) ~n in
  let chain =
    Markov.Chain.make (fun g v ->
        Core.Open_process.step_normalized p g v;
        v)
  in
  let rng = Ctx.rng ctx ~experiment:11_500 in
  let rec times t acc =
    if t > 40 * m * m then List.rev acc else times (4 * t) (t :: acc)
  in
  (* The population has no stationary law (a reflected unbiased walk), so
     its support spreads like sqrt t; estimate the TV on population
     buckets of width m/8 to keep the finite-sample bias of the
     empirical-TV estimator small. *)
  let bucket v = Mv.total v * 8 / m in
  let profile =
    Markov.Empirical.decay_profile chain ~rng
      ~x0:(fun () -> Mv.of_load_vector (Lv.all_in_one ~n ~m))
      ~y0:(fun () -> Mv.of_load_vector (Lv.of_array (Array.make n 0)))
      ~times:(times 1 []) ~reps:(Ctx.scale ctx ~quick:800 ~full:2000)
      ~observable:bucket
  in
  let tv_table =
    Ctx.table ctx
      ~title:
        (Printf.sprintf
           "E11b: TV of the population-size law, 0 vs %d balls (n = %d)" m n)
      ~columns:[ "t"; "estimated TV" ]
  in
  List.iter
    (fun (t, tv) ->
      Ctx.row tv_table
        ~values:[ ("tv", tv) ]
        [ string_of_int t; Printf.sprintf "%.3f" tv ])
    profile;
  Ctx.note tv_table
    "the distributions merge at ~m^2 steps, well before samplewise \
     coalescence: the distributional question the paper poses is easier";
  Ctx.emit ctx tv_table

let spec =
  Experiment.Spec.v ~id:"e11"
    ~claim:"open systems: coalescence of 0-ball vs m-ball starts"
    ~tags:[ "open-system"; "coupling"; "sim" ]
    ~grid:
      (Experiment.Grid.v ~axis:"n" ~quick:[ 8; 16; 32; 48 ]
         ~full:[ 8; 16; 32; 64 ] ~reps:(15, 31) ())
    run
