(* E15 — Theorem 1's bound is in m, not n: at fixed n, the scenario-A
   coalescence time must grow like m ln m as the system gets heavier.
   Sweep m at n = 64 and fit the exponent in m. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let run ctx =
  let n = 64 in
  let reps = Ctx.reps ctx in
  let table =
    Ctx.table ctx
      ~title:(Printf.sprintf "E15: Id-ABKU[2] coalescence at fixed n = %d" n)
      ~columns:[ "m"; "m/n"; "median coalescence [q10,q90]"; "Thm 1"; "ratio" ]
  in
  let points = ref [] in
  Ctx.iter_cells ctx
    (fun r ->
      let m = r * n in
      let process = Core.Dynamic_process.make Core.Scenario.A (Sr.abku 2) ~n in
      let coupled = Core.Coupled.monotone process in
      let bound = Theory.Bounds.theorem1 ~m ~eps:0.25 in
      let rng = Ctx.rng ctx ~experiment:(15_000 + m) in
      let meas, metrics =
        Coupling.Coalescence.measure_with_metrics ~domains:(Ctx.domains ctx)
          ~reps ~limit:(40 * int_of_float bound) ~rng coupled
          ~init:(fun _g ->
            ( Mv.of_load_vector (Lv.all_in_one ~n ~m),
              Mv.of_load_vector (Lv.uniform ~n ~m) ))
      in
      points := (float_of_int m, meas.median) :: !points;
      Ctx.row table
        ~values:(Ctx.measurement_values meas @ [ ("bound", bound) ])
        ~metrics
        [
          string_of_int m;
          string_of_int r;
          Ctx.cell_measurement meas;
          Printf.sprintf "%.0f" bound;
          Ctx.ratio_cell meas.median bound;
        ]);
  Ctx.note_exponent table ~points:(List.rev !points) ~log_exponent:1.
    ~expected:"1 (m ln m at fixed n)" ~what:"median vs m (after / ln m)";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e15"
    ~claim:"Theorem 1 scales with the number of balls m, not bins n"
    ~tags:[ "mixing"; "scenario-a"; "coupling"; "sim" ]
    ~grid:
      (Experiment.Grid.v ~axis:"m/n" ~quick:[ 1; 2; 4; 8 ]
         ~full:[ 1; 2; 4; 8; 16 ] ~reps:(15, 31) ())
    run
