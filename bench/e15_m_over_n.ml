(* E15 — Theorem 1's bound is in m, not n: at fixed n, the scenario-A
   coalescence time must grow like m ln m as the system gets heavier.
   Sweep m at n = 64 and fit the exponent in m. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule

let run (cfg : Config.t) =
  Exp_util.heading ~id:"E15"
    ~claim:"Theorem 1 scales with the number of balls m, not bins n";
  let n = 64 in
  let ratios = if cfg.full then [ 1; 2; 4; 8; 16 ] else [ 1; 2; 4; 8 ] in
  let reps = if cfg.full then 31 else 15 in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "E15: Id-ABKU[2] coalescence at fixed n = %d" n)
      ~columns:[ "m"; "m/n"; "median coalescence [q10,q90]"; "Thm 1"; "ratio" ]
  in
  let points = ref [] in
  List.iter
    (fun r ->
      let m = r * n in
      let process = Core.Dynamic_process.make Core.Scenario.A (Sr.abku 2) ~n in
      let coupled = Core.Coupled.monotone process in
      let bound = Theory.Bounds.theorem1 ~m ~eps:0.25 in
      let rng = Config.rng_for cfg ~experiment:(15_000 + m) in
      let meas =
        Coupling.Coalescence.measure ~domains:cfg.domains ~reps ~limit:(40 * int_of_float bound) ~rng
          coupled ~init:(fun _g ->
            ( Mv.of_load_vector (Lv.all_in_one ~n ~m),
              Mv.of_load_vector (Lv.uniform ~n ~m) ))
      in
      points := (float_of_int m, meas.median) :: !points;
      Stats.Table.add_row table
        [
          string_of_int m;
          string_of_int r;
          Exp_util.cell_measurement meas;
          Printf.sprintf "%.0f" bound;
          Exp_util.ratio_cell meas.median bound;
        ])
    ratios;
  Exp_util.note_exponent table ~points:(List.rev !points) ~log_exponent:1.
    ~expected:"1 (m ln m at fixed n)" ~what:"median vs m (after / ln m)";
  Exp_util.output table
