(* E4 — Section 1.1 (first removal scenario): with removals from a random
   server (scenario B), recovery from an arbitrarily bad assignment takes
   O(n^2 ln n) steps.

   Max-load first-hitting time from the all-in-one state for Ib-ABKU[2]. *)

module Ctx = Experiment.Ctx

(* Config.repr is validated at load time, so the parse cannot fail. *)
let repr_of ctx =
  match Core.Repr.of_string (Ctx.repr ctx) with
  | Ok r -> r
  | Error msg -> invalid_arg msg

let run ctx =
  let reps = Ctx.reps ctx in
  let repr = repr_of ctx in
  let d = 2 in
  let table =
    Ctx.table ctx ~title:"E4: recovery of Ib-ABKU[2] to fluid max load + 1"
      ~columns:
        [ "n=m"; "target"; "median steps [q10,q90]"; "n^2 ln n"; "ratio" ]
  in
  let points = ref [] in
  Ctx.iter_cells ctx
    (fun n ->
      let profile = Fluid.Mean_field.fixed_point_b ~d ~m_over_n:1. ~levels:40 in
      let target = Fluid.Mean_field.predicted_max_load ~n profile + 1 in
      let spec =
        {
          Core.Recovery.scenario = Core.Scenario.B;
          rule = Core.Scheduling_rule.abku d;
          n;
          m = n;
        }
      in
      let scale = Theory.Bounds.recovery_b_steps ~n in
      let rng = Ctx.rng ctx ~experiment:(4000 + n) in
      let meas, metrics =
        Core.Recovery.measure_with_metrics ~domains:(Ctx.domains ctx) ~repr
          ~rng ~reps spec ~target ~limit:(50 * int_of_float scale)
      in
      points := (float_of_int n, meas.median) :: !points;
      Ctx.row table
        ~values:
          (Ctx.measurement_values meas
          @ [ ("target", float_of_int target); ("scale", scale) ])
        ~metrics
        [
          string_of_int n;
          string_of_int target;
          Ctx.cell_measurement meas;
          Printf.sprintf "%.0f" scale;
          Ctx.ratio_cell meas.median scale;
        ]);
  Ctx.note_exponent table ~points:(List.rev !points) ~log_exponent:1.
    ~expected:"2 (n^2 ln n growth)" ~what:"median vs n (after / ln n)";
  Ctx.note table
    "scenario B drains the spike one ball per hit on it, and hits it with \
     probability ~1/#nonempty: quadratically slower than scenario A (E2)";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e4"
    ~claim:"scenario-B recovery from the worst state in O(n^2 ln n) steps"
    ~tags:[ "recovery"; "scenario-b"; "sim" ] ~uses_repr:true
    ~grid:
      (Experiment.Grid.v ~axis:"n=m" ~quick:[ 32; 64; 128; 256; 512 ]
         ~full:[ 64; 128; 256; 512; 1024 ] ~reps:(9, 21) ())
    run
