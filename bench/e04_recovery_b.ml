(* E4 — Section 1.1 (first removal scenario): with removals from a random
   server (scenario B), recovery from an arbitrarily bad assignment takes
   O(n^2 ln n) steps.

   Max-load first-hitting time from the all-in-one state for Ib-ABKU[2]. *)

let run (cfg : Config.t) =
  Exp_util.heading ~id:"E4"
    ~claim:"scenario-B recovery from the worst state in O(n^2 ln n) steps";
  let sizes = if cfg.full then [ 64; 128; 256; 512; 1024 ] else [ 32; 64; 128; 256; 512 ] in
  let reps = if cfg.full then 21 else 9 in
  let d = 2 in
  let table =
    Stats.Table.create
      ~title:"E4: recovery of Ib-ABKU[2] to fluid max load + 1"
      ~columns:
        [ "n=m"; "target"; "median steps [q10,q90]"; "n^2 ln n"; "ratio" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let profile = Fluid.Mean_field.fixed_point_b ~d ~m_over_n:1. ~levels:40 in
      let target = Fluid.Mean_field.predicted_max_load ~n profile + 1 in
      let spec =
        {
          Core.Recovery.scenario = Core.Scenario.B;
          rule = Core.Scheduling_rule.abku d;
          n;
          m = n;
        }
      in
      let scale = Theory.Bounds.recovery_b_steps ~n in
      let rng = Config.rng_for cfg ~experiment:(4000 + n) in
      let meas =
        Core.Recovery.measure ~domains:cfg.domains ~rng ~reps spec ~target
          ~limit:(50 * int_of_float scale)
      in
      points := (float_of_int n, meas.median) :: !points;
      Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int target;
          Exp_util.cell_measurement meas;
          Printf.sprintf "%.0f" scale;
          Exp_util.ratio_cell meas.median scale;
        ])
    sizes;
  Exp_util.note_exponent table ~points:(List.rev !points) ~log_exponent:1.
    ~expected:"2 (n^2 ln n growth)" ~what:"median vs n (after / ln n)";
  Stats.Table.add_note table
    "scenario B drains the spike one ball per hit on it, and hits it with \
     probability ~1/#nonempty: quadratically slower than scenario A (E2)";
  Exp_util.output table
