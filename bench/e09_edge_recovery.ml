(* E9 — the application view of Section 1.1 (fair allocations): from an
   atypical state, the greedy protocol's unfairness returns to the
   Theta(log log n) stationary regime within O~(n^2) steps; and the
   stationary unfairness itself grows like log log n (Ajtai et al.). *)

module O = Edgeorient.Orientation
module Ctx = Experiment.Ctx

let run ctx =
  let reps = Ctx.reps ctx in
  let table =
    Ctx.table ctx
      ~title:"E9: greedy protocol, recovery and stationary unfairness"
      ~columns:
        [
          "n";
          "target";
          "median recovery steps [q10,q90]";
          "n^2 ln n";
          "stationary mean unf";
          "log2 log2 n";
        ]
  in
  let rec_points = ref [] in
  Ctx.iter_cells ctx
    (fun n ->
      let rng = Ctx.rng ctx ~experiment:(9000 + n) in
      let loglog = Theory.Bounds.edge_stationary_unfairness ~n in
      let target = int_of_float (ceil loglog) + 1 in
      let scale = float_of_int n *. float_of_int n *. log (float_of_int n) in
      let limit = 50 * int_of_float scale in
      (* Recovery: the sim's probe is the unfairness, so the first
         hitting time comes straight out of the replication runner. *)
      let meas, metrics =
        Engine.Runner.measure ~domains:(Ctx.domains ctx) ~rng ~reps ~limit
          (fun g metrics ~limit ->
            let s = O.sim ~metrics (O.adversarial ~n) in
            Engine.Sim.first_hit s g ~pred:(fun u -> u <= target) ~limit)
      in
      (* Stationary unfairness: run on from a typical state. *)
      let s = O.sim (O.create ~n) in
      let summary = Stats.Summary.create () in
      Engine.Sim.sample_every s rng ~burn_in:(10 * n * n) ~every:n
        ~samples:300 (fun () -> Engine.Sim.probe s)
      |> List.iter (Stats.Summary.add_int summary);
      rec_points := (float_of_int n, meas.median) :: !rec_points;
      Ctx.row table
        ~values:
          (Ctx.measurement_values meas
          @ [
              ("target", float_of_int target);
              ("scale", scale);
              ("stationary_mean_unfairness", Stats.Summary.mean summary);
              ("loglog", loglog);
            ])
        ~metrics
        [
          string_of_int n;
          string_of_int target;
          Ctx.cell_measurement meas;
          Printf.sprintf "%.0f" scale;
          Printf.sprintf "%.2f" (Stats.Summary.mean summary);
          Printf.sprintf "%.2f" loglog;
        ]);
  Ctx.note_exponent table ~points:(List.rev !rec_points) ~log_exponent:1.
    ~expected:"2 (recovery ~ n^2 up to logs)" ~what:"recovery vs n (after / ln n)";
  Ctx.note table
    "stationary unfairness column should crawl like log log n: nearly flat";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e9"
    ~claim:"edge orientation: unfairness recovery and Theta(log log n) regime"
    ~tags:[ "edge-orientation"; "recovery"; "sim" ]
    ~grid:
      (Experiment.Grid.v ~axis:"n" ~quick:[ 64; 128; 256; 512; 1024 ]
         ~full:[ 64; 128; 256; 512; 1024; 2048 ] ~reps:(9, 21) ())
    run
