(* Benchmark configuration.  BENCH_FULL=1 enlarges every sweep (paper-scale
   runs, minutes to hours); the default sizes finish in a few minutes.
   BENCH_SEED overrides the root seed. *)

type t = { full : bool; seed : int; domains : int }

let load () =
  let full =
    match Sys.getenv_opt "BENCH_FULL" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  let seed =
    match Sys.getenv_opt "BENCH_SEED" with
    | Some s -> ( match int_of_string_opt s with Some v -> v | None -> 0xB0B )
    | None -> 0xB0B
  in
  let domains =
    match Sys.getenv_opt "BENCH_DOMAINS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some v when v >= 1 -> v
        | _ -> 1)
    | None -> 1
  in
  { full; seed; domains }

let rng cfg = Prng.Rng.create ~seed:cfg.seed ()

(* Every experiment derives an independent stream so that adding or
   reordering experiments does not perturb the others. *)
let rng_for cfg ~experiment =
  let g = Prng.Rng.create ~seed:(cfg.seed + (0x9E37 * experiment)) () in
  ignore (Prng.Rng.bits64 g);
  g
