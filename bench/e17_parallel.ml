(* E17 — parallel allocation baseline (Stemann; Adler et al., cited in
   the paper's intro): the collision protocol places all m balls in r
   communication rounds and its maximum load collapses rapidly with r
   toward the sequential two-choice quality. *)

let run (cfg : Config.t) =
  Exp_util.heading ~id:"E17"
    ~claim:"parallel collision protocol: a few rounds beat sequential d=1";
  let n = if cfg.full then 262144 else 65536 in
  let reps = if cfg.full then 15 else 7 in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "E17: collision protocol, n = m = %d, d = 2" n)
      ~columns:
        [ "rounds"; "median max load"; "median fallback balls"; "note" ]
  in
  let seq_d1 =
    let rng = Config.rng_for cfg ~experiment:17_100 in
    let samples =
      Core.Static_process.max_load_samples (Core.Scheduling_rule.abku 1) rng
        ~n ~m:n ~reps
    in
    Stats.Quantile.median (Stats.Quantile.of_ints samples)
  in
  let seq_d2 =
    let rng = Config.rng_for cfg ~experiment:17_200 in
    let samples =
      Core.Static_process.max_load_samples (Core.Scheduling_rule.abku 2) rng
        ~n ~m:n ~reps
    in
    Stats.Quantile.median (Stats.Quantile.of_ints samples)
  in
  List.iter
    (fun rounds ->
      let rng = Config.rng_for cfg ~experiment:(17_000 + rounds) in
      let maxes = Stats.Summary.create () in
      let fallbacks = Stats.Summary.create () in
      for _ = 1 to reps do
        let g = Prng.Rng.split rng in
        let result = Core.Parallel_alloc.run g ~n ~m:n ~d:2 ~rounds () in
        Stats.Summary.add_int maxes result.max_load;
        Stats.Summary.add_int fallbacks result.fallback_balls
      done;
      Stats.Table.add_row table
        [
          string_of_int rounds;
          Printf.sprintf "%.1f" (Stats.Summary.mean maxes);
          Printf.sprintf "%.0f" (Stats.Summary.mean fallbacks);
          "";
        ])
    [ 0; 1; 2; 3; 4 ];
  Stats.Table.add_row table
    [ "seq d=1"; Printf.sprintf "%.1f" seq_d1; "-"; "baseline" ];
  Stats.Table.add_row table
    [ "seq d=2"; Printf.sprintf "%.1f" seq_d2; "-"; "baseline" ];
  Stats.Table.add_note table
    "rounds = 0 degenerates to sequential greedy over 2 candidates; a few \
     parallel rounds already sit near the sequential two-choice quality";
  Exp_util.output table
