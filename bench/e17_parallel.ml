(* E17 — parallel allocation baseline (Stemann; Adler et al., cited in
   the paper's intro): the collision protocol places all m balls in r
   communication rounds and its maximum load collapses rapidly with r
   toward the sequential two-choice quality. *)

module Ctx = Experiment.Ctx

let run ctx =
  let n = Ctx.scale ctx ~quick:65536 ~full:262144 in
  let reps = Ctx.scale ctx ~quick:7 ~full:15 in
  let table =
    Ctx.table ctx
      ~title:(Printf.sprintf "E17: collision protocol, n = m = %d, d = 2" n)
      ~columns:[ "rounds"; "median max load"; "median fallback balls"; "note" ]
  in
  let seq_d1 =
    let rng = Ctx.rng ctx ~experiment:17_100 in
    let samples =
      Core.Static_process.max_load_samples (Core.Scheduling_rule.abku 1) rng
        ~n ~m:n ~reps
    in
    Stats.Quantile.median (Stats.Quantile.of_ints samples)
  in
  let seq_d2 =
    let rng = Ctx.rng ctx ~experiment:17_200 in
    let samples =
      Core.Static_process.max_load_samples (Core.Scheduling_rule.abku 2) rng
        ~n ~m:n ~reps
    in
    Stats.Quantile.median (Stats.Quantile.of_ints samples)
  in
  List.iter
    (fun rounds ->
      let rng = Ctx.rng ctx ~experiment:(17_000 + rounds) in
      let maxes = Stats.Summary.create () in
      let fallbacks = Stats.Summary.create () in
      for _ = 1 to reps do
        let g = Prng.Rng.split rng in
        let result = Core.Parallel_alloc.run g ~n ~m:n ~d:2 ~rounds () in
        Stats.Summary.add_int maxes result.max_load;
        Stats.Summary.add_int fallbacks result.fallback_balls
      done;
      Ctx.row table
        ~values:
          [
            ("mean_max_load", Stats.Summary.mean maxes);
            ("mean_fallback_balls", Stats.Summary.mean fallbacks);
          ]
        [
          string_of_int rounds;
          Printf.sprintf "%.1f" (Stats.Summary.mean maxes);
          Printf.sprintf "%.0f" (Stats.Summary.mean fallbacks);
          "";
        ])
    [ 0; 1; 2; 3; 4 ];
  Ctx.row table
    ~values:[ ("mean_max_load", seq_d1) ]
    [ "seq d=1"; Printf.sprintf "%.1f" seq_d1; "-"; "baseline" ];
  Ctx.row table
    ~values:[ ("mean_max_load", seq_d2) ]
    [ "seq d=2"; Printf.sprintf "%.1f" seq_d2; "-"; "baseline" ];
  Ctx.note table
    "rounds = 0 degenerates to sequential greedy over 2 candidates; a few \
     parallel rounds already sit near the sequential two-choice quality";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e17"
    ~claim:"parallel collision protocol: a few rounds beat sequential d=1"
    ~tags:[ "parallel"; "static"; "baseline"; "sim" ]
    run
