(* E25 — mixing of repeated balls-into-bins against the Los & Sauerwald
   Theta(n log n) scale (m = Theta(n)), in two views.  First the exact
   tau(1/4) on the partition space for small n: the one-round law
   (deterministic ejection, then q sequential placements) folded through
   the same sparse exact pipeline the sequential processes use.  Then
   the empirical TV decay of the max-load observable at a realistic
   size, whose epsilon-crossing must land below the bound (observable
   TV lower-bounds state TV). *)

module Lv = Loadvec.Load_vector
module Ctx = Experiment.Ctx

let eps = 0.25

let geometric_times limit =
  let rec go t acc = if t > limit then List.rev acc else go (t * 4) (t :: acc) in
  go 1 []

let rules = [ (Rbb.uniform, 0); (Rbb.dchoice 2, 1) ]

let run ctx =
  (* Exact tau(1/4) on Omega_m: RBB is conservative, so the state space
     is the familiar partition space and the blocked-CSR exact layer
     applies verbatim. *)
  let metrics = Engine.Metrics.create () in
  let table =
    Ctx.table ctx ~title:"E25: RBB exact tau(0.25) on Omega_m vs n ln n"
      ~columns:[ "rule"; "n=m"; "|Omega|"; "exact tau"; "n ln n"; "ratio" ]
  in
  Ctx.iter_cells ctx (fun n ->
      let m = n in
      List.iter
        (fun (rule, _) ->
          let p = Rbb.make rule ~n in
          let a =
            Markov.Exact_builder.build_mix ~eps ~max_t:1_000_000
              ~domains:(Ctx.domains ctx)
              (Markov.Exact_builder.enumerated
                 (Markov.Partition_space.enumerate ~n ~m))
              ~transitions:(Rbb.exact_transitions p)
          in
          let cell =
            Printf.sprintf "cell %s n=%02d |Omega|=%d" (Rbb.name p) n
              a.state_count
          in
          Engine.Metrics.add_phase metrics (cell ^ " build") a.build_seconds;
          Engine.Metrics.add_phase metrics (cell ^ " mix") a.mix_seconds;
          let bound = Theory.Bounds.rbb_mixing ~n ~m in
          Ctx.row table
            ~values:
              [
                ("state_count", float_of_int a.state_count);
                ("exact_tau", float_of_int a.tau);
                ("bound", bound);
              ]
            [
              Rbb.name p;
              string_of_int n;
              string_of_int a.state_count;
              string_of_int a.tau;
              Printf.sprintf "%.1f" bound;
              Ctx.ratio_cell (float_of_int a.tau) bound;
            ])
        rules);
  Ctx.note table
    "the Los-Sauerwald scale is asymptotic: the ratio column should stay \
     bounded as n grows, not sit below 1";
  Ctx.emit ctx table;
  Engine.Metrics.dump ~label:"E25 exact-cell metrics"
    (Engine.Metrics.snapshot metrics);
  (* Empirical TV decay at a size the exact pipeline cannot reach. *)
  let n = Ctx.scale ctx ~quick:64 ~full:128 in
  let m = n in
  let reps = Ctx.scale ctx ~quick:400 ~full:2000 in
  List.iter
    (fun (rule, key) ->
      let p = Rbb.make rule ~n in
      let bound = int_of_float (Theory.Bounds.rbb_mixing ~n ~m) in
      let rng = Ctx.rng ctx ~experiment:(250_000 + (key * 10_000)) in
      let times =
        List.sort_uniq compare (bound :: geometric_times (2 * bound))
      in
      let profile =
        Markov.Empirical.decay_profile (Rbb.chain p) ~rng
          ~x0:(fun () -> Lv.all_in_one ~n ~m)
          ~y0:(fun () -> Lv.uniform ~n ~m)
          ~times ~reps ~observable:Lv.max_load
      in
      let table =
        Ctx.table ctx
          ~title:
            (Printf.sprintf "E25: TV(max load at t) for %s, n = m = %d"
               (Rbb.name p) n)
          ~columns:[ "t"; "estimated TV" ]
      in
      List.iter
        (fun (t, tv) ->
          Ctx.row table
            ~values:[ ("tv", tv) ]
            [ string_of_int t; Printf.sprintf "%.3f" tv ])
        profile;
      (match List.find_opt (fun (t, _) -> t = bound) profile with
      | Some (t, tv) ->
          Ctx.note table
            (Printf.sprintf
               "at the bound t = n ln n = %d the observable TV is %.3f %s \
                0.25 (observable TV lower-bounds state TV, so <= is required)"
               t tv
               (if tv <= 0.25 then "<=" else "> !! VIOLATION of"))
      | None -> ());
      Ctx.emit ctx table)
    rules

let spec =
  Experiment.Spec.v ~id:"e25"
    ~claim:"RBB mixing: exact tau and empirical TV vs the n ln n scale"
    ~tags:[ "rbb"; "mixing"; "tv"; "exact" ]
    ~grid:
      (Experiment.Grid.v ~axis:"n=m" ~quick:[ 4; 6; 8; 10 ]
         ~full:[ 4; 6; 8; 10; 12; 14; 16 ] ())
    run
