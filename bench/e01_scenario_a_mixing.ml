(* E1 — Theorem 1: the scenario-A processes mix (hence recover) in
   tau(eps) = ceil(m ln(m/eps)) steps.

   We run the paper's coupling (shared removal variate + shared probe
   sequence, Sections 3-4) on Id-ABKU[2] and Id-ADAP from the extremal
   pair (all balls in one bin vs balanced) and measure coalescence time,
   sweeping n = m.  The median should grow like m ln m with exponent 1 on
   the polynomial part. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let eps = 0.25

let run ctx =
  let reps = Ctx.reps ctx in
  let rules = [ Sr.abku 2; Sr.adap (Core.Adaptive.of_list [ 1; 2; 2; 3 ]) ] in
  List.iter
    (fun rule ->
      let table =
        Ctx.table ctx
          ~title:
            (Printf.sprintf "E1: coalescence of Id-%s vs Theorem 1 (eps=%.2f)"
               (Sr.name rule) eps)
          ~columns:
            [ "n=m"; "median coalescence [q10,q90]"; "Thm 1 bound"; "ratio" ]
      in
      let points = ref [] in
      Ctx.iter_cells ctx
        (fun n ->
          let m = n in
          let process = Core.Dynamic_process.make Core.Scenario.A rule ~n in
          let coupled = Core.Coupled.monotone process in
          let bound = Theory.Bounds.theorem1 ~m ~eps in
          let limit = 40 * int_of_float bound in
          let rng = Ctx.rng ctx ~experiment:(1000 + n) in
          let meas, metrics =
            Coupling.Coalescence.measure_with_metrics ~domains:(Ctx.domains ctx)
              ~reps ~limit ~rng coupled
              ~init:(fun _g ->
                ( Mv.of_load_vector (Lv.all_in_one ~n ~m),
                  Mv.of_load_vector (Lv.uniform ~n ~m) ))
          in
          points := (float_of_int m, meas.median) :: !points;
          Ctx.row table
            ~values:(Ctx.measurement_values meas @ [ ("bound", bound) ])
            ~metrics
            [
              string_of_int n;
              Ctx.cell_measurement meas;
              Printf.sprintf "%.0f" bound;
              Ctx.ratio_cell meas.median bound;
            ]);
      Ctx.note_exponent table ~points:(List.rev !points) ~log_exponent:1.
        ~expected:"1 (m ln m growth)" ~what:"median vs m (after / ln m)";
      Ctx.note table
        "ratio < 1 is expected: the theorem is an upper bound and the pair \
         is a single start, not the worst case over time";
      Ctx.emit ctx table)
    rules

let spec =
  Experiment.Spec.v ~id:"e1"
    ~claim:"Theorem 1: scenario-A mixing time = ceil(m ln(m/eps))"
    ~tags:[ "mixing"; "scenario-a"; "coupling"; "sim" ]
    ~grid:
      (Experiment.Grid.v ~axis:"n=m" ~quick:[ 16; 32; 64; 128; 256 ]
         ~full:[ 16; 32; 64; 128; 256; 512 ] ~reps:(15, 41) ())
    run
