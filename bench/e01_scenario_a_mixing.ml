(* E1 — Theorem 1: the scenario-A processes mix (hence recover) in
   tau(eps) = ceil(m ln(m/eps)) steps.

   We run the paper's coupling (shared removal variate + shared probe
   sequence, Sections 3-4) on Id-ABKU[2] and Id-ADAP from the extremal
   pair (all balls in one bin vs balanced) and measure coalescence time,
   sweeping n = m.  The median should grow like m ln m with exponent 1 on
   the polynomial part. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule

let eps = 0.25

let run (cfg : Config.t) =
  Exp_util.heading ~id:"E1"
    ~claim:"Theorem 1: scenario-A mixing time = ceil(m ln(m/eps))";
  let sizes = if cfg.full then [ 16; 32; 64; 128; 256; 512 ] else [ 16; 32; 64; 128; 256 ] in
  let reps = if cfg.full then 41 else 15 in
  let rules = [ Sr.abku 2; Sr.adap (Core.Adaptive.of_list [ 1; 2; 2; 3 ]) ] in
  List.iter
    (fun rule ->
      let table =
        Stats.Table.create
          ~title:
            (Printf.sprintf "E1: coalescence of Id-%s vs Theorem 1 (eps=%.2f)"
               (Sr.name rule) eps)
          ~columns:
            [ "n=m"; "median coalescence [q10,q90]"; "Thm 1 bound"; "ratio" ]
      in
      let points = ref [] in
      List.iter
        (fun n ->
          let m = n in
          let process = Core.Dynamic_process.make Core.Scenario.A rule ~n in
          let coupled = Core.Coupled.monotone process in
          let bound = Theory.Bounds.theorem1 ~m ~eps in
          let limit = 40 * int_of_float bound in
          let rng = Config.rng_for cfg ~experiment:(1000 + n) in
          let meas =
            Coupling.Coalescence.measure ~domains:cfg.domains ~reps ~limit ~rng coupled
              ~init:(fun _g ->
                ( Mv.of_load_vector (Lv.all_in_one ~n ~m),
                  Mv.of_load_vector (Lv.uniform ~n ~m) ))
          in
          points := (float_of_int m, meas.median) :: !points;
          Stats.Table.add_row table
            [
              string_of_int n;
              Exp_util.cell_measurement meas;
              Printf.sprintf "%.0f" bound;
              Exp_util.ratio_cell meas.median bound;
            ])
        sizes;
      Exp_util.note_exponent table ~points:(List.rev !points) ~log_exponent:1.
        ~expected:"1 (m ln m growth)" ~what:"median vs m (after / ln m)";
      Stats.Table.add_note table
        "ratio < 1 is expected: the theorem is an upper bound and the pair \
         is a single start, not the worst case over time";
      Exp_util.output table)
    rules
