(* E16 — weighted jobs (Berenbrink et al., cited in the paper's intro):
   the power of two choices for weighted loads.  Light-tailed weights
   keep the d >= 2 advantage; for heavy tails the largest single job
   dominates and the advantage fades - the qualitative crossover this
   table exhibits. *)

module W = Core.Weighted
module Ctx = Experiment.Ctx

let median_max ctx ~key ~n ~m ~d ~dist ~reps =
  let rng = Ctx.rng ctx ~experiment:key in
  let samples =
    Array.init reps (fun _ ->
        let g = Prng.Rng.split rng in
        W.max_load (W.static_run g ~n ~m ~d ~dist))
  in
  Stats.Quantile.median samples

let run ctx =
  let n = Ctx.scale ctx ~quick:16384 ~full:65536 in
  let reps = Ctx.scale ctx ~quick:9 ~full:15 in
  let dists =
    [
      W.Constant 1.;
      W.Uniform_unit;
      W.Exponential 1.;
      W.Pareto { alpha = 1.5; xmin = 1. };
    ]
  in
  let table =
    Ctx.table ctx
      ~title:(Printf.sprintf "E16: static weighted max load, n = m = %d" n)
      ~columns:[ "weights"; "d=1"; "d=2"; "d=4"; "d=1 / d=2" ]
  in
  List.iteri
    (fun row dist ->
      let med d =
        median_max ctx ~key:(16_000 + (10 * row) + d) ~n ~m:n ~d ~dist ~reps
      in
      let m1 = med 1 and m2 = med 2 and m4 = med 4 in
      Ctx.row table
        ~values:
          [ ("d1", m1); ("d2", m2); ("d4", m4); ("advantage", m1 /. m2) ]
        [
          W.dist_name dist;
          Printf.sprintf "%.2f" m1;
          Printf.sprintf "%.2f" m2;
          Printf.sprintf "%.2f" m4;
          Printf.sprintf "%.2f" (m1 /. m2);
        ])
    dists;
  Ctx.note table
    "the d >= 2 advantage is decisive for bounded weights and fades as \
     tails get heavier: for Pareto(1.5) the single heaviest job dominates \
     the maximum (note d=4 is no better than d=2 there)";
  (* Dynamic sanity: the weighted scenario-A process is stable. *)
  let g = Ctx.rng ctx ~experiment:16_500 in
  let t = W.static_run g ~n:1024 ~m:1024 ~d:2 ~dist:(W.Exponential 1.) in
  for _ = 1 to 50 * 1024 do
    W.dynamic_step t g ~d:2 ~dist:(W.Exponential 1.)
  done;
  Ctx.note table
    (Printf.sprintf
       "dynamic Id-style run (n=1024, exp weights, 50n steps): max load \
        %.2f, total weight %.0f (stable)"
       (W.max_load t) (W.total_weight t));
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e16"
    ~claim:"weighted jobs: two choices help light tails, not heavy tails"
    ~tags:[ "weighted"; "static"; "sim" ]
    run
