(* Benchmark harness: regenerates every experiment table of DESIGN.md /
   EXPERIMENTS.md through the declarative experiment framework
   (lib/experiment).

     dune exec bench/main.exe                      # default specs, quick sizes
     dune exec bench/main.exe -- e1 e8             # a subset
     dune exec bench/main.exe -- micro             # Bechamel per-step costs
     dune exec bench/main.exe -- --list            # ids and claims
     dune exec bench/main.exe -- --full            # paper-scale sweeps
     dune exec bench/main.exe -- --tags recovery   # select by tag
     dune exec bench/main.exe -- e1 --json out/    # + BENCH_RESULTS.json

   The environment variables BENCH_FULL / BENCH_SEED / BENCH_DOMAINS /
   BENCH_CSV / BENCH_JSON still set the defaults; flags override them. *)

let usage () =
  print_string
    "usage: main.exe [IDS] [OPTIONS]\n\
     \n\
     Run the paper's experiments (all default ones when no id is given).\n\
     \n\
     options:\n\
     \  --list           print every experiment id with its claim and tags\n\
     \                   (honours --tags; add -v for grid sizes and reps)\n\
     \  -v, --verbose    with --list: show each spec's quick/full grid\n\
     \  --full           paper-scale sweeps (BENCH_FULL=1)\n\
     \  --seed N         root seed (BENCH_SEED, default 0xB0B)\n\
     \  --domains N      replication fan-out width (BENCH_DOMAINS);\n\
     \                   results are identical for any value\n\
     \  --csv DIR        write every table as CSV into DIR (BENCH_CSV)\n\
     \  --json DIR       write BENCH_RESULTS.json into DIR (BENCH_JSON)\n\
     \  --trace FILE     write a Chrome/Perfetto trace of the run to FILE\n\
     \                   (REPRO_TRACE); open in https://ui.perfetto.dev\n\
     \  --checkpoint DIR snapshot long exact-analysis runs into DIR\n\
     \                   (BENCH_CHECKPOINT) so a killed run can resume\n\
     \  --resume         resume from snapshots left in the checkpoint dir\n\
     \                   (BENCH_RESUME); without it stale snapshots are\n\
     \                   deleted and the run starts fresh\n\
     \  --repr NAME      stepper state backend (BENCH_REPR): array (the\n\
     \                   default oracle), counts, or counts-sampled; only\n\
     \                   experiments flagged in --list -v honour it\n\
     \  --tags A,B       keep only experiments carrying one of the tags\n\
     \  --env            list every environment variable the harness reads\n\
     \  -h, --help       this message\n"

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "main.exe: %s\n%!" msg;
      exit 2)
    fmt

let split_tags s = String.split_on_char ',' s |> List.filter (( <> ) "")

let () =
  let specs = Experiments.Registry.all in
  let cfg = ref (Experiment.Config.load ()) in
  let ids = ref [] in
  let tags = ref [] in
  let list_only = ref false in
  let verbose = ref false in
  let int_value flag v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail "%s expects an integer, got %S" flag v
  in
  (* Accept both "--flag value" and "--flag=value". *)
  let split_eq a =
    match String.index_opt a '=' with
    | Some i when String.length a > 2 && a.[0] = '-' ->
        [ String.sub a 0 i; String.sub a (i + 1) (String.length a - i - 1) ]
    | _ -> [ a ]
  in
  let rec parse = function
    | [] -> ()
    | ("-h" | "--help") :: _ ->
        usage ();
        exit 0
    | "--list" :: rest ->
        list_only := true;
        parse rest
    | "--env" :: _ ->
        print_string (Experiment.Config.env_help ());
        exit 0
    | ("-v" | "--verbose") :: rest ->
        verbose := true;
        parse rest
    | "--trace" :: file :: rest ->
        cfg := { !cfg with trace = Some file };
        parse rest
    | "--full" :: rest ->
        cfg := { !cfg with full = true };
        parse rest
    | "--seed" :: v :: rest ->
        cfg := { !cfg with seed = int_value "--seed" v };
        parse rest
    | "--domains" :: v :: rest ->
        let d = int_value "--domains" v in
        if d < 1 then fail "--domains expects a value >= 1";
        cfg := { !cfg with domains = d };
        parse rest
    | "--csv" :: dir :: rest ->
        cfg := { !cfg with csv_dir = Some dir };
        parse rest
    | "--json" :: dir :: rest ->
        cfg := { !cfg with json_dir = Some dir };
        parse rest
    | "--checkpoint" :: dir :: rest ->
        cfg := { !cfg with checkpoint_dir = Some dir };
        parse rest
    | "--resume" :: rest ->
        cfg := { !cfg with resume = true };
        parse rest
    | "--repr" :: v :: rest ->
        if not (Experiment.Config.valid_repr v) then
          fail "--repr expects one of %s, got %S"
            (String.concat " | " Experiment.Config.repr_names)
            v;
        cfg := { !cfg with repr = v };
        parse rest
    | "--tags" :: v :: rest ->
        tags := !tags @ split_tags v;
        parse rest
    | [ ("--seed" | "--domains" | "--csv" | "--json" | "--tags" | "--trace"
        | "--checkpoint" | "--repr") as flag ] ->
        fail "%s expects a value" flag
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        fail "unknown option %S (see --help)" arg
    | id :: rest ->
        ids := String.lowercase_ascii id :: !ids;
        parse rest
  in
  parse (List.concat_map split_eq (List.tl (Array.to_list Sys.argv)));
  if !list_only then begin
    (match Experiment.Driver.unknown_tags specs !tags with
    | [] -> ()
    | bad ->
        fail "%s"
          (Experiment.Driver.selection_error_message specs
             (Experiment.Driver.Unknown_tags bad)));
    let listed =
      match !tags with
      | [] -> specs
      | tags ->
          List.filter
            (fun (s : Experiment.Spec.t) ->
              List.exists (fun t -> Experiment.Spec.has_tag s t) tags)
            specs
    in
    if listed = [] then
      fail "%s"
        (Experiment.Driver.selection_error_message specs
           Experiment.Driver.Empty_selection);
    Experiment.Driver.print_list ~verbose:!verbose ~repr:!cfg.repr listed;
    exit 0
  end;
  match
    Experiment.Driver.select specs ~ids:(List.rev !ids) ~tags:!tags
  with
  | Error e ->
      Printf.eprintf "main.exe: %s\n%!"
        (Experiment.Driver.selection_error_message specs e);
      exit 2
  | Ok selected -> ignore (Experiment.Driver.run ~config:!cfg selected)
