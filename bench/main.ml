(* Benchmark harness: regenerates every experiment table of DESIGN.md /
   EXPERIMENTS.md.

     dune exec bench/main.exe                 # all experiments, quick sizes
     dune exec bench/main.exe -- e1 e8        # a subset
     dune exec bench/main.exe -- micro        # Bechamel per-step costs
     BENCH_FULL=1 dune exec bench/main.exe    # paper-scale sweeps *)

let experiments : (string * string * (Config.t -> unit)) list =
  [
    ("e1", "Theorem 1: scenario-A mixing", E01_scenario_a_mixing.run);
    ("e2", "scenario-A recovery (Sec. 1.1)", E02_recovery_a.run);
    ("e3", "Claim 5.3: scenario-B mixing", E03_scenario_b_mixing.run);
    ("e4", "scenario-B recovery (Sec. 1.1)", E04_recovery_b.run);
    ("e5", "Azar et al. static max load", E05_static_maxload.run);
    ("e6", "fluid limit vs simulation", E06_fluid_vs_sim.run);
    ("e7", "exact mixing vs bounds", E07_exact_vs_bounds.run);
    ("e8", "Cor 6.4 / Thm 2: edge mixing", E08_edge_mixing.run);
    ("e9", "edge recovery + log log n", E09_edge_recovery.run);
    ("e10", "ADAP probe/balance ablation", E10_adap_ablation.run);
    ("e11", "open systems (Sec. 7)", E11_open_system.run);
    ("e12", "relocations (Sec. 7)", E12_relocation.run);
    ("e13", "empirical TV decay", E13_tv_decay.run);
    ("e14", "exact relaxation times", E14_relaxation.run);
    ("e15", "Theorem 1 m-scaling", E15_m_over_n.run);
    ("e16", "weighted jobs", E16_weighted.run);
    ("e17", "parallel allocation", E17_parallel.run);
    ("e18", "Go-Left ablation", E18_go_left.run);
    ("e19", "delayed path coupling", E19_delayed.run);
    ("e20", "recovery from bad states", E20_bad_states.run);
    ("e21", "coalescence tail", E21_coalescence_tail.run);
    ("e22", "other removal rules (Sec. 7)", E22_removal_rules.run);
  ]

let () =
  let cfg = Config.load () in
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.map String.lowercase_ascii args in
  let want_micro = List.mem "micro" args in
  let selected =
    List.filter (fun a -> a <> "micro") args |> function
    | [] -> if want_micro then [] else List.map (fun (id, _, _) -> id) experiments
    | ids -> ids
  in
  Printf.printf
    "Recovery Time of Dynamic Allocation Processes - experiment harness\n";
  Printf.printf "mode: %s, seed: %d\n%!"
    (if cfg.full then "FULL" else "quick (set BENCH_FULL=1 for paper-scale)")
    cfg.seed;
  List.iter
    (fun id ->
      match List.find_opt (fun (i, _, _) -> i = id) experiments with
      | Some (_, _, run) -> run cfg
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s micro\n%!" id
            (String.concat " " (List.map (fun (i, _, _) -> i) experiments)))
    selected;
  if want_micro then Micro.run ()
