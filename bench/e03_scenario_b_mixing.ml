(* E3 — Claim 5.3 and the full-version remarks: the scenario-B processes
   mix within O(n m^2 ln eps^-1); the improved analysis gives
   O~(m^2), and Omega(m^2) holds for large m.

   Same protocol as E1 with scenario B; the fitted exponent should land
   near 2 (the O(n m) / O~(m^2) / Omega(m^2) cluster at n = m), well
   below the exponent 3 of the simple Claim 5.3 bound. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let eps = 0.25

let run ctx =
  let reps = Ctx.reps ctx in
  let table =
    Ctx.table ctx ~title:"E3: coalescence of Ib-ABKU[2] vs scenario-B bounds"
      ~columns:
        [
          "n=m";
          "median coalescence [q10,q90]";
          "n m";
          "m^2 ln m";
          "Claim 5.3 (n m^2)";
          "ratio to n m";
        ]
  in
  let points = ref [] in
  Ctx.iter_cells ctx
    (fun n ->
      let m = n in
      let process = Core.Dynamic_process.make Core.Scenario.B (Sr.abku 2) ~n in
      let coupled = Core.Coupled.monotone process in
      let improved = Theory.Bounds.scenario_b_improved ~m in
      let claim = Theory.Bounds.claim53 ~n ~m ~eps in
      let limit = 200 * int_of_float improved in
      let rng = Ctx.rng ctx ~experiment:(3000 + n) in
      let meas, metrics =
        Coupling.Coalescence.measure_with_metrics ~domains:(Ctx.domains ctx)
          ~reps ~limit ~rng coupled
          ~init:(fun _g ->
            ( Mv.of_load_vector (Lv.all_in_one ~n ~m),
              Mv.of_load_vector (Lv.uniform ~n ~m) ))
      in
      points := (float_of_int m, meas.median) :: !points;
      let nm = float_of_int (n * m) in
      Ctx.row table
        ~values:
          (Ctx.measurement_values meas
          @ [ ("n_m", nm); ("improved", improved); ("claim53", claim) ])
        ~metrics
        [
          string_of_int n;
          Ctx.cell_measurement meas;
          Printf.sprintf "%.0f" nm;
          Printf.sprintf "%.0f" improved;
          Printf.sprintf "%.0f" claim;
          Ctx.ratio_cell meas.median nm;
        ]);
  Ctx.note_exponent table ~points:(List.rev !points) ~log_exponent:0.
    ~expected:"2 (Omega(m^2) .. O~(m^2)); Claim 5.3 alone would allow 3"
    ~what:"median vs m";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e3"
    ~claim:"Claim 5.3: scenario-B mixing O(n m^2); improved O~(m^2), Omega(m^2)"
    ~tags:[ "mixing"; "scenario-b"; "coupling"; "sim" ]
    ~grid:
      (Experiment.Grid.v ~axis:"n=m" ~quick:[ 8; 16; 32; 64; 128 ]
         ~full:[ 8; 16; 32; 64; 128; 192 ] ~reps:(15, 31) ())
    run
