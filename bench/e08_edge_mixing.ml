(* E8 — Corollary 6.4 and Theorem 2: the edge-orientation chain mixes in
   O(n^3 (ln n + ln eps^-1)) by the direct path-coupling argument,
   improved to O(n^2 ln^2 n), with an Omega(n^2) lower bound.

   Coalescence of the Section 6 coupling (shared (phi, psi, b) with the
   Lemma 6.2(7) bit flip) from the adversarial state vs the all-zero
   state. *)

module C = Edgeorient.Class_chain
module Ctx = Experiment.Ctx

let run ctx =
  let reps = Ctx.reps ctx in
  let table =
    Ctx.table ctx ~title:"E8: coalescence of the Section-6 edge coupling"
      ~columns:
        [
          "n";
          "median coalescence [q10,q90]";
          "Thm 2 (n^2 ln^2 n)";
          "Cor 6.4 (n^3 ln n)";
          "ratio to Thm 2";
        ]
  in
  let points = ref [] in
  Ctx.iter_cells ctx
    (fun n ->
      let coupled = C.coupled () in
      let thm2 = Theory.Bounds.theorem2 ~n in
      let cor = Theory.Bounds.corollary64 ~n ~eps:0.25 in
      let limit = 100 * int_of_float thm2 in
      let rng = Ctx.rng ctx ~experiment:(8000 + n) in
      let meas, metrics =
        Coupling.Coalescence.measure_with_metrics ~domains:(Ctx.domains ctx)
          ~reps ~limit ~rng coupled
          ~init:(fun _g -> (C.adversarial ~n, C.start ~n))
      in
      points := (float_of_int n, meas.median) :: !points;
      Ctx.row table
        ~values:
          (Ctx.measurement_values meas @ [ ("thm2", thm2); ("cor64", cor) ])
        ~metrics
        [
          string_of_int n;
          Ctx.cell_measurement meas;
          Printf.sprintf "%.0f" thm2;
          Printf.sprintf "%.0f" cor;
          Ctx.ratio_cell meas.median thm2;
        ]);
  Ctx.note_exponent table ~points:(List.rev !points) ~log_exponent:0.
    ~expected:"2..2.4 (n^2 times log factors; Cor 6.4 alone would allow 3+)"
    ~what:"median vs n";
  Ctx.emit ctx table;
  (* Exact ground truth on the enumerable state space Psi (the paper's
     Section 6 representation): tau(1/4) from the transition matrix next
     to the closed-form bounds. *)
  let exact_table =
    Ctx.table ctx ~title:"E8b: exact mixing of the edge chain on Psi"
      ~columns:
        [
          "n"; "|Psi|"; "exact tau(1/4)"; "beta on Gamma";
          "Lemma 3.1 bound"; "Thm 2"; "Cor 6.4";
        ]
  in
  let exact_sizes =
    if Ctx.full ctx then [ 4; 5; 6; 7; 8; 9 ] else [ 4; 5; 6; 7; 8 ]
  in
  List.iter
    (fun n ->
      let a =
        Markov.Exact_builder.build_mix ~eps:0.25 ~max_t:1_000_000
          ~domains:(Ctx.domains ctx)
          (Markov.Exact_builder.reachable ~root:(C.start ~n))
          ~transitions:C.exact_transitions
      in
      let states = Markov.Exact.states a.chain in
      let tau = a.tau in
      (* The full Section-6 pipeline, exactly: worst-case contraction of
         the coupling over Gamma pairs in the Definition-6.3 metric, fed
         through Lemma 3.1(1). *)
      let metric = Edgeorient.Path_metric.build ~states in
      let beta =
        List.fold_left
          (fun worst (x, y, _) ->
            let d0 =
              float_of_int (Edgeorient.Path_metric.distance metric x y)
            in
            let e =
              List.fold_left
                (fun acc ((x', y'), p) ->
                  acc
                  +. (p
                     *. float_of_int
                          (Edgeorient.Path_metric.distance metric x' y')))
                0.
                (C.coupled_exact_transitions x y)
            in
            Float.max worst (e /. d0))
          0.
          (Edgeorient.Path_metric.gamma_pairs metric)
      in
      let lemma_bound =
        Coupling.Path_coupling.bound_contractive ~beta
          ~diameter:(Edgeorient.Path_metric.diameter metric) ~eps:0.25
      in
      Ctx.row exact_table
        ~values:
          [
            ("state_count", float_of_int (Array.length states));
            ("exact_tau", float_of_int tau);
            ("beta", beta);
            ("lemma_bound", lemma_bound);
            ("thm2", Theory.Bounds.theorem2 ~n);
            ("cor64", Theory.Bounds.corollary64 ~n ~eps:0.25);
          ]
        [
          string_of_int n;
          string_of_int (Array.length states);
          string_of_int tau;
          Printf.sprintf "%.4f" beta;
          Printf.sprintf "%.0f" lemma_bound;
          Printf.sprintf "%.0f" (Theory.Bounds.theorem2 ~n);
          Printf.sprintf "%.0f" (Theory.Bounds.corollary64 ~n ~eps:0.25);
        ])
    exact_sizes;
  Ctx.note exact_table
    "soundness anchor: exact tau is below BOTH the Lemma 3.1 bound \
     (computed from the exact worst-case Gamma contraction in the \
     Definition-6.3 metric) and the closed-form theorems; the two upper \
     bounds are not mutually ordered at such small n";
  Ctx.emit ctx exact_table

let spec =
  Experiment.Spec.v ~id:"e8"
    ~claim:"edge orientation: O(n^3 ln n) -> O(n^2 ln^2 n), Omega(n^2)"
    ~tags:[ "edge-orientation"; "mixing"; "coupling"; "exact" ]
    ~grid:
      (Experiment.Grid.v ~axis:"n" ~quick:[ 8; 16; 32; 48; 64 ]
         ~full:[ 8; 16; 32; 64; 96 ] ~reps:(11, 21) ())
    run
