(* Shared helpers for the experiment tables. *)

let heading ~id ~claim =
  Printf.printf "\n#### %s — %s\n%!" id claim

(* Like mkdir -p; tolerates a concurrent bench process creating the
   same component between the existence check and the mkdir. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

(* Print the table; when BENCH_CSV names a directory, also dump the rows
   as CSV (one file per table, named from the title). *)
let output table =
  Stats.Table.print table;
  match Sys.getenv_opt "BENCH_CSV" with
  | None -> ()
  | Some dir ->
      mkdir_p dir;
      let sanitized =
        String.map
          (fun c ->
            match c with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
            | _ -> '_')
          (Stats.Table.title table)
      in
      let path = Filename.concat dir (sanitized ^ ".csv") in
      let oc = open_out path in
      output_string oc (Stats.Table.to_csv table);
      close_out oc

(* Fit a power law to (size, median) points, optionally dividing out a
   polylog factor first, and attach the result to the table as a note. *)
let note_exponent table ~points ~log_exponent ~expected ~what =
  match points with
  | _ :: _ :: _ ->
      let pts = Array.of_list points in
      let fit =
        if log_exponent = 0. then Stats.Regression.power_law pts
        else Stats.Regression.log_corrected_power_law ~log_exponent pts
      in
      Stats.Table.add_note table
        (Printf.sprintf
           "fitted exponent of %s: %.2f (R^2 = %.3f); theorem predicts %s"
           what fit.Stats.Regression.slope fit.Stats.Regression.r_squared
           expected)
  | _ -> Stats.Table.add_note table "too few sizes for an exponent fit"

let cell_measurement (m : Coupling.Coalescence.measurement) =
  if Float.is_nan m.median then "(all runs hit limit)"
  else
    Printf.sprintf "%.0f [%.0f, %.0f]" m.median m.q10 m.q90

let ratio_cell measured predicted =
  if Float.is_nan measured || predicted = 0. then "-"
  else Printf.sprintf "%.3f" (measured /. predicted)
