(* E19 — the delayed path coupling technique (the paper's reference [10],
   and the style of argument behind the full version's O~(m^2) bound for
   scenario B).

   One step of the scenario-B coupling contracts only weakly (Claims
   5.1-5.2 give E[Delta'] <= 1, not < 1).  But over a *block* of c * m^2
   steps the coupling contracts decisively, and Lemma 3.1 applied to the
   block chain yields a bound of block * O(log) - i.e. O~(m^2), far below
   Claim 5.3's O(n m^2 log).  This table measures the block contraction
   factor beta and compares the resulting delayed bound with Claim 5.3. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let run ctx =
  let reps = Ctx.reps ctx in
  let table =
    Ctx.table ctx ~title:"E19: block contraction of the Ib-ABKU[2] coupling"
      ~columns:
        [
          "n=m";
          "block (m^2/2)";
          "beta over block";
          "delayed bound";
          "Claim 5.3";
          "improvement";
        ]
  in
  Ctx.iter_cells ctx
    (fun n ->
      let m = n in
      let block = m * m / 2 in
      let process = Core.Dynamic_process.make Core.Scenario.B (Sr.abku 2) ~n in
      let coupled = Core.Coupled.monotone process in
      let rng = Ctx.rng ctx ~experiment:(19_000 + n) in
      let beta =
        Coupling.Delayed.block_beta_estimate ~reps ~block ~rng coupled
          ~pair:(fun _g ->
            ( Mv.of_load_vector (Lv.all_in_one ~n ~m),
              Mv.of_load_vector (Lv.uniform ~n ~m) ))
      in
      let diameter = m - ((m + n - 1) / n) in
      let claim = Theory.Bounds.claim53 ~n ~m ~eps:0.25 in
      if beta < 1. then begin
        let delayed =
          Coupling.Delayed.bound ~block ~beta ~diameter:(Stdlib.max 1 diameter)
            ~eps:0.25
        in
        Ctx.row table
          ~values:
            [
              ("block", float_of_int block);
              ("beta", beta);
              ("delayed", delayed);
              ("claim53", claim);
            ]
          [
            string_of_int n;
            string_of_int block;
            Printf.sprintf "%.3f" beta;
            Printf.sprintf "%.0f" delayed;
            Printf.sprintf "%.0f" claim;
            Printf.sprintf "%.0fx" (claim /. delayed);
          ]
      end
      else
        Ctx.row table
          ~values:
            [ ("block", float_of_int block); ("beta", beta); ("claim53", claim) ]
          [
            string_of_int n;
            string_of_int block;
            Printf.sprintf "%.3f (no contraction)" beta;
            "-";
            Printf.sprintf "%.0f" claim;
            "-";
          ]);
  Ctx.note table
    "the delayed bound grows like m^2 log m while Claim 5.3 grows like \
     n m^2 log: the improvement factor grows linearly in n";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e19"
    ~claim:"delayed path coupling turns O(n m^2) into O~(m^2) for scenario B"
    ~tags:[ "scenario-b"; "coupling"; "delayed" ]
    ~grid:
      (Experiment.Grid.v ~axis:"n=m" ~quick:[ 8; 16; 32 ]
         ~full:[ 8; 16; 32; 64 ] ~reps:(30, 60) ())
    run
