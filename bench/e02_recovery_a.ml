(* E2 — Section 1.1 (second removal scenario): starting from an arbitrary
   assignment, Id-ABKU[d] recovers the typical maximum load
   ln ln n / ln d + O(1) within O(n ln n) steps.

   We start with all n balls in one bin and measure the first time the
   maximum load drops to (fluid-limit prediction + 1), sweeping n. *)

module Ctx = Experiment.Ctx

(* Config.repr is validated at load time, so the parse cannot fail. *)
let repr_of ctx =
  match Core.Repr.of_string (Ctx.repr ctx) with
  | Ok r -> r
  | Error msg -> invalid_arg msg

let run ctx =
  let reps = Ctx.reps ctx in
  let repr = repr_of ctx in
  let d = 2 in
  let table =
    Ctx.table ctx ~title:"E2: recovery of Id-ABKU[2] to fluid max load + 1"
      ~columns:
        [ "n=m"; "target"; "median steps [q10,q90]"; "n ln n"; "ratio" ]
  in
  let points = ref [] in
  Ctx.iter_cells ctx
    (fun n ->
      let profile = Fluid.Mean_field.fixed_point_a ~d ~m_over_n:1. ~levels:40 in
      let target = Fluid.Mean_field.predicted_max_load ~n profile + 1 in
      let spec =
        {
          Core.Recovery.scenario = Core.Scenario.A;
          rule = Core.Scheduling_rule.abku d;
          n;
          m = n;
        }
      in
      let scale = Theory.Bounds.recovery_a_steps ~n in
      let rng = Ctx.rng ctx ~experiment:(2000 + n) in
      let meas, metrics =
        Core.Recovery.measure_with_metrics ~domains:(Ctx.domains ctx) ~repr
          ~rng ~reps spec ~target ~limit:(200 * int_of_float scale)
      in
      points := (float_of_int n, meas.median) :: !points;
      Ctx.row table
        ~values:
          (Ctx.measurement_values meas
          @ [ ("target", float_of_int target); ("scale", scale) ])
        ~metrics
        [
          string_of_int n;
          string_of_int target;
          Ctx.cell_measurement meas;
          Printf.sprintf "%.0f" scale;
          Ctx.ratio_cell meas.median scale;
        ]);
  Ctx.note_exponent table ~points:(List.rev !points) ~log_exponent:1.
    ~expected:"1 (n ln n growth)" ~what:"median vs n (after / ln n)";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e2"
    ~claim:"scenario-A recovery from the worst state in O(n ln n) steps"
    ~tags:[ "recovery"; "scenario-a"; "sim" ] ~uses_repr:true
    ~grid:
      (Experiment.Grid.v ~axis:"n=m" ~quick:[ 128; 256; 512; 1024; 2048 ]
         ~full:[ 128; 256; 512; 1024; 2048; 4096 ] ~reps:(11, 31) ())
    run
