(* E2 — Section 1.1 (second removal scenario): starting from an arbitrary
   assignment, Id-ABKU[d] recovers the typical maximum load
   ln ln n / ln d + O(1) within O(n ln n) steps.

   We start with all n balls in one bin and measure the first time the
   maximum load drops to (fluid-limit prediction + 1), sweeping n. *)

let run (cfg : Config.t) =
  Exp_util.heading ~id:"E2"
    ~claim:"scenario-A recovery from the worst state in O(n ln n) steps";
  let sizes =
    if cfg.full then [ 128; 256; 512; 1024; 2048; 4096 ]
    else [ 128; 256; 512; 1024; 2048 ]
  in
  let reps = if cfg.full then 31 else 11 in
  let d = 2 in
  let table =
    Stats.Table.create
      ~title:"E2: recovery of Id-ABKU[2] to fluid max load + 1"
      ~columns:
        [ "n=m"; "target"; "median steps [q10,q90]"; "n ln n"; "ratio" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let profile = Fluid.Mean_field.fixed_point_a ~d ~m_over_n:1. ~levels:40 in
      let target = Fluid.Mean_field.predicted_max_load ~n profile + 1 in
      let spec =
        {
          Core.Recovery.scenario = Core.Scenario.A;
          rule = Core.Scheduling_rule.abku d;
          n;
          m = n;
        }
      in
      let scale = Theory.Bounds.recovery_a_steps ~n in
      let rng = Config.rng_for cfg ~experiment:(2000 + n) in
      let meas =
        Core.Recovery.measure ~domains:cfg.domains ~rng ~reps spec ~target
          ~limit:(200 * int_of_float scale)
      in
      points := (float_of_int n, meas.median) :: !points;
      Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int target;
          Exp_util.cell_measurement meas;
          Printf.sprintf "%.0f" scale;
          Exp_util.ratio_cell meas.median scale;
        ])
    sizes;
  Exp_util.note_exponent table ~points:(List.rev !points) ~log_exponent:1.
    ~expected:"1 (n ln n growth)" ~what:"median vs n (after / ln n)";
  Exp_util.output table
