(* E14 — the exact decay curve behind the mixing-time definition: on
   small state spaces the worst-case TV distance decays exponentially
   with relaxation time tau_rel; tau(eps) then scales like
   tau_rel * ln(1/eps).  We verify both on the exact chains, including
   that tau(eps) grows logarithmically as eps shrinks - the ln(eps^-1)
   dependence in every bound of the paper. *)

module Sr = Core.Scheduling_rule

let run (cfg : Config.t) =
  Exp_util.heading ~id:"E14"
    ~claim:"exact TV decay is exponential; tau(eps) ~ tau_rel ln(1/eps)";
  let sizes = if cfg.full then [ 5; 6; 7; 8 ] else [ 5; 6; 7 ] in
  List.iter
    (fun scenario ->
      let table =
        Stats.Table.create
          ~title:
            (Printf.sprintf "E14: %s-ABKU[2] exact decay"
               (match scenario with Core.Scenario.A -> "Id" | B -> "Ib"))
          ~columns:
            [
              "n=m";
              "tau(0.25)";
              "tau(0.01)";
              "ratio";
              "tau_rel (fit)";
              "tau_rel*ln(25)";
            ]
      in
      List.iter
        (fun n ->
          let process = Core.Dynamic_process.make scenario (Sr.abku 2) ~n in
          let states = Markov.Partition_space.enumerate ~n ~m:n in
          let chain =
            Markov.Exact.build ~states
              ~transitions:(Core.Dynamic_process.exact_transitions process)
          in
          let tau25 = Markov.Exact.mixing_time ~eps:0.25 chain in
          let tau01 = Markov.Exact.mixing_time ~eps:0.01 chain in
          let tau_rel =
            Markov.Exact.relaxation_estimate chain ~max_t:(8 * tau01) ()
          in
          Stats.Table.add_row table
            [
              string_of_int n;
              string_of_int tau25;
              string_of_int tau01;
              Printf.sprintf "%.2f" (float_of_int tau01 /. float_of_int tau25);
              Printf.sprintf "%.2f" tau_rel;
              Printf.sprintf "%.2f" (tau_rel *. log 25.);
            ])
        sizes;
      Stats.Table.add_note table
        "tau(0.01)/tau(0.25) stays bounded (~ln(25)/ln(4) + offset): the \
         ln(eps^-1) dependence of Lemma 3.1; tau_rel*ln(25) tracks \
         tau(0.01) - tau(0.25) up to the pi_min offset";
      Exp_util.output table)
    [ Core.Scenario.A; Core.Scenario.B ]
