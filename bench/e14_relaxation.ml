(* E14 — the exact decay curve behind the mixing-time definition: on
   small state spaces the worst-case TV distance decays exponentially
   with relaxation time tau_rel; tau(eps) then scales like
   tau_rel * ln(1/eps).  We verify both on the exact chains, including
   that tau(eps) grows logarithmically as eps shrinks - the ln(eps^-1)
   dependence in every bound of the paper.

   Cells run through the sparse exact layer (Markov.Exact_builder);
   |Omega| is reported in the table and per-cell wall-clock through
   Engine.Metrics phases (dump with BENCH_METRICS=1), keeping the
   default table byte-identical across runs and domain counts.  The
   blocked streaming build plus designated extremal starts (see e07)
   extend the full-mode scenario-A grid to n = m = 30 (|Omega| =
   5604). *)

module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

(* Same designated-start rule as e07: above this |Omega| the searches
   run from the extremal pair only (monotone-coupling domination). *)
let all_starts_ceiling = 2000
let scenario_b_ceiling = 13

let run ctx =
  List.iter
    (fun scenario ->
      let metrics = Engine.Metrics.create () in
      let table =
        Ctx.table ctx
          ~title:
            (Printf.sprintf "E14: %s-ABKU[2] exact decay"
               (match scenario with Core.Scenario.A -> "Id" | B -> "Ib"))
          ~columns:
            [
              "n=m";
              "|Omega|";
              "tau(0.25)";
              "tau(0.01)";
              "ratio";
              "tau_rel (fit)";
              "tau_rel*ln(25)";
            ]
      in
      let scen_tag =
        match scenario with Core.Scenario.A -> "id" | B -> "ib"
      in
      Ctx.iter_cells ctx
        (fun n ->
          if scenario = Core.Scenario.B && n > scenario_b_ceiling then ()
          else begin
          let process = Core.Dynamic_process.make scenario (Sr.abku 2) ~n in
          let designated =
            Markov.Partition_space.count ~n ~m:n > all_starts_ceiling
          in
          let start_states =
            if designated then
              Some
                [|
                  Loadvec.Load_vector.all_in_one ~n ~m:n;
                  Loadvec.Load_vector.uniform ~n ~m:n;
                |]
            else None
          in
          let checkpoint =
            Option.map Markov.Exact_checkpoint.file_sink
              (Ctx.checkpoint_path ctx
                 ~name:(Printf.sprintf "%s_n%02d" scen_tag n))
          in
          let a =
            Markov.Exact_builder.build_mix ~eps:0.25 ~domains:(Ctx.domains ctx)
              ?starts:start_states ?checkpoint
              (Markov.Exact_builder.enumerated
                 (Markov.Partition_space.enumerate ~n ~m:n))
              ~transitions:(Core.Dynamic_process.exact_transitions process)
          in
          let starts =
            Option.map
              (Array.map (fun v -> Markov.Exact.index a.chain v))
              start_states
          in
          let tau25 = a.tau in
          let t1 = Unix.gettimeofday () in
          let tau01 =
            Markov.Exact.mixing_time ~eps:0.01 ~domains:(Ctx.domains ctx)
              ?starts a.chain
          in
          let tau_rel =
            Markov.Exact.relaxation_estimate ~domains:(Ctx.domains ctx) ?starts
              a.chain ~max_t:(8 * tau01) ()
          in
          let tail_seconds = Unix.gettimeofday () -. t1 in
          let cell = Printf.sprintf "cell n=%02d |Omega|=%d" n a.state_count in
          Engine.Metrics.add_phase metrics (cell ^ " build") a.build_seconds;
          Engine.Metrics.add_phase metrics (cell ^ " mix")
            (a.mix_seconds +. tail_seconds);
          Ctx.row table
            ~values:
              [
                ("state_count", float_of_int a.state_count);
                ("tau25", float_of_int tau25);
                ("tau01", float_of_int tau01);
                ("tau_rel", tau_rel);
              ]
            [
              string_of_int n;
              string_of_int a.state_count;
              string_of_int tau25;
              string_of_int tau01;
              Printf.sprintf "%.2f" (float_of_int tau01 /. float_of_int tau25);
              Printf.sprintf "%.2f" tau_rel;
              Printf.sprintf "%.2f" (tau_rel *. log 25.);
            ]
          end);
      Ctx.note table
        "tau(0.01)/tau(0.25) stays bounded (~ln(25)/ln(4) + offset): the \
         ln(eps^-1) dependence of Lemma 3.1; tau_rel*ln(25) tracks \
         tau(0.01) - tau(0.25) up to the pi_min offset";
      Ctx.emit ctx table;
      Engine.Metrics.dump
        ~label:
          (Printf.sprintf "E14 %s exact-cell metrics"
             (match scenario with Core.Scenario.A -> "Id" | B -> "Ib"))
        (Engine.Metrics.snapshot metrics))
    [ Core.Scenario.A; Core.Scenario.B ]

let spec =
  Experiment.Spec.v ~id:"e14"
    ~claim:"exact TV decay is exponential; tau(eps) ~ tau_rel ln(1/eps)"
    ~tags:[ "exact"; "mixing"; "relaxation" ]
    ~grid:
      (Experiment.Grid.v ~axis:"n=m" ~quick:[ 6; 8; 10; 12 ]
         ~full:[ 6; 8; 10; 12; 13; 20; 30 ] ())
    run
