(* E21 — the geometric tail behind Lemma 3.1's boosting: once the
   expected coalescence horizon has passed, each further horizon halves
   the survival probability (run T steps, Markov's inequality, restart).
   Consequence: high quantiles of the coalescence time grow *linearly*
   in the number of halvings, i.e. q(1 - 2^-k) - q(1 - 2^-(k-1)) is
   roughly constant in k.  We measure the quantile ladder for both
   scenarios. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let run ctx =
  let n = Ctx.scale ctx ~quick:32 ~full:64 in
  let reps = Ctx.scale ctx ~quick:801 ~full:2001 in
  let table =
    Ctx.table ctx
      ~title:
        (Printf.sprintf
           "E21: coalescence quantile ladder, n = m = %d (%d runs)" n reps)
      ~columns:[ "process"; "q50"; "q75"; "q87.5"; "q93.75"; "ladder steps" ]
  in
  List.iter
    (fun scenario ->
      let process = Core.Dynamic_process.make scenario (Sr.abku 2) ~n in
      let coupled = Core.Coupled.monotone process in
      let rng =
        Ctx.rng ctx
          ~experiment:(21_000 + match scenario with Core.Scenario.A -> 0 | B -> 1)
      in
      let meas, metrics =
        Coupling.Coalescence.measure_with_metrics ~domains:(Ctx.domains ctx)
          ~reps ~limit:10_000_000 ~rng coupled
          ~init:(fun _g ->
            ( Mv.of_load_vector (Lv.all_in_one ~n ~m:n),
              Mv.of_load_vector (Lv.uniform ~n ~m:n) ))
      in
      let xs = Stats.Quantile.of_ints meas.times in
      let q p = Stats.Quantile.quantile xs p in
      let q50 = q 0.5 and q75 = q 0.75 and q875 = q 0.875 and q9375 = q 0.9375 in
      let steps =
        Printf.sprintf "%.0f / %.0f / %.0f" (q75 -. q50) (q875 -. q75)
          (q9375 -. q875)
      in
      Ctx.row table
        ~values:
          [ ("q50", q50); ("q75", q75); ("q875", q875); ("q9375", q9375) ]
        ~metrics
        [
          Core.Dynamic_process.name process;
          Printf.sprintf "%.0f" q50;
          Printf.sprintf "%.0f" q75;
          Printf.sprintf "%.0f" q875;
          Printf.sprintf "%.0f" q9375;
          steps;
        ])
    [ Core.Scenario.A; Core.Scenario.B ];
  Ctx.note table
    "each halving of the survival probability costs about the same number \
     of extra steps (the three ladder steps are of one magnitude, not \
     doubling): the exponential-tail structure Lemma 3.1(2) exploits";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e21"
    ~claim:"coalescence times have geometric tails (Lemma 3.1 boosting)"
    ~tags:[ "coupling"; "tail"; "sim" ]
    run
