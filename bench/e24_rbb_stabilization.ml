(* E24 — self-stabilization of repeated balls-into-bins (Becchetti,
   Clementi, Natale, Pasquale, Posta): with m = n balls, from any
   configuration — here the worst one, all balls in one bin — the
   maximum load drops to O(log n) within O(n) rounds w.h.p., and stays
   there.  We measure the first round at which the max load is
   <= ceil(2 ln n), sweeping n, for both re-placement rules.  The round
   is the engine's unit transition, so the generic first-hit driver
   applies unchanged. *)

module Lv = Loadvec.Load_vector
module Ctx = Experiment.Ctx

(* Config.repr is validated at load time, so the parse cannot fail. *)
let repr_of ctx =
  match Core.Repr.of_string (Ctx.repr ctx) with
  | Ok r -> r
  | Error msg -> invalid_arg msg

let run ctx =
  let reps = Ctx.reps ctx in
  let repr = repr_of ctx in
  List.iter
    (fun (rule, key) ->
      let table =
        Ctx.table ctx
          ~title:
            (Printf.sprintf
               "E24: RBB-%s stabilization from one full bin to max load <= 2 \
                ln n"
               (Rbb.rule_name rule))
          ~columns:[ "n=m"; "target"; "median rounds [q10,q90]"; "n"; "ratio" ]
      in
      let points = ref [] in
      Ctx.iter_cells ctx (fun n ->
          let m = n in
          let p = Rbb.make rule ~n in
          let target =
            int_of_float (ceil (2. *. Theory.Bounds.rbb_max_load ~n))
          in
          let scale = Theory.Bounds.rbb_stabilization ~n in
          let rng = Ctx.rng ctx ~experiment:(240_000 + (key * 10_000) + n) in
          let meas, metrics =
            Engine.Runner.measure ~domains:(Ctx.domains ctx) ~rng ~reps
              ~limit:(50 * n)
              (fun g metrics ~limit ->
                let s = Rbb.sim_repr ~metrics ~repr p (Lv.all_in_one ~n ~m) in
                Engine.Sim.first_hit s g ~pred:(fun ml -> ml <= target) ~limit)
          in
          points := (float_of_int n, meas.median) :: !points;
          Ctx.row table
            ~values:
              (Ctx.measurement_values meas
              @ [ ("target", float_of_int target); ("scale", scale) ])
            ~metrics
            [
              string_of_int n;
              string_of_int target;
              Ctx.cell_measurement meas;
              Printf.sprintf "%.0f" scale;
              Ctx.ratio_cell meas.median scale;
            ]);
      Ctx.note_exponent table ~points:(List.rev !points) ~log_exponent:0.
        ~expected:"1 (linear rounds)" ~what:"median rounds vs n";
      Ctx.emit ctx table)
    [ (Rbb.uniform, 0); (Rbb.dchoice 2, 1) ]

let spec =
  Experiment.Spec.v ~id:"e24"
    ~claim:"RBB self-stabilizes to max load O(log n) within O(n) rounds"
    ~tags:[ "rbb"; "recovery"; "sim" ] ~uses_repr:true
    ~grid:
      (Experiment.Grid.v ~axis:"n=m" ~quick:[ 128; 256; 512; 1024 ]
         ~full:[ 128; 256; 512; 1024; 2048; 4096 ] ~reps:(11, 31) ())
    run
