(* E20 — "recovery from ANY arbitrarily bad situation" (the paper's
   framing in Section 1): the mixing-time bound is uniform over starting
   states, so recovery should depend only weakly on the shape of the bad
   state.  We compare recovery times of Id-ABKU[2] from a spectrum of
   initial configurations at the same n = m. *)

module Lv = Loadvec.Load_vector
module Sr = Core.Scheduling_rule
module Ctx = Experiment.Ctx

let initial_states n =
  [
    ("all in one bin", fun () ->
        let a = Array.make n 0 in
        a.(0) <- n;
        a);
    ("two spikes n/2", fun () ->
        let a = Array.make n 0 in
        a.(0) <- n / 2;
        a.(1) <- n - (n / 2);
        a);
    ("sqrt(n) spikes", fun () ->
        let k = int_of_float (sqrt (float_of_int n)) in
        let a = Array.make n 0 in
        for i = 0 to k - 1 do
          a.(i) <- n / k
        done;
        a.(0) <- a.(0) + (n - (n / k * k));
        a);
    ("one bin at 4x", fun () ->
        (* Balanced except one bin holding 4 extra levels. *)
        let a = Array.make n 1 in
        let extra = Stdlib.min (n - 1) 4 in
        a.(0) <- 1 + extra;
        for i = 1 to extra do
          a.(i) <- 0
        done;
        a);
    ("random (typical)", fun () ->
        let g = Prng.Rng.create ~seed:99 () in
        let a = Array.make n 0 in
        for _ = 1 to n do
          let b = Prng.Rng.int g n in
          a.(b) <- a.(b) + 1
        done;
        a);
  ]

let run ctx =
  let n = Ctx.scale ctx ~quick:512 ~full:2048 in
  let reps = Ctx.scale ctx ~quick:15 ~full:31 in
  let d = 2 in
  let profile = Fluid.Mean_field.fixed_point_a ~d ~m_over_n:1. ~levels:40 in
  let target = Fluid.Mean_field.predicted_max_load ~n profile + 1 in
  let table =
    Ctx.table ctx
      ~title:
        (Printf.sprintf
           "E20: Id-ABKU[2] recovery to max load <= %d from various bad \
            states, n = m = %d"
           target n)
      ~columns:
        [ "initial state"; "initial max"; "median steps [q10,q90]"; "n ln n" ]
  in
  let scale = Theory.Bounds.recovery_a_steps ~n in
  List.iter
    (fun (label, make_state) ->
      let rng = Ctx.rng ctx ~experiment:(20_000 + Hashtbl.hash label) in
      let times = ref [] in
      let initial_max = ref 0 in
      for _ = 1 to reps do
        let g = Prng.Rng.split rng in
        let bins = Core.Bins.of_loads (make_state ()) in
        initial_max := Core.Bins.max_load bins;
        let sys = Core.System.create Core.Scenario.A (Sr.abku d) bins in
        match
          Core.System.run_until g sys
            ~pred:(fun s -> Core.System.max_load s <= target)
            ~limit:(500 * int_of_float scale)
        with
        | Some t -> times := float_of_int t :: !times
        | None -> ()
      done;
      let xs = Array.of_list !times in
      let cell =
        if Array.length xs = 0 then "(limit)"
        else
          Printf.sprintf "%.0f [%.0f, %.0f]" (Stats.Quantile.median xs)
            (Stats.Quantile.quantile xs 0.1)
            (Stats.Quantile.quantile xs 0.9)
      in
      Ctx.row table
        ~values:
          [
            ("initial_max", float_of_int !initial_max);
            ( "median",
              if Array.length xs = 0 then nan else Stats.Quantile.median xs );
            ("scale", scale);
          ]
        [ label; string_of_int !initial_max; cell; Printf.sprintf "%.0f" scale ])
    (initial_states n);
  Ctx.note table
    "every bad start recovers within the same O(n ln n) scale; the typical \
     start needs only O(1) steps - recovery cost is about the worst bin, \
     not the number of misplaced balls";
  Ctx.emit ctx table

let spec =
  Experiment.Spec.v ~id:"e20"
    ~claim:"recovery is uniform over bad starting states (Section 1)"
    ~tags:[ "recovery"; "scenario-a"; "sim" ]
    run
