(* Exact verification of the Section 4 coupling analysis by enumerating
   every atom of its randomness: the removal index i (law A(v)), the
   redirect coin (probability 1/v_lambda) and the d-probe sequence b in
   [n]^d shared by both insertions.  This turns Lemma 4.1 and
   Corollary 4.2 into machine-precision identities on small instances,
   complementing the statistical tests in Test_core_process.

   Also: Go-Left rule unit tests. *)

module Lv = Loadvec.Load_vector
module Sr = Core.Scheduling_rule

(* D(v, b) for ABKU[d] on a normalized vector = max probe (0-based). *)
let insert_rank_abku b = Array.fold_left Stdlib.max 0 b

(* Enumerate all probe sequences in [n]^d with a callback carrying the
   uniform probability. *)
let iter_probe_sequences ~n ~d f =
  let b = Array.make d 0 in
  let p = 1. /. (float_of_int n ** float_of_int d) in
  let rec go i = if i = d then f b p else
      for v = 0 to n - 1 do
        b.(i) <- v;
        go (i + 1)
      done
  in
  go 0

(* Exact E[Delta(v', u')] and Pr[coalesced] for one step of the paper's
   scenario-A coupling from the adjacent pair (v, u),
   v = u + e_lambda - e_delta. *)
let exact_expected_delta_a ~d v u =
  let lambda, delta =
    match Core.Coupled.find_adjacent_offsets v u with
    | Some (l, dd) -> (l, dd)
    | None -> invalid_arg "not adjacent"
  in
  let n = Lv.dim v and m = Lv.total v in
  let vload = Lv.to_array v in
  let expected = ref 0. and p_one = ref 0. in
  for i = 0 to n - 1 do
    if vload.(i) > 0 then begin
      let p_i = float_of_int vload.(i) /. float_of_int m in
      (* redirect options: j = i (probability 1 - redirect) and, when
         i = lambda, j = delta with probability 1/v_lambda. *)
      let branches =
        if i = lambda then begin
          let r = 1. /. float_of_int vload.(lambda) in
          if r >= 1. then [ (delta, 1.) ] else [ (delta, r); (i, 1. -. r) ]
        end
        else [ (i, 1.) ]
      in
      List.iter
        (fun (j, p_branch) ->
          let v_star = Lv.ominus v i and u_star = Lv.ominus u j in
          iter_probe_sequences ~n ~d (fun b p_probe ->
              let rv = insert_rank_abku b and ru = insert_rank_abku b in
              let v' = Lv.oplus v_star rv and u' = Lv.oplus u_star ru in
              let dd = float_of_int (Lv.delta v' u') in
              let w = p_i *. p_branch *. p_probe in
              expected := !expected +. (w *. dd);
              if dd <> 1. then p_one := !p_one +. w))
        branches
    end
  done;
  (!expected, !p_one)

let check_pair_a ~d v u =
  let m = Lv.total v in
  let expected, _ = exact_expected_delta_a ~d v u in
  let bound = 1. -. (1. /. float_of_int m) in
  if expected > bound +. 1e-12 then
    Alcotest.failf "E[Delta'] = %.6f > 1 - 1/m = %.6f for %s/%s" expected bound
      (Format.asprintf "%a" Lv.pp v)
      (Format.asprintf "%a" Lv.pp u)

let test_corollary_4_2_exact_small () =
  (* All adjacent pairs over a small state space, d = 2. *)
  let n = 3 and m = 4 in
  let states = Markov.Partition_space.enumerate ~n ~m in
  let count = ref 0 in
  Array.iter
    (fun v ->
      Array.iter
        (fun u ->
          match Core.Coupled.find_adjacent_offsets v u with
          | Some _ ->
              incr count;
              check_pair_a ~d:2 v u
          | None -> ())
        states)
    states;
  Alcotest.(check bool) "some pairs checked" true (!count >= 4)

let test_corollary_4_2_exact_d_sweep () =
  let u = Lv.of_array [| 2; 2; 1; 1 |] in
  let v = Lv.oplus (Lv.ominus u 3) 0 in
  (* v = [3;2;1;0]-ish adjacent pair *)
  match Core.Coupled.find_adjacent_offsets v u with
  | None -> Alcotest.fail "constructed pair not adjacent"
  | Some _ ->
      List.iter (fun d -> check_pair_a ~d v u) [ 1; 2; 3 ]

let test_lemma_4_1_exact_support () =
  (* Enumerated outcomes never exceed distance 1 (Lemma 4.1). *)
  let u = Lv.of_array [| 3; 1; 1; 0 |] in
  let v = Lv.oplus (Lv.ominus u 1) 0 in
  match Core.Coupled.find_adjacent_offsets v u with
  | None -> Alcotest.fail "not adjacent"
  | Some (lambda, _) ->
      let n = Lv.dim v and m = Lv.total v in
      let vload = Lv.to_array v in
      for i = 0 to n - 1 do
        if vload.(i) > 0 then begin
          let branches =
            if i = lambda then
              [ (match Core.Coupled.find_adjacent_offsets v u with
                 | Some (_, d) -> d
                 | None -> assert false); i ]
            else [ i ]
          in
          List.iter
            (fun j ->
              if Lv.get u j > 0 then begin
                let v_star = Lv.ominus v i and u_star = Lv.ominus u j in
                iter_probe_sequences ~n ~d:2 (fun b _ ->
                    let r = insert_rank_abku b in
                    let v' = Lv.oplus v_star r and u' = Lv.oplus u_star r in
                    if Lv.delta v' u' > 1 then
                      Alcotest.failf "outcome at distance %d" (Lv.delta v' u'))
              end)
            branches
        end
      done;
      ignore m

(* Exact enumeration of the Section 5 (scenario B) coupling from an
   adjacent pair: removal branches per the s1 = s2 / s1 <> s2 case split,
   then the shared d-probe insertion.  Verifies E[Delta'] <= 1 and
   Pr[Delta' <> 1] >= 1/(2 s2) exactly (Claims 5.1-5.3 ingredients). *)
let exact_expected_delta_b ~d v u =
  let lambda, delta =
    match Core.Coupled.find_adjacent_offsets v u with
    | Some (l, dd) -> (l, dd)
    | None -> invalid_arg "not adjacent"
  in
  let n = Lv.dim v in
  let s1 = Lv.support v and s2 = Lv.support u in
  (* Removal branches: (i, i', probability). *)
  let branches =
    if s1 = s2 then
      List.init s1 (fun i ->
          let i' = if i = lambda then delta else if i = delta then lambda else i in
          (i, i', 1. /. float_of_int s1))
    else
      List.concat_map
        (fun i' ->
          let p = 1. /. float_of_int s2 in
          if i' = delta then [ (lambda, i', p) ]
          else if i' = lambda then
            List.init s1 (fun i -> (i, i', p /. float_of_int s1))
          else [ (i', i', p) ])
        (List.init s2 (fun k -> k))
  in
  let expected = ref 0. and p_changed = ref 0. in
  List.iter
    (fun (i, i', p_rem) ->
      let v_star = Lv.ominus v i and u_star = Lv.ominus u i' in
      iter_probe_sequences ~n ~d (fun b p_probe ->
          let r = insert_rank_abku b in
          let v' = Lv.oplus v_star r and u' = Lv.oplus u_star r in
          let dd = float_of_int (Lv.delta v' u') in
          let w = p_rem *. p_probe in
          expected := !expected +. (w *. dd);
          if dd <> 1. then p_changed := !p_changed +. w))
    branches;
  (!expected, !p_changed, s2)

let test_claims_5_1_5_2_exact () =
  let n = 4 and m = 5 in
  let states = Markov.Partition_space.enumerate ~n ~m in
  let checked = ref 0 in
  Array.iter
    (fun v ->
      Array.iter
        (fun u ->
          match Core.Coupled.find_adjacent_offsets v u with
          | Some _ ->
              incr checked;
              let expected, p_changed, s2 = exact_expected_delta_b ~d:2 v u in
              if expected > 1. +. 1e-12 then
                Alcotest.failf "E[Delta'] = %.6f > 1 for %s/%s" expected
                  (Format.asprintf "%a" Lv.pp v)
                  (Format.asprintf "%a" Lv.pp u);
              if p_changed < 1. /. (2. *. float_of_int s2) -. 1e-12 then
                Alcotest.failf "Pr[Delta' <> 1] = %.6f < 1/(2 s) for %s/%s"
                  p_changed
                  (Format.asprintf "%a" Lv.pp v)
                  (Format.asprintf "%a" Lv.pp u)
          | None -> ())
        states)
    states;
  Alcotest.(check bool) "pairs checked" true (!checked >= 8)

let test_scenario_b_exact_support_distance_two () =
  (* Claim 5.1's case analysis allows Delta' = 2; enumerate one pair and
     check the exact outcome support is {0, 1, 2}. *)
  let u = Lv.of_array [| 2; 2; 1; 0 |] in
  let v = Lv.oplus (Lv.ominus u 2) 0 in
  match Core.Coupled.find_adjacent_offsets v u with
  | None -> Alcotest.fail "not adjacent"
  | Some _ ->
      let expected, p_changed, _ = exact_expected_delta_b ~d:2 v u in
      Alcotest.(check bool) "expectation <= 1" true (expected <= 1. +. 1e-12);
      Alcotest.(check bool) "some change probability" true (p_changed > 0.)

(* ---- Go-Left ---- *)

let rng ?(seed = 42) () = Prng.Rng.create ~seed ()

let test_go_left_make_invalid () =
  Alcotest.check_raises "d = 0" (Invalid_argument "Go_left.make: d must be >= 1")
    (fun () -> ignore (Core.Go_left.make ~d:0 ~n:4));
  Alcotest.check_raises "indivisible"
    (Invalid_argument "Go_left.make: d must divide n") (fun () ->
      ignore (Core.Go_left.make ~d:3 ~n:8))

let test_go_left_probes_groups () =
  let g = rng () in
  let rule = Core.Go_left.make ~d:4 ~n:16 in
  (* Force all loads except group 2's bins very high: the chosen bin must
     come from group 2 (bins 8..11). *)
  let loads = Array.make 16 5 in
  for b = 8 to 11 do
    loads.(b) <- 0
  done;
  let bins = Core.Bins.of_loads loads in
  (* Few enough insertions that group 2 stays strictly below the rest. *)
  for _ = 1 to 10 do
    let b = Core.Go_left.insert rule g bins in
    if b < 8 || b > 11 then Alcotest.failf "picked bin %d outside group" b
  done

let test_go_left_tie_breaks_left () =
  let g = rng () in
  let rule = Core.Go_left.make ~d:2 ~n:4 in
  (* All loads equal: the probe from group 0 (bins 0-1) must win. *)
  for _ = 1 to 50 do
    let bins = Core.Bins.of_loads [| 1; 1; 1; 1 |] in
    let b = Core.Go_left.insert rule g bins in
    if b > 1 then Alcotest.failf "tie broken rightward to %d" b
  done

let test_go_left_static_counts () =
  let g = rng () in
  let rule = Core.Go_left.make ~d:2 ~n:64 in
  let bins = Core.Go_left.static_run rule g ~m:200 in
  Alcotest.(check int) "all placed" 200 (Core.Bins.num_balls bins)

let test_go_left_dynamic_conserves () =
  let g = rng () in
  let rule = Core.Go_left.make ~d:2 ~n:8 in
  let bins = Core.Bins.of_loads [| 8; 0; 0; 0; 0; 0; 0; 0 |] in
  for _ = 1 to 500 do
    Core.Go_left.dynamic_step rule Core.Scenario.A g bins
  done;
  Alcotest.(check int) "conserved" 8 (Core.Bins.num_balls bins);
  Alcotest.(check bool) "recovered" true (Core.Bins.max_load bins <= 4)

let test_go_left_beats_abku_statistically () =
  let g = rng ~seed:3 () in
  let n = 16384 in
  let rule = Core.Go_left.make ~d:2 ~n in
  let med_gol =
    Stats.Quantile.median
      (Array.init 7 (fun _ ->
           let g' = Prng.Rng.split g in
           float_of_int (Core.Bins.max_load (Core.Go_left.static_run rule g' ~m:n))))
  in
  let med_abku =
    Stats.Quantile.median
      (Stats.Quantile.of_ints
         (Core.Static_process.max_load_samples (Sr.abku 2) g ~n ~m:n ~reps:7))
  in
  Alcotest.(check bool)
    (Printf.sprintf "GoLeft %.1f <= ABKU %.1f" med_gol med_abku)
    true (med_gol <= med_abku)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("Corollary 4.2 exact (all small pairs)", test_corollary_4_2_exact_small);
      ("Corollary 4.2 exact (d sweep)", test_corollary_4_2_exact_d_sweep);
      ("Lemma 4.1 exact support", test_lemma_4_1_exact_support);
      ("Claims 5.1-5.2 exact (all small pairs)", test_claims_5_1_5_2_exact);
      ("scenario B exact support", test_scenario_b_exact_support_distance_two);
      ("go-left make invalid", test_go_left_make_invalid);
      ("go-left probes all groups", test_go_left_probes_groups);
      ("go-left tie-breaks left", test_go_left_tie_breaks_left);
      ("go-left static counts", test_go_left_static_counts);
      ("go-left dynamic conserves", test_go_left_dynamic_conserves);
      ("go-left beats ABKU", test_go_left_beats_abku_statistically);
    ]
