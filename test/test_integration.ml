(* Integration tests: miniature end-to-end versions of the benchmark
   experiments, crossing every library boundary (prng -> core -> coupling
   -> stats -> theory).  Each asserts the paper's *shape*, with wide
   statistical margins so the suite stays deterministic-robust. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule

let rng ?(seed = 42) () = Prng.Rng.create ~seed ()

let coalescence_median ~scenario ~n ~reps ~limit ~seed =
  let process = Core.Dynamic_process.make scenario (Sr.abku 2) ~n in
  let coupled = Core.Coupled.monotone process in
  let rngm = rng ~seed () in
  let meas =
    Coupling.Coalescence.measure ~reps ~limit ~rng:rngm coupled
      ~init:(fun _g ->
        ( Mv.of_load_vector (Lv.all_in_one ~n ~m:n),
          Mv.of_load_vector (Lv.uniform ~n ~m:n) ))
  in
  Alcotest.(check int) "no failures" 0 meas.failures;
  meas.median

(* E1 mini: scenario-A coalescence respects Theorem 1 and grows
   superlinearly-but-subquadratically. *)
let test_mini_e1 () =
  let t32 = coalescence_median ~scenario:Core.Scenario.A ~n:32 ~reps:15
      ~limit:100_000 ~seed:1
  and t128 = coalescence_median ~scenario:Core.Scenario.A ~n:128 ~reps:15
      ~limit:400_000 ~seed:2
  in
  Alcotest.(check bool) "below Thm 1 at 32" true
    (t32 <= Theory.Bounds.theorem1 ~m:32 ~eps:0.25);
  Alcotest.(check bool) "below Thm 1 at 128" true
    (t128 <= Theory.Bounds.theorem1 ~m:128 ~eps:0.25);
  let ratio = t128 /. t32 in
  Alcotest.(check bool)
    (Printf.sprintf "growth ratio %.2f in (4, 16)" ratio)
    true
    (ratio > 4. && ratio < 16.)

(* E3 mini: scenario-B coalescence grows like m^2-ish: much faster than
   linear between 16 and 64. *)
let test_mini_e3 () =
  let t16 = coalescence_median ~scenario:Core.Scenario.B ~n:16 ~reps:15
      ~limit:200_000 ~seed:3
  and t64 = coalescence_median ~scenario:Core.Scenario.B ~n:64 ~reps:15
      ~limit:2_000_000 ~seed:4
  in
  let ratio = t64 /. t16 in
  (* 4x size: quadratic predicts 16x; accept (8, 40). *)
  Alcotest.(check bool)
    (Printf.sprintf "growth ratio %.1f in (8, 40)" ratio)
    true
    (ratio > 8. && ratio < 40.)

(* E2/E4 mini: scenario-B recovery is much slower than scenario-A at the
   same size. *)
let test_mini_recovery_contrast () =
  let measure scenario seed =
    let spec = { Core.Recovery.scenario; rule = Sr.abku 2; n = 64; m = 64 } in
    let rngm = rng ~seed () in
    let m = Core.Recovery.measure ~rng:rngm ~reps:9 spec ~target:4
        ~limit:10_000_000
    in
    m.median
  in
  let ta = measure Core.Scenario.A 5 and tb = measure Core.Scenario.B 6 in
  Alcotest.(check bool)
    (Printf.sprintf "B (%.0f) at least 3x slower than A (%.0f)" tb ta)
    true
    (tb > 3. *. ta)

(* E5 mini: the two-choice collapse. *)
let test_mini_e5 () =
  let g = rng ~seed:7 () in
  let med d =
    Stats.Quantile.median
      (Stats.Quantile.of_ints
         (Core.Static_process.max_load_samples (Sr.abku d) g ~n:8192 ~m:8192
            ~reps:5))
  in
  Alcotest.(check bool) "d=2 at least 2 below d=1" true (med 2 +. 2. <= med 1)

(* E6 mini: fluid fixed point matches a short simulation to a couple of
   percent. *)
let test_mini_e6 () =
  let n = 1024 in
  let g = rng ~seed:8 () in
  let bins =
    Core.Bins.of_loads (Lv.to_array (Lv.uniform ~n ~m:n))
  in
  let sys = Core.System.create Core.Scenario.A (Sr.abku 2) bins in
  Core.System.run g sys ~steps:(50 * n);
  let fluid = Fluid.Mean_field.fixed_point_a ~d:2 ~m_over_n:1. ~levels:20 in
  let acc = Stats.Summary.create () in
  for _ = 1 to 50 do
    Core.System.run g sys ~steps:n;
    let loads = Core.Bins.loads (Core.System.bins sys) in
    let s2 =
      Array.fold_left (fun a l -> if l >= 2 then a + 1 else a) 0 loads
    in
    Stats.Summary.add acc (float_of_int s2 /. float_of_int n)
  done;
  let sim = Stats.Summary.mean acc in
  Alcotest.(check bool)
    (Printf.sprintf "s_2: sim %.4f vs fluid %.4f" sim fluid.(1))
    true
    (Float.abs (sim -. fluid.(1)) < 0.02)

(* E7 mini: exact tau matches coalescence and respects the bound; the
   build→mix pipeline goes through Exact_builder like the bench does. *)
let test_mini_e7 () =
  let n = 6 in
  let process = Core.Dynamic_process.make Core.Scenario.A (Sr.abku 2) ~n in
  let a =
    Markov.Exact_builder.build_mix ~eps:0.25
      (Markov.Exact_builder.enumerated
         (Markov.Partition_space.enumerate ~n ~m:n))
      ~transitions:(Core.Dynamic_process.exact_transitions process)
  in
  Alcotest.(check int)
    "state count is p(m) restricted to <= n parts"
    (Markov.Partition_space.count ~n ~m:n)
    a.Markov.Exact_builder.state_count;
  let tau = a.Markov.Exact_builder.tau in
  let median = coalescence_median ~scenario:Core.Scenario.A ~n ~reps:101
      ~limit:10_000 ~seed:9
  in
  Alcotest.(check bool)
    (Printf.sprintf "median %.0f within 3 of exact %d" median tau)
    true
    (Float.abs (median -. float_of_int tau) <= 3.);
  Alcotest.(check bool) "tau below bound" true
    (float_of_int tau <= Theory.Bounds.theorem1 ~m:n ~eps:0.25)

(* E8 mini: edge coupling coalesces below Theorem 2's scale and the exact
   chain agrees with the bound ordering. *)
let test_mini_e8 () =
  let n = 16 in
  let coupled = Edgeorient.Class_chain.coupled () in
  let rngm = rng ~seed:10 () in
  let meas =
    Coupling.Coalescence.measure ~reps:11
      ~limit:(100 * int_of_float (Theory.Bounds.theorem2 ~n))
      ~rng:rngm coupled
      ~init:(fun _g ->
        (Edgeorient.Class_chain.adversarial ~n, Edgeorient.Class_chain.start ~n))
  in
  Alcotest.(check int) "no failures" 0 meas.failures;
  Alcotest.(check bool) "below Thm 2" true
    (meas.median <= Theory.Bounds.theorem2 ~n)

(* E9 mini: stationary unfairness is tiny compared to the adversarial
   start. *)
let test_mini_e9 () =
  let n = 128 in
  let g = rng ~seed:11 () in
  let t = Edgeorient.Orientation.adversarial ~n in
  let initial = Edgeorient.Orientation.unfairness t in
  Edgeorient.Orientation.run g t ~steps:(20 * n * n);
  let final = Edgeorient.Orientation.unfairness t in
  Alcotest.(check bool)
    (Printf.sprintf "unfairness %d -> %d" initial final)
    true
    (initial >= n / 2 && final <= 6)

(* E10 mini: ADAP saves probes at comparable balance. *)
let test_mini_e10 () =
  let n = 1024 in
  let g = rng ~seed:12 () in
  let run_rule rule =
    let sys =
      Core.System.create Core.Scenario.A rule
        (Core.Bins.of_loads (Lv.to_array (Lv.uniform ~n ~m:n)))
    in
    let probes = Stats.Summary.create () in
    for _ = 1 to 20 * n do
      Stats.Summary.add_int probes (Core.System.step_probes g sys)
    done;
    (Stats.Summary.mean probes, Core.System.max_load sys)
  in
  let probes_adap, max_adap =
    run_rule (Sr.adap (Core.Adaptive.of_list [ 1; 2; 4 ]))
  in
  let probes_abku, max_abku = run_rule (Sr.abku 2) in
  Alcotest.(check bool)
    (Printf.sprintf "probes %.2f < %.2f" probes_adap probes_abku)
    true
    (probes_adap < probes_abku);
  Alcotest.(check bool)
    (Printf.sprintf "balance %d <= %d + 1" max_adap max_abku)
    true
    (max_adap <= max_abku + 1)

(* E13 mini: the TV curve is ~1 early and ~0 late. *)
let test_mini_e13 () =
  let n = 32 in
  let process = Core.Dynamic_process.make Core.Scenario.A (Sr.abku 2) ~n in
  let chain =
    Markov.Chain.make (fun g v ->
        Core.Dynamic_process.step_in_place process g v;
        v)
  in
  let rngm = rng ~seed:13 () in
  let tv t =
    Markov.Empirical.observable_tv chain ~rng:rngm
      ~x0:(fun () -> Mv.of_load_vector (Lv.all_in_one ~n ~m:n))
      ~y0:(fun () -> Mv.of_load_vector (Lv.uniform ~n ~m:n))
      ~t ~reps:300 ~observable:Mv.max_load
  in
  Alcotest.(check bool) "profile decays through the Thm 1 scale" true
    (tv 4 > 0.9 && tv (6 * n) < 0.25)

(* Relocation mini: k = 2 clearly beats k = 0. *)
let test_mini_e12 () =
  let n = 128 in
  let recovery k seed =
    let reloc = Core.Relocation.make Core.Scenario.A (Sr.abku 2) ~relocations:k ~n in
    let g = rng ~seed () in
    let loads = Array.make n 0 in
    loads.(0) <- n;
    let bins = Core.Bins.of_loads loads in
    let steps = ref 0 in
    while Core.Bins.max_load bins > 4 && !steps < 1_000_000 do
      Core.Relocation.step reloc g bins;
      incr steps
    done;
    !steps
  in
  Alcotest.(check bool) "relocation speedup" true
    (recovery 2 14 * 2 < recovery 0 15)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("mini E1: Thm 1 shape", test_mini_e1);
      ("mini E3: scenario-B quadratic", test_mini_e3);
      ("mini E2/E4: A vs B contrast", test_mini_recovery_contrast);
      ("mini E5: two-choice collapse", test_mini_e5);
      ("mini E6: fluid match", test_mini_e6);
      ("mini E7: exact vs coalescence", test_mini_e7);
      ("mini E8: edge below Thm 2", test_mini_e8);
      ("mini E9: unfairness recovery", test_mini_e9);
      ("mini E10: ADAP saves probes", test_mini_e10);
      ("mini E13: TV decay", test_mini_e13);
      ("mini E12: relocation speedup", test_mini_e12);
    ]
