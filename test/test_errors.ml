(* Failure injection: a systematic sweep of the documented error paths.
   Every public function that promises Invalid_argument gets at least one
   negative test here (constructive error paths are also covered in the
   per-module suites; this file is the completeness net). *)

let inv msg f = Alcotest.check_raises msg (Invalid_argument msg) f

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule

let g () = Prng.Rng.create ()

let test_prng_errors () =
  inv "Rng.int: bound must be positive" (fun () -> ignore (Prng.Rng.int (g ()) (-3)));
  inv "Rng.int_in: empty range" (fun () -> ignore (Prng.Rng.int_in (g ()) 3 2));
  inv "Rng.bernoulli: p not in [0,1]" (fun () ->
      ignore (Prng.Rng.bernoulli (g ()) (-0.1)));
  inv "Rng.geometric: p not in (0,1]" (fun () ->
      ignore (Prng.Rng.geometric (g ()) 1.5));
  inv "Rng.pair_distinct: need n >= 2" (fun () ->
      ignore (Prng.Rng.pair_distinct (g ()) 0));
  inv "Dist: empty weight vector" (fun () ->
      ignore (Prng.Dist.weighted (g ()) [||]));
  inv "Dist: negative weight" (fun () ->
      ignore (Prng.Dist.weighted (g ()) [| 1.; -1. |]));
  inv "Dist: zero total weight" (fun () ->
      ignore (Prng.Dist.alias_of_weights [| 0. |]))

let test_stats_errors () =
  inv "Quantile.quantile: empty sample" (fun () ->
      ignore (Stats.Quantile.quantile [||] 0.5));
  inv "Histogram.add: negative value" (fun () ->
      Stats.Histogram.add (Stats.Histogram.create ()) (-1));
  inv "Regression.ols: need at least two points" (fun () ->
      ignore (Stats.Regression.ols [||]));
  inv "Regression.log_corrected_power_law: need x > 1" (fun () ->
      ignore
        (Stats.Regression.log_corrected_power_law ~log_exponent:1.
           [| (0.5, 1.); (2., 2.) |]));
  inv "Bootstrap.ci: level must be in (0,1)" (fun () ->
      ignore (Stats.Bootstrap.ci_mean ~level:1.5 ~rng:(g ()) [| 1. |]));
  inv "Table.add_row: arity mismatch" (fun () ->
      Stats.Table.add_row (Stats.Table.create ~title:"t" ~columns:[ "a" ]) [])

let test_loadvec_errors () =
  inv "Load_vector.of_array: empty" (fun () -> ignore (Lv.of_array [||]));
  inv "Load_vector.of_loads: negative load" (fun () ->
      ignore (Lv.of_loads ~n:2 [ -1 ]));
  inv "Load_vector.uniform" (fun () -> ignore (Lv.uniform ~n:0 ~m:1));
  inv "Load_vector.all_in_one" (fun () -> ignore (Lv.all_in_one ~n:1 ~m:(-1)));
  inv "Load_vector.get" (fun () -> ignore (Lv.get (Lv.of_array [| 1 |]) 5));
  inv "Load_vector.l1_distance: dimension mismatch" (fun () ->
      ignore (Lv.l1_distance (Lv.of_array [| 1 |]) (Lv.of_array [| 1; 0 |])));
  inv "Mutable_vector.get" (fun () ->
      ignore (Mv.get (Mv.of_load_vector (Lv.of_array [| 1 |])) (-1)))

let test_markov_errors () =
  inv "Matrix: index out of bounds" (fun () ->
      ignore (Markov.Matrix.get (Markov.Matrix.identity 2) 2 0));
  inv "Matrix.vec_mul: dimension mismatch" (fun () ->
      ignore (Markov.Matrix.vec_mul [| 1. |] (Markov.Matrix.identity 2)));
  inv "Partition_space.enumerate" (fun () ->
      ignore (Markov.Partition_space.enumerate ~n:0 ~m:1));
  inv "Partition_space.count" (fun () ->
      ignore (Markov.Partition_space.count ~n:1 ~m:(-1)));
  inv "Exact.build: empty state space" (fun () ->
      ignore (Markov.Exact.build ~states:[||] ~transitions:(fun _ -> [])));
  (* Regression: duplicate states used to be silently accepted
     (Hashtbl.replace overwrote the first index, leaving an orphan row
     and a corrupt lookup). *)
  inv "Exact.build: duplicate state" (fun () ->
      ignore
        (Markov.Exact.build
           ~states:[| "a"; "b"; "a" |]
           ~transitions:(fun _ -> [ ("a", 0.5); ("b", 0.5) ])));
  inv "Exact.tv_distance: length mismatch" (fun () ->
      ignore (Markov.Exact.tv_distance [| 1. |] [| 0.5; 0.5 |]));
  inv "Sparse.of_rows: non-positive size" (fun () ->
      ignore (Markov.Sparse.of_rows ~rows:0 ~cols:1 (fun _ -> [])));
  inv "Sparse.of_rows: column index out of bounds" (fun () ->
      ignore (Markov.Sparse.of_rows ~rows:1 ~cols:1 (fun _ -> [ (1, 1.) ])));
  inv "Sparse.of_triplets: row index out of bounds" (fun () ->
      ignore (Markov.Sparse.of_triplets ~rows:1 ~cols:1 [ (1, 0, 1.) ]));
  inv "Sparse.row_iter: row out of bounds" (fun () ->
      Markov.Sparse.row_iter
        (Markov.Sparse.of_rows ~rows:1 ~cols:1 (fun _ -> [ (0, 1.) ]))
        1
        ~f:(fun _ _ -> ()));
  inv "Sparse.spmv: dimension mismatch" (fun () ->
      ignore
        (Markov.Sparse.spmv [| 1.; 0. |]
           (Markov.Sparse.of_rows ~rows:1 ~cols:1 (fun _ -> [ (0, 1.) ]))));
  inv "Empirical.observable_tv: negative t" (fun () ->
      ignore
        (Markov.Empirical.observable_tv
           (Markov.Chain.make (fun _ s -> s))
           ~rng:(g ())
           ~x0:(fun () -> 0)
           ~y0:(fun () -> 0)
           ~t:(-1) ~reps:1 ~observable:(fun s -> s)));
  inv "Empirical.observable_tv: reps must be positive" (fun () ->
      ignore
        (Markov.Empirical.observable_tv
           (Markov.Chain.make (fun _ s -> s))
           ~rng:(g ())
           ~x0:(fun () -> 0)
           ~y0:(fun () -> 0)
           ~t:1 ~reps:0 ~observable:(fun s -> s)))

let test_coupling_errors () =
  inv "Coalescence.time: negative limit" (fun () ->
      let c =
        Coupling.Coupled_chain.make
          ~step:(fun _ x y -> (x, y))
          ~equal:( = )
          ~distance:(fun (_ : int) _ -> 0)
      in
      ignore (Coupling.Coalescence.time c (g ()) 0 1 ~limit:(-1)));
  inv "Coalescence.measure: reps must be positive" (fun () ->
      let c =
        Coupling.Coupled_chain.make
          ~step:(fun _ x y -> (x, y))
          ~equal:( = )
          ~distance:(fun (_ : int) _ -> 0)
      in
      ignore
        (Coupling.Coalescence.measure ~reps:0 ~limit:1 ~rng:(g ()) c
           ~init:(fun _ -> (0, 0))));
  inv "Delayed.block_coupling: block must be >= 1" (fun () ->
      let c =
        Coupling.Coupled_chain.make
          ~step:(fun _ x y -> (x, y))
          ~equal:( = )
          ~distance:(fun (_ : int) _ -> 0)
      in
      ignore (Coupling.Delayed.block_coupling ~block:0 c))

let test_core_errors () =
  inv "Probe.create: n must be positive" (fun () ->
      ignore (Core.Probe.create (g ()) ~n:(-1)));
  inv "Scheduling_rule.abku: d must be >= 1" (fun () -> ignore (Sr.abku 0));
  inv "Dynamic_process.make: n must be positive" (fun () ->
      ignore (Core.Dynamic_process.make Core.Scenario.A (Sr.abku 1) ~n:0));
  inv "Scenario.remove_rank: no balls" (fun () ->
      ignore
        (Core.Scenario.remove_rank Core.Scenario.A
           (Mv.of_load_vector (Lv.of_array [| 0; 0 |]))
           ~u:0.5));
  inv "Scenario.removal_distribution: no balls" (fun () ->
      ignore (Core.Scenario.removal_distribution Core.Scenario.B ~loads:[| 0 |]));
  inv "Bins.create: n must be positive" (fun () ->
      ignore (Core.Bins.create ~n:0));
  inv "Bins.load: bad bin" (fun () ->
      ignore (Core.Bins.load (Core.Bins.create ~n:2) 2));
  inv "Bins.add_ball: bad bin" (fun () ->
      Core.Bins.add_ball (Core.Bins.create ~n:2) (-1));
  inv "Bins.move_ball: bad bin" (fun () ->
      Core.Bins.move_ball (Core.Bins.create ~n:2) ~src:0 ~dst:9);
  inv "System.create: no balls" (fun () ->
      ignore
        (Core.System.create Core.Scenario.A (Sr.abku 1) (Core.Bins.create ~n:2)));
  inv "System.run: negative steps" (fun () ->
      let sys =
        Core.System.create Core.Scenario.A (Sr.abku 1)
          (Core.Bins.of_loads [| 1 |])
      in
      Core.System.run (g ()) sys ~steps:(-1));
  inv "Static_process.run" (fun () ->
      ignore (Core.Static_process.run (Sr.abku 1) (g ()) ~n:0 ~m:1));
  inv "Recovery.measure: reps must be positive" (fun () ->
      ignore
        (Core.Recovery.measure ~rng:(g ()) ~reps:0
           {
             Core.Recovery.scenario = Core.Scenario.A;
             rule = Sr.abku 1;
             n = 2;
             m = 2;
           }
           ~target:1 ~limit:10));
  inv "Relocation.make: negative relocations" (fun () ->
      ignore
        (Core.Relocation.make Core.Scenario.A (Sr.abku 1) ~relocations:(-1) ~n:2));
  inv "Open_process.make: n must be positive" (fun () ->
      ignore (Core.Open_process.make (Sr.abku 1) ~n:0));
  inv "Weighted.create: n must be positive" (fun () ->
      ignore (Core.Weighted.create ~n:0));
  inv "Weighted.insert: d must be >= 1" (fun () ->
      ignore (Core.Weighted.insert (Core.Weighted.create ~n:2) (g ()) ~d:0 ~weight:1.));
  inv "Weighted.insert: non-positive weight" (fun () ->
      ignore (Core.Weighted.insert (Core.Weighted.create ~n:2) (g ()) ~d:1 ~weight:0.));
  inv "Parallel_alloc.run: negative rounds" (fun () ->
      ignore (Core.Parallel_alloc.run (g ()) ~n:2 ~m:2 ~d:1 ~rounds:(-1) ()));
  inv "Go_left.make: need n >= d" (fun () ->
      ignore (Core.Go_left.make ~d:4 ~n:2));
  inv "Go_left.insert: size mismatch" (fun () ->
      let rule = Core.Go_left.make ~d:2 ~n:4 in
      ignore (Core.Go_left.insert rule (g ()) (Core.Bins.create ~n:8)))

(* A threshold sequence that never releases the insertion must raise the
   dedicated exception (not loop) at every insertion site, carrying the
   system size and the cap. *)
let test_probe_cap () =
  let slow = Sr.adap (Core.Adaptive.of_list [ Sr.probe_cap + 1 ]) in
  let expect name f =
    match f () with
    | exception Sr.Probe_cap_exceeded { n; x; cap } ->
        Alcotest.(check int) (name ^ ": n") 2 n;
        Alcotest.(check int) (name ^ ": cap") Sr.probe_cap cap;
        Alcotest.(check string) (name ^ ": rule") (Sr.name slow) x
    | _ -> Alcotest.failf "%s: expected Probe_cap_exceeded" name
  in
  expect "choose_rank" (fun () ->
      ignore
        (Sr.choose_rank slow ~loads:[| 1; 1 |]
           ~probe:(Core.Probe.create (g ()) ~n:2)));
  expect "Bins.insert_with_rule" (fun () ->
      ignore (Core.Bins.insert_with_rule slow (g ()) (Core.Bins.of_loads [| 1; 1 |])));
  expect "Dynamic_process.step_in_place" (fun () ->
      let p = Core.Dynamic_process.make Core.Scenario.A slow ~n:2 in
      Core.Dynamic_process.step_in_place p (g ())
        (Mv.of_load_vector (Lv.of_array [| 1; 1 |])))

let test_edgeorient_errors () =
  inv "Orientation.create: need n >= 2" (fun () ->
      ignore (Edgeorient.Orientation.create ~n:0));
  inv "Orientation.orient: bad endpoints" (fun () ->
      Edgeorient.Orientation.orient (Edgeorient.Orientation.create ~n:3) ~src:0
        ~dst:0);
  inv "Orientation.run: negative steps" (fun () ->
      Edgeorient.Orientation.run (g ())
        (Edgeorient.Orientation.create ~n:3)
        ~steps:(-1));
  inv "Class_chain.of_discrepancies: values must sum to 0" (fun () ->
      ignore (Edgeorient.Class_chain.of_discrepancies [| 1; 0 |]));
  inv "Class_chain.emd: size mismatch" (fun () ->
      ignore
        (Edgeorient.Class_chain.emd
           (Edgeorient.Class_chain.start ~n:3)
           (Edgeorient.Class_chain.start ~n:4)));
  inv "Orientation.of_discrepancies: need n >= 2" (fun () ->
      ignore (Edgeorient.Carpool.of_balances [| 0 |]))

let test_fluid_theory_errors () =
  inv "Ode.integrate: steps must be positive" (fun () ->
      ignore (Fluid.Ode.integrate ~f:(fun y -> y) ~y0:[| 1. |] ~t:1. ~steps:0));
  inv "Mean_field.static" (fun () ->
      ignore (Fluid.Mean_field.static ~d:2 ~c:(-1.) ~levels:5));
  inv "Mean_field.uniform_profile" (fun () ->
      ignore (Fluid.Mean_field.uniform_profile ~m_over_n:1. ~levels:0));
  inv "Mean_field.predicted_max_load" (fun () ->
      ignore (Fluid.Mean_field.predicted_max_load ~n:0 [| 1. |]));
  inv "Bounds.claim53" (fun () -> ignore (Theory.Bounds.claim53 ~n:0 ~m:1 ~eps:0.5));
  inv "Bounds.theorem2: n < 2" (fun () -> ignore (Theory.Bounds.theorem2 ~n:1));
  inv "Bounds.corollary64: n < 2" (fun () ->
      ignore (Theory.Bounds.corollary64 ~n:1 ~eps:0.5));
  inv "Bounds.azar_static_max_load" (fun () ->
      ignore (Theory.Bounds.azar_static_max_load ~n:1 ~m:1 ~d:1))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("prng error paths", test_prng_errors);
      ("stats error paths", test_stats_errors);
      ("loadvec error paths", test_loadvec_errors);
      ("markov error paths", test_markov_errors);
      ("coupling error paths", test_coupling_errors);
      ("core error paths", test_core_errors);
      ("probe cap exception", test_probe_cap);
      ("edgeorient error paths", test_edgeorient_errors);
      ("fluid/theory error paths", test_fluid_theory_errors);
    ]
